package fpvm_test

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§6), plus ablations for the design choices DESIGN.md
// calls out. Each benchmark executes complete virtualized runs and reports
// the paper's metrics via b.ReportMetric:
//
//	slowdown-x        end-to-end slowdown vs native (Figures 4, 11)
//	lbratio-x         slowdown from the altmath lower bound (Figures 5, 12)
//	cyc/emul-inst     amortized per-instruction cost (Figures 1, 6, 13)
//	insts/trap        sequence amortization factor (§4, Figure 10)
//	cyc/trap          trap delegation cost (Figure 2)
//	cyc/corr-event    correctness trap cost (Figure 3)
//
// Absolute wall-clock ns/op measures the *simulator*, not the paper's
// system; the reported custom metrics are the reproduction targets.

import (
	"fmt"
	"testing"

	"fpvm"
	"fpvm/internal/alt"
	"fpvm/internal/experiments"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
	"fpvm/internal/workloads"
)

// prepared caches built+patched workload images and native baselines so
// the benchmark loop measures runs, not compilation.
type prepared struct {
	img    *obj.Image // patched with magic traps
	orig   *obj.Image // unpatched original
	native *fpvm.Result
}

var prepCache = map[workloads.Name]*prepared{}

func prep(b *testing.B, name workloads.Name) *prepared {
	b.Helper()
	if p, ok := prepCache[name]; ok {
		return p
	}
	img, err := workloads.Build(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	patched, err := fpvm.PrepareForFPVM(img, true)
	if err != nil {
		b.Fatal(err)
	}
	native, err := fpvm.RunNative(img)
	if err != nil {
		b.Fatal(err)
	}
	p := &prepared{img: patched, orig: img, native: native}
	prepCache[name] = p
	return p
}

func runCfg(b *testing.B, p *prepared, cfg fpvm.Config) *fpvm.Result {
	b.Helper()
	res, err := fpvm.Run(p.img, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

var benchConfigs = []fpvm.Config{
	{Alt: fpvm.AltBoxed},
	{Alt: fpvm.AltBoxed, Seq: true},
	{Alt: fpvm.AltBoxed, Short: true},
	{Alt: fpvm.AltBoxed, Seq: true, Short: true},
}

// BenchmarkFig1Baseline reproduces Figure 1: the per-emulated-instruction
// cost breakdown of unaccelerated FPVM (NONE) under Boxed IEEE.
func BenchmarkFig1Baseline(b *testing.B) {
	for _, name := range workloads.All() {
		b.Run(string(name), func(b *testing.B) {
			p := prep(b, name)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed})
			}
			per := res.Breakdown.PerInst()
			total := 0.0
			for _, v := range per {
				total += v
			}
			b.ReportMetric(total, "cyc/emul-inst")
			b.ReportMetric(per[telemetry.Kernel], "kern-cyc/inst")
			b.ReportMetric(per[telemetry.Altmath], "altmath-cyc/inst")
		})
	}
}

// BenchmarkFig2TrapDelivery reproduces Figure 2: per-trap delegation cost
// via POSIX signals vs the kernel module's short-circuit path (~8x).
func BenchmarkFig2TrapDelivery(b *testing.B) {
	for _, mode := range []struct {
		name  string
		short bool
	}{{"signal", false}, {"short-circuit", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var m *experiments.MicroDelivery
			var err error
			for i := 0; i < b.N; i++ {
				m, err = experiments.RunMicroDelivery(500)
				if err != nil {
					b.Fatal(err)
				}
			}
			if mode.short {
				b.ReportMetric(m.ShortPerTrap, "cyc/trap")
			} else {
				b.ReportMetric(m.SignalPerTrap, "cyc/trap")
			}
			b.ReportMetric(m.Reduction, "reduction-x")
		})
	}
}

// BenchmarkFig3MagicTrap reproduces Figure 3: correctness trap cost, int3
// vs magic traps (paper: 14-120x).
func BenchmarkFig3MagicTrap(b *testing.B) {
	var m *experiments.MicroCorrectness
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiments.RunMicroCorrectness(500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Int3PerEvent, "int3-cyc/event")
	b.ReportMetric(m.MagicPerEvent, "magic-cyc/event")
	b.ReportMetric(m.Reduction, "reduction-x")
}

// BenchmarkFig4Slowdown reproduces Figure 4 (and the Figure 5 lower-bound
// ratios): end-to-end slowdown for every workload × configuration.
func BenchmarkFig4Slowdown(b *testing.B) {
	for _, name := range workloads.All() {
		for _, cfg := range benchConfigs {
			b.Run(fmt.Sprintf("%s/%s", name, cfg.ConfigName()), func(b *testing.B) {
				p := prep(b, name)
				var res *fpvm.Result
				for i := 0; i < b.N; i++ {
					res = runCfg(b, p, cfg)
				}
				b.ReportMetric(res.Slowdown(p.native.Cycles), "slowdown-x")
				b.ReportMetric(res.SlowdownFromLowerBound(p.native.Cycles), "lbratio-x")
			})
		}
	}
}

// BenchmarkFig6Breakdown reproduces Figure 6: optimized per-instruction
// breakdowns and the per-configuration reduction factors.
func BenchmarkFig6Breakdown(b *testing.B) {
	for _, name := range workloads.All() {
		b.Run(string(name), func(b *testing.B) {
			p := prep(b, name)
			var none, both *fpvm.Result
			for i := 0; i < b.N; i++ {
				none = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed})
				both = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
			}
			perNone := perInstTotal(none)
			perBoth := perInstTotal(both)
			b.ReportMetric(perBoth, "cyc/emul-inst")
			b.ReportMetric(perNone/perBoth, "reduction-x")
			b.ReportMetric(both.Breakdown.PerInst()[telemetry.Altmath]/perBoth, "altmath-frac")
		})
	}
}

func perInstTotal(r *fpvm.Result) float64 {
	if r.EmulatedInsts == 0 {
		return 0
	}
	return float64(r.Breakdown.Total()) / float64(r.EmulatedInsts)
}

// BenchmarkFig8to10SeqProfile reproduces the §6.3 sequence statistics:
// distinct traces, amortization factor, and trace cache sizing (Figures
// 8, 9, 10 and the cache-size discussion).
func BenchmarkFig8to10SeqProfile(b *testing.B) {
	for _, name := range workloads.All() {
		b.Run(string(name), func(b *testing.B) {
			p := prep(b, name)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, Profile: true})
			}
			prof := res.SeqProfile
			b.ReportMetric(float64(prof.NumTraces()), "traces")
			b.ReportMetric(prof.AvgSeqLen(), "insts/trap")
			b.ReportMetric(float64(prof.CacheSizeEstimate(90)), "cache-entries@90%")
		})
	}
}

// BenchmarkFig11to13MPFR reproduces Figures 11-13: the same sweep under
// the 200-bit MPFR-like system, where altmath dominates.
func BenchmarkFig11to13MPFR(b *testing.B) {
	for _, name := range workloads.All() {
		for _, base := range []fpvm.Config{
			{Alt: fpvm.AltMPFR},
			{Alt: fpvm.AltMPFR, Seq: true, Short: true},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, base.ConfigName()), func(b *testing.B) {
				p := prep(b, name)
				var res *fpvm.Result
				for i := 0; i < b.N; i++ {
					res = runCfg(b, p, base)
				}
				b.ReportMetric(res.Slowdown(p.native.Cycles), "slowdown-x")
				b.ReportMetric(res.SlowdownFromLowerBound(p.native.Cycles), "lbratio-x")
				b.ReportMetric(res.Breakdown.PerInst()[telemetry.Altmath]/perInstTotal(res), "altmath-frac")
			})
		}
	}
}

// BenchmarkCorrTable reproduces the §5.1 comparison: profiled vs static
// patch-site counts and the resulting correctness event rates.
func BenchmarkCorrTable(b *testing.B) {
	for _, name := range []workloads.Name{workloads.ThreeBody, workloads.Enzo} {
		b.Run(string(name), func(b *testing.B) {
			img, err := workloads.Build(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			var nProf, nStatic int
			for i := 0; i < b.N; i++ {
				prof, _, err := fpvm.ProfileSites(img)
				if err != nil {
					b.Fatal(err)
				}
				static, _, err := fpvm.AnalyzeSites(img)
				if err != nil {
					b.Fatal(err)
				}
				nProf, nStatic = len(prof), len(static)
			}
			b.ReportMetric(float64(nProf), "profiled-sites")
			b.ReportMetric(float64(nStatic), "static-sites")
		})
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationDecodeCache: shrink the decode cache until it thrashes
// (capacity 32 entries vs the 64K default) — decode costs replace decache
// hits, inflating per-instruction cost.
func BenchmarkAblationDecodeCache(b *testing.B) {
	for _, cap := range []int{32, 0} {
		label := "default-64k"
		if cap != 0 {
			label = fmt.Sprintf("cap-%d", cap)
		}
		b.Run(label, func(b *testing.B) {
			p := prep(b, workloads.Enzo)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, CacheCapacity: cap})
			}
			b.ReportMetric(perInstTotal(res), "cyc/emul-inst")
			b.ReportMetric(res.Breakdown.PerInst()[telemetry.Decode], "decode-cyc/inst")
		})
	}
}

// BenchmarkAblationTraceCache: the §4.2 software trace cache on vs off.
// With traces on, repeated traps replay pre-bound sequences (ns/op and
// allocs/op drop, decache cycles shrink); off, every trap re-walks the
// sequence through the per-instruction decode cache. Reported metrics:
// sequence amortization (insts/trap), trace hit rate, and divergence-exit
// rate per workload.
func BenchmarkAblationTraceCache(b *testing.B) {
	for _, w := range []workloads.Name{workloads.Lorenz, workloads.Enzo} {
		for _, mode := range []struct {
			name string
			off  bool
		}{{"trace-on", false}, {"trace-off", true}} {
			b.Run(fmt.Sprintf("%s/%s", w, mode.name), func(b *testing.B) {
				p := prep(b, w)
				b.ReportAllocs()
				var res *fpvm.Result
				for i := 0; i < b.N; i++ {
					res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, NoTraceCache: mode.off})
				}
				b.ReportMetric(res.Breakdown.AvgSeqLen(), "insts/trap")
				b.ReportMetric(res.TraceHitRate(), "trace-hit-rate")
				if res.TraceHits > 0 {
					b.ReportMetric(float64(res.TraceDivergences)/float64(res.TraceHits), "divergence-exit-rate")
				} else {
					b.ReportMetric(0, "divergence-exit-rate")
				}
				b.ReportMetric(perInstTotal(res), "cyc/emul-inst")
			})
		}
	}
}

// BenchmarkJITTierGate is the tier-1 JIT regression gate, run on every
// `make check` via bench-check (-benchtime 1x): the compiled tier must
// produce bit-identical output and virtual cycles to the interpreted
// tier while actually engaging (compiles and compiled replays happen).
// At full benchtime it also reports the wall-clock ratio between tiers —
// the number the BENCH_7.json artifact tracks per workload.
func BenchmarkJITTierGate(b *testing.B) {
	for _, name := range []workloads.Name{workloads.Lorenz, workloads.Enzo} {
		b.Run(string(name), func(b *testing.B) {
			p := prep(b, name)
			jitCfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true}
			interpCfg := jitCfg
			interpCfg.NoJIT = true
			var jit, interp *fpvm.Result
			for i := 0; i < b.N; i++ {
				jit = runCfg(b, p, jitCfg)
				interp = runCfg(b, p, interpCfg)
			}
			if jit.Stdout != interp.Stdout {
				b.Fatalf("compiled tier changed output")
			}
			if jit.Cycles != interp.Cycles {
				b.Fatalf("compiled tier broke cycle-exactness: jit %d, interp %d",
					jit.Cycles, interp.Cycles)
			}
			if jit.JITCompiles == 0 || jit.JITExecs == 0 {
				b.Fatalf("JIT never engaged: compiles=%d execs=%d", jit.JITCompiles, jit.JITExecs)
			}
			if n := interp.JITCompiles + interp.JITExecs + interp.JITInsts + interp.JITDeopts; n != 0 {
				b.Fatalf("NoJIT run shows JIT activity: %d", n)
			}
			b.ReportMetric(float64(jit.JITExecs), "jit-execs")
			b.ReportMetric(jit.Breakdown.JITDeoptRate(), "jit-deopt-rate")
		})
	}
}

// BenchmarkAblationGCThreshold sweeps the collector trigger: low
// thresholds collect often (high gc cost), high thresholds let boxes pile
// up (bigger heap scans, fewer collections).
func BenchmarkAblationGCThreshold(b *testing.B) {
	for _, thr := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("threshold-%d", thr), func(b *testing.B) {
			p := prep(b, workloads.Enzo)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, GCThreshold: thr})
			}
			b.ReportMetric(res.Breakdown.PerInst()[telemetry.GC], "gc-cyc/inst")
			b.ReportMetric(float64(res.GCRuns), "gc-runs")
		})
	}
}

// BenchmarkAblationSeqTermination compares the §4.2 condition-(2) rule
// (stop when no source is NaN-boxed) against emulating everything
// emulatable — the paper's "unwarranted emulation" loss.
func BenchmarkAblationSeqTermination(b *testing.B) {
	for _, mode := range []struct {
		name string
		all  bool
	}{{"stop-on-unboxed", false}, {"emulate-everything", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := prep(b, workloads.FFbench)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, EmulateAll: mode.all})
			}
			b.ReportMetric(res.Slowdown(p.native.Cycles), "slowdown-x")
			b.ReportMetric(res.Breakdown.AvgSeqLen(), "insts/trap")
		})
	}
}

// BenchmarkAblationPatching compares profiler-guided patching against the
// conservative static-analysis site set (§5.1): more sites, more
// correctness traps, more overhead.
func BenchmarkAblationPatching(b *testing.B) {
	img, err := workloads.Build(workloads.ThreeBody, 1)
	if err != nil {
		b.Fatal(err)
	}
	profSites, _, err := fpvm.ProfileSites(img)
	if err != nil {
		b.Fatal(err)
	}
	staticSites, _, err := fpvm.AnalyzeSites(img)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		sites []uint64
	}{{"profiled", profSites}, {"static", staticSites}} {
		b.Run(mode.name, func(b *testing.B) {
			patched, err := fpvm.PatchImage(img, mode.sites, fpvm.PatchMagic)
			if err != nil {
				b.Fatal(err)
			}
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res, err = fpvm.Run(patched, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Breakdown.CorrEvents), "corr-events")
			b.ReportMetric(res.Breakdown.PerInst()[telemetry.Corr], "corr-cyc/inst")
		})
	}
}

// BenchmarkAblationWrapStyle verifies §5.3's claim that magic wrapping and
// forward (LD_PRELOAD) wrapping have identical performance.
func BenchmarkAblationWrapStyle(b *testing.B) {
	for _, mode := range []struct {
		name  string
		magic bool
	}{{"forward", false}, {"magic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := prep(b, workloads.ThreeBody)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, MagicWraps: mode.magic})
			}
			b.ReportMetric(res.Breakdown.PerInst()[telemetry.FCall], "fcall-cyc/inst")
			b.ReportMetric(float64(res.Cycles), "total-cycles")
		})
	}
}

// BenchmarkAblationPrecision sweeps MPFR precision: altmath cost grows
// with limb count (quadratically for mul/div), dragging slowdown with it.
func BenchmarkAblationPrecision(b *testing.B) {
	for _, prec := range []uint{64, 200, 512, 1024} {
		b.Run(fmt.Sprintf("prec-%d", prec), func(b *testing.B) {
			p := prep(b, workloads.Lorenz)
			var res *fpvm.Result
			for i := 0; i < b.N; i++ {
				res = runCfg(b, p, fpvm.Config{Alt: fpvm.AltMPFR, Precision: prec, Seq: true, Short: true})
			}
			b.ReportMetric(res.Slowdown(p.native.Cycles), "slowdown-x")
		})
	}
}

// BenchmarkSimulatorThroughput measures the host-side simulator itself
// (useful when hacking on the interpreter, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := prep(b, workloads.Lorenz)
	b.Run("native", func(b *testing.B) {
		var insts uint64
		for i := 0; i < b.N; i++ {
			res, err := fpvm.RunNative(p.img)
			if err != nil {
				b.Fatal(err)
			}
			insts = res.Instructions
		}
		b.ReportMetric(float64(insts), "guest-insts/run")
	})
}

// BenchmarkFutureHW evaluates the paper's §8 future-work hardware model
// (user-level FP traps + hardware box-escape detection) against the best
// software configuration. No kernel module, no signal path, no binary
// patching — the remaining overhead is decode/bind/emul/altmath.
func BenchmarkFutureHW(b *testing.B) {
	for _, name := range workloads.All() {
		for _, mode := range []struct {
			label string
			cfg   fpvm.Config
		}{
			{"SEQ-SHORT", fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true}},
			{"SEQ-FUTUREHW", fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, FutureHW: true}},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, mode.label), func(b *testing.B) {
				p := prep(b, name)
				// FutureHW removes the need for patching: it runs the
				// unpatched original; the software config needs the
				// patched image.
				img := p.img
				if mode.cfg.FutureHW {
					img = p.orig
				}
				var res *fpvm.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = fpvm.Run(img, mode.cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Slowdown(p.native.Cycles), "slowdown-x")
				b.ReportMetric(res.SlowdownFromLowerBound(p.native.Cycles), "lbratio-x")
			})
		}
	}
}

// BenchmarkAblationMPFRTemps models §6.4's suggested future optimization:
// eliminating MPFR's per-operation temporary allocations, which the paper
// observes as extra gc overhead (particularly in Enzo).
func BenchmarkAblationMPFRTemps(b *testing.B) {
	img, err := workloads.Build(workloads.Enzo, 1)
	if err != nil {
		b.Fatal(err)
	}
	patched, err := fpvm.PrepareForFPVM(img, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		temps int
	}{{"with-temps", 2}, {"temp-free", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			sys := alt.NewMPFR(200).WithTemps(mode.temps)
			var tel *telemetry.Breakdown
			for i := 0; i < b.N; i++ {
				res, err := runWithSystem(patched, sys)
				if err != nil {
					b.Fatal(err)
				}
				tel = res
			}
			b.ReportMetric(tel.PerInst()[telemetry.GC], "gc-cyc/inst")
		})
	}
}

// runWithSystem runs an image under a custom alt.System instance (the
// public Config only names systems; ablations need instances).
func runWithSystem(img *obj.Image, sys alt.System) (*telemetry.Breakdown, error) {
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	k.LoadModule()
	p := kernel.NewProcess(k, m, img.Name)
	lib := hostlib.Install(p)
	rt, err := fpvmrt.Attach(p, fpvmrt.Config{Alt: sys, Seq: true, Short: true})
	if err != nil {
		return nil, err
	}
	rt.InstallWrappers(lib)
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	if err := img.Load(as, rt.WrapResolver(func(n string) (uint64, bool) {
		if s, ok := img.Lookup(n); ok {
			return s.Addr, true
		}
		a, ok := lib.Exports[n]
		return a, ok
	})); err != nil {
		return nil, err
	}
	m.InvalidateICache()
	m.CPU.RIP = img.Entry
	m.CPU.GPR[4] = obj.StackTop - 64
	m.CPU.MXCSR = machine.MXCSRTrapAll
	if err := p.Run(500_000_000); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	return &rt.Tel, nil
}
