package fpvm_test

import (
	"strings"
	"testing"

	"fpvm"
	"fpvm/internal/asm"
	"fpvm/internal/isa"
	"fpvm/internal/obj"
)

// buildDivLoop assembles a small program: x = 1.0; repeat n times
// { x /= 3.0; x += 0.5 }; print_f64(x); exit(0). The divisions are
// inexact, so under FPVM every iteration traps.
func buildDivLoop(t *testing.T, n int64) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("divloop")
	b.RoDouble("one", 1.0)
	b.RoDouble("three", 3.0)
	b.RoDouble("half", 0.5)

	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "three")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), n)
	b.Label("loop")
	b.RM(isa.DIVSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "half")
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60) // exit
	b.MI(isa.MOV64RI, isa.GPR(isa.RDI), 0)
	b.Op0(isa.SYSCALL)

	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return img
}

func TestNativeDivLoop(t *testing.T) {
	img := buildDivLoop(t, 10)
	res, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code = %d, stdout=%q", res.ExitCode, res.Stdout)
	}
	if !strings.Contains(res.Stdout, "0.7500042337") {
		t.Fatalf("unexpected output %q", res.Stdout)
	}
	if res.FPInstructions == 0 {
		t.Fatal("no FP instructions retired")
	}
}

func TestFPVMBoxedMatchesNative(t *testing.T) {
	img := buildDivLoop(t, 10)
	native, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	for _, cfg := range []fpvm.Config{
		{Alt: fpvm.AltBoxed},
		{Alt: fpvm.AltBoxed, Seq: true},
		{Alt: fpvm.AltBoxed, Short: true},
		{Alt: fpvm.AltBoxed, Seq: true, Short: true},
	} {
		res, err := fpvm.Run(img, cfg)
		if err != nil {
			t.Fatalf("%+v: run: %v", cfg, err)
		}
		if res.Stdout != native.Stdout {
			t.Errorf("%+v: stdout %q != native %q", cfg, res.Stdout, native.Stdout)
		}
		if res.Traps == 0 {
			t.Errorf("%+v: expected FP traps", cfg)
		}
		if res.Cycles <= native.Cycles {
			t.Errorf("%+v: FPVM (%d cycles) not slower than native (%d)", cfg, res.Cycles, native.Cycles)
		}
		if cfg.Short && !res.ShortActive {
			t.Errorf("%+v: short-circuit did not engage", cfg)
		}
	}
}

func TestSeqEmulationAmortizes(t *testing.T) {
	img := buildDivLoop(t, 200)
	noSeq, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed})
	if err != nil {
		t.Fatalf("noseq: %v", err)
	}
	seq, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true})
	if err != nil {
		t.Fatalf("seq: %v", err)
	}
	if seq.Traps >= noSeq.Traps {
		t.Errorf("sequence emulation did not reduce traps: %d >= %d", seq.Traps, noSeq.Traps)
	}
	if avg := seq.Breakdown.AvgSeqLen(); avg < 1.5 {
		t.Errorf("avg sequence length %.2f, want >= 1.5", avg)
	}
	if seq.Cycles >= noSeq.Cycles {
		t.Errorf("SEQ (%d cycles) not faster than NONE (%d)", seq.Cycles, noSeq.Cycles)
	}
}

func TestShortCircuitFasterThanSignals(t *testing.T) {
	img := buildDivLoop(t, 200)
	slow, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Errorf("SHORT (%d) not faster than NONE (%d)", fast.Cycles, slow.Cycles)
	}
	if fast.KernelStats.ShortCircuits == 0 {
		t.Error("no short-circuit deliveries recorded")
	}
	if fast.KernelStats.SignalsFPE != 0 {
		t.Error("SIGFPE deliveries on the short-circuit path")
	}
}

func TestMPFRRuns(t *testing.T) {
	img := buildDivLoop(t, 20)
	res, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltMPFR, Seq: true, Short: true})
	if err != nil {
		t.Fatalf("mpfr run: %v", err)
	}
	// 1/3 at 200 bits then +0.5, demoted at print time: the double-
	// rounded result matches the native double computation closely but
	// not necessarily bitwise; the printed prefix should agree.
	if !strings.HasPrefix(res.Stdout, "0.75") {
		t.Errorf("mpfr output %q", res.Stdout)
	}
}
