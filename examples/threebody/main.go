// Threebody: the correctness-instrumentation pipeline of §5 end to end.
// The three-body workload prints positions with printf (foreign function
// correctness) and reinterprets coordinates as integers through memory
// (memory-escape correctness). This example profiles the binary, patches
// it both ways (int3 vs magic traps), and compares outputs and costs.
package main

import (
	"fmt"
	"log"

	"fpvm"
	"fpvm/internal/telemetry"
	"fpvm/internal/workloads"
)

func main() {
	img, err := workloads.Build(workloads.ThreeBody, 1)
	if err != nil {
		log.Fatal(err)
	}
	native, err := fpvm.RunNative(img)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: find memory-escape sites with the PIN-like profiler (§5.1).
	sites, stats, err := fpvm.ProfileSites(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiler: %d float stores, %d integer loads, %d patch sites\n",
		stats.FPStores, stats.IntLoads, len(sites))

	// The static analysis finds a superset (the paper replaced it because
	// its demands explode on large applications).
	static, _, err := fpvm.AnalyzeSites(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis would patch %d sites (conservative superset)\n\n", len(static))

	// Step 2: patch and run under FPVM, both trap styles.
	cfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true}
	for _, style := range []struct {
		name  string
		which fpvm.PatchStyle
	}{
		{"int3+SIGTRAP (traditional)", fpvm.PatchInt3},
		{"magic traps (kernel bypass)", fpvm.PatchMagic},
	} {
		patched, err := fpvm.PatchImage(img, sites, style.which)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fpvm.Run(patched, cfg)
		if err != nil {
			log.Fatal(err)
		}
		match := "MATCHES native"
		if res.Stdout != native.Stdout {
			match = "DIVERGES from native"
		}
		perEvent := float64(res.Breakdown.Cycles[telemetry.Corr]) /
			float64(max(1, res.Breakdown.CorrEvents))
		fmt.Printf("%-28s: %d correctness events, %.0f cycles/event, output %s\n",
			style.name, res.Breakdown.CorrEvents, perEvent, match)
	}

	fmt.Println("\nmagic traps replace a ~6,000 cycle kernel round trip with a")
	fmt.Println("~100-200 cycle call through the magic page (paper: 14-120x).")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
