// Lorenz: reproduce the paper's headline result on its best-case workload
// — the Lorenz attractor's long straight-line FP sequences make sequence
// emulation shine (~32+ instructions amortized per trap), and combined
// with trap short-circuiting the slowdown approaches the intrinsic cost
// of the alternative arithmetic itself (Figure 5's 1.65x).
package main

import (
	"fmt"
	"log"

	"fpvm"
	"fpvm/internal/workloads"
)

func main() {
	img, err := workloads.Build(workloads.Lorenz, 1)
	if err != nil {
		log.Fatal(err)
	}
	native, err := fpvm.RunNative(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native: %s", native.Stdout)
	fmt.Printf("%-12s %14s %10s %12s %14s\n",
		"config", "cycles", "slowdown", "insts/trap", "vs lower bound")

	for _, cfg := range []fpvm.Config{
		{Alt: fpvm.AltBoxed},
		{Alt: fpvm.AltBoxed, Seq: true},
		{Alt: fpvm.AltBoxed, Short: true},
		{Alt: fpvm.AltBoxed, Seq: true, Short: true},
	} {
		res, err := fpvm.Run(img, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Stdout != native.Stdout {
			log.Fatalf("%s: output diverged", cfg.ConfigName())
		}
		fmt.Printf("%-12s %14d %9.1fx %12.1f %13.2fx\n",
			cfg.ConfigName(), res.Cycles,
			res.Slowdown(native.Cycles),
			res.Breakdown.AvgSeqLen(),
			res.SlowdownFromLowerBound(native.Cycles))
	}
	fmt.Println("\n1.0x in the last column would be zero virtualization overhead;")
	fmt.Println("SEQ SHORT approaches it, as in the paper's Figure 5.")
}
