// Quickstart: compile a tiny numeric kernel for the simulated machine,
// run it natively, then run the same unmodified binary under floating
// point virtualization with the paper's accelerations enabled.
package main

import (
	"fmt"
	"log"

	"fpvm"
	c "fpvm/internal/compile"
)

func main() {
	// A little program in the kernel language: iterate x = x/3 + 0.5
	// (every division is inexact, so under FPVM every iteration traps).
	p := c.NewProgram("quickstart")
	p.Globals["x"] = 1.0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(1000), Body: []c.Stmt{
			c.Assign{Dst: "x", Src: c.Add2(c.Div2(c.Var("x"), c.Num(3)), c.Num(0.5))},
		}},
		c.PrintF64{X: c.Var("x")},
	}})

	img, err := c.Compile(p)
	if err != nil {
		log.Fatal(err)
	}

	// Native baseline.
	native, err := fpvm.RunNative(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:       %s  (%d cycles)\n", trim(native.Stdout), native.Cycles)

	// The same binary under FPVM with Boxed IEEE: bit-for-bit identical
	// output, now with every FP operation virtualized.
	res, err := fpvm.Run(img, fpvm.Config{
		Alt:   fpvm.AltBoxed,
		Seq:   true, // instruction sequence emulation (§4)
		Short: true, // trap short-circuiting kernel module (§3)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fpvm[boxed]:  %s  (%d cycles, slowdown %.1fx)\n",
		trim(res.Stdout), res.Cycles, res.Slowdown(native.Cycles))
	fmt.Printf("  %d traps, %d instructions emulated (%.1f per trap)\n",
		res.Traps, res.EmulatedInsts, res.Breakdown.AvgSeqLen())
	if res.Stdout == native.Stdout {
		fmt.Println("  output is bit-for-bit identical to native — virtualization is transparent")
	}

	// Reconfigure to 200-bit MPFR-style arithmetic: no recompilation, the
	// binary is untouched.
	hp, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltMPFR, Seq: true, Short: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fpvm[mpfr]:   %s  (200-bit arithmetic, same binary)\n", trim(hp.Stdout))
}

func trim(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		return s[:n-1]
	}
	return s
}
