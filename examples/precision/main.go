// Precision: the reason floating point virtualization exists — run one
// unmodified binary under five different arithmetic systems and watch the
// numerics change. The kernel is a classic catastrophic-cancellation sum:
// s = (1e16 + pi) - 1e16, whose true value is pi but which doubles mangle.
package main

import (
	"fmt"
	"log"
	"math"

	"fpvm"
	c "fpvm/internal/compile"
)

func buildKernel() *c.Program {
	p := c.NewProgram("precision")
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		// big = 1e16; s = (big + pi) - big
		c.Assign{Dst: "big", Src: c.Num(1e16)},
		c.Assign{Dst: "s", Src: c.Sub2(c.Add2(c.Var("big"), c.Num(math.Pi)), c.Var("big"))},
		c.PrintF64{X: c.Var("s")},
		// And a drift accumulator: add 0.1 a thousand times.
		c.Assign{Dst: "acc", Src: c.Num(0)},
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(1000), Body: []c.Stmt{
			c.Assign{Dst: "acc", Src: c.Add2(c.Var("acc"), c.Num(0.1))},
		}},
		c.PrintF64{X: c.Var("acc")},
	}})
	return p
}

func main() {
	img, err := c.Compile(buildKernel())
	if err != nil {
		log.Fatal(err)
	}

	native, err := fpvm.RunNative(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true values:      %.17g and 100\n", math.Pi)
	fmt.Printf("%-18s %s", "native double:", indent(native.Stdout))

	for _, kind := range []fpvm.AltKind{
		fpvm.AltBoxed, fpvm.AltMPFR, fpvm.AltPosit, fpvm.AltInterval, fpvm.AltRational,
	} {
		res, err := fpvm.Run(img, fpvm.Config{Alt: kind, Seq: true, Short: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %s", "fpvm["+string(kind)+"]:", indent(res.Stdout))
	}

	fmt.Println("\nboxed reproduces the double exactly (it IS double arithmetic);")
	fmt.Println("mpfr@200bit and rational recover pi and the exact 100;")
	fmt.Println("posit64's tapered precision is LOWER near 1e16 (the regime eats")
	fmt.Println("fraction bits), so it loses pi entirely — tapering cuts both ways;")
	fmt.Println("interval returns midpoints of rigorously widened bounds.")
}

func indent(s string) string {
	out := ""
	first := true
	for _, line := range splitLines(s) {
		if first {
			out += line + "\n"
			first = false
		} else {
			out += "                   " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
