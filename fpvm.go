// Package fpvm is a Go reproduction of "Virtualization So Light, it
// Floats! Accelerating Floating Point Virtualization" (HPDC '25): a
// floating point virtual machine that lets unmodified (simulated x64)
// binaries run on alternative arithmetic systems via trap-and-emulate,
// together with the paper's three accelerations — trap short-circuiting,
// instruction sequence emulation, and kernel-bypass correctness
// instrumentation.
//
// The public API orchestrates the full simulated stack: a paged address
// space, an x64-flavoured machine with precise SSE exception semantics, a
// kernel with POSIX signal delivery and the FPVM kernel module, the host
// libc/libm bridge, and the FPVM runtime itself.
//
// Quickstart:
//
//	img := workloads.Build(workloads.Lorenz, workloads.SmallParams())
//	res, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
//	fmt.Println(res.Stdout, res.Slowdown(native.Cycles))
package fpvm

import (
	"fmt"

	"fpvm/internal/alt"
	"fpvm/internal/checkpoint"
	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"

	fpvmrt "fpvm/internal/fpvm"
)

// AltKind selects the alternative arithmetic system.
type AltKind string

const (
	// AltBoxed is the paper's "Boxed IEEE" worst-case system: hardware
	// doubles stored in heap boxes behind NaN-boxed pointers.
	AltBoxed AltKind = "boxed"
	// AltMPFR is the from-scratch arbitrary-precision binary float
	// system standing in for GNU MPFR (default 200 bits).
	AltMPFR AltKind = "mpfr"
	// AltPosit computes in 64-bit posit arithmetic (es=2).
	AltPosit AltKind = "posit"
	// AltPosit32 computes in 32-bit posits.
	AltPosit32 AltKind = "posit32"
	// AltInterval computes in outward-rounded interval arithmetic.
	AltInterval AltKind = "interval"
	// AltRational computes in exact rational arithmetic.
	AltRational AltKind = "rational"
)

// Config configures one virtualized run.
type Config struct {
	// Alt selects the alternative arithmetic system (default AltBoxed).
	Alt AltKind

	// Precision is the significand precision in bits for AltMPFR
	// (default 200, matching the paper's MPFR configuration).
	Precision uint

	// PrecisionPolicy enables the adaptive per-RIP precision policy
	// engine: every instruction site starts on boxed IEEE, sites where
	// exceptions cluster escalate to interval arithmetic, and sites whose
	// interval bounds grow wide escalate further to MPFR (decaying back
	// once bounds stay tight). Requires Alt to be AltBoxed (or empty) —
	// the engine layers boxed/interval/MPFR itself. Precision sets the
	// escalated MPFR precision. Policy runs cannot be preempted/resumed:
	// site state is process-local.
	PrecisionPolicy bool

	// Seq enables instruction sequence emulation (§4).
	Seq bool

	// Short enables trap short-circuiting via the kernel module (§3).
	Short bool

	// MagicWraps selects Lief-style symbol rewriting for foreign function
	// wrappers instead of LD_PRELOAD forward wrapping (§5.3). Identical
	// cost; mechanism ablation only.
	MagicWraps bool

	// GCThreshold, CacheCapacity, SeqLimit tune the runtime (0 =
	// defaults: 4096 boxes, 64K entries, 256 instructions).
	GCThreshold   int
	CacheCapacity int
	SeqLimit      int

	// Profile collects per-sequence statistics (Figures 7-10).
	Profile bool

	// EmulateAll disables the "no NaN-boxed source" sequence termination
	// rule (ablation of the §4.1 tradeoff).
	EmulateAll bool

	// FutureHW enables the paper's §8 future-work hardware model:
	// user-level FP traps delivered without entering the kernel, and
	// hardware NaN-box escape detection that eliminates correctness
	// patching entirely. Overrides Short.
	FutureHW bool

	// MaxSteps bounds execution in event boundaries (0 = 500M).
	MaxSteps uint64

	// Inject, when set, arms deterministic fault injection at the trap
	// pipeline's named sites (see internal/faultinject.Sites). Injected
	// faults exercise the recovery ladder: bounded retry, degradation to
	// native IEEE, or clean detach.
	Inject *faultinject.Injector

	// MaxLiveBoxes caps the live NaN-box population (0 = unbounded). At
	// the cap FPVM forces a collection; if the heap is still full the
	// result degrades to a plain IEEE double instead of growing the heap.
	MaxLiveBoxes int

	// RetryBudget is the per-site, per-trap transient retry budget
	// (0 = default 3).
	RetryBudget int

	// RetryBackoffCycles, when > 0, makes the recovery ladder's retry
	// rung charge a jittered exponential virtual-cycle delay before each
	// re-attempt (~base·2^k ±25%, deterministic), spreading retry storms
	// out instead of re-executing immediately. 0 (the default) keeps the
	// immediate-retry accounting.
	RetryBackoffCycles uint64

	// TrapCycleBudget is the per-trap virtual-cycle watchdog limit
	// (0 = default 10M cycles).
	TrapCycleBudget uint64

	// NoTraceCache disables the L2 software trace cache (ablation): every
	// trap re-walks its sequence through the per-instruction decode cache
	// instead of replaying the cached pre-bound sequence.
	NoTraceCache bool

	// JITThreshold is the replay count at which a hot trace is promoted
	// from interpreted replay to a tier-1 compiled closure chain
	// (0 = default 8). Both tiers charge identical virtual cycles, so the
	// threshold never changes guest-visible behavior — only host time.
	JITThreshold int

	// NoJIT disables tier-1 trace compilation (ablation, mirroring
	// NoTraceCache): hot traces keep replaying through the interpreted
	// loop.
	NoJIT bool

	// CheckpointInterval enables the rollback supervisor: every N traps
	// FPVM captures a crash-consistent snapshot of the whole VM, and
	// fatal-rung failures restore the last snapshot and re-execute with
	// the distrusted instruction quarantined to native execution instead
	// of detaching. 0 (the default) disables checkpointing.
	CheckpointInterval int

	// MaxRollbacks bounds rollback attempts per run (0 = default 8).
	MaxRollbacks int

	// Shared, when set, backs the VM's private decode/trace cache with a
	// fleet-wide concurrency-safe store (see NewSharedCache): one VM's
	// decode or trace build warms every VM attached to the same store.
	// All runs sharing a store must execute the same program image; Run
	// enforces this via SharedCache.Bind and fails fast on a mismatch.
	Shared *SharedCache

	// PreemptQuantum, when > 0, preempts the run after roughly that many
	// virtual cycles at the next event boundary (never mid-trap). Run then
	// returns a Result with Preempted set and Snapshot holding the
	// serialized VM, which Resume continues from — in this process or
	// another one. Requires an alt system with a value codec (all shipped
	// systems have one).
	PreemptQuantum uint64

	// Observer, when set, receives a NaN-box-normalized architectural
	// snapshot after every handled trap (passive: no cycles are charged).
	// Harnesses use it to compare trap streams across runs.
	Observer func(*TrapState)
}

// TrapState is the per-trap architectural snapshot delivered to
// Config.Observer (see internal/fpvm.TrapState).
type TrapState = fpvmrt.TrapState

// SharedCache is a concurrency-safe decode/trace store shared by many
// concurrent Runs of the same image (fleet execution). See
// internal/dcache.SharedCache for semantics.
type SharedCache = dcache.SharedCache

// NewSharedCache returns a shared decode/trace store bounded like a
// private cache of the given capacity (0 = default 64K entries).
func NewSharedCache(capacity int) *SharedCache {
	return dcache.NewShared(capacity)
}

// ConfigName renders the paper's config label (NONE/SEQ/SHORT/SEQ SHORT).
func (c Config) ConfigName() string {
	switch {
	case c.Seq && c.Short:
		return "SEQ SHORT"
	case c.Seq:
		return "SEQ"
	case c.Short:
		return "SHORT"
	}
	return "NONE"
}

// NewAltSystem instantiates the configured alternative arithmetic system.
func NewAltSystem(kind AltKind, precision uint) (alt.System, error) {
	if precision == 0 {
		precision = 200
	}
	switch kind {
	case AltBoxed, "":
		return alt.NewBoxedIEEE(), nil
	case AltMPFR:
		return alt.NewMPFR(precision), nil
	case AltPosit:
		return alt.NewPosit(), nil
	case AltPosit32:
		return alt.NewPosit32(), nil
	case AltInterval:
		return alt.NewInterval(), nil
	case AltRational:
		return alt.NewRational(), nil
	}
	return nil, fmt.Errorf("fpvm: unknown alternative arithmetic system %q", kind)
}

// newSystemFor instantiates the run's alt system, wrapping the adaptive
// policy engine around it when Config.PrecisionPolicy is set.
func newSystemFor(cfg Config) (alt.System, error) {
	if cfg.PrecisionPolicy {
		if cfg.Alt != AltBoxed && cfg.Alt != "" {
			return nil, fmt.Errorf("fpvm: PrecisionPolicy layers boxed/interval/mpfr itself; Alt must be boxed (got %q)", cfg.Alt)
		}
		return fpvmrt.NewPolicyEngine(fpvmrt.PolicyConfig{MPFRPrecision: cfg.Precision}), nil
	}
	return NewAltSystem(cfg.Alt, cfg.Precision)
}

// PolicyStats is the adaptive precision policy engine's activity snapshot
// (see internal/fpvm.PolicyStats).
type PolicyStats = fpvmrt.PolicyStats

// Result reports a completed run.
type Result struct {
	Stdout   string
	ExitCode int

	// Cycles is the total virtual cycle count (guest + kernel + FPVM).
	Cycles uint64

	// Instructions / FPInstructions are natively retired counts.
	Instructions   uint64
	FPInstructions uint64

	// Traps is the number of FP trap deliveries; EmulatedInsts the
	// instructions FPVM emulated.
	Traps         uint64
	EmulatedInsts uint64

	// Breakdown is the telemetry cost breakdown (nil for native runs).
	Breakdown *telemetry.Breakdown

	// SeqProfile holds sequence statistics when Config.Profile was set.
	SeqProfile *dcache.SeqProfile

	// ShortActive reports whether the kernel-module path engaged.
	ShortActive bool

	// GCRuns, Promotions, Demotions, DecodeCacheEntries expose runtime
	// internals for the evaluation harness.
	GCRuns             uint64
	Promotions         uint64
	Demotions          uint64
	DecodeCacheEntries int

	// Trace cache outcomes (§4.2 L2 trace table). TraceHits/TraceMisses
	// count sequence traps served by replay vs walked; TraceDivergences
	// replays that exited early on a boxedness divergence; ReplayedInsts
	// instructions emulated via replay; TraceCacheEntries the cached
	// sequence count at exit.
	TraceHits         uint64
	TraceMisses       uint64
	TraceDivergences  uint64
	ReplayedInsts     uint64
	TraceCacheEntries int

	// Tier-1 trace JIT outcomes. JITCompiles counts trace bodies compiled
	// this process (process-local: a resumed or forked run recompiles, so
	// this is the one JIT counter not preserved across snapshots);
	// JITExecs replays served by a compiled body; JITDeopts compiled
	// replays that deopted to the interpreter on a guard failure;
	// JITInsts instructions executed through compiled steps.
	JITCompiles uint64
	JITExecs    uint64
	JITDeopts   uint64
	JITInsts    uint64

	// Shared-cache adoptions (Config.Shared != nil): local misses served
	// by another VM's published decode (SharedHits) or trace snapshot
	// (SharedTraceHits). Zero on private-cache runs.
	SharedHits      uint64
	SharedTraceHits uint64

	// KernelStats snapshots delegation counters.
	KernelStats kernel.Stats

	// Recovery ladder outcomes. Detached means the fatal rung fired:
	// FPVM restored native FP semantics mid-run and the guest finished
	// un-virtualized (results past that point are native IEEE only).
	Detached        bool
	Retries         uint64
	BackoffCycles   uint64
	Degradations    uint64
	WatchdogAborts  uint64
	PanicRecoveries uint64
	AbortedTraps    uint64

	// Rollback supervisor outcomes (Config.CheckpointInterval > 0).
	// Checkpoints counts snapshots captured; Rollbacks fatal failures
	// resolved by restoring a snapshot and re-executing (the run stayed
	// fully virtualized); RollbackFailures attempts that escalated down
	// the ladder instead; Quarantines distinct RIPs pinned to native
	// execution after a rollback.
	Checkpoints      uint64
	Rollbacks        uint64
	RollbackFailures uint64
	Quarantines      uint64

	// FaultReport is the injector's per-site ledger ("" when no injector
	// was armed).
	FaultReport string

	// Policy holds the adaptive precision policy engine's stats when
	// Config.PrecisionPolicy was set (nil otherwise).
	Policy *PolicyStats

	// Preempted is set when Config.PreemptQuantum expired before the
	// guest exited; Snapshot then holds the serialized VM (the checkpoint
	// wire format) for Resume. A preempted Result reports the state so
	// far: partial stdout, no exit code.
	Preempted bool
	Snapshot  []byte

	// Resumed is set on Results produced by Resume (directly or after
	// further preemptions).
	Resumed bool

	// Final is the NaN-box-normalized end-of-run architectural state
	// (registers, MXCSR, RFLAGS, stdout length). Nil for native runs and
	// preempted results.
	Final *TrapState
}

// TraceHitRate returns the fraction of sequence traps served by trace
// replay (0 when the trace cache never engaged).
func (r *Result) TraceHitRate() float64 {
	t := r.TraceHits + r.TraceMisses
	if t == 0 {
		return 0
	}
	return float64(r.TraceHits) / float64(t)
}

// AltmathCycles returns cycles spent in the alternative arithmetic system
// (the paper's intrinsic lower-bound component).
func (r *Result) AltmathCycles() uint64 {
	if r.Breakdown == nil {
		return 0
	}
	return r.Breakdown.Cycles[telemetry.Altmath]
}

// Slowdown returns this run's slowdown relative to a native cycle count.
func (r *Result) Slowdown(nativeCycles uint64) float64 {
	if nativeCycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(nativeCycles)
}

// LowerBoundSlowdown returns the intrinsic slowdown of the alternative
// arithmetic alone: (native + altmath) / native (§6.1).
func (r *Result) LowerBoundSlowdown(nativeCycles uint64) float64 {
	if nativeCycles == 0 {
		return 0
	}
	return float64(nativeCycles+r.AltmathCycles()) / float64(nativeCycles)
}

// SlowdownFromLowerBound returns slowdown relative to the lower bound
// (Figure 5: 1.0 = zero virtualization overhead).
func (r *Result) SlowdownFromLowerBound(nativeCycles uint64) float64 {
	lb := nativeCycles + r.AltmathCycles()
	if lb == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(lb)
}

const defaultMaxSteps = 500_000_000

// RunNative executes img without FPVM (MXCSR fully masked) and returns
// the baseline result.
func RunNative(img *obj.Image) (*Result, error) {
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	p := kernel.NewProcess(k, m, img.Name)
	lib := hostlib.Install(p)

	if err := loadAndStart(p, img, resolverFor(img, lib)); err != nil {
		return nil, err
	}
	err := p.Run(defaultMaxSteps)
	res := &Result{
		Stdout:         p.Stdout.String(),
		ExitCode:       p.ExitCode,
		Cycles:         m.Cycles,
		Instructions:   m.Instructions,
		FPInstructions: m.FPInstructions,
		KernelStats:    k.Stats,
	}
	return res, err
}

// Run executes img under FPVM with cfg.
func Run(img *obj.Image, cfg Config) (*Result, error) {
	return runVM(img, cfg, nil)
}

// Resume continues a preempted run from its serialized snapshot (the
// Snapshot field of a Preempted Result, or the bytes of a snapshot file).
// img and cfg must match the original run: the snapshot binds to the
// image's hash, the alt system's name and the semantic configuration, and
// Resume rejects any mismatch without constructing a VM. The resumed
// execution is exact — stdout, trap stream and final architectural state
// are bit-identical to an uninterrupted run.
func Resume(img *obj.Image, cfg Config, snapshot []byte) (*Result, error) {
	snap, err := checkpoint.Decode(snapshot)
	if err != nil {
		return nil, err
	}
	sys, err := newSystemFor(cfg)
	if err != nil {
		return nil, err
	}
	if err := snap.Validate(img.Hash(), sys.Name(), ConfigSignature(cfg)); err != nil {
		return nil, err
	}
	return runVM(img, cfg, snap)
}

// ConfigSignature fingerprints the configuration fields that affect
// execution semantics (not observation or bookkeeping): a snapshot may
// only resume under a configuration that would have produced the
// identical execution. The fleet recovery path uses it to validate
// on-disk snapshots against the jobs it is about to resume. JIT tiering
// (JITThreshold, NoJIT) is deliberately excluded: compiled and
// interpreted replay are cycle- and counter-exact, so a snapshot resumes
// correctly under either tier.
func ConfigSignature(cfg Config) string {
	sig := fmt.Sprintf("seq=%t short=%t magicwraps=%t gc=%d cache=%d seqlim=%d emulall=%t futurehw=%t maxboxes=%d retries=%d watchdog=%d notrace=%t ckpt=%d maxrb=%d prec=%d backoff=%d",
		cfg.Seq, cfg.Short, cfg.MagicWraps, cfg.GCThreshold, cfg.CacheCapacity,
		cfg.SeqLimit, cfg.EmulateAll, cfg.FutureHW, cfg.MaxLiveBoxes,
		cfg.RetryBudget, cfg.TrapCycleBudget, cfg.NoTraceCache,
		cfg.CheckpointInterval, cfg.MaxRollbacks, cfg.Precision, cfg.RetryBackoffCycles)
	// Appended only when enabled so every pre-policy snapshot signature is
	// preserved byte-for-byte.
	if cfg.PrecisionPolicy {
		sig += " policy=1"
	}
	return sig
}

// VM is a fully constructed, not-yet-executed virtual machine: address
// space mapped, image loaded, FPVM attached with wrappers installed,
// entry point armed, MXCSR trapping. Prepare builds one; Run or Resume
// consumes it. A VM is single-use — execution dirties the guest address
// space — so a second Run/Resume on the same VM fails.
//
// The split exists for warm pooling: a serving layer can construct VMs
// ahead of demand (off the request path) and hand each job a pre-built
// shell, paying only the step loop per request. Everything captured at
// Prepare time is semantic configuration; the preemption quantum is a
// scheduling knob (deliberately outside ConfigSignature) and may be
// adjusted per slice with SetPreemptQuantum.
type VM struct {
	img  *obj.Image
	cfg  Config
	sys  alt.System
	m    *machine.Machine
	k    *kernel.Kernel
	p    *kernel.Process
	rt   *fpvmrt.Runtime
	used bool
}

// Prepare builds the full virtual machine for img without executing it.
// The returned VM runs cfg's configuration exactly as Run(img, cfg)
// would; Run/Resume on it are the execution halves of that call.
func Prepare(img *obj.Image, cfg Config) (*VM, error) {
	sys, err := newSystemFor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Shared != nil {
		// Shared decodes/traces are only valid for the image they were
		// built from; one shared store serves exactly one image.
		if err := cfg.Shared.Bind(img); err != nil {
			return nil, err
		}
	}

	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	if cfg.Short {
		k.LoadModule()
	}
	p := kernel.NewProcess(k, m, img.Name)
	lib := hostlib.Install(p)

	rt, err := fpvmrt.Attach(p, fpvmrt.Config{
		Alt:                sys,
		Seq:                cfg.Seq,
		Short:              cfg.Short,
		MagicWraps:         cfg.MagicWraps,
		GCThreshold:        cfg.GCThreshold,
		CacheCapacity:      cfg.CacheCapacity,
		SeqLimit:           cfg.SeqLimit,
		Profile:            cfg.Profile,
		EmulateAll:         cfg.EmulateAll,
		FutureHW:           cfg.FutureHW,
		Inject:             cfg.Inject,
		MaxLiveBoxes:       cfg.MaxLiveBoxes,
		RetryBudget:        cfg.RetryBudget,
		RetryBackoffCycles: cfg.RetryBackoffCycles,
		TrapCycleBudget:    cfg.TrapCycleBudget,
		NoTraceCache:       cfg.NoTraceCache,
		JITThreshold:       cfg.JITThreshold,
		NoJIT:              cfg.NoJIT,
		CheckpointInterval: cfg.CheckpointInterval,
		MaxRollbacks:       cfg.MaxRollbacks,
		Shared:             cfg.Shared,
		Observer:           cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	rt.InstallWrappers(lib)

	runImg := img
	if cfg.MagicWraps {
		runImg = img.Clone()
		rt.ApplyMagicWraps(runImg)
	}

	if err := loadAndStart(p, runImg, rt.WrapResolver(resolverFor(runImg, lib))); err != nil {
		return nil, err
	}
	// FPVM's Attach set MXCSR before the machine was started; make sure
	// program start didn't reset it.
	m.CPU.MXCSR = machine.MXCSRTrapAll

	return &VM{img: img, cfg: cfg, sys: sys, m: m, k: k, p: p, rt: rt}, nil
}

// SetPreemptQuantum adjusts the slice length before Run or Resume.
// Quantum is excluded from ConfigSignature, so a VM prepared under one
// quantum may execute (and resume snapshots taken) under another.
func (vm *VM) SetPreemptQuantum(q uint64) { vm.cfg.PreemptQuantum = q }

// Run executes the prepared VM from its entry point.
func (vm *VM) Run() (*Result, error) { return vm.exec(nil) }

// Resume executes the prepared VM from a serialized snapshot, subject to
// the same bindings as the package-level Resume: the snapshot must match
// the VM's image hash, alt system and semantic configuration.
func (vm *VM) Resume(snapshot []byte) (*Result, error) {
	snap, err := checkpoint.Decode(snapshot)
	if err != nil {
		return nil, err
	}
	if err := snap.Validate(vm.img.Hash(), vm.sys.Name(), ConfigSignature(vm.cfg)); err != nil {
		return nil, err
	}
	return vm.exec(snap)
}

// exec is the step loop shared by Run and Resume: optionally reinstate a
// decoded snapshot, then run to completion or the preemption quantum.
func (vm *VM) exec(snap *checkpoint.Image) (*Result, error) {
	if vm.used {
		return nil, fmt.Errorf("fpvm: VM already executed (prepared VMs are single-use)")
	}
	vm.used = true
	cfg, m, k, p, rt := vm.cfg, vm.m, vm.k, vm.p, vm.rt

	var steps uint64
	if snap != nil {
		if err := rt.RestoreImage(snap); err != nil {
			return nil, err
		}
		steps = snap.Steps
	}
	if cfg.PreemptQuantum > 0 && !rt.CanSuspend() {
		return nil, fmt.Errorf("fpvm: PreemptQuantum requires an alt system with a value codec (%q has none)", vm.sys.Name())
	}

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}

	// The step loop mirrors kernel.Process.Run but watches the virtual
	// clock: once this slice has consumed the preemption quantum, the run
	// suspends at the next event boundary (a point where no trap is in
	// flight and machine.CPU is authoritative).
	var runErr error
	preempted := false
	sliceStart := m.Cycles
	for p.Step() {
		steps++
		if maxSteps != 0 && steps >= maxSteps {
			runErr = fmt.Errorf("kernel: process %s exceeded %d steps", p.Name, maxSteps)
			break
		}
		if cfg.PreemptQuantum > 0 && m.Cycles-sliceStart >= cfg.PreemptQuantum && !p.Exited {
			preempted = true
			break
		}
	}
	if runErr == nil {
		runErr = p.Err
	}
	if runErr == nil {
		runErr = rt.Err()
	}

	if preempted && runErr == nil {
		wi, err := rt.CaptureImage(vm.img.Hash(), ConfigSignature(cfg), steps)
		if err != nil {
			return nil, err
		}
		data, err := wi.Encode()
		if err != nil {
			return nil, err
		}
		res := partialResult(p, m, k, rt)
		res.Preempted = true
		res.Snapshot = data
		res.Resumed = snap != nil
		if cfg.Inject != nil {
			res.FaultReport = cfg.Inject.Report()
		}
		return res, nil
	}

	res := partialResult(p, m, k, rt)
	final := rt.CaptureFinal()
	res.Final = &final
	res.Resumed = snap != nil
	if cfg.Inject != nil {
		res.FaultReport = cfg.Inject.Report()
	}
	return res, runErr
}

// runVM builds the full virtual machine for img, optionally reinstates a
// decoded snapshot, and runs to completion or the preemption quantum.
func runVM(img *obj.Image, cfg Config, snap *checkpoint.Image) (*Result, error) {
	vm, err := Prepare(img, cfg)
	if err != nil {
		return nil, err
	}
	return vm.exec(snap)
}

// partialResult assembles the counter surface shared by completed and
// preempted results.
func partialResult(p *kernel.Process, m *machine.Machine, k *kernel.Kernel, rt *fpvmrt.Runtime) *Result {
	return &Result{
		Stdout:             p.Stdout.String(),
		ExitCode:           p.ExitCode,
		Cycles:             m.Cycles,
		Instructions:       m.Instructions,
		FPInstructions:     m.FPInstructions,
		Traps:              rt.Tel.Traps,
		EmulatedInsts:      rt.Tel.EmulatedInsts,
		Breakdown:          &rt.Tel,
		SeqProfile:         rt.Profile,
		ShortActive:        rt.ShortActive,
		GCRuns:             rt.GCRuns,
		Promotions:         rt.Promotions,
		Demotions:          rt.Demotions,
		DecodeCacheEntries: rt.Cache().Len(),
		TraceHits:          rt.Tel.TraceHits,
		TraceMisses:        rt.Tel.TraceMisses,
		TraceDivergences:   rt.Tel.TraceDivergences,
		ReplayedInsts:      rt.Tel.ReplayedInsts,
		JITCompiles:        rt.JITCompiles,
		JITExecs:           rt.Tel.JITExecs,
		JITDeopts:          rt.Tel.JITDeopts,
		JITInsts:           rt.Tel.JITInsts,
		TraceCacheEntries:  rt.Cache().TraceLen(),
		SharedHits:         rt.Cache().Stats.SharedHits,
		SharedTraceHits:    rt.Cache().Stats.SharedTraceHits,
		KernelStats:        k.Stats,
		Detached:           rt.Detached(),
		Retries:            rt.Retries,
		BackoffCycles:      rt.Tel.BackoffCycles,
		Degradations:       rt.Degradations,
		WatchdogAborts:     rt.WatchdogAborts,
		PanicRecoveries:    rt.PanicRecoveries,
		AbortedTraps:       rt.Aborted,
		Checkpoints:        rt.Checkpoints,
		Rollbacks:          rt.Rollbacks,
		RollbackFailures:   rt.RollbackFailures,
		Quarantines:        rt.Quarantines,
		Policy:             rt.PolicyStats(),
	}
}

// resolverFor builds the base dynamic-link namespace: program symbols
// first, then the host library (ld.so search order).
func resolverFor(img *obj.Image, lib *hostlib.Library) obj.Resolver {
	return func(name string) (uint64, bool) {
		if sym, ok := img.Lookup(name); ok {
			return sym.Addr, true
		}
		addr, ok := lib.Exports[name]
		return addr, ok
	}
}

// loadAndStart maps the stack and guest heap, loads the image, and points
// the machine at the entry.
func loadAndStart(p *kernel.Process, img *obj.Image, resolve obj.Resolver) error {
	as := p.M.Mem
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	as.Map("heap", obj.HeapBase, obj.HeapSize, mem.PermRW)
	if err := img.Load(as, resolve); err != nil {
		return err
	}
	p.M.InvalidateICache()
	p.M.CPU.RIP = img.Entry
	p.M.CPU.GPR[4] = obj.StackTop - 64 // rsp, leave a landing area
	return nil
}
