package fpvm_test

import (
	"math"
	"testing"

	"fpvm"
	"fpvm/internal/workloads"
)

func TestNewAltSystemAllKinds(t *testing.T) {
	for _, kind := range []fpvm.AltKind{
		fpvm.AltBoxed, fpvm.AltMPFR, fpvm.AltPosit, fpvm.AltPosit32,
		fpvm.AltInterval, fpvm.AltRational, "",
	} {
		sys, err := fpvm.NewAltSystem(kind, 0)
		if err != nil || sys == nil {
			t.Errorf("NewAltSystem(%q): %v", kind, err)
		}
	}
	if _, err := fpvm.NewAltSystem("bogus", 0); err == nil {
		t.Error("bogus system accepted")
	}
}

func TestConfigNames(t *testing.T) {
	for _, c := range []struct {
		cfg  fpvm.Config
		want string
	}{
		{fpvm.Config{}, "NONE"},
		{fpvm.Config{Seq: true}, "SEQ"},
		{fpvm.Config{Short: true}, "SHORT"},
		{fpvm.Config{Seq: true, Short: true}, "SEQ SHORT"},
	} {
		if got := c.cfg.ConfigName(); got != c.want {
			t.Errorf("%+v: %q", c.cfg, got)
		}
	}
}

func TestResultMetrics(t *testing.T) {
	img := buildDivLoop(t, 50)
	native, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true})
	if err != nil {
		t.Fatal(err)
	}
	sd := res.Slowdown(native.Cycles)
	lb := res.LowerBoundSlowdown(native.Cycles)
	ratio := res.SlowdownFromLowerBound(native.Cycles)
	if sd <= 1 || lb <= 1 || ratio <= 1 {
		t.Errorf("metrics: sd=%f lb=%f ratio=%f", sd, lb, ratio)
	}
	if math.Abs(sd-lb*ratio) > sd*1e-9 {
		t.Errorf("slowdown (%f) != lower bound (%f) x ratio (%f)", sd, lb, ratio)
	}
	if res.AltmathCycles() == 0 {
		t.Error("no altmath cycles")
	}
	// Degenerate denominators.
	if res.Slowdown(0) != 0 || res.LowerBoundSlowdown(0) != 0 {
		t.Error("zero native cycles should give 0")
	}
	if native.AltmathCycles() != 0 {
		t.Error("native run has altmath cycles")
	}
}

// TestPatchPipelinePublicAPI exercises the patch.go surface end to end.
func TestPatchPipelinePublicAPI(t *testing.T) {
	img, err := workloads.Build(workloads.Enzo, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites, stats, err := fpvm.ProfileSites(img)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IntLoads == 0 {
		t.Error("profiler saw no integer loads")
	}
	static, sstats, err := fpvm.AnalyzeSites(img)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Instructions == 0 || len(static) < len(sites) {
		t.Errorf("static analysis: %+v (%d sites vs %d profiled)", sstats, len(static), len(sites))
	}
	patched, err := fpvm.PatchImage(img, sites, fpvm.PatchMagic)
	if err != nil {
		t.Fatal(err)
	}
	if len(patched.Section(".text").Data) <= len(img.Section(".text").Data) {
		t.Error("patching did not grow text")
	}
	// PrepareForFPVM is the one-call version.
	prepared, err := fpvm.PrepareForFPVM(img, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpvm.Run(prepared, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	native, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != native.Stdout {
		t.Errorf("prepared output %q != native %q", res.Stdout, native.Stdout)
	}
}

// TestPrepareNoSites: images without escape sites pass through unchanged.
func TestPrepareNoSites(t *testing.T) {
	img := buildDivLoop(t, 5)
	prepared, err := fpvm.PrepareForFPVM(img, true)
	if err != nil {
		t.Fatal(err)
	}
	if prepared != img {
		t.Error("site-free image was rewritten")
	}
}

// TestDeterminism: the simulator must be fully deterministic.
func TestDeterminism(t *testing.T) {
	img, err := workloads.Build(workloads.Pendulum, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, Profile: true}
	a, err := fpvm.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fpvm.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stdout != b.Stdout || a.Traps != b.Traps ||
		a.EmulatedInsts != b.EmulatedInsts || a.GCRuns != b.GCRuns {
		t.Errorf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

// TestAllAltSystemsRunWorkload: every arithmetic system completes a real
// workload.
func TestAllAltSystemsRunWorkload(t *testing.T) {
	img, err := workloads.Build(workloads.Lorenz, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []fpvm.AltKind{
		fpvm.AltBoxed, fpvm.AltMPFR, fpvm.AltPosit, fpvm.AltInterval, fpvm.AltRational,
	} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			res, err := fpvm.Run(img, fpvm.Config{Alt: kind, Seq: true, Short: true})
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if res.Traps == 0 || len(res.Stdout) == 0 {
				t.Errorf("%s: traps=%d stdout=%q", kind, res.Traps, res.Stdout)
			}
		})
	}
}
