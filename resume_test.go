// Resumption-exactness harness: for every alternative arithmetic system
// with a value codec, a run chopped into preemption slices — each slice
// round-tripped through the on-disk wire format — must be bit-identical
// to the uninterrupted run in stdout, virtual cycles, trap stream
// (oracle digests), final architectural state and telemetry counters.

package fpvm_test

import (
	"os"
	"path/filepath"
	"testing"

	"fpvm"
	"fpvm/internal/obj"
	"fpvm/internal/oracle"
	"fpvm/internal/workloads"
)

var allAltKinds = []fpvm.AltKind{
	fpvm.AltBoxed, fpvm.AltMPFR, fpvm.AltPosit,
	fpvm.AltPosit32, fpvm.AltInterval, fpvm.AltRational,
}

// runObserved runs img under cfg collecting the oracle-digested trap
// stream, resuming across preemptions. Each snapshot is persisted to
// and re-read from disk so the full wire format (framing, CRC, atomic
// write) is on the resumed path, not just in-memory bytes.
func runObserved(t *testing.T, img *obj.Image, cfg fpvm.Config, snapFile string) (*fpvm.Result, []oracle.TrapRec, int) {
	t.Helper()
	var recs []oracle.TrapRec
	cfg.Observer = func(st *fpvm.TrapState) { recs = append(recs, oracle.Digest(st)) }

	res, err := fpvm.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumes := 0
	for res.Preempted {
		resumes++
		snap := res.Snapshot
		if snapFile != "" {
			if err := os.WriteFile(snapFile, snap, 0o644); err != nil {
				t.Fatal(err)
			}
			if snap, err = os.ReadFile(snapFile); err != nil {
				t.Fatal(err)
			}
		}
		if res, err = fpvm.Resume(img, cfg, snap); err != nil {
			t.Fatal(err)
		}
	}
	return res, recs, resumes
}

func TestResumeBitIdentical(t *testing.T) {
	img, err := workloads.Build(workloads.Pendulum, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allAltKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := fpvm.Config{Alt: kind, Seq: true, Short: true}
			ref, refRecs, _ := runObserved(t, img, cfg, "")

			cfg2 := cfg
			cfg2.PreemptQuantum = 2_000_000
			snapFile := filepath.Join(t.TempDir(), "resume.snap")
			res, recs, resumes := runObserved(t, img, cfg2, snapFile)
			if resumes == 0 {
				t.Fatalf("workload finished inside one quantum; no resumption exercised")
			}
			t.Logf("%d resumes, %d traps", resumes, len(recs))

			if res.Stdout != ref.Stdout {
				t.Errorf("stdout diverged after %d resumes", resumes)
			}
			if res.Cycles != ref.Cycles {
				t.Errorf("virtual cycles diverged: resumed %d, uninterrupted %d", res.Cycles, ref.Cycles)
			}
			if i := oracle.CompareStreams(refRecs, recs); i != -1 {
				t.Errorf("trap stream diverged at trap #%d (of %d vs %d)", i+1, len(refRecs), len(recs))
			}
			if res.Final == nil || ref.Final == nil {
				t.Fatalf("missing final state capture")
			}
			if d := oracle.DiffFinal(ref.Final, res.Final); d != "" {
				t.Errorf("final architectural state diverged: %s", d)
			}
			if res.Traps != ref.Traps || res.EmulatedInsts != ref.EmulatedInsts {
				t.Errorf("telemetry diverged: traps %d/%d, emulated %d/%d",
					res.Traps, ref.Traps, res.EmulatedInsts, ref.EmulatedInsts)
			}
			if res.ExitCode != ref.ExitCode {
				t.Errorf("exit code diverged: %d vs %d", res.ExitCode, ref.ExitCode)
			}
			if !res.Resumed {
				t.Errorf("resumed run did not report Resumed")
			}
		})
	}
}

// TestResumeRepromotesJIT: compiled tier-1 bodies are per-VM process
// state — they must not survive CaptureImage/Resume. A run chopped by
// preemption with an aggressive JIT threshold must (a) stay bit-identical
// to the uninterrupted run in stdout, cycles, trap stream and telemetry,
// and (b) actually re-promote after resume: restored traces come back
// bare but keep their replay counters, so the resumed VM recompiles and
// keeps executing tier-1.
func TestResumeRepromotesJIT(t *testing.T) {
	img, err := workloads.Build(workloads.Pendulum, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, JITThreshold: 1}
	ref, refRecs, _ := runObserved(t, img, cfg, "")
	if ref.JITExecs == 0 {
		t.Fatalf("workload never engaged the JIT; test is vacuous")
	}

	cfg2 := cfg
	cfg2.PreemptQuantum = 2_000_000
	snapFile := filepath.Join(t.TempDir(), "resume.snap")
	res, recs, resumes := runObserved(t, img, cfg2, snapFile)
	if resumes == 0 {
		t.Fatalf("workload finished inside one quantum; no resumption exercised")
	}
	t.Logf("%d resumes; ref compiles=%d execs=%d; resumed final-slice compiles=%d execs=%d",
		resumes, ref.JITCompiles, ref.JITExecs, res.JITCompiles, res.JITExecs)

	if res.Stdout != ref.Stdout {
		t.Errorf("stdout diverged after %d resumes", resumes)
	}
	if res.Cycles != ref.Cycles {
		t.Errorf("virtual cycles diverged: resumed %d, uninterrupted %d", res.Cycles, ref.Cycles)
	}
	if i := oracle.CompareStreams(refRecs, recs); i != -1 {
		t.Errorf("trap stream diverged at trap #%d (of %d vs %d)", i+1, len(refRecs), len(recs))
	}
	if d := oracle.DiffFinal(ref.Final, res.Final); d != "" {
		t.Errorf("final architectural state diverged: %s", d)
	}
	// JIT telemetry lives in the serialized Breakdown, so the cumulative
	// counts survive each hop and must match the uninterrupted run exactly
	// (re-promotion replays the same schedule: restored traces keep Hits).
	if res.JITExecs != ref.JITExecs || res.JITInsts != ref.JITInsts || res.JITDeopts != ref.JITDeopts {
		t.Errorf("JIT telemetry diverged: execs %d/%d insts %d/%d deopts %d/%d",
			res.JITExecs, ref.JITExecs, res.JITInsts, ref.JITInsts, res.JITDeopts, ref.JITDeopts)
	}
	// JITCompiles is process-local (never serialized): the final slice
	// started from a snapshot with bare traces, so its compile count proves
	// the resumed VM re-promoted rather than inheriting a stale body.
	if res.JITCompiles == 0 {
		t.Errorf("resumed VM never recompiled: final slice ran %d compiled replays with 0 compiles",
			res.JITExecs)
	}
}

// TestResumeRejectsMismatchedBindings: a snapshot must not resume under
// a different image, alt system, or semantic configuration.
func TestResumeRejectsMismatchedBindings(t *testing.T) {
	img, err := workloads.Build(workloads.Pendulum, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true, PreemptQuantum: 200_000}
	res, err := fpvm.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Preempted {
		t.Fatalf("expected a preemption at quantum 200k")
	}

	other, err := workloads.Build(workloads.Lorenz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fpvm.Resume(other, cfg, res.Snapshot); err == nil {
		t.Errorf("resume under a different image succeeded")
	}
	wrongAlt := cfg
	wrongAlt.Alt = fpvm.AltPosit
	if _, err := fpvm.Resume(img, wrongAlt, res.Snapshot); err == nil {
		t.Errorf("resume under a different alt system succeeded")
	}
	wrongCfg := cfg
	wrongCfg.Seq = false
	if _, err := fpvm.Resume(img, wrongCfg, res.Snapshot); err == nil {
		t.Errorf("resume under a different semantic configuration succeeded")
	}
}
