// Package compile implements a small ahead-of-time compiler from a
// numeric kernel language to the simulated ISA. The paper's workloads
// (fbench, ffbench, Lorenz, three-body, double pendulum, the Enzo-like
// hydro stepper) are written in this language and compiled to guest
// images, the way the original benchmarks are C compiled by gcc.
//
// The code generator mimics a -O1-ish C compiler: expression temporaries
// live in XMM registers, named variables live in memory (stack locals or
// globals), negation/abs compile to xorpd/andpd sign games, loops to
// cmp+jcc, and calls follow the System V-flavoured ABI of the simulated
// machine. This matters for fidelity: sequence emulation's trace shapes
// (Figures 7-10) come from exactly these instruction patterns.
package compile

import "fmt"

// ---------------------------------------------------------------- types

// Expr is a float64-valued expression.
type Expr interface{ isExpr() }

// IExpr is an int64-valued expression.
type IExpr interface{ isIExpr() }

// Stmt is a statement.
type Stmt interface{ isStmt() }

// ------------------------------------------------------------ FP exprs

// Num is a floating point literal.
type Num float64

// Var references a float64 variable (local if declared in the function,
// else global).
type Var string

// Bin is a binary FP operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// BinOp enumerates FP binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	SubOp
	MulOp
	DivOp
	MinOp
	MaxOp
)

// Unary is an FP unary operation.
type Unary struct {
	Op UnOp
	X  Expr
}

// UnOp enumerates FP unary operators.
type UnOp uint8

const (
	NegOp  UnOp = iota // xorpd sign flip
	AbsOp              // andpd sign clear
	SqrtOp             // sqrtsd
)

// Call invokes a libm host function (sin, cos, atan2, pow, ...).
type Call struct {
	Fn   string
	Args []Expr
}

// CallFn invokes a user-defined function returning a double.
type CallFn struct {
	Fn   string
	Args []Expr
}

// Index loads arr[i] where arr is a global float64 array.
type Index struct {
	Arr string
	I   IExpr
}

// I2F converts an integer expression to double (cvtsi2sd).
type I2F struct{ X IExpr }

// Param references the i-th double parameter of the enclosing function.
// (Parameters are spilled to locals in the prologue; Param resolves to
// that local.)
type Param struct{ I int }

func (Num) isExpr()    {}
func (Var) isExpr()    {}
func (Bin) isExpr()    {}
func (Unary) isExpr()  {}
func (Call) isExpr()   {}
func (CallFn) isExpr() {}
func (Index) isExpr()  {}
func (I2F) isExpr()    {}
func (Param) isExpr()  {}

// Convenience constructors.
func Add2(a, b Expr) Expr         { return Bin{Add, a, b} }
func Sub2(a, b Expr) Expr         { return Bin{SubOp, a, b} }
func Mul2(a, b Expr) Expr         { return Bin{MulOp, a, b} }
func Div2(a, b Expr) Expr         { return Bin{DivOp, a, b} }
func Neg(x Expr) Expr             { return Unary{NegOp, x} }
func Abs(x Expr) Expr             { return Unary{AbsOp, x} }
func Sqrt(x Expr) Expr            { return Unary{SqrtOp, x} }
func Sin(x Expr) Expr             { return Call{"sin", []Expr{x}} }
func Cos(x Expr) Expr             { return Call{"cos", []Expr{x}} }
func Tan(x Expr) Expr             { return Call{"tan", []Expr{x}} }
func Asin(x Expr) Expr            { return Call{"asin", []Expr{x}} }
func Atan(x Expr) Expr            { return Call{"atan", []Expr{x}} }
func Atan2(y, x Expr) Expr        { return Call{"atan2", []Expr{y, x}} }
func Log(x Expr) Expr             { return Call{"log", []Expr{x}} }
func Exp(x Expr) Expr             { return Call{"exp", []Expr{x}} }
func Pow(x, y Expr) Expr          { return Call{"pow", []Expr{x, y}} }
func Fmod(x, y Expr) Expr         { return Call{"fmod", []Expr{x, y}} }
func Min2(a, b Expr) Expr         { return Bin{MinOp, a, b} }
func Max2(a, b Expr) Expr         { return Bin{MaxOp, a, b} }
func At(arr string, i IExpr) Expr { return Index{arr, i} }

// ----------------------------------------------------------- int exprs

// IConst is an integer literal.
type IConst int64

// IVar references an int64 variable.
type IVar string

// IBin is an integer binary operation.
type IBin struct {
	Op   IBinOp
	L, R IExpr
}

// IBinOp enumerates integer operators.
type IBinOp uint8

const (
	IAdd IBinOp = iota
	ISub
	IMul
	IAnd
	IShl // shift left by constant R
	IShr
)

// ILoad loads a global int64 scalar or array element.
type ILoad struct {
	Arr string
	I   IExpr // nil for scalars
}

// F2Bits reinterprets a float64 variable's bit pattern as an int64
// through memory — the paper's memory-escape correctness hazard (§2.6,
// §5.2): the compiler stores the double and reloads the same bytes with
// an integer load.
type F2Bits struct{ X Expr }

func (IConst) isIExpr() {}
func (IVar) isIExpr()   {}
func (IBin) isIExpr()   {}
func (ILoad) isIExpr()  {}
func (F2Bits) isIExpr() {}

func IAdd2(a, b IExpr) IExpr { return IBin{IAdd, a, b} }
func ISub2(a, b IExpr) IExpr { return IBin{ISub, a, b} }
func IMul2(a, b IExpr) IExpr { return IBin{IMul, a, b} }

// ----------------------------------------------------------- conditions

// CmpOp enumerates comparison predicates.
type CmpOp uint8

const (
	LT CmpOp = iota
	LE
	GT
	GE
	EQ
	NE
)

// Cond is a branch condition: either an FP comparison (ucomisd + jcc
// using unsigned predicates) or an integer comparison.
type Cond struct {
	Op     CmpOp
	FL, FR Expr  // FP comparison when FL != nil
	IL, IR IExpr // integer comparison otherwise
}

// FCmp builds a floating point condition.
func FCmp(op CmpOp, l, r Expr) Cond { return Cond{Op: op, FL: l, FR: r} }

// ICmp builds an integer condition.
func ICmp(op CmpOp, l, r IExpr) Cond { return Cond{Op: op, IL: l, IR: r} }

// ----------------------------------------------------------- statements

// Assign stores an FP expression into a variable.
type Assign struct {
	Dst string
	Src Expr
}

// AssignIdx stores into a global float64 array element.
type AssignIdx struct {
	Arr string
	I   IExpr
	Src Expr
}

// IAssign stores an integer expression into an int variable.
type IAssign struct {
	Dst string
	Src IExpr
}

// IAssignIdx stores into a global int64 array element.
type IAssignIdx struct {
	Arr string
	I   IExpr
	Src IExpr
}

// If branches.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While loops while Cond holds.
type While struct {
	Cond Cond
	Body []Stmt
}

// For is sugar: for Var = Start; Var < Limit; Var += 1 { Body }.
type For struct {
	Var   string
	Start IExpr
	Limit IExpr
	Body  []Stmt
}

// PrintF64 calls print_f64(x).
type PrintF64 struct{ X Expr }

// Printf calls printf(Format, args...): FArgs go in xmm0.., IArgs in
// rsi, rdx, ... (interleaving follows the format string's conversion
// order only for same-class args; keep formats simple).
type Printf struct {
	Format string
	FArgs  []Expr
	IArgs  []IExpr
}

// CallStmt invokes a user function for effect, discarding the result.
type CallStmt struct {
	Fn   string
	Args []Expr
}

// Return exits the function with an optional FP result (in xmm0).
type Return struct{ X Expr }

// Block groups statements (convenience).
type Block struct{ Body []Stmt }

func (Assign) isStmt()     {}
func (AssignIdx) isStmt()  {}
func (IAssign) isStmt()    {}
func (IAssignIdx) isStmt() {}
func (If) isStmt()         {}
func (While) isStmt()      {}
func (For) isStmt()        {}
func (PrintF64) isStmt()   {}
func (Printf) isStmt()     {}
func (CallStmt) isStmt()   {}
func (Return) isStmt()     {}
func (Block) isStmt()      {}

// ------------------------------------------------------------- program

// Func is a user function: double parameters (accessed via Param or the
// names in Params), one optional double result.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Program is a compilation unit.
type Program struct {
	Name string

	// Globals: float64 scalars with initial values.
	Globals map[string]float64

	// Arrays: global float64 arrays (zero initialized, length in
	// elements).
	Arrays map[string]int

	// IntGlobals: int64 scalars.
	IntGlobals map[string]int64

	// IntArrays: global int64 arrays.
	IntArrays map[string]int

	// Funcs: user functions (main must exist).
	Funcs []*Func
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:       name,
		Globals:    map[string]float64{},
		Arrays:     map[string]int{},
		IntGlobals: map[string]int64{},
		IntArrays:  map[string]int{},
	}
}

// AddFunc appends a function.
func (p *Program) AddFunc(f *Func) { p.Funcs = append(p.Funcs, f) }

// Main locates the entry function.
func (p *Program) Main() (*Func, error) {
	for _, f := range p.Funcs {
		if f.Name == "main" {
			return f, nil
		}
	}
	return nil, fmt.Errorf("compile: program %s has no main", p.Name)
}

// V and IV are constructor helpers so workload code can write v("x")
// instead of converting to the Var/IVar named types.
func V(name string) Expr { return Var(name) }

// IV builds an integer variable reference.
func IV(name string) IExpr { return IVar(name) }
