package compile

import (
	"fmt"
	"math"

	"fpvm/internal/asm"
	"fpvm/internal/isa"
	"fpvm/internal/obj"
)

// frameSize is the fixed stack frame per function: locals and expression
// temporaries share it; the compiler panics if a function outgrows it.
const frameSize = 1024

// tempRef is an internal Expr naming a stack temp produced by call
// hoisting.
type tempRef struct{ off int32 }

func (tempRef) isExpr() {}

// Compile translates a program into a loadable image.
func Compile(p *Program) (*obj.Image, error) {
	if _, err := p.Main(); err != nil {
		return nil, err
	}
	c := &compiler{
		prog: p,
		b:    asm.NewBuilder(p.Name),
	}
	return c.run()
}

type compiler struct {
	prog *Program
	b    *asm.Builder

	// per-function state
	fn        *Func
	locals    map[string]int32 // name -> rsp offset
	localTop  int32            // next local slot
	tempTop   int32            // high-water temp allocator (grows down from frameSize)
	xmmInUse  [16]bool
	gprInUse  [16]bool
	labelSeq  int
	constSeq  int
	constPool map[float64]string
	fmtPool   map[string]string
}

// pool registers for expression temporaries.
var xmmPool = []isa.Reg{isa.XMM2, isa.XMM3, isa.XMM4, isa.XMM5, isa.XMM6, isa.XMM7,
	isa.XMM8, isa.XMM9, isa.XMM10, isa.XMM11, isa.XMM12, isa.XMM13}
var gprPool = []isa.Reg{isa.RAX, isa.RCX, isa.RDX, isa.R8, isa.R9, isa.R10, isa.R11}

func (c *compiler) run() (*obj.Image, error) {
	c.constPool = map[float64]string{}
	c.fmtPool = map[string]string{}

	// Sign-mask constants for neg/abs.
	c.b.RoDouble("c$negmask", math.Float64frombits(1<<63))
	c.b.RoDouble("c$absmask", math.Float64frombits(1<<63-1))

	// Globals.
	for name, v := range sortedF(c.prog.Globals) {
		_ = name
		_ = v
	}
	for _, name := range sortedKeysF(c.prog.Globals) {
		c.b.Double("g$"+name, c.prog.Globals[name])
	}
	for _, name := range sortedKeysI(c.prog.Arrays) {
		c.b.Space("a$"+name, 8*c.prog.Arrays[name])
	}
	for _, name := range sortedKeysInt(c.prog.IntGlobals) {
		c.b.Quad("i$"+name, uint64(c.prog.IntGlobals[name]))
	}
	for _, name := range sortedKeysI(c.prog.IntArrays) {
		c.b.Space("ia$"+name, 8*c.prog.IntArrays[name])
	}

	for _, f := range c.prog.Funcs {
		if err := c.compileFunc(f); err != nil {
			return nil, fmt.Errorf("compile: %s.%s: %w", c.prog.Name, f.Name, err)
		}
	}
	c.b.SetEntry("main")
	return c.b.Build()
}

// sortedF exists to keep go vet quiet about deterministic iteration; the
// real ordering helpers are below.
func sortedF(m map[string]float64) map[string]float64 { return m }

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortedKeysI(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortedKeysInt(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ----------------------------------------------------------- functions

func (c *compiler) compileFunc(f *Func) error {
	c.fn = f
	c.locals = map[string]int32{}
	c.localTop = 0
	c.tempTop = frameSize
	c.xmmInUse = [16]bool{}
	c.gprInUse = [16]bool{}

	c.b.Func(f.Name)
	c.b.MI(isa.SUB64I, isa.GPR(isa.RSP), frameSize)

	// Spill double params (xmm0..) into named locals.
	for i, name := range f.Params {
		if i >= 8 {
			return fmt.Errorf("more than 8 double parameters")
		}
		off := c.localSlot(name)
		c.b.RM(isa.MOVSDMX, isa.XMM(isa.Reg(i)), isa.Mem(isa.RSP, off))
	}

	for _, s := range f.Body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}

	// Implicit epilogue.
	if f.Name == "main" {
		c.b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
		c.b.MI(isa.MOV64RI, isa.GPR(isa.RDI), 0)
		c.b.Op0(isa.SYSCALL)
	} else {
		c.b.MI(isa.ADD64I, isa.GPR(isa.RSP), frameSize)
		c.b.Op0(isa.RET)
	}
	return nil
}

func (c *compiler) localSlot(name string) int32 {
	if off, ok := c.locals[name]; ok {
		return off
	}
	off := c.localTop
	c.localTop += 8
	if c.localTop >= c.tempTop {
		panic("compile: frame overflow (locals)")
	}
	c.locals[name] = off
	return off
}

func (c *compiler) newLabel(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf("%s$%s%d", c.fn.Name, prefix, c.labelSeq)
}

func (c *compiler) floatConst(v float64) string {
	if name, ok := c.constPool[v]; ok {
		return name
	}
	c.constSeq++
	name := fmt.Sprintf("c$f%d", c.constSeq)
	c.constPool[v] = name
	c.b.RoDouble(name, v)
	return name
}

func (c *compiler) fmtConst(s string) string {
	if name, ok := c.fmtPool[s]; ok {
		return name
	}
	c.constSeq++
	name := fmt.Sprintf("c$s%d", c.constSeq)
	c.fmtPool[s] = name
	c.b.RoBytes(name, append([]byte(s), 0))
	return name
}

// ------------------------------------------------------ register pools

func (c *compiler) allocXMM() isa.Reg {
	for _, r := range xmmPool {
		if !c.xmmInUse[r] {
			c.xmmInUse[r] = true
			return r
		}
	}
	panic("compile: xmm pool exhausted (expression too deep)")
}

func (c *compiler) freeXMM(r isa.Reg) { c.xmmInUse[r] = false }

func (c *compiler) allocGPR() isa.Reg {
	for _, r := range gprPool {
		if !c.gprInUse[r] {
			c.gprInUse[r] = true
			return r
		}
	}
	panic("compile: gpr pool exhausted (int expression too deep)")
}

func (c *compiler) freeGPR(r isa.Reg) { c.gprInUse[r] = false }

// allocTemp reserves an 8-byte stack temp; release with freeTemp in LIFO
// order.
func (c *compiler) allocTemp() int32 {
	c.tempTop -= 8
	if c.tempTop <= c.localTop {
		panic("compile: frame overflow (temps)")
	}
	return c.tempTop
}

func (c *compiler) freeTemp() { c.tempTop += 8 }

// ---------------------------------------------------------- call hoist

// hoistCalls rewrites e so it contains no Call/CallFn nodes: each call is
// compiled immediately (innermost first) into a stack temp, and the node
// is replaced by a tempRef. The returned count is the number of live
// call-result temps the caller frees (LIFO) once the expression has been
// evaluated into a register.
func (c *compiler) hoistCalls(e Expr) (Expr, int, error) {
	switch v := e.(type) {
	case Call:
		off, err := c.compileCallToTemp(v.Fn, v.Args, false)
		return tempRef{off}, 1, err
	case CallFn:
		off, err := c.compileCallToTemp(v.Fn, v.Args, true)
		return tempRef{off}, 1, err
	case Bin:
		l, nl, err := c.hoistCalls(v.L)
		if err != nil {
			return nil, 0, err
		}
		r, nr, err := c.hoistCalls(v.R)
		if err != nil {
			return nil, 0, err
		}
		return Bin{v.Op, l, r}, nl + nr, nil
	case Unary:
		x, n, err := c.hoistCalls(v.X)
		if err != nil {
			return nil, 0, err
		}
		return Unary{v.Op, x}, n, nil
	default:
		return e, 0, nil
	}
}

// compileCallToTemp evaluates a call and stores its double result in a
// fresh temp slot, leaving exactly one extra live temp (the result) for
// the caller to free. User-function calls clobber the caller-save pools,
// so live pool registers are spilled around them — the same caller-save
// spills a C compiler would emit.
func (c *compiler) compileCallToTemp(fn string, args []Expr, user bool) (int32, error) {
	if len(args) > 8 {
		return 0, fmt.Errorf("call %s: too many args", fn)
	}

	// Spill live caller-save registers around user calls. (Host library
	// functions only write xmm0/xmm1 and preserve GPRs.)
	type spill struct {
		xmm bool
		reg isa.Reg
		off int32
	}
	var spills []spill
	if user {
		for _, r := range xmmPool {
			if c.xmmInUse[r] {
				off := c.allocTemp()
				c.b.RM(isa.MOVSDMX, isa.XMM(r), isa.Mem(isa.RSP, off))
				spills = append(spills, spill{true, r, off})
			}
		}
		for _, r := range gprPool {
			if c.gprInUse[r] {
				off := c.allocTemp()
				c.b.RM(isa.MOV64MR, isa.GPR(r), isa.Mem(isa.RSP, off))
				spills = append(spills, spill{false, r, off})
			}
		}
	}

	// Evaluate each argument into its own temp (hoisting nested calls).
	argOffs := make([]int32, len(args))
	for i, a := range args {
		ha, n, err := c.hoistCalls(a)
		if err != nil {
			return 0, err
		}
		reg, err := c.expr(ha)
		if err != nil {
			return 0, err
		}
		c.freeTemps(n) // nested results already consumed into reg
		off := c.allocTemp()
		c.b.RM(isa.MOVSDMX, isa.XMM(reg), isa.Mem(isa.RSP, off))
		c.freeXMM(reg)
		argOffs[i] = off
	}

	// Load args into xmm0..k and call.
	for i, off := range argOffs {
		c.b.RM(isa.MOVSDXM, isa.XMM(isa.Reg(i)), isa.Mem(isa.RSP, off))
	}
	if user {
		c.b.CallLocal(fn)
	} else {
		c.b.CallImport(fn)
	}
	c.freeTemps(len(argOffs))

	// Restore spills (LIFO) — the result still sits safely in xmm0.
	for i := len(spills) - 1; i >= 0; i-- {
		s := spills[i]
		if s.xmm {
			c.b.RM(isa.MOVSDXM, isa.XMM(s.reg), isa.Mem(isa.RSP, s.off))
		} else {
			c.b.RM(isa.MOV64RM, isa.GPR(s.reg), isa.Mem(isa.RSP, s.off))
		}
		c.freeTemp()
	}

	res := c.allocTemp()
	c.b.RM(isa.MOVSDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RSP, res))
	return res, nil
}

// ------------------------------------------------------ FP expression

// exprTop evaluates a full expression (hoisting calls) into an XMM reg.
// All hoist temps are released before returning; callers only freeXMM the
// result.
func (c *compiler) exprTop(e Expr) (isa.Reg, error) {
	he, n, err := c.hoistCalls(e)
	if err != nil {
		return 0, err
	}
	r, err := c.expr(he)
	if err != nil {
		return 0, err
	}
	c.freeTemps(n)
	return r, nil
}

func (c *compiler) freeTemps(n int) {
	for i := 0; i < n; i++ {
		c.freeTemp()
	}
}

// expr evaluates a call-free expression into a fresh XMM register.
func (c *compiler) expr(e Expr) (isa.Reg, error) {
	switch v := e.(type) {
	case Num:
		r := c.allocXMM()
		c.b.RMData(isa.MOVSDXM, isa.XMM(r), c.floatConst(float64(v)))
		return r, nil

	case Var:
		r := c.allocXMM()
		if _, ok := c.prog.Globals[string(v)]; ok {
			c.b.RMData(isa.MOVSDXM, isa.XMM(r), "g$"+string(v))
		} else {
			off := c.localSlot(string(v))
			c.b.RM(isa.MOVSDXM, isa.XMM(r), isa.Mem(isa.RSP, off))
		}
		return r, nil

	case Param:
		if v.I >= len(c.fn.Params) {
			return 0, fmt.Errorf("param %d out of range", v.I)
		}
		return c.expr(Var(c.fn.Params[v.I]))

	case tempRef:
		r := c.allocXMM()
		c.b.RM(isa.MOVSDXM, isa.XMM(r), isa.Mem(isa.RSP, v.off))
		return r, nil

	case Bin:
		l, err := c.expr(v.L)
		if err != nil {
			return 0, err
		}
		r, err := c.expr(v.R)
		if err != nil {
			return 0, err
		}
		var op isa.Op
		switch v.Op {
		case Add:
			op = isa.ADDSD
		case SubOp:
			op = isa.SUBSD
		case MulOp:
			op = isa.MULSD
		case DivOp:
			op = isa.DIVSD
		case MinOp:
			op = isa.MINSD
		case MaxOp:
			op = isa.MAXSD
		}
		c.b.RM(op, isa.XMM(l), isa.XMM(r))
		c.freeXMM(r)
		return l, nil

	case Unary:
		x, err := c.expr(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case SqrtOp:
			c.b.RM(isa.SQRTSD, isa.XMM(x), isa.XMM(x))
		case NegOp:
			// xorpd with the sign mask, like gcc: load mask into xmm15.
			c.b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM15), "c$negmask")
			c.b.RM(isa.XORPD, isa.XMM(x), isa.XMM(isa.XMM15))
		case AbsOp:
			c.b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM15), "c$absmask")
			c.b.RM(isa.ANDPD, isa.XMM(x), isa.XMM(isa.XMM15))
		}
		return x, nil

	case Index:
		idx, err := c.iexpr(v.I)
		if err != nil {
			return 0, err
		}
		base := c.allocGPR()
		c.b.LeaData(base, "a$"+v.Arr)
		r := c.allocXMM()
		c.b.RM(isa.MOVSDXM, isa.XMM(r), isa.MemIdx(base, idx, 8, 0))
		c.freeGPR(base)
		c.freeGPR(idx)
		return r, nil

	case I2F:
		g, err := c.iexpr(v.X)
		if err != nil {
			return 0, err
		}
		r := c.allocXMM()
		c.b.RM(isa.CVTSI2SD, isa.XMM(r), isa.GPR(g))
		c.freeGPR(g)
		return r, nil
	}
	return 0, fmt.Errorf("unhandled expression %T", e)
}

// --------------------------------------------------------- int exprs

func (c *compiler) iexpr(e IExpr) (isa.Reg, error) {
	switch v := e.(type) {
	case IConst:
		r := c.allocGPR()
		c.b.MI(isa.MOV64RI, isa.GPR(r), int64(v))
		return r, nil

	case IVar:
		r := c.allocGPR()
		if _, ok := c.prog.IntGlobals[string(v)]; ok {
			c.b.RMData(isa.MOV64RM, isa.GPR(r), "i$"+string(v))
		} else {
			off := c.localSlot("int$" + string(v))
			c.b.RM(isa.MOV64RM, isa.GPR(r), isa.Mem(isa.RSP, off))
		}
		return r, nil

	case IBin:
		l, err := c.iexpr(v.L)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case IShl, IShr:
			k, ok := v.R.(IConst)
			if !ok {
				return 0, fmt.Errorf("shift amount must be constant")
			}
			op := isa.SHL64I
			if v.Op == IShr {
				op = isa.SHR64I
			}
			c.b.MI(op, isa.GPR(l), int64(k))
			return l, nil
		}
		r, err := c.iexpr(v.R)
		if err != nil {
			return 0, err
		}
		var op isa.Op
		switch v.Op {
		case IAdd:
			op = isa.ADD64
		case ISub:
			op = isa.SUB64
		case IMul:
			op = isa.IMUL64
		case IAnd:
			op = isa.AND64
		}
		c.b.RM(op, isa.GPR(l), isa.GPR(r))
		c.freeGPR(r)
		return l, nil

	case ILoad:
		r := c.allocGPR()
		if v.I == nil {
			c.b.RMData(isa.MOV64RM, isa.GPR(r), "i$"+v.Arr)
			return r, nil
		}
		idx, err := c.iexpr(v.I)
		if err != nil {
			return 0, err
		}
		base := c.allocGPR()
		c.b.LeaData(base, "ia$"+v.Arr)
		c.b.RM(isa.MOV64RM, isa.GPR(r), isa.MemIdx(base, idx, 8, 0))
		c.freeGPR(base)
		c.freeGPR(idx)
		return r, nil

	case F2Bits:
		// Store the double, reload the same bytes as an integer: the
		// memory-escape correctness hazard of §2.6.
		x, err := c.exprTop(v.X)
		if err != nil {
			return 0, err
		}
		off := c.allocTemp()
		c.b.RM(isa.MOVSDMX, isa.XMM(x), isa.Mem(isa.RSP, off))
		c.freeXMM(x)
		r := c.allocGPR()
		c.b.RM(isa.MOV64RM, isa.GPR(r), isa.Mem(isa.RSP, off))
		c.freeTemp()
		return r, nil
	}
	return 0, fmt.Errorf("unhandled int expression %T", e)
}

// --------------------------------------------------------- conditions

var fpJcc = map[CmpOp]isa.Op{LT: isa.JB, LE: isa.JBE, GT: isa.JA, GE: isa.JAE, EQ: isa.JE, NE: isa.JNE}
var fpJccInv = map[CmpOp]isa.Op{LT: isa.JAE, LE: isa.JA, GT: isa.JBE, GE: isa.JB, EQ: isa.JNE, NE: isa.JE}
var intJcc = map[CmpOp]isa.Op{LT: isa.JL, LE: isa.JLE, GT: isa.JG, GE: isa.JGE, EQ: isa.JE, NE: isa.JNE}
var intJccInv = map[CmpOp]isa.Op{LT: isa.JGE, LE: isa.JG, GT: isa.JLE, GE: isa.JL, EQ: isa.JNE, NE: isa.JE}

// condBranch evaluates cond and branches to label when it holds (or when
// it does not, with invert=true).
func (c *compiler) condBranch(cond Cond, label string, invert bool) error {
	if cond.FL != nil {
		l, err := c.exprTop(cond.FL)
		if err != nil {
			return err
		}
		r, err := c.exprTop(cond.FR)
		if err != nil {
			return err
		}
		c.b.RM(isa.UCOMISD, isa.XMM(l), isa.XMM(r))
		c.freeXMM(l)
		c.freeXMM(r)
		tab := fpJcc
		if invert {
			tab = fpJccInv
		}
		c.b.Branch(tab[cond.Op], label)
		return nil
	}
	l, err := c.iexpr(cond.IL)
	if err != nil {
		return err
	}
	r, err := c.iexpr(cond.IR)
	if err != nil {
		return err
	}
	c.b.RM(isa.CMP64, isa.GPR(l), isa.GPR(r))
	c.freeGPR(l)
	c.freeGPR(r)
	tab := intJcc
	if invert {
		tab = intJccInv
	}
	c.b.Branch(tab[cond.Op], label)
	return nil
}

// --------------------------------------------------------- statements

func (c *compiler) stmt(s Stmt) error {
	switch v := s.(type) {
	case Assign:
		r, err := c.exprTop(v.Src)
		if err != nil {
			return err
		}
		if _, ok := c.prog.Globals[v.Dst]; ok {
			c.b.MRData(isa.MOVSDMX, "g$"+v.Dst, isa.XMM(r))
		} else {
			off := c.localSlot(v.Dst)
			c.b.RM(isa.MOVSDMX, isa.XMM(r), isa.Mem(isa.RSP, off))
		}
		c.freeXMM(r)
		return nil

	case AssignIdx:
		r, err := c.exprTop(v.Src)
		if err != nil {
			return err
		}
		idx, err := c.iexpr(v.I)
		if err != nil {
			return err
		}
		base := c.allocGPR()
		c.b.LeaData(base, "a$"+v.Arr)
		c.b.RM(isa.MOVSDMX, isa.XMM(r), isa.MemIdx(base, idx, 8, 0))
		c.freeGPR(base)
		c.freeGPR(idx)
		c.freeXMM(r)
		return nil

	case IAssign:
		r, err := c.iexpr(v.Src)
		if err != nil {
			return err
		}
		if _, ok := c.prog.IntGlobals[v.Dst]; ok {
			c.b.MRData(isa.MOV64MR, "i$"+v.Dst, isa.GPR(r))
		} else {
			off := c.localSlot("int$" + v.Dst)
			// mov [rsp+off], r
			c.b.RM(isa.MOV64MR, isa.GPR(r), isa.Mem(isa.RSP, off))
		}
		c.freeGPR(r)
		return nil

	case IAssignIdx:
		r, err := c.iexpr(v.Src)
		if err != nil {
			return err
		}
		idx, err := c.iexpr(v.I)
		if err != nil {
			return err
		}
		base := c.allocGPR()
		c.b.LeaData(base, "ia$"+v.Arr)
		c.b.RM(isa.MOV64MR, isa.GPR(r), isa.MemIdx(base, idx, 8, 0))
		c.freeGPR(base)
		c.freeGPR(idx)
		c.freeGPR(r)
		return nil

	case If:
		elseL := c.newLabel("else")
		endL := c.newLabel("endif")
		target := elseL
		if len(v.Else) == 0 {
			target = endL
		}
		if err := c.condBranch(v.Cond, target, true); err != nil {
			return err
		}
		for _, st := range v.Then {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		if len(v.Else) > 0 {
			c.b.Branch(isa.JMP, endL)
			c.b.Label(elseL)
			for _, st := range v.Else {
				if err := c.stmt(st); err != nil {
					return err
				}
			}
		}
		c.b.Label(endL)
		return nil

	case While:
		checkL := c.newLabel("check")
		bodyL := c.newLabel("body")
		c.b.Branch(isa.JMP, checkL)
		c.b.Label(bodyL)
		for _, st := range v.Body {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		c.b.Label(checkL)
		return c.condBranch(v.Cond, bodyL, false)

	case For:
		if err := c.stmt(IAssign{v.Var, v.Start}); err != nil {
			return err
		}
		body := append([]Stmt{}, v.Body...)
		body = append(body, IAssign{v.Var, IBin{IAdd, IVar(v.Var), IConst(1)}})
		return c.stmt(While{
			Cond: ICmp(LT, IVar(v.Var), v.Limit),
			Body: body,
		})

	case PrintF64:
		r, err := c.exprTop(v.X)
		if err != nil {
			return err
		}
		if r != isa.XMM0 {
			c.b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(r))
		}
		c.freeXMM(r)
		c.b.CallImport("print_f64")
		return nil

	case Printf:
		// Evaluate FP args into temps, then int args, then load registers.
		fpOffs := make([]int32, len(v.FArgs))
		for i, a := range v.FArgs {
			r, err := c.exprTop(a)
			if err != nil {
				return err
			}
			off := c.allocTemp()
			c.b.RM(isa.MOVSDMX, isa.XMM(r), isa.Mem(isa.RSP, off))
			c.freeXMM(r)
			fpOffs[i] = off
		}
		intOffs := make([]int32, len(v.IArgs))
		for i, a := range v.IArgs {
			g, err := c.iexpr(a)
			if err != nil {
				return err
			}
			off := c.allocTemp()
			c.b.RM(isa.MOV64MR, isa.GPR(g), isa.Mem(isa.RSP, off))
			c.freeGPR(g)
			intOffs[i] = off
		}
		for i, off := range fpOffs {
			if i >= 8 {
				return fmt.Errorf("printf: too many float args")
			}
			c.b.RM(isa.MOVSDXM, isa.XMM(isa.Reg(i)), isa.Mem(isa.RSP, off))
		}
		intRegs := []isa.Reg{isa.RSI, isa.RDX, isa.RCX, isa.R8, isa.R9}
		for i, off := range intOffs {
			if i >= len(intRegs) {
				return fmt.Errorf("printf: too many int args")
			}
			c.b.RM(isa.MOV64RM, isa.GPR(intRegs[i]), isa.Mem(isa.RSP, off))
		}
		c.b.LeaData(isa.RDI, c.fmtConst(v.Format))
		c.b.CallImport("printf")
		c.freeTemps(len(fpOffs) + len(intOffs))
		return nil

	case CallStmt:
		if _, err := c.compileCallToTemp(v.Fn, v.Args, true); err != nil {
			return err
		}
		c.freeTemps(1)
		return nil

	case Return:
		if v.X != nil {
			r, err := c.exprTop(v.X)
			if err != nil {
				return err
			}
			if r != isa.XMM0 {
				c.b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(r))
			}
			c.freeXMM(r)
		}
		c.b.MI(isa.ADD64I, isa.GPR(isa.RSP), frameSize)
		c.b.Op0(isa.RET)
		return nil

	case Block:
		for _, st := range v.Body {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}
