package compile_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"fpvm"
	c "fpvm/internal/compile"
)

// runProgram compiles and executes p natively, returning stdout.
func runProgram(t *testing.T, p *c.Program) string {
	t.Helper()
	img, err := c.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	return res.Stdout
}

// expectF runs a main that prints one float and compares.
func expectF(t *testing.T, p *c.Program, want float64) {
	t.Helper()
	out := runProgram(t, p)
	wantStr := fmt.Sprintf("%.17g\n", want)
	if out != wantStr {
		t.Errorf("output %q, want %q", out, wantStr)
	}
}

func mainWith(stmts ...c.Stmt) *c.Program {
	p := c.NewProgram("t")
	p.AddFunc(&c.Func{Name: "main", Body: stmts})
	return p
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr c.Expr
		want float64
	}{
		{c.Add2(c.Num(2), c.Num(3)), 5},
		{c.Sub2(c.Num(2), c.Num(3)), -1},
		{c.Mul2(c.Num(2.5), c.Num(4)), 10},
		{c.Div2(c.Num(1), c.Num(8)), 0.125},
		{c.Sqrt(c.Num(2)), math.Sqrt2},
		{c.Neg(c.Num(3.5)), -3.5},
		{c.Abs(c.Num(-7.25)), 7.25},
		{c.Min2(c.Num(2), c.Num(3)), 2},
		{c.Max2(c.Num(2), c.Num(3)), 3},
		{c.Add2(c.Mul2(c.Num(2), c.Num(3)), c.Div2(c.Num(1), c.Num(4))), 6.25},
		{c.I2F{X: c.IConst(42)}, 42},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			expectF(t, mainWith(c.PrintF64{X: tc.expr}), tc.want)
		})
	}
}

func TestLibmCalls(t *testing.T) {
	cases := []struct {
		expr c.Expr
		want float64
	}{
		{c.Sin(c.Num(1)), math.Sin(1)},
		{c.Cos(c.Num(1)), math.Cos(1)},
		{c.Atan2(c.Num(1), c.Num(2)), math.Atan2(1, 2)},
		{c.Pow(c.Num(2), c.Num(10)), 1024},
		{c.Log(c.Exp(c.Num(2))), math.Log(math.Exp(2))},
		// nested calls inside expressions
		{c.Add2(c.Sin(c.Cos(c.Num(0.5))), c.Num(1)), math.Sin(math.Cos(0.5)) + 1},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			expectF(t, mainWith(c.PrintF64{X: tc.expr}), tc.want)
		})
	}
}

func TestVariablesAndGlobals(t *testing.T) {
	p := c.NewProgram("t")
	p.Globals["g"] = 10
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "x", Src: c.Num(2)},                       // local
		c.Assign{Dst: "g", Src: c.Add2(c.Var("g"), c.Var("x"))}, // global += local
		c.PrintF64{X: c.Var("g")},
	}})
	expectF(t, p, 12)
}

func TestLoopsAndConditions(t *testing.T) {
	// sum of 1..10 via For, plus FP condition check.
	p := c.NewProgram("t")
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "sum", Src: c.Num(0)},
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(11), Body: []c.Stmt{
			c.Assign{Dst: "sum", Src: c.Add2(c.Var("sum"), c.I2F{X: c.IVar("i")})},
		}},
		c.If{Cond: c.FCmp(c.GT, c.Var("sum"), c.Num(54)),
			Then: []c.Stmt{c.PrintF64{X: c.Var("sum")}},
			Else: []c.Stmt{c.PrintF64{X: c.Num(-1)}}},
	}})
	expectF(t, p, 55)
}

func TestWhileLoop(t *testing.T) {
	// x = 1; while x < 100: x *= 2  -> 128
	p := mainWith(
		c.Assign{Dst: "x", Src: c.Num(1)},
		c.While{Cond: c.FCmp(c.LT, c.Var("x"), c.Num(100)), Body: []c.Stmt{
			c.Assign{Dst: "x", Src: c.Mul2(c.Var("x"), c.Num(2))},
		}},
		c.PrintF64{X: c.Var("x")},
	)
	expectF(t, p, 128)
}

func TestArrays(t *testing.T) {
	p := c.NewProgram("t")
	p.Arrays["a"] = 8
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(8), Body: []c.Stmt{
			c.AssignIdx{Arr: "a", I: c.IVar("i"), Src: c.Mul2(c.I2F{X: c.IVar("i")}, c.Num(1.5))},
		}},
		c.Assign{Dst: "sum", Src: c.Num(0)},
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(8), Body: []c.Stmt{
			c.Assign{Dst: "sum", Src: c.Add2(c.Var("sum"), c.At("a", c.IVar("i")))},
		}},
		c.PrintF64{X: c.Var("sum")},
	}})
	expectF(t, p, 1.5*(0+1+2+3+4+5+6+7))
}

func TestUserFunctions(t *testing.T) {
	p := c.NewProgram("t")
	p.AddFunc(&c.Func{
		Name:   "hyp",
		Params: []string{"a", "b"},
		Body: []c.Stmt{
			c.Return{X: c.Sqrt(c.Add2(
				c.Mul2(c.Var("a"), c.Var("a")),
				c.Mul2(c.Var("b"), c.Var("b"))))},
		},
	})
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.PrintF64{X: c.CallFn{Fn: "hyp", Args: []c.Expr{c.Num(3), c.Num(4)}}},
	}})
	expectF(t, p, 5)
}

func TestNestedUserCallsWithLiveRegisters(t *testing.T) {
	// f(x) = x+1; result = f(1)*10 + f(2)*100 exercises caller-save spills.
	p := c.NewProgram("t")
	p.AddFunc(&c.Func{Name: "inc", Params: []string{"x"},
		Body: []c.Stmt{c.Return{X: c.Add2(c.Var("x"), c.Num(1))}}})
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.PrintF64{X: c.Add2(
			c.Mul2(c.CallFn{Fn: "inc", Args: []c.Expr{c.Num(1)}}, c.Num(10)),
			c.Mul2(c.CallFn{Fn: "inc", Args: []c.Expr{c.Num(2)}}, c.Num(100)))},
	}})
	expectF(t, p, 2*10+3*100)
}

func TestIntOps(t *testing.T) {
	p := c.NewProgram("t")
	p.IntGlobals["out"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.IAssign{Dst: "a", Src: c.IConst(12)},
		c.IAssign{Dst: "b", Src: c.IConst(5)},
		// out = (a-b)*3 + (a<<2) + (a>>1) + (a&b)
		c.IAssign{Dst: "out", Src: c.IAdd2(
			c.IAdd2(
				c.IMul2(c.ISub2(c.IVar("a"), c.IVar("b")), c.IConst(3)),
				c.IBin{Op: c.IShl, L: c.IVar("a"), R: c.IConst(2)}),
			c.IAdd2(
				c.IBin{Op: c.IShr, L: c.IVar("a"), R: c.IConst(1)},
				c.IBin{Op: c.IAnd, L: c.IVar("a"), R: c.IVar("b")}))},
		c.Printf{Format: "%d\n", IArgs: []c.IExpr{c.ILoad{Arr: "out"}}},
	}})
	want := (12-5)*3 + 12<<2 + 12>>1 + (12 & 5)
	out := runProgram(t, p)
	if out != fmt.Sprintf("%d\n", want) {
		t.Errorf("got %q want %d", out, want)
	}
}

func TestIntArrays(t *testing.T) {
	p := c.NewProgram("t")
	p.IntArrays["v"] = 4
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(4), Body: []c.Stmt{
			c.IAssignIdx{Arr: "v", I: c.IVar("i"), Src: c.IMul2(c.IVar("i"), c.IVar("i"))},
		}},
		c.Printf{Format: "%d %d %d %d\n", IArgs: []c.IExpr{
			c.ILoad{Arr: "v", I: c.IConst(0)}, c.ILoad{Arr: "v", I: c.IConst(1)},
			c.ILoad{Arr: "v", I: c.IConst(2)}, c.ILoad{Arr: "v", I: c.IConst(3)}}},
	}})
	if out := runProgram(t, p); out != "0 1 4 9\n" {
		t.Errorf("got %q", out)
	}
}

func TestF2Bits(t *testing.T) {
	// Extract the sign bit of -2.0 through memory: classic escape.
	p := c.NewProgram("t")
	p.IntGlobals["sign"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.IAssign{Dst: "sign", Src: c.IBin{Op: c.IShr, L: c.F2Bits{X: c.Num(-2)}, R: c.IConst(63)}},
		c.Printf{Format: "%d\n", IArgs: []c.IExpr{c.ILoad{Arr: "sign"}}},
	}})
	if out := runProgram(t, p); out != "1\n" {
		t.Errorf("got %q", out)
	}
}

func TestPrintfFormats(t *testing.T) {
	p := mainWith(
		c.Printf{Format: "i=%d f=%g pct=%% s=done\n",
			FArgs: []c.Expr{c.Num(2.5)},
			IArgs: []c.IExpr{c.IConst(-7)}},
	)
	out := runProgram(t, p)
	if !strings.Contains(out, "i=-7") || !strings.Contains(out, "f=2.5") || !strings.Contains(out, "pct=%") {
		t.Errorf("printf output %q", out)
	}
}

func TestNoMainError(t *testing.T) {
	p := c.NewProgram("t")
	p.AddFunc(&c.Func{Name: "helper"})
	if _, err := c.Compile(p); err == nil {
		t.Error("compiled without main")
	}
}

func TestDeterministicCompile(t *testing.T) {
	p1 := c.NewProgram("t")
	p2 := c.NewProgram("t")
	for _, p := range []*c.Program{p1, p2} {
		p.Globals["a"] = 1
		p.Globals["b"] = 2
		p.Globals["z"] = 3
		p.Arrays["arr"] = 4
		p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
			c.PrintF64{X: c.Add2(c.Var("a"), c.Add2(c.Var("b"), c.Var("z")))},
		}})
	}
	i1, err := c.Compile(p1)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := c.Compile(p2)
	if err != nil {
		t.Fatal(err)
	}
	d1 := i1.Section(".text").Data
	d2 := i2.Section(".text").Data
	if string(d1) != string(d2) {
		t.Error("compilation not deterministic")
	}
}
