package fpvm

import (
	"math"
	"testing"

	"fpvm/internal/bigfp"
	"fpvm/internal/fpmath"
	"fpvm/internal/interval"
)

// newTestEngine returns an unbound engine (everything maps to the global
// site at RIP 0) with tight, fast thresholds.
func newTestEngine(cfg PolicyConfig) *PolicyEngine {
	return NewPolicyEngine(cfg)
}

func TestPolicyStartsBoxed(t *testing.T) {
	e := newTestEngine(PolicyConfig{})
	if e.Name() != "adaptive" {
		t.Fatalf("Name = %q, want adaptive", e.Name())
	}
	v, _ := e.Promote(1.5)
	if _, ok := v.(float64); !ok {
		t.Fatalf("fresh site promoted to %T, want float64 (boxed tier)", v)
	}
	r, _ := e.Op(fpmath.OpAdd, v, v)
	if got, ok := r.(float64); !ok || got != 3.0 {
		t.Fatalf("boxed add = %v (%T), want 3.0 float64", r, r)
	}
	st := e.Stats()
	if st.OpsBoxed != 1 || st.OpsInterval != 0 || st.OpsMPFR != 0 {
		t.Fatalf("ops = %d/%d/%d, want 1/0/0", st.OpsBoxed, st.OpsInterval, st.OpsMPFR)
	}
}

// TestPolicyEscalatesOnTrapCluster: EscalateAfter cause-flagged traps at
// one RIP flip the site to the interval tier; other RIPs stay boxed.
func TestPolicyEscalatesOnTrapCluster(t *testing.T) {
	e := newTestEngine(PolicyConfig{EscalateAfter: 3})
	for i := 0; i < 2; i++ {
		e.noteTrap(0x40, fpmath.ExOverflow)
	}
	if e.siteFor(0x40).tier != tierBoxed {
		t.Fatal("site escalated before EscalateAfter traps")
	}
	e.noteTrap(0x40, fpmath.ExOverflow)
	if e.siteFor(0x40).tier != tierInterval {
		t.Fatal("site did not escalate at EscalateAfter traps")
	}
	if e.siteFor(0x41).tier != tierBoxed {
		t.Fatal("neighbouring RIP escalated too")
	}
	// Cause-free traps (flags == 0) never count.
	e.noteTrap(0x50, 0)
	if e.siteFor(0x50).hits != 0 {
		t.Fatal("cause-free trap counted toward escalation")
	}
	st := e.Stats()
	if st.Escalations != 1 || st.IntervalSites != 1 {
		t.Fatalf("stats = %+v, want 1 escalation, 1 interval site", st)
	}
}

// TestPolicyIntervalWidthEscalatesToMPFR: an interval-tier op whose
// result bounds exceed WidthTol flips the site to MPFR.
func TestPolicyIntervalWidthEscalatesToMPFR(t *testing.T) {
	e := newTestEngine(PolicyConfig{EscalateAfter: 1, WidthTol: 1e-9})
	e.noteTrap(0, fpmath.ExInvalid)
	if e.siteFor(0).tier != tierInterval {
		t.Fatal("site not at interval tier")
	}
	// A deliberately wide interval operand forces a wide result.
	wide := interval.Interval{Lo: 1, Hi: 2}
	v, _ := e.Promote(3)
	res, _ := e.Op(fpmath.OpAdd, wide, v)
	if _, ok := res.(interval.Interval); !ok {
		t.Fatalf("interval-tier op returned %T", res)
	}
	if e.siteFor(0).tier != tierMPFR {
		t.Fatal("wide interval result did not escalate the site to MPFR")
	}
	r2, _ := e.Op(fpmath.OpMul, res, res)
	if _, ok := r2.(*bigfp.Float); !ok {
		t.Fatalf("MPFR-tier op returned %T, want *bigfp.Float", r2)
	}
	st := e.Stats()
	if st.MPFREscalations != 1 || st.MPFRSites != 1 || st.OpsMPFR != 1 {
		t.Fatalf("stats = %+v, want one MPFR escalation/site/op", st)
	}
}

// TestPolicyDecay: a long run of within-tolerance interval results
// returns the site to boxed and resets its trap count.
func TestPolicyDecay(t *testing.T) {
	e := newTestEngine(PolicyConfig{EscalateAfter: 1, DecayAfter: 4})
	e.noteTrap(0, fpmath.ExPrecision)
	a, _ := e.Promote(1.0)
	b, _ := e.Promote(2.0)
	for i := 0; i < 4; i++ {
		if e.siteFor(0).tier != tierInterval {
			t.Fatalf("site decayed after %d tight ops, want %d", i, 4)
		}
		a, _ = e.Op(fpmath.OpAdd, a, b)
	}
	s := e.siteFor(0)
	if s.tier != tierBoxed || s.hits != 0 {
		t.Fatalf("site after decay: tier %d hits %d, want boxed with reset hits", s.tier, s.hits)
	}
	if e.Stats().Decays != 1 {
		t.Fatalf("Decays = %d, want 1", e.Stats().Decays)
	}
}

// TestPolicyCrossTierConversion: operands produced at one tier are
// converted when consumed at another, both directions, with cost charged.
func TestPolicyCrossTierConversion(t *testing.T) {
	e := newTestEngine(PolicyConfig{})
	mp, _ := e.mpfr.Promote(0.5)
	iv, _ := e.ival.Promote(0.25)
	res, cost := e.Op(fpmath.OpAdd, mp, iv) // boxed site: both demote
	got, ok := res.(float64)
	if !ok || got != 0.75 {
		t.Fatalf("cross-tier add = %v (%T), want 0.75 float64", res, res)
	}
	if cost == 0 {
		t.Fatal("cross-tier conversion charged no cycles")
	}
	// Per-value dispatch for the unary surface.
	if !e.Signbit(mustVal(e.mpfr.Promote(-2))) {
		t.Fatal("Signbit lost through the MPFR tier")
	}
	if !e.IsNaN(interval.NaN()) {
		t.Fatal("IsNaN lost through the interval tier")
	}
	if f, _ := e.Demote(mustVal(e.mpfr.Promote(1.25))); f != 1.25 {
		t.Fatalf("Demote through MPFR tier = %v, want 1.25", f)
	}
	neg, _ := e.Neg(interval.FromFloat64(3))
	if m := neg.(interval.Interval).Mid(); m != -3 {
		t.Fatalf("Neg through interval tier = %v, want -3", m)
	}
}

func mustVal(v any, _ uint64) any { return v }

// TestPolicyDeterministic: two engines fed the identical trap/op stream
// produce identical values and stats.
func TestPolicyDeterministic(t *testing.T) {
	run := func() (PolicyStats, float64) {
		e := newTestEngine(PolicyConfig{EscalateAfter: 2, WidthTol: 1e-12, DecayAfter: 8})
		acc, _ := e.Promote(1.0)
		inc, _ := e.Promote(1.0 / 3.0)
		for i := 0; i < 50; i++ {
			if i%5 == 0 {
				e.noteTrap(0, fpmath.ExPrecision)
			}
			acc, _ = e.Op(fpmath.OpAdd, acc, inc)
		}
		f, _ := e.Demote(acc)
		return e.Stats(), f
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 || math.IsNaN(f1) {
		t.Fatalf("nondeterministic policy: %+v/%v vs %+v/%v", s1, f1, s2, f2)
	}
}

// TestRelWidth pins the width metric: relative for |mid| >= 1, absolute
// below, zero for exact and NaN-safe.
func TestRelWidth(t *testing.T) {
	if w := relWidth(interval.FromFloat64(5)); w != 0 {
		t.Fatalf("exact interval width = %v, want 0", w)
	}
	if w := relWidth(interval.Interval{Lo: 100, Hi: 101}); math.Abs(w-0.01/1.005) > 1e-12 {
		t.Fatalf("relative width = %v", w)
	}
	if w := relWidth(interval.Interval{Lo: 0, Hi: 1e-3}); w != 1e-3 {
		t.Fatalf("absolute width near zero = %v, want 1e-3", w)
	}
	if w := relWidth(interval.NaN()); w != 0 {
		t.Fatalf("NaN interval width = %v, want 0", w)
	}
}
