package fpvm_test

import (
	"strings"
	"sync"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/dcache"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
)

// TestForkInsideFleet is the fork × fleet interplay test: several
// concurrent VMs run the same image against ONE shared decode/trace
// cache, and every VM forks mid-run (the fork_test.go scaffolding). Each
// child's cache is a Clone of a shared-backed cache — its stats must
// start from zero, its traces must be unaliased from the parent's, and
// both sides keep publishing/adopting through the shared store while
// other VMs do the same. Run under -race via make check.
func TestForkInsideFleet(t *testing.T) {
	// Program: x = 1/3 (boxed); INT3 fork marker; x += step; print; exit.
	b := asm.NewBuilder("fleet-forked")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Double("step", 1) // parent adds 1; each child's copy flips to 2
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.Op0(isa.INT3)
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "step")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stepSym, ok := img.Lookup("step")
	if !ok {
		t.Fatal("no step symbol")
	}

	shared := dcache.NewShared(0)
	const vms = 6
	var wg sync.WaitGroup
	errs := make(chan string, vms*4)
	for v := 0; v < vms; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			cfg := fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Short: true, Shared: shared}
			parent := newRig(t, img, cfg, true)

			var child *kernel.Process
			var childRT *fpvmrt.Runtime
			parent.p.BreakpointHook = func(uc *kernel.Ucontext) bool {
				if child != nil {
					return true // the child inherits the hook; skip its marker
				}
				parent.p.M.CPU = uc.CPU
				child = parent.p.Fork("child")
				childRT = parent.rt.ForkChild(child)
				if st := childRT.Cache().Stats; (st != dcache.Stats{}) {
					errs <- "fork child inherited cache stats"
				}
				if err := child.M.Mem.WriteUint64(stepSym.Addr, 0x4000000000000000); err != nil {
					errs <- "patch child step: " + err.Error()
				}
				return true
			}

			if err := parent.p.Run(0); err != nil {
				errs <- "parent run: " + err.Error()
				return
			}
			if err := parent.rt.Err(); err != nil {
				errs <- "parent fpvm: " + err.Error()
				return
			}
			if child == nil {
				errs <- "fork marker never hit"
				return
			}
			if err := child.Run(0); err != nil {
				errs <- "child run: " + err.Error()
				return
			}
			if err := childRT.Err(); err != nil {
				errs <- "child fpvm: " + err.Error()
				return
			}
			if out := parent.p.Stdout.String(); !strings.HasPrefix(out, "1.3333333333333333") {
				errs <- "parent printed " + out
			}
			if out := child.Stdout.String(); !strings.HasPrefix(out, "2.3333333333333335") {
				errs <- "child printed " + out
			}
		}(v)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if shared.TraceLen() == 0 && shared.EntryLen() == 0 {
		t.Error("fleet published nothing to the shared cache")
	}
}
