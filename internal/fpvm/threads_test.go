package fpvm_test

import (
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/mem"
)

// buildThreadedBoxed: main creates a boxed value and parks it in xmm6,
// clones a worker that churns out enough boxed garbage to force
// collections, then prints the parked value. If the collector failed to
// treat the descheduled main thread's registers as roots while the worker
// was running, the box would be swept and the final print would produce
// garbage.
func buildThreadedBoxed(t *testing.T) *asm.Builder {
	t.Helper()
	b := asm.NewBuilder("threads")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Quad("flag", 0)
	b.Func("main")
	// Parked boxed value: 1/3 + 1 in xmm6.
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM6), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM6), "three")
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM6), "one")
	// clone(worker, stack): the "import" resolves to the local worker
	// function through the image-first resolver, like a PLT self-call.
	b.LoadImportAddr(isa.RDI, "worker")
	b.MI(isa.MOV64RI, isa.GPR(isa.RSI), 0x7FF6_0000)
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysClone)
	b.Op0(isa.SYSCALL)
	// Spin on the flag.
	b.Label("spin")
	b.RMData(isa.MOV64RM, isa.GPR(isa.RBX), "flag")
	b.MI(isa.CMP64I, isa.GPR(isa.RBX), 0)
	b.Branch(isa.JE, "spin")
	// Print the parked box: it must still be live and decode to 4/3.
	b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(isa.XMM6))
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)

	b.Func("worker")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), 1500)
	b.Label("churn")
	// Fresh garbage box each iteration.
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "churn")
	b.MI(isa.MOV64RI, isa.GPR(isa.RDX), 1)
	b.MRData(isa.MOV64MR, "flag", isa.GPR(isa.RDX))
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	return b
}

// TestMultithreadedInjection arms the injector while two guest threads
// (main + cloned worker) share one runtime: faults land on whichever
// thread traps, each resolves on that thread's own ladder without
// disturbing the other thread's boxed state, and the shared ledger still
// reconciles. The parked box in xmm6 doubles as the canary — a
// degradation on the worker must not demote or sweep main's live box.
func TestMultithreadedInjection(t *testing.T) {
	b := buildThreadedBoxed(t)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(11)
	inj.ArmAll(faultinject.Rule{Every: 40})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, GCThreshold: 128, Inject: inj}, true)
	r.p.M.Mem.Map("tstack", 0x7FF5_0000, 0x10000, mem.PermRW)
	out := r.run(t)
	if !strings.HasPrefix(out, "1.3333333333333333") {
		t.Errorf("parked boxed value corrupted under injection: %q", out)
	}
	if r.rt.ThreadContexts != 1 {
		t.Errorf("thread contexts: %d", r.rt.ThreadContexts)
	}
	if r.rt.Tel.FaultsInjected == 0 {
		t.Fatal("injector never fired (test not exercising the ladder)")
	}
	if r.rt.Detached() {
		t.Error("transient faults escalated to detach")
	}
	if !inj.Reconciled() {
		t.Errorf("ledger broken across threads:\n%s", inj.Report())
	}
}

func TestMultithreadedGCRoots(t *testing.T) {
	b := buildThreadedBoxed(t)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, GCThreshold: 128}, true)
	// Map the worker's stack.
	r.p.M.Mem.Map("tstack", 0x7FF5_0000, 0x10000, mem.PermRW)
	out := r.run(t)
	if !strings.HasPrefix(out, "1.3333333333333333") {
		t.Errorf("parked boxed value corrupted: %q", out)
	}
	if r.rt.GCRuns == 0 {
		t.Error("GC never ran (test not exercising the property)")
	}
	if r.rt.ThreadContexts != 1 {
		t.Errorf("thread contexts: %d", r.rt.ThreadContexts)
	}
	if r.p.K.Stats.ContextSwitches == 0 {
		t.Error("no context switches")
	}
}
