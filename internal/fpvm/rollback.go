package fpvm

import (
	"fmt"

	"fpvm/internal/alt"
	"fpvm/internal/faultinject"
	"fpvm/internal/kernel"
	"fpvm/internal/telemetry"
)

// The rollback supervisor (this file) inserts a rung between retry and
// degrade in the recovery ladder when Config.CheckpointInterval > 0:
//
//	retry    → bounded per-site, per-trap retries (recovery.go)
//	rollback → restore the last crash-consistent snapshot, quarantine the
//	           distrusted RIP to native execution, and re-execute
//	degrade  → demote to native IEEE for the affected operation
//	detach   → the "do no harm" bottom rung
//
// Snapshots are captured at trap boundaries (maybeCheckpoint), where the
// register file is untouched by emulation and RIP still points at the
// faulting instruction — restoring one simply makes the guest re-trap
// there. Rollback attempts are bounded (Config.MaxRollbacks) and each
// successful rollback doubles the snapshot interval, so a persistently
// faulty run backs off exponentially instead of live-locking.

// fatalInjectedFault is the panic sentinel for a fatal-severity injected
// fault (faultinject.Rule.Fatal): checkFault throws it from the faulting
// site, unwinding the trap pipeline to handleTrap's recover, which routes
// it to failTrap — the fatal rung, where rollback gets its chance.
type fatalInjectedFault struct {
	site faultinject.Site
	rip  uint64
}

func (f *fatalInjectedFault) Error() string {
	return fmt.Sprintf("injected fatal fault at %s (rip %#x)", f.site, f.rip)
}

// failTrap is the fatal rung with the rollback supervisor in front:
// restore the last checkpoint and re-execute with the distrusted RIP
// quarantined; only when rollback is unavailable, unviable or exhausted
// does the failure fall through to detach. site names the injected-fault
// site responsible ("" for organic failures) so the injector's ledger
// records the rung that actually resolved the fault.
func (r *Runtime) failTrap(uc *kernel.Ucontext, rip uint64, site faultinject.Site, err error) {
	if r.tryRollback(uc, rip) {
		if site != "" {
			r.Tel.FaultsRolledBack++
			r.inject.Resolve(site, faultinject.RolledBack)
		}
		return
	}
	if site != "" {
		r.fatalFault(site)
	}
	if uc != nil {
		// Instructions emulated earlier in this trap (walk or replay)
		// already wrote their effects into uc.CPU, but RIP is only
		// advanced when a sequence completes. Detaching with RIP at the
		// sequence start would natively re-execute the emulated prefix —
		// double-applying non-idempotent ops. Resume at the failing
		// instruction instead (a no-op for failures at trap entry).
		uc.CPU.RIP = rip
	}
	r.fatal(uc, rip, err)
}

// tryRollback restores the last snapshot and arranges re-execution,
// reporting whether it took effect. It declines when the supervisor is
// disabled, no snapshot exists yet, the attempt budget is exhausted, or
// the distrusted instruction cannot be pinned to native execution
// (re-executing would fail the same way). distrust is the RIP whose
// handling caused the fatal failure.
func (r *Runtime) tryRollback(uc *kernel.Ucontext, distrust uint64) bool {
	if r.ckpt == nil {
		return false
	}
	fail := func() bool {
		r.RollbackFailures++
		r.Tel.RollbackFailures++
		return false
	}
	if uc == nil || !r.ckpt.Has() || r.Rollbacks >= r.maxRollbacks() {
		return fail()
	}
	// The quarantine pin serves the distrusted instruction via nativeInst,
	// which only handles the supported classes; if it cannot even be
	// decoded and classified, re-execution would hit the same wall.
	// (FetchDecode, not decodeAt: probing must not re-enter the decode
	// fault site mid-recovery.)
	in, derr := r.m.FetchDecode(distrust)
	if derr != nil || classify(in.Op) == classUnsupported {
		return fail()
	}
	for r.checkFaultPlain(faultinject.SiteCkptRestore, distrust) {
		if !r.retryFault(faultinject.SiteCkptRestore) {
			// The restore path itself is failing persistently: abandon
			// the rollback (resolved as a degradation — the ladder simply
			// continues downward) rather than reinstate suspect state.
			r.degradeFault(faultinject.SiteCkptRestore)
			return fail()
		}
	}
	cpu, alloc, tel, _ := r.ckpt.Restore(r.p, r.cloneValue)
	r.alloc = alloc
	r.restoreTimeline(tel)
	r.charge(telemetry.Kernel, r.Costs.CkptRestore)
	uc.CPU = cpu
	r.quarantine(distrust)
	r.Rollbacks++
	r.Tel.Rollbacks++
	// Exponential backoff: after a rollback the next snapshot is further
	// out, so repeated faults in the same region cannot pin the run to a
	// save/restore treadmill.
	r.trapsSince = 0
	r.ckptInterval *= 2
	return true
}

// quarantine pins rip to native execution: future traps there take
// pinnedNative, and every cached sequence through rip is invalidated so
// neither replay nor a stale decode can re-enter the distrusted shape.
func (r *Runtime) quarantine(rip uint64) {
	if r.quarantined == nil {
		r.quarantined = make(map[uint64]bool)
	}
	if r.quarantined[rip] {
		return
	}
	r.quarantined[rip] = true
	r.Quarantines++
	r.Tel.Quarantines++
	r.cache.InvalidateTraces(rip)
	r.cache.Invalidate(rip)
}

// maybeCheckpoint captures a snapshot at the current trap boundary once
// the interval has elapsed. ckpt.save faults retry on their budget; a
// persistent failure skips this snapshot (the previous image stays valid
// — a later rollback just rewinds further) and the next trap tries again.
func (r *Runtime) maybeCheckpoint(uc *kernel.Ucontext) {
	if r.ckpt == nil {
		return
	}
	r.trapsSince++
	if r.trapsSince < r.ckptInterval {
		return
	}
	for r.checkFaultPlain(faultinject.SiteCkptSave, uc.CPU.RIP) {
		if !r.retryFault(faultinject.SiteCkptSave) {
			r.degradeFault(faultinject.SiteCkptSave)
			return
		}
	}
	r.charge(telemetry.Kernel, r.Costs.CkptSave)
	r.ckpt.Save(uc.CPU, r.p, r.alloc, r.cloneValue, r.Tel, nil)
	r.trapsSince = 0
	r.Checkpoints++
	r.Tel.Checkpoints++
}

// pinnedNative serves a trap at a quarantined RIP: decode, execute with
// pure native IEEE semantics (operands demoted, result stored plain), and
// step past — the path a rollback distrusted is simply bypassed forever.
func (r *Runtime) pinnedNative(uc *kernel.Ucontext) {
	rip := uc.CPU.RIP
	r.curRIP = rip
	entry, err := r.decodeAt(rip)
	if err != nil {
		if err == errDecodeFault {
			r.failTrap(uc, rip, faultinject.SiteDecode, fmt.Errorf("decode at quarantined rip: %w", err))
		} else {
			r.failTrap(uc, rip, "", fmt.Errorf("decode at quarantined rip: %w", err))
		}
		return
	}
	if !entry.Supported {
		// Unreachable by construction (tryRollback only quarantines RIPs
		// nativeInst can serve), but self-modifying guests could get here.
		r.failTrap(uc, rip, "", fmt.Errorf("quarantined rip holds unsupported %s", entry.Inst.Op))
		return
	}
	if err := r.nativeInst(uc, entry); err != nil {
		r.failTrap(uc, rip, "", fmt.Errorf("pinned native execution: %w", err))
		return
	}
	r.Tel.EmulatedInsts++
	uc.CPU.RIP = rip + uint64(entry.Inst.Len)
}

// maxRollbacks resolves Config.MaxRollbacks.
func (r *Runtime) maxRollbacks() uint64 {
	if r.Cfg.MaxRollbacks > 0 {
		return uint64(r.Cfg.MaxRollbacks)
	}
	return DefaultMaxRollbacks
}

// cloneValue adapts the alt system's CloneValue hook to the checkpoint
// package's untyped signature.
func (r *Runtime) cloneValue(v any) any {
	return r.Cfg.Alt.CloneValue(v.(alt.Value))
}

// restoreTimeline rewinds the telemetry counters that describe the
// re-executed timeline (cycles, instruction/trap/event/trace counts).
// The fault ledger and supervisor counters deliberately stay monotonic:
// they mirror the injector's ledger, which is never rewound, so
// Breakdown.FaultsReconciled holds across any number of rollbacks.
func (r *Runtime) restoreTimeline(tel telemetry.Breakdown) {
	r.Tel.Cycles = tel.Cycles
	r.Tel.EmulatedInsts = tel.EmulatedInsts
	r.Tel.Traps = tel.Traps
	r.Tel.CorrEvents = tel.CorrEvents
	r.Tel.FCallEvents = tel.FCallEvents
	r.Tel.TraceHits = tel.TraceHits
	r.Tel.TraceMisses = tel.TraceMisses
	r.Tel.TraceDivergences = tel.TraceDivergences
	r.Tel.ReplayedInsts = tel.ReplayedInsts
}
