package fpvm

import (
	"errors"
	"fmt"

	"fpvm/internal/alt"
	"fpvm/internal/checkpoint"
	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/heap"
	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
)

// Runtime is the FPVM instance attached to one process, mirroring the
// paper's LD_PRELOAD library: per-process trap registration, per-thread
// execution contexts (clone() is intercepted via OnThreadStart and each
// thread's MXCSR traps independently), and constructors that re-run on
// fork (ForkChild).
type Runtime struct {
	Cfg   Config
	Costs CostParams

	p *kernel.Process
	m *machine.Machine

	alloc   *heap.Allocator
	cache   *dcache.Cache
	Profile *dcache.SeqProfile
	Tel     telemetry.Breakdown

	// ShortActive reports whether short-circuit delivery actually engaged
	// (Config.Short requested and the module was present).
	ShortActive bool

	// Stats beyond telemetry.
	Promotions     uint64
	Demotions      uint64
	Boxes          uint64
	GCRuns         uint64
	SeqLimitHit    uint64
	ThreadContexts uint64 // per-thread FPVM contexts created (§2.1)

	// JITCompiles counts tier-1 trace bodies compiled by this VM
	// (jit.go). Deliberately a process-local stat, not a telemetry
	// counter: compiled bodies do not survive snapshot/fork/adoption, so
	// a resumed or forked run legitimately recompiles and its compile
	// count differs from an uninterrupted run's.
	JITCompiles uint64

	// Recovery ladder stats (see recovery.go).
	Retries          uint64 // transient faults resolved by retry
	Degradations     uint64 // operations degraded to native IEEE (or safely skipped)
	HeapFullDegrades uint64 // boxes degraded to plain bits at the MaxLiveBoxes cap
	GCSkips          uint64 // collections skipped after gc.scan fault budgets ran out
	PanicRecoveries  uint64 // emulator panics converted to degradations
	WatchdogAborts   uint64 // sequences cut short by the per-trap cycle watchdog
	FatalDetaches    uint64 // fatal errors resolved by clean detach
	Aborted          uint64 // traps observed after detach (not emulated)

	// Rollback supervisor stats (see rollback.go).
	Checkpoints      uint64 // snapshots captured
	Rollbacks        uint64 // fatal failures resolved by restore + re-execution
	RollbackFailures uint64 // rollback attempts that escalated down the ladder
	Quarantines      uint64 // distinct RIPs pinned to native execution

	// Trace cache state: flt is the alt system's allocation-free float
	// interface when it implements one (cached type assertion), traceOn
	// gates the L2 replay path, traceEnts is the reusable trace-builder
	// buffer for the walk path.
	flt       alt.FloatSystem
	traceOn   bool
	traceEnts []*dcache.Entry

	// pol is the adaptive precision policy engine when Cfg.Alt is one
	// (cached type assertion, like flt). handleTrap feeds it per-RIP trap
	// causes; the engine reads curRIP back through its bound runtime to
	// pick the numeric tier for each operation.
	pol *PolicyEngine

	// Tier-1 JIT state (jit.go): jitOn gates promotion (it requires the
	// trace cache), jitThreshold is the Trace.Hits count at which a trace
	// compiles.
	jitOn        bool
	jitThreshold uint64

	// Reusable GC root buffers: root sets are rebuilt on every collection
	// (registers change between traps) but the backing arrays are hot-path
	// state worth keeping.
	rootsBuf  []heap.Roots
	rootsPtrs []*heap.Roots

	wrapped      map[string]bool   // foreign symbols wrapped (fcall accounting)
	wrapperAddrs map[string]uint64 // wrapper host addresses by symbol
	lib          *hostlib.Library  // the wrapped library
	magicAddr    uint64            // host address of the magic trap handler

	// Recovery ladder state.
	inject   *faultinject.Injector
	rec      recoveryState
	detached bool
	curUC    *kernel.Ucontext // ucontext of the trap being handled
	curRIP   uint64           // instruction the pipeline is working on
	curEntry *dcache.Entry    // decode of that instruction, once known
	phase    trapPhase

	// Rollback supervisor state (Config.CheckpointInterval > 0): ckpt
	// owns the crash-consistent snapshot, trapsSince counts traps toward
	// the next save, ckptInterval is the current snapshot interval
	// (doubled after every rollback — exponential backoff under repeated
	// faults), and quarantined maps distrusted RIPs to the per-RIP
	// native-execute pin installed by a rollback.
	ckpt         *checkpoint.Manager
	trapsSince   int
	ckptInterval int
	quarantined  map[uint64]bool

	err error // first fatal (detaching) emulation error
}

// Attach installs FPVM onto a process: it configures MXCSR to trap on
// every FP exception, registers trap delivery (short-circuit or SIGFPE),
// installs the SIGTRAP correctness handler, and maps the magic page.
// Attach must be called before the program image is loaded so that
// wrapper symbol resolution (LD_PRELOAD order) can take effect.
func Attach(p *kernel.Process, cfg Config) (*Runtime, error) {
	if cfg.Alt == nil {
		return nil, fmt.Errorf("fpvm: Config.Alt is required")
	}
	if cfg.SeqLimit == 0 {
		cfg.SeqLimit = 256
	}
	r := &Runtime{
		Cfg:     cfg,
		Costs:   DefaultCosts(),
		p:       p,
		m:       p.M,
		alloc:   heap.New(cfg.GCThreshold),
		cache:   dcache.NewCacheShared(cfg.CacheCapacity, cfg.Shared),
		wrapped: make(map[string]bool),
	}
	if cfg.Profile {
		r.Profile = dcache.NewSeqProfile()
	}
	r.flt, _ = cfg.Alt.(alt.FloatSystem)
	if pe, ok := cfg.Alt.(*PolicyEngine); ok {
		pe.bind(r)
		r.pol = pe
	}
	r.traceOn = cfg.Seq && !cfg.NoTraceCache
	r.jitOn = r.traceOn && !cfg.NoJIT
	r.jitThreshold = DefaultJITThreshold
	if cfg.JITThreshold > 0 {
		r.jitThreshold = uint64(cfg.JITThreshold)
	}
	r.inject = cfg.Inject
	r.alloc.MaxLive = cfg.MaxLiveBoxes
	p.Inject = cfg.Inject
	if cfg.CheckpointInterval > 0 {
		r.ckpt = checkpoint.New(p.M.Mem)
		r.ckptInterval = cfg.CheckpointInterval
		// The first trap is the earliest crash-consistent point (the
		// register file only becomes meaningful once the image is loaded
		// and running), so arrange for it to snapshot immediately.
		r.trapsSince = cfg.CheckpointInterval
	}

	// FPVM manages mxcsr so every FP exception traps (§2.3).
	r.m.CPU.MXCSR = machine.MXCSRTrapAll

	r.attachDelivery()

	// Map the magic page (§5.2): cookie + demotion handler pointer.
	r.installMagicPage()
	return r, nil
}

// attachDelivery registers the trap delivery paths and interceptions on
// r's process — the constructor work the paper's LD_PRELOAD library does
// at startup and again after every fork (§2.1).
func (r *Runtime) attachDelivery() {
	p := r.p
	cfg := r.Cfg
	if cfg.FutureHW {
		// Future-work hardware: user-level trap vector + box-escape
		// detection; no kernel module, no signals, no patching.
		p.EnableHWUserTraps(r.handleTrap)
		p.SetBoxEscapeHook(r.handleBoxEscape)
		r.m.BoxEscapeCheck = true
	} else if cfg.Short {
		if err := p.RegisterFPVM(r.handleTrap); err == nil {
			r.ShortActive = true
		}
	}
	if !r.ShortActive && !cfg.FutureHW {
		p.Sigaction(kernel.SIGFPE, func(uc *kernel.Ucontext) { r.handleTrap(uc) })
	}
	p.Sigaction(kernel.SIGTRAP, r.handleCorrectnessTrap)

	// Intercept thread startup (§2.1): each new thread gets an FPVM
	// execution context; MXCSR trap-all propagates via clone's register
	// inheritance, so here we only account the context.
	p.OnThreadStart = func(tid int) { r.ThreadContexts++ }
}

// ForkChild builds the child's FPVM runtime after child := parent.Fork():
// the paper's constructors run "on every fork()", re-registering trap
// delivery (the /dev/fpvm registration is per-process) and taking
// ownership of the copied FPVM state. The allocator and decode cache are
// cloned (they live in the forked process image; boxes are immutable so
// values are shared), and every inherited host binding that pointed at
// the parent runtime — wrappers and the magic-page handler — is rebound
// at the same addresses to the child runtime, since those addresses are
// baked into the child's GOT slots and magic page.
func (r *Runtime) ForkChild(child *kernel.Process) *Runtime {
	c := &Runtime{
		Cfg:          r.Cfg,
		Costs:        r.Costs,
		p:            child,
		m:            child.M,
		alloc:        r.alloc.Clone(),
		cache:        r.cache.Clone(),
		wrapped:      r.wrapped,
		wrapperAddrs: r.wrapperAddrs,
		lib:          r.lib,
		magicAddr:    r.magicAddr,
	}
	if r.Cfg.Profile {
		c.Profile = dcache.NewSeqProfile()
	}
	c.flt = r.flt
	c.traceOn = r.traceOn
	// JIT gating is inherited, but not JITCompiles: the cloned trace
	// table carries no compiled bodies (snapshotKeepCounters clears
	// them), so the child re-promotes and counts its own compiles.
	c.jitOn = r.jitOn
	c.jitThreshold = r.jitThreshold
	// The recovery ladder's state is inherited but independent: the child
	// starts from the parent's counters and budgets (it is a copy of the
	// parent's process image) and diverges from there; faults in one never
	// mutate the other.
	c.inject = r.inject
	c.rec = r.rec.clone()
	c.detached = r.detached
	c.err = r.err
	c.Retries = r.Retries
	c.Degradations = r.Degradations
	c.HeapFullDegrades = r.HeapFullDegrades
	c.GCSkips = r.GCSkips
	c.PanicRecoveries = r.PanicRecoveries
	c.WatchdogAborts = r.WatchdogAborts
	c.FatalDetaches = r.FatalDetaches
	c.Aborted = r.Aborted
	// The rollback supervisor forks with the process: the snapshot is
	// shared (immutable page buffers and heap image; each side's restore
	// clones before use — see checkpoint.Manager.Clone), the quarantine
	// set and interval/backoff state are copied.
	c.ckpt = r.ckpt.Clone(child.M.Mem)
	c.trapsSince = r.trapsSince
	c.ckptInterval = r.ckptInterval
	if r.quarantined != nil {
		c.quarantined = make(map[uint64]bool, len(r.quarantined))
		for rip, v := range r.quarantined {
			c.quarantined[rip] = v
		}
	}
	c.Checkpoints = r.Checkpoints
	c.Rollbacks = r.Rollbacks
	c.RollbackFailures = r.RollbackFailures
	c.Quarantines = r.Quarantines
	c.attachDelivery()
	// Rebind inherited host functions to the child's runtime.
	if c.lib != nil {
		for name, addr := range c.wrapperAddrs {
			child.BindHost(addr, c.makeWrapper(name, c.lib.Funcs[name]))
		}
	}
	if c.magicAddr != 0 {
		child.BindHost(c.magicAddr, c.magicTrapHandler)
	}
	return c
}

// magicCookie marks a valid magic page.
const magicCookie = 0xF9B0_A11C_0FF1_0AD5

func (r *Runtime) installMagicPage() {
	as := r.m.Mem
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRead)
	// The page is mapped read-only for the guest; FPVM (the host side)
	// writes through a temporary RW window.
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRW)
	r.magicAddr = r.p.BindHostAuto(r.magicTrapHandler)
	_ = as.WriteUint64(obj.MagicPageAddr, magicCookie)
	_ = as.WriteUint64(obj.MagicPageAddr+8, r.magicAddr)
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRead)
}

// Err returns the first fatal error the runtime hit while emulating. A
// non-nil error means the runtime detached (see recovery.go): the guest
// kept running un-virtualized, but results past the detach point carry
// only native IEEE precision. The error records the trap RIP and the
// mnemonic of the instruction being handled.
func (r *Runtime) Err() error { return r.err }

// Detached reports whether the ladder's bottom rung fired: FPVM restored
// native FP semantics and stopped virtualizing this process.
func (r *Runtime) Detached() bool { return r.detached }

// Injector exposes the armed fault injector (nil when none).
func (r *Runtime) Injector() *faultinject.Injector { return r.inject }

// Allocator exposes the box allocator (tests and telemetry).
func (r *Runtime) Allocator() *heap.Allocator { return r.alloc }

// Cache exposes the decode/trace cache.
func (r *Runtime) Cache() *dcache.Cache { return r.cache }

// charge accounts cycles both to the telemetry category and the machine
// clock (the runtime runs on the virtualized CPU).
func (r *Runtime) charge(cat telemetry.Category, n uint64) {
	r.Tel.Add(cat, n)
	r.m.Charge(n)
}

// chargeDelivery records the delegation costs the kernel already charged
// to the machine clock, attributing them to hw/kernel/ret telemetry.
func (r *Runtime) chargeDelivery() {
	c := r.p.K.Costs
	if r.Cfg.FutureHW {
		// Direct hardware vector: no kernel involvement at all.
		r.Tel.Add(telemetry.HW, c.HWUserDeliver)
		r.Tel.Add(telemetry.Ret, c.HWUserReturn)
		return
	}
	r.Tel.Add(telemetry.HW, c.HWDispatch)
	if r.ShortActive {
		r.Tel.Add(telemetry.Kernel, c.ShortDeliver+c.LandingPad)
		r.Tel.Add(telemetry.Ret, c.ShortReturn+c.LandingPad)
	} else {
		r.Tel.Add(telemetry.Kernel, c.SignalDeliver)
		r.Tel.Add(telemetry.Ret, c.Sigreturn)
	}
}

// handleTrap is the FP trap entry point (both delivery paths).
func (r *Runtime) handleTrap(uc *kernel.Ucontext) {
	if r.detached {
		// A stale trap arriving after detach (e.g. a thread whose parked
		// MXCSR still had trap-all set): observe it, mask this context
		// too, and let the guest run natively.
		r.Aborted++
		r.Tel.AbortedTraps++
		uc.CPU.MXCSR = machine.MXCSRDefault
		return
	}
	r.Tel.Traps++
	if uc.FPFlags != 0 {
		r.Tel.NoteTrapCauses(uc.FPFlags)
		if r.pol != nil {
			r.pol.noteTrap(uc.CPU.RIP, uc.FPFlags)
		}
	}
	r.chargeDelivery()
	r.rec.resetTrap()
	r.curUC = uc
	// Pin curRIP to this trap immediately: a panic before the walk sets
	// it (e.g. in maybeCheckpoint) must not see a previous trap's value.
	r.curRIP = uc.CPU.RIP
	trapRIP := uc.CPU.RIP
	defer func() {
		if pv := recover(); pv != nil {
			r.recoverTrapPanic(uc, pv)
		}
		if r.Cfg.Observer != nil {
			r.observeTrap(uc, trapRIP)
		}
		r.curUC, r.curEntry, r.phase = nil, nil, phaseNone
	}()

	// A quarantined RIP (distrusted after a rollback) is pinned to native
	// execution: no alt arithmetic, no sequence walk, no boxing.
	if r.quarantined != nil && r.quarantined[uc.CPU.RIP] {
		r.pinnedNative(uc)
		return
	}
	r.maybeCheckpoint(uc)

	start := uc.CPU.RIP
	rip := start
	count := 0
	reason := dcache.TermLimit
	trapStart := r.m.Cycles

	// L2 trace cache (§4.2): a trap at a known sequence start replays the
	// whole pre-decoded, pre-bound sequence straight through — no
	// per-instruction cache lookups, no re-decode, no re-disassembly. The
	// replay declines (returns done=false) only before emulating anything,
	// so falling through to the walk below is always safe.
	if r.traceOn {
		if tr, ok := r.cache.LookupTrace(start); ok {
			r.Tel.TraceHits++
			if r.replayTrace(uc, tr, trapStart) {
				return
			}
		} else {
			r.Tel.TraceMisses++
		}
	}

	profiling := r.Profile != nil
	var captureInsts []string
	var captureTerm string
	capture := profiling && !r.Profile.Known(start)

	// The walk doubles as the trace builder: entries emulated below are
	// collected and, if the sequence ends at a clean terminator, cached as
	// a trace for future replay. Aborted sequences (watchdog, mid-sequence
	// faults) are not representative shapes and are not cached.
	building := r.traceOn
	cacheable := true
	if building {
		r.traceEnts = r.traceEnts[:0]
	}

	for {
		if count > 0 && r.quarantined != nil && r.quarantined[rip] {
			// A quarantined instruction ends the sequence: the guest traps
			// on it next and takes the pinned native path. The shape is not
			// representative, so it is not cached as a trace.
			reason = dcache.TermUnsupported
			cacheable = false
			break
		}
		r.curRIP = rip
		entry, err := r.decodeAt(rip)
		if err != nil {
			if errors.Is(err, errDecodeFault) {
				// Decode retry budget exhausted. Mid-sequence the fault
				// degrades to a sequence terminator — the hardware runs
				// the instruction instead. On the faulting instruction
				// itself there is nothing to fall back to: roll back if
				// possible, detach otherwise.
				if count > 0 {
					r.degradeFault(faultinject.SiteDecode)
					reason = dcache.TermUnsupported
					cacheable = false
					break
				}
				r.failTrap(uc, rip, faultinject.SiteDecode, fmt.Errorf("decode: %w", err))
				return
			}
			r.failTrap(uc, rip, "", fmt.Errorf("decode: %w", err))
			return
		}
		if !entry.Supported {
			reason = dcache.TermUnsupported
			if capture {
				captureTerm = entry.Inst.String()
				captureInsts = append(captureInsts, captureTerm)
			}
			break
		}
		r.curEntry, r.phase = entry, phaseInst
		status, err := r.emulateInst(uc, entry, count == 0)
		r.curEntry, r.phase = nil, phaseNone
		if err != nil {
			// Bind/memory errors: mid-sequence the ladder degrades by
			// ending the sequence (the hardware re-runs the instruction
			// and raises its own fault if one is due); on the faulting
			// instruction FPVM cannot make progress.
			if count > 0 {
				r.Degradations++
				r.cache.InvalidateTraces(rip)
				reason = dcache.TermUnsupported
				cacheable = false
				break
			}
			r.failTrap(uc, rip, "", err)
			return
		}
		if status == emNotWarranted {
			reason = dcache.TermNoBoxedSource
			if capture {
				captureTerm = entry.Inst.String()
				captureInsts = append(captureInsts, captureTerm)
			}
			break
		}
		if capture {
			captureInsts = append(captureInsts, entry.Inst.String())
		}
		if building {
			r.traceEnts = append(r.traceEnts, entry)
		}
		count++
		rip = entry.Inst.Addr + uint64(entry.Inst.Len)
		r.Tel.EmulatedInsts++

		if r.m.Cycles-trapStart > r.trapCycleBudget() {
			// Watchdog: this trap has burned more virtual cycles than any
			// legitimate sequence should. With a checkpoint available the
			// runaway region is rolled back and its start quarantined;
			// otherwise cut the sequence and let the guest resume (it may
			// trap again, starting a fresh budget).
			r.WatchdogAborts++
			r.Tel.WatchdogAborts++
			if r.tryRollback(uc, start) {
				return
			}
			reason = dcache.TermLimit
			cacheable = false
			break
		}
		if !r.Cfg.Seq {
			// Single-instruction trap-and-emulate: stop after the
			// faulting instruction.
			reason = dcache.TermLimit
			break
		}
		if count >= r.Cfg.SeqLimit {
			r.SeqLimitHit++
			reason = dcache.TermLimit
			break
		}
	}

	if count == 0 {
		// The faulting instruction itself is unsupported: FPVM cannot
		// make progress virtualized. Detach (do no harm): the hardware
		// re-executes it natively with exceptions masked. (Rollback does
		// not help here — re-execution would hit the same instruction.)
		in, _ := r.m.FetchDecode(rip)
		r.fatal(uc, rip, fmt.Errorf("cannot emulate faulting instruction %q", in.String()))
		return
	}

	uc.CPU.RIP = rip

	if building && cacheable && count > 0 {
		r.cache.InsertTrace(&dcache.Trace{
			Start:   start,
			Entries: append([]*dcache.Entry(nil), r.traceEnts...),
			EndRIP:  rip,
			Reason:  reason,
			Insts:   captureInsts,
			Term:    captureTerm,
		})
	}

	if r.Profile != nil {
		r.Profile.Record(start, count, reason, captureInsts, captureTerm)
	}

	r.maybeGC(uc)
}

// errDecodeFault marks a decode whose injected-fault retry budget ran
// out; handleTrap picks the rung (degrade mid-sequence, detach at the
// faulting instruction).
var errDecodeFault = errors.New("fpvm: injected decode fault (retry budget exhausted)")

// decodeAt consults the decode cache, decoding and inserting on miss
// (the decode-cache/trace-cache behaviour of §2.4 and §4.2). A decode
// fault models a corrupted cache entry or fetch: the entry is distrusted
// (invalidated) and the decode retried.
func (r *Runtime) decodeAt(rip uint64) (*dcache.Entry, error) {
	for r.checkFault(faultinject.SiteDecode, rip) {
		r.cache.Invalidate(rip)
		if !r.retryFault(faultinject.SiteDecode) {
			return nil, errDecodeFault
		}
	}
	if e, ok := r.cache.Lookup(rip); ok {
		r.charge(telemetry.Decache, r.Costs.DecacheHit)
		return e, nil
	}
	r.charge(telemetry.Decache, r.Costs.DecacheHit)
	r.charge(telemetry.Decode, r.Costs.Decode)
	in, err := r.m.FetchDecode(rip)
	if err != nil {
		return nil, err
	}
	cls := classify(in.Op)
	e := &dcache.Entry{Inst: in, Supported: cls != classUnsupported, Class: uint8(cls)}
	r.cache.Insert(rip, e)
	return e, nil
}

// maybeGC runs a collection if the allocator crossed its threshold. The
// root set is every writable page plus every thread's register file: the
// trapping thread's registers come from the (possibly already mutated)
// ucontext, the others from their parked contexts.
func (r *Runtime) maybeGC(uc *kernel.Ucontext) {
	if !r.alloc.NeedsGC() {
		return
	}
	r.collect(r.gcRoots(uc))
}

// gcRoots assembles the collection root set into the runtime's reusable
// buffers (root sets are rebuilt per collection, but the backing arrays
// persist — collections are frequent enough under GC pressure that the
// slices showed up in the trap path's allocation profile). When uc is nil
// every parked CPU context is a root; otherwise uc stands in for the
// trapping thread.
func (r *Runtime) gcRoots(uc *kernel.Ucontext) []*heap.Roots {
	r.rootsBuf = r.rootsBuf[:0]
	if uc != nil {
		r.rootsBuf = append(r.rootsBuf, heap.Roots{GPR: uc.CPU.GPR, XMM: uc.CPU.XMM})
	}
	for _, cpu := range r.p.AllCPUs() {
		if uc != nil && cpu == &r.m.CPU {
			continue // the trapping thread: uc is authoritative
		}
		r.rootsBuf = append(r.rootsBuf, heap.Roots{GPR: cpu.GPR, XMM: cpu.XMM})
	}
	// Pointers are taken only after the buffer stops growing.
	r.rootsPtrs = r.rootsPtrs[:0]
	for i := range r.rootsBuf {
		r.rootsPtrs = append(r.rootsPtrs, &r.rootsBuf[i])
	}
	return r.rootsPtrs
}

// resolve turns raw lane bits into an alt value: a confirmed NaN-box
// yields its heap value; anything else (including application NaNs) is
// promoted.
// The IEEE sign bit lies outside the box pattern, so compiled
// sign-flips (xorpd with the sign mask) leave the handle intact: a box
// with the sign bit set decodes as the negated value.
func (r *Runtime) resolve(bits uint64) (alt.Value, bool) {
	if h, ok := isBox(bits); ok {
		if v, live := r.alloc.Get(h); live {
			if bits>>63 != 0 {
				nv, cost := r.Cfg.Alt.Neg(v)
				r.charge(telemetry.Altmath, cost)
				return nv, true
			}
			return v, true
		}
	}
	v, cost := r.Cfg.Alt.Promote(f64(bits))
	r.Promotions++
	r.charge(telemetry.Altmath, cost)
	return v, false
}

// box allocates a heap box for v and returns its NaN-boxed bit pattern,
// also allocating the alt system's per-op temporaries (which become
// garbage immediately — the gc pressure difference between Boxed IEEE and
// MPFR, §6.4).
//
// Invariant: boxes store magnitudes; the value's sign lives in the bit
// pattern's sign bit. This makes the compiler's xorpd/andpd sign idioms
// (negate, fabs) work natively on boxed values — flipping or clearing
// bit 63 of the pattern is exactly flipping or clearing the sign.
func (r *Runtime) box(v alt.Value) uint64 {
	for r.checkFault(faultinject.SiteHeapAlloc, r.curRIP) {
		if !r.retryFault(faultinject.SiteHeapAlloc) {
			// Allocation keeps failing: degrade this one result to a
			// plain IEEE double (precision loss, never corruption).
			r.degradeFault(faultinject.SiteHeapAlloc)
			return r.plainBits(v)
		}
	}
	for i := 0; i < r.Cfg.Alt.TempsPerOp(); i++ {
		r.alloc.Alloc(nil)
	}
	var sign uint64
	if r.Cfg.Alt.Signbit(v) {
		nv, cost := r.Cfg.Alt.Neg(v)
		r.charge(telemetry.Altmath, cost)
		v = nv
		sign = 1 << 63
	}
	return r.boxOrDegrade(v, sign)
}

// demote converts lane bits that may be boxed back to a plain IEEE
// double's bits, charging altmath for the conversion.
func (r *Runtime) demote(bits uint64) uint64 {
	h, ok := isBox(bits)
	if !ok {
		return bits
	}
	v, live := r.alloc.Get(h)
	if !live {
		return bits
	}
	f, cost := r.Cfg.Alt.Demote(v)
	if bits>>63 != 0 {
		f = -f // sign-flipped box: decode as the negated value
	}
	r.Demotions++
	r.charge(telemetry.Altmath, cost)
	return bits64(f)
}

// isBox confirms a bit pattern is one of OUR boxes (pattern match plus
// allocator membership — the ours-vs-theirs check of §2.2). The allocator
// check happens at the call sites that need liveness; here we only match
// the pattern and return the handle.
func isBox(bits uint64) (uint64, bool) {
	return nanboxHandle(bits)
}
