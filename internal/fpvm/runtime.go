package fpvm

import (
	"fmt"

	"fpvm/internal/alt"
	"fpvm/internal/dcache"
	"fpvm/internal/heap"
	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
)

// Runtime is the FPVM instance attached to one process, mirroring the
// paper's LD_PRELOAD library: per-process trap registration, per-thread
// execution contexts (clone() is intercepted via OnThreadStart and each
// thread's MXCSR traps independently), and constructors that re-run on
// fork (ForkChild).
type Runtime struct {
	Cfg   Config
	Costs CostParams

	p *kernel.Process
	m *machine.Machine

	alloc   *heap.Allocator
	cache   *dcache.Cache
	Profile *dcache.SeqProfile
	Tel     telemetry.Breakdown

	// ShortActive reports whether short-circuit delivery actually engaged
	// (Config.Short requested and the module was present).
	ShortActive bool

	// Stats beyond telemetry.
	Promotions     uint64
	Demotions      uint64
	Boxes          uint64
	GCRuns         uint64
	SeqLimitHit    uint64
	ThreadContexts uint64 // per-thread FPVM contexts created (§2.1)

	wrapped      map[string]bool   // foreign symbols wrapped (fcall accounting)
	wrapperAddrs map[string]uint64 // wrapper host addresses by symbol
	lib          *hostlib.Library  // the wrapped library
	magicAddr    uint64            // host address of the magic trap handler

	err error // first fatal emulation error
}

// Attach installs FPVM onto a process: it configures MXCSR to trap on
// every FP exception, registers trap delivery (short-circuit or SIGFPE),
// installs the SIGTRAP correctness handler, and maps the magic page.
// Attach must be called before the program image is loaded so that
// wrapper symbol resolution (LD_PRELOAD order) can take effect.
func Attach(p *kernel.Process, cfg Config) (*Runtime, error) {
	if cfg.Alt == nil {
		return nil, fmt.Errorf("fpvm: Config.Alt is required")
	}
	if cfg.SeqLimit == 0 {
		cfg.SeqLimit = 256
	}
	r := &Runtime{
		Cfg:     cfg,
		Costs:   DefaultCosts(),
		p:       p,
		m:       p.M,
		alloc:   heap.New(cfg.GCThreshold),
		cache:   dcache.NewCache(cfg.CacheCapacity),
		wrapped: make(map[string]bool),
	}
	if cfg.Profile {
		r.Profile = dcache.NewSeqProfile()
	}

	// FPVM manages mxcsr so every FP exception traps (§2.3).
	r.m.CPU.MXCSR = machine.MXCSRTrapAll

	r.attachDelivery()

	// Map the magic page (§5.2): cookie + demotion handler pointer.
	r.installMagicPage()
	return r, nil
}

// attachDelivery registers the trap delivery paths and interceptions on
// r's process — the constructor work the paper's LD_PRELOAD library does
// at startup and again after every fork (§2.1).
func (r *Runtime) attachDelivery() {
	p := r.p
	cfg := r.Cfg
	if cfg.FutureHW {
		// Future-work hardware: user-level trap vector + box-escape
		// detection; no kernel module, no signals, no patching.
		p.EnableHWUserTraps(r.handleTrap)
		p.SetBoxEscapeHook(r.handleBoxEscape)
		r.m.BoxEscapeCheck = true
	} else if cfg.Short {
		if err := p.RegisterFPVM(r.handleTrap); err == nil {
			r.ShortActive = true
		}
	}
	if !r.ShortActive && !cfg.FutureHW {
		p.Sigaction(kernel.SIGFPE, func(uc *kernel.Ucontext) { r.handleTrap(uc) })
	}
	p.Sigaction(kernel.SIGTRAP, r.handleCorrectnessTrap)

	// Intercept thread startup (§2.1): each new thread gets an FPVM
	// execution context; MXCSR trap-all propagates via clone's register
	// inheritance, so here we only account the context.
	p.OnThreadStart = func(tid int) { r.ThreadContexts++ }
}

// ForkChild builds the child's FPVM runtime after child := parent.Fork():
// the paper's constructors run "on every fork()", re-registering trap
// delivery (the /dev/fpvm registration is per-process) and taking
// ownership of the copied FPVM state. The allocator and decode cache are
// cloned (they live in the forked process image; boxes are immutable so
// values are shared), and every inherited host binding that pointed at
// the parent runtime — wrappers and the magic-page handler — is rebound
// at the same addresses to the child runtime, since those addresses are
// baked into the child's GOT slots and magic page.
func (r *Runtime) ForkChild(child *kernel.Process) *Runtime {
	c := &Runtime{
		Cfg:          r.Cfg,
		Costs:        r.Costs,
		p:            child,
		m:            child.M,
		alloc:        r.alloc.Clone(),
		cache:        r.cache.Clone(),
		wrapped:      r.wrapped,
		wrapperAddrs: r.wrapperAddrs,
		lib:          r.lib,
		magicAddr:    r.magicAddr,
	}
	if r.Cfg.Profile {
		c.Profile = dcache.NewSeqProfile()
	}
	c.attachDelivery()
	// Rebind inherited host functions to the child's runtime.
	if c.lib != nil {
		for name, addr := range c.wrapperAddrs {
			child.BindHost(addr, c.makeWrapper(name, c.lib.Funcs[name]))
		}
	}
	if c.magicAddr != 0 {
		child.BindHost(c.magicAddr, c.magicTrapHandler)
	}
	return c
}

// magicCookie marks a valid magic page.
const magicCookie = 0xF9B0_A11C_0FF1_0AD5

func (r *Runtime) installMagicPage() {
	as := r.m.Mem
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRead)
	// The page is mapped read-only for the guest; FPVM (the host side)
	// writes through a temporary RW window.
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRW)
	r.magicAddr = r.p.BindHostAuto(r.magicTrapHandler)
	_ = as.WriteUint64(obj.MagicPageAddr, magicCookie)
	_ = as.WriteUint64(obj.MagicPageAddr+8, r.magicAddr)
	as.Map("fpvm:magic", obj.MagicPageAddr, mem.PageSize, mem.PermRead)
}

// Err returns the first fatal error the runtime hit while emulating.
func (r *Runtime) Err() error { return r.err }

// Allocator exposes the box allocator (tests and telemetry).
func (r *Runtime) Allocator() *heap.Allocator { return r.alloc }

// Cache exposes the decode/trace cache.
func (r *Runtime) Cache() *dcache.Cache { return r.cache }

// charge accounts cycles both to the telemetry category and the machine
// clock (the runtime runs on the virtualized CPU).
func (r *Runtime) charge(cat telemetry.Category, n uint64) {
	r.Tel.Add(cat, n)
	r.m.Charge(n)
}

// chargeDelivery records the delegation costs the kernel already charged
// to the machine clock, attributing them to hw/kernel/ret telemetry.
func (r *Runtime) chargeDelivery() {
	c := r.p.K.Costs
	if r.Cfg.FutureHW {
		// Direct hardware vector: no kernel involvement at all.
		r.Tel.Add(telemetry.HW, c.HWUserDeliver)
		r.Tel.Add(telemetry.Ret, c.HWUserReturn)
		return
	}
	r.Tel.Add(telemetry.HW, c.HWDispatch)
	if r.ShortActive {
		r.Tel.Add(telemetry.Kernel, c.ShortDeliver+c.LandingPad)
		r.Tel.Add(telemetry.Ret, c.ShortReturn+c.LandingPad)
	} else {
		r.Tel.Add(telemetry.Kernel, c.SignalDeliver)
		r.Tel.Add(telemetry.Ret, c.Sigreturn)
	}
}

// handleTrap is the FP trap entry point (both delivery paths).
func (r *Runtime) handleTrap(uc *kernel.Ucontext) {
	r.Tel.Traps++
	r.chargeDelivery()

	start := uc.CPU.RIP
	rip := start
	count := 0
	reason := dcache.TermLimit

	profiling := r.Profile != nil
	var captureInsts []string
	var captureTerm string
	capture := profiling && !r.Profile.Known(start)

	for {
		entry, err := r.decodeAt(rip)
		if err != nil {
			r.fail(fmt.Errorf("fpvm: decode at %#x: %w", rip, err))
			return
		}
		if !entry.Supported {
			reason = dcache.TermUnsupported
			if capture {
				captureTerm = entry.Inst.String()
				captureInsts = append(captureInsts, captureTerm)
			}
			break
		}
		status, err := r.emulateInst(uc, entry, count == 0)
		if err != nil {
			r.fail(err)
			return
		}
		if status == emNotWarranted {
			reason = dcache.TermNoBoxedSource
			if capture {
				captureTerm = entry.Inst.String()
				captureInsts = append(captureInsts, captureTerm)
			}
			break
		}
		if capture {
			captureInsts = append(captureInsts, entry.Inst.String())
		}
		count++
		rip = entry.Inst.Addr + uint64(entry.Inst.Len)
		r.Tel.EmulatedInsts++

		if !r.Cfg.Seq {
			// Single-instruction trap-and-emulate: stop after the
			// faulting instruction.
			reason = dcache.TermLimit
			break
		}
		if count >= r.Cfg.SeqLimit {
			r.SeqLimitHit++
			reason = dcache.TermLimit
			break
		}
	}

	if count == 0 {
		// The faulting instruction itself is unsupported: FPVM cannot
		// make progress. This is fatal for the virtualized program.
		in, _ := r.m.FetchDecode(rip)
		r.fail(fmt.Errorf("fpvm: cannot emulate faulting instruction %q at %#x", in.String(), rip))
		return
	}

	uc.CPU.RIP = rip

	if r.Profile != nil {
		r.Profile.Record(start, count, reason, captureInsts, captureTerm)
	}

	r.maybeGC(uc)
}

func (r *Runtime) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	// Halt the process: jam RIP at an unmapped address so the next step
	// faults and the kernel kills the process.
	r.p.Exited = true
	r.p.Err = err
}

// decodeAt consults the decode cache, decoding and inserting on miss
// (the decode-cache/trace-cache behaviour of §2.4 and §4.2).
func (r *Runtime) decodeAt(rip uint64) (*dcache.Entry, error) {
	if e, ok := r.cache.Lookup(rip); ok {
		r.charge(telemetry.Decache, r.Costs.DecacheHit)
		return e, nil
	}
	r.charge(telemetry.Decache, r.Costs.DecacheHit)
	r.charge(telemetry.Decode, r.Costs.Decode)
	in, err := r.m.FetchDecode(rip)
	if err != nil {
		return nil, err
	}
	e := &dcache.Entry{Inst: in, Supported: classify(in.Op) != classUnsupported}
	r.cache.Insert(rip, e)
	return e, nil
}

// maybeGC runs a collection if the allocator crossed its threshold. The
// root set is every writable page plus every thread's register file: the
// trapping thread's registers come from the (possibly already mutated)
// ucontext, the others from their parked contexts.
func (r *Runtime) maybeGC(uc *kernel.Ucontext) {
	if !r.alloc.NeedsGC() {
		return
	}
	roots := []*heap.Roots{{GPR: uc.CPU.GPR, XMM: uc.CPU.XMM}}
	for _, cpu := range r.p.AllCPUs() {
		if cpu == &r.m.CPU {
			continue // the trapping thread: uc is authoritative
		}
		roots = append(roots, &heap.Roots{GPR: cpu.GPR, XMM: cpu.XMM})
	}
	_, cycles := r.alloc.Collect(r.m.Mem, roots...)
	r.GCRuns++
	r.charge(telemetry.GC, cycles)
}

// resolve turns raw lane bits into an alt value: a confirmed NaN-box
// yields its heap value; anything else (including application NaNs) is
// promoted.
// The IEEE sign bit lies outside the box pattern, so compiled
// sign-flips (xorpd with the sign mask) leave the handle intact: a box
// with the sign bit set decodes as the negated value.
func (r *Runtime) resolve(bits uint64) (alt.Value, bool) {
	if h, ok := isBox(bits); ok {
		if v, live := r.alloc.Get(h); live {
			if bits>>63 != 0 {
				nv, cost := r.Cfg.Alt.Neg(v)
				r.charge(telemetry.Altmath, cost)
				return nv, true
			}
			return v, true
		}
	}
	v, cost := r.Cfg.Alt.Promote(f64(bits))
	r.Promotions++
	r.charge(telemetry.Altmath, cost)
	return v, false
}

// box allocates a heap box for v and returns its NaN-boxed bit pattern,
// also allocating the alt system's per-op temporaries (which become
// garbage immediately — the gc pressure difference between Boxed IEEE and
// MPFR, §6.4).
//
// Invariant: boxes store magnitudes; the value's sign lives in the bit
// pattern's sign bit. This makes the compiler's xorpd/andpd sign idioms
// (negate, fabs) work natively on boxed values — flipping or clearing
// bit 63 of the pattern is exactly flipping or clearing the sign.
func (r *Runtime) box(v alt.Value) uint64 {
	for i := 0; i < r.Cfg.Alt.TempsPerOp(); i++ {
		r.alloc.Alloc(nil)
	}
	var sign uint64
	if r.Cfg.Alt.Signbit(v) {
		nv, cost := r.Cfg.Alt.Neg(v)
		r.charge(telemetry.Altmath, cost)
		v = nv
		sign = 1 << 63
	}
	h := r.alloc.Alloc(v)
	r.Boxes++
	return boxBits(h) | sign
}

// demote converts lane bits that may be boxed back to a plain IEEE
// double's bits, charging altmath for the conversion.
func (r *Runtime) demote(bits uint64) uint64 {
	h, ok := isBox(bits)
	if !ok {
		return bits
	}
	v, live := r.alloc.Get(h)
	if !live {
		return bits
	}
	f, cost := r.Cfg.Alt.Demote(v)
	if bits>>63 != 0 {
		f = -f // sign-flipped box: decode as the negated value
	}
	r.Demotions++
	r.charge(telemetry.Altmath, cost)
	return bits64(f)
}

// isBox confirms a bit pattern is one of OUR boxes (pattern match plus
// allocator membership — the ours-vs-theirs check of §2.2). The allocator
// check happens at the call sites that need liveness; here we only match
// the pattern and return the handle.
func isBox(bits uint64) (uint64, bool) {
	return nanboxHandle(bits)
}
