package fpvm

import (
	"fmt"
	"math"

	"fpvm/internal/alt"
	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/nanbox"
	"fpvm/internal/telemetry"
)

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits64(f float64) uint64 { return math.Float64bits(f) }
func boxBits(h uint64) uint64 { return nanbox.Box(h) }
func nanboxHandle(bits uint64) (uint64, bool) {
	return nanbox.Handle(bits)
}

// emStatus reports the outcome of an emulation attempt.
type emStatus uint8

const (
	emOK emStatus = iota
	// emNotWarranted: the instruction is emulatable but no source operand
	// is NaN-boxed — §4.2 condition (2): emulating it would be slower
	// than letting the hardware run it (and it may then legitimately
	// fault on its own).
	emNotWarranted
)

// ea computes the effective address of a memory operand against the
// ucontext register state (the FPVM "bind" step resolves operands against
// the saved context, not the live CPU).
func (r *Runtime) ea(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand) uint64 {
	if o.RIPRel {
		return in.Addr + uint64(in.Len) + uint64(int64(o.Disp))
	}
	var a uint64
	if o.Base != isa.NoReg {
		a = uc.CPU.GPR[o.Base]
	}
	if o.Index != isa.NoReg {
		a += uc.CPU.GPR[o.Index] * uint64(o.Scale)
	}
	return a + uint64(int64(o.Disp))
}

// readOperand reads an operand with the given width (bytes), zero
// extended.
func (r *Runtime) readOperand(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand, size int) (uint64, error) {
	switch o.Kind {
	case isa.KindGPR:
		return uc.CPU.GPR[o.Reg], nil
	case isa.KindXMM:
		return uc.CPU.XMM[o.Reg][0], nil
	case isa.KindImm:
		return uint64(o.Imm), nil
	}
	addr := r.ea(uc, in, o)
	switch size {
	case 1:
		v, err := r.m.Mem.ReadUint8(addr)
		return uint64(v), err
	case 2:
		v, err := r.m.Mem.ReadUint16(addr)
		return uint64(v), err
	case 4:
		v, err := r.m.Mem.ReadUint32(addr)
		return uint64(v), err
	default:
		return r.m.Mem.ReadUint64(addr)
	}
}

func (r *Runtime) writeOperandMem(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand, size int, v uint64) error {
	addr := r.ea(uc, in, o)
	switch size {
	case 1:
		return r.m.Mem.WriteUint8(addr, uint8(v))
	case 2:
		return r.m.Mem.WriteUint16(addr, uint16(v))
	case 4:
		return r.m.Mem.WriteUint32(addr, uint32(v))
	default:
		return r.m.Mem.WriteUint64(addr, v)
	}
}

// read128 reads a 16-byte r/m operand (both lanes).
func (r *Runtime) read128(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand) ([2]uint64, error) {
	if o.Kind == isa.KindXMM {
		return uc.CPU.XMM[o.Reg], nil
	}
	addr := r.ea(uc, in, o)
	lo, err := r.m.Mem.ReadUint64(addr)
	if err != nil {
		return [2]uint64{}, err
	}
	hi, err := r.m.Mem.ReadUint64(addr + 8)
	if err != nil {
		return [2]uint64{}, err
	}
	return [2]uint64{lo, hi}, nil
}

func (r *Runtime) write128(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand, v [2]uint64) error {
	if o.Kind == isa.KindXMM {
		uc.CPU.XMM[o.Reg] = v
		return nil
	}
	addr := r.ea(uc, in, o)
	if err := r.m.Mem.WriteUint64(addr, v[0]); err != nil {
		return err
	}
	return r.m.Mem.WriteUint64(addr+8, v[1])
}

// boxedLive reports whether bits is a live FPVM box.
func (r *Runtime) boxedLive(bits uint64) bool {
	h, ok := nanboxHandle(bits)
	if !ok {
		return false
	}
	_, live := r.alloc.Get(h)
	return live
}

// emulateInst decodes/binds/emulates one instruction against the
// ucontext. first marks the faulting instruction (always emulated).
func (r *Runtime) emulateInst(uc *kernel.Ucontext, e *dcache.Entry, first bool) (emStatus, error) {
	in := &e.Inst
	cls := emulClass(e.Class) // classified once at decode, cached in the entry

	switch cls {
	case classMove:
		r.charge(telemetry.Bind, r.Costs.BindMove)
		r.charge(telemetry.Emul, r.Costs.EmulMove)
		return emOK, r.emulateMove(uc, in)

	case classScalarArith:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
		dstBits := uc.CPU.XMM[in.RegOp.Reg][0]
		srcBoxed := r.boxedLive(srcBits)
		dstBoxed := in.Op != isa.SQRTSD && r.boxedLive(dstBits)
		if !first && !r.Cfg.EmulateAll && !srcBoxed && !dstBoxed {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		res := r.altScalar(in.Op, dstBits, srcBits)
		uc.CPU.XMM[in.RegOp.Reg][0] = res
		return emOK, nil

	case classPackedArith:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		src, err := r.read128(uc, in, in.RMOp)
		if err != nil {
			return emOK, err
		}
		dst := uc.CPU.XMM[in.RegOp.Reg]
		anyBoxed := r.boxedLive(src[0]) || r.boxedLive(src[1])
		if in.Op != isa.SQRTPD {
			anyBoxed = anyBoxed || r.boxedLive(dst[0]) || r.boxedLive(dst[1])
		}
		if !first && !r.Cfg.EmulateAll && !anyBoxed {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		sop := packedToScalar(in.Op)
		uc.CPU.XMM[in.RegOp.Reg] = [2]uint64{
			r.altScalar(sop, dst[0], src[0]),
			r.altScalar(sop, dst[1], src[1]),
		}
		return emOK, nil

	case classScalarCmp, classCompare:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
		dstBits := uc.CPU.XMM[in.RegOp.Reg][0]
		if !first && !r.Cfg.EmulateAll && !r.boxedLive(srcBits) && !r.boxedLive(dstBits) {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		cr := r.altCompare(dstBits, srcBits)
		if cls == classCompare {
			f := uc.CPU.RFLAGS &^ (machine64Flags)
			switch {
			case cr.Unordered:
				f |= flagZF | flagPF | flagCF
			case cr.Less:
				f |= flagCF
			case cr.Equal:
				f |= flagZF
			}
			uc.CPU.RFLAGS = f
		} else {
			if predicateHolds(in.Op, cr) {
				uc.CPU.XMM[in.RegOp.Reg][0] = ^uint64(0)
			} else {
				uc.CPU.XMM[in.RegOp.Reg][0] = 0
			}
		}
		return emOK, nil

	case classPackedCmp:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		src, err := r.read128(uc, in, in.RMOp)
		if err != nil {
			return emOK, err
		}
		dst := uc.CPU.XMM[in.RegOp.Reg]
		anyBoxed := r.boxedLive(src[0]) || r.boxedLive(src[1]) ||
			r.boxedLive(dst[0]) || r.boxedLive(dst[1])
		if !first && !r.Cfg.EmulateAll && !anyBoxed {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		sop := packedToScalar(in.Op)
		var out [2]uint64
		for lane := 0; lane < 2; lane++ {
			cr := r.altCompare(dst[lane], src[lane])
			if predicateHolds(sop, cr) {
				out[lane] = ^uint64(0)
			}
		}
		uc.CPU.XMM[in.RegOp.Reg] = out
		return emOK, nil

	case classCvtToInt:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
		if !first && !r.Cfg.EmulateAll && !r.boxedLive(srcBits) {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		f := f64(r.demote(srcBits))
		var res int64
		switch {
		case math.IsNaN(f) || f >= 0x1p63 || f < -0x1p63:
			res = math.MinInt64
		case in.Op == isa.CVTTSD2SI:
			res = int64(math.Trunc(f))
		default:
			res = int64(math.RoundToEven(f))
		}
		uc.CPU.GPR[in.RegOp.Reg] = uint64(res)
		return emOK, nil

	case classCvtFromInt:
		// Integer sources are never NaN-boxed; only warranted as the
		// faulting instruction (inexact int->double conversion).
		if !first && !r.Cfg.EmulateAll {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Bind, r.Costs.BindArith)
		v, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		val, cost := r.Cfg.Alt.Promote(float64(int64(v)))
		r.Promotions++
		r.charge(telemetry.Altmath, cost)
		uc.CPU.XMM[in.RegOp.Reg][0] = r.box(val)
		return emOK, nil

	case classRound:
		r.charge(telemetry.Bind, r.Costs.BindArith)
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
		if !first && !r.Cfg.EmulateAll && !r.boxedLive(srcBits) {
			return emNotWarranted, nil
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		f := f64(r.demote(srcBits))
		var rv float64
		switch in.Imm & 3 {
		case 0:
			rv = math.RoundToEven(f)
		case 1:
			rv = math.Floor(f)
		case 2:
			rv = math.Ceil(f)
		default:
			rv = math.Trunc(f)
		}
		val, cost := r.Cfg.Alt.Promote(rv)
		r.Promotions++
		r.charge(telemetry.Altmath, cost)
		uc.CPU.XMM[in.RegOp.Reg][0] = r.box(val)
		return emOK, nil
	}
	return emOK, fmt.Errorf("fpvm: emulateInst on unsupported op %s", in.Op)
}

const (
	flagCF         = uint64(1) << 0
	flagPF         = uint64(1) << 2
	flagZF         = uint64(1) << 6
	flagSF         = uint64(1) << 7
	flagOF         = uint64(1) << 11
	machine64Flags = flagCF | flagPF | flagZF | flagSF | flagOF
)

// altScalar runs one scalar operation through the alternative system and
// returns the bits to store (boxed, or an application-visible NaN for
// real NaNs from ordinary operands, §2.3).
func (r *Runtime) altScalar(op isa.Op, dstBits, srcBits uint64) uint64 {
	for r.checkFault(faultinject.SiteAltOp, r.curRIP) {
		if !r.retryFault(faultinject.SiteAltOp) {
			// Alt-system failure: demote the operands and re-run the
			// operation as native IEEE — the ladder's degradable rung.
			r.degradeFault(faultinject.SiteAltOp)
			return r.nativeScalar(op, dstBits, srcBits)
		}
	}
	fop := scalarToFPOp(op)
	var a, b alt.Value
	var aBoxed, bBoxed bool
	if fop == fpmath.OpSqrt {
		a, aBoxed = r.resolve(srcBits)
	} else {
		a, aBoxed = r.resolve(dstBits)
		b, bBoxed = r.resolve(srcBits)
	}
	res, cost := r.Cfg.Alt.Op(fop, a, b)
	r.charge(telemetry.Altmath, cost)
	if r.Cfg.Alt.IsNaN(res) && !aBoxed && !bBoxed {
		// Ordinary operands produced a real NaN: the result must be an
		// application-visible NaN, not one of our boxes (§2.3). Write the
		// exact bits the hardware would have produced — x64 propagates
		// (quieted) input NaN payloads; 0/0-style invalids yield the
		// canonical NaN. fpmath.Eval implements precisely that.
		if fop == fpmath.OpSqrt {
			return fpmath.Bits(fpmath.Eval(fop, f64(srcBits), 0).Value)
		}
		return fpmath.Bits(fpmath.Eval(fop, f64(dstBits), f64(srcBits)).Value)
	}
	return r.box(res)
}

// nativeScalar is the degraded arithmetic path: demote the operands and
// compute with exact native IEEE semantics; the result is plain bits,
// never boxed.
func (r *Runtime) nativeScalar(op isa.Op, dstBits, srcBits uint64) uint64 {
	return r.nativeScalarOp(scalarToFPOp(op), dstBits, srcBits)
}

// nativeScalarOp is nativeScalar with the fpmath op already mapped (the
// tier-1 JIT and the float fast path pre-resolve it).
func (r *Runtime) nativeScalarOp(fop fpmath.Op, dstBits, srcBits uint64) uint64 {
	if fop == fpmath.OpSqrt {
		return fpmath.Bits(fpmath.Eval(fop, f64(r.demote(srcBits)), 0).Value)
	}
	return fpmath.Bits(fpmath.Eval(fop, f64(r.demote(dstBits)), f64(r.demote(srcBits))).Value)
}

// altCompare compares two lanes through the alternative system.
func (r *Runtime) altCompare(aBits, bBits uint64) fpmath.CompareResult {
	for r.checkFault(faultinject.SiteAltOp, r.curRIP) {
		if !r.retryFault(faultinject.SiteAltOp) {
			// Degrade: compare the demoted operands natively.
			r.degradeFault(faultinject.SiteAltOp)
			return fpmath.Compare(f64(r.demote(aBits)), f64(r.demote(bBits)), false)
		}
	}
	a, _ := r.resolve(aBits)
	b, _ := r.resolve(bBits)
	cr, cost := r.Cfg.Alt.Compare(a, b)
	r.charge(telemetry.Altmath, cost)
	return cr
}

func scalarToFPOp(op isa.Op) fpmath.Op {
	switch op {
	case isa.ADDSD:
		return fpmath.OpAdd
	case isa.SUBSD:
		return fpmath.OpSub
	case isa.MULSD:
		return fpmath.OpMul
	case isa.DIVSD:
		return fpmath.OpDiv
	case isa.SQRTSD:
		return fpmath.OpSqrt
	case isa.MINSD:
		return fpmath.OpMin
	case isa.MAXSD:
		return fpmath.OpMax
	}
	return fpmath.OpAdd
}

func packedToScalar(op isa.Op) isa.Op {
	switch op {
	case isa.ADDPD:
		return isa.ADDSD
	case isa.SUBPD:
		return isa.SUBSD
	case isa.MULPD:
		return isa.MULSD
	case isa.DIVPD:
		return isa.DIVSD
	case isa.SQRTPD:
		return isa.SQRTSD
	case isa.MINPD:
		return isa.MINSD
	case isa.MAXPD:
		return isa.MAXSD
	case isa.CMPEQPD:
		return isa.CMPEQSD
	case isa.CMPLTPD:
		return isa.CMPLTSD
	case isa.CMPLEPD:
		return isa.CMPLESD
	case isa.CMPNEQPD:
		return isa.CMPNEQSD
	}
	return op
}

// predicateHolds evaluates a cmpxx predicate against a comparison result.
func predicateHolds(op isa.Op, cr fpmath.CompareResult) bool {
	u := cr.Unordered
	switch op {
	case isa.CMPEQSD:
		return !u && cr.Equal
	case isa.CMPLTSD:
		return !u && cr.Less
	case isa.CMPLESD:
		return !u && (cr.Less || cr.Equal)
	case isa.CMPUNORDSD:
		return u
	case isa.CMPNEQSD:
		return u || !cr.Equal
	case isa.CMPNLTSD:
		return u || !cr.Less
	case isa.CMPNLESD:
		return u || !(cr.Less || cr.Equal)
	case isa.CMPORDSD:
		return !u
	}
	return false
}

// hwEscapeDemote mirrors the future-work hardware box-escape check for
// loads FPVM emulates itself: a virtual machine must virtualize the
// virtualization extension too. When the emulated integer load's 8-byte
// block holds a live box, demote it in place before the read.
func (r *Runtime) hwEscapeDemote(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand) error {
	if !r.Cfg.FutureHW || o.Kind != isa.KindMem {
		return nil
	}
	block := r.ea(uc, in, o) &^ 7
	bits, err := r.m.Mem.ReadUint64(block)
	if err != nil || !r.boxedLive(bits) {
		return err
	}
	r.Tel.CorrEvents++
	r.charge(telemetry.Corr, r.Costs.CorrHandler/2)
	return r.m.Mem.WriteUint64(block, r.demoteTo(bits, telemetry.Corr))
}

// emulateMove transports data (possibly NaN-boxed bit patterns) without
// touching the alternative system.
func (r *Runtime) emulateMove(uc *kernel.Ucontext, in *isa.Inst) error {
	cpu := &uc.CPU
	// Integer loads get the hardware escape treatment under FutureHW.
	switch in.Op {
	case isa.MOV64RM, isa.MOV32RM, isa.MOV16RM, isa.MOV8RM,
		isa.MOVZX8, isa.MOVZX16, isa.MOVSX8, isa.MOVSX16, isa.MOVSXD:
		if err := r.hwEscapeDemote(uc, in, in.RMOp); err != nil {
			return err
		}
	}
	switch in.Op {
	case isa.MOV64RR, isa.MOV64RM:
		v, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = v
	case isa.MOV64MR:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 8, cpu.GPR[in.RegOp.Reg])
	case isa.MOV64RI:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 8, uint64(in.Imm))
	case isa.MOV32RR, isa.MOV32RM:
		v, err := r.readOperand(uc, in, in.RMOp, 4)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint32(v))
	case isa.MOV32MR:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 4, uint64(uint32(cpu.GPR[in.RegOp.Reg])))
	case isa.MOV32RI:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 4, uint64(uint32(in.Imm)))
	case isa.MOV16RM, isa.MOVZX16:
		v, err := r.readOperand(uc, in, in.RMOp, 2)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint16(v))
	case isa.MOV16MR:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 2, uint64(uint16(cpu.GPR[in.RegOp.Reg])))
	case isa.MOV8RM, isa.MOVZX8:
		v, err := r.readOperand(uc, in, in.RMOp, 1)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint8(v))
	case isa.MOV8MR:
		return r.writeOperandOrGPR(uc, in, in.RMOp, 1, uint64(uint8(cpu.GPR[in.RegOp.Reg])))
	case isa.MOVSX8:
		v, err := r.readOperand(uc, in, in.RMOp, 1)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int8(v)))
	case isa.MOVSX16:
		v, err := r.readOperand(uc, in, in.RMOp, 2)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int16(v)))
	case isa.MOVSXD:
		v, err := r.readOperand(uc, in, in.RMOp, 4)
		if err != nil {
			return err
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int32(v)))

	case isa.MOVSDXX:
		cpu.XMM[in.RegOp.Reg][0] = cpu.XMM[in.RMOp.Reg][0]
	case isa.MOVSDXM, isa.MOVQXM:
		v, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		cpu.XMM[in.RegOp.Reg] = [2]uint64{v, 0}
	case isa.MOVSDMX, isa.MOVQMX:
		return r.writeOperandMem(uc, in, in.RMOp, 8, cpu.XMM[in.RegOp.Reg][0])
	case isa.MOVAPDXX, isa.MOVDQAXX:
		cpu.XMM[in.RegOp.Reg] = cpu.XMM[in.RMOp.Reg]
	case isa.MOVAPDXM, isa.MOVUPDXM, isa.MOVDQAXM, isa.MOVDQUXM:
		v, err := r.read128(uc, in, in.RMOp)
		if err != nil {
			return err
		}
		cpu.XMM[in.RegOp.Reg] = v
	case isa.MOVAPDMX, isa.MOVUPDMX, isa.MOVDQAMX, isa.MOVDQUMX:
		return r.write128(uc, in, in.RMOp, cpu.XMM[in.RegOp.Reg])
	case isa.MOVQXG:
		cpu.XMM[in.RegOp.Reg] = [2]uint64{cpu.GPR[in.RMOp.Reg], 0}
	case isa.MOVQGX:
		cpu.GPR[in.RegOp.Reg] = cpu.XMM[in.RMOp.Reg][0]
	case isa.MOVDXG:
		cpu.XMM[in.RegOp.Reg] = [2]uint64{uint64(uint32(cpu.GPR[in.RMOp.Reg])), 0}
	case isa.MOVDGX:
		cpu.GPR[in.RegOp.Reg] = uint64(uint32(cpu.XMM[in.RMOp.Reg][0]))
	case isa.MOVDDUP:
		v, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		cpu.XMM[in.RegOp.Reg] = [2]uint64{v, v}
	default:
		return fmt.Errorf("fpvm: emulateMove on %s", in.Op)
	}
	return nil
}

// writeOperandOrGPR writes v to a GPR or memory r/m destination.
func (r *Runtime) writeOperandOrGPR(uc *kernel.Ucontext, in *isa.Inst, o isa.Operand, size int, v uint64) error {
	if o.Kind == isa.KindGPR {
		if size == 4 {
			uc.CPU.GPR[o.Reg] = uint64(uint32(v))
		} else {
			uc.CPU.GPR[o.Reg] = v
		}
		return nil
	}
	return r.writeOperandMem(uc, in, o, size, v)
}
