package fpvm_test

import (
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/hostlib"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

// runNativeRig executes img without FPVM for differential comparison.
func runNativeRig(t *testing.T, img *obj.Image) string {
	t.Helper()
	as := mem.NewAddressSpace()
	m := machine.New(as)
	p := kernel.NewProcess(kernel.New(), m, img.Name)
	lib := hostlib.Install(p)
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	if err := img.Load(as, func(n string) (uint64, bool) {
		if s, ok := img.Lookup(n); ok {
			return s.Addr, true
		}
		a, ok := lib.Exports[n]
		return a, ok
	}); err != nil {
		t.Fatal(err)
	}
	m.InvalidateICache()
	m.CPU.RIP = img.Entry
	m.CPU.GPR[isa.RSP] = obj.StackTop - 64
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return p.Stdout.String()
}

// differential builds the program, runs native and FPVM(boxed, SEQ), and
// requires identical output.
func differential(t *testing.T, name string, body func(b *asm.Builder)) {
	t.Helper()
	b := asm.NewBuilder(name)
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.RoDouble("pair", 1, 3) // for packed ops (16-byte aligned)
	b.Space("buf", 64)
	b.Func("main")
	body(b)
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	native := runNativeRig(t, img)
	got := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true}, true).run(t)
	if got != native {
		t.Errorf("%s: fpvm %q != native %q", name, got, native)
	}
}

// boxIt emits instructions leaving a boxed 1/3 in xmm0 (under FPVM; a
// plain double natively).
func boxIt(b *asm.Builder) {
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
}

// TestEmulatedMoveSemantics pushes a boxed value through every supported
// move form and compares against native execution bit-for-bit.
func TestEmulatedMoveSemantics(t *testing.T) {
	x := isa.XMM
	g := isa.GPR

	// All integer/LEA setup happens BEFORE the boxing trap so the move
	// chains execute inside emulated sequences (LEA terminates them).
	t.Run("gpr-roundtrip", func(t *testing.T) {
		differential(t, "gpr", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			b.RM(isa.MOVQGX, g(isa.RBX), x(isa.XMM0))
			b.RM(isa.MOV64MR, g(isa.RBX), isa.Mem(isa.RDI, 0))
			b.RM(isa.MOV64RM, g(isa.RCX), isa.Mem(isa.RDI, 0))
			b.RM(isa.MOV64RR, g(isa.RDX), g(isa.RCX))
			b.RM(isa.MOVQXG, x(isa.XMM0), g(isa.RDX))
			b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "one")
		})
	})

	t.Run("gpr-narrow", func(t *testing.T) {
		differential(t, "narrow", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			// Store boxed bits, reload through narrow emulated moves.
			b.RM(isa.MOVSDMX, x(isa.XMM0), isa.Mem(isa.RDI, 0))
			b.RM(isa.MOV32RM, g(isa.RBX), isa.Mem(isa.RDI, 4))
			b.RM(isa.MOV32MR, g(isa.RBX), isa.Mem(isa.RDI, 12))
			b.RM(isa.MOV16RM, g(isa.RCX), isa.Mem(isa.RDI, 6))
			b.RM(isa.MOV16MR, g(isa.RCX), isa.Mem(isa.RDI, 14))
			b.RM(isa.MOV8RM, g(isa.RDX), isa.Mem(isa.RDI, 7))
			b.RM(isa.MOV8MR, g(isa.RDX), isa.Mem(isa.RDI, 15))
			b.RM(isa.MOVZX8, g(isa.RSI), isa.Mem(isa.RDI, 7))
			b.RM(isa.MOVSX8, g(isa.R8), isa.Mem(isa.RDI, 7))
			b.RM(isa.MOVZX16, g(isa.R9), isa.Mem(isa.RDI, 6))
			b.RM(isa.MOVSX16, g(isa.R10), isa.Mem(isa.RDI, 6))
			b.RM(isa.MOVSXD, g(isa.R11), isa.Mem(isa.RDI, 4))
			// Rebuild the double from the copied halves at +8.
			b.RM(isa.MOVSDXM, x(isa.XMM1), isa.Mem(isa.RDI, 8))
			b.RMData(isa.MULSD, isa.XMM(isa.XMM0), "three")
			b.RM(isa.MOVSDXX, x(isa.XMM0), x(isa.XMM0))
		})
	})

	t.Run("movsd-chain", func(t *testing.T) {
		differential(t, "movsd", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			b.RM(isa.MOVSDXX, x(isa.XMM1), x(isa.XMM0))
			b.RM(isa.MOVSDMX, x(isa.XMM1), isa.Mem(isa.RDI, 8))
			b.RM(isa.MOVSDXM, x(isa.XMM2), isa.Mem(isa.RDI, 8))
			b.RM(isa.ADDSD, x(isa.XMM2), x(isa.XMM2))
			b.RM(isa.MOVSDXX, x(isa.XMM0), x(isa.XMM2))
		})
	})

	t.Run("packed-moves", func(t *testing.T) {
		differential(t, "packed", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			b.RM(isa.MOVAPDXX, x(isa.XMM1), x(isa.XMM0))
			b.RM(isa.MOVAPDMX, x(isa.XMM1), isa.Mem(isa.RDI, 0))
			b.RM(isa.MOVUPDXM, x(isa.XMM2), isa.Mem(isa.RDI, 0))
			b.RM(isa.MOVDQAMX, x(isa.XMM2), isa.Mem(isa.RDI, 16))
			b.RM(isa.MOVDQUXM, x(isa.XMM3), isa.Mem(isa.RDI, 16))
			b.RM(isa.MOVUPDMX, x(isa.XMM3), isa.Mem(isa.RDI, 32))
			b.RM(isa.MOVDQUMX, x(isa.XMM3), isa.Mem(isa.RDI, 48))
			b.RM(isa.MOVDQAXX, x(isa.XMM4), x(isa.XMM3))
			b.RM(isa.MOVDDUP, x(isa.XMM5), x(isa.XMM4))
			b.RM(isa.ADDSD, x(isa.XMM5), x(isa.XMM5))
			b.RM(isa.MOVSDXX, x(isa.XMM0), x(isa.XMM5))
		})
	})

	t.Run("movq-mem", func(t *testing.T) {
		differential(t, "movqmem", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			b.RM(isa.MOVQMX, x(isa.XMM0), isa.Mem(isa.RDI, 24))
			b.RM(isa.MOVQXM, x(isa.XMM1), isa.Mem(isa.RDI, 24))
			b.RM(isa.MOVDXG, x(isa.XMM2), g(isa.RAX))
			b.RM(isa.MOVDGX, g(isa.RBX), x(isa.XMM2))
			b.RM(isa.MULSD, x(isa.XMM1), x(isa.XMM1))
			b.RM(isa.MOVSDXX, x(isa.XMM0), x(isa.XMM1))
		})
	})

	t.Run("mov-imm", func(t *testing.T) {
		differential(t, "movimm", func(b *asm.Builder) {
			b.LeaData(isa.RDI, "buf")
			boxIt(b)
			b.MI(isa.MOV64RI, g(isa.RBX), 0x3FF0000000000000) // 1.0 bits
			b.RM(isa.MOV64MR, g(isa.RBX), isa.Mem(isa.RDI, 40))
			b.MI(isa.MOV32RI, g(isa.RCX), 42)
			b.RM(isa.MOVSDXM, x(isa.XMM1), isa.Mem(isa.RDI, 40))
			b.RM(isa.ADDSD, x(isa.XMM0), x(isa.XMM1))
		})
	})
}

// TestEmulatedComparePredicates exercises cmpxx and ucomisd on boxed
// operands inside sequences.
func TestEmulatedComparePredicates(t *testing.T) {
	x := isa.XMM
	for _, op := range []isa.Op{isa.CMPEQSD, isa.CMPLTSD, isa.CMPLESD,
		isa.CMPUNORDSD, isa.CMPNEQSD, isa.CMPNLTSD, isa.CMPNLESD, isa.CMPORDSD} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			differential(t, "cmp", func(b *asm.Builder) {
				boxIt(b)
				b.RMData(isa.MOVSDXM, x(isa.XMM1), "one")
				b.RM(op, x(isa.XMM0), x(isa.XMM1))
				// Use the mask to select a printable value: mask & 1.0.
				b.RMData(isa.MOVSDXM, x(isa.XMM2), "one")
				b.RM(isa.ANDPD, x(isa.XMM0), x(isa.XMM2))
			})
		})
	}
}

func TestEmulatedPackedCmp(t *testing.T) {
	differential(t, "packedcmp", func(b *asm.Builder) {
		b.RMData(isa.MOVAPDXM, isa.XMM(isa.XMM0), "pair")
		b.RMData(isa.DIVPD, isa.XMM(isa.XMM0), "pair") // {1,1} boxed
		b.RMData(isa.CMPLTPD, isa.XMM(isa.XMM0), "pair")
		b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
		b.RM(isa.ANDPD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	})
}

func TestEmulatedUcomisdBranch(t *testing.T) {
	differential(t, "branch", func(b *asm.Builder) {
		boxIt(b)
		b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
		b.RM(isa.UCOMISD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
		b.Branch(isa.JB, "below")
		b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "three")
		b.Branch(isa.JMP, "done")
		b.Label("below")
		b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
		b.Label("done")
	})
}

func TestEmulatedCvtAndRound(t *testing.T) {
	differential(t, "cvt", func(b *asm.Builder) {
		boxIt(b)
		// boxed 1/3 -> cvtsd2si (rounds to 0) -> back via cvtsi2sd.
		b.RM(isa.CVTSD2SI, isa.GPR(isa.RBX), isa.XMM(isa.XMM0))
		b.MI(isa.ADD64I, isa.GPR(isa.RBX), 41)
		b.RM(isa.CVTSI2SD, isa.XMM(isa.XMM0), isa.GPR(isa.RBX))
	})
	differential(t, "roundsd", func(b *asm.Builder) {
		boxIt(b)
		b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "three") // 3.333..., boxed
		b.RMI(isa.ROUNDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM0), 1|8)
	})
}

// TestInt3CorrectnessPath drives handleCorrectnessTrap directly (an image
// patched with int3 rather than magic calls).
func TestInt3CorrectnessPath(t *testing.T) {
	b := asm.NewBuilder("int3path")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Space("buf", 16)
	b.RoBytes("fmt", []byte("%x\x00"))
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.LeaData(isa.RDI, "buf")
	b.RM(isa.MOVSDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 0))
	// int3 goes right before this integer read of float bytes.
	b.Op0(isa.INT3)
	b.RM(isa.MOV64RM, isa.GPR(isa.RSI), isa.Mem(isa.RDI, 0))
	b.LeaData(isa.RDI, "fmt")
	b.CallImport("printf")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE()}, true)
	out := r.run(t)
	// 1/3 bits: 0x3fd5555555555555 — demotion must have run.
	if out != "3fd5555555555555" {
		t.Errorf("int3 correctness output %q", out)
	}
	if r.rt.Tel.CorrEvents == 0 {
		t.Error("no corr events recorded")
	}
}

// TestMagicWrapsResolver: an image whose relocs were rewritten to
// name$fpvm must still resolve through WrapResolver.
func TestMagicWrapsResolver(t *testing.T) {
	img := buildPrintBoxed(t)
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	p := kernel.NewProcess(k, m, "mw")
	lib := hostlib.Install(p)
	rt, err := fpvmrt.Attach(p, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), MagicWraps: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.InstallWrappers(lib)
	clone := img.Clone()
	if n := rt.ApplyMagicWraps(clone); n == 0 {
		t.Fatal("no relocs rewritten")
	}
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	if err := clone.Load(as, rt.WrapResolver(func(n string) (uint64, bool) {
		a, ok := lib.Exports[n]
		return a, ok
	})); err != nil {
		t.Fatal(err)
	}
	m.InvalidateICache()
	m.CPU.RIP = clone.Entry
	m.CPU.GPR[isa.RSP] = obj.StackTop - 64
	m.CPU.MXCSR = machine.MXCSRTrapAll
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := p.Stdout.String(); got[:6] != "0.3333" {
		t.Errorf("magic-wrapped output %q", got)
	}
}

func TestConfigName(t *testing.T) {
	for _, c := range []struct {
		cfg  fpvmrt.Config
		want string
	}{
		{fpvmrt.Config{}, "NONE"},
		{fpvmrt.Config{Seq: true}, "SEQ"},
		{fpvmrt.Config{Short: true}, "SHORT"},
		{fpvmrt.Config{Seq: true, Short: true}, "SEQ SHORT"},
	} {
		if got := c.cfg.ConfigName(); got != c.want {
			t.Errorf("%+v -> %q", c.cfg, got)
		}
	}
}

func TestAttachRequiresAlt(t *testing.T) {
	as := mem.NewAddressSpace()
	p := kernel.NewProcess(kernel.New(), machine.New(as), "x")
	if _, err := fpvmrt.Attach(p, fpvmrt.Config{}); err == nil {
		t.Error("Attach without Alt succeeded")
	}
}
