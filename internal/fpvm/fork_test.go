package fpvm_test

import (
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
)

// TestForkVirtualizedProcess reproduces §2.1's fork story: a virtualized
// process with live boxed state forks; both parent and child continue
// under FPVM independently, each printing the correct (diverging) values.
func TestForkVirtualizedProcess(t *testing.T) {
	// Program: x = 1/3 (boxed); MARKER; x += step; print_f64(x); exit.
	// The parent forks at MARKER (an int3 we intercept) and sets a
	// different step for the child by patching its data.
	b := asm.NewBuilder("forked")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Double("step", 1) // parent adds 1; we flip the child's copy to 2
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.Op0(isa.INT3) // fork marker
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "step")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stepSym, ok := img.Lookup("step")
	if !ok {
		t.Fatal("no step symbol")
	}

	parent := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Short: true}, true)

	var child *kernel.Process
	var childRT *fpvmrt.Runtime
	parent.p.BreakpointHook = func(uc *kernel.Ucontext) bool {
		if child != nil {
			return true // child inherits the hook; ignore its marker
		}
		// Fork at the marker: the boxed x lives in the (about to be
		// restored) ucontext — park it in the machine before cloning.
		parent.p.M.CPU = uc.CPU
		child = parent.p.Fork("child")
		childRT = parent.rt.ForkChild(child)
		// Diverge the child: step = 2.
		if err := child.M.Mem.WriteUint64(stepSym.Addr, 0x4000000000000000); err != nil {
			t.Fatal(err)
		}
		return true
	}

	if err := parent.p.Run(0); err != nil {
		t.Fatalf("parent: %v", err)
	}
	if err := parent.rt.Err(); err != nil {
		t.Fatalf("parent fpvm: %v", err)
	}
	if child == nil {
		t.Fatal("fork marker never hit")
	}
	if err := child.Run(0); err != nil {
		t.Fatalf("child: %v", err)
	}
	if err := childRT.Err(); err != nil {
		t.Fatalf("child fpvm: %v", err)
	}

	pOut := parent.p.Stdout.String()
	cOut := child.Stdout.String()
	if !strings.HasPrefix(pOut, "1.3333333333333333") {
		t.Errorf("parent printed %q, want 1/3+1", pOut)
	}
	if !strings.HasPrefix(cOut, "2.3333333333333335") {
		t.Errorf("child printed %q, want 1/3+2", cOut)
	}
	// The child must have re-registered with /dev/fpvm on its own.
	if !child.FPVMRegistered() {
		t.Error("child not registered for short-circuit delivery")
	}
	if childRT.Tel.Traps == 0 {
		t.Error("child took no FP traps")
	}
	// Independence: the child's allocator divergence must not affect the
	// parent's (clone, not share).
	if parent.rt.Allocator() == childRT.Allocator() {
		t.Error("allocator shared across fork")
	}
}

// TestForkInheritsRecoveryState: fault semantics across fork (§2.1's
// fork story extended to the recovery ladder). The parent accumulates
// degradations before the fork; the child must start from a deep copy of
// that ladder state (same counters at the fork point, independent
// accumulation afterwards), share the deterministic injector, and still
// produce the right answer.
func TestForkInheritsRecoveryState(t *testing.T) {
	b := asm.NewBuilder("forked-faults")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Double("step", 1)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.Op0(isa.INT3) // fork marker
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "step")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stepSym, ok := img.Lookup("step")
	if !ok {
		t.Fatal("no step symbol")
	}

	// every=1 at the alt.op site: every emulated operation degrades after
	// its retry budget drains, so the parent carries ladder state into the
	// fork.
	inj := faultinject.New(7)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 1})
	parent := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj}, true)

	var child *kernel.Process
	var childRT *fpvmrt.Runtime
	var snapDegr, snapRetr uint64
	parent.p.BreakpointHook = func(uc *kernel.Ucontext) bool {
		if child != nil {
			return true
		}
		parent.p.M.CPU = uc.CPU
		snapDegr, snapRetr = parent.rt.Degradations, parent.rt.Retries
		child = parent.p.Fork("child")
		childRT = parent.rt.ForkChild(child)
		if err := child.M.Mem.WriteUint64(stepSym.Addr, 0x4000000000000000); err != nil {
			t.Fatal(err)
		}
		return true
	}

	if err := parent.p.Run(0); err != nil {
		t.Fatalf("parent: %v", err)
	}
	if child == nil {
		t.Fatal("fork marker never hit")
	}
	if snapDegr == 0 {
		t.Fatal("parent accumulated no degradations before fork (injection not exercised)")
	}
	if childRT.Degradations != snapDegr || childRT.Retries != snapRetr {
		t.Errorf("child ladder counters not a snapshot of the fork point: child %d/%d, fork %d/%d",
			childRT.Degradations, childRT.Retries, snapDegr, snapRetr)
	}
	if err := child.Run(0); err != nil {
		t.Fatalf("child: %v", err)
	}
	if err := parent.rt.Err(); err != nil {
		t.Fatalf("parent fpvm: %v", err)
	}
	if err := childRT.Err(); err != nil {
		t.Fatalf("child fpvm: %v", err)
	}

	// Both sides degrade independently after the fork...
	if parent.rt.Degradations <= snapDegr {
		t.Error("parent stopped degrading after fork")
	}
	if childRT.Degradations <= snapDegr {
		t.Error("child did not continue degrading from its snapshot")
	}
	// ...and both still print exact results (degradation is native IEEE).
	if out := parent.p.Stdout.String(); !strings.HasPrefix(out, "1.3333333333333333") {
		t.Errorf("parent printed %q, want 1/3+1", out)
	}
	if out := child.Stdout.String(); !strings.HasPrefix(out, "2.3333333333333335") {
		t.Errorf("child printed %q, want 1/3+2", out)
	}
	// The shared injector's ledger covers both processes and reconciles.
	if !inj.Reconciled() {
		t.Errorf("shared injector ledger broken across fork:\n%s", inj.Report())
	}
}

// TestForkCheckpointRollback: the checkpoint/rollback interplay with
// fork. The parent runs (and snapshots) to completion; the child — whose
// "step" was patched to 2 at the fork — then hits a fatal alt.op fault.
// Its supervisor must roll back to a snapshot of the CHILD's own state
// (fork-safe Clone: a child-side re-snapshot overlays the parent image
// with the child's dirty pages), so the restore keeps the patched step
// and does not alias or disturb the parent's heap or memory.
func TestForkCheckpointRollback(t *testing.T) {
	b := asm.NewBuilder("forked-ckpt")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Double("step", 1)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.Op0(isa.INT3) // fork marker
	b.RMData(isa.ADDSD, isa.XMM(isa.XMM0), "step")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stepSym, ok := img.Lookup("step")
	if !ok {
		t.Fatal("no step symbol")
	}

	// Shared injector, armed only after the parent completes: the fatal
	// fault hits the child alone.
	inj := faultinject.New(5)
	parent := newRig(t, img, fpvmrt.Config{
		Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj, CheckpointInterval: 1,
	}, true)

	var child *kernel.Process
	var childRT *fpvmrt.Runtime
	parent.p.BreakpointHook = func(uc *kernel.Ucontext) bool {
		if child != nil {
			return true
		}
		parent.p.M.CPU = uc.CPU
		child = parent.p.Fork("child")
		childRT = parent.rt.ForkChild(child)
		if err := child.M.Mem.WriteUint64(stepSym.Addr, 0x4000000000000000); err != nil {
			t.Fatal(err)
		}
		return true
	}

	if err := parent.p.Run(0); err != nil {
		t.Fatalf("parent: %v", err)
	}
	if err := parent.rt.Err(); err != nil {
		t.Fatalf("parent fpvm: %v", err)
	}
	if child == nil {
		t.Fatal("fork marker never hit")
	}

	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 1, Limit: 1, Fatal: true})
	if err := child.Run(0); err != nil {
		t.Fatalf("child: %v", err)
	}
	if err := childRT.Err(); err != nil {
		t.Fatalf("child fpvm: %v", err)
	}

	if childRT.Rollbacks == 0 {
		t.Fatal("child's fatal fault produced no rollback")
	}
	if childRT.Detached() {
		t.Error("child detached despite its inherited checkpoint supervisor")
	}
	// The rollback restored CHILD state: the patched step survived, so the
	// child still prints 1/3 + 2 — a restore that aliased the parent's
	// image would have reverted step to 1 and printed 1.33...
	if out := child.Stdout.String(); !strings.HasPrefix(out, "2.3333333333333335") {
		t.Errorf("child printed %q after rollback, want 1/3+2", out)
	}
	if out := parent.p.Stdout.String(); !strings.HasPrefix(out, "1.3333333333333333") {
		t.Errorf("parent printed %q, want 1/3+1", out)
	}
	// No state sharing across the fork: the child's rollback must not have
	// replaced the parent's allocator or memory.
	if parent.rt.Allocator() == childRT.Allocator() {
		t.Error("allocator shared across fork after rollback")
	}
	if v, err := parent.p.M.Mem.ReadUint64(stepSym.Addr); err != nil || v != 0x3FF0000000000000 {
		t.Errorf("parent's step clobbered: %#x, %v", v, err)
	}
	if parent.rt.Rollbacks != 0 {
		t.Errorf("parent recorded %d rollbacks for the child's fault", parent.rt.Rollbacks)
	}
	if !inj.Reconciled() || !inj.Consistent() {
		t.Errorf("shared injector ledger broken across fork:\n%s", inj.Report())
	}
}

// TestForkMemoryIsolation: writes in the child are invisible to the
// parent.
func TestForkMemoryIsolation(t *testing.T) {
	img := buildGCLoop(t, 5)
	parent := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE()}, true)
	child := parent.p.Fork("child")
	_ = parent.rt.ForkChild(child)
	sp := child.M.CPU.GPR[isa.RSP]
	if err := child.M.Mem.WriteUint64(sp-128, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	v, err := parent.p.M.Mem.ReadUint64(sp - 128)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0xDEAD {
		t.Error("child write leaked into the parent address space")
	}
	// Both machines remain runnable.
	if child.M.CPU.RIP != parent.p.M.CPU.RIP {
		t.Error("child did not inherit RIP")
	}
	if child.M.CPU.MXCSR != machine.MXCSRTrapAll {
		t.Error("child did not inherit FPVM's trap-all MXCSR")
	}
}
