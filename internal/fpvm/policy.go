package fpvm

import (
	"fmt"
	"math"

	"fpvm/internal/alt"
	"fpvm/internal/bigfp"
	"fpvm/internal/fpmath"
	"fpvm/internal/interval"
)

// PolicyConfig tunes the adaptive per-RIP precision policy engine.
type PolicyConfig struct {
	// EscalateAfter is the number of cause-flagged trap deliveries at one
	// RIP before the site escalates from boxed IEEE to interval.
	EscalateAfter uint64

	// WidthTol is the relative interval width above which an interval
	// site escalates to MPFR: bounds that wide mean binary64 rounding is
	// materially wrong at this site and real extra precision is needed.
	WidthTol float64

	// DecayAfter is the number of consecutive within-tolerance interval
	// results after which a site decays back to boxed (0 disables decay):
	// tight bounds mean the exception cluster was transient and boxed
	// arithmetic is accurate enough.
	DecayAfter uint64

	// MPFRPrecision is the mantissa precision (bits) used by escalated
	// MPFR sites.
	MPFRPrecision uint
}

// DefaultPolicyConfig returns the defaults used by fpvm-run -precision-policy.
func DefaultPolicyConfig() PolicyConfig {
	return PolicyConfig{
		EscalateAfter: 8,
		WidthTol:      1e-9,
		DecayAfter:    4096,
		MPFRPrecision: 200,
	}
}

// PolicyStats is a snapshot of the engine's activity.
type PolicyStats struct {
	Sites           uint64 // distinct RIPs tracked
	IntervalSites   uint64 // sites currently at the interval tier
	MPFRSites       uint64 // sites currently at the MPFR tier
	Escalations     uint64 // boxed -> interval site promotions
	MPFREscalations uint64 // interval -> MPFR site promotions
	Decays          uint64 // interval -> boxed site demotions
	OpsBoxed        uint64 // arithmetic ops computed at the boxed tier
	OpsInterval     uint64 // arithmetic ops computed at the interval tier
	OpsMPFR         uint64 // arithmetic ops computed at the MPFR tier
	MaxRelWidth     float64
}

// Line renders the stats as a one-line summary.
func (st PolicyStats) Line() string {
	return fmt.Sprintf(
		"policy: sites %d (interval %d, mpfr %d), escalations %d (+%d mpfr, -%d decayed), ops boxed %d / interval %d / mpfr %d, max rel width %.2e",
		st.Sites, st.IntervalSites, st.MPFRSites,
		st.Escalations, st.MPFREscalations, st.Decays,
		st.OpsBoxed, st.OpsInterval, st.OpsMPFR, st.MaxRelWidth)
}

// precTier is a site's current numeric system.
type precTier uint8

const (
	tierBoxed precTier = iota
	tierInterval
	tierMPFR
)

// polSite is the policy state of one instruction address.
type polSite struct {
	tier  precTier
	hits  uint64 // cause-flagged trap deliveries at this RIP
	tight uint64 // consecutive within-tolerance interval results
}

// PolicyEngine is an alt.System that picks a numeric tier per RIP instead
// of per run: every site starts boxed, escalates to interval once
// exceptions cluster there (EscalateAfter cause-flagged traps), escalates
// further to MPFR when the interval bounds it computes are wide enough to
// matter (WidthTol), and decays back to boxed after a long run of tight
// bounds (DecayAfter). The runtime feeds it per-RIP trap causes from
// handleTrap and it reads the current RIP back through the bound runtime,
// so it works unchanged on the walk, trace-replay and JIT paths (all three
// maintain curRIP per emulated instruction).
//
// Values are tier-tagged by their concrete type (float64, interval.Interval,
// *bigfp.Float); an operand produced at one tier and consumed at another is
// converted through binary64, with both conversions charged. The engine is
// deterministic for a fixed guest and configuration. It deliberately does
// not implement alt.Codec: site state is process-local, so a suspended and
// resumed run would not replay identically — the runtime therefore refuses
// to preempt it, and it is excluded from the oracle conformance matrix.
type PolicyEngine struct {
	cfg   PolicyConfig
	boxed *alt.BoxedIEEE
	ival  *alt.IntervalSystem
	mpfr  *alt.MPFR
	rt    *Runtime
	sites map[uint64]*polSite
	stats PolicyStats
}

// NewPolicyEngine builds an engine; zero fields of cfg take the defaults.
func NewPolicyEngine(cfg PolicyConfig) *PolicyEngine {
	def := DefaultPolicyConfig()
	if cfg.EscalateAfter == 0 {
		cfg.EscalateAfter = def.EscalateAfter
	}
	if cfg.WidthTol == 0 {
		cfg.WidthTol = def.WidthTol
	}
	if cfg.MPFRPrecision == 0 {
		cfg.MPFRPrecision = def.MPFRPrecision
	}
	return &PolicyEngine{
		cfg:   cfg,
		boxed: alt.NewBoxedIEEE(),
		ival:  alt.NewInterval(),
		mpfr:  alt.NewMPFR(cfg.MPFRPrecision),
		sites: make(map[uint64]*polSite),
	}
}

// bind attaches the engine to the runtime whose curRIP it follows.
func (e *PolicyEngine) bind(r *Runtime) { e.rt = r }

// PolicyStats returns the policy engine's activity snapshot, or nil when
// the runtime's alt system is not a PolicyEngine.
func (r *Runtime) PolicyStats() *PolicyStats {
	if r.pol == nil {
		return nil
	}
	st := r.pol.Stats()
	return &st
}

// Stats returns a snapshot of the engine's activity.
func (e *PolicyEngine) Stats() PolicyStats {
	st := e.stats
	for _, s := range e.sites {
		st.Sites++
		switch s.tier {
		case tierInterval:
			st.IntervalSites++
		case tierMPFR:
			st.MPFRSites++
		}
	}
	return st
}

func (e *PolicyEngine) siteFor(rip uint64) *polSite {
	s := e.sites[rip]
	if s == nil {
		s = &polSite{}
		e.sites[rip] = s
	}
	return s
}

// curSite resolves the site of the instruction the runtime is emulating.
// Unbound (unit tests driving the engine directly), everything maps to one
// global site at RIP 0.
func (e *PolicyEngine) curSite() *polSite {
	var rip uint64
	if e.rt != nil {
		rip = e.rt.curRIP
	}
	return e.siteFor(rip)
}

// noteTrap records a cause-flagged trap delivery at rip (called by
// handleTrap) and escalates the site once exceptions cluster there.
func (e *PolicyEngine) noteTrap(rip uint64, flags uint32) {
	if flags == 0 {
		return
	}
	s := e.siteFor(rip)
	s.hits++
	if s.tier == tierBoxed && s.hits >= e.cfg.EscalateAfter {
		s.tier = tierInterval
		s.tight = 0
		e.stats.Escalations++
	}
}

func (e *PolicyEngine) sys(t precTier) alt.System {
	switch t {
	case tierInterval:
		return e.ival
	case tierMPFR:
		return e.mpfr
	}
	return e.boxed
}

// tierOfVal tags a value by its concrete representation.
func tierOfVal(v alt.Value) precTier {
	switch v.(type) {
	case interval.Interval:
		return tierInterval
	case *bigfp.Float:
		return tierMPFR
	}
	return tierBoxed
}

// convert moves v to tier t through binary64, charging both conversions.
// Crossing downward loses the higher tier's extra information by design:
// the policy decided the consuming site does not need it.
func (e *PolicyEngine) convert(v alt.Value, t precTier) (alt.Value, uint64) {
	from := tierOfVal(v)
	if from == t {
		return v, 0
	}
	f, c1 := e.sys(from).Demote(v)
	nv, c2 := e.sys(t).Promote(f)
	return nv, c1 + c2
}

// relWidth is an interval's width relative to its midpoint magnitude
// (absolute near zero, where relative error is meaningless).
func relWidth(iv interval.Interval) float64 {
	w := iv.Width()
	if w == 0 || math.IsNaN(w) {
		return 0
	}
	m := math.Abs(iv.Mid())
	if m < 1 {
		m = 1
	}
	return w / m
}

// observeWidth applies the width rules after an interval-tier op: wide
// bounds escalate the site to MPFR, a long run of tight bounds decays it
// back to boxed.
func (e *PolicyEngine) observeWidth(s *polSite, v alt.Value) {
	iv, ok := v.(interval.Interval)
	if !ok || iv.IsNaN() {
		return
	}
	w := relWidth(iv)
	if w > e.stats.MaxRelWidth {
		e.stats.MaxRelWidth = w
	}
	if w > e.cfg.WidthTol {
		s.tier = tierMPFR
		s.tight = 0
		e.stats.MPFREscalations++
		return
	}
	s.tight++
	if e.cfg.DecayAfter > 0 && s.tight >= e.cfg.DecayAfter {
		s.tier = tierBoxed
		s.tight = 0
		s.hits = 0
		e.stats.Decays++
	}
}

// --- alt.System ---

func (e *PolicyEngine) Name() string { return "adaptive" }

func (e *PolicyEngine) Promote(f float64) (alt.Value, uint64) {
	return e.sys(e.curSite().tier).Promote(f)
}

func (e *PolicyEngine) Demote(v alt.Value) (float64, uint64) {
	return e.sys(tierOfVal(v)).Demote(v)
}

func (e *PolicyEngine) Op(op fpmath.Op, a, b alt.Value) (alt.Value, uint64) {
	s := e.curSite()
	t := s.tier
	av, cost := e.convert(a, t)
	var bv alt.Value
	if op != fpmath.OpSqrt {
		bc, c := e.convert(b, t)
		bv, cost = bc, cost+c
	}
	res, c := e.sys(t).Op(op, av, bv)
	cost += c
	switch t {
	case tierBoxed:
		e.stats.OpsBoxed++
	case tierInterval:
		e.stats.OpsInterval++
		e.observeWidth(s, res)
	case tierMPFR:
		e.stats.OpsMPFR++
	}
	return res, cost
}

func (e *PolicyEngine) Compare(a, b alt.Value) (fpmath.CompareResult, uint64) {
	t := e.curSite().tier
	av, c1 := e.convert(a, t)
	bv, c2 := e.convert(b, t)
	cr, c3 := e.sys(t).Compare(av, bv)
	return cr, c1 + c2 + c3
}

func (e *PolicyEngine) Neg(v alt.Value) (alt.Value, uint64) {
	return e.sys(tierOfVal(v)).Neg(v)
}

func (e *PolicyEngine) Signbit(v alt.Value) bool {
	return e.sys(tierOfVal(v)).Signbit(v)
}

func (e *PolicyEngine) IsNaN(v alt.Value) bool {
	return e.sys(tierOfVal(v)).IsNaN(v)
}

// TempsPerOp follows the current site's tier so gc accounting tracks the
// arithmetic actually performed there.
func (e *PolicyEngine) TempsPerOp() int {
	return e.sys(e.curSite().tier).TempsPerOp()
}

func (e *PolicyEngine) CloneValue(v alt.Value) alt.Value {
	return e.sys(tierOfVal(v)).CloneValue(v)
}
