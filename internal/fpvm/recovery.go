package fpvm

import (
	"fmt"
	"math"

	"fpvm/internal/alt"
	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/fpmath"
	"fpvm/internal/heap"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/telemetry"
)

// The recovery ladder (this file) replaces the old sticky-error behaviour
// of Runtime.fail(): every failure in the trap pipeline is classified and
// resolved by exactly one rung —
//
//	transient  → bounded retry (per-site, per-trap budget)
//	degradable → demote the NaN-boxed operands and re-run the work as
//	             native IEEE; the program continues at reduced precision
//	fatal      → detach cleanly: restore MXCSR to non-trapping, demote
//	             every live box in registers and memory, and leave the
//	             guest running un-virtualized (the paper's "do no harm"
//	             contract)
//
// Panics inside the emulator become degradation events (recoverTrapPanic),
// and a per-trap virtual-cycle watchdog cuts off runaway sequence
// emulation.

// trapPhase tracks what the runtime was doing when a panic is recovered:
// instruction-phase panics degrade to a native re-run of the instruction;
// anything else (GC, bookkeeping) detaches, since shared state may be
// mid-mutation.
type trapPhase uint8

const (
	phaseNone trapPhase = iota
	phaseInst
	phaseGC
)

// recoveryState is the ladder's mutable bookkeeping. It is per-runtime
// and deep-copied on fork so a child's faults never mutate the parent.
type recoveryState struct {
	// budget maps each site to its remaining retries for the trap being
	// handled; entries are cleared at every trap entry.
	budget map[faultinject.Site]int
}

func (s *recoveryState) clone() recoveryState {
	out := recoveryState{}
	if s.budget != nil {
		out.budget = make(map[faultinject.Site]int, len(s.budget))
		for k, v := range s.budget {
			out.budget[k] = v
		}
	}
	return out
}

// resetTrap starts a fresh per-trap retry budget.
func (s *recoveryState) resetTrap() {
	for k := range s.budget {
		delete(s.budget, k)
	}
}

// checkFault consults the injector at site and reports whether a fault
// fired, counting it in telemetry. A fatal-severity fault (sev=fatal)
// cannot be cleared by retrying: it unwinds the trap pipeline via panic
// straight to the fatal rung, where the rollback supervisor gets first
// chance (rollback.go). The sentinel is caught by the trap handlers'
// deferred recover.
func (r *Runtime) checkFault(site faultinject.Site, rip uint64) bool {
	err := r.inject.Check(site, rip)
	if err == nil {
		return false
	}
	r.Tel.FaultsInjected++
	if f, ok := err.(*faultinject.Fault); ok && f.Fatal {
		panic(&fatalInjectedFault{site: site, rip: rip})
	}
	return true
}

// checkFaultPlain is checkFault without the fatal-severity unwind, for
// sites that run inside the rollback supervisor itself (ckpt.save,
// ckpt.restore): a panic there would recurse into the recovery already in
// progress, so fatal faults at these sites exhaust the retry budget like
// persistent transients and are resolved in place by the caller.
func (r *Runtime) checkFaultPlain(site faultinject.Site, rip uint64) bool {
	if r.inject.Check(site, rip) == nil {
		return false
	}
	r.Tel.FaultsInjected++
	return true
}

// retryFault consumes one unit of site's per-trap retry budget. It
// returns true if the caller should retry the operation (the fault is
// resolved as Retried); false when the budget is exhausted — the caller
// must then degrade (or escalate) and record that resolution itself.
// With Config.RetryBackoffCycles set, each retry first charges a
// jittered exponential virtual-cycle delay (see backoffDelay) so a storm
// of co-scheduled retries spreads out instead of re-executing in
// lockstep.
func (r *Runtime) retryFault(site faultinject.Site) bool {
	if r.rec.budget == nil {
		r.rec.budget = make(map[faultinject.Site]int)
	}
	b, ok := r.rec.budget[site]
	if !ok {
		b = r.retryBudget()
	}
	if b <= 0 {
		return false
	}
	r.rec.budget[site] = b - 1
	r.Retries++
	r.Tel.FaultsRetried++
	if base := r.Cfg.RetryBackoffCycles; base > 0 {
		// Attempt index within this trap: 0 for the first retry at the
		// site, growing as the budget drains. The jitter seed is the
		// serialized running retry count, so an identical run — or a
		// faultless snapshot-resume — charges the identical schedule.
		attempt := r.retryBudget() - b
		d := backoffDelay(base, attempt, r.Tel.FaultsRetried)
		r.Tel.BackoffCycles += d
		r.charge(telemetry.Emul, d)
	}
	r.inject.Resolve(site, faultinject.Retried)
	return true
}

// backoffDelay computes the retry rung's k-th delay: base·2^attempt
// (capped at 10 doublings), jittered deterministically into
// [0.75·d, 1.25·d) by a splitmix64 draw over seq. Pure and stateless so
// the schedule replays exactly from the same (base, attempt, seq).
func backoffDelay(base uint64, attempt int, seq uint64) uint64 {
	if attempt > 10 {
		attempt = 10
	}
	d := base << uint(attempt)
	// splitmix64 of the retry ordinal — the injector's own stream must
	// not be consumed, or the jitter would perturb the fault schedule.
	z := seq + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	half := d / 2
	if half == 0 {
		return d
	}
	return d - d/4 + z%half
}

// degradeFault records an injected fault at site as resolved by
// degradation. The caller performs the actual degradation.
//
// Invalidation contract with the trace cache: degrading a decode, alt-op
// or heap-alloc fault means the instruction at curRIP was handled outside
// its recorded shape — any pre-bound sequence through that address must
// not replay, so every containing trace is killed. (gc.scan degradations
// only defer reclamation and leave traces alone; kernel.deliver is
// resolved inside the kernel before any instruction context exists.)
func (r *Runtime) degradeFault(site faultinject.Site) {
	r.Degradations++
	r.Tel.FaultsDegraded++
	r.inject.Resolve(site, faultinject.Degraded)
	switch site {
	case faultinject.SiteDecode, faultinject.SiteAltOp, faultinject.SiteHeapAlloc:
		r.cache.InvalidateTraces(r.curRIP)
	}
}

// fatalFault records an injected fault at site as resolved by detach.
func (r *Runtime) fatalFault(site faultinject.Site) {
	r.Tel.FaultsFatal++
	r.inject.Resolve(site, faultinject.Fatal)
}

func (r *Runtime) retryBudget() int {
	if r.Cfg.RetryBudget > 0 {
		return r.Cfg.RetryBudget
	}
	return DefaultRetryBudget
}

func (r *Runtime) trapCycleBudget() uint64 {
	if r.Cfg.TrapCycleBudget > 0 {
		return r.Cfg.TrapCycleBudget
	}
	return DefaultTrapCycleBudget
}

// fatal is the bottom rung: record a diagnosable error (trap RIP plus the
// faulting instruction's mnemonic) and detach, leaving the guest running
// un-virtualized. Unlike the old fail(), it does not kill the process.
func (r *Runtime) fatal(uc *kernel.Ucontext, rip uint64, err error) {
	if r.detached {
		return
	}
	mnem := "?"
	if in, ferr := r.m.FetchDecode(rip); ferr == nil {
		mnem = in.String()
	}
	r.err = fmt.Errorf("fpvm: detached at %#x (%s): %w", rip, mnem, err)
	r.FatalDetaches++
	r.detach(uc)
}

// detach implements the "do no harm" contract: MXCSR stops trapping on
// every thread, every live box reachable from registers or writable
// memory is demoted in place to a plain IEEE double, and the short-circuit
// registration is dropped. The guest continues executing natively; FPVM
// only observes (and counts) any traps still wired to it.
func (r *Runtime) detach(uc *kernel.Ucontext) {
	r.detached = true
	if uc != nil {
		uc.CPU.MXCSR = machine.MXCSRDefault
		r.demoteRoots(&uc.CPU)
	}
	for _, cpu := range r.p.AllCPUs() {
		cpu.MXCSR = machine.MXCSRDefault
		r.demoteRoots(cpu)
	}
	r.m.CPU.MXCSR = machine.MXCSRDefault
	r.demoteMemory()
	r.p.UnregisterFPVM()
}

// demoteRoots rewrites every NaN-boxed word in a register file to its
// IEEE value.
func (r *Runtime) demoteRoots(cpu *machine.CPU) {
	for i, w := range cpu.GPR {
		if r.boxedLive(w) {
			cpu.GPR[i] = r.demoteTo(w, telemetry.Corr)
		}
	}
	for i := range cpu.XMM {
		for lane := 0; lane < 2; lane++ {
			if r.boxedLive(cpu.XMM[i][lane]) {
				cpu.XMM[i][lane] = r.demoteTo(cpu.XMM[i][lane], telemetry.Corr)
			}
		}
	}
}

// demoteMemory sweeps every writable page, demoting boxed words in place
// — the detach-time (and deep-degradation) analogue of the GC scan.
func (r *Runtime) demoteMemory() {
	as := r.m.Mem
	for _, pa := range as.WritablePages() {
		data, ok := as.PageData(pa)
		if !ok {
			continue
		}
		for off := 0; off+8 <= len(data); off += 8 {
			bits := leUint64(data[off:])
			if r.boxedLive(bits) {
				_ = as.WriteUint64(pa+uint64(off), r.demoteTo(bits, telemetry.Corr))
			}
		}
	}
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// recoverTrapPanic converts a panic inside a trap handler into a ladder
// resolution. A fatalInjectedFault sentinel (fatal-severity injected
// fault) goes straight to the fatal rung, where the rollback supervisor
// gets first chance. A genuine panic — an emulator or alt-system bug —
// inside instruction context first tries rollback (re-execution from a
// clean snapshot with the instruction quarantined), then degrades by
// re-running the instruction as native IEEE on demoted operands. A panic
// outside instruction context (e.g. mid-GC, where allocator state may be
// inconsistent) has no safe degradation: rollback or detach.
func (r *Runtime) recoverTrapPanic(uc *kernel.Ucontext, pv any) {
	if ff, ok := pv.(*fatalInjectedFault); ok {
		// Not a bug but a simulated unrecoverable failure; the fault was
		// counted at its site and is resolved by whichever rung failTrap
		// reaches.
		r.failTrap(uc, r.curRIP, ff.site, ff)
		return
	}
	r.PanicRecoveries++
	r.Tel.PanicRecoveries++
	entry := r.curEntry
	if r.phase != phaseInst || entry == nil {
		r.failTrap(uc, r.curRIP, "", fmt.Errorf("panic outside instruction emulation: %v", pv))
		return
	}
	if r.tryRollback(uc, entry.Inst.Addr) {
		return
	}
	if err := r.nativeInst(uc, entry); err != nil {
		r.fatal(uc, entry.Inst.Addr, fmt.Errorf("native degradation after panic %v: %w", pv, err))
		return
	}
	r.Degradations++
	// The panicking instruction was re-run natively: its recorded shape is
	// distrusted, so no cached sequence may replay through it.
	r.cache.InvalidateTraces(entry.Inst.Addr)
	uc.CPU.RIP = entry.Inst.Addr + uint64(entry.Inst.Len)
}

// plainBits demotes an alt value straight to IEEE bits, bypassing the box
// heap — the degraded storage path.
func (r *Runtime) plainBits(v alt.Value) uint64 {
	f, cost := r.Cfg.Alt.Demote(v)
	r.charge(telemetry.Altmath, cost)
	return bits64(f)
}

// nativeInst emulates one supported instruction with pure native IEEE
// semantics: operands are demoted, the result is computed with fpmath and
// stored as plain bits (never boxed). This is the ladder's degraded
// re-run path, used after an alt-system fault or panic.
func (r *Runtime) nativeInst(uc *kernel.Ucontext, e *dcache.Entry) error {
	in := &e.Inst
	switch emulClass(e.Class) {
	case classMove:
		return r.emulateMove(uc, in)

	case classScalarArith:
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		dstBits := uc.CPU.XMM[in.RegOp.Reg][0]
		fop := scalarToFPOp(in.Op)
		var res fpmath.Result
		if fop == fpmath.OpSqrt {
			res = fpmath.Eval(fop, f64(r.demote(srcBits)), 0)
		} else {
			res = fpmath.Eval(fop, f64(r.demote(dstBits)), f64(r.demote(srcBits)))
		}
		uc.CPU.XMM[in.RegOp.Reg][0] = fpmath.Bits(res.Value)
		return nil

	case classPackedArith:
		src, err := r.read128(uc, in, in.RMOp)
		if err != nil {
			return err
		}
		dst := uc.CPU.XMM[in.RegOp.Reg]
		fop := scalarToFPOp(packedToScalar(in.Op))
		for lane := 0; lane < 2; lane++ {
			var res fpmath.Result
			if fop == fpmath.OpSqrt {
				res = fpmath.Eval(fop, f64(r.demote(src[lane])), 0)
			} else {
				res = fpmath.Eval(fop, f64(r.demote(dst[lane])), f64(r.demote(src[lane])))
			}
			dst[lane] = fpmath.Bits(res.Value)
		}
		uc.CPU.XMM[in.RegOp.Reg] = dst
		return nil

	case classScalarCmp, classCompare:
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		dstBits := uc.CPU.XMM[in.RegOp.Reg][0]
		cr := fpmath.Compare(f64(r.demote(dstBits)), f64(r.demote(srcBits)), false)
		if emulClass(e.Class) == classCompare {
			f := uc.CPU.RFLAGS &^ machine64Flags
			switch {
			case cr.Unordered:
				f |= flagZF | flagPF | flagCF
			case cr.Less:
				f |= flagCF
			case cr.Equal:
				f |= flagZF
			}
			uc.CPU.RFLAGS = f
		} else if predicateHolds(in.Op, cr) {
			uc.CPU.XMM[in.RegOp.Reg][0] = ^uint64(0)
		} else {
			uc.CPU.XMM[in.RegOp.Reg][0] = 0
		}
		return nil

	case classPackedCmp:
		src, err := r.read128(uc, in, in.RMOp)
		if err != nil {
			return err
		}
		dst := uc.CPU.XMM[in.RegOp.Reg]
		sop := packedToScalar(in.Op)
		var out [2]uint64
		for lane := 0; lane < 2; lane++ {
			cr := fpmath.Compare(f64(r.demote(dst[lane])), f64(r.demote(src[lane])), false)
			if predicateHolds(sop, cr) {
				out[lane] = ^uint64(0)
			}
		}
		uc.CPU.XMM[in.RegOp.Reg] = out
		return nil

	case classCvtToInt:
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		f := f64(r.demote(srcBits))
		var res int64
		switch {
		case math.IsNaN(f) || f >= 0x1p63 || f < -0x1p63:
			res = math.MinInt64
		case in.Op == isa.CVTTSD2SI:
			res = int64(math.Trunc(f))
		default:
			res = int64(math.RoundToEven(f))
		}
		uc.CPU.GPR[in.RegOp.Reg] = uint64(res)
		return nil

	case classCvtFromInt:
		v, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		uc.CPU.XMM[in.RegOp.Reg][0] = bits64(float64(int64(v)))
		return nil

	case classRound:
		srcBits, err := r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return err
		}
		f := f64(r.demote(srcBits))
		var rv float64
		switch in.Imm & 3 {
		case 0:
			rv = math.RoundToEven(f)
		case 1:
			rv = math.Floor(f)
		case 2:
			rv = math.Ceil(f)
		default:
			rv = math.Trunc(f)
		}
		uc.CPU.XMM[in.RegOp.Reg][0] = bits64(rv)
		return nil
	}
	return fmt.Errorf("fpvm: nativeInst on unsupported op %s", in.Op)
}

// boxOrDegrade allocates a heap box for v (after temps), enforcing the
// MaxLiveBoxes hard cap: at the cap it forces a collection and, if the
// heap is still full, stores the value as plain IEEE bits instead — the
// heap.ErrHeapFull degradation of the ladder.
func (r *Runtime) boxOrDegrade(v alt.Value, sign uint64) uint64 {
	if r.alloc.AtCap() {
		r.forceGC()
	}
	h, err := r.alloc.TryAlloc(v)
	if err != nil { // heap.ErrHeapFull even after collecting
		r.HeapFullDegrades++
		r.Degradations++
		return r.plainBits(v) ^ sign
	}
	r.Boxes++
	return boxBits(h) | sign
}

// forceGC runs an immediate collection (cap pressure), using the current
// trap's ucontext as the authoritative root set for the trapping thread
// when available.
func (r *Runtime) forceGC() {
	r.collect(r.gcRoots(r.curUC))
}

// collect wraps Allocator.Collect with the gc.scan fault site: transient
// scan faults retry; once the budget is exhausted the collection is
// skipped (reclamation is deferred — safe, only memory pressure suffers).
func (r *Runtime) collect(roots []*heap.Roots) {
	prevPhase := r.phase
	r.phase = phaseGC
	defer func() { r.phase = prevPhase }()
	for r.checkFault(faultinject.SiteGCScan, r.curRIP) {
		if !r.retryFault(faultinject.SiteGCScan) {
			r.degradeFault(faultinject.SiteGCScan)
			r.GCSkips++
			return
		}
	}
	_, cycles := r.alloc.Collect(r.m.Mem, roots...)
	r.GCRuns++
	r.charge(telemetry.GC, cycles)
}
