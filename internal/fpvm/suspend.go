// Suspend/resume: the runtime can dump the entire VM — guest-visible
// architectural state plus the virtualization state that determines
// future cycle accounting and trap boundaries — into a checkpoint wire
// image at an event boundary, and reinstall such an image into a freshly
// constructed VM. Resumption is exact: a resumed run's stdout, trap
// stream and final architectural state are bit-identical to the
// uninterrupted run's, which the kill-resume harness enforces.

package fpvm

import (
	"fmt"
	"sort"

	"fpvm/internal/alt"
	"fpvm/internal/checkpoint"
	"fpvm/internal/dcache"
	"fpvm/internal/heap"
	"fpvm/internal/mem"
)

// Codec returns the alt system's value codec, or an error if the system
// cannot serialize its values (suspension is then impossible).
func (r *Runtime) valueCodec() (alt.Codec, error) {
	if c, ok := r.Cfg.Alt.(alt.Codec); ok {
		return c, nil
	}
	return nil, fmt.Errorf("fpvm: alt system %q has no value codec; cannot serialize the heap",
		r.Cfg.Alt.Name())
}

// CanSuspend reports whether the configured alt system supports heap
// serialization.
func (r *Runtime) CanSuspend() bool {
	_, ok := r.Cfg.Alt.(alt.Codec)
	return ok
}

// CaptureImage serializes the suspended VM into a wire image. It must be
// called at an event boundary (between kernel.Process.Step calls): no
// trap is in flight, so machine.CPU is the authoritative register file.
func (r *Runtime) CaptureImage(imageHash [32]byte, configSig string, steps uint64) (*checkpoint.Image, error) {
	codec, err := r.valueCodec()
	if err != nil {
		return nil, err
	}
	hp, err := r.alloc.Capture(func(v any) ([]byte, error) { return codec.EncodeValue(v) })
	if err != nil {
		return nil, err
	}

	as := r.p.M.Mem
	var pages []checkpoint.Page
	for _, pa := range as.WritablePages() {
		data, ok := as.PageData(pa)
		if !ok {
			continue
		}
		pages = append(pages, checkpoint.Page{Addr: pa, Data: append([]byte(nil), data...)})
	}

	img := &checkpoint.Image{
		ImageHash: imageHash,
		AltName:   r.Cfg.Alt.Name(),
		ConfigSig: configSig,

		CPU:     r.m.CPU,
		Threads: r.p.SnapshotThreads(),
		Stdout:  append([]byte(nil), r.p.Stdout.Bytes()...),
		Steps:   steps,

		MachCycles:         r.m.Cycles,
		MachInstructions:   r.m.Instructions,
		MachFPInstructions: r.m.FPInstructions,
		KernelStats:        r.p.K.Stats,
		Tel:                r.Tel,

		Heap:  hp,
		Pages: pages,

		Cache: r.captureCache(),
		RT:    r.captureRT(),
	}
	return img, nil
}

func (r *Runtime) captureCache() checkpoint.CacheImage {
	ci := checkpoint.CacheImage{
		EntryRIPs: r.cache.EntryRIPs(),
		Stats:     r.cache.Stats,
	}
	for _, t := range r.cache.TracesInOrder() {
		ti := checkpoint.TraceImage{
			Start:       t.Start,
			EndRIP:      t.EndRIP,
			Reason:      uint8(t.Reason),
			Hits:        t.Hits,
			Divergences: t.Divergences,
		}
		for _, e := range t.Entries {
			ti.EntryRIPs = append(ti.EntryRIPs, e.Inst.Addr)
		}
		ci.Traces = append(ci.Traces, ti)
	}
	return ci
}

func (r *Runtime) captureRT() checkpoint.RuntimeImage {
	ri := checkpoint.RuntimeImage{
		Promotions:     r.Promotions,
		Demotions:      r.Demotions,
		Boxes:          r.Boxes,
		GCRuns:         r.GCRuns,
		SeqLimitHit:    r.SeqLimitHit,
		ThreadContexts: r.ThreadContexts,

		Retries:          r.Retries,
		Degradations:     r.Degradations,
		HeapFullDegrades: r.HeapFullDegrades,
		GCSkips:          r.GCSkips,
		PanicRecoveries:  r.PanicRecoveries,
		WatchdogAborts:   r.WatchdogAborts,
		FatalDetaches:    r.FatalDetaches,
		Aborted:          r.Aborted,

		Checkpoints:      r.Checkpoints,
		Rollbacks:        r.Rollbacks,
		RollbackFailures: r.RollbackFailures,
		Quarantines:      r.Quarantines,

		Detached:     r.detached,
		CkptInterval: r.ckptInterval,
	}
	for rip := range r.quarantined {
		ri.Quarantined = append(ri.Quarantined, rip)
	}
	sort.Slice(ri.Quarantined, func(i, j int) bool { return ri.Quarantined[i] < ri.Quarantined[j] })
	return ri
}

// RestoreImage reinstalls a wire image into a freshly constructed (and
// loaded) VM: every writable page is overwritten, the register file,
// thread table, stdout prefix, heap, caches and counters are reinstated,
// and the instruction cache is invalidated. The caller is responsible for
// having validated the image's bindings first.
func (r *Runtime) RestoreImage(img *checkpoint.Image) error {
	codec, err := r.valueCodec()
	if err != nil {
		return err
	}
	alloc, err := heap.FromImage(img.Heap, func(b []byte) (any, error) { return codec.DecodeValue(b) })
	if err != nil {
		return err
	}
	alloc.Threshold = r.alloc.Threshold
	alloc.MaxLive = r.alloc.MaxLive

	as := r.p.M.Mem
	for _, pg := range img.Pages {
		if len(pg.Data) != mem.PageSize {
			return fmt.Errorf("fpvm: snapshot page %#x has %d bytes", pg.Addr, len(pg.Data))
		}
		as.OverwritePage(pg.Addr, pg.Data)
	}
	r.m.InvalidateICache()

	// CPU first, then the thread table: restoring a non-empty table
	// reinstates the current thread's registers into machine.CPU itself.
	r.m.CPU = img.CPU
	r.p.RestoreThreads(img.Threads)

	r.p.Stdout.Reset()
	r.p.Stdout.Write(img.Stdout)

	r.alloc = alloc
	r.Tel = img.Tel
	r.m.Cycles = img.MachCycles
	r.m.Instructions = img.MachInstructions
	r.m.FPInstructions = img.MachFPInstructions
	r.p.K.Stats = img.KernelStats

	if err := r.restoreCache(&img.Cache); err != nil {
		return err
	}
	r.restoreRT(&img.RT)
	return nil
}

func (r *Runtime) restoreRT(ri *checkpoint.RuntimeImage) {
	r.Promotions = ri.Promotions
	r.Demotions = ri.Demotions
	r.Boxes = ri.Boxes
	r.GCRuns = ri.GCRuns
	r.SeqLimitHit = ri.SeqLimitHit
	r.ThreadContexts = ri.ThreadContexts

	r.Retries = ri.Retries
	r.Degradations = ri.Degradations
	r.HeapFullDegrades = ri.HeapFullDegrades
	r.GCSkips = ri.GCSkips
	r.PanicRecoveries = ri.PanicRecoveries
	r.WatchdogAborts = ri.WatchdogAborts
	r.FatalDetaches = ri.FatalDetaches
	r.Aborted = ri.Aborted

	r.Checkpoints = ri.Checkpoints
	r.Rollbacks = ri.Rollbacks
	r.RollbackFailures = ri.RollbackFailures
	r.Quarantines = ri.Quarantines

	r.detached = ri.Detached
	if len(ri.Quarantined) > 0 {
		if r.quarantined == nil {
			r.quarantined = make(map[uint64]bool, len(ri.Quarantined))
		}
		for _, rip := range ri.Quarantined {
			r.quarantined[rip] = true
		}
	}

	// The in-memory rollback snapshot does not survive the process; a
	// resumed run re-establishes it at its next trap.
	if r.ckpt != nil {
		if ri.CkptInterval > 0 {
			r.ckptInterval = ri.CkptInterval
		}
		r.trapsSince = r.ckptInterval
	}
}

// restoreCache rebuilds both cache levels from their recorded shape.
// Entries are re-decoded from restored guest memory — deterministic, and
// charged to nobody: the suspended run already paid the decode cycles,
// which the restored telemetry carries.
func (r *Runtime) restoreCache(ci *checkpoint.CacheImage) error {
	rebuild := func(rip uint64) (*dcache.Entry, error) {
		in, err := r.m.FetchDecode(rip)
		if err != nil {
			return nil, fmt.Errorf("fpvm: rebuilding decode cache at %#x: %w", rip, err)
		}
		cls := classify(in.Op)
		return &dcache.Entry{Inst: in, Supported: cls != classUnsupported, Class: uint8(cls)}, nil
	}
	for _, rip := range ci.EntryRIPs {
		e, err := rebuild(rip)
		if err != nil {
			return err
		}
		r.cache.Insert(rip, e)
	}
	for _, ti := range ci.Traces {
		t := &dcache.Trace{
			Start:       ti.Start,
			EndRIP:      ti.EndRIP,
			Reason:      dcache.TermReason(ti.Reason),
			Hits:        ti.Hits,
			Divergences: ti.Divergences,
		}
		for _, rip := range ti.EntryRIPs {
			e, err := rebuild(rip)
			if err != nil {
				return err
			}
			t.Entries = append(t.Entries, e)
		}
		r.cache.InsertTrace(t)
	}
	// Reinstate the suspended run's cache statistics after the rebuild so
	// the Insert calls above leave no trace in them.
	r.cache.Stats = ci.Stats
	return nil
}
