package fpvm_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/fpmath"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/nanbox"
	"fpvm/internal/obj"
)

// TestDifferentialFuzz generates random straight-line programs over the
// FPVM-supported instruction set and requires bit-for-bit agreement
// between native execution and every FPVM configuration under Boxed IEEE
// — the paper's own validation methodology ("we expect to get bit-for-bit
// equal results to the baseline, and we have validated this to be true"),
// applied to randomized programs instead of fixed benchmarks.
func TestDifferentialFuzz(t *testing.T) {
	const (
		programs     = 60
		instructions = 40
	)
	r := rand.New(rand.NewSource(0xF9B0))
	for pi := 0; pi < programs; pi++ {
		img := genProgram(t, r, instructions, pi)
		native := runNativeRig(t, img)

		for _, cfg := range []fpvmrt.Config{
			{Alt: alt.NewBoxedIEEE()},
			{Alt: alt.NewBoxedIEEE(), Seq: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, NoTraceCache: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, JITThreshold: 1},
			{Alt: alt.NewBoxedIEEE(), Seq: true, NoJIT: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, Short: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, FutureHW: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, EmulateAll: true},
		} {
			got := newRig(t, img, cfg, true).run(t)
			if got != native {
				t.Fatalf("program %d under %s diverged:\n fpvm:   %q\n native: %q",
					pi, cfgLabel(cfg), got, native)
			}
		}
	}
}

// TestCorruptedBoxCorpus feeds the trap pipeline 64-bit words that *look*
// like FPVM NaN boxes but are not live allocations: high handles near the
// encoding limit (small handles would risk colliding with genuinely live
// boxes), sign-flipped boxes, a quiet NaN carrying the tag bit, a tagless
// signaling NaN, and the canonical NaN. The runtime must fall back on the
// allocator's liveness check, treat each as an application NaN, and stay
// bit-for-bit with native — never crash or dereference a stale handle.
func TestCorruptedBoxCorpus(t *testing.T) {
	corpus := []struct {
		name string
		bits uint64
	}{
		{"box-max-handle", nanbox.Box(nanbox.MaxHandle)},
		{"box-max-handle-1", nanbox.Box(nanbox.MaxHandle - 1)},
		{"box-high-bit-handle", nanbox.Box(1 << 49)},
		{"box-sign-flipped", 1<<63 | nanbox.Box(nanbox.MaxHandle)},
		{"quiet-nan-with-tag", fpmath.ExpMask | fpmath.QuietBit | 1<<50 | 42},
		{"tagless-snan", fpmath.ExpMask | 7},
		{"canonical-nan", nanbox.Canonical()},
	}
	for _, c := range corpus {
		if got := nanbox.Classify(c.bits); c.name[:3] == "box" != (got == nanbox.KindBoxPattern) {
			t.Fatalf("%s: Classify = %v (corpus word mislabeled)", c.name, got)
		}
		img := genPoisonProgram(t, c.name, c.bits)
		native := runNativeRig(t, img)
		for _, cfg := range []fpvmrt.Config{
			{Alt: alt.NewBoxedIEEE()},
			{Alt: alt.NewBoxedIEEE(), Seq: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, NoTraceCache: true},
			{Alt: alt.NewBoxedIEEE(), Seq: true, JITThreshold: 1},
			{Alt: alt.NewBoxedIEEE(), Seq: true, Short: true},
		} {
			got := newRig(t, img, cfg, true).run(t)
			if got != native {
				t.Errorf("%s under %s diverged:\n fpvm:   %q\n native: %q",
					c.name, cfgLabel(cfg), got, native)
			}
		}
	}
}

// genPoisonProgram loads the poison word, consumes it in arithmetic (the
// signaling variants trap), round-trips it through a GPR, compares it,
// and prints both the arithmetic result and the round-tripped value.
func genPoisonProgram(t *testing.T, name string, bits uint64) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("poison-" + name)
	b.Quad("poison", bits)
	b.RoDouble("one", 1)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "poison")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM1), isa.XMM(isa.XMM0)) // consume poison
	b.RM(isa.MOVQGX, isa.GPR(isa.RBX), isa.XMM(isa.XMM0)) // raw pattern to GPR
	b.RM(isa.MOVQXG, isa.XMM(isa.XMM2), isa.GPR(isa.RBX)) // and back
	b.RM(isa.UCOMISD, isa.XMM(isa.XMM2), isa.XMM(isa.XMM1))
	b.Branch(isa.JNE, "skip")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM1), isa.XMM(isa.XMM1))
	b.Label("skip")
	b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.CallImport("print_f64")
	b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(isa.XMM2))
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return img
}

func cfgLabel(cfg fpvmrt.Config) string {
	l := cfg.ConfigName()
	if cfg.FutureHW {
		l += "+FUTUREHW"
	}
	if cfg.EmulateAll {
		l += "+EMULATEALL"
	}
	if cfg.NoTraceCache {
		l += "+NOTRACE"
	}
	if cfg.NoJIT {
		l += "+NOJIT"
	}
	if cfg.JITThreshold > 0 {
		l += fmt.Sprintf("+JIT%d", cfg.JITThreshold)
	}
	return l
}

// genProgram builds a random program: a pool of interesting double
// constants, a scratch buffer, then a random instruction stream over
// xmm0-xmm9, gpr rbx/rcx/rdx, and buffer slots, ending by printing every
// xmm register's low lane.
func genProgram(t *testing.T, r *rand.Rand, n int, seed int) *obj.Image {
	t.Helper()
	b := asm.NewBuilder(fmt.Sprintf("fuzz%d", seed))

	consts := []float64{
		1, 3, 0.5, -2.25, 1e-3, 7.75, 1.0 / 3.0, -1e10, 3.141592653589793,
		0, math.Inf(1), 5e-324, 1e308,
	}
	for i, c := range consts {
		b.RoDouble(fmt.Sprintf("c%d", i), c)
	}
	b.RoDouble("cpair", 2, 5)
	b.RoDouble("signmask", math.Float64frombits(1<<63))
	b.RoDouble("absmask", math.Float64frombits(1<<63-1))
	b.Space("buf", 128)

	b.Func("main")
	b.LeaData(isa.RDI, "buf")
	// Seed registers from constants.
	for reg := 0; reg < 10; reg++ {
		b.RMData(isa.MOVSDXM, isa.XMM(isa.Reg(reg)), fmt.Sprintf("c%d", r.Intn(len(consts))))
	}

	xr := func() isa.Operand { return isa.XMM(isa.Reg(r.Intn(10))) }
	slot := func() isa.Operand { return isa.Mem(isa.RDI, int32(8*r.Intn(16))) }
	slot16 := func() isa.Operand { return isa.Mem(isa.RDI, int32(16*r.Intn(8))) }

	scalarOps := []isa.Op{isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD,
		isa.MINSD, isa.MAXSD, isa.SQRTSD, isa.CMPLTSD, isa.CMPEQSD, isa.CMPNLESD}
	packedOps := []isa.Op{isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD, isa.CMPLTPD}

	for i := 0; i < n; i++ {
		switch r.Intn(12) {
		case 0, 1, 2, 3: // scalar arithmetic reg/reg or reg/mem
			op := scalarOps[r.Intn(len(scalarOps))]
			if r.Intn(3) == 0 {
				b.RM(op, xr(), slot())
			} else {
				b.RM(op, xr(), xr())
			}
		case 4: // packed arithmetic
			op := packedOps[r.Intn(len(packedOps))]
			if r.Intn(3) == 0 {
				b.RM(op, xr(), slot16())
			} else {
				b.RM(op, xr(), xr())
			}
		case 5: // scalar moves
			switch r.Intn(3) {
			case 0:
				b.RM(isa.MOVSDXX, xr(), xr())
			case 1:
				b.RM(isa.MOVSDMX, xr(), slot())
			default:
				b.RM(isa.MOVSDXM, xr(), slot())
			}
		case 6: // packed moves
			if r.Intn(2) == 0 {
				b.RM(isa.MOVAPDMX, xr(), slot16())
			} else {
				b.RM(isa.MOVAPDXM, xr(), slot16())
			}
		case 7: // gpr traffic
			switch r.Intn(4) {
			case 0:
				b.RM(isa.MOVQGX, isa.GPR(isa.RBX), xr())
			case 1:
				b.RM(isa.MOVQXG, xr(), isa.GPR(isa.RBX))
			case 2:
				b.RM(isa.MOV64MR, isa.GPR(isa.RBX), slot())
			default:
				b.RM(isa.MOV64RM, isa.GPR(isa.RCX), slot())
			}
		case 8: // ucomisd + branch over one instruction
			label := fmt.Sprintf("L%d", i)
			b.RM(isa.UCOMISD, xr(), xr())
			b.Branch([]isa.Op{isa.JB, isa.JA, isa.JE, isa.JNE, isa.JBE, isa.JAE}[r.Intn(6)], label)
			b.RM(isa.ADDSD, xr(), xr())
			b.Label(label)
		case 9: // conversions
			if r.Intn(2) == 0 {
				b.RM(isa.CVTTSD2SI, isa.GPR(isa.RDX), xr())
			} else {
				b.RM(isa.CVTSI2SD, xr(), isa.GPR(isa.RDX))
			}
		case 10: // sign games — only the compiler idioms: zeroing
			// (xorpd self) and sign-mask xor/and through xmm15. Arbitrary
			// bitwise ops on FP registers are the paper's §2.6
			// unvirtualizable surface and diverge by design.
			switch r.Intn(3) {
			case 0:
				reg := xr()
				b.RM(isa.XORPD, reg, reg)
			case 1:
				b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM15), "signmask")
				b.RM(isa.XORPD, xr(), isa.XMM(isa.XMM15))
			default:
				b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM15), "absmask")
				b.RM(isa.ANDPD, xr(), isa.XMM(isa.XMM15))
			}
		default: // unsupported-by-FPVM but valid moves (sequence breakers)
			switch r.Intn(3) {
			case 0:
				b.RM(isa.MOVHPDXM, xr(), slot())
			case 1:
				b.RM(isa.UNPCKLPD, xr(), xr())
			default:
				b.RMI(isa.SHUFPD, xr(), xr(), int64(r.Intn(4)))
			}
		}
	}

	// Print every register's low lane.
	for reg := 0; reg < 10; reg++ {
		if reg != 0 {
			b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(isa.Reg(reg)))
		}
		b.CallImport("print_f64")
	}
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")

	img, err := b.Build()
	if err != nil {
		t.Fatalf("program %d: %v", seed, err)
	}
	return img
}
