package fpvm_test

// Tier-1 JIT coverage: promotion, counter arithmetic, cycle-exactness vs
// the interpreted tier, the deopt path (guard failure mid-trace), the
// recovery ladder inside a compiled body, and invalidation dropping
// compiled bodies with their traces.

import (
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/obj"
)

func jitLoopCfg(thr int, noJIT bool) fpvmrt.Config {
	return fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, JITThreshold: thr, NoJIT: noJIT}
}

// TestJITTierExactness: a hot trace loop run through the compiled tier
// must match the interpreted tier bit for bit — stdout, virtual cycles
// and the shared trace counters — while actually engaging the JIT.
func TestJITTierExactness(t *testing.T) {
	jit := newRig(t, buildTraceLoop(t, 400), jitLoopCfg(1, false), true)
	jitOut := jit.run(t)
	interp := newRig(t, buildTraceLoop(t, 400), jitLoopCfg(1, true), true)
	interpOut := interp.run(t)

	if jitOut != interpOut {
		t.Fatalf("compiled tier changed output:\n jit:    %q\n interp: %q", jitOut, interpOut)
	}
	if jc, ic := jit.p.M.Cycles, interp.p.M.Cycles; jc != ic {
		t.Errorf("compiled tier changed virtual cycles: jit %d, interp %d", jc, ic)
	}
	if jit.rt.JITCompiles == 0 || jit.rt.Tel.JITExecs == 0 || jit.rt.Tel.JITInsts == 0 {
		t.Errorf("JIT never engaged: compiles=%d execs=%d insts=%d",
			jit.rt.JITCompiles, jit.rt.Tel.JITExecs, jit.rt.Tel.JITInsts)
	}
	if jit.rt.Tel.JITExecs > jit.rt.Tel.TraceHits {
		t.Errorf("JITExecs %d exceed TraceHits %d", jit.rt.Tel.JITExecs, jit.rt.Tel.TraceHits)
	}
	if jit.rt.Tel.JITInsts > jit.rt.Tel.ReplayedInsts {
		t.Errorf("JITInsts %d exceed ReplayedInsts %d", jit.rt.Tel.JITInsts, jit.rt.Tel.ReplayedInsts)
	}
	if n := interp.rt.JITCompiles + interp.rt.Tel.JITExecs + interp.rt.Tel.JITInsts + interp.rt.Tel.JITDeopts; n != 0 {
		t.Errorf("NoJIT run shows JIT activity: %d", n)
	}
	if jit.rt.Tel.TraceHits != interp.rt.Tel.TraceHits ||
		jit.rt.Tel.ReplayedInsts != interp.rt.Tel.ReplayedInsts ||
		jit.rt.Tel.TraceDivergences != interp.rt.Tel.TraceDivergences {
		t.Errorf("tiering changed trace counters: hits %d/%d replayed %d/%d div %d/%d",
			jit.rt.Tel.TraceHits, interp.rt.Tel.TraceHits,
			jit.rt.Tel.ReplayedInsts, interp.rt.Tel.ReplayedInsts,
			jit.rt.Tel.TraceDivergences, interp.rt.Tel.TraceDivergences)
	}
}

// TestJITDefaultThreshold: with the stock threshold a 400-iteration loop
// promotes its trace once, and the pre-promotion replays stay interpreted
// (JITExecs strictly below TraceHits).
func TestJITDefaultThreshold(t *testing.T) {
	r := newRig(t, buildTraceLoop(t, 400), jitLoopCfg(0, false), true)
	r.run(t)
	if r.rt.JITCompiles != 1 {
		t.Errorf("JITCompiles = %d, want 1 (one hot trace)", r.rt.JITCompiles)
	}
	if r.rt.Tel.JITExecs == 0 || r.rt.Tel.JITExecs >= r.rt.Tel.TraceHits {
		t.Errorf("JITExecs = %d of %d TraceHits, want interpreted warmup then compiled replays",
			r.rt.Tel.JITExecs, r.rt.Tel.TraceHits)
	}
}

// buildDeoptLoop assembles the §4.2 oscillation case for the compiled
// tier: a two-phase loop whose body pairs a boxed accumulator (the trap
// source) with a second addsd whose operands are boxed in phase A but
// plain IEEE in phase B. The phase-A trace records the second addsd as
// warranted; every phase-B replay must fail its boxedness guard there and
// deopt back to the interpreter, letting the hardware run it natively.
func buildDeoptLoop(t *testing.T, n int64) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("deoptloop")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RDX), 2) // phase counter: A, then B
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), n)
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three") // acc = 1/3, boxed
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM1), "three") // step = 1/3, boxed
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM2), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM2), "three") // flipper = 1/3, boxed
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM3), "one") // plain 1.0
	b.Label("loop")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)) // boxed: trap head
	b.RM(isa.ADDSD, isa.XMM(isa.XMM2), isa.XMM(isa.XMM3)) // boxed in A, plain in B
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM2), "one") // unbox the flipper: phase B
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), n)
	b.MI(isa.SUB64I, isa.GPR(isa.RDX), 1)
	b.Branch(isa.JNE, "loop")
	b.CallImport("print_f64")
	b.RM(isa.MOVSDXX, isa.XMM(isa.XMM0), isa.XMM(isa.XMM2))
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestJITDeoptMidTrace: phase-B replays hit the compiled guard on the
// second addsd (operands no longer boxed), deopt through the divergence
// exit, and the run stays bit-identical to the interpreted tier with
// matching divergence counts.
func TestJITDeoptMidTrace(t *testing.T) {
	jit := newRig(t, buildDeoptLoop(t, 60), jitLoopCfg(1, false), true)
	jitOut := jit.run(t)
	interp := newRig(t, buildDeoptLoop(t, 60), jitLoopCfg(1, true), true)
	interpOut := interp.run(t)

	if jitOut != interpOut {
		t.Fatalf("deopt path changed output:\n jit:    %q\n interp: %q", jitOut, interpOut)
	}
	if jc, ic := jit.p.M.Cycles, interp.p.M.Cycles; jc != ic {
		t.Errorf("deopt path changed virtual cycles: jit %d, interp %d", jc, ic)
	}
	if jit.rt.Tel.JITDeopts == 0 {
		t.Error("phase-B guard failures produced no jit_deopt")
	}
	if jit.rt.Tel.JITDeopts > jit.rt.Tel.JITExecs {
		t.Errorf("JITDeopts %d exceed JITExecs %d", jit.rt.Tel.JITDeopts, jit.rt.Tel.JITExecs)
	}
	if jit.rt.Tel.JITDeopts > jit.rt.Tel.TraceDivergences {
		t.Errorf("JITDeopts %d exceed TraceDivergences %d",
			jit.rt.Tel.JITDeopts, jit.rt.Tel.TraceDivergences)
	}
	if jit.rt.Tel.TraceDivergences != interp.rt.Tel.TraceDivergences {
		t.Errorf("tiering changed divergence count: jit %d, interp %d",
			jit.rt.Tel.TraceDivergences, interp.rt.Tel.TraceDivergences)
	}
}

// TestJITAltOpFaultInCompiledBody: probabilistic alt.op faults (fixed
// seed, so the schedule is deterministic and identical across tiers) land
// inside compiled steps. Bursts that drain the retry budget degrade to
// native IEEE, each degradation invalidates the traces through the
// instruction (dropping the compiled body), and the trace rebuilds and
// re-promotes on later traps — so compilation must happen more than once.
// Output must stay bit-exact with the interpreted tier under the same
// schedule, and both ledgers must reconcile. (An every-check rule would
// never let a trace survive one replay, keeping the JIT cold — the gaps
// between bursts are what promotion needs.)
func TestJITAltOpFaultInCompiledBody(t *testing.T) {
	run := func(noJIT bool) (*rig, string) {
		inj := faultinject.New(3)
		inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Prob: 0.5})
		cfg := jitLoopCfg(1, noJIT)
		cfg.Inject = inj
		r := newRig(t, buildTraceLoop(t, 200), cfg, true)
		out := r.run(t)
		if !r.rt.Tel.FaultsReconciled() {
			t.Errorf("fault ledger broken (noJIT=%v): %s", noJIT, r.rt.Tel.FaultLine())
		}
		if !inj.Reconciled() {
			t.Errorf("injector ledger broken (noJIT=%v):\n%s", noJIT, inj.Report())
		}
		return r, out
	}
	jit, jitOut := run(false)
	_, interpOut := run(true)

	if jitOut != interpOut {
		t.Fatalf("alt.op faults in compiled bodies changed output:\n jit:    %q\n interp: %q",
			jitOut, interpOut)
	}
	if jit.rt.Degradations == 0 {
		t.Fatal("alt.op fault bursts produced no degradations")
	}
	if jit.rt.Cache().Stats.TraceInvalidations == 0 {
		t.Error("degradations never invalidated a compiled trace")
	}
	if jit.rt.Tel.JITExecs == 0 {
		t.Error("JIT never engaged under alt.op faults")
	}
	if jit.rt.JITCompiles < 2 {
		t.Errorf("JITCompiles = %d, want >= 2 (invalidated traces must re-promote)",
			jit.rt.JITCompiles)
	}
	if jit.rt.Detached() {
		t.Error("degradable alt.op faults escalated to detach")
	}
}

// TestJITInvalidationDropsBody: InvalidateTraces drops the trace object
// and its compiled body together — no trace reachable from the cache
// afterwards carries a stale body, and replay re-promotes from scratch.
func TestJITInvalidationDropsBody(t *testing.T) {
	r := newRig(t, buildTraceLoop(t, 400), jitLoopCfg(1, false), true)
	r.run(t)
	c := r.rt.Cache()
	var compiled int
	for _, tr := range c.Traces() {
		if tr.Compiled != nil {
			compiled++
			if n := c.InvalidateTraces(tr.Start); n == 0 {
				t.Errorf("InvalidateTraces(%#x) dropped nothing", tr.Start)
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no compiled trace in the cache after a hot run")
	}
	for _, tr := range c.Traces() {
		if tr.Compiled != nil {
			t.Errorf("trace %#x still carries a compiled body after invalidation", tr.Start)
		}
	}
}

// TestJITForkChildRecompiles: fork clones the trace table without the
// parent's compiled bodies (they capture nothing of the parent, but the
// per-VM rule is absolute); the child re-promotes against its inherited
// replay counters and counts its own compiles.
func TestJITForkChildRecompiles(t *testing.T) {
	img := buildTraceLoop(t, 400)
	parent := newRig(t, img, jitLoopCfg(1, false), true)
	parent.run(t)
	if parent.rt.JITCompiles == 0 {
		t.Fatal("parent never compiled")
	}
	child := parent.p.Fork("child")
	childRT := parent.rt.ForkChild(child)
	for _, tr := range childRT.Cache().Traces() {
		if tr.Compiled != nil {
			t.Errorf("fork cloned a compiled body for trace %#x", tr.Start)
		}
	}
	if childRT.JITCompiles != 0 {
		t.Errorf("child starts with JITCompiles = %d, want 0", childRT.JITCompiles)
	}
}
