package fpvm

// Tier-1 trace JIT. The L2 trace cache (trace.go) already amortizes
// decode across a sequence, but every interpreted replay still pays a
// per-instruction dispatch: class switch, operand-kind switch, op→fpmath
// mapping. Once a trace's replay counter (Trace.Hits) crosses the
// promotion threshold, this file compiles it into a chain of specialized
// Go closures — one per instruction, with the operand accessors resolved
// to direct register/memory reads, the scalar float fast path from
// replayScalarArith inlined with its fpmath op pre-mapped, and the
// boxedness guard compiled out where the instruction is warranted
// unconditionally (the trace head, or EmulateAll runs).
//
// Every compiled step keeps the same cheap guard the interpreter
// evaluates: when an operand's boxedness diverges from the recorded
// shape, the step reports emNotWarranted and the body deopts through the
// existing divergence exit — the hardware re-runs the instruction
// natively and the trace stays cached, exactly like an interpreted
// divergence, plus a jit_deopt count. Compilation and compiled execution
// charge the same virtual cycles as interpreted replay, so trap
// boundaries, watchdog behavior, checkpoint cadence and the oracle's
// trap-stream digests are bit-identical across tiers; the JIT's win is
// host time only.
//
// Compiled bodies are strictly per-VM process state: the dcache snapshot
// rules clear Trace.Compiled on shared-cache publish/adopt and fork
// clone, the checkpoint wire format never carries one (restored caches
// re-promote from their preserved Hits counters), and every invalidation
// path drops the body with its trace.

import (
	"fmt"

	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/telemetry"
)

// jitExec is one compiled instruction: the step's specialized emulation,
// with the same contract as replayInst. The Runtime is a parameter, not a
// capture, so a body never outlives its VM by aliasing runtime state.
type jitExec func(*Runtime, *kernel.Ucontext) (emStatus, error)

// jitStep pairs a compiled instruction with the addresses the replay loop
// needs, precomputed so the loop never touches isa.Inst.
type jitStep struct {
	addr  uint64 // instruction address (fault checks, invalidation)
	next  uint64 // fall-through resume address (addr + length)
	entry *dcache.Entry
	exec  jitExec
}

// jitBody is a compiled trace, stored in Trace.Compiled.
type jitBody struct {
	steps []jitStep
}

// promoteTrace returns tr's compiled body, compiling it the first time
// the replay counter is found at or above the promotion threshold.
// Compilation itself charges no virtual cycles: it is host-side work with
// no architectural effect, and keeping it free preserves cycle-exactness
// between tiers (and across snapshot/resume, which recompiles).
func (r *Runtime) promoteTrace(tr *dcache.Trace) *jitBody {
	if !r.jitOn {
		return nil
	}
	if body, ok := tr.Compiled.(*jitBody); ok {
		return body
	}
	if tr.Hits < r.jitThreshold {
		return nil
	}
	body := r.compileTrace(tr)
	tr.Compiled = body
	r.JITCompiles++
	return body
}

func (r *Runtime) compileTrace(tr *dcache.Trace) *jitBody {
	steps := make([]jitStep, len(tr.Entries))
	for i, e := range tr.Entries {
		steps[i] = jitStep{
			addr:  e.Inst.Addr,
			next:  e.Inst.Addr + uint64(e.Inst.Len),
			entry: e,
			exec:  r.compileStep(e, i == 0),
		}
	}
	return &jitBody{steps: steps}
}

// compileStep specializes one pre-decoded instruction. Scalar arithmetic
// gets the fully inlined float fast path (when the alt system supports
// it), the common XMM transport ops get direct register-file/memory
// closures, and everything else falls back to a closure over the generic
// emulator — still skipping the per-replay entry traversal and class
// dispatch. Baking runtime facts (EmulateAll, FloatSystem presence) into
// the closure is safe because bodies never cross VM boundaries.
func (r *Runtime) compileStep(e *dcache.Entry, first bool) jitExec {
	switch emulClass(e.Class) {
	case classScalarArith:
		if r.flt != nil {
			return compileScalarArith(e, first || r.Cfg.EmulateAll)
		}
	case classMove:
		if exec := compileMove(e); exec != nil {
			return exec
		}
	}
	return compileGeneric(e, first)
}

func compileGeneric(e *dcache.Entry, first bool) jitExec {
	return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
		return r.emulateInst(uc, e, first)
	}
}

// compileScalarArith inlines replayScalarArith with every per-replay
// decision precomputed: the fpmath op, the sqrt single-operand shape, the
// destination register, the source accessor, and — when warranted is true
// — the boxedness guard itself (hoisted out: the step always emulates).
// Charges, fault handling and the non-float fallback are identical to the
// interpreted step.
func compileScalarArith(e *dcache.Entry, warranted bool) jitExec {
	in := &e.Inst
	op := in.Op
	fop := scalarToFPOp(op)
	sqrt := op == isa.SQRTSD
	dst := in.RegOp.Reg
	readSrc := compileRead64(in, in.RMOp)
	return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
		r.charge(telemetry.Bind, r.Costs.BindArith)
		srcBits, err := readSrc(r, uc)
		if err != nil {
			return emOK, err
		}
		dstBits := uc.CPU.XMM[dst][0]
		if !warranted && !r.boxedLive(srcBits) && (sqrt || !r.boxedLive(dstBits)) {
			return emNotWarranted, nil // guard failure: deopt
		}
		r.charge(telemetry.Emul, r.Costs.EmulArith)
		if !r.floatResolvable(srcBits) || (!sqrt && !r.floatResolvable(dstBits)) {
			// A live box holds a non-float alt value: generic path.
			uc.CPU.XMM[dst][0] = r.altScalar(op, dstBits, srcBits)
			return emOK, nil
		}
		uc.CPU.XMM[dst][0] = r.altScalarFloatOp(fop, dstBits, srcBits)
		return emOK, nil
	}
}

// compileMove specializes the XMM transport ops — the bulk of non-arith
// trace entries. Integer moves stay on the generic emulator (they carry
// the FutureHW escape-demote side channel). Returns nil when the op has
// no specialization.
func compileMove(e *dcache.Entry) jitExec {
	in := &e.Inst
	d := in.RegOp.Reg
	switch in.Op {
	case isa.MOVSDXX:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.XMM[d][0] = uc.CPU.XMM[s][0]
			return emOK, nil
		}
	case isa.MOVAPDXX, isa.MOVDQAXX:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.XMM[d] = uc.CPU.XMM[s]
			return emOK, nil
		}
	case isa.MOVSDXM, isa.MOVQXM:
		read := compileRead64(in, in.RMOp)
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			v, err := read(r, uc)
			if err != nil {
				return emOK, err
			}
			uc.CPU.XMM[d] = [2]uint64{v, 0}
			return emOK, nil
		}
	case isa.MOVDDUP:
		read := compileRead64(in, in.RMOp)
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			v, err := read(r, uc)
			if err != nil {
				return emOK, err
			}
			uc.CPU.XMM[d] = [2]uint64{v, v}
			return emOK, nil
		}
	case isa.MOVSDMX, isa.MOVQMX:
		ea := compileEA(in, in.RMOp)
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			return emOK, r.m.Mem.WriteUint64(ea(uc), uc.CPU.XMM[d][0])
		}
	case isa.MOVQXG:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.XMM[d] = [2]uint64{uc.CPU.GPR[s], 0}
			return emOK, nil
		}
	case isa.MOVQGX:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.GPR[d] = uc.CPU.XMM[s][0]
			return emOK, nil
		}
	case isa.MOVDXG:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.XMM[d] = [2]uint64{uint64(uint32(uc.CPU.GPR[s])), 0}
			return emOK, nil
		}
	case isa.MOVDGX:
		s := in.RMOp.Reg
		return func(r *Runtime, uc *kernel.Ucontext) (emStatus, error) {
			chargeMove(r)
			uc.CPU.GPR[d] = uint64(uint32(uc.CPU.XMM[s][0]))
			return emOK, nil
		}
	}
	return nil
}

func chargeMove(r *Runtime) {
	r.charge(telemetry.Bind, r.Costs.BindMove)
	r.charge(telemetry.Emul, r.Costs.EmulMove)
}

// compileEA pre-resolves a memory operand's effective-address shape:
// RIP-relative addresses collapse to a constant, and the base/index/scale
// combination picks one of four direct-read closures — no per-replay
// operand-kind or addressing-mode dispatch. Semantics match Runtime.ea.
func compileEA(in *isa.Inst, o isa.Operand) func(*kernel.Ucontext) uint64 {
	if o.RIPRel {
		addr := in.Addr + uint64(in.Len) + uint64(int64(o.Disp))
		return func(*kernel.Ucontext) uint64 { return addr }
	}
	disp := uint64(int64(o.Disp))
	base, index, scale := o.Base, o.Index, uint64(o.Scale)
	switch {
	case base != isa.NoReg && index != isa.NoReg:
		return func(uc *kernel.Ucontext) uint64 {
			return uc.CPU.GPR[base] + uc.CPU.GPR[index]*scale + disp
		}
	case base != isa.NoReg:
		return func(uc *kernel.Ucontext) uint64 { return uc.CPU.GPR[base] + disp }
	case index != isa.NoReg:
		return func(uc *kernel.Ucontext) uint64 { return uc.CPU.GPR[index]*scale + disp }
	default:
		return func(*kernel.Ucontext) uint64 { return disp }
	}
}

// compileRead64 pre-resolves an 8-byte r/m read to a direct accessor,
// mirroring readOperand(…, 8).
func compileRead64(in *isa.Inst, o isa.Operand) func(*Runtime, *kernel.Ucontext) (uint64, error) {
	switch o.Kind {
	case isa.KindGPR:
		reg := o.Reg
		return func(_ *Runtime, uc *kernel.Ucontext) (uint64, error) {
			return uc.CPU.GPR[reg], nil
		}
	case isa.KindXMM:
		reg := o.Reg
		return func(_ *Runtime, uc *kernel.Ucontext) (uint64, error) {
			return uc.CPU.XMM[reg][0], nil
		}
	case isa.KindImm:
		v := uint64(o.Imm)
		return func(*Runtime, *kernel.Ucontext) (uint64, error) { return v, nil }
	}
	ea := compileEA(in, o)
	return func(r *Runtime, uc *kernel.Ucontext) (uint64, error) {
		return r.m.Mem.ReadUint64(ea(uc))
	}
}

// replayCompiled is replayTrace's loop over a compiled body: identical
// control flow, charges, fault handling and counters, but each iteration
// is an indexed step array walk plus one indirect call — no Entry
// traversal, no class or operand dispatch. Fault checks are skipped
// wholesale when no injector is armed (the nil-injector check is
// side-effect-free), and the watchdog budget is hoisted (it is a pure
// config read).
func (r *Runtime) replayCompiled(uc *kernel.Ucontext, tr *dcache.Trace, body *jitBody, trapStart uint64) bool {
	r.charge(telemetry.Decache, r.Costs.TraceHit)
	r.Tel.JITExecs++

	count := 0
	reason := tr.Reason
	rip := tr.Start
	inject := r.inject != nil
	budget := r.trapCycleBudget()

	for i := range body.steps {
		step := &body.steps[i]
		rip = step.addr
		r.curRIP = rip

		if inject && r.checkFault(faultinject.SiteDecode, rip) {
			r.cache.Invalidate(rip)
			if !r.retryFault(faultinject.SiteDecode) {
				if i == 0 {
					r.failTrap(uc, rip, faultinject.SiteDecode, fmt.Errorf("decode: %w", errDecodeFault))
					return true
				}
				r.degradeFault(faultinject.SiteDecode)
			}
			if i == 0 {
				return false // nothing emulated yet: re-walk this trap
			}
			reason = dcache.TermUnsupported
			break
		}

		r.charge(telemetry.Decache, r.Costs.TraceInst)
		r.curEntry, r.phase = step.entry, phaseInst
		status, err := step.exec(r, uc)
		r.curEntry, r.phase = nil, phaseNone
		if err != nil {
			if count > 0 {
				// Mid-sequence bind/memory error: same degradation as the
				// interpreted loop — end the sequence and drop the traces
				// through the distrusted instruction (with its body).
				r.Degradations++
				r.cache.InvalidateTraces(rip)
				reason = dcache.TermUnsupported
				break
			}
			r.failTrap(uc, rip, "", err)
			return true
		}
		if status == emNotWarranted {
			// Tier-1 guard failure: deopt to the interpreter through the
			// divergence exit. The trace (and its body) stays cached —
			// boxedness oscillation is normal, and the next trap at this
			// start replays interpreted or compiled as counters dictate.
			tr.Divergences++
			r.Tel.TraceDivergences++
			r.Tel.JITDeopts++
			reason = dcache.TermNoBoxedSource
			break
		}
		count++
		r.Tel.EmulatedInsts++
		r.Tel.ReplayedInsts++
		r.Tel.JITInsts++
		rip = step.next

		if r.m.Cycles-trapStart > budget {
			r.WatchdogAborts++
			r.Tel.WatchdogAborts++
			if r.tryRollback(uc, tr.Start) {
				return true
			}
			reason = dcache.TermLimit
			break
		}
	}

	if count == 0 {
		// Defensive, mirroring replayTrace: never claim an empty trap
		// handled.
		return false
	}

	if count == len(body.steps) {
		rip = tr.EndRIP
	}

	tr.Hits++
	uc.CPU.RIP = rip

	if r.Profile != nil {
		tr.EnsureDisassembly(func(rip uint64) (string, bool) {
			in, err := r.m.FetchDecode(rip)
			if err != nil {
				return "", false
			}
			return in.String(), true
		})
		r.Profile.Record(tr.Start, count, reason, tr.Insts, tr.Term)
	}

	r.maybeGC(uc)
	return true
}
