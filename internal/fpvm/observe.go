package fpvm

import (
	"fmt"
	"strings"

	"fpvm/internal/isa"
	"fpvm/internal/kernel"
)

// Trap-boundary state extraction for the differential conformance oracle
// (internal/oracle). Config.Observer, when set, is invoked once per
// handled FP trap with a NaN-box-normalized snapshot of the architectural
// state the guest resumes with. Observation is strictly passive: no
// telemetry categories are charged and the machine clock is untouched, so
// an observed run is cycle-for-cycle identical to an unobserved one
// (watchdog budgets, checkpoint cadence and trace-cache behaviour do not
// shift under observation).

// TrapState is the architectural state at one trap boundary, as the guest
// is about to resume. XMM and GPR lanes holding live NaN boxes are
// normalized to the IEEE doubles they demote to, so states are comparable
// across runs whose box handles (allocation order) differ.
type TrapState struct {
	// Index is the 1-based trap ordinal (telemetry.Breakdown.Traps at
	// observation time). After a rollback the ordinal rewinds with the
	// restored timeline.
	Index uint64

	// TrapRIP is the faulting instruction; ResumeRIP is where the guest
	// continues (end of the emulated sequence).
	TrapRIP   uint64
	ResumeRIP uint64

	MXCSR  uint32
	RFLAGS uint64

	// StdoutLen is the guest's output length so far — a cheap proxy for
	// "the same writes happened in the same order by this point".
	StdoutLen int

	GPR [isa.NumGPR]uint64
	XMM [isa.NumXMM][2]uint64
}

// Dump renders the state for divergence reports.
func (s *TrapState) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trap #%d rip=%#x resume=%#x mxcsr=%#x rflags=%#x stdout=%dB\n",
		s.Index, s.TrapRIP, s.ResumeRIP, s.MXCSR, s.RFLAGS, s.StdoutLen)
	for i := 0; i < isa.NumGPR; i++ {
		fmt.Fprintf(&sb, "  %-4s=%016x", isa.GPRName(isa.Reg(i)), s.GPR[i])
		if i%4 == 3 {
			sb.WriteString("\n")
		}
	}
	for i := 0; i < isa.NumXMM; i++ {
		fmt.Fprintf(&sb, "  xmm%-2d=%016x:%016x", i, s.XMM[i][1], s.XMM[i][0])
		if i%2 == 1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// NormalizeBits demotes a live NaN-boxed bit pattern to the IEEE double
// it represents, without charging telemetry or the machine clock (the
// side-effect-free sibling of demote, for observers). Non-box patterns,
// dead handles and plain doubles pass through unchanged.
func (r *Runtime) NormalizeBits(bits uint64) uint64 {
	h, ok := isBox(bits)
	if !ok {
		return bits
	}
	v, live := r.alloc.Get(h)
	if !live {
		return bits
	}
	f, _ := r.Cfg.Alt.Demote(v)
	if bits>>63 != 0 {
		f = -f // sign-flipped box: decodes as the negated value
	}
	return bits64(f)
}

// observeTrap snapshots uc's normalized state and hands it to the
// configured observer. Called from handleTrap's deferred epilogue, so
// every return path — walk, replay, pinned-native, recovery rungs — is
// observed exactly once per delivered trap.
func (r *Runtime) observeTrap(uc *kernel.Ucontext, trapRIP uint64) {
	st := TrapState{
		Index:     r.Tel.Traps,
		TrapRIP:   trapRIP,
		ResumeRIP: uc.CPU.RIP,
		MXCSR:     uc.CPU.MXCSR,
		RFLAGS:    uc.CPU.RFLAGS,
		StdoutLen: r.p.Stdout.Len(),
	}
	for i, w := range uc.CPU.GPR {
		st.GPR[i] = r.NormalizeBits(w)
	}
	for i := range uc.CPU.XMM {
		st.XMM[i][0] = r.NormalizeBits(uc.CPU.XMM[i][0])
		st.XMM[i][1] = r.NormalizeBits(uc.CPU.XMM[i][1])
	}
	r.Cfg.Observer(&st)
}

// CaptureFinal snapshots the machine's end-of-run architectural state
// through the same normalization as trap observation, for final-state
// comparison against a native baseline.
func (r *Runtime) CaptureFinal() TrapState {
	cpu := &r.m.CPU
	st := TrapState{
		TrapRIP:   cpu.RIP,
		ResumeRIP: cpu.RIP,
		MXCSR:     cpu.MXCSR,
		RFLAGS:    cpu.RFLAGS,
		StdoutLen: r.p.Stdout.Len(),
	}
	for i, w := range cpu.GPR {
		st.GPR[i] = r.NormalizeBits(w)
	}
	for i := range cpu.XMM {
		st.XMM[i][0] = r.NormalizeBits(cpu.XMM[i][0])
		st.XMM[i][1] = r.NormalizeBits(cpu.XMM[i][1])
	}
	return st
}
