package fpvm_test

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/hostlib"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

// rig wires a full stack with explicit control over wrapper installation.
type rig struct {
	p   *kernel.Process
	rt  *fpvmrt.Runtime
	lib *hostlib.Library
}

func newRig(t *testing.T, img *obj.Image, cfg fpvmrt.Config, wrap bool) *rig {
	t.Helper()
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	if cfg.Short {
		k.LoadModule()
	}
	p := kernel.NewProcess(k, m, img.Name)
	lib := hostlib.Install(p)
	rt, err := fpvmrt.Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wrap {
		rt.InstallWrappers(lib)
	}
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	base := func(name string) (uint64, bool) {
		if sym, ok := img.Lookup(name); ok {
			return sym.Addr, true
		}
		a, ok := lib.Exports[name]
		return a, ok
	}
	resolve := base
	if wrap {
		resolve = rt.WrapResolver(base)
	}
	if err := img.Load(as, resolve); err != nil {
		t.Fatal(err)
	}
	m.InvalidateICache()
	m.CPU.RIP = img.Entry
	m.CPU.GPR[isa.RSP] = obj.StackTop - 64
	m.CPU.MXCSR = machine.MXCSRTrapAll
	return &rig{p: p, rt: rt, lib: lib}
}

func (r *rig) run(t *testing.T) string {
	t.Helper()
	if err := r.p.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := r.rt.Err(); err != nil {
		t.Fatalf("fpvm: %v", err)
	}
	return r.p.Stdout.String()
}

// buildPrintBoxed assembles: x = 1/3 (boxed); print_f64(x); exit.
func buildPrintBoxed(t *testing.T) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("pb")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.MI(isa.MOV64RI, isa.GPR(isa.RDI), 0)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestUnwrappedForeignCallPrintsNaN demonstrates the §2.6/§5.3 hazard:
// without FPVM's wrappers, a foreign function bit-interprets a NaN-boxed
// value and prints "nan" — exactly the incorrect behaviour the paper
// describes ("Often, this results in the program printing nan").
func TestUnwrappedForeignCallPrintsNaN(t *testing.T) {
	img := buildPrintBoxed(t)
	cfg := fpvmrt.Config{Alt: alt.NewBoxedIEEE()}

	out := newRig(t, img, cfg, false).run(t)
	if !strings.Contains(strings.ToLower(out), "nan") {
		t.Errorf("unwrapped printf printed %q, expected nan corruption", out)
	}

	out = newRig(t, img, cfg, true).run(t)
	if !strings.HasPrefix(out, "0.3333333333333333") {
		t.Errorf("wrapped printf printed %q", out)
	}
}

// TestFCallAccounting: wrapped calls charge the fcall category.
func TestFCallAccounting(t *testing.T) {
	img := buildPrintBoxed(t)
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE()}, true)
	r.run(t)
	if r.rt.Tel.FCallEvents == 0 {
		t.Error("no fcall events")
	}
	if r.rt.Demotions == 0 {
		t.Error("no demotions at the wrapper")
	}
}

// TestCanonicalNaNRule: 0/0 with ordinary operands must store a canonical
// (application-visible) NaN, not a box (§2.3).
func TestCanonicalNaNRule(t *testing.T) {
	b := asm.NewBuilder("nan")
	b.RoDouble("zero", 0)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "zero")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "zero")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE()}, true).run(t)
	if !strings.Contains(strings.ToLower(out), "nan") {
		t.Errorf("0/0 printed %q, want nan", out)
	}
}

// TestGCCollectsLoopGarbage: a loop overwriting one register generates
// one orphaned box per iteration (the paper's §2.5 example); the GC must
// keep the live population bounded.
func TestGCCollectsLoopGarbage(t *testing.T) {
	b := asm.NewBuilder("gc")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), 2000)
	b.Label("loop")
	// x0 = 1/3 fresh each iteration: the old box becomes garbage.
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), GCThreshold: 256}, true)
	r.run(t)
	if r.rt.GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	if live := r.rt.Allocator().Live(); live > 300 {
		t.Errorf("live boxes %d not bounded by threshold", live)
	}
	if r.rt.Allocator().Stats.Frees == 0 {
		t.Error("nothing collected")
	}
}

// TestSeqTerminationReasons: the profile must show both termination
// conditions of §4.2.
func TestSeqTerminationReasons(t *testing.T) {
	b := asm.NewBuilder("seq")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.RoDouble("two", 2)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), 50)
	b.Label("loop")
	// boxed chain then an exact FP op on fresh (unboxed) values, then int.
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three") // faults; boxed
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM0))
	// xmm2/xmm3 hold plain values: addsd with no boxed source terminates
	// the sequence (condition 2).
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM2), "two")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM3), "two")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM2), isa.XMM(isa.XMM3))
	// A boxed arith right before the integer op: its (second) trap's
	// sequence runs straight into sub -> condition 1.
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM0))
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1) // condition 1 terminator
	b.Branch(isa.JNE, "loop")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Profile: true}, true)
	r.run(t)
	prof := r.rt.Profile
	if prof == nil || prof.NumTraces() == 0 {
		t.Fatal("no profile")
	}
	reasons := map[string]bool{}
	for _, tr := range prof.ByPopularity() {
		reasons[tr.Reason.String()] = true
	}
	if !reasons["no-nan-boxed-source"] {
		t.Errorf("condition-(2) termination never observed: %v", reasons)
	}
	if !reasons["unsupported-instruction"] {
		t.Errorf("condition-(1) termination never observed: %v", reasons)
	}
}

// TestDecodeCacheReuse: repeated traps through the same loop must hit the
// decode cache (almost always, per §2.4). With the L2 trace table on
// (default), repeated traps replay whole sequences instead, so the L1
// assertion runs with the trace cache ablated and the default path must
// show L2 trace hits dominating.
func TestDecodeCacheReuse(t *testing.T) {
	img := buildGCLoop(t, 500)
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, NoTraceCache: true}, true)
	r.run(t)
	c := r.rt.Cache()
	if c.Stats.Hits < c.Stats.Misses*10 {
		t.Errorf("decode cache ineffective: %d hits, %d misses", c.Stats.Hits, c.Stats.Misses)
	}
	if c.Stats.TraceHits != 0 || c.Stats.TraceMisses != 0 {
		t.Errorf("trace table engaged despite NoTraceCache: %+v", c.Stats)
	}

	img2 := buildGCLoop(t, 500)
	r2 := newRig(t, img2, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true}, true)
	r2.run(t)
	c2 := r2.rt.Cache()
	if c2.Stats.TraceHits < c2.Stats.TraceMisses*10 {
		t.Errorf("trace cache ineffective: %d hits, %d misses", c2.Stats.TraceHits, c2.Stats.TraceMisses)
	}
}

func buildGCLoop(t *testing.T, n int64) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("loop")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), n)
	b.Label("loop")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestPackedEmulation: addpd over boxed lanes must match native packed
// arithmetic.
func TestPackedEmulation(t *testing.T) {
	b := asm.NewBuilder("packed")
	b.RoDouble("pair", 1, 3) // 16-byte aligned pair {1.0, 3.0}
	b.RoDouble("div", 3, 7)
	b.Func("main")
	b.RMData(isa.MOVAPDXM, isa.XMM(isa.XMM0), "pair")
	b.RMData(isa.DIVPD, isa.XMM(isa.XMM0), "div") // both lanes inexact -> boxed
	b.RMData(isa.ADDPD, isa.XMM(isa.XMM0), "pair")
	// print lane0 then lane1
	b.CallImport("print_f64")
	b.RM(isa.UNPCKHPD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM0)) // lane1 -> lane0
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true}, true).run(t)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("output %q", out)
	}
	if !strings.HasPrefix(lines[0], "1.3333333333333") {
		t.Errorf("lane0 = %q, want 1/3+1", lines[0])
	}
	if !strings.HasPrefix(lines[1], "3.4285714285714") {
		t.Errorf("lane1 = %q, want 3/7+3", lines[1])
	}
}

// TestCvtOnBoxed: cvttsd2si of a boxed value must demote and truncate.
func TestCvtOnBoxed(t *testing.T) {
	b := asm.NewBuilder("cvt")
	b.RoDouble("ten", 10)
	b.RoDouble("three", 3)
	b.RoBytes("fmt", []byte("%d\x00"))
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "ten")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three") // 3.333.. boxed
	b.RM(isa.CVTTSD2SI, isa.GPR(isa.RSI), isa.XMM(isa.XMM0))
	b.LeaData(isa.RDI, "fmt")
	b.CallImport("printf")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE()}, true).run(t)
	if out != "3" {
		t.Errorf("cvttsd2si(10/3) printed %q", out)
	}
}

// TestSeqLimit: the per-trap emulation cap must engage on an extremely
// long straight-line FP run.
func TestSeqLimit(t *testing.T) {
	b := asm.NewBuilder("long")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	for i := 0; i < 40; i++ {
		b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM0))
	}
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, SeqLimit: 8}, true)
	r.run(t)
	if r.rt.SeqLimitHit == 0 {
		t.Error("sequence limit never hit")
	}
}

// TestShortFallback: requesting Short without the kernel module must fall
// back to signals and still work.
func TestShortFallback(t *testing.T) {
	img := buildGCLoop(t, 10)
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New() // module NOT loaded
	p := kernel.NewProcess(k, m, "fb")
	lib := hostlib.Install(p)
	rt, err := fpvmrt.Attach(p, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Short: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.InstallWrappers(lib)
	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	if err := img.Load(as, rt.WrapResolver(func(n string) (uint64, bool) {
		a, ok := lib.Exports[n]
		return a, ok
	})); err != nil {
		t.Fatal(err)
	}
	m.InvalidateICache()
	m.CPU.RIP = img.Entry
	m.CPU.GPR[isa.RSP] = obj.StackTop - 64
	m.CPU.MXCSR = machine.MXCSRTrapAll
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if rt.ShortActive {
		t.Error("short path active without module")
	}
	if k.Stats.SignalsFPE == 0 {
		t.Error("no signal fallback deliveries")
	}
}

// TestMPFRLibmPrecision: with the MPFR system, libm wrappers compute in
// the alternative arithmetic at 200 bits (§5.3's "interface with the
// alternative arithmetic system"), observable as exp(1)·exp(−1) − 1
// shrinking from double rounding error (~1e-16) to ~2^-199.
func TestMPFRLibmPrecision(t *testing.T) {
	b := asm.NewBuilder("prec")
	b.RoDouble("one", 1)
	b.RoDouble("negone", -1)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.CallImport("exp")
	b.RM(isa.MOVSDXX, isa.XMM(isa.XMM8), isa.XMM(isa.XMM0)) // save e
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "negone")
	b.CallImport("exp")
	b.RM(isa.MULSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM8)) // e * 1/e
	b.RMData(isa.SUBSD, isa.XMM(isa.XMM0), "one")         // - 1
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	mp := alt.NewMPFR(200)
	out := newRig(t, img, fpvmrt.Config{Alt: mp, Seq: true}, true).run(t)
	v, err := strconv.ParseFloat(strings.TrimSpace(out), 64)
	if err != nil {
		t.Fatalf("output %q: %v", out, err)
	}
	if math.Abs(v) > 1e-40 {
		t.Errorf("200-bit exp(1)*exp(-1)-1 = %g, want < 1e-40 (libm not routed through MPFR?)", v)
	}

	// Under Boxed IEEE the same program shows double-sized rounding error
	// (or exactly zero), never the 1e-60 signature.
	outBoxed := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true}, true).run(t)
	vb, err := strconv.ParseFloat(strings.TrimSpace(outBoxed), 64)
	if err != nil {
		t.Fatal(err)
	}
	if vb != 0 && math.Abs(vb) < 1e-20 {
		t.Errorf("boxed result %g suspiciously precise", vb)
	}
}
