package fpvm_test

import (
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
)

// buildChain assembles a straight-line chain of boxed arithmetic:
// x = 1/3; repeat n times { x = x + 1/3 }; print_f64(x); exit. Every addsd
// consumes a boxed operand, so each one either traps (NONE) or extends a
// sequence (SEQ).
func buildChain(t *testing.T, n int) *asm.Builder {
	t.Helper()
	b := asm.NewBuilder("chain")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM1), "three")
	for i := 0; i < n; i++ {
		b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	}
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	return b
}

// TestLadderRetryResolvesTransients: an every-N rule fires, the retry
// re-consults the injector, and the operation goes through on the second
// attempt. The run completes with the exact result and every fault
// resolves as a retry.
func TestLadderRetryResolvesTransients(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.ArmAll(faultinject.Rule{Every: 5})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "3") {
		t.Errorf("chain printed %q, want 3.0", out)
	}
	if r.rt.Retries == 0 {
		t.Fatal("no transient retries recorded (injection not exercised)")
	}
	if r.rt.Tel.FaultsInjected == 0 || !r.rt.Tel.FaultsReconciled() {
		t.Errorf("fault ledger broken: %s", r.rt.Tel.FaultLine())
	}
	if !inj.Reconciled() {
		t.Errorf("injector ledger broken:\n%s", inj.Report())
	}
}

// TestLadderDegradesWhenBudgetExhausted: an every=1 rule fires on every
// check, so each site's per-trap retry budget drains and the ladder's
// degradable rung takes over: operations re-run as native IEEE. Under
// Boxed IEEE the degraded result is bit-exact, so the program still
// prints the right answer — with zero fatal resolutions.
func TestLadderDegradesWhenBudgetExhausted(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 1})
	inj.Arm(faultinject.SiteHeapAlloc, faultinject.Rule{Every: 1})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "3") {
		t.Errorf("degraded chain printed %q, want 3.0", out)
	}
	if r.rt.Degradations == 0 {
		t.Fatal("budget exhaustion produced no degradations")
	}
	if r.rt.Detached() {
		t.Error("degradable faults escalated to detach")
	}
	tot := inj.Totals()
	if tot.Fatal != 0 {
		t.Errorf("degradable faults resolved as fatal: retried=%d degraded=%d fatal=%d",
			tot.Retried, tot.Degraded, tot.Fatal)
	}
	if !r.rt.Tel.FaultsReconciled() {
		t.Errorf("ledger: %s", r.rt.Tel.FaultLine())
	}
}

// TestPanicRecoveryDegrades: a buggy alternative system panics
// mid-emulation; the runtime converts each panic into a degradation (the
// instruction re-runs as native IEEE) instead of crashing, and under
// Boxed IEEE the output stays bit-exact.
func TestPanicRecoveryDegrades(t *testing.T) {
	img, err := buildChain(t, 12).Build()
	if err != nil {
		t.Fatal(err)
	}
	flaky := alt.NewFlaky(alt.NewBoxedIEEE(), 5)
	r := newRig(t, img, fpvmrt.Config{Alt: flaky, Seq: true}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "4.333333333333333") {
		t.Errorf("flaky run printed %q, want 4.333...", out)
	}
	if flaky.Panics == 0 {
		t.Fatal("flaky system never panicked (test not exercising recovery)")
	}
	if r.rt.PanicRecoveries != flaky.Panics {
		t.Errorf("panics %d but recoveries %d", flaky.Panics, r.rt.PanicRecoveries)
	}
	if r.rt.Detached() {
		t.Error("panic recovery escalated to detach")
	}
}

// TestWatchdogCutsSequences: with a one-cycle trap budget, sequence
// emulation is cut after the first instruction of every trap. Execution
// still completes correctly — the guest simply traps more often.
func TestWatchdogCutsSequences(t *testing.T) {
	img, err := buildChain(t, 16).Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, TrapCycleBudget: 1}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "5.666666666666665") {
		t.Errorf("watchdog run printed %q", out)
	}
	if r.rt.WatchdogAborts == 0 {
		t.Fatal("watchdog never fired despite 1-cycle budget")
	}
	if r.rt.Tel.WatchdogAborts != r.rt.WatchdogAborts {
		t.Error("watchdog counters disagree between runtime and telemetry")
	}
}

// TestFatalDetachDoesNoHarm: a decode fault on the faulting instruction
// itself leaves the ladder nothing to degrade to, so FPVM detaches. The
// contract is "do no harm": MXCSR stops trapping, live boxes demote in
// place, and the guest finishes natively with the correct output.
func TestFatalDetachDoesNoHarm(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteDecode, faultinject.Rule{Prob: 1})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj}, true)
	if err := r.p.Run(10_000_000); err != nil {
		t.Fatalf("guest did not survive detach: %v", err)
	}
	if !r.rt.Detached() {
		t.Fatal("runtime did not detach")
	}
	rerr := r.rt.Err()
	if rerr == nil {
		t.Fatal("detach left no diagnosable error")
	}
	if !strings.Contains(rerr.Error(), "detached at") {
		t.Errorf("error lacks trap RIP context: %v", rerr)
	}
	out := r.p.Stdout.String()
	if !strings.HasPrefix(out, "3") {
		t.Errorf("detached guest printed %q, want native 3.0", out)
	}
	if r.p.Exited != true {
		t.Error("guest did not run to completion after detach")
	}
}

// TestMaxLiveBoxesDegrades: with a hard cap smaller than the program's
// live boxed working set, allocation at the cap forces a collection and,
// when the heap is still full, degrades the result to plain IEEE bits.
// The answer stays bit-exact under Boxed IEEE.
func TestMaxLiveBoxesDegrades(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, MaxLiveBoxes: 1}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "3") {
		t.Errorf("capped run printed %q, want 3.0", out)
	}
	if r.rt.HeapFullDegrades == 0 {
		t.Fatal("MaxLiveBoxes cap never degraded an allocation")
	}
	if got := r.rt.Allocator().Stats.MaxLive; got > 1 {
		t.Errorf("live box population peaked at %d, cap was 1", got)
	}
}

// TestErrWrapsRIPAndMnemonic: the detach error names the faulting
// instruction, satisfying the diagnosability requirement that replaced
// the old silent fail().
func TestErrWrapsRIPAndMnemonic(t *testing.T) {
	// An FP trap whose faulting instruction FPVM cannot emulate: force it
	// by making the decode site fatal at the first trap (as above) and
	// checking the mnemonic of the trapping divsd appears.
	img, err := buildChain(t, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(3)
	inj.Arm(faultinject.SiteDecode, faultinject.Rule{Prob: 1})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Inject: inj}, true)
	_ = r.p.Run(10_000_000)
	rerr := r.rt.Err()
	if rerr == nil {
		t.Fatal("no error after forced fatal decode fault")
	}
	msg := rerr.Error()
	if !strings.Contains(msg, "0x") || !strings.Contains(msg, "divsd") {
		t.Errorf("error %q lacks RIP or mnemonic", msg)
	}
}
