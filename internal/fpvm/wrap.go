package fpvm

import (
	"sort"

	"fpvm/internal/alt"
	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
)

// Foreign function correctness (§2.6, §5.3): functions in shared libraries
// bit-interpret floating point arguments, so FPVM interposes wrapper stubs
// that demote NaN-boxed argument registers before the real function runs.
// (No promotion is needed afterwards: FP registers are caller-save, and
// library results are fresh IEEE doubles.)
//
// Two mechanisms are implemented, with identical runtime cost:
//
//   - Forward wrapping: the wrapper symbol is resolved ahead of the real
//     library in LD_PRELOAD order (WrapResolver).
//   - Magic wrapping: the program's relocations are rewritten to point at
//     "name$fpvm" symbols in a separate namespace (ApplyMagicWraps), the
//     way the paper uses Lief, so wrapped functions stay invisible to
//     FPVM's own code.

// MagicWrapSuffix is appended to symbol names by magic wrapping.
const MagicWrapSuffix = "$fpvm"

// libmUnary / libmBinary classify the libm surface FPVM can route into
// the alternative arithmetic system when it implements alt.MathSystem.
var libmUnary = map[string]bool{
	"sin": true, "cos": true, "tan": true, "asin": true, "acos": true,
	"atan": true, "exp": true, "log": true, "log10": true, "sqrt": true,
	"fabs": true,
}

var libmBinary = map[string]bool{
	"atan2": true, "pow": true, "hypot": true,
}

// InstallWrappers creates a wrapper host function for every export of
// lib and records both its plain name (forward wrapping) and its
// suffixed name (magic wrapping). Must run before image load. Wrappers
// are bound in sorted name order so the host bridge addresses that end
// up in guest-visible state (GOT slots, function pointers materialized
// by LoadImportAddr) are identical across runs of the same
// configuration — the differential oracle depends on that.
func (r *Runtime) InstallWrappers(lib *hostlib.Library) {
	if r.wrapperAddrs == nil {
		r.wrapperAddrs = make(map[string]uint64)
	}
	names := make([]string, 0, len(lib.Funcs))
	for name := range lib.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wrapped := r.makeWrapper(name, lib.Funcs[name])
		addr := r.p.BindHostAuto(wrapped)
		r.wrapperAddrs[name] = addr
		r.wrapped[name] = true
	}
	r.lib = lib
}

// makeWrapper builds the wrapper stub. For libm math functions whose
// alternative system implements alt.MathSystem (e.g. MPFR), the wrapper
// evaluates the function in the alternative system at full precision and
// returns a boxed result — the paper's hand-written libm forward wrappers
// that "interface with the alternative arithmetic system" (§5.3). For
// everything else (printf and friends, or systems without native libm),
// it demotes every possibly-boxed FP argument register (xmm0-7,
// conservatively — varargs functions may consume any of them) and calls
// the real host function.
func (r *Runtime) makeWrapper(name string, impl kernel.HostFunc) kernel.HostFunc {
	isUnary := libmUnary[name]
	isBinary := libmBinary[name]
	return func(p *kernel.Process) error {
		r.Tel.FCallEvents++
		r.charge(telemetry.FCall, r.Costs.WrapCall)
		cpu := &p.M.CPU

		if ms, ok := r.Cfg.Alt.(alt.MathSystem); ok && (isUnary || isBinary) {
			a, _ := r.resolve(cpu.XMM[0][0])
			var res alt.Value
			var cost uint64
			var handled bool
			if isUnary {
				res, cost, handled = ms.LibmUnary(name, a)
			} else {
				b, _ := r.resolve(cpu.XMM[1][0])
				res, cost, handled = ms.LibmBinary(name, a, b)
			}
			if handled {
				r.charge(telemetry.Altmath, cost)
				cpu.XMM[0] = [2]uint64{r.box(res), 0}
				return nil
			}
		}

		for i := 0; i < 8; i++ {
			if r.boxedLive(cpu.XMM[i][0]) {
				cpu.XMM[i][0] = r.demoteTo(cpu.XMM[i][0], telemetry.FCall)
			}
		}
		return impl(p)
	}
}

// WrapResolver returns the process's dynamic symbol resolver with FPVM's
// wrappers interposed ahead of base (LD_PRELOAD order): forward wrapping.
// Magic-wrapped names ("sin$fpvm") are also always resolvable, so a
// magic-wrapped image loads with the same resolver.
func (r *Runtime) WrapResolver(base obj.Resolver) obj.Resolver {
	return func(name string) (uint64, bool) {
		if n, ok := cutSuffix(name, MagicWrapSuffix); ok {
			if addr, ok := r.wrapperAddrs[n]; ok {
				return addr, true
			}
		}
		if !r.Cfg.MagicWraps {
			if addr, ok := r.wrapperAddrs[name]; ok {
				return addr, true
			}
		}
		return base(name)
	}
}

// ApplyMagicWraps rewrites the image's relocations so every wrapped
// import "name" resolves through "name$fpvm" instead — the Lief-style
// symbol table modification of §5.3. It returns the number of relocations
// rewritten.
func (r *Runtime) ApplyMagicWraps(img *obj.Image) int {
	n := 0
	for i := range img.Relocs {
		if r.wrapped[img.Relocs[i].Symbol] {
			img.Relocs[i].Symbol += MagicWrapSuffix
			n++
		}
	}
	return n
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}
