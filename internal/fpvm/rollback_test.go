package fpvm_test

import (
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
)

// TestRollbackRecoversFatalFault is the headline robustness property: a
// fatal-severity fault that would otherwise detach the VM is absorbed by
// the rollback supervisor — the last snapshot restores, the distrusted
// RIP is quarantined to native execution, and the run completes fully
// virtualized with output bit-identical to a fault-free run.
func TestRollbackRecoversFatalFault(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true}, true)
	want := ref.run(t)

	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 10, Limit: 1, Fatal: true})
	r := newRig(t, img, fpvmrt.Config{
		Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj, CheckpointInterval: 2,
	}, true)
	out := r.run(t)

	if out != want {
		t.Errorf("rolled-back run printed %q, want bit-identical %q", out, want)
	}
	if r.rt.Rollbacks == 0 {
		t.Fatal("fatal fault produced no rollback (supervisor not exercised)")
	}
	if r.rt.Detached() {
		t.Error("run detached despite a successful rollback")
	}
	if r.rt.Checkpoints == 0 {
		t.Error("no snapshots captured despite CheckpointInterval")
	}
	if r.rt.Quarantines == 0 {
		t.Error("rollback did not quarantine the distrusted RIP")
	}
	if r.rt.Tel.FaultsRolledBack == 0 || !r.rt.Tel.FaultsReconciled() {
		t.Errorf("fault ledger broken: %s", r.rt.Tel.FaultLine())
	}
	if !inj.Reconciled() || !inj.Consistent() {
		t.Errorf("injector ledger broken:\n%s", inj.Report())
	}
	if tot := inj.Totals(); tot.RolledBack == 0 || tot.Fatal != 0 {
		t.Errorf("fatal fault resolved wrong: rolledback=%d fatal=%d, want ≥1/0",
			tot.RolledBack, tot.Fatal)
	}
}

// TestFatalFaultWithoutCheckpointDetaches is the control for the test
// above: the identical fault schedule with the supervisor disabled can
// only reach the bottom rung. "Do no harm" still holds — the guest
// finishes natively with the right answer — but the run is detached.
func TestFatalFaultWithoutCheckpointDetaches(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 10, Limit: 1, Fatal: true})
	r := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj}, true)
	if err := r.p.Run(10_000_000); err != nil {
		t.Fatalf("guest did not survive detach: %v", err)
	}
	if !r.rt.Detached() {
		t.Fatal("fatal fault without checkpointing did not detach")
	}
	if r.rt.Rollbacks != 0 {
		t.Errorf("rollbacks %d with the supervisor disabled", r.rt.Rollbacks)
	}
	if !strings.HasPrefix(r.p.Stdout.String(), "3") {
		t.Errorf("detached guest printed %q, want native 3.0", r.p.Stdout.String())
	}
	if tot := inj.Totals(); tot.Fatal != 1 {
		t.Errorf("fault resolved as %+v, want exactly one fatal", tot)
	}
}

// TestMaxRollbacksBoundsAttempts: the attempt budget is a hard bound.
// With MaxRollbacks=1 and two fatal faults, the first rolls back and the
// second escalates past the exhausted supervisor to detach — recorded as
// one rolled-back and one fatal resolution plus a rollback failure.
func TestMaxRollbacksBoundsAttempts(t *testing.T) {
	img, err := buildChain(t, 16).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 8, Limit: 2, Fatal: true})
	r := newRig(t, img, fpvmrt.Config{
		Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj,
		CheckpointInterval: 2, MaxRollbacks: 1,
	}, true)
	if err := r.p.Run(10_000_000); err != nil {
		t.Fatalf("guest did not survive: %v", err)
	}
	if r.rt.Rollbacks != 1 {
		t.Errorf("rollbacks %d, want exactly the budget of 1", r.rt.Rollbacks)
	}
	if r.rt.RollbackFailures == 0 {
		t.Error("exhausted budget recorded no rollback failure")
	}
	if !r.rt.Detached() {
		t.Error("second fatal fault past the budget did not detach")
	}
	if !strings.HasPrefix(r.p.Stdout.String(), "5.6") {
		t.Errorf("guest printed %q, want native 5.66...", r.p.Stdout.String())
	}
	tot := inj.Totals()
	if tot.RolledBack != 1 || tot.Fatal != 1 {
		t.Errorf("resolutions rolledback=%d fatal=%d, want 1/1", tot.RolledBack, tot.Fatal)
	}
	if !inj.Reconciled() {
		t.Errorf("injector ledger broken:\n%s", inj.Report())
	}
}

// TestCheckpointSaveFaultsDegrade: ckpt.save is itself a fault site. A
// persistently failing save exhausts its retry budget and resolves as a
// degradation — the snapshot is skipped, the previous image stays valid,
// and the run completes clean (no snapshot is better than a torn one).
func TestCheckpointSaveFaultsDegrade(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteCkptSave, faultinject.Rule{Every: 1})
	r := newRig(t, img, fpvmrt.Config{
		Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj, CheckpointInterval: 1,
	}, true)
	out := r.run(t)
	if !strings.HasPrefix(out, "3") {
		t.Errorf("run printed %q, want 3.0", out)
	}
	if r.rt.Checkpoints != 0 {
		t.Errorf("%d snapshots captured despite every save faulting", r.rt.Checkpoints)
	}
	if r.rt.Degradations == 0 {
		t.Error("persistent save faults produced no degradations")
	}
	if r.rt.Detached() {
		t.Error("save faults escalated to detach")
	}
	if !r.rt.Tel.FaultsReconciled() || !inj.Reconciled() {
		t.Errorf("ledger broken: %s\n%s", r.rt.Tel.FaultLine(), inj.Report())
	}
}

// TestCheckpointRestoreFaultEscalates: when the restore path itself fails
// persistently, the supervisor must abandon the rollback rather than
// reinstate suspect state — the fatal fault falls through to detach and
// the attempt is recorded as a rollback failure.
func TestCheckpointRestoreFaultEscalates(t *testing.T) {
	img, err := buildChain(t, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 10, Limit: 1, Fatal: true})
	inj.Arm(faultinject.SiteCkptRestore, faultinject.Rule{Every: 1})
	r := newRig(t, img, fpvmrt.Config{
		Alt: alt.NewBoxedIEEE(), Seq: true, Inject: inj, CheckpointInterval: 2,
	}, true)
	if err := r.p.Run(10_000_000); err != nil {
		t.Fatalf("guest did not survive: %v", err)
	}
	if r.rt.Rollbacks != 0 {
		t.Errorf("rollbacks %d despite an unrestorable snapshot", r.rt.Rollbacks)
	}
	if r.rt.RollbackFailures == 0 {
		t.Error("abandoned rollback recorded no failure")
	}
	if !r.rt.Detached() {
		t.Error("fatal fault with a failing restore path did not detach")
	}
	if !strings.HasPrefix(r.p.Stdout.String(), "3") {
		t.Errorf("guest printed %q, want native 3.0", r.p.Stdout.String())
	}
	if !inj.Reconciled() {
		t.Errorf("injector ledger broken:\n%s", inj.Report())
	}
}
