package fpvm_test

import (
	"strings"
	"testing"

	"fpvm/internal/alt"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	fpvmrt "fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/obj"
)

// buildTraceLoop assembles a loop whose body is a four-deep boxed addsd
// chain: every iteration traps at the same RIP and replays the same
// four-instruction trace (terminated by the integer sub). The sum prints
// at the end, so any replay divergence from the walk shows up in stdout.
func buildTraceLoop(t *testing.T, n int64) *obj.Image {
	t.Helper()
	b := asm.NewBuilder("traceloop")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), n)
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three") // x = 1/3, boxed
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM1), "three") // step = 1/3, boxed
	b.Label("loop")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func traceLoopCfg(noTrace bool) fpvmrt.Config {
	return fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, NoTraceCache: noTrace}
}

// TestTraceReplayStdoutParity: the trace cache is a pure accelerator —
// replay must print bit-for-bit what the per-instruction walk prints, and
// the ablation flag must actually keep the trace table cold.
func TestTraceReplayStdoutParity(t *testing.T) {
	on := newRig(t, buildTraceLoop(t, 400), traceLoopCfg(false), true)
	outOn := on.run(t)
	off := newRig(t, buildTraceLoop(t, 400), traceLoopCfg(true), true)
	outOff := off.run(t)
	if outOn != outOff {
		t.Fatalf("trace replay changed output:\n on:  %q\n off: %q", outOn, outOff)
	}
	if on.rt.Cache().Stats.TraceHits == 0 {
		t.Error("trace-on run never replayed a trace")
	}
	if on.rt.Tel.ReplayedInsts == 0 {
		t.Error("trace-on run reports zero replayed instructions")
	}
	if c := off.rt.Cache(); c.Stats.TraceHits != 0 || c.Stats.TraceMisses != 0 || c.TraceLen() != 0 {
		t.Errorf("NoTraceCache run touched the trace table: %+v len=%d", c.Stats, c.TraceLen())
	}
}

// TestTraceDecodeFaultMidReplay: transient decode faults land mid-replay
// (the per-entry trust check). Each fault must invalidate the traces
// through the faulted RIP, the fault ledger must reconcile, replay must
// resume on later traps (traces rebuild after the drop), and the output
// must stay bit-exact with an uninjected ablated run.
func TestTraceDecodeFaultMidReplay(t *testing.T) {
	want := newRig(t, buildTraceLoop(t, 400), traceLoopCfg(true), true).run(t)

	inj := faultinject.New(7)
	inj.Arm(faultinject.SiteDecode, faultinject.Rule{Every: 23})
	cfg := traceLoopCfg(false)
	cfg.Inject = inj
	r := newRig(t, buildTraceLoop(t, 400), cfg, true)
	if got := r.run(t); got != want {
		t.Fatalf("decode faults changed output:\n got:  %q\n want: %q", got, want)
	}
	c := r.rt.Cache()
	if c.Stats.TraceInvalidations == 0 {
		t.Error("decode faults never invalidated a trace")
	}
	if c.Stats.TraceHits == 0 {
		t.Error("replay never resumed after invalidations")
	}
	if !r.rt.Tel.FaultsReconciled() {
		t.Errorf("fault ledger broken: %s", r.rt.Tel.FaultLine())
	}
	if !inj.Reconciled() {
		t.Errorf("injector ledger broken:\n%s", inj.Report())
	}
}

// TestTraceAltOpFaultDegrades: an every-check alt.op fault drains each
// trap's retry budget, so the ladder degrades every operation to native
// IEEE — from the replay fast path too. Each degradation distrusts the
// instruction and must drop the traces through it; with Boxed IEEE the
// degraded result is bit-exact, so stdout is unchanged.
func TestTraceAltOpFaultDegrades(t *testing.T) {
	want := newRig(t, buildTraceLoop(t, 200), traceLoopCfg(true), true).run(t)

	inj := faultinject.New(3)
	inj.Arm(faultinject.SiteAltOp, faultinject.Rule{Every: 1})
	cfg := traceLoopCfg(false)
	cfg.Inject = inj
	r := newRig(t, buildTraceLoop(t, 200), cfg, true)
	if got := r.run(t); got != want {
		t.Fatalf("alt.op degradation changed output:\n got:  %q\n want: %q", got, want)
	}
	if r.rt.Degradations == 0 {
		t.Fatal("every-check alt.op faults produced no degradations")
	}
	c := r.rt.Cache()
	if c.Stats.TraceInvalidations == 0 {
		t.Error("alt.op degradations never invalidated a trace")
	}
	if c.Stats.TraceHits == 0 {
		t.Error("trace table never engaged under alt.op faults")
	}
	if r.rt.Detached() {
		t.Error("degradable alt.op faults escalated to detach")
	}
	if !r.rt.Tel.FaultsReconciled() {
		t.Errorf("fault ledger broken: %s", r.rt.Tel.FaultLine())
	}
	if tot := inj.Totals(); tot.Fatal != 0 {
		t.Errorf("degradable faults resolved as fatal: retried=%d degraded=%d fatal=%d",
			tot.Retried, tot.Degraded, tot.Fatal)
	}
}

// TestForkClonesTraces: the child's trace table is a snapshot of the
// parent's at fork time — same contents, independent afterwards.
func TestForkClonesTraces(t *testing.T) {
	b := asm.NewBuilder("forktrace")
	b.RoDouble("one", 1)
	b.RoDouble("three", 3)
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RCX), 50)
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM0), "three")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM1), "one")
	b.RMData(isa.DIVSD, isa.XMM(isa.XMM1), "three")
	b.Label("loop")
	b.RM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
	b.MI(isa.SUB64I, isa.GPR(isa.RCX), 1)
	b.Branch(isa.JNE, "loop")
	b.Op0(isa.INT3) // fork marker, after the trace table is warm
	b.CallImport("print_f64")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 60)
	b.Op0(isa.SYSCALL)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	parent := newRig(t, img, fpvmrt.Config{Alt: alt.NewBoxedIEEE(), Seq: true, Short: true}, true)
	var child *kernel.Process
	var childRT *fpvmrt.Runtime
	parent.p.BreakpointHook = func(uc *kernel.Ucontext) bool {
		if child != nil {
			return true
		}
		parent.p.M.CPU = uc.CPU
		child = parent.p.Fork("child")
		childRT = parent.rt.ForkChild(child)
		return true
	}
	if err := parent.p.Run(0); err != nil {
		t.Fatalf("parent: %v", err)
	}
	if child == nil {
		t.Fatal("fork marker never hit")
	}
	if err := child.Run(0); err != nil {
		t.Fatalf("child: %v", err)
	}

	pLen := parent.rt.Cache().TraceLen()
	cLen := childRT.Cache().TraceLen()
	if pLen == 0 {
		t.Fatal("parent built no traces before fork")
	}
	if cLen != pLen {
		t.Errorf("child trace table has %d traces, parent had %d at fork", cLen, pLen)
	}
	if parent.rt.Cache() == childRT.Cache() {
		t.Error("trace cache shared across fork")
	}
	// Independence: invalidating everything in the child must not disturb
	// the parent's table.
	for childRT.Cache().TraceLen() > 0 {
		for _, tr := range childRT.Cache().Traces() {
			childRT.Cache().InvalidateTraces(tr.Start)
			break
		}
	}
	if parent.rt.Cache().TraceLen() != pLen {
		t.Error("invalidating the child's traces drained the parent's")
	}
	if !strings.HasPrefix(parent.p.Stdout.String(), "17") {
		t.Errorf("parent printed %q, want 17.0 (51/3)", parent.p.Stdout.String())
	}
}
