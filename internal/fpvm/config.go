// Package fpvm implements the floating point virtual machine runtime: the
// trap handlers that decode, bind and emulate instructions against an
// alternative arithmetic system (§2), NaN-box promotion/demotion (§2.2),
// garbage collection of boxes (§2.5), instruction sequence emulation (§4),
// trap short-circuiting via the kernel module (§3), and kernel-bypass
// correctness instrumentation (§5).
package fpvm

import (
	"fpvm/internal/alt"
	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/isa"
)

// Config selects the acceleration techniques, mirroring the paper's
// evaluation axes (NONE / SEQ / SHORT / SEQ SHORT, plus magic traps and
// wraps).
type Config struct {
	// Alt is the alternative arithmetic system (required).
	Alt alt.System

	// Seq enables instruction sequence emulation (§4): emulate multiple
	// instructions per trap, amortizing delivery costs.
	Seq bool

	// Short enables trap short-circuiting (§3): register with the kernel
	// module's /dev/fpvm instead of receiving SIGFPE. If the module is
	// not loaded, FPVM falls back to signals (and reports it).
	Short bool

	// MagicTraps uses call-based kernel-bypass correctness traps (§5.2)
	// instead of int3+SIGTRAP. This takes effect in the binary patcher;
	// the runtime serves whichever mechanism the binary carries.
	MagicTraps bool

	// MagicWraps uses symbol-table rewriting for foreign function
	// wrappers (§5.3) instead of LD_PRELOAD-order forward wrapping. The
	// two have identical runtime cost; the knob exists for the ablation.
	MagicWraps bool

	// GCThreshold is the live-box count that triggers collection
	// (0 = default 4096).
	GCThreshold int

	// CacheCapacity bounds the decode/trace cache (0 = 64K entries).
	CacheCapacity int

	// SeqLimit caps instructions emulated per trap (0 = 256).
	SeqLimit int

	// Profile enables sequence statistics collection (§6.3).
	Profile bool

	// FutureHW enables the paper's §8 future-work hardware model:
	// user-level FP trap delivery that bypasses the kernel entirely
	// (~150 cycles round trip instead of signals or even the kernel
	// module) and hardware NaN-box escape detection that makes binary
	// patching for memory-escape correctness unnecessary. "In a fully
	// virtualizable architecture, the corr and fcall costs would not
	// exist" (§2.6).
	FutureHW bool

	// EmulateAll disables the §4.2 condition-(2) termination rule:
	// emulatable instructions are emulated even when no source operand is
	// NaN-boxed. This is the "unwarranted emulation" ablation of the
	// §4.1 tradeoff discussion — longer sequences, but software-emulating
	// work the hardware would have done faster.
	EmulateAll bool

	// Inject, when set, arms fault injection at the pipeline's named
	// sites (alt.op, heap.alloc, decode, kernel.deliver, corr.trap,
	// gc.scan, ckpt.save, ckpt.restore). Injected faults are fed to the
	// recovery ladder: bounded retry, checkpoint rollback, degradation
	// to native IEEE, or clean detach.
	Inject *faultinject.Injector

	// MaxLiveBoxes is a hard cap on the live box population (0 =
	// unbounded). At the cap the runtime forces a collection; if the heap
	// is still full, the result is stored as a plain IEEE double (a
	// degradation) instead of growing without bound.
	MaxLiveBoxes int

	// RetryBudget is the per-site, per-trap transient retry budget of the
	// recovery ladder (0 = default 3). When a site's budget is exhausted
	// within one trap, further faults there degrade instead of retrying.
	RetryBudget int

	// RetryBackoffCycles, when > 0, makes the retry rung wait before
	// re-attempting: the k-th retry of a site within one trap charges
	// ~RetryBackoffCycles·2^k virtual cycles ±25% deterministic jitter
	// (seeded by the running retry ordinal, so identical runs charge
	// identical delays). Spreads retry storms out instead of re-executing
	// immediately in lockstep. 0 (the default) retries immediately,
	// preserving the pre-backoff cycle accounting.
	RetryBackoffCycles uint64

	// TrapCycleBudget is the per-trap virtual-cycle watchdog: sequence
	// emulation that charges more than this many cycles within a single
	// trap is aborted (the sequence ends early; the guest simply traps
	// again). 0 = default 10M cycles.
	TrapCycleBudget uint64

	// NoTraceCache disables the L2 trace table (ablation): every trap
	// re-walks the sequence through the per-instruction decode cache. With
	// Seq off the trace cache is inert regardless (single-instruction traps
	// have no sequence to cache).
	NoTraceCache bool

	// JITThreshold is the replay count (Trace.Hits) at which a hot trace
	// is promoted from interpreted replay to a tier-1 compiled closure
	// chain (jit.go). 0 = default 8. Promotion requires the trace cache
	// (Seq && !NoTraceCache); both tiers are cycle-identical, so the
	// threshold never changes guest-visible behavior.
	JITThreshold int

	// NoJIT disables tier-1 trace compilation (ablation, mirroring
	// NoTraceCache): hot traces keep replaying through the interpreted
	// loop.
	NoJIT bool

	// CheckpointInterval enables the rollback supervisor: every N traps
	// the runtime captures a crash-consistent snapshot of the full VM
	// (registers, memory, box heap, thread table), and fatal-rung
	// failures restore the last snapshot and re-execute with the
	// distrusted RIP quarantined instead of detaching. 0 (the default)
	// disables checkpointing; the ladder then behaves as before.
	CheckpointInterval int

	// MaxRollbacks bounds rollback attempts per run (0 = default 8).
	// When exhausted, fatal failures fall through to the degrade/detach
	// rungs as if checkpointing were disabled.
	MaxRollbacks int

	// Observer, when set, receives a NaN-box-normalized architectural
	// state snapshot at every handled FP trap boundary (see TrapState).
	// Observation is passive — no cycles are charged — so an observed run
	// is cycle-identical to an unobserved one. Used by the differential
	// conformance oracle (internal/oracle); nil in production configs.
	Observer func(*TrapState)

	// Shared, when set, backs this VM's private decode/trace cache with a
	// fleet-wide concurrency-safe store: local misses adopt published
	// decodes and trace snapshots, local decodes and trace builds publish
	// back. All VMs on one SharedCache must run the same program image
	// (enforced by SharedCache.Bind). Nil keeps the cache fully private.
	Shared *dcache.SharedCache
}

// DefaultRetryBudget is the per-site per-trap retry budget when
// Config.RetryBudget is 0.
const DefaultRetryBudget = 3

// DefaultTrapCycleBudget is the watchdog budget when Config.TrapCycleBudget
// is 0 — far above any legitimate trap (a full 256-instruction MPFR
// sequence stays under ~3M cycles).
const DefaultTrapCycleBudget = 10_000_000

// DefaultMaxRollbacks bounds rollback attempts when Config.MaxRollbacks
// is 0 and checkpointing is enabled. Combined with exponential snapshot
// interval backoff it guarantees a run cannot live-lock re-executing the
// same faulty region.
const DefaultMaxRollbacks = 8

// DefaultJITThreshold is the tier-1 promotion threshold when
// Config.JITThreshold is 0: a trace compiles once it has replayed this
// many times. High enough that one-shot sequences never pay compilation,
// low enough that loop bodies promote within the first few iterations.
const DefaultJITThreshold = 8

// ConfigName renders the paper's config label (NONE/SEQ/SHORT/SEQ SHORT).
func (c Config) ConfigName() string {
	switch {
	case c.Seq && c.Short:
		return "SEQ SHORT"
	case c.Seq:
		return "SEQ"
	case c.Short:
		return "SHORT"
	}
	return "NONE"
}

// CostParams prices the runtime's own work in virtual cycles. Defaults
// approximate the paper's Figure 1 components on its testbed.
type CostParams struct {
	DecacheHit  uint64 // decode cache hit lookup
	Decode      uint64 // full decode on a cache miss (Capstone-equivalent)
	BindArith   uint64 // operand binding for arithmetic
	BindMove    uint64 // operand binding for moves
	EmulArith   uint64 // emulator dispatch for arithmetic (excl. altmath)
	EmulMove    uint64 // emulator dispatch for moves
	CorrHandler uint64 // demotion handler body for correctness events
	WrapCall    uint64 // wrapper stub overhead per foreign call
	MagicCall   uint64 // double-indirect call+return of a magic trap
	TraceHit    uint64 // L2 trace-table lookup on trap entry (once per replay)
	TraceInst   uint64 // per-instruction replay step (vs DecacheHit per walked inst)
	CkptSave    uint64 // checkpoint snapshot capture (amortized per save)
	CkptRestore uint64 // checkpoint restore during a rollback
}

// DefaultCosts returns the testbed-calibrated runtime costs.
func DefaultCosts() CostParams {
	return CostParams{
		DecacheHit:  25,
		Decode:      950,
		BindArith:   70,
		BindMove:    25,
		EmulArith:   90,
		EmulMove:    35,
		CorrHandler: 120,
		WrapCall:    90,
		MagicCall:   50,
		TraceHit:    30,
		TraceInst:   6,
		CkptSave:    1500,
		CkptRestore: 3000,
	}
}

// emulClass classifies how the runtime treats an opcode during (sequence)
// emulation.
type emulClass uint8

const (
	classUnsupported emulClass = iota // condition (1) terminator
	classMove                         // supported data movement
	classScalarArith                  // addsd .. maxsd, sqrtsd
	classPackedArith
	classScalarCmp // cmpxxsd
	classPackedCmp
	classCompare // ucomisd/comisd (flags)
	classCvtToInt
	classCvtFromInt
	classRound
)

// classify maps an opcode to its emulation class. The supported move set
// mirrors §4.2: scalar and full-vector moves, GPR moves, and GPR<->XMM
// transfers are supported (~40 opcodes); partial-vector moves (movhpd,
// movlpd), shuffles/unpacks, push/pop, lea, all integer ALU and all
// control flow are not, and terminate sequences.
func classify(op isa.Op) emulClass {
	switch op {
	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.SQRTSD, isa.MINSD, isa.MAXSD:
		return classScalarArith
	case isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD, isa.SQRTPD, isa.MINPD, isa.MAXPD:
		return classPackedArith
	case isa.CMPEQSD, isa.CMPLTSD, isa.CMPLESD, isa.CMPUNORDSD,
		isa.CMPNEQSD, isa.CMPNLTSD, isa.CMPNLESD, isa.CMPORDSD:
		return classScalarCmp
	case isa.CMPEQPD, isa.CMPLTPD, isa.CMPLEPD, isa.CMPNEQPD:
		return classPackedCmp
	case isa.UCOMISD, isa.COMISD:
		return classCompare
	case isa.CVTSD2SI, isa.CVTTSD2SI:
		return classCvtToInt
	case isa.CVTSI2SD:
		return classCvtFromInt
	case isa.ROUNDSD:
		return classRound

	case isa.MOV64RR, isa.MOV64RM, isa.MOV64MR, isa.MOV64RI,
		isa.MOV32RR, isa.MOV32RM, isa.MOV32MR, isa.MOV32RI,
		isa.MOV16RM, isa.MOV16MR, isa.MOV8RM, isa.MOV8MR,
		isa.MOVZX8, isa.MOVZX16, isa.MOVSX8, isa.MOVSX16, isa.MOVSXD,
		isa.MOVSDXX, isa.MOVSDXM, isa.MOVSDMX,
		isa.MOVAPDXX, isa.MOVAPDXM, isa.MOVAPDMX,
		isa.MOVUPDXM, isa.MOVUPDMX,
		isa.MOVQXG, isa.MOVQGX, isa.MOVQXM, isa.MOVQMX,
		isa.MOVDXG, isa.MOVDGX,
		isa.MOVDQAXX, isa.MOVDQAXM, isa.MOVDQAMX,
		isa.MOVDQUXM, isa.MOVDQUMX,
		isa.MOVDDUP:
		return classMove
	}
	return classUnsupported
}
