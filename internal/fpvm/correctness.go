package fpvm

import (
	"fpvm/internal/faultinject"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/telemetry"
)

// Correctness instrumentation (§2.6, §5): before an integer instruction
// that may consume a floating point value through memory or a register,
// the patcher inserts either an int3 (traditional trap, SIGTRAP path) or a
// call to the magic trampoline (kernel-bypass path). Both land here, where
// FPVM demotes any NaN-boxed values the instruction would observe.

// handleCorrectnessTrap is the SIGTRAP handler: RIP points just past the
// int3, i.e. at the patched instruction.
func (r *Runtime) handleCorrectnessTrap(uc *kernel.Ucontext) {
	if r.detached {
		// After detach every box has been demoted in place, so the
		// patched instruction observes plain IEEE bits; nothing to do.
		r.Aborted++
		r.Tel.AbortedTraps++
		return
	}
	c := r.p.K.Costs
	// The whole delegation round-trip is correctness overhead (hw +
	// signal delivery + sigreturn), per the paper's corr accounting.
	r.Tel.Add(telemetry.Corr, c.HWDispatch+c.SignalDeliver+c.Sigreturn)
	r.Tel.CorrEvents++
	r.charge(telemetry.Corr, r.Costs.CorrHandler)
	r.curUC, r.curRIP = uc, uc.CPU.RIP
	defer func() {
		if pv := recover(); pv != nil {
			r.recoverTrapPanic(uc, pv)
		}
		r.curUC, r.curEntry, r.phase = nil, nil, phaseNone
	}()
	if r.corrFaulted(uc.CPU.RIP, &uc.CPU) {
		return
	}
	if err := r.demoteForInstruction(&uc.CPU, uc.CPU.RIP); err != nil {
		r.fatal(uc, uc.CPU.RIP, err)
	}
}

// corrFaulted runs the corr.trap fault site for a correctness event at
// site. When the retry budget runs out the handler degrades to the
// conservative full sweep: every boxed word the patched instruction could
// possibly observe — all registers and all writable memory — is demoted
// in place. Always safe (boxes decode to their IEEE value), just slow;
// the runtime stays attached. Returns true when the sweep replaced the
// targeted demotion.
func (r *Runtime) corrFaulted(site uint64, cpu *machine.CPU) bool {
	for r.checkFault(faultinject.SiteCorrTrap, site) {
		if !r.retryFault(faultinject.SiteCorrTrap) {
			r.degradeFault(faultinject.SiteCorrTrap)
			r.demoteRoots(cpu)
			r.demoteMemory()
			return true
		}
	}
	return false
}

// magicTrapHandler is the host bridge target reached through the magic
// page pointer: patch site does `call trampoline`; the trampoline does
// `call [magic page + 8]`. Guest stack layout on entry:
//
//	[rsp]   = return address into the trampoline
//	[rsp+8] = return address to the patch site = address of the patched
//	          instruction
func (r *Runtime) magicTrapHandler(p *kernel.Process) error {
	if r.detached {
		r.Aborted++
		r.Tel.AbortedTraps++
		return nil
	}
	r.Tel.CorrEvents++
	r.charge(telemetry.Corr, r.Costs.MagicCall+r.Costs.CorrHandler)
	sp := p.M.CPU.GPR[isa.RSP]
	site, err := p.M.Mem.ReadUint64(sp + 8)
	if err != nil {
		return err
	}
	// No ucontext here (the magic path mutates the machine CPU directly),
	// so a fatal-severity fault cannot roll back: the recover routes it
	// down the ladder to detach.
	r.curRIP = site
	defer func() {
		if pv := recover(); pv != nil {
			r.recoverTrapPanic(nil, pv)
		}
		r.curUC, r.curEntry, r.phase = nil, nil, phaseNone
	}()
	if r.corrFaulted(site, &p.M.CPU) {
		return nil
	}
	// The patched instruction will execute after both returns pop their
	// frames, i.e. with rsp 16 bytes higher than it is here. Stack-relative
	// operands must be resolved against that rsp — this is why the paper's
	// trampoline "manages the stack frame so that ... the wrapper
	// function's stack frame does not exist" (§5.3 applies the same care).
	p.M.CPU.GPR[isa.RSP] += 16
	err = r.demoteForInstruction(&p.M.CPU, site)
	p.M.CPU.GPR[isa.RSP] -= 16
	return err
}

// handleBoxEscape serves the future-work hardware box-escape event: the
// CPU caught an integer load about to observe a NaN-boxed word at addr;
// demote it in place and resume (the load re-executes against plain
// bits). No binary patching, no kernel, no signal — the whole §5 apparatus
// reduced to one demotion.
func (r *Runtime) handleBoxEscape(uc *kernel.Ucontext, addr uint64) error {
	r.Tel.CorrEvents++
	r.charge(telemetry.Corr, r.Costs.CorrHandler/2)
	bits, err := r.m.Mem.ReadUint64(addr)
	if err != nil {
		return err
	}
	if r.boxedLive(bits) {
		return r.m.Mem.WriteUint64(addr, r.demoteTo(bits, telemetry.Corr))
	}
	// A pattern collision with an application NaN: nothing to demote; the
	// hardware's resume waiver lets the load complete with the raw bits.
	return nil
}

// demoteForInstruction decodes the patched instruction and demotes, in
// place, every NaN-boxed value it could observe in an integer context:
// the 8-byte block behind a memory source, and any GPR source registers
// (boxed bits flow into GPRs through movq and friends).
func (r *Runtime) demoteForInstruction(cpu *machine.CPU, addr uint64) error {
	in, err := r.m.FetchDecode(addr)
	if err != nil {
		return err
	}

	demoteGPR := func(reg isa.Reg) {
		if r.boxedLive(cpu.GPR[reg]) {
			cpu.GPR[reg] = r.demoteTo(cpu.GPR[reg], telemetry.Corr)
		}
	}

	// Memory source: demote the containing 8-byte block (the profiler
	// marks at 8-byte granularity, §5.1).
	if m, ok := in.MemOperand(); ok {
		ea := r.eaCPU(cpu, &in, m)
		block := ea &^ 7
		bits, err := r.m.Mem.ReadUint64(block)
		if err == nil && r.boxedLive(bits) {
			if werr := r.m.Mem.WriteUint64(block, r.demoteTo(bits, telemetry.Corr)); werr != nil {
				return werr
			}
		}
	}

	// Register sources of integer instructions.
	regCls, rmCls := in.Op.RegClasses()
	if regCls == isa.ClassGPR && in.RegOp.Kind == isa.KindGPR {
		demoteGPR(in.RegOp.Reg)
	}
	if rmCls == isa.ClassGPR && in.RMOp.Kind == isa.KindGPR {
		demoteGPR(in.RMOp.Reg)
	}
	return nil
}

// demoteTo is demote with the altmath cost attributed to a specific
// category (correctness demotions count as corr/fcall, not altmath).
func (r *Runtime) demoteTo(bits uint64, cat telemetry.Category) uint64 {
	h, ok := nanboxHandle(bits)
	if !ok {
		return bits
	}
	v, live := r.alloc.Get(h)
	if !live {
		return bits
	}
	f, cost := r.Cfg.Alt.Demote(v)
	if bits>>63 != 0 {
		f = -f // sign-flipped box decodes as the negated value
	}
	r.Demotions++
	r.charge(cat, cost)
	return bits64(f)
}

// eaCPU computes an effective address against an arbitrary CPU snapshot.
func (r *Runtime) eaCPU(cpu *machine.CPU, in *isa.Inst, o isa.Operand) uint64 {
	if o.RIPRel {
		return in.Addr + uint64(in.Len) + uint64(int64(o.Disp))
	}
	var a uint64
	if o.Base != isa.NoReg {
		a = cpu.GPR[o.Base]
	}
	if o.Index != isa.NoReg {
		a += cpu.GPR[o.Index] * uint64(o.Scale)
	}
	return a + uint64(int64(o.Disp))
}
