package fpvm

// Trace replay (§4.2 software trace cache, L2). A trap at a known
// sequence start replays the cached pre-decoded sequence straight
// through: no per-instruction decode-cache lookups, no re-decode, no
// re-disassembly for profiling. Scalar arithmetic additionally takes an
// allocation-free fast path when the alt system implements
// alt.FloatSystem — operands resolve, compute and box as raw float64s,
// skipping every float64→interface conversion of the generic walk (the
// dominant allocation source on the trap path).
//
// Replay re-evaluates each instruction's boxedness against live state, so
// results are identical to the walk; it only *ends* where the recorded
// trace ends. When a mid-trace instruction's operands stop being boxed
// (the §4.2 divergence case), replay exits to the slow path at that
// instruction and counts a divergence. Faults injected during replay ride
// the same recovery ladder as the walk, and any fault that distrusts an
// instruction kills the traces containing it (see degradeFault).

import (
	"fmt"
	"math"

	"fpvm/internal/dcache"
	"fpvm/internal/faultinject"
	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/telemetry"
)

// replayTrace replays tr against uc. It returns true when the trap was
// fully handled (including fatal detach); false when replay declined
// before emulating anything — the caller then falls through to the
// per-instruction walk for this trap.
func (r *Runtime) replayTrace(uc *kernel.Ucontext, tr *dcache.Trace, trapStart uint64) bool {
	// Tier-1 promotion: once the trace is hot enough it replays through
	// its compiled body instead of this interpreted loop (jit.go). Both
	// tiers charge identical virtual cycles, so the choice is invisible
	// to the guest, the watchdog and the oracle.
	if body := r.promoteTrace(tr); body != nil {
		return r.replayCompiled(uc, tr, body, trapStart)
	}

	r.charge(telemetry.Decache, r.Costs.TraceHit)

	count := 0
	reason := tr.Reason
	rip := tr.Start

	for i, e := range tr.Entries {
		rip = e.Inst.Addr
		r.curRIP = rip

		// The walk checks the decode fault site once per instruction
		// (decodeAt); replay mirrors that with a trust check on the cached
		// entry. A fault here models a corrupted trace/decode entry: the
		// address is invalidated (killing this trace), and the sequence
		// ends so the next trap re-decodes through the walk.
		if r.checkFault(faultinject.SiteDecode, rip) {
			r.cache.Invalidate(rip)
			if !r.retryFault(faultinject.SiteDecode) {
				if i == 0 {
					r.failTrap(uc, rip, faultinject.SiteDecode, fmt.Errorf("decode: %w", errDecodeFault))
					return true
				}
				r.degradeFault(faultinject.SiteDecode)
			}
			if i == 0 {
				return false // nothing emulated yet: re-walk this trap
			}
			reason = dcache.TermUnsupported
			break
		}

		r.charge(telemetry.Decache, r.Costs.TraceInst)
		r.curEntry, r.phase = e, phaseInst
		status, err := r.replayInst(uc, e, count == 0)
		r.curEntry, r.phase = nil, phaseNone
		if err != nil {
			if count > 0 {
				// Mid-sequence bind/memory error: degrade by ending the
				// sequence (the hardware re-runs the instruction) and drop
				// the traces through it — its recorded shape is distrusted.
				r.Degradations++
				r.cache.InvalidateTraces(rip)
				reason = dcache.TermUnsupported
				break
			}
			r.failTrap(uc, rip, "", err)
			return true
		}
		if status == emNotWarranted {
			// Boxedness diverged from the recorded shape: exit to the slow
			// path at this instruction. The trace stays cached — operands
			// oscillating between boxed and unboxed is normal (§4.2), and
			// the prefix replay was still profitable.
			tr.Divergences++
			r.Tel.TraceDivergences++
			reason = dcache.TermNoBoxedSource
			break
		}
		count++
		r.Tel.EmulatedInsts++
		r.Tel.ReplayedInsts++
		rip = e.Inst.Addr + uint64(e.Inst.Len)

		if r.m.Cycles-trapStart > r.trapCycleBudget() {
			r.WatchdogAborts++
			r.Tel.WatchdogAborts++
			if r.tryRollback(uc, tr.Start) {
				return true
			}
			reason = dcache.TermLimit
			break
		}
	}

	if count == 0 {
		// Defensive: cannot happen (the first entry is always warranted and
		// its errors detach above), but never claim an empty trap handled.
		return false
	}

	if count == len(tr.Entries) {
		// Full replay: resume at the end address recorded when the trace
		// was built, keeping EndRIP authoritative over the per-entry
		// recomputation (which only early exits need).
		rip = tr.EndRIP
	}

	tr.Hits++
	uc.CPU.RIP = rip

	if r.Profile != nil {
		// Disassembly is captured once at trace build when the builder
		// profiles. A trace built with profiling off (or adopted from a
		// non-profiling VM through the shared cache) carries nil Insts:
		// derive them lazily from the pre-decoded entries, once. This is
		// profiling metadata only, so it charges no virtual cycles. Record
		// ignores the strings for already-known starts.
		tr.EnsureDisassembly(func(rip uint64) (string, bool) {
			in, err := r.m.FetchDecode(rip)
			if err != nil {
				return "", false
			}
			return in.String(), true
		})
		r.Profile.Record(tr.Start, count, reason, tr.Insts, tr.Term)
	}

	r.maybeGC(uc)
	return true
}

// replayInst emulates one pre-decoded instruction on the replay path,
// dispatching on the class cached at decode time. Scalar arithmetic gets
// the allocation-free float fast path; every other class shares the
// generic emulator (which itself reuses the cached class).
func (r *Runtime) replayInst(uc *kernel.Ucontext, e *dcache.Entry, first bool) (emStatus, error) {
	if emulClass(e.Class) == classScalarArith && r.flt != nil {
		return r.replayScalarArith(uc, e, first)
	}
	return r.emulateInst(uc, e, first)
}

// replayScalarArith is the pre-bound scalar arithmetic step: operands were
// bound at trace build (register numbers and EA shape live in the cached
// Inst), so binding reduces to register-file reads — with a direct
// register-register path that skips the operand switch entirely — and the
// arithmetic runs through the float fast path when every operand resolves
// as a float64. Semantics, virtual-cycle charges and fault handling are
// identical to the walk's classScalarArith case.
func (r *Runtime) replayScalarArith(uc *kernel.Ucontext, e *dcache.Entry, first bool) (emStatus, error) {
	in := &e.Inst
	r.charge(telemetry.Bind, r.Costs.BindArith)
	var srcBits uint64
	if in.RMOp.Kind == isa.KindXMM {
		srcBits = uc.CPU.XMM[in.RMOp.Reg][0] // reg-reg: no operand dispatch
	} else {
		var err error
		srcBits, err = r.readOperand(uc, in, in.RMOp, 8)
		if err != nil {
			return emOK, err
		}
	}
	dstBits := uc.CPU.XMM[in.RegOp.Reg][0]
	srcBoxed := r.boxedLive(srcBits)
	dstBoxed := in.Op != isa.SQRTSD && r.boxedLive(dstBits)
	if !first && !r.Cfg.EmulateAll && !srcBoxed && !dstBoxed {
		return emNotWarranted, nil
	}
	r.charge(telemetry.Emul, r.Costs.EmulArith)
	if !r.floatResolvable(srcBits) || (in.Op != isa.SQRTSD && !r.floatResolvable(dstBits)) {
		// A live box holds a non-float alt value: generic path.
		uc.CPU.XMM[in.RegOp.Reg][0] = r.altScalar(in.Op, dstBits, srcBits)
		return emOK, nil
	}
	uc.CPU.XMM[in.RegOp.Reg][0] = r.altScalarFloat(in.Op, dstBits, srcBits)
	return emOK, nil
}

// floatResolvable reports whether resolveFloat can handle bits without
// falling back: true unless bits names a live box holding a non-float alt
// value. (For BoxedIEEE every live box is a float64; other FloatSystem
// implementations could mix representations.)
func (r *Runtime) floatResolvable(bits uint64) bool {
	h, ok := isBox(bits)
	if !ok {
		return true // promotes
	}
	_, isF, live := r.alloc.GetFloat(h)
	if !live || isF {
		return true
	}
	v, _ := r.alloc.Get(h)
	_, isFloat := v.(float64)
	return isFloat
}

// resolveFloat is resolve without interface boxing: a live box yields its
// float64 (negated when the pattern's sign bit is flipped), anything else
// promotes. Counters and cycle charges mirror resolve exactly.
func (r *Runtime) resolveFloat(bits uint64) (float64, bool) {
	if h, ok := isBox(bits); ok {
		f, isF, live := r.alloc.GetFloat(h)
		if live {
			if !isF {
				// Pre-checked by floatResolvable: a non-float slot here can
				// only hold a float64-typed Value. Reading through Get
				// returns the existing interface — no allocation.
				v, _ := r.alloc.Get(h)
				f = v.(float64)
			}
			if bits>>63 != 0 {
				nf, cost := r.flt.NegFloat(f)
				r.charge(telemetry.Altmath, cost)
				return nf, true
			}
			return f, true
		}
	}
	f, cost := r.flt.PromoteFloat(f64(bits))
	r.Promotions++
	r.charge(telemetry.Altmath, cost)
	return f, false
}

// altScalarFloat is altScalar on the float fast path: same fault ladder,
// same NaN-with-unboxed-operands raw-bits rule, same costs — but no
// alt.Value ever exists, so the operation allocates nothing.
func (r *Runtime) altScalarFloat(op isa.Op, dstBits, srcBits uint64) uint64 {
	return r.altScalarFloatOp(scalarToFPOp(op), dstBits, srcBits)
}

// altScalarFloatOp is altScalarFloat with the fpmath op already mapped —
// the tier-1 JIT resolves it once at trace compile time instead of on
// every execution.
func (r *Runtime) altScalarFloatOp(fop fpmath.Op, dstBits, srcBits uint64) uint64 {
	for r.checkFault(faultinject.SiteAltOp, r.curRIP) {
		if !r.retryFault(faultinject.SiteAltOp) {
			r.degradeFault(faultinject.SiteAltOp)
			return r.nativeScalarOp(fop, dstBits, srcBits)
		}
	}
	var a, b float64
	var aBoxed, bBoxed bool
	if fop == fpmath.OpSqrt {
		a, aBoxed = r.resolveFloat(srcBits)
	} else {
		a, aBoxed = r.resolveFloat(dstBits)
		b, bBoxed = r.resolveFloat(srcBits)
	}
	res, cost := r.flt.OpFloat(fop, a, b)
	r.charge(telemetry.Altmath, cost)
	if math.IsNaN(res) && !aBoxed && !bBoxed {
		// Ordinary operands produced a real NaN: application-visible NaN
		// bits, never one of our boxes (§2.3) — same rule as altScalar.
		if fop == fpmath.OpSqrt {
			return fpmath.Bits(fpmath.Eval(fop, f64(srcBits), 0).Value)
		}
		return fpmath.Bits(fpmath.Eval(fop, f64(dstBits), f64(srcBits)).Value)
	}
	return r.boxFloat(res)
}

// boxFloat is box for a float64 result: the value lands in a
// float-specialized heap slot with no interface conversion. The sign
// invariant (boxes store magnitudes, the sign lives in bit 63 of the
// pattern) and the fault/degradation ladder match box exactly.
func (r *Runtime) boxFloat(f float64) uint64 {
	for r.checkFault(faultinject.SiteHeapAlloc, r.curRIP) {
		if !r.retryFault(faultinject.SiteHeapAlloc) {
			r.degradeFault(faultinject.SiteHeapAlloc)
			return r.plainBitsFloat(f)
		}
	}
	for i := 0; i < r.Cfg.Alt.TempsPerOp(); i++ {
		r.alloc.Alloc(nil)
	}
	var sign uint64
	if math.Signbit(f) {
		nf, cost := r.flt.NegFloat(f)
		r.charge(telemetry.Altmath, cost)
		f = nf
		sign = 1 << 63
	}
	return r.boxOrDegradeFloat(f, sign)
}

// plainBitsFloat is plainBits on the float path (degraded storage).
func (r *Runtime) plainBitsFloat(f float64) uint64 {
	df, cost := r.flt.DemoteFloat(f)
	r.charge(telemetry.Altmath, cost)
	return bits64(df)
}

// boxOrDegradeFloat is boxOrDegrade for a float-specialized slot.
func (r *Runtime) boxOrDegradeFloat(f float64, sign uint64) uint64 {
	if r.alloc.AtCap() {
		r.forceGC()
	}
	h, err := r.alloc.TryAllocFloat(f)
	if err != nil { // heap.ErrHeapFull even after collecting
		r.HeapFullDegrades++
		r.Degradations++
		return r.plainBitsFloat(f) ^ sign
	}
	r.Boxes++
	return boxBits(h) | sign
}
