package fpvm

import "testing"

// The retry rung's backoff schedule must be exponential, jittered and
// exactly reproducible: same (base, attempt, seq) → same delay, delays
// inside [0.75·d, 1.25·d), and distinct retry ordinals de-synchronized
// so a storm of simultaneous retries spreads out.
func TestBackoffDelaySchedule(t *testing.T) {
	const base = 1000

	for attempt := 0; attempt <= 12; attempt++ {
		eff := attempt
		if eff > 10 {
			eff = 10 // doubling cap
		}
		d := uint64(base) << uint(eff)
		lo, hi := d-d/4, d+d/4
		for seq := uint64(1); seq < 64; seq++ {
			got := backoffDelay(base, attempt, seq)
			if got < lo || got >= hi {
				t.Fatalf("backoffDelay(%d, %d, %d) = %d outside jitter window [%d, %d)",
					base, attempt, seq, got, lo, hi)
			}
			if again := backoffDelay(base, attempt, seq); again != got {
				t.Fatalf("backoffDelay not deterministic: %d then %d", got, again)
			}
		}
	}

	// Exponential growth: each attempt's window is disjoint from and above
	// the previous one (hi(k) = 1.25·base·2^k ≤ lo(k+1) = 1.5·base·2^k).
	for attempt := 0; attempt < 10; attempt++ {
		a := backoffDelay(base, attempt, 7)
		b := backoffDelay(base, attempt+1, 7)
		if b <= a {
			t.Fatalf("attempt %d delay %d not above attempt %d delay %d", attempt+1, b, attempt, a)
		}
	}

	// Jitter spreads a storm: 32 retries at the same attempt index but
	// distinct ordinals must not all collapse onto one delay.
	seen := make(map[uint64]bool)
	for seq := uint64(1); seq <= 32; seq++ {
		seen[backoffDelay(base, 2, seq)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("32 jittered delays collapsed onto %d distinct values", len(seen))
	}

	// A base too small to jitter still delays.
	if got := backoffDelay(1, 0, 1); got != 1 {
		t.Fatalf("backoffDelay(1,0,1) = %d, want the un-jittered base", got)
	}
}
