package isa

import (
	"encoding/binary"
	"fmt"
)

// DecodeError describes a failure to decode an instruction.
type DecodeError struct {
	Addr uint64
	Msg  string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: decode at %#x: %s", e.Addr, e.Msg)
}

// Decode decodes one instruction from code, which must start at the
// instruction boundary. addr is the virtual address of code[0] (used for
// Inst.Addr and RIP-relative/branch math). The returned instruction's Len
// reports how many bytes were consumed.
//
// Decode is intentionally a multi-step parse (prefix, escape, opcode,
// modrm, sib, displacement, immediate) mirroring the cost structure that
// motivates FPVM's decode cache.
func Decode(code []byte, addr uint64) (Inst, error) {
	var in Inst
	in.Addr = addr
	p := 0
	need := func(n int) error {
		if p+n > len(code) {
			return &DecodeError{addr, "truncated instruction"}
		}
		return nil
	}

	// Optional REX prefix.
	var rex byte
	if err := need(1); err != nil {
		return in, err
	}
	if code[p]&0xF0 == rexBase {
		rex = code[p]
		p++
	}

	// Opcode (with optional escape).
	if err := need(1); err != nil {
		return in, err
	}
	var op Op
	if code[p] == escByte {
		p++
		if err := need(1); err != nil {
			return in, err
		}
		op = page1[code[p]]
	} else {
		op = page0[code[p]]
	}
	p++
	if op == INVALID {
		return in, &DecodeError{addr, fmt.Sprintf("unknown opcode byte %#x", code[p-1])}
	}
	in.Op = op
	info := &opTab[op]
	if rex != 0 && info.form == FormNone {
		return in, &DecodeError{addr, "REX prefix on prefix-less form"}
	}

	switch info.form {
	case FormNone:
		// done
	case FormRel:
		if err := need(4); err != nil {
			return in, err
		}
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[p:])))
		p += 4
	default:
		var err error
		p, err = decodeModRM(&in, info, code, p, rex, addr)
		if err != nil {
			return in, err
		}
		switch info.imm {
		case 1:
			if err := need(1); err != nil {
				return in, err
			}
			in.Imm = int64(int8(code[p]))
			p++
		case 4:
			if err := need(4); err != nil {
				return in, err
			}
			in.Imm = int64(int32(binary.LittleEndian.Uint32(code[p:])))
			p += 4
		case 8:
			if err := need(8); err != nil {
				return in, err
			}
			in.Imm = int64(binary.LittleEndian.Uint64(code[p:]))
			p += 8
		}
	}
	in.Len = uint8(p)
	return in, nil
}

func decodeModRM(in *Inst, info *opInfo, code []byte, p int, rex byte, addr uint64) (int, error) {
	if p >= len(code) {
		return p, &DecodeError{addr, "truncated modrm"}
	}
	modrm := code[p]
	p++
	mode := modrm >> 6
	regBits := Reg(modrm >> 3 & 7)
	rmBits := Reg(modrm & 7)

	if rex&rexR != 0 {
		regBits |= 8
	}

	// reg-field operand (unused for FormMI/FormM but harmlessly decoded;
	// encoders emit 0 there).
	regCls, rmCls := info.cls[0], info.cls[1]
	switch info.form {
	case FormMI, FormM:
		// single r/m operand; class is cls[0]
		rmCls = info.cls[0]
		if regBits&7 != 0 {
			return p, &DecodeError{addr, "nonzero reg extension field"}
		}
	default:
		if regCls == ClassXMM {
			in.RegOp = XMM(regBits)
		} else {
			in.RegOp = GPR(regBits)
		}
	}

	if mode == 3 {
		if rex&rexB != 0 {
			rmBits |= 8
		}
		if info.flags&flagMemAlways != 0 {
			return p, &DecodeError{addr, "register r/m on memory-only instruction"}
		}
		if rmCls == ClassXMM {
			in.RMOp = XMM(rmBits)
		} else {
			in.RMOp = GPR(rmBits)
		}
		return p, nil
	}

	// Memory operand.
	mem := Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1}
	dispBytes := 0
	switch mode {
	case 1:
		dispBytes = 1
	case 2:
		dispBytes = 4
	}

	switch {
	case mode == 0 && rmBits == 0b101:
		// RIP-relative + disp32.
		mem.RIPRel = true
		dispBytes = 4
	case rmBits == 0b100:
		// SIB byte follows.
		if p >= len(code) {
			return p, &DecodeError{addr, "truncated sib"}
		}
		sib := code[p]
		p++
		scaleBits := sib >> 6
		idxBits := Reg(sib >> 3 & 7)
		baseBits := Reg(sib & 7)
		if rex&rexX != 0 {
			idxBits |= 8
		}
		if idxBits != 0b100 { // 100 without REX.X means "no index"
			mem.Index = idxBits
			mem.Scale = 1 << scaleBits
		}
		if mode == 0 && baseBits == 0b101 && rex&rexB == 0 {
			// Absolute: no base, disp32.
			dispBytes = 4
		} else {
			if rex&rexB != 0 {
				baseBits |= 8
			}
			mem.Base = baseBits
		}
	default:
		b := rmBits
		if rex&rexB != 0 {
			b |= 8
		}
		mem.Base = b
	}

	switch dispBytes {
	case 1:
		if p >= len(code) {
			return p, &DecodeError{addr, "truncated disp8"}
		}
		mem.Disp = int32(int8(code[p]))
		p++
	case 4:
		if p+4 > len(code) {
			return p, &DecodeError{addr, "truncated disp32"}
		}
		mem.Disp = int32(binary.LittleEndian.Uint32(code[p:]))
		p += 4
	}
	in.RMOp = mem
	return p, nil
}
