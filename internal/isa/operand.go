package isa

import "fmt"

// OperandKind discriminates Operand.
type OperandKind uint8

const (
	KindNone OperandKind = iota
	KindGPR              // 64-bit general purpose register
	KindXMM              // 128-bit XMM register
	KindMem              // memory reference
	KindImm              // immediate
)

// Operand is a decoded instruction operand. Memory operands follow the x64
// addressing model: [base + index*scale + disp] or RIP-relative
// [rip + disp].
type Operand struct {
	Kind   OperandKind
	Reg    Reg   // KindGPR / KindXMM
	Base   Reg   // KindMem; NoReg if absent
	Index  Reg   // KindMem; NoReg if absent
	Scale  uint8 // KindMem; 1, 2, 4 or 8
	Disp   int32 // KindMem displacement
	RIPRel bool  // KindMem; [rip + Disp]
	Imm    int64 // KindImm
}

// GPR constructs a general purpose register operand.
func GPR(r Reg) Operand { return Operand{Kind: KindGPR, Reg: r} }

// XMM constructs an XMM register operand.
func XMM(r Reg) Operand { return Operand{Kind: KindXMM, Reg: r} }

// Imm constructs an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// Mem constructs a [base + disp] memory operand.
func Mem(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: NoReg, Scale: 1, Disp: disp}
}

// MemIdx constructs a [base + index*scale + disp] memory operand.
func MemIdx(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemAbs constructs an absolute [disp32] memory operand.
func MemAbs(disp int32) Operand {
	return Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Disp: disp}
}

// MemRIP constructs a RIP-relative memory operand.
func MemRIP(disp int32) Operand {
	return Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Disp: disp, RIPRel: true}
}

// IsMem reports whether the operand is a memory reference.
func (o Operand) IsMem() bool { return o.Kind == KindMem }

// IsReg reports whether the operand is a (GPR or XMM) register.
func (o Operand) IsReg() bool { return o.Kind == KindGPR || o.Kind == KindXMM }

// String renders the operand in Intel-ish syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "(none)"
	case KindGPR:
		return GPRName(o.Reg)
	case KindXMM:
		return XMMName(o.Reg)
	case KindImm:
		return fmt.Sprintf("%#x", o.Imm)
	case KindMem:
		s := "["
		if o.RIPRel {
			s += "rip"
		} else if o.Base != NoReg {
			s += GPRName(o.Base)
		}
		if o.Index != NoReg {
			if len(s) > 1 {
				s += " + "
			}
			s += fmt.Sprintf("%s*%d", GPRName(o.Index), o.Scale)
		}
		if o.Disp != 0 || len(s) == 1 {
			if o.Disp >= 0 && len(s) > 1 {
				s += fmt.Sprintf(" + %#x", o.Disp)
			} else if o.Disp < 0 && len(s) > 1 {
				s += fmt.Sprintf(" - %#x", -int64(o.Disp))
			} else {
				s += fmt.Sprintf("%#x", uint32(o.Disp))
			}
		}
		return s + "]"
	}
	return "(bad operand)"
}

// Inst is a decoded instruction. RegOp is the modrm reg-field operand and
// RMOp the r/m-field operand; their dst/src roles depend on the form (see
// Dst, Src, Src2).
type Inst struct {
	Op    Op
	RegOp Operand
	RMOp  Operand
	Imm   int64  // immediate or rel32 displacement
	Addr  uint64 // address the instruction was decoded from
	Len   uint8  // encoded length in bytes
}

// Dst returns the destination operand (KindNone for branches and
// compare-only instructions such as cmp/test/ucomisd... which still update
// flags).
func (in *Inst) Dst() Operand {
	switch in.Op.Form() {
	case FormRM, FormRMI:
		return in.RegOp
	case FormMR, FormMI, FormM:
		return in.RMOp
	}
	return Operand{}
}

// Src returns the primary source operand.
func (in *Inst) Src() Operand {
	switch in.Op.Form() {
	case FormRM, FormRMI:
		return in.RMOp
	case FormMR:
		return in.RegOp
	case FormMI, FormRel:
		return Imm(in.Imm)
	case FormM:
		return in.RMOp
	}
	return Operand{}
}

// BranchTarget returns the target address of a FormRel control transfer.
func (in *Inst) BranchTarget() uint64 {
	return in.Addr + uint64(in.Len) + uint64(in.Imm)
}

// MemOperand returns the memory operand of the instruction, if any.
func (in *Inst) MemOperand() (Operand, bool) {
	if in.RMOp.Kind == KindMem {
		return in.RMOp, true
	}
	return Operand{}, false
}

// widthKeyword returns the Intel-syntax pointer-size keyword for a memory
// access width in bytes.
func widthKeyword(n int) string {
	switch n {
	case 1:
		return "byte ptr "
	case 2:
		return "word ptr "
	case 4:
		return "dword ptr "
	case 8:
		return "qword ptr "
	case 16:
		return "xmmword ptr "
	}
	return ""
}

// operandStr renders o, annotating memory operands with the instruction's
// access width (as the paper's Figure 7 traces do: "qword ptr [rip+...]").
func (in *Inst) operandStr(o Operand) string {
	if o.Kind == KindMem {
		return widthKeyword(in.Op.MemBytes()) + o.String()
	}
	return o.String()
}

// String disassembles the instruction.
func (in *Inst) String() string {
	info := &opTab[in.Op]
	switch info.form {
	case FormNone:
		return info.name
	case FormRel:
		return fmt.Sprintf("%s %#x", info.name, in.BranchTarget())
	case FormM:
		return fmt.Sprintf("%s %s", info.name, in.operandStr(in.RMOp))
	case FormRM:
		return fmt.Sprintf("%s %s, %s", info.name, in.operandStr(in.RegOp), in.operandStr(in.RMOp))
	case FormMR:
		return fmt.Sprintf("%s %s, %s", info.name, in.operandStr(in.RMOp), in.operandStr(in.RegOp))
	case FormMI:
		return fmt.Sprintf("%s %s, %#x", info.name, in.operandStr(in.RMOp), in.Imm)
	case FormRMI:
		return fmt.Sprintf("%s %s, %s, %#x", info.name, in.operandStr(in.RegOp), in.operandStr(in.RMOp), in.Imm)
	}
	return "(bad inst)"
}
