package isa

// Instruction construction helpers used by the assembler, compiler and
// binary rewriter. They fill only the fields the encoder consults.

// MakeRM builds a FormRM/FormMR instruction (reg-field operand, r/m
// operand).
func MakeRM(op Op, reg, rm Operand) Inst {
	return Inst{Op: op, RegOp: reg, RMOp: rm}
}

// MakeMI builds a FormMI instruction (r/m operand, immediate).
func MakeMI(op Op, rm Operand, imm int64) Inst {
	return Inst{Op: op, RMOp: rm, Imm: imm}
}

// MakeM builds a FormM instruction (single r/m operand).
func MakeM(op Op, rm Operand) Inst {
	return Inst{Op: op, RMOp: rm}
}

// MakeRMI builds a FormRMI instruction.
func MakeRMI(op Op, reg, rm Operand, imm int64) Inst {
	return Inst{Op: op, RegOp: reg, RMOp: rm, Imm: imm}
}

// MakeRel builds a FormRel instruction with a raw displacement (the
// assembler patches label targets later).
func MakeRel(op Op, disp int64) Inst {
	return Inst{Op: op, Imm: disp}
}

// MakeNullary builds a FormNone instruction.
func MakeNullary(op Op) Inst { return Inst{Op: op} }
