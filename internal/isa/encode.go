package isa

import (
	"encoding/binary"
	"fmt"
)

// The binary encoding follows the x64 scheme closely so that decode is a
// genuinely variable-length, multi-step process (which is why FPVM's decode
// cache matters):
//
//	[REX]? [0x0F]? opcode [modrm [sib] [disp8|disp32]]? [imm8|imm32|imm64]?
//
// REX is 0x40|R<<2|X<<1|B and is emitted only when a register number >= 8
// appears, so common encodings stay short. modrm/sib semantics mirror x64:
//
//	mode 0: [rm]; rm=100 -> SIB; rm=101 -> [rip+disp32]
//	mode 1: [rm+disp8];  rm=100 -> SIB+disp8
//	mode 2: [rm+disp32]; rm=100 -> SIB+disp32
//	mode 3: register direct
//	SIB: scale<<6|index<<3|base; index=100 (no REX.X) -> none;
//	     mode 0 and base=101 (no REX.B) -> absolute disp32, no base
const (
	escByte = 0x0F
	rexBase = 0x40
	rexB    = 1 << 0
	rexX    = 1 << 1
	rexR    = 1 << 2
)

// MaxInstLen is the maximum encoded instruction length in bytes.
const MaxInstLen = 16

// ErrEncode wraps encoding failures.
type EncodeError struct {
	Op  Op
	Msg string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %s: %s", e.Op, e.Msg)
}

// AppendEncode appends the encoding of inst to dst and returns the extended
// slice. Only Op, RegOp, RMOp and Imm are consulted.
func AppendEncode(dst []byte, in *Inst) ([]byte, error) {
	info := &opTab[in.Op]
	if in.Op == INVALID || in.Op >= NumOps || info.name == "" {
		return dst, &EncodeError{in.Op, "unknown opcode"}
	}

	switch info.form {
	case FormNone:
		return appendOpcode(dst, info), nil

	case FormRel:
		dst = appendOpcode(dst, info)
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil

	case FormRM, FormMR, FormRMI:
		if err := checkRegOperand(in.Op, in.RegOp, info.cls[0]); err != nil {
			return dst, err
		}
		if err := checkRMOperand(in.Op, in.RMOp, info.cls[1]); err != nil {
			return dst, err
		}
		body, err := encodeModRM(in.RegOp.Reg, in.RMOp)
		if err != nil {
			return dst, &EncodeError{in.Op, err.Error()}
		}
		dst = appendBody(dst, info, body)
		return appendImm(dst, info, in.Imm), nil

	case FormMI, FormM:
		if err := checkRMOperand(in.Op, in.RMOp, info.cls[0]); err != nil {
			return dst, err
		}
		body, err := encodeModRM(0, in.RMOp)
		if err != nil {
			return dst, &EncodeError{in.Op, err.Error()}
		}
		dst = appendBody(dst, info, body)
		return appendImm(dst, info, in.Imm), nil
	}
	return dst, &EncodeError{in.Op, "unknown form"}
}

// Encode encodes inst into a fresh byte slice.
func Encode(in *Inst) ([]byte, error) {
	return AppendEncode(make([]byte, 0, MaxInstLen), in)
}

// EncodedLen returns the encoded length of inst without allocating.
func EncodedLen(in *Inst) (int, error) {
	b, err := AppendEncode(make([]byte, 0, MaxInstLen), in)
	return len(b), err
}

func appendOpcode(dst []byte, info *opInfo) []byte {
	if info.escape {
		dst = append(dst, escByte)
	}
	return append(dst, info.opc)
}

// modrmBody is the encoded modrm/sib/disp byte group plus the REX bits it
// requires.
type modrmBody struct {
	rex   byte
	bytes []byte
}

func appendBody(dst []byte, info *opInfo, body modrmBody) []byte {
	if body.rex != 0 {
		dst = append(dst, rexBase|body.rex)
	}
	dst = appendOpcode(dst, info)
	return append(dst, body.bytes...)
}

func appendImm(dst []byte, info *opInfo, imm int64) []byte {
	switch info.imm {
	case 0:
	case 1:
		dst = append(dst, byte(imm))
	case 4:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(imm)))
	case 8:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(imm))
	}
	return dst
}

func checkRegOperand(op Op, o Operand, cls RegClass) error {
	want := KindGPR
	if cls == ClassXMM {
		want = KindXMM
	}
	if o.Kind != want {
		return &EncodeError{op, fmt.Sprintf("reg operand %s has wrong kind", o)}
	}
	if o.Reg >= 16 {
		return &EncodeError{op, "register number out of range"}
	}
	return nil
}

func checkRMOperand(op Op, o Operand, cls RegClass) error {
	if o.Kind == KindMem {
		if o.Index != NoReg {
			if o.Index == RSP {
				return &EncodeError{op, "rsp cannot be an index register"}
			}
			switch o.Scale {
			case 1, 2, 4, 8:
			default:
				return &EncodeError{op, fmt.Sprintf("bad scale %d", o.Scale)}
			}
		}
		return nil
	}
	if op.RequiresMem() {
		return &EncodeError{op, "r/m operand must be memory"}
	}
	want := KindGPR
	if cls == ClassXMM {
		want = KindXMM
	}
	if o.Kind != want {
		return &EncodeError{op, fmt.Sprintf("r/m operand %s has wrong kind", o)}
	}
	if o.Reg >= 16 {
		return &EncodeError{op, "register number out of range"}
	}
	return nil
}

func encodeModRM(reg Reg, rm Operand) (modrmBody, error) {
	var body modrmBody
	if reg >= 8 {
		body.rex |= rexR
	}
	regBits := byte(reg & 7)

	if rm.Kind != KindMem {
		if rm.Reg >= 8 {
			body.rex |= rexB
		}
		body.bytes = append(body.bytes, 3<<6|regBits<<3|byte(rm.Reg&7))
		return body, nil
	}

	// Memory operand.
	if rm.RIPRel {
		body.bytes = append(body.bytes, 0<<6|regBits<<3|0b101)
		body.bytes = binary.LittleEndian.AppendUint32(body.bytes, uint32(rm.Disp))
		return body, nil
	}

	needSIB := rm.Index != NoReg || rm.Base == NoReg || rm.Base&7 == 0b100
	disp := rm.Disp

	var mode byte
	switch {
	case rm.Base == NoReg:
		mode = 0 // absolute via SIB base=101
	case disp == 0 && rm.Base&7 != 0b101:
		mode = 0
	case disp >= -128 && disp <= 127:
		mode = 1
	default:
		mode = 2
	}

	if !needSIB {
		if rm.Base >= 8 {
			body.rex |= rexB
		}
		body.bytes = append(body.bytes, mode<<6|regBits<<3|byte(rm.Base&7))
		switch mode {
		case 1:
			body.bytes = append(body.bytes, byte(disp))
		case 2:
			body.bytes = binary.LittleEndian.AppendUint32(body.bytes, uint32(disp))
		}
		return body, nil
	}

	// SIB path.
	var sib byte
	switch rm.Scale {
	case 0, 1:
		sib = 0 << 6
	case 2:
		sib = 1 << 6
	case 4:
		sib = 2 << 6
	case 8:
		sib = 3 << 6
	default:
		return body, fmt.Errorf("bad scale %d", rm.Scale)
	}
	if rm.Index == NoReg {
		sib |= 0b100 << 3 // no index
	} else {
		if rm.Index == RSP {
			return body, fmt.Errorf("rsp cannot be an index register")
		}
		if rm.Index >= 8 {
			body.rex |= rexX
		}
		sib |= byte(rm.Index&7) << 3
	}
	if rm.Base == NoReg {
		// mode 0, base=101: absolute disp32.
		mode = 0
		sib |= 0b101
		body.bytes = append(body.bytes, mode<<6|regBits<<3|0b100, sib)
		body.bytes = binary.LittleEndian.AppendUint32(body.bytes, uint32(disp))
		return body, nil
	}
	if mode == 0 && rm.Base&7 == 0b101 {
		mode = 1 // [rbp/r13 + index] needs an explicit disp
	}
	if rm.Base >= 8 {
		body.rex |= rexB
	}
	sib |= byte(rm.Base & 7)
	body.bytes = append(body.bytes, mode<<6|regBits<<3|0b100, sib)
	switch mode {
	case 1:
		body.bytes = append(body.bytes, byte(disp))
	case 2:
		body.bytes = binary.LittleEndian.AppendUint32(body.bytes, uint32(disp))
	}
	return body, nil
}
