package isa

// Op identifies an instruction opcode. The inventory mirrors the subset of
// x64 that the paper's FPVM implementation decodes, binds and emulates:
// SSE2 scalar/packed double arithmetic, the cmpxx predicate family, about
// forty move forms across the GPR and XMM files, integer ALU, and the
// control flow needed by compiled numeric kernels.
type Op uint16

const (
	INVALID Op = iota

	// Control / system.
	NOP
	HLT
	INT3
	SYSCALL
	RET
	CALL  // call rel32
	CALLR // call [r/m]
	JMP   // jmp rel32
	JMPR  // jmp [r/m]

	// Conditional branches (rel32). Condition codes follow x64 semantics
	// over the simulated RFLAGS.
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	JP
	JNP

	// GPR moves.
	MOV64RR // mov r64, r64
	MOV64RM // mov r64, [mem]
	MOV64MR // mov [mem], r64
	MOV64RI // mov r64, imm64
	MOV32RR
	MOV32RM
	MOV32MR
	MOV32RI
	MOV16RM
	MOV16MR
	MOV8RM
	MOV8MR
	MOVZX8  // movzx r64, r/m8
	MOVZX16 // movzx r64, r/m16
	MOVSX8  // movsx r64, r/m8
	MOVSX16 // movsx r64, r/m16
	MOVSXD  // movsxd r64, r/m32
	LEA
	PUSH
	POP
	XCHG64

	// Integer ALU (reg, r/m).
	ADD64
	SUB64
	IMUL64
	AND64
	OR64
	XOR64
	CMP64
	TEST64

	// Integer ALU (r/m, imm32).
	ADD64I
	SUB64I
	CMP64I
	AND64I
	OR64I
	XOR64I
	IMUL64I // imul r64, r/m64, imm32

	// Shifts.
	SHL64I // shl r/m, imm8
	SHR64I
	SAR64I
	SHL64CL
	SHR64CL
	SAR64CL

	// Integer unary (r/m).
	INC64
	DEC64
	NEG64
	NOT64

	// Scalar double arithmetic (xmm, xmm/m64).
	ADDSD
	SUBSD
	MULSD
	DIVSD
	SQRTSD
	MINSD
	MAXSD
	UCOMISD
	COMISD

	// Scalar double compare-predicate family (xmm, xmm/m64) -> mask.
	CMPEQSD
	CMPLTSD
	CMPLESD
	CMPUNORDSD
	CMPNEQSD
	CMPNLTSD
	CMPNLESD
	CMPORDSD

	// Packed double arithmetic (xmm, xmm/m128).
	ADDPD
	SUBPD
	MULPD
	DIVPD
	SQRTPD
	MINPD
	MAXPD
	CMPEQPD
	CMPLTPD
	CMPLEPD
	CMPNEQPD

	// Conversions.
	CVTSI2SD // xmm <- r/m64 (signed int)
	CVTSD2SI // r64 <- xmm/m64 (rounded)
	CVTTSD2SI
	ROUNDSD // xmm, xmm/m64, imm8

	// XMM moves: scalar.
	MOVSDXX // movsd xmm, xmm (merge low lane)
	MOVSDXM // movsd xmm, m64 (zero high lane)
	MOVSDMX // movsd m64, xmm
	// XMM moves: packed aligned/unaligned.
	MOVAPDXX
	MOVAPDXM
	MOVAPDMX
	MOVUPDXM
	MOVUPDMX
	// XMM <-> GPR.
	MOVQXG // movq xmm, r64
	MOVQGX // movq r64, xmm
	MOVQXM // movq xmm, m64 (zero high)
	MOVQMX // movq m64, xmm
	MOVDXG // movd xmm, r32
	MOVDGX // movd r32, xmm
	// Partial vector moves.
	MOVHPDXM // movhpd xmm, m64 (high lane only)
	MOVHPDMX
	MOVLPDXM
	MOVLPDMX
	MOVDDUP
	// Integer vector moves.
	MOVDQAXX
	MOVDQAXM
	MOVDQAMX
	MOVDQUXM
	MOVDQUMX
	// Shuffles / logicals.
	UNPCKLPD
	UNPCKHPD
	SHUFPD // xmm, xmm/m128, imm8
	PXOR
	XORPD
	ANDPD
	ORPD
	ANDNPD

	NumOps
)

// EncForm describes how an instruction's operands are laid out after the
// opcode bytes.
type EncForm uint8

const (
	FormNone EncForm = iota // no operands
	FormRM                  // modrm: op1 = reg field, op2 = r/m
	FormMR                  // modrm: op1 = r/m (dst), op2 = reg field
	FormMI                  // modrm: op1 = r/m, immediate follows
	FormM                   // modrm: single r/m operand
	FormRMI                 // modrm: op1 = reg, op2 = r/m, imm follows
	FormRel                 // rel32 branch target
)

// RegClass selects which register file an encoded register number refers to.
type RegClass uint8

const (
	ClassNone RegClass = iota
	ClassGPR
	ClassXMM
)

type opFlags uint16

const (
	flagFPScalar opFlags = 1 << iota // scalar double arithmetic/compare
	flagFPPacked                     // packed double arithmetic/compare
	flagMove                         // data movement
	flagBranch                       // unconditional control transfer
	flagCondBranch
	flagCall
	flagRet
	flagIntALU
	flagCvt       // int<->fp conversion
	flagCmpPred   // cmpxx predicate family
	flagReadsFP   // consumes float64 lanes arithmetically (can fault)
	flagXMMDest   // writes an XMM register/lane
	flagSystem    // hlt/int3/syscall
	flagMemAlways // r/m must be memory (lea, movhpd...)
)

type opInfo struct {
	name   string
	escape bool // true: 0x0F page
	opc    byte
	form   EncForm
	cls    [2]RegClass // register class of op1, op2 (modrm reg / rm)
	imm    uint8       // immediate size in bytes (0,1,4,8)
	mem    uint8       // memory access width when r/m is memory
	lat    uint8       // native latency in simulated cycles
	flags  opFlags
}

var opTab = [NumOps]opInfo{
	INVALID: {name: "(invalid)"},

	NOP:     {name: "nop", opc: 0x01, form: FormNone, lat: 1},
	HLT:     {name: "hlt", opc: 0x02, form: FormNone, lat: 1, flags: flagSystem},
	INT3:    {name: "int3", opc: 0x03, form: FormNone, lat: 1, flags: flagSystem},
	SYSCALL: {name: "syscall", opc: 0x04, form: FormNone, lat: 1, flags: flagSystem},
	RET:     {name: "ret", opc: 0x05, form: FormNone, lat: 3, flags: flagRet},
	CALL:    {name: "call", opc: 0x06, form: FormRel, imm: 4, lat: 3, flags: flagCall},
	CALLR:   {name: "call", opc: 0x07, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 4, flags: flagCall},
	JMP:     {name: "jmp", opc: 0x08, form: FormRel, imm: 4, lat: 2, flags: flagBranch},
	JMPR:    {name: "jmp", opc: 0x09, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 3, flags: flagBranch},

	JE:  {name: "je", opc: 0x10, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JNE: {name: "jne", opc: 0x11, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JL:  {name: "jl", opc: 0x12, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JLE: {name: "jle", opc: 0x13, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JG:  {name: "jg", opc: 0x14, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JGE: {name: "jge", opc: 0x15, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JB:  {name: "jb", opc: 0x16, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JBE: {name: "jbe", opc: 0x17, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JA:  {name: "ja", opc: 0x18, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JAE: {name: "jae", opc: 0x19, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JS:  {name: "js", opc: 0x1A, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JNS: {name: "jns", opc: 0x1B, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JP:  {name: "jp", opc: 0x1C, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},
	JNP: {name: "jnp", opc: 0x1D, form: FormRel, imm: 4, lat: 1, flags: flagCondBranch},

	MOV64RR: {name: "mov", opc: 0x20, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, lat: 1, flags: flagMove},
	MOV64RM: {name: "mov", opc: 0x21, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 4, flags: flagMove},
	MOV64MR: {name: "mov", opc: 0x22, form: FormMR, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 2, flags: flagMove},
	MOV64RI: {name: "mov", opc: 0x23, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 8, mem: 8, lat: 1, flags: flagMove},
	MOV32RR: {name: "mov", opc: 0x24, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, lat: 1, flags: flagMove},
	MOV32RM: {name: "mov", opc: 0x25, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 4, lat: 4, flags: flagMove},
	MOV32MR: {name: "mov", opc: 0x26, form: FormMR, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 4, lat: 2, flags: flagMove},
	MOV32RI: {name: "mov", opc: 0x27, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 4, lat: 1, flags: flagMove},
	MOV16RM: {name: "mov", opc: 0x28, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 2, lat: 4, flags: flagMove},
	MOV16MR: {name: "mov", opc: 0x29, form: FormMR, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 2, lat: 2, flags: flagMove},
	MOV8RM:  {name: "mov", opc: 0x2A, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 1, lat: 4, flags: flagMove},
	MOV8MR:  {name: "mov", opc: 0x2B, form: FormMR, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 1, lat: 2, flags: flagMove},
	MOVZX8:  {name: "movzx", opc: 0x2C, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 1, lat: 4, flags: flagMove},
	MOVZX16: {name: "movzx", opc: 0x2D, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 2, lat: 4, flags: flagMove},
	MOVSX8:  {name: "movsx", opc: 0x2E, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 1, lat: 4, flags: flagMove},
	MOVSX16: {name: "movsx", opc: 0x2F, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 2, lat: 4, flags: flagMove},
	MOVSXD:  {name: "movsxd", opc: 0x30, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 4, lat: 4, flags: flagMove},
	LEA:     {name: "lea", opc: 0x31, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, lat: 1, flags: flagMove | flagMemAlways},
	PUSH:    {name: "push", opc: 0x32, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 2, flags: flagMove},
	POP:     {name: "pop", opc: 0x33, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 2, flags: flagMove},
	XCHG64:  {name: "xchg", opc: 0x34, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 2, flags: flagMove},

	ADD64:  {name: "add", opc: 0x60, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	SUB64:  {name: "sub", opc: 0x61, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	IMUL64: {name: "imul", opc: 0x62, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 3, flags: flagIntALU},
	AND64:  {name: "and", opc: 0x63, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	OR64:   {name: "or", opc: 0x64, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	XOR64:  {name: "xor", opc: 0x65, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	CMP64:  {name: "cmp", opc: 0x66, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	TEST64: {name: "test", opc: 0x67, form: FormRM, cls: [2]RegClass{ClassGPR, ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},

	ADD64I:  {name: "add", opc: 0x68, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	SUB64I:  {name: "sub", opc: 0x69, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	CMP64I:  {name: "cmp", opc: 0x6A, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	AND64I:  {name: "and", opc: 0x6B, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	OR64I:   {name: "or", opc: 0x6C, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	XOR64I:  {name: "xor", opc: 0x6D, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 4, mem: 8, lat: 1, flags: flagIntALU},
	IMUL64I: {name: "imul", opc: 0x6E, form: FormRMI, cls: [2]RegClass{ClassGPR, ClassGPR}, imm: 4, mem: 8, lat: 3, flags: flagIntALU},

	SHL64I:  {name: "shl", opc: 0x70, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 1, mem: 8, lat: 1, flags: flagIntALU},
	SHR64I:  {name: "shr", opc: 0x71, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 1, mem: 8, lat: 1, flags: flagIntALU},
	SAR64I:  {name: "sar", opc: 0x72, form: FormMI, cls: [2]RegClass{ClassGPR}, imm: 1, mem: 8, lat: 1, flags: flagIntALU},
	SHL64CL: {name: "shl", opc: 0x73, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 2, flags: flagIntALU},
	SHR64CL: {name: "shr", opc: 0x74, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 2, flags: flagIntALU},
	SAR64CL: {name: "sar", opc: 0x75, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 2, flags: flagIntALU},

	INC64: {name: "inc", opc: 0x78, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	DEC64: {name: "dec", opc: 0x79, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	NEG64: {name: "neg", opc: 0x7A, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},
	NOT64: {name: "not", opc: 0x7B, form: FormM, cls: [2]RegClass{ClassGPR}, mem: 8, lat: 1, flags: flagIntALU},

	ADDSD:   {name: "addsd", escape: true, opc: 0x10, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	SUBSD:   {name: "subsd", escape: true, opc: 0x11, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	MULSD:   {name: "mulsd", escape: true, opc: 0x12, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 5, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	DIVSD:   {name: "divsd", escape: true, opc: 0x13, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 13, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	SQRTSD:  {name: "sqrtsd", escape: true, opc: 0x14, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 20, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	MINSD:   {name: "minsd", escape: true, opc: 0x15, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	MAXSD:   {name: "maxsd", escape: true, opc: 0x16, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagReadsFP | flagXMMDest},
	UCOMISD: {name: "ucomisd", escape: true, opc: 0x17, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagFPScalar | flagReadsFP},
	COMISD:  {name: "comisd", escape: true, opc: 0x18, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagFPScalar | flagReadsFP},

	CMPEQSD:    {name: "cmpeqsd", escape: true, opc: 0x19, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPLTSD:    {name: "cmpltsd", escape: true, opc: 0x1A, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPLESD:    {name: "cmplesd", escape: true, opc: 0x1B, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPUNORDSD: {name: "cmpunordsd", escape: true, opc: 0x1C, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPNEQSD:   {name: "cmpneqsd", escape: true, opc: 0x1D, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPNLTSD:   {name: "cmpnltsd", escape: true, opc: 0x1E, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPNLESD:   {name: "cmpnlesd", escape: true, opc: 0x1F, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPORDSD:   {name: "cmpordsd", escape: true, opc: 0x20, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagFPScalar | flagCmpPred | flagReadsFP | flagXMMDest},

	ADDPD:    {name: "addpd", escape: true, opc: 0x21, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	SUBPD:    {name: "subpd", escape: true, opc: 0x22, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	MULPD:    {name: "mulpd", escape: true, opc: 0x23, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 5, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	DIVPD:    {name: "divpd", escape: true, opc: 0x24, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 13, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	SQRTPD:   {name: "sqrtpd", escape: true, opc: 0x25, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 20, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	MINPD:    {name: "minpd", escape: true, opc: 0x26, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	MAXPD:    {name: "maxpd", escape: true, opc: 0x27, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagReadsFP | flagXMMDest},
	CMPEQPD:  {name: "cmpeqpd", escape: true, opc: 0x28, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPLTPD:  {name: "cmpltpd", escape: true, opc: 0x29, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPLEPD:  {name: "cmplepd", escape: true, opc: 0x2A, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagCmpPred | flagReadsFP | flagXMMDest},
	CMPNEQPD: {name: "cmpneqpd", escape: true, opc: 0x2B, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagFPPacked | flagCmpPred | flagReadsFP | flagXMMDest},

	CVTSI2SD:  {name: "cvtsi2sd", escape: true, opc: 0x30, form: FormRM, cls: [2]RegClass{ClassXMM, ClassGPR}, mem: 8, lat: 4, flags: flagCvt | flagXMMDest},
	CVTSD2SI:  {name: "cvtsd2si", escape: true, opc: 0x31, form: FormRM, cls: [2]RegClass{ClassGPR, ClassXMM}, mem: 8, lat: 4, flags: flagCvt | flagReadsFP},
	CVTTSD2SI: {name: "cvttsd2si", escape: true, opc: 0x32, form: FormRM, cls: [2]RegClass{ClassGPR, ClassXMM}, mem: 8, lat: 4, flags: flagCvt | flagReadsFP},
	ROUNDSD:   {name: "roundsd", escape: true, opc: 0x33, form: FormRMI, cls: [2]RegClass{ClassXMM, ClassXMM}, imm: 1, mem: 8, lat: 6, flags: flagFPScalar | flagReadsFP | flagXMMDest},

	MOVSDXX:  {name: "movsd", escape: true, opc: 0x40, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, lat: 1, flags: flagMove | flagXMMDest},
	MOVSDXM:  {name: "movsd", escape: true, opc: 0x41, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVSDMX:  {name: "movsd", escape: true, opc: 0x42, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagMove | flagMemAlways},
	MOVAPDXX: {name: "movapd", escape: true, opc: 0x43, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, lat: 1, flags: flagMove | flagXMMDest},
	MOVAPDXM: {name: "movapd", escape: true, opc: 0x44, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVAPDMX: {name: "movapd", escape: true, opc: 0x45, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 2, flags: flagMove | flagMemAlways},
	MOVUPDXM: {name: "movupd", escape: true, opc: 0x46, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 5, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVUPDMX: {name: "movupd", escape: true, opc: 0x47, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 3, flags: flagMove | flagMemAlways},
	MOVQXG:   {name: "movq", escape: true, opc: 0x48, form: FormRM, cls: [2]RegClass{ClassXMM, ClassGPR}, lat: 2, flags: flagMove | flagXMMDest},
	MOVQGX:   {name: "movq", escape: true, opc: 0x49, form: FormRM, cls: [2]RegClass{ClassGPR, ClassXMM}, lat: 2, flags: flagMove},
	MOVQXM:   {name: "movq", escape: true, opc: 0x4A, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVQMX:   {name: "movq", escape: true, opc: 0x4B, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagMove | flagMemAlways},
	MOVDXG:   {name: "movd", escape: true, opc: 0x4C, form: FormRM, cls: [2]RegClass{ClassXMM, ClassGPR}, lat: 2, flags: flagMove | flagXMMDest},
	MOVDGX:   {name: "movd", escape: true, opc: 0x4D, form: FormRM, cls: [2]RegClass{ClassGPR, ClassXMM}, lat: 2, flags: flagMove},
	MOVHPDXM: {name: "movhpd", escape: true, opc: 0x4E, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVHPDMX: {name: "movhpd", escape: true, opc: 0x4F, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagMove | flagMemAlways},
	MOVLPDXM: {name: "movlpd", escape: true, opc: 0x50, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVLPDMX: {name: "movlpd", escape: true, opc: 0x51, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagMove | flagMemAlways},
	MOVDDUP:  {name: "movddup", escape: true, opc: 0x52, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 8, lat: 2, flags: flagMove | flagXMMDest},
	MOVDQAXX: {name: "movdqa", escape: true, opc: 0x53, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, lat: 1, flags: flagMove | flagXMMDest},
	MOVDQAXM: {name: "movdqa", escape: true, opc: 0x54, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 4, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVDQAMX: {name: "movdqa", escape: true, opc: 0x55, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 2, flags: flagMove | flagMemAlways},
	MOVDQUXM: {name: "movdqu", escape: true, opc: 0x56, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 5, flags: flagMove | flagXMMDest | flagMemAlways},
	MOVDQUMX: {name: "movdqu", escape: true, opc: 0x57, form: FormMR, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 3, flags: flagMove | flagMemAlways},
	UNPCKLPD: {name: "unpcklpd", escape: true, opc: 0x58, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	UNPCKHPD: {name: "unpckhpd", escape: true, opc: 0x59, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	SHUFPD:   {name: "shufpd", escape: true, opc: 0x5A, form: FormRMI, cls: [2]RegClass{ClassXMM, ClassXMM}, imm: 1, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	PXOR:     {name: "pxor", escape: true, opc: 0x5B, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	XORPD:    {name: "xorpd", escape: true, opc: 0x5C, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	ANDPD:    {name: "andpd", escape: true, opc: 0x5D, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	ORPD:     {name: "orpd", escape: true, opc: 0x5E, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
	ANDNPD:   {name: "andnpd", escape: true, opc: 0x5F, form: FormRM, cls: [2]RegClass{ClassXMM, ClassXMM}, mem: 16, lat: 1, flags: flagMove | flagXMMDest},
}

// Reverse decode tables, built at init and validated for collisions.
var (
	page0 [256]Op
	page1 [256]Op
)

func init() {
	for op := Op(1); op < NumOps; op++ {
		info := &opTab[op]
		if info.name == "" {
			panic("isa: missing opTab entry for op " + op.String())
		}
		if op == INVALID {
			continue
		}
		page := &page0
		if info.escape {
			page = &page1
		} else if info.opc&0xF0 == 0x40 {
			// 0x40-0x4F is the REX prefix range; a page-0 opcode there
			// would be swallowed by prefix detection.
			panic("isa: page-0 opcode in REX range: " + info.name)
		}
		if page[info.opc] != INVALID {
			panic("isa: opcode byte collision: " + info.name + " vs " + page[info.opc].String())
		}
		page[info.opc] = op
	}
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if op < NumOps && opTab[op].name != "" {
		return opTab[op].name
	}
	return "op?"
}

// Name returns the unique constant-style name (mnemonics are shared between
// width variants, names are not).
func (op Op) GoString() string { return op.String() }

// Form returns the operand encoding form of op.
func (op Op) Form() EncForm { return opTab[op].form }

// ImmBytes returns the immediate width in bytes (0 if none).
func (op Op) ImmBytes() int { return int(opTab[op].imm) }

// MemBytes returns the memory access width in bytes when the r/m operand is
// a memory reference.
func (op Op) MemBytes() int { return int(opTab[op].mem) }

// Latency returns the native execution cost of op in simulated cycles.
func (op Op) Latency() uint64 { return uint64(opTab[op].lat) }

// RegClasses returns the register classes of the two modrm-encoded
// operands (reg field, r/m field).
func (op Op) RegClasses() (RegClass, RegClass) { return opTab[op].cls[0], opTab[op].cls[1] }

// IsFPScalar reports whether op is scalar double arithmetic/compare.
func (op Op) IsFPScalar() bool { return opTab[op].flags&flagFPScalar != 0 }

// IsFPPacked reports whether op is packed double arithmetic/compare.
func (op Op) IsFPPacked() bool { return opTab[op].flags&flagFPPacked != 0 }

// IsFPArith reports whether op performs FP arithmetic that can raise an
// SSE exception (#XF) — the instructions FPVM virtualizes.
func (op Op) IsFPArith() bool { return opTab[op].flags&flagReadsFP != 0 }

// IsMove reports whether op only moves data.
func (op Op) IsMove() bool { return opTab[op].flags&flagMove != 0 }

// IsBranch reports whether op unconditionally transfers control.
func (op Op) IsBranch() bool { return opTab[op].flags&(flagBranch|flagRet) != 0 }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return opTab[op].flags&flagCondBranch != 0 }

// IsCall reports whether op is a call.
func (op Op) IsCall() bool { return opTab[op].flags&flagCall != 0 }

// IsRet reports whether op is a return.
func (op Op) IsRet() bool { return opTab[op].flags&flagRet != 0 }

// IsControlFlow reports whether op alters sequential control flow.
func (op Op) IsControlFlow() bool {
	return opTab[op].flags&(flagBranch|flagCondBranch|flagCall|flagRet) != 0
}

// IsCmpPredicate reports whether op belongs to the cmpxx predicate family.
func (op Op) IsCmpPredicate() bool { return opTab[op].flags&flagCmpPred != 0 }

// IsCvt reports whether op converts between integer and floating point.
func (op Op) IsCvt() bool { return opTab[op].flags&flagCvt != 0 }

// IsIntALU reports whether op is integer arithmetic/logic.
func (op Op) IsIntALU() bool { return opTab[op].flags&flagIntALU != 0 }

// IsSystem reports whether op is hlt/int3/syscall.
func (op Op) IsSystem() bool { return opTab[op].flags&flagSystem != 0 }

// WritesXMM reports whether op writes an XMM register destination.
func (op Op) WritesXMM() bool { return opTab[op].flags&flagXMMDest != 0 }

// RequiresMem reports whether the r/m operand must be a memory reference.
func (op Op) RequiresMem() bool { return opTab[op].flags&flagMemAlways != 0 }
