package isa

import (
	"math/rand"
	"strings"
	"testing"
)

// randOperandFor builds a random operand valid for the given class / memory
// permission.
func randOperandFor(r *rand.Rand, cls RegClass, memOK, memOnly bool) Operand {
	if memOnly || (memOK && r.Intn(2) == 0) {
		// Random memory operand shapes.
		switch r.Intn(5) {
		case 0:
			return MemRIP(int32(r.Int63()))
		case 1:
			return MemAbs(int32(r.Int63()) & 0x7FFFFFF0)
		case 2:
			return Mem(Reg(r.Intn(16)), int32(int8(r.Int())))
		case 3:
			return Mem(Reg(r.Intn(16)), int32(r.Int31())-1<<30)
		default:
			idx := Reg(r.Intn(16))
			for idx == RSP {
				idx = Reg(r.Intn(16))
			}
			scale := uint8(1 << r.Intn(4))
			return MemIdx(Reg(r.Intn(16)), idx, scale, int32(r.Int31())-1<<30)
		}
	}
	if cls == ClassXMM {
		return XMM(Reg(r.Intn(16)))
	}
	return GPR(Reg(r.Intn(16)))
}

// randInst builds a random valid instruction for op.
func randInst(r *rand.Rand, op Op) Inst {
	info := opTab[op]
	var in Inst
	in.Op = op
	switch info.form {
	case FormNone:
		return in
	case FormRel:
		in.Imm = int64(int32(r.Uint32()))
		return in
	case FormRM, FormRMI:
		cls1, cls2 := op.RegClasses()
		in.RegOp = randOperandFor(r, cls1, false, false)
		in.RMOp = randOperandFor(r, cls2, true, op.RequiresMem())
	case FormMR:
		cls1, cls2 := op.RegClasses()
		in.RegOp = randOperandFor(r, cls2, false, false)
		_ = cls1
		in.RMOp = randOperandFor(r, cls1, true, op.RequiresMem())
	case FormMI, FormM:
		cls1, _ := op.RegClasses()
		in.RMOp = randOperandFor(r, cls1, true, op.RequiresMem())
	}
	switch info.imm {
	case 1:
		in.Imm = int64(int8(r.Int()))
	case 4:
		in.Imm = int64(int32(r.Uint32()))
	case 8:
		in.Imm = int64(r.Uint64())
	}
	return in
}

// TestEncodeDecodeRoundtrip encodes random instructions of every opcode
// and checks decode reproduces them exactly.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	const perOp = 64
	for op := Op(1); op < NumOps; op++ {
		for i := 0; i < perOp; i++ {
			in := randInst(r, op)
			enc, err := Encode(&in)
			if err != nil {
				t.Fatalf("%v: encode %s: %v", op, in.String(), err)
			}
			if len(enc) > MaxInstLen {
				t.Fatalf("%v: encoding too long (%d)", op, len(enc))
			}
			got, err := Decode(enc, 0x400000)
			if err != nil {
				t.Fatalf("%v: decode % x: %v", op, enc, err)
			}
			if int(got.Len) != len(enc) {
				t.Fatalf("%v: Len %d != %d", op, got.Len, len(enc))
			}
			in.Addr = 0x400000
			in.Len = got.Len
			// Normalize: memory operands with scale omitted encode as 1;
			// MemAbs / Mem produce canonical fields already.
			if !instEqual(&in, &got) {
				t.Fatalf("%v roundtrip mismatch:\n in:  %+v\n out: %+v\n enc: % x",
					op, in, got, enc)
			}
		}
	}
}

func instEqual(a, b *Inst) bool {
	return a.Op == b.Op && operandEqual(a.RegOp, b.RegOp) &&
		operandEqual(a.RMOp, b.RMOp) && a.Imm == b.Imm
}

func operandEqual(a, b Operand) bool {
	if a.Kind != b.Kind {
		// FormM/FormMI leave RegOp unset on decode.
		return a.Kind == KindNone && b.Kind == KindNone
	}
	switch a.Kind {
	case KindMem:
		if a.Scale == 0 {
			a.Scale = 1
		}
		if b.Scale == 0 {
			b.Scale = 1
		}
		// An absent index normalizes scale to 1.
		if a.Index == NoReg {
			a.Scale = 1
		}
		if b.Index == NoReg {
			b.Scale = 1
		}
		return a.Base == b.Base && a.Index == b.Index && a.Scale == b.Scale &&
			a.Disp == b.Disp && a.RIPRel == b.RIPRel
	case KindGPR, KindXMM:
		return a.Reg == b.Reg
	}
	return true
}

// TestDecodeErrors checks malformed byte sequences are rejected.
func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x00},             // invalid opcode
		{0xFF},             // unknown byte
		{0x0F},             // truncated escape
		{0x0F, 0xFF},       // unknown escape opcode
		{0x06},             // call without rel32
		{0x06, 0x01, 0x02}, // truncated rel32
		{0x20},             // mov without modrm
		{0x41},             // bare REX
	}
	for _, c := range cases {
		if _, err := Decode(c, 0); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", c)
		}
	}
	// Truncated disp32.
	in := MakeRM(MOV64RM, GPR(RAX), Mem(RBX, 0x12345678))
	enc, err := Encode(&in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:len(enc)-1], 0); err == nil {
		t.Error("truncated disp32 decoded")
	}
}

// TestEncodeErrors checks invalid operand combinations are rejected.
func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		MakeRM(ADDSD, GPR(RAX), XMM(XMM1)),              // wrong reg class
		MakeRM(MOV64RR, XMM(XMM0), GPR(RAX)),            // wrong reg class
		MakeRM(LEA, GPR(RAX), GPR(RBX)),                 // lea needs memory
		MakeRM(MOVSDXM, XMM(XMM0), XMM(XMM1)),           // memory-only form
		MakeRM(ADD64, GPR(RAX), MemIdx(RBX, RSP, 1, 0)), // rsp as index
		MakeRM(ADD64, GPR(RAX), MemIdx(RBX, RCX, 3, 0)), // bad scale
		{Op: INVALID}, // invalid opcode
	}
	for _, in := range bad {
		in := in
		if _, err := Encode(&in); err == nil {
			t.Errorf("Encode(%s %v) succeeded, want error", in.Op, in)
		}
	}
}

// TestEncodingLengthsVary sanity-checks the variable-length property: a
// register form is shorter than a disp32 memory form.
func TestEncodingLengthsVary(t *testing.T) {
	short := MakeRM(ADDSD, XMM(XMM0), XMM(XMM1))
	long := MakeRM(ADDSD, XMM(XMM0), Mem(RBX, 0x100000))
	ls, err := EncodedLen(&short)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := EncodedLen(&long)
	if err != nil {
		t.Fatal(err)
	}
	if ls >= ll {
		t.Errorf("reg form (%d bytes) not shorter than disp32 form (%d)", ls, ll)
	}
	// REX only when high registers appear.
	noRex := MakeRM(ADD64, GPR(RAX), GPR(RBX))
	rex := MakeRM(ADD64, GPR(R8), GPR(RBX))
	ln, _ := EncodedLen(&noRex)
	lr, _ := EncodedLen(&rex)
	if lr != ln+1 {
		t.Errorf("REX form %d bytes, want %d", lr, ln+1)
	}
}

// TestDisassembly golden-checks a few renderings, including the width
// keywords the paper's Figure 7 shows.
func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{MakeRM(ADDSD, XMM(XMM12), XMM(XMM5)), "addsd xmm12, xmm5"},
		{MakeRM(MOVSDXM, XMM(XMM5), MemRIP(0x91d)), "movsd xmm5, qword ptr [rip + 0x91d]"},
		{MakeRM(MOVAPDXX, XMM(XMM0), XMM(XMM8)), "movapd xmm0, xmm8"},
		{MakeRM(MULSD, XMM(XMM4), XMM(XMM15)), "mulsd xmm4, xmm15"},
		{MakeRM(MOVHPDXM, XMM(XMM11), Mem(RSP, 0x30)), "movhpd xmm11, qword ptr [rsp + 0x30]"},
		{MakeRM(MOV64RM, GPR(RAX), MemIdx(RBX, RCX, 8, -8)), "mov rax, qword ptr [rbx + rcx*8 - 0x8]"},
		{MakeMI(SUB64I, GPR(RSP), 1024), "sub rsp, 0x400"},
		{MakeNullary(INT3), "int3"},
		{MakeM(PUSH, GPR(RBP)), "push rbp"},
	}
	for _, tc := range cases {
		in := tc.in
		if got := in.String(); got != tc.want {
			t.Errorf("disasm: got %q want %q", got, tc.want)
		}
	}
}

// TestFig7Shape reproduces the exact rendering style of the paper's
// example trace instructions.
func TestFig7Shape(t *testing.T) {
	in := MakeRM(MOVSDXM, XMM(XMM5), MemRIP(0x91d))
	if !strings.Contains(in.String(), "qword ptr [rip + 0x91d]") {
		t.Errorf("rip-relative rendering: %q", in.String())
	}
}

// TestOpPredicates spot-checks the metadata helpers.
func TestOpPredicates(t *testing.T) {
	if !ADDSD.IsFPScalar() || !ADDSD.IsFPArith() || ADDSD.IsMove() {
		t.Error("ADDSD predicates")
	}
	if !ADDPD.IsFPPacked() || ADDPD.IsFPScalar() {
		t.Error("ADDPD predicates")
	}
	if !MOVSDXM.IsMove() || MOVSDXM.IsFPArith() {
		t.Error("MOVSDXM predicates")
	}
	if !JE.IsCondBranch() || JE.IsBranch() {
		t.Error("JE predicates")
	}
	if !CALL.IsCall() || !CALL.IsControlFlow() {
		t.Error("CALL predicates")
	}
	if !RET.IsRet() || !RET.IsBranch() {
		t.Error("RET predicates")
	}
	if !CMPLTSD.IsCmpPredicate() {
		t.Error("CMPLTSD predicate")
	}
	if !CVTSI2SD.IsCvt() || !ADD64.IsIntALU() || !INT3.IsSystem() {
		t.Error("misc predicates")
	}
	if !LEA.RequiresMem() || ADD64.RequiresMem() {
		t.Error("RequiresMem")
	}
	if ADDSD.MemBytes() != 8 || ADDPD.MemBytes() != 16 || MOV32RM.MemBytes() != 4 {
		t.Error("MemBytes")
	}
	if ADDSD.Latency() == 0 || DIVSD.Latency() <= ADDSD.Latency() {
		t.Error("latencies")
	}
}

// TestBranchTarget checks rel32 target math.
func TestBranchTarget(t *testing.T) {
	in := MakeRel(JMP, 0x10)
	enc, err := Encode(&in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(0x1000) + uint64(len(enc)) + 0x10; got.BranchTarget() != want {
		t.Errorf("target %#x want %#x", got.BranchTarget(), want)
	}
}

// TestRegisterNames checks the naming helpers both ways.
func TestRegisterNames(t *testing.T) {
	for r := Reg(0); r < NumGPR; r++ {
		name := GPRName(r)
		back, ok := GPRByName(name)
		if !ok || back != r {
			t.Errorf("GPR roundtrip %d -> %s -> %d", r, name, back)
		}
	}
	for r := Reg(0); r < NumXMM; r++ {
		name := XMMName(r)
		back, ok := XMMByName(name)
		if !ok || back != r {
			t.Errorf("XMM roundtrip %d -> %s -> %d", r, name, back)
		}
	}
	if _, ok := GPRByName("bogus"); ok {
		t.Error("bogus GPR resolved")
	}
	if _, ok := XMMByName("xmm99"); ok {
		t.Error("xmm99 resolved")
	}
}
