// Package isa defines the simulated x64-flavoured instruction set used by
// the FPVM reproduction: sixteen 64-bit general purpose registers, sixteen
// 128-bit XMM registers, a variable-length binary encoding with
// modrm/sib/displacement/immediate fields (so that instruction decode has
// realistic cost and a decode cache is worthwhile), and an instruction
// inventory covering the scalar/packed double arithmetic, the ~40 move
// forms, the cmpxx family, integer ALU, and control flow that the paper's
// workloads exercise.
package isa

import "fmt"

// Reg names a register. General purpose registers and XMM registers live
// in distinct numbering spaces selected by the operand kind.
type Reg uint8

// General purpose registers (64-bit, x64 order).
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumGPR = 16
)

// XMM registers (128-bit, two float64 lanes).
const (
	XMM0 Reg = iota
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	NumXMM = 16
)

// NoReg marks an absent base/index register in a memory operand.
const NoReg Reg = 0xFF

var gprNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// GPRName returns the conventional name of a general purpose register.
func GPRName(r Reg) string {
	if int(r) < len(gprNames) {
		return gprNames[r]
	}
	return fmt.Sprintf("gpr?%d", r)
}

// XMMName returns the conventional name of an XMM register.
func XMMName(r Reg) string {
	if r < NumXMM {
		return fmt.Sprintf("xmm%d", r)
	}
	return fmt.Sprintf("xmm?%d", r)
}

// GPRByName resolves a GPR name ("rax"..."r15"); ok is false if unknown.
func GPRByName(name string) (Reg, bool) {
	for i, n := range gprNames {
		if n == name {
			return Reg(i), true
		}
	}
	return NoReg, false
}

// XMMByName resolves an XMM register name ("xmm0"..."xmm15").
func XMMByName(name string) (Reg, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "xmm%d", &n); err != nil || n < 0 || n >= NumXMM {
		return NoReg, false
	}
	return Reg(n), true
}
