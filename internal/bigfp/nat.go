package bigfp

import "math/bits"

// nat is an unsigned multi-precision integer stored as little-endian
// uint64 limbs. Functions keep results trimmed (no leading zero limbs) so
// natBitLen is meaningful. These are the only primitives the float layer
// needs; everything is written against them, stdlib-only.

func natTrim(x []uint64) []uint64 {
	for len(x) > 0 && x[len(x)-1] == 0 {
		x = x[:len(x)-1]
	}
	return x
}

func natIsZero(x []uint64) bool { return len(natTrim(x)) == 0 }

// natBitLen returns the position of the highest set bit + 1 (0 for zero).
func natBitLen(x []uint64) int {
	x = natTrim(x)
	if len(x) == 0 {
		return 0
	}
	return (len(x)-1)*64 + bits.Len64(x[len(x)-1])
}

// natCmp returns -1, 0, +1.
func natCmp(a, b []uint64) int {
	a, b = natTrim(a), natTrim(b)
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// natAdd returns a + b.
func natAdd(a, b []uint64) []uint64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a)+1)
	var carry uint64
	for i := range a {
		bv := uint64(0)
		if i < len(b) {
			bv = b[i]
		}
		s, c1 := bits.Add64(a[i], bv, carry)
		out[i] = s
		carry = c1
	}
	out[len(a)] = carry
	return natTrim(out)
}

// natSub returns a - b; a must be >= b.
func natSub(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	var borrow uint64
	for i := range a {
		bv := uint64(0)
		if i < len(b) {
			bv = b[i]
		}
		d, br := bits.Sub64(a[i], bv, borrow)
		out[i] = d
		borrow = br
	}
	if borrow != 0 {
		panic("bigfp: natSub underflow")
	}
	return natTrim(out)
}

// natAddSmall returns x + v.
func natAddSmall(x []uint64, v uint64) []uint64 {
	out := make([]uint64, len(x)+1)
	copy(out, x)
	var carry uint64 = v
	for i := 0; i < len(out) && carry != 0; i++ {
		s, c := bits.Add64(out[i], carry, 0)
		out[i] = s
		carry = c
	}
	return natTrim(out)
}

// natShl returns x << k.
func natShl(x []uint64, k uint) []uint64 {
	x = natTrim(x)
	if len(x) == 0 || k == 0 {
		out := make([]uint64, len(x))
		copy(out, x)
		return out
	}
	limbShift := int(k / 64)
	bitShift := k % 64
	out := make([]uint64, len(x)+limbShift+1)
	if bitShift == 0 {
		copy(out[limbShift:], x)
	} else {
		for i := len(x) - 1; i >= 0; i-- {
			out[i+limbShift+1] |= x[i] >> (64 - bitShift)
			out[i+limbShift] |= x[i] << bitShift
		}
	}
	return natTrim(out)
}

// natShr returns x >> k and whether any dropped bit was nonzero (sticky).
func natShr(x []uint64, k uint) ([]uint64, bool) {
	x = natTrim(x)
	if len(x) == 0 {
		return nil, false
	}
	if k == 0 {
		out := make([]uint64, len(x))
		copy(out, x)
		return out, false
	}
	limbShift := int(k / 64)
	bitShift := k % 64
	if limbShift >= len(x) {
		return nil, true // everything dropped (x nonzero)
	}
	sticky := false
	for i := 0; i < limbShift; i++ {
		if x[i] != 0 {
			sticky = true
		}
	}
	out := make([]uint64, len(x)-limbShift)
	if bitShift == 0 {
		copy(out, x[limbShift:])
	} else {
		if x[limbShift]&(1<<bitShift-1) != 0 {
			sticky = true
		}
		for i := range out {
			out[i] = x[limbShift+i] >> bitShift
			if limbShift+i+1 < len(x) {
				out[i] |= x[limbShift+i+1] << (64 - bitShift)
			}
		}
	}
	return natTrim(out), sticky
}

// natIsPow2 reports whether x is an exact power of two (single set bit).
func natIsPow2(x []uint64) bool {
	x = natTrim(x)
	if len(x) == 0 {
		return false
	}
	top := x[len(x)-1]
	if top&(top-1) != 0 {
		return false
	}
	for _, l := range x[:len(x)-1] {
		if l != 0 {
			return false
		}
	}
	return true
}

// natBit returns bit i of x.
func natBit(x []uint64, i int) uint {
	limb := i / 64
	if limb >= len(x) || i < 0 {
		return 0
	}
	return uint(x[limb] >> (i % 64) & 1)
}

// natMul returns a * b (schoolbook).
func natMul(a, b []uint64) []uint64 {
	a, b = natTrim(a), natTrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint64, len(a)+len(b))
	for i, av := range a {
		var carry uint64
		for j, bv := range b {
			hi, lo := bits.Mul64(av, bv)
			s, c1 := bits.Add64(out[i+j], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			out[i+j] = s
			carry = hi + c1 + c2 // cannot overflow: hi <= 2^64-2
		}
		k := i + len(b)
		for carry != 0 {
			s, c := bits.Add64(out[k], carry, 0)
			out[k] = s
			carry = c
			k++
		}
	}
	return natTrim(out)
}

// natDivBits computes the top `qbits` quotient bits of a/b along with a
// sticky flag for the remainder. a and b must be nonzero. The quotient is
// returned together with e, the exponent adjustment such that
// a/b = q * 2^(e-qbits+ ...): specifically, q has exactly qbits bits and
// a/b = q * 2^(natBitLen(a)-natBitLen(b)-qbits+adj) where adj ∈ {0,1} is
// folded into the returned exponent offset.
//
// Returned: q (qbits bits), expAdj (0 or 1 meaning a/b >= 2^(la-lb)), and
// sticky (remainder nonzero).
func natDivBits(a, b []uint64, qbits int) (q []uint64, expAdj int, sticky bool) {
	la, lb := natBitLen(a), natBitLen(b)
	// Scale a so that floor division yields at least qbits+1 bits of
	// headroom: A = a << s with bitlen(A) = lb + qbits.
	s := lb + qbits - la
	var A []uint64
	if s >= 0 {
		A = natShl(a, uint(s))
	} else {
		var st bool
		A, st = natShr(a, uint(-s))
		sticky = sticky || st
	}
	// Binary long division producing qbits (or qbits+1) bits.
	q = nil
	rem := A
	// Quotient magnitude: A/b in [2^(qbits-1), 2^(qbits+1)).
	for i := qbits; i >= 0; i-- {
		t := natShl(b, uint(i))
		q = natShl(q, 1)
		if natCmp(rem, t) >= 0 {
			rem = natSub(rem, t)
			q = natAddSmall(q, 1)
		}
	}
	if !natIsZero(rem) {
		sticky = true
	}
	// q now has qbits or qbits+1 bits.
	if natBitLen(q) > qbits {
		var st bool
		q, st = natShr(q, 1)
		sticky = sticky || st
		expAdj = 1
	}
	return q, expAdj, sticky
}

// natSqrtBits computes the top `qbits` bits of sqrt(a * 2^scale) where
// scale is chosen by the caller (must make the operand's bit length ~
// 2*qbits). Returns the root with exactly qbits bits and sticky for a
// nonzero remainder. a must be nonzero and bitlen(a) in
// [2*qbits-1, 2*qbits].
func natSqrtBits(a []uint64, qbits int) (root []uint64, sticky bool) {
	// Digit-by-digit (restoring) square root on the integer a.
	var x []uint64 // current root
	var r []uint64 // current remainder
	n := natBitLen(a)
	// Process bit pairs from the top; total qbits iterations.
	start := n
	if start%2 == 1 {
		start++
	}
	for i := 0; i < qbits; i++ {
		// Bring down two bits of a (zero once exhausted).
		hi := start - 2*i - 1
		lo := start - 2*i - 2
		var pair uint64
		if hi >= 0 {
			pair = uint64(natBit(a, hi))<<1 | uint64(natBit(a, lo))
		}
		r = natShl(r, 2)
		r = natAddSmall(r, pair)
		// Candidate: t = (x << 2) + 1 ; if r >= t: r -= t, x = (x<<1)+1
		t := natAddSmall(natShl(x, 2), 1)
		if natCmp(r, t) >= 0 {
			r = natSub(r, t)
			x = natAddSmall(natShl(x, 1), 1)
		} else {
			x = natShl(x, 1)
		}
	}
	return x, !natIsZero(r)
}
