package bigfp

// Arithmetic. Every operation computes an exact (or exact-plus-sticky)
// intermediate and rounds once through setFromParts, giving correct
// rounding in the destination's mode and precision. Special values follow
// IEEE 754 semantics.

// Add sets f = a + b and returns f.
func (f *Float) Add(a, b *Float) *Float {
	switch {
	case a.kind == kindNaN || b.kind == kindNaN:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindInf && b.kind == kindInf:
		if a.neg != b.neg {
			return f.setSpecial(kindNaN, false)
		}
		return f.setSpecial(kindInf, a.neg)
	case a.kind == kindInf:
		return f.setSpecial(kindInf, a.neg)
	case b.kind == kindInf:
		return f.setSpecial(kindInf, b.neg)
	case a.kind == kindZero && b.kind == kindZero:
		// (+0) + (-0) = +0 except in ToNegInf where it is -0.
		neg := a.neg && b.neg
		if f.mode == ToNegInf {
			neg = a.neg || b.neg
		}
		return f.setSpecial(kindZero, neg)
	case a.kind == kindZero:
		return f.setFromParts(b.neg, b.mant, b.exp-int64(b.prec), false)
	case b.kind == kindZero:
		return f.setFromParts(a.neg, a.mant, a.exp-int64(a.prec), false)
	}

	if a.neg == b.neg {
		neg, mant, exp2, sticky := addMag(a, b, int(f.prec))
		_ = neg
		return f.setFromParts(a.neg, mant, exp2, sticky)
	}
	// Opposite signs: subtract magnitudes.
	return f.subMag(a, b)
}

// Sub sets f = a - b and returns f.
func (f *Float) Sub(a, b *Float) *Float {
	nb := b.Clone().Neg()
	return f.Add(a, nb)
}

// addMag computes |a| + |b| exactly up to a sticky tail, aligned so the
// caller can round. Returns (unused, mantissa, exp2, sticky) with
// value = mantissa × 2^exp2 (+ tiny sticky remainder).
func addMag(a, b *Float, prec int) (bool, []uint64, int64, bool) {
	// Order by value exponent: A is the larger-magnitude exponent.
	A, B := a, b
	if B.exp > A.exp {
		A, B = B, A
	}
	// LSB exponents.
	alsb := A.exp - int64(A.prec)
	blsb := B.exp - int64(B.prec)
	d := A.exp - B.exp

	// If B is far below A's rounding horizon it only contributes sticky.
	horizon := int64(prec) + 6
	if d > horizon+int64(B.prec) {
		return false, A.mant, alsb, true
	}

	// Align exactly on a common LSB (cap B's contribution via shift-out
	// into sticky; the cap keeps buffers bounded).
	var am, bm []uint64
	var lsb int64
	sticky := false
	if alsb <= blsb {
		lsb = alsb
		am = a2mant(A)
		bm = natShl(B.mant, uint(blsb-lsb))
	} else {
		// B extends below A: bring A down to B's LSB (exact).
		lsb = blsb
		am = natShl(A.mant, uint(alsb-lsb))
		bm = a2mant(B)
	}
	sum := natAdd(am, bm)
	return false, sum, lsb, sticky
}

func a2mant(x *Float) []uint64 {
	out := make([]uint64, len(x.mant))
	copy(out, x.mant)
	return out
}

// subMag computes a + b where the signs differ, exactly, and rounds.
func (f *Float) subMag(a, b *Float) *Float {
	// Work with magnitudes: result = sign(a)·(|a| − |b|) when |a| >= |b|.
	cmp := cmpMag(a, b)
	if cmp == 0 {
		neg := f.mode == ToNegInf
		return f.setSpecial(kindZero, neg)
	}
	L, S := a, b
	if cmp < 0 {
		L, S = b, a
	}
	neg := L.neg

	llsb := L.exp - int64(L.prec)
	slsb := S.exp - int64(S.prec)

	// If S is far below L's rounding horizon, use the
	// "subtract one extended unit + sticky" trick (see the paper's
	// concern for exactness; this keeps buffers bounded while preserving
	// correct rounding).
	horizon := int64(f.prec) + 6
	if L.exp-S.exp > horizon+int64(S.prec) {
		ext := natShl(L.mant, 8)
		ext = natSub(ext, []uint64{1})
		return f.setFromParts(neg, ext, llsb-8, true)
	}

	var lm, sm []uint64
	var lsb int64
	if llsb <= slsb {
		lsb = llsb
		lm = a2mant(L)
		sm = natShl(S.mant, uint(slsb-lsb))
	} else {
		lsb = slsb
		lm = natShl(L.mant, uint(llsb-lsb))
		sm = a2mant(S)
	}
	diff := natSub(lm, sm)
	return f.setFromParts(neg, diff, lsb, false)
}

// cmpMag compares |a| and |b| for finite nonzero values.
func cmpMag(a, b *Float) int {
	if a.exp != b.exp {
		if a.exp < b.exp {
			return -1
		}
		return 1
	}
	am, bm := a.mant, b.mant
	ab, bb := natBitLen(am), natBitLen(bm)
	if ab < bb {
		am = natShl(am, uint(bb-ab))
	} else if bb < ab {
		bm = natShl(bm, uint(ab-bb))
	}
	return natCmp(am, bm)
}

// Mul sets f = a × b and returns f.
func (f *Float) Mul(a, b *Float) *Float {
	switch {
	case a.kind == kindNaN || b.kind == kindNaN:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindInf || b.kind == kindInf:
		if a.kind == kindZero || b.kind == kindZero {
			return f.setSpecial(kindNaN, false)
		}
		return f.setSpecial(kindInf, a.neg != b.neg)
	case a.kind == kindZero || b.kind == kindZero:
		return f.setSpecial(kindZero, a.neg != b.neg)
	}
	prod := natMul(a.mant, b.mant)
	exp2 := (a.exp - int64(a.prec)) + (b.exp - int64(b.prec))
	return f.setFromParts(a.neg != b.neg, prod, exp2, false)
}

// Div sets f = a / b and returns f.
func (f *Float) Div(a, b *Float) *Float {
	switch {
	case a.kind == kindNaN || b.kind == kindNaN:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindInf && b.kind == kindInf:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindZero && b.kind == kindZero:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindInf:
		return f.setSpecial(kindInf, a.neg != b.neg)
	case b.kind == kindInf:
		return f.setSpecial(kindZero, a.neg != b.neg)
	case b.kind == kindZero:
		return f.setSpecial(kindInf, a.neg != b.neg)
	case a.kind == kindZero:
		return f.setSpecial(kindZero, a.neg != b.neg)
	}
	qbits := int(f.prec) + 2
	q, expAdj, sticky := natDivBits(a.mant, b.mant, qbits)
	// a/b = q × 2^(la − lb − qbits + expAdj) × 2^(ea' − eb') where
	// ea' = a.exp − a.prec etc. With mantissas normalized,
	// la = a.prec, lb = b.prec.
	exp2 := (a.exp - int64(a.prec)) - (b.exp - int64(b.prec)) +
		int64(int(a.prec)-int(b.prec)-qbits+expAdj)
	return f.setFromParts(a.neg != b.neg, q, exp2, sticky)
}

// Sqrt sets f = sqrt(a) and returns f. Negative inputs yield NaN.
func (f *Float) Sqrt(a *Float) *Float {
	switch {
	case a.kind == kindNaN:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindZero:
		return f.setSpecial(kindZero, a.neg)
	case a.neg:
		return f.setSpecial(kindNaN, false)
	case a.kind == kindInf:
		return f.setSpecial(kindInf, false)
	}
	qbits := int(f.prec) + 2
	// Scale mantissa so its bit length is 2*qbits or 2*qbits−1 with an
	// even total exponent: value = M × 2^E, sqrt = sqrt(M) × 2^(E/2).
	M := a.mant
	E := a.exp - int64(a.prec)
	bl := natBitLen(M)
	shift := 2*qbits - bl
	// Keep E − shift even.
	if (E-int64(shift))%2 != 0 {
		shift++
	}
	if shift < 0 {
		panic("bigfp: sqrt scaling underflow (precision too small)")
	}
	M = natShl(M, uint(shift))
	E -= int64(shift)
	root, sticky := natSqrtBits(M, natBitLen(M)/2+natBitLen(M)%2)
	return f.setFromParts(false, root, E/2, sticky)
}

// Abs sets f = |a| and returns f.
func (f *Float) Abs(a *Float) *Float {
	g := a.Clone()
	g.neg = false
	*f = *g
	return f
}

// Min sets f to the smaller of a, b (x64 minsd semantics: returns b when
// equal or unordered handled by the caller).
func (f *Float) Min(a, b *Float) *Float {
	if a.Cmp(b) == -1 {
		*f = *a.Clone()
	} else {
		*f = *b.Clone()
	}
	return f
}

// Max sets f to the larger of a, b (x64 maxsd semantics).
func (f *Float) Max(a, b *Float) *Float {
	if a.Cmp(b) == 1 {
		*f = *a.Clone()
	} else {
		*f = *b.Clone()
	}
	return f
}

// LimbCount returns the number of mantissa limbs (cost model input).
func (f *Float) LimbCount() int {
	n := (int(f.prec) + 63) / 64
	if n < 1 {
		n = 1
	}
	return n
}
