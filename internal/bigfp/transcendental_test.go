package bigfp

import (
	"math"
	"math/rand"
	"testing"
)

// agree53 checks |got - want| within a few ulps of want at double
// precision (the bigfp result, demoted, against Go's libm).
func agree53(t *testing.T, name string, got *Float, want float64, arg float64) {
	t.Helper()
	g := got.Float64()
	if math.IsNaN(want) {
		if !math.IsNaN(g) {
			t.Fatalf("%s(%g) = %g, want NaN", name, arg, g)
		}
		return
	}
	tol := math.Abs(want) * 1e-14
	if tol < 1e-300 {
		tol = 1e-300
	}
	if math.Abs(g-want) > tol {
		t.Fatalf("%s(%g) = %.17g, want %.17g", name, arg, g, want)
	}
}

func TestPiLn2(t *testing.T) {
	if got := Pi(64).Float64(); got != math.Pi {
		t.Errorf("Pi = %.17g", got)
	}
	if got := Ln2(64).Float64(); got != math.Ln2 {
		t.Errorf("Ln2 = %.17g", got)
	}
	// Consistency at high precision: exp(ln2) == 2 to ~200 bits.
	two := New(200).Exp(Ln2(200))
	diff := New(200).Sub(two, New(200).SetInt64(2))
	if !diff.IsZero() && diff.exp > -190 {
		t.Errorf("exp(ln2) off by 2^%d", diff.exp)
	}
}

func TestExpLogAgainstLibm(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		x := (r.Float64() - 0.5) * 40
		a := New(64).SetFloat64(x)
		agree53(t, "exp", New(64).Exp(a), math.Exp(x), x)
		if x > 0 {
			agree53(t, "log", New(64).Log(a), math.Log(x), x)
		}
	}
	// Wide dynamic range for log.
	for _, x := range []float64{1e-300, 1e-10, 1, 1.0000001, 2, 1e10, 1e300} {
		agree53(t, "log", New(64).Log(New(64).SetFloat64(x)), math.Log(x), x)
	}
}

func TestTrigAgainstLibm(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		x := (r.Float64() - 0.5) * 20
		a := New(64).SetFloat64(x)
		agree53(t, "sin", New(64).Sin(a), math.Sin(x), x)
		agree53(t, "cos", New(64).Cos(a), math.Cos(x), x)
		agree53(t, "tan", New(64).Tan(a), math.Tan(x), x)
		agree53(t, "atan", New(64).Atan(a), math.Atan(x), x)
	}
	// Large-argument reduction.
	for _, x := range []float64{1e3, 12345.678, 1e8, -99999.5} {
		a := New(64).SetFloat64(x)
		agree53(t, "sin", New(64).Sin(a), math.Sin(x), x)
		agree53(t, "cos", New(64).Cos(a), math.Cos(x), x)
	}
}

func TestInverseTrig(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		x := r.Float64()*2 - 1
		a := New(64).SetFloat64(x)
		agree53(t, "asin", New(64).Asin(a), math.Asin(x), x)
		agree53(t, "acos", New(64).Acos(a), math.Acos(x), x)
	}
	for i := 0; i < 200; i++ {
		y := (r.Float64() - 0.5) * 100
		x := (r.Float64() - 0.5) * 100
		got := New(64).Atan2(New(64).SetFloat64(y), New(64).SetFloat64(x))
		agree53(t, "atan2", got, math.Atan2(y, x), y)
	}
	// Quadrant edges.
	for _, c := range [][2]float64{{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {-1, -1}} {
		got := New(64).Atan2(New(64).SetFloat64(c[0]), New(64).SetFloat64(c[1]))
		agree53(t, "atan2", got, math.Atan2(c[0], c[1]), c[0])
	}
	if !New(64).Asin(New(64).SetFloat64(1.5)).IsNaN() {
		t.Error("asin(1.5) not NaN")
	}
}

func TestPow(t *testing.T) {
	cases := [][2]float64{
		{2, 10}, {2, -3}, {10, 0.5}, {0.5, 100}, {3, 0}, {0, 3},
		{-2, 3}, {-2, 4}, {1.5, 2.5}, {math.E, 1},
	}
	for _, c := range cases {
		got := New(64).PowFloat(New(64).SetFloat64(c[0]), New(64).SetFloat64(c[1]))
		agree53(t, "pow", got, math.Pow(c[0], c[1]), c[0])
	}
	if !New(64).PowFloat(New(64).SetFloat64(-2), New(64).SetFloat64(0.5)).IsNaN() {
		t.Error("(-2)^0.5 not NaN")
	}
}

// TestHighPrecisionIdentities checks the series at 200 bits via
// self-consistency (no double-precision oracle exists up there).
func TestHighPrecisionIdentities(t *testing.T) {
	const p = 200
	r := rand.New(rand.NewSource(24))
	closeAt := func(name string, a, b *Float, bits int64) {
		t.Helper()
		d := New(p).Sub(a, b)
		if d.IsZero() {
			return
		}
		ref := a.exp
		if d.exp > ref-bits {
			t.Fatalf("%s: differs at 2^%d (ref exp %d)", name, d.exp, ref)
		}
	}
	for i := 0; i < 30; i++ {
		x := New(p).SetFloat64(r.Float64()*4 + 0.1)
		// exp(log x) == x
		closeAt("exp(log x)", x, New(p).Exp(New(p).Log(x)), 180)
		// sin² + cos² == 1
		s := New(p).Sin(x)
		c := New(p).Cos(x)
		sum := New(p).Add(New(p).Mul(s, s), New(p).Mul(c, c))
		closeAt("sin²+cos²", New(p).SetInt64(1), sum, 190)
		// tan(atan x) == x
		closeAt("tan(atan x)", x, New(p).Tan(New(p).Atan(x)), 180)
	}
}

func TestSpecialTranscendentals(t *testing.T) {
	nan := New(64).SetFloat64(math.NaN())
	inf := New(64).SetFloat64(math.Inf(1))
	zero := New(64).SetFloat64(0)

	if !New(64).Exp(nan).IsNaN() || !New(64).Sin(nan).IsNaN() || !New(64).Log(nan).IsNaN() {
		t.Error("NaN propagation")
	}
	if v := New(64).Exp(inf); !v.IsInf() {
		t.Error("exp(inf)")
	}
	if v := New(64).Exp(inf.Clone().Neg()); !v.IsZero() {
		t.Error("exp(-inf)")
	}
	if v := New(64).Log(zero); !v.IsInf() || v.Sign() != -1 {
		t.Error("log(0)")
	}
	if !New(64).Log(New(64).SetFloat64(-1)).IsNaN() {
		t.Error("log(-1)")
	}
	if !New(64).Sin(inf).IsNaN() {
		t.Error("sin(inf)")
	}
	if v := New(64).Atan(inf); math.Abs(v.Float64()-math.Pi/2) > 1e-15 {
		t.Error("atan(inf)")
	}
	if v := New(64).Exp(zero); v.Float64() != 1 {
		t.Error("exp(0)")
	}
	if v := New(64).Cos(zero); v.Float64() != 1 {
		t.Error("cos(0)")
	}
	if v := New(64).Sin(zero); !v.IsZero() {
		t.Error("sin(0)")
	}
}
