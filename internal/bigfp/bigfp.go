// Package bigfp is a from-scratch arbitrary-precision binary floating
// point library with correct rounding — the reproduction's stand-in for
// GNU MPFR, which the paper uses as its realistic alternative arithmetic
// system. Values carry a fixed significand precision (in bits); add, sub,
// mul, div and sqrt round correctly in the selected mode; NaN and
// infinities propagate IEEE-style.
//
// The implementation is deliberately stdlib-free of math/big: mantissas
// are little-endian uint64 limb vectors (see nat.go), and every operation
// funnels through a single normalize-and-round constructor, which makes
// the rounding logic auditable and testable against math/big as an
// external oracle in the tests only.
package bigfp

import (
	"fmt"
	"math"
)

// RoundingMode selects the rounding of inexact results.
type RoundingMode uint8

const (
	// ToNearestEven rounds to nearest, ties to even (IEEE default).
	ToNearestEven RoundingMode = iota
	// ToZero truncates.
	ToZero
	// ToNegInf rounds toward -inf.
	ToNegInf
	// ToPosInf rounds toward +inf.
	ToPosInf
)

type kind uint8

const (
	kindZero kind = iota
	kindFinite
	kindInf
	kindNaN
)

// Float is an arbitrary-precision binary floating point number:
// value = (-1)^sign × mant × 2^(exp − prec), with mant normalized to
// exactly prec significant bits (top bit set), i.e. |value| ∈
// [2^(exp−1), 2^exp).
type Float struct {
	prec uint32
	mode RoundingMode
	kind kind
	neg  bool
	exp  int64
	mant []uint64
}

// MinPrec is the smallest supported precision.
const MinPrec = 2

// New returns a zero-valued Float with the given precision (bits) and
// round-to-nearest-even.
func New(prec uint) *Float {
	if prec < MinPrec {
		prec = MinPrec
	}
	return &Float{prec: uint32(prec)}
}

// Prec returns the precision in bits.
func (f *Float) Prec() uint { return uint(f.prec) }

// Mode returns the rounding mode.
func (f *Float) Mode() RoundingMode { return f.mode }

// SetMode sets the rounding mode and returns f.
func (f *Float) SetMode(m RoundingMode) *Float {
	f.mode = m
	return f
}

// IsNaN reports whether f is NaN.
func (f *Float) IsNaN() bool { return f.kind == kindNaN }

// IsInf reports whether f is ±inf.
func (f *Float) IsInf() bool { return f.kind == kindInf }

// IsZero reports whether f is ±0.
func (f *Float) IsZero() bool { return f.kind == kindZero }

// Sign returns -1, 0, +1 (NaN returns 0).
func (f *Float) Sign() int {
	switch f.kind {
	case kindZero, kindNaN:
		return 0
	default:
		if f.neg {
			return -1
		}
		return 1
	}
}

// Neg negates f in place and returns it.
func (f *Float) Neg() *Float {
	if f.kind != kindNaN {
		f.neg = !f.neg
	}
	return f
}

// Clone returns a deep copy.
func (f *Float) Clone() *Float {
	g := *f
	g.mant = append([]uint64(nil), f.mant...)
	return &g
}

// setSpecial configures NaN/Inf/zero.
func (f *Float) setSpecial(k kind, neg bool) *Float {
	f.kind = k
	f.neg = neg
	f.mant = nil
	f.exp = 0
	return f
}

// SetFloat64 sets f to x (rounded to f's precision) and returns f.
func (f *Float) SetFloat64(x float64) *Float {
	switch {
	case math.IsNaN(x):
		return f.setSpecial(kindNaN, false)
	case math.IsInf(x, 0):
		return f.setSpecial(kindInf, math.Signbit(x))
	case x == 0:
		return f.setSpecial(kindZero, math.Signbit(x))
	}
	bits := math.Float64bits(x)
	neg := bits>>63 != 0
	biased := int64(bits >> 52 & 0x7FF)
	frac := bits & (1<<52 - 1)
	var mant uint64
	var exp int64
	if biased == 0 {
		// subnormal: value = frac × 2^-1074
		mant = frac
		exp = -1074 + int64(natBitLen([]uint64{frac}))
	} else {
		mant = frac | 1<<52
		exp = biased - 1023 + 1 // |x| ∈ [2^(exp-1), 2^exp)
	}
	return f.setFromParts(neg, []uint64{mant}, exp-int64(natBitLen([]uint64{mant})), false)
}

// SetInt64 sets f to v exactly (rounded if precision is tiny).
func (f *Float) SetInt64(v int64) *Float {
	if v == 0 {
		return f.setSpecial(kindZero, false)
	}
	neg := v < 0
	var u uint64
	if neg {
		u = uint64(-v) // MinInt64 wraps correctly to 2^63
	} else {
		u = uint64(v)
	}
	return f.setFromParts(neg, []uint64{u}, 0, false)
}

// setFromParts normalizes value = (-1)^neg × mant × 2^exp2 (plus a sticky
// bit for already-discarded low bits) and rounds to f's precision. This
// is the single rounding path for every operation.
func (f *Float) setFromParts(neg bool, mant []uint64, exp2 int64, sticky bool) *Float {
	mant = natTrim(mant)
	if len(mant) == 0 {
		if sticky {
			// A discarded nonzero tail with a zero kept part: round as an
			// infinitesimally small value.
			return f.roundTiny(neg)
		}
		return f.setSpecial(kindZero, neg)
	}
	bl := natBitLen(mant)
	prec := int(f.prec)

	// The value's exponent (value ∈ [2^(e-1), 2^e)).
	e := exp2 + int64(bl)

	var kept []uint64
	var guard uint
	var st bool
	switch {
	case bl <= prec:
		kept = natShl(mant, uint(prec-bl))
		guard = 0
		st = false
	default:
		drop := uint(bl - prec - 1)
		shifted, s1 := natShr(mant, drop)
		// shifted has prec+1 bits: low bit is the guard.
		guard = uint(shifted[0] & 1)
		kept, _ = natShr(shifted, 1)
		st = s1
	}
	st = st || sticky

	// Decide increment.
	inc := false
	switch f.mode {
	case ToNearestEven:
		if guard == 1 {
			if st || natBit(kept, 0) == 1 {
				inc = true
			}
		}
	case ToZero:
	case ToNegInf:
		inc = neg && (guard == 1 || st)
	case ToPosInf:
		inc = !neg && (guard == 1 || st)
	}
	if inc {
		kept = natAddSmall(kept, 1)
		if natBitLen(kept) > prec {
			kept, _ = natShr(kept, 1)
			e++
		}
	}

	f.kind = kindFinite
	f.neg = neg
	f.exp = e
	f.mant = kept
	return f
}

// roundTiny handles a value known only to be nonzero with vanishing
// magnitude (all bits discarded): directed modes may round away from
// zero; nearest/zero give zero.
func (f *Float) roundTiny(neg bool) *Float {
	switch f.mode {
	case ToNegInf:
		if neg {
			return f.smallestFinite(true)
		}
	case ToPosInf:
		if !neg {
			return f.smallestFinite(false)
		}
	}
	return f.setSpecial(kindZero, neg)
}

// smallestFinite is an arbitrary tiny stand-in (exponent floor); bigfp has
// no exponent range limit in normal operation, so this is only reachable
// through the roundTiny path.
func (f *Float) smallestFinite(neg bool) *Float {
	f.kind = kindFinite
	f.neg = neg
	f.exp = minExp
	f.mant = natShl([]uint64{1}, uint(f.prec-1))
	return f
}

// minExp bounds roundTiny results.
const minExp = -1 << 40

// Float64 converts f to the nearest float64 (round to nearest even),
// with overflow to ±inf and graceful underflow through subnormals.
func (f *Float) Float64() float64 {
	switch f.kind {
	case kindNaN:
		return math.NaN()
	case kindInf:
		if f.neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	case kindZero:
		if f.neg {
			return math.Copysign(0, -1)
		}
		return 0
	}
	e := f.exp // |f| ∈ [2^(e-1), 2^e)
	if e > 1024 {
		if f.neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	if e <= -1074 {
		// |f| < 2^-1074: below the smallest subnormal. Rounds to
		// ±2^-1074 when strictly above half of it; the exact half
		// (2^-1075) ties to even, i.e. zero.
		if e == -1074 && !natIsPow2(f.mant) {
			return math.Copysign(0x1p-1074, signFloat(f.neg))
		}
		return math.Copysign(0, signFloat(f.neg))
	}

	// Effective precision: 53 for normal range, fewer for subnormals so
	// that the LSB granularity is 2^-1074.
	targetPrec := 53
	if e < -1021 {
		targetPrec = int(e + 1074)
	}

	// Construct g directly: targetPrec can be 1 in the deep-subnormal
	// range, below New's MinPrec clamp.
	g := &Float{prec: uint32(targetPrec)}
	g.setFromParts(f.neg, f.mant, f.exp-int64(f.prec), false)
	if g.kind == kindZero {
		return math.Copysign(0, signFloat(f.neg))
	}
	e = g.exp
	if e > 1024 {
		if f.neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}

	// Assemble: g's mantissa has targetPrec <= 53 bits (one limb);
	// value = m × 2^(e − targetPrec).
	m := g.mant[0]
	shift := e - int64(targetPrec)
	// Build float64 via math.Ldexp on the integer mantissa (exact:
	// m < 2^53).
	v := math.Ldexp(float64(m), int(shift))
	if f.neg {
		v = -v
	}
	return v
}

func signFloat(neg bool) float64 {
	if neg {
		return -1
	}
	return 1
}

// Cmp compares f and g: -1, 0, +1. NaN comparisons return 2 (unordered).
func (f *Float) Cmp(g *Float) int {
	if f.kind == kindNaN || g.kind == kindNaN {
		return 2
	}
	fs, gs := f.Sign(), g.Sign()
	if fs != gs {
		if fs < gs {
			return -1
		}
		return 1
	}
	if fs == 0 {
		return 0
	}
	// Same nonzero sign.
	flip := 1
	if fs < 0 {
		flip = -1
	}
	if f.kind == kindInf || g.kind == kindInf {
		switch {
		case f.kind == kindInf && g.kind == kindInf:
			return 0
		case f.kind == kindInf:
			return flip
		default:
			return -flip
		}
	}
	if f.exp != g.exp {
		if f.exp < g.exp {
			return -flip
		}
		return flip
	}
	// Align mantissas to a common precision before comparing.
	fm, gm := f.mant, g.mant
	fb, gb := natBitLen(fm), natBitLen(gm)
	if fb < gb {
		fm = natShl(fm, uint(gb-fb))
	} else if gb < fb {
		gm = natShl(gm, uint(fb-gb))
	}
	return flip * natCmp(fm, gm)
}

// String renders the value approximately (via float64) for diagnostics.
func (f *Float) String() string {
	switch f.kind {
	case kindNaN:
		return "NaN"
	case kindInf:
		if f.neg {
			return "-Inf"
		}
		return "+Inf"
	case kindZero:
		if f.neg {
			return "-0"
		}
		return "0"
	}
	return fmt.Sprintf("%g(prec=%d)", f.Float64(), f.prec)
}

// Signbit reports whether f is negative (including -0 and -inf).
func (f *Float) Signbit() bool { return f.kind != kindNaN && f.neg }
