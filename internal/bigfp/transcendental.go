package bigfp

// Arbitrary-precision transcendental functions — the part of the MPFR
// stand-in that backs FPVM's libm forward wrappers (§5.3: "the libm
// functions are always configured with special hand-written forward
// wrappers that interface with the alternative arithmetic system").
// Everything is computed from scratch: π by Machin's formula, ln 2 by an
// atanh series, exp/log/sin/cos/atan by argument reduction + Taylor or
// atanh series, all at a working precision with guard bits and rounded
// once into the destination.

import (
	"math"
	"sync"
)

// guardBits is the extra working precision used inside the series.
const guardBits = 32

// constCache memoizes π and ln2 per working precision.
type constEntry struct {
	prec uint
	val  *Float
}

// constMu guards the constant caches: MPFR-backed VMs in a fleet hit
// Pi/Ln2 from many goroutines. It is held across the compute-and-fill
// path too — the constants are computed once per precision, so the
// serialization is a one-time cost.
var constMu sync.Mutex

var piCache, ln2Cache constEntry

// MulPow2 multiplies f by 2^k exactly (adjusts the exponent).
func (f *Float) MulPow2(k int64) *Float {
	if f.kind == kindFinite {
		f.exp += k
	}
	return f
}

// atanRecip computes atan(1/n) at precision prec via the alternating
// series sum_k (-1)^k / ((2k+1) n^(2k+1)), for integer n >= 2.
func atanRecip(n int64, prec uint) *Float {
	wp := prec + guardBits
	inv := New(wp).Div(New(wp).SetInt64(1), New(wp).SetInt64(n))
	inv2 := New(wp).Mul(inv, inv)

	sum := inv.Clone()
	term := inv.Clone() // 1/n^(2k+1)
	for k := int64(1); ; k++ {
		term = New(wp).Mul(term, inv2)
		contrib := New(wp).Div(term, New(wp).SetInt64(2*k+1))
		if contrib.IsZero() || contrib.exp < sum.exp-int64(wp) {
			break
		}
		if k%2 == 1 {
			sum = New(wp).Sub(sum, contrib)
		} else {
			sum = New(wp).Add(sum, contrib)
		}
	}
	return sum
}

// Pi returns π at the given precision (Machin: π = 16·atan(1/5) − 4·atan(1/239)).
func Pi(prec uint) *Float {
	constMu.Lock()
	defer constMu.Unlock()
	if piCache.val != nil && piCache.prec >= prec {
		out := New(prec)
		out.setFromParts(piCache.val.neg, piCache.val.mant, piCache.val.exp-int64(piCache.val.prec), false)
		return out
	}
	wp := prec + guardBits
	a := atanRecip(5, wp).MulPow2(4)   // 16 atan(1/5)
	b := atanRecip(239, wp).MulPow2(2) // 4 atan(1/239)
	pi := New(wp).Sub(a, b)
	piCache = constEntry{prec: prec, val: pi}
	out := New(prec)
	out.setFromParts(pi.neg, pi.mant, pi.exp-int64(pi.prec), false)
	return out
}

// Ln2 returns ln 2 at the given precision (2·atanh(1/3) = 2·Σ 1/((2k+1)·3^(2k+1))).
func Ln2(prec uint) *Float {
	constMu.Lock()
	defer constMu.Unlock()
	if ln2Cache.val != nil && ln2Cache.prec >= prec {
		out := New(prec)
		out.setFromParts(ln2Cache.val.neg, ln2Cache.val.mant, ln2Cache.val.exp-int64(ln2Cache.val.prec), false)
		return out
	}
	wp := prec + guardBits
	third := New(wp).Div(New(wp).SetInt64(1), New(wp).SetInt64(3))
	ninth := New(wp).Mul(third, third)
	sum := third.Clone()
	term := third.Clone()
	for k := int64(1); ; k++ {
		term = New(wp).Mul(term, ninth)
		contrib := New(wp).Div(term, New(wp).SetInt64(2*k+1))
		if contrib.IsZero() || contrib.exp < sum.exp-int64(wp) {
			break
		}
		sum = New(wp).Add(sum, contrib)
	}
	ln2 := sum.MulPow2(1)
	ln2Cache = constEntry{prec: prec, val: ln2}
	out := New(prec)
	out.setFromParts(ln2.neg, ln2.mant, ln2.exp-int64(ln2.prec), false)
	return out
}

// round rounds src into f at f's precision.
func (f *Float) round(src *Float) *Float {
	switch src.kind {
	case kindNaN:
		return f.setSpecial(kindNaN, false)
	case kindInf:
		return f.setSpecial(kindInf, src.neg)
	case kindZero:
		return f.setSpecial(kindZero, src.neg)
	}
	return f.setFromParts(src.neg, src.mant, src.exp-int64(src.prec), false)
}

// maxArgExp bounds transcendental argument magnitudes (|x| < 2^maxArgExp);
// beyond it trig reduction would need absurd precision and exp/log results
// are ±inf/NaN territory anyway.
const maxArgExp = 1 << 20

// Exp sets f = e^a.
func (f *Float) Exp(a *Float) *Float {
	switch {
	case a.IsNaN():
		return f.setSpecial(kindNaN, false)
	case a.IsInf():
		if a.neg {
			return f.setSpecial(kindZero, false)
		}
		return f.setSpecial(kindInf, false)
	case a.IsZero():
		return f.SetInt64(1)
	case a.exp > maxArgExp:
		if a.neg {
			return f.setSpecial(kindZero, false)
		}
		return f.setSpecial(kindInf, false)
	}

	wp := f.Prec() + guardBits
	ln2 := Ln2(wp)
	// k = round(a / ln2); r = a - k·ln2, |r| <= ln2/2.
	q := New(wp).Div(a, ln2)
	k := int64(math.RoundToEven(q.Float64()))
	r := New(wp).Sub(a, New(wp).Mul(New(wp).SetInt64(k), ln2))

	// Taylor: e^r = Σ r^n / n!.
	sum := New(wp).SetInt64(1)
	term := New(wp).SetInt64(1)
	for n := int64(1); ; n++ {
		term = New(wp).Div(New(wp).Mul(term, r), New(wp).SetInt64(n))
		if term.IsZero() || term.exp < sum.exp-int64(wp) {
			break
		}
		sum = New(wp).Add(sum, term)
	}
	sum.MulPow2(k)
	return f.round(sum)
}

// Log sets f = ln(a). Negative input yields NaN, zero yields -inf.
func (f *Float) Log(a *Float) *Float {
	switch {
	case a.IsNaN(), a.Sign() < 0:
		return f.setSpecial(kindNaN, false)
	case a.IsZero():
		return f.setSpecial(kindInf, true)
	case a.IsInf():
		return f.setSpecial(kindInf, false)
	}
	wp := f.Prec() + guardBits

	// Normalize a = m · 2^e with m ∈ [1, 2).
	e := a.exp - 1
	m := a.Clone()
	m.exp = 1 // m ∈ [1, 2)

	// ln m = 2 atanh(z), z = (m-1)/(m+1) ∈ [0, 1/3).
	mw := New(wp).round(m)
	one := New(wp).SetInt64(1)
	z := New(wp).Div(New(wp).Sub(mw, one), New(wp).Add(mw, one))
	z2 := New(wp).Mul(z, z)
	sum := z.Clone()
	term := z.Clone()
	for k := int64(1); ; k++ {
		term = New(wp).Mul(term, z2)
		contrib := New(wp).Div(term, New(wp).SetInt64(2*k+1))
		if contrib.IsZero() || (!sum.IsZero() && contrib.exp < sum.exp-int64(wp)) {
			break
		}
		sum = New(wp).Add(sum, contrib)
	}
	lnm := sum.MulPow2(1)

	out := New(wp).Add(lnm, New(wp).Mul(New(wp).SetInt64(e), Ln2(wp)))
	return f.round(out)
}

// sinCosReduced computes sin(r) and cos(r) by Taylor for |r| <= π/4 + ε.
func sinCosReduced(r *Float, wp uint) (sin, cos *Float) {
	r2 := New(wp).Mul(r, r)
	// sin: Σ (-1)^k r^(2k+1)/(2k+1)!
	sin = r.Clone()
	term := r.Clone()
	for k := int64(1); ; k++ {
		term = New(wp).Div(New(wp).Mul(term, r2), New(wp).SetInt64(2*k*(2*k+1)))
		if term.IsZero() || (!sin.IsZero() && term.exp < sin.exp-int64(wp)) {
			break
		}
		if k%2 == 1 {
			sin = New(wp).Sub(sin, term)
		} else {
			sin = New(wp).Add(sin, term)
		}
	}
	// cos: Σ (-1)^k r^(2k)/(2k)!
	cos = New(wp).SetInt64(1)
	term = New(wp).SetInt64(1)
	for k := int64(1); ; k++ {
		term = New(wp).Div(New(wp).Mul(term, r2), New(wp).SetInt64(2*k*(2*k-1)))
		if term.IsZero() || term.exp < cos.exp-int64(wp) {
			break
		}
		if k%2 == 1 {
			cos = New(wp).Sub(cos, term)
		} else {
			cos = New(wp).Add(cos, term)
		}
	}
	return sin, cos
}

// sinCos computes both sin(a) and cos(a) with argument reduction mod π/2.
func sinCos(a *Float, prec uint) (sin, cos *Float, ok bool) {
	if a.IsNaN() || a.IsInf() || (a.kind == kindFinite && a.exp > maxArgExp) {
		return nil, nil, false
	}
	// Working precision must absorb cancellation in the reduction:
	// subtracting q·π/2 from a loses ~exp(a) bits.
	extra := uint(0)
	if a.kind == kindFinite && a.exp > 0 {
		extra = uint(a.exp)
	}
	wp := prec + guardBits + extra

	halfPi := Pi(wp).MulPow2(-1)
	q := New(wp).Div(a, halfPi)
	k := int64(math.RoundToEven(q.Float64()))
	r := New(wp).Sub(a, New(wp).Mul(New(wp).SetInt64(k), halfPi))

	s, c := sinCosReduced(r, wp)
	switch ((k % 4) + 4) % 4 {
	case 0:
		return s, c, true
	case 1:
		return c, New(wp).Sub(New(wp), s), true // sin=cos(r), cos=-sin(r)
	case 2:
		return New(wp).Sub(New(wp), s), New(wp).Sub(New(wp), c), true
	default:
		return New(wp).Sub(New(wp), c), s, true
	}
}

// Sin sets f = sin(a).
func (f *Float) Sin(a *Float) *Float {
	if a.IsZero() {
		return f.setSpecial(kindZero, a.neg)
	}
	s, _, ok := sinCos(a, f.Prec())
	if !ok {
		return f.setSpecial(kindNaN, false)
	}
	return f.round(s)
}

// Cos sets f = cos(a).
func (f *Float) Cos(a *Float) *Float {
	if a.IsZero() {
		return f.SetInt64(1)
	}
	_, c, ok := sinCos(a, f.Prec())
	if !ok {
		return f.setSpecial(kindNaN, false)
	}
	return f.round(c)
}

// Tan sets f = tan(a) = sin(a)/cos(a).
func (f *Float) Tan(a *Float) *Float {
	s, c, ok := sinCos(a, f.Prec()+guardBits)
	if !ok {
		return f.setSpecial(kindNaN, false)
	}
	return f.round(New(f.Prec()+guardBits).Div(s, c))
}

// Atan sets f = atan(a).
func (f *Float) Atan(a *Float) *Float {
	switch {
	case a.IsNaN():
		return f.setSpecial(kindNaN, false)
	case a.IsZero():
		return f.setSpecial(kindZero, a.neg)
	case a.IsInf():
		out := Pi(f.Prec() + guardBits).MulPow2(-1)
		out.neg = a.neg
		return f.round(out)
	}
	wp := f.Prec() + guardBits
	x := New(wp).round(a)
	neg := x.Signbit()
	if neg {
		x.Neg()
	}

	// |x| > 1: atan(x) = π/2 − atan(1/x).
	invert := x.Cmp(New(wp).SetInt64(1)) > 0
	if invert {
		x = New(wp).Div(New(wp).SetInt64(1), x)
	}

	// Halve until small: atan(x) = 2 atan(x / (1 + sqrt(1+x²))).
	doublings := 0
	eighth := New(wp).SetFloat64(0.125)
	one := New(wp).SetInt64(1)
	for x.Cmp(eighth) > 0 {
		den := New(wp).Add(one, New(wp).Sqrt(New(wp).Add(one, New(wp).Mul(x, x))))
		x = New(wp).Div(x, den)
		doublings++
		if doublings > 64 {
			break
		}
	}

	// Series: atan(x) = Σ (-1)^k x^(2k+1)/(2k+1).
	x2 := New(wp).Mul(x, x)
	sum := x.Clone()
	term := x.Clone()
	for k := int64(1); ; k++ {
		term = New(wp).Mul(term, x2)
		contrib := New(wp).Div(term, New(wp).SetInt64(2*k+1))
		if contrib.IsZero() || (!sum.IsZero() && contrib.exp < sum.exp-int64(wp)) {
			break
		}
		if k%2 == 1 {
			sum = New(wp).Sub(sum, contrib)
		} else {
			sum = New(wp).Add(sum, contrib)
		}
	}
	sum.MulPow2(int64(doublings))

	if invert {
		sum = New(wp).Sub(Pi(wp).MulPow2(-1), sum)
	}
	if neg {
		sum.Neg()
	}
	return f.round(sum)
}

// Asin sets f = asin(a) = atan(a / sqrt(1 − a²)), |a| <= 1.
func (f *Float) Asin(a *Float) *Float {
	if a.IsNaN() || a.IsInf() {
		return f.setSpecial(kindNaN, false)
	}
	wp := f.Prec() + guardBits
	one := New(wp).SetInt64(1)
	x := New(wp).round(a)
	absx := New(wp).Abs(x)
	switch absx.Cmp(one) {
	case 1:
		return f.setSpecial(kindNaN, false)
	case 0:
		out := Pi(wp).MulPow2(-1)
		out.neg = a.Signbit()
		return f.round(out)
	}
	den := New(wp).Sqrt(New(wp).Sub(one, New(wp).Mul(x, x)))
	return f.Atan(New(wp).Div(x, den))
}

// Acos sets f = acos(a) = π/2 − asin(a).
func (f *Float) Acos(a *Float) *Float {
	wp := f.Prec() + guardBits
	asin := New(wp).Asin(a)
	if asin.IsNaN() {
		return f.setSpecial(kindNaN, false)
	}
	return f.round(New(wp).Sub(Pi(wp).MulPow2(-1), asin))
}

// Atan2 sets f = atan2(y, x) with the usual quadrant conventions.
func (f *Float) Atan2(y, x *Float) *Float {
	if y.IsNaN() || x.IsNaN() {
		return f.setSpecial(kindNaN, false)
	}
	wp := f.Prec() + guardBits
	switch {
	case x.IsZero() && y.IsZero():
		return f.setSpecial(kindZero, false)
	case x.IsZero():
		out := Pi(wp).MulPow2(-1)
		out.neg = y.Signbit()
		return f.round(out)
	case y.IsZero():
		if x.Sign() > 0 {
			return f.setSpecial(kindZero, y.neg)
		}
		return f.round(Pi(wp))
	}
	base := New(wp).Atan(New(wp).Div(y, x))
	if x.Sign() > 0 {
		return f.round(base)
	}
	pi := Pi(wp)
	if y.Sign() >= 0 {
		return f.round(New(wp).Add(base, pi))
	}
	return f.round(New(wp).Sub(base, pi))
}

// PowFloat sets f = a^b via exp(b·ln a) for a > 0; a == 0 and negative
// bases follow libm conventions for the cases FPVM's wrappers need
// (negative base with integral exponent).
func (f *Float) PowFloat(a, b *Float) *Float {
	switch {
	case a.IsNaN() || b.IsNaN():
		return f.setSpecial(kindNaN, false)
	case b.IsZero():
		return f.SetInt64(1)
	case a.IsZero():
		if b.Sign() > 0 {
			return f.setSpecial(kindZero, false)
		}
		return f.setSpecial(kindInf, false)
	}
	wp := f.Prec() + guardBits
	neg := false
	base := New(wp).round(a)
	if base.Signbit() {
		// Only integral exponents keep a real result.
		bf := b.Float64()
		if bf != math.Trunc(bf) || math.IsInf(bf, 0) {
			return f.setSpecial(kindNaN, false)
		}
		neg = math.Mod(math.Abs(bf), 2) == 1
		base.Neg()
	}
	out := New(wp).Exp(New(wp).Mul(b, New(wp).Log(base)))
	if neg {
		out.Neg()
	}
	return f.round(out)
}
