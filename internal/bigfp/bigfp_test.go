package bigfp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a Float to a math/big.Float for oracle comparison.
func toBig(f *Float, prec uint) *big.Float {
	out := new(big.Float).SetPrec(prec)
	switch f.kind {
	case kindNaN:
		panic("toBig(NaN)")
	case kindInf:
		out.SetInf(f.neg)
		return out
	case kindZero:
		out.SetFloat64(0)
		if f.neg {
			out.Neg(out)
		}
		return out
	}
	// value = mant × 2^(exp - prec)
	mi := new(big.Int)
	for i := len(f.mant) - 1; i >= 0; i-- {
		mi.Lsh(mi, 64)
		mi.Or(mi, new(big.Int).SetUint64(f.mant[i]))
	}
	out.SetInt(mi)
	// value = mant × 2^(exp − bitlen(mant)); SetMantExp multiplies the
	// receiver's value by 2^k.
	out.SetMantExp(out, int(f.exp)-natBitLen(f.mant))
	if f.neg {
		out.Neg(out)
	}
	return out
}

// oracleOp computes the op with big.Float at the same precision and RNE.
func oracleOp(op string, a, b *big.Float, prec uint) *big.Float {
	out := new(big.Float).SetPrec(prec)
	switch op {
	case "add":
		out.Add(a, b)
	case "sub":
		out.Sub(a, b)
	case "mul":
		out.Mul(a, b)
	case "quo":
		out.Quo(a, b)
	case "sqrt":
		out.Sqrt(a)
	}
	return out
}

func randFloat(r *rand.Rand) float64 {
	for {
		f := math.Float64frombits(r.Uint64())
		if !math.IsNaN(f) && !math.IsInf(f, 0) {
			return f
		}
	}
}

// TestOpsAgainstBigFloat cross-checks add/sub/mul/div/sqrt at several
// precisions against math/big's correctly rounded implementation.
func TestOpsAgainstBigFloat(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	precs := []uint{24, 53, 100, 200, 331}
	ops := []string{"add", "sub", "mul", "quo", "sqrt"}
	for iter := 0; iter < 4000; iter++ {
		prec := precs[iter%len(precs)]
		op := ops[(iter/len(precs))%len(ops)]
		af, bf := randFloat(r), randFloat(r)
		if op == "sqrt" {
			af = math.Abs(af)
		}
		a := New(prec).SetFloat64(af)
		b := New(prec).SetFloat64(bf)
		out := New(prec)
		switch op {
		case "add":
			out.Add(a, b)
		case "sub":
			out.Sub(a, b)
		case "mul":
			out.Mul(a, b)
		case "quo":
			out.Div(a, b)
		case "sqrt":
			out.Sqrt(a)
		}
		if out.IsNaN() {
			t.Fatalf("%s(%g, %g) @%d = NaN", op, af, bf, prec)
		}
		want := oracleOp(op, toBig(a, prec), toBig(b, prec), prec)
		if out.IsInf() || out.IsZero() {
			// big.Float has its own exponent limits; only compare sign
			// and kind loosely here.
			continue
		}
		got := toBig(out, prec+8)
		if got.Cmp(want) != 0 {
			t.Fatalf("%s(%x, %x) @prec %d:\n got  %s\n want %s",
				op, math.Float64bits(af), math.Float64bits(bf), prec,
				got.Text('p', 0), want.Text('p', 0))
		}
	}
}

// TestFloat64Roundtrip checks SetFloat64 -> Float64 is the identity for
// any precision >= 53.
func TestFloat64Roundtrip(t *testing.T) {
	f := func(bits uint64) bool {
		x := math.Float64frombits(bits)
		if math.IsNaN(x) {
			return math.IsNaN(New(53).SetFloat64(x).Float64())
		}
		got := New(64).SetFloat64(x).Float64()
		return math.Float64bits(got) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestFloat64RoundingAtLowPrec checks SetFloat64 rounding to tiny
// precision matches big.Float.
func TestFloat64RoundingAtLowPrec(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		x := randFloat(r)
		for _, prec := range []uint{2, 5, 11, 24} {
			got := New(prec).SetFloat64(x)
			want := new(big.Float).SetPrec(prec).SetFloat64(x)
			if got.IsZero() || got.IsInf() {
				continue
			}
			if toBig(got, prec+4).Cmp(want) != 0 {
				t.Fatalf("SetFloat64(%x) @%d: got %s want %s",
					math.Float64bits(x), prec, got, want.Text('p', 0))
			}
		}
	}
}

// TestFloat64Conversion checks Float64() against big.Float's Float64.
func TestFloat64Conversion(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		// Build a random 200-bit value from two float64 factors so it is
		// not representable in 53 bits.
		a := New(200).SetFloat64(randFloat(r))
		b := New(200).SetFloat64(randFloat(r))
		v := New(200).Mul(a, b)
		v = New(200).Add(v, New(200).SetFloat64(randFloat(r)))
		if v.IsNaN() || v.IsInf() || v.IsZero() {
			continue
		}
		want, _ := toBig(v, 300).Float64()
		got := v.Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Float64(%s): got %x want %x", v, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestSubnormalConversion exercises the graceful-underflow path.
func TestSubnormalConversion(t *testing.T) {
	cases := []float64{
		0x1p-1074, 0x1p-1073, 3 * 0x1p-1074, 0x1p-1022, 0x1.8p-1023,
		-0x1p-1074, -0x1.5p-1050, 0x1.fffffffffffffp-1023,
	}
	for _, x := range cases {
		got := New(200).SetFloat64(x).Float64()
		if math.Float64bits(got) != math.Float64bits(x) {
			t.Errorf("subnormal roundtrip %x -> %x", math.Float64bits(x), math.Float64bits(got))
		}
	}
	// A 200-bit value strictly between 0 and 2^-1074 rounds to 0 or the
	// smallest subnormal depending on magnitude.
	tiny := New(200).SetFloat64(0x1p-1000)
	tiny.Mul(tiny, New(200).SetFloat64(0x1p-80)) // 2^-1080
	if got := tiny.Float64(); got != 0 {
		t.Errorf("2^-1080 -> %g, want 0", got)
	}
	justOver := New(200).SetFloat64(0x1p-1000)
	justOver.Mul(justOver, New(200).SetFloat64(0x1.8p-75)) // 1.5×2^-1075 > half of 2^-1074
	if got := justOver.Float64(); got != 0x1p-1074 {
		t.Errorf("1.5*2^-1075 -> %g, want 2^-1074", got)
	}
}

// TestDirectedRounding checks ToZero/ToNegInf/ToPosInf against big.Float.
func TestDirectedRounding(t *testing.T) {
	modes := []struct {
		ours   RoundingMode
		theirs big.RoundingMode
	}{
		{ToZero, big.ToZero},
		{ToNegInf, big.ToNegativeInf},
		{ToPosInf, big.ToPositiveInf},
		{ToNearestEven, big.ToNearestEven},
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		af, bf := randFloat(r), randFloat(r)
		for _, m := range modes {
			const prec = 40
			a := New(prec).SetMode(m.ours).SetFloat64(af)
			b := New(prec).SetMode(m.ours).SetFloat64(bf)
			got := New(prec).SetMode(m.ours).Mul(a, b)
			if got.IsZero() || got.IsInf() || got.IsNaN() {
				continue
			}
			wa := new(big.Float).SetPrec(prec).SetMode(m.theirs).SetFloat64(af)
			wb := new(big.Float).SetPrec(prec).SetMode(m.theirs).SetFloat64(bf)
			want := new(big.Float).SetPrec(prec).SetMode(m.theirs).Mul(wa, wb)
			if toBig(got, prec+4).Cmp(want) != 0 {
				t.Fatalf("mode %v: mul(%g,%g) got %s want %s", m.ours, af, bf, got, want.Text('p', 0))
			}
		}
	}
}

func TestSpecials(t *testing.T) {
	inf := New(53).SetFloat64(math.Inf(1))
	ninf := New(53).SetFloat64(math.Inf(-1))
	nan := New(53).SetFloat64(math.NaN())
	zero := New(53).SetFloat64(0)
	one := New(53).SetFloat64(1)

	if !New(53).Add(inf, ninf).IsNaN() {
		t.Error("inf + -inf != NaN")
	}
	if !New(53).Mul(zero, inf).IsNaN() {
		t.Error("0 * inf != NaN")
	}
	if !New(53).Div(zero, zero).IsNaN() {
		t.Error("0/0 != NaN")
	}
	if v := New(53).Div(one, zero); !v.IsInf() || v.Sign() != 1 {
		t.Error("1/0 != +inf")
	}
	if !New(53).Sqrt(New(53).SetFloat64(-4)).IsNaN() {
		t.Error("sqrt(-4) != NaN")
	}
	if !New(53).Add(nan, one).IsNaN() {
		t.Error("NaN + 1 != NaN")
	}
	if v := New(53).Sub(one, one); !v.IsZero() {
		t.Error("1-1 != 0")
	}
}

func TestCmp(t *testing.T) {
	mk := func(x float64) *Float { return New(64).SetFloat64(x) }
	cases := []struct {
		a, b float64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {1, 1, 0}, {-1, 1, -1}, {-2, -1, -1},
		{0, 0, 0}, {0, 1e-300, -1}, {math.Inf(1), 1e308, 1},
		{math.Inf(-1), -1e308, -1}, {math.Inf(1), math.Inf(1), 0},
	}
	for _, tc := range cases {
		if got := mk(tc.a).Cmp(mk(tc.b)); got != tc.want {
			t.Errorf("Cmp(%g,%g) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if mk(1).Cmp(New(64).SetFloat64(math.NaN())) != 2 {
		t.Error("Cmp with NaN should be unordered (2)")
	}
	// Cross-precision comparison.
	a := New(24).SetFloat64(1.0000001)
	b := New(200).SetFloat64(1.0000001)
	if a.Cmp(b) == 0 {
		// a was rounded at 24 bits, so they may differ; either way Cmp
		// must be antisymmetric.
		if b.Cmp(a) != 0 {
			t.Error("Cmp not antisymmetric")
		}
	} else if a.Cmp(b) != -b.Cmp(a) {
		t.Error("Cmp not antisymmetric")
	}
}

func TestSetInt64(t *testing.T) {
	f := func(v int64) bool {
		x := New(64).SetInt64(v)
		return x.Float64() == float64(v) || v != int64(float64(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := New(64).SetInt64(math.MinInt64).Float64(); got != -0x1p63 {
		t.Errorf("MinInt64 -> %g", got)
	}
	if !New(64).SetInt64(0).IsZero() {
		t.Error("SetInt64(0) not zero")
	}
}

// TestAddCancellation exercises catastrophic cancellation exactness.
func TestAddCancellation(t *testing.T) {
	a := New(200).SetFloat64(1.0)
	eps := New(200).SetFloat64(0x1p-120)
	sum := New(200).Add(a, eps)  // exact at 200 bits
	diff := New(200).Sub(sum, a) // must recover eps exactly
	if diff.Cmp(eps) != 0 {
		t.Errorf("(1 + 2^-120) - 1 = %s, want 2^-120", diff)
	}
}

// TestFarApartAddSub exercises the sticky-only fast path.
func TestFarApartAddSub(t *testing.T) {
	big1 := New(53).SetFloat64(1.0)
	tiny := New(53).SetFloat64(0x1p-200)
	if got := New(53).Add(big1, tiny).Float64(); got != 1.0 {
		t.Errorf("1 + 2^-200 = %g (RNE), want 1", got)
	}
	if got := New(53).Sub(big1, tiny).Float64(); got != 1.0 {
		t.Errorf("1 - 2^-200 = %g (RNE), want 1", got)
	}
	// Directed rounding must honor the sticky direction.
	down := New(53).SetMode(ToNegInf)
	if got := down.Sub(big1, tiny).Float64(); got >= 1.0 {
		t.Errorf("RD(1 - 2^-200) = %g, want < 1", got)
	}
	up := New(53).SetMode(ToPosInf)
	if got := up.Add(big1, tiny).Float64(); got <= 1.0 {
		t.Errorf("RU(1 + 2^-200) = %g, want > 1", got)
	}
}

func TestNegAbsSignbit(t *testing.T) {
	x := New(53).SetFloat64(-3.5)
	if !x.Signbit() {
		t.Error("-3.5 signbit false")
	}
	y := x.Clone().Neg()
	if y.Signbit() || y.Float64() != 3.5 {
		t.Errorf("neg(-3.5) = %g", y.Float64())
	}
	z := New(53)
	z.Abs(x)
	if z.Float64() != 3.5 {
		t.Errorf("abs(-3.5) = %g", z.Float64())
	}
	if x.Float64() != -3.5 {
		t.Error("Neg/Abs mutated the source")
	}
}

func TestMinMax(t *testing.T) {
	a := New(53).SetFloat64(2)
	b := New(53).SetFloat64(3)
	if New(53).Min(a, b).Float64() != 2 {
		t.Error("min(2,3)")
	}
	if New(53).Max(a, b).Float64() != 3 {
		t.Error("max(2,3)")
	}
}

func TestLimbCount(t *testing.T) {
	if New(53).LimbCount() != 1 || New(200).LimbCount() != 4 || New(64).LimbCount() != 1 || New(65).LimbCount() != 2 {
		t.Error("limb counts wrong")
	}
}
