// Binary serialization of Float values for the checkpoint wire format.
// The encoding is a faithful dump of the internal representation —
// precision, rounding mode, kind, sign, exponent and mantissa limbs — so
// decode reproduces the exact value (and the exact future rounding
// behaviour) without renormalization.

package bigfp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadEncoding is returned by DecodeFloat for malformed input.
var ErrBadEncoding = errors.New("bigfp: malformed float encoding")

// AppendBinary appends the binary encoding of f to b and returns the
// extended slice. Layout (little-endian): prec u32, mode u8, kind u8,
// neg u8, exp i64, limb count u32, limbs u64 each.
func (f *Float) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, f.prec)
	b = append(b, byte(f.mode), byte(f.kind), bool2byte(f.neg))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.exp))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.mant)))
	for _, limb := range f.mant {
		b = binary.LittleEndian.AppendUint64(b, limb)
	}
	return b
}

// DecodeFloat reconstructs a Float from an encoding produced by
// AppendBinary. The whole of b must be consumed.
func DecodeFloat(b []byte) (*Float, error) {
	if len(b) < 4+3+8+4 {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrBadEncoding, len(b))
	}
	f := &Float{
		prec: binary.LittleEndian.Uint32(b),
		mode: RoundingMode(b[4]),
		kind: kind(b[5]),
		neg:  b[6] != 0,
		exp:  int64(binary.LittleEndian.Uint64(b[7:])),
	}
	n := binary.LittleEndian.Uint32(b[15:])
	rest := b[19:]
	if f.prec < MinPrec || f.mode > ToPosInf || f.kind > kindNaN {
		return nil, fmt.Errorf("%w: invalid header fields", ErrBadEncoding)
	}
	if uint64(len(rest)) != uint64(n)*8 {
		return nil, fmt.Errorf("%w: want %d limbs, have %d bytes", ErrBadEncoding, n, len(rest))
	}
	if n > 0 {
		f.mant = make([]uint64, n)
		for i := range f.mant {
			f.mant[i] = binary.LittleEndian.Uint64(rest[i*8:])
		}
	}
	if f.kind == kindFinite {
		if len(f.mant) == 0 || f.mant[len(f.mant)-1] == 0 {
			return nil, fmt.Errorf("%w: finite value with unnormalized mantissa", ErrBadEncoding)
		}
	}
	return f, nil
}

func bool2byte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
