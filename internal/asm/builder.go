// Package asm provides a programmatic assembler for the simulated ISA:
// label-based control flow, data/rodata definitions, GOT-based imports,
// and two-pass layout producing loadable obj.Images. The workload compiler
// and the tests build all guest code through it.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"fpvm/internal/isa"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

type entry struct {
	in       isa.Inst
	labelRef string // FormRel target label (branch/call)
	dataRef  string // RMOp is a rip-relative reference to this data symbol
	gotRef   string // RMOp is a rip-relative reference to this import's GOT slot
	// layout results
	off int
	len int
}

type dataItem struct {
	name  string
	bytes []byte
	align int
}

// Builder accumulates instructions and data, then lays them out into an
// image at the conventional bases.
type Builder struct {
	name    string
	entries []entry
	labels  map[string]int // label -> entry index it precedes
	funcs   map[string]int // function symbol -> entry index

	rodata []dataItem
	data   []dataItem

	imports  []string
	gotIndex map[string]int

	entrySym string
}

// NewBuilder returns an empty builder for an image called name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   make(map[string]int),
		funcs:    make(map[string]int),
		gotIndex: make(map[string]int),
	}
}

// I appends a raw instruction.
func (b *Builder) I(in isa.Inst) { b.entries = append(b.entries, entry{in: in}) }

// RM appends a reg, r/m instruction.
func (b *Builder) RM(op isa.Op, reg, rm isa.Operand) { b.I(isa.MakeRM(op, reg, rm)) }

// MI appends an r/m, imm instruction.
func (b *Builder) MI(op isa.Op, rm isa.Operand, imm int64) { b.I(isa.MakeMI(op, rm, imm)) }

// M appends a single-operand instruction.
func (b *Builder) M(op isa.Op, rm isa.Operand) { b.I(isa.MakeM(op, rm)) }

// RMI appends a reg, r/m, imm instruction.
func (b *Builder) RMI(op isa.Op, reg, rm isa.Operand, imm int64) { b.I(isa.MakeRMI(op, reg, rm, imm)) }

// Op0 appends a nullary instruction.
func (b *Builder) Op0(op isa.Op) { b.I(isa.MakeNullary(op)) }

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("asm: duplicate label " + name)
	}
	b.labels[name] = len(b.entries)
}

// Func defines a function symbol at the current position (also a label).
func (b *Builder) Func(name string) {
	b.Label(name)
	b.funcs[name] = len(b.entries)
}

// SetEntry selects the entry-point function.
func (b *Builder) SetEntry(name string) { b.entrySym = name }

// Branch appends a FormRel instruction targeting label.
func (b *Builder) Branch(op isa.Op, label string) {
	b.entries = append(b.entries, entry{in: isa.MakeRel(op, 0), labelRef: label})
}

// CallLocal appends a direct call to a local function label.
func (b *Builder) CallLocal(fn string) { b.Branch(isa.CALL, fn) }

// CallImport appends an indirect call through the GOT slot of an imported
// symbol (libc/libm/host functions). The dynamic loader fills the slot.
func (b *Builder) CallImport(sym string) {
	b.addImport(sym)
	b.entries = append(b.entries, entry{
		in:     isa.MakeM(isa.CALLR, isa.MemRIP(0)),
		gotRef: sym,
	})
}

// LoadImportAddr loads the resolved address of an imported symbol into a
// GPR (used by trampolines that need a function pointer).
func (b *Builder) LoadImportAddr(dst isa.Reg, sym string) {
	b.addImport(sym)
	b.entries = append(b.entries, entry{
		in:     isa.MakeRM(isa.MOV64RM, isa.GPR(dst), isa.MemRIP(0)),
		gotRef: sym,
	})
}

func (b *Builder) addImport(sym string) {
	if _, ok := b.gotIndex[sym]; !ok {
		b.gotIndex[sym] = len(b.imports)
		b.imports = append(b.imports, sym)
	}
}

// RMData appends a reg, [rip+data] instruction referring to data symbol.
func (b *Builder) RMData(op isa.Op, reg isa.Operand, dataSym string) {
	b.entries = append(b.entries, entry{
		in:      isa.MakeRM(op, reg, isa.MemRIP(0)),
		dataRef: dataSym,
	})
}

// MRData appends a [rip+data], reg store to a data symbol.
func (b *Builder) MRData(op isa.Op, dataSym string, reg isa.Operand) {
	b.entries = append(b.entries, entry{
		in:      isa.MakeRM(op, reg, isa.MemRIP(0)), // FormMR shares layout
		dataRef: dataSym,
	})
}

// MData appends a single-operand instruction whose r/m is a data symbol.
func (b *Builder) MData(op isa.Op, dataSym string) {
	b.entries = append(b.entries, entry{
		in:      isa.MakeM(op, isa.MemRIP(0)),
		dataRef: dataSym,
	})
}

// LeaData loads the address of a data symbol into a GPR.
func (b *Builder) LeaData(dst isa.Reg, dataSym string) {
	b.RMData(isa.LEA, isa.GPR(dst), dataSym)
}

// Quad defines 8-byte little-endian values in .data.
func (b *Builder) Quad(name string, vals ...uint64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	b.data = append(b.data, dataItem{name: name, bytes: buf, align: 8})
}

// Double defines float64 values in .data.
func (b *Builder) Double(name string, vals ...float64) {
	u := make([]uint64, len(vals))
	for i, v := range vals {
		u[i] = math.Float64bits(v)
	}
	b.Quad(name, u...)
}

// Space reserves zeroed bytes in .data.
func (b *Builder) Space(name string, size int) {
	b.data = append(b.data, dataItem{name: name, bytes: make([]byte, size), align: 16})
}

// RoDouble defines float64 constants in .rodata.
func (b *Builder) RoDouble(name string, vals ...float64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	b.rodata = append(b.rodata, dataItem{name: name, bytes: buf, align: 8})
}

// RoBytes defines raw bytes (e.g. format strings) in .rodata.
func (b *Builder) RoBytes(name string, data []byte) {
	b.rodata = append(b.rodata, dataItem{name: name, bytes: data, align: 1})
}

func align(off, a int) int {
	if a <= 1 {
		return off
	}
	return (off + a - 1) &^ (a - 1)
}

// Build lays out text/rodata/data/got and produces a loadable image.
func (b *Builder) Build() (*obj.Image, error) {
	img := obj.New(b.name)

	// Lay out data sections first so instruction fixups know addresses.
	dataAddrs := make(map[string]uint64)
	layout := func(items []dataItem, base uint64) []byte {
		off := 0
		for i := range items {
			off = align(off, items[i].align)
			if _, dup := dataAddrs[items[i].name]; dup {
				panic("asm: duplicate data symbol " + items[i].name)
			}
			dataAddrs[items[i].name] = base + uint64(off)
			off += len(items[i].bytes)
		}
		buf := make([]byte, off)
		off = 0
		for i := range items {
			off = align(off, items[i].align)
			copy(buf[off:], items[i].bytes)
			off += len(items[i].bytes)
		}
		return buf
	}
	roBuf := layout(b.rodata, obj.RODataBase)
	dataBuf := layout(b.data, obj.DataBase)

	// GOT: one 8-byte slot per import, appended after .data.
	gotBase := obj.DataBase + uint64(align(len(dataBuf), 16))
	gotBuf := make([]byte, 8*len(b.imports))

	// Pass 1: provisional encode to learn lengths/offsets.
	off := 0
	for i := range b.entries {
		e := &b.entries[i]
		e.in.Addr = obj.TextBase + uint64(off)
		enc, err := isa.Encode(&e.in)
		if err != nil {
			return nil, fmt.Errorf("asm: %s entry %d: %w", b.name, i, err)
		}
		e.off = off
		e.len = len(enc)
		off += len(enc)
	}
	textLen := off

	labelAddr := func(name string) (uint64, error) {
		idx, ok := b.labels[name]
		if !ok {
			return 0, fmt.Errorf("asm: undefined label %q", name)
		}
		if idx == len(b.entries) {
			return obj.TextBase + uint64(textLen), nil
		}
		return obj.TextBase + uint64(b.entries[idx].off), nil
	}

	// Pass 2: resolve references and emit final bytes.
	text := make([]byte, 0, textLen)
	for i := range b.entries {
		e := &b.entries[i]
		next := obj.TextBase + uint64(e.off+e.len)
		switch {
		case e.labelRef != "":
			t, err := labelAddr(e.labelRef)
			if err != nil {
				return nil, err
			}
			e.in.Imm = int64(t) - int64(next)
		case e.dataRef != "":
			a, ok := dataAddrs[e.dataRef]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q", e.dataRef)
			}
			e.in.RMOp.Disp = int32(int64(a) - int64(next))
		case e.gotRef != "":
			slot := gotBase + uint64(8*b.gotIndex[e.gotRef])
			e.in.RMOp.Disp = int32(int64(slot) - int64(next))
		}
		enc, err := isa.Encode(&e.in)
		if err != nil {
			return nil, fmt.Errorf("asm: %s entry %d reencode: %w", b.name, i, err)
		}
		if len(enc) != e.len {
			return nil, fmt.Errorf("asm: %s entry %d: length changed %d -> %d", b.name, i, e.len, len(enc))
		}
		text = append(text, enc...)
	}

	img.AddSection(obj.Section{Name: ".text", Addr: obj.TextBase, Data: text, Perm: mem.PermRX})
	if len(roBuf) > 0 {
		img.AddSection(obj.Section{Name: ".rodata", Addr: obj.RODataBase, Data: roBuf, Perm: mem.PermRead})
	}
	dataAll := make([]byte, align(len(dataBuf), 16)+len(gotBuf))
	copy(dataAll, dataBuf)
	copy(dataAll[align(len(dataBuf), 16):], gotBuf)
	if len(dataAll) > 0 {
		img.AddSection(obj.Section{Name: ".data", Addr: obj.DataBase, Data: dataAll, Perm: mem.PermRW})
	}

	// Symbols: functions, data, imports' GOT slots.
	for name, idx := range b.funcs {
		a := obj.TextBase + uint64(textLen)
		if idx < len(b.entries) {
			a = obj.TextBase + uint64(b.entries[idx].off)
		}
		img.AddSymbol(obj.Symbol{Name: name, Addr: a, Kind: obj.SymFunc})
	}
	for name, a := range dataAddrs {
		img.AddSymbol(obj.Symbol{Name: name, Addr: a, Kind: obj.SymData})
	}
	for i, sym := range b.imports {
		slot := gotBase + uint64(8*i)
		img.AddSymbol(obj.Symbol{Name: "got$" + sym, Addr: slot, Kind: obj.SymData})
		img.Relocs = append(img.Relocs, obj.Reloc{SlotAddr: slot, Symbol: sym})
	}

	if b.entrySym != "" {
		sym, ok := img.Lookup(b.entrySym)
		if !ok {
			return nil, fmt.Errorf("asm: entry symbol %q undefined", b.entrySym)
		}
		img.Entry = sym.Addr
	} else {
		img.Entry = obj.TextBase
	}
	return img, nil
}
