package asm

import (
	"testing"

	"fpvm/internal/isa"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

func TestBuildAndDecode(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.MI(isa.MOV64RI, isa.GPR(isa.RAX), 5)
	b.Label("loop")
	b.MI(isa.SUB64I, isa.GPR(isa.RAX), 1)
	b.Branch(isa.JNE, "loop")
	b.Op0(isa.HLT)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	text := img.Section(".text")
	if text == nil || len(text.Data) == 0 {
		t.Fatal("no text")
	}
	// Decode the whole stream and check the branch targets the sub.
	var insts []isa.Inst
	off := 0
	for off < len(text.Data) {
		in, err := isa.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		insts = append(insts, in)
		off += int(in.Len)
	}
	if len(insts) != 4 {
		t.Fatalf("%d instructions", len(insts))
	}
	if insts[2].Op != isa.JNE || insts[2].BranchTarget() != insts[1].Addr {
		t.Errorf("branch target %#x, want %#x", insts[2].BranchTarget(), insts[1].Addr)
	}
	if img.Entry != text.Addr {
		t.Errorf("entry %#x", img.Entry)
	}
}

func TestForwardBranch(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Branch(isa.JMP, "end")
	b.Op0(isa.NOP)
	b.Label("end")
	b.Op0(isa.HLT)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	text := img.Section(".text")
	jmp, err := isa.Decode(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	nop, _ := isa.Decode(text.Data[jmp.Len:], text.Addr+uint64(jmp.Len))
	if jmp.BranchTarget() != nop.Addr+uint64(nop.Len) {
		t.Errorf("forward target %#x", jmp.BranchTarget())
	}
}

func TestDataReferences(t *testing.T) {
	b := NewBuilder("t")
	b.RoDouble("pi", 3.14159)
	b.Double("state", 1, 2, 3)
	b.Quad("flags", 7)
	b.Space("buf", 64)
	b.RoBytes("fmt", []byte("hi\x00"))
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "pi")
	b.MData(isa.INC64, "flags")
	b.LeaData(isa.RDI, "fmt")
	b.Op0(isa.HLT)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"pi", "state", "flags", "buf", "fmt"} {
		if _, ok := img.Lookup(sym); !ok {
			t.Errorf("symbol %s missing", sym)
		}
	}
	// Load and verify the rip-relative reference resolves to pi's bits.
	as := mem.NewAddressSpace()
	if err := img.Load(as, nil); err != nil {
		t.Fatal(err)
	}
	text := img.Section(".text")
	in, err := isa.Decode(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	target := in.Addr + uint64(in.Len) + uint64(int64(in.RMOp.Disp))
	sym, _ := img.Lookup("pi")
	if target != sym.Addr {
		t.Errorf("rip ref resolves to %#x, pi at %#x", target, sym.Addr)
	}
}

func TestImports(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.CallImport("printf")
	b.CallImport("printf") // deduplicated slot
	b.CallImport("sin")
	b.LoadImportAddr(isa.RAX, "cos")
	b.Op0(isa.HLT)
	b.SetEntry("main")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Relocs) != 3 {
		t.Fatalf("relocs: %+v", img.Relocs)
	}
	as := mem.NewAddressSpace()
	resolve := func(name string) (uint64, bool) {
		return obj.HostBase + uint64(len(name)), true
	}
	if err := img.Load(as, resolve); err != nil {
		t.Fatal(err)
	}
	slot, _ := img.Lookup("got$printf")
	v, _ := as.ReadUint64(slot.Addr)
	if v != obj.HostBase+6 {
		t.Errorf("printf slot = %#x", v)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
}

func TestUndefinedLabelError(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Branch(isa.JMP, "nowhere")
	b.SetEntry("main")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label built")
	}
}

func TestUndefinedEntryError(t *testing.T) {
	b := NewBuilder("t")
	b.Op0(isa.NOP)
	b.SetEntry("ghost")
	if _, err := b.Build(); err == nil {
		t.Error("undefined entry built")
	}
}

func TestUndefinedDataError(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.RMData(isa.MOVSDXM, isa.XMM(isa.XMM0), "ghost")
	b.SetEntry("main")
	if _, err := b.Build(); err == nil {
		t.Error("undefined data symbol built")
	}
}
