package asm

import (
	"fmt"
	"strconv"
	"strings"

	"fpvm/internal/isa"
	"fpvm/internal/obj"
)

// Assemble parses Intel-flavoured assembly text into an image. It is the
// human-facing front end over Builder, used by tests and tooling; the
// workload compiler emits through Builder directly.
//
// Syntax per line (comments start with ';' or '#'):
//
//	.func name              begin a function (symbol + label)
//	.entry name             select the entry point
//	.double name v [v...]   data: float64s
//	.quad name v [v...]     data: uint64s
//	.rodouble name v [...]  rodata: float64s
//	.string name "text"     rodata: NUL-terminated bytes
//	.space name n           data: n zero bytes
//	label:                  define a label
//	op dst, src             instructions, e.g. addsd xmm0, xmm1
//	jne label / call fn     control flow by label
//	call @printf            import call through the GOT
//
// Memory operands: [rax], [rax+8], [rax+rcx*8-0x10], [rip+sym] (data
// symbol reference), qword/xmmword ptr prefixes are accepted and ignored
// (width comes from the opcode).
func Assemble(name, src string) (img *obj.Image, err error) {
	b := NewBuilder(name)
	a := &assembler{b: b}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("asm: %v", r)
		}
	}()
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %q: %w", ln+1, strings.TrimSpace(raw), err)
		}
	}
	return b.Build()
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

type assembler struct {
	b *Builder
}

func (a *assembler) line(line string) error {
	// Directives.
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	// Label.
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		a.b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	return a.instruction(line)
}

func (a *assembler) directive(line string) error {
	fields := splitFields(line)
	switch fields[0] {
	case ".func":
		if len(fields) != 2 {
			return fmt.Errorf(".func needs a name")
		}
		a.b.Func(fields[1])
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry needs a name")
		}
		a.b.SetEntry(fields[1])
	case ".double", ".rodouble":
		if len(fields) < 3 {
			return fmt.Errorf("%s needs a name and values", fields[0])
		}
		vals := make([]float64, 0, len(fields)-2)
		for _, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		if fields[0] == ".double" {
			a.b.Double(fields[1], vals...)
		} else {
			a.b.RoDouble(fields[1], vals...)
		}
	case ".quad":
		if len(fields) < 3 {
			return fmt.Errorf(".quad needs a name and values")
		}
		vals := make([]uint64, 0, len(fields)-2)
		for _, f := range fields[2:] {
			v, err := strconv.ParseUint(f, 0, 64)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		a.b.Quad(fields[1], vals...)
	case ".space":
		if len(fields) != 3 {
			return fmt.Errorf(".space needs a name and size")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		a.b.Space(fields[1], n)
	case ".string":
		i := strings.Index(line, "\"")
		j := strings.LastIndex(line, "\"")
		if i < 0 || j <= i || len(fields) < 2 {
			return fmt.Errorf(".string needs a name and a quoted literal")
		}
		text, err := strconv.Unquote(line[i : j+1])
		if err != nil {
			return err
		}
		a.b.RoBytes(fields[1], append([]byte(text), 0))
	default:
		return fmt.Errorf("unknown directive %s", fields[0])
	}
	return nil
}

// mnemonicOps maps a mnemonic to candidate opcodes; the operand shapes
// disambiguate width variants (e.g. movsd load vs store).
var mnemonicOps = map[string][]isa.Op{
	"nop": {isa.NOP}, "hlt": {isa.HLT}, "int3": {isa.INT3}, "syscall": {isa.SYSCALL},
	"ret": {isa.RET}, "call": {isa.CALL, isa.CALLR}, "jmp": {isa.JMP, isa.JMPR},
	"je": {isa.JE}, "jne": {isa.JNE}, "jl": {isa.JL}, "jle": {isa.JLE},
	"jg": {isa.JG}, "jge": {isa.JGE}, "jb": {isa.JB}, "jbe": {isa.JBE},
	"ja": {isa.JA}, "jae": {isa.JAE}, "js": {isa.JS}, "jns": {isa.JNS},
	"jp": {isa.JP}, "jnp": {isa.JNP},

	"mov":    {isa.MOV64RR, isa.MOV64RM, isa.MOV64MR, isa.MOV64RI},
	"movzx":  {isa.MOVZX8},
	"movsxd": {isa.MOVSXD},
	"lea":    {isa.LEA},
	"push":   {isa.PUSH}, "pop": {isa.POP}, "xchg": {isa.XCHG64},

	"add": {isa.ADD64, isa.ADD64I}, "sub": {isa.SUB64, isa.SUB64I},
	"imul": {isa.IMUL64}, "and": {isa.AND64, isa.AND64I},
	"or": {isa.OR64, isa.OR64I}, "xor": {isa.XOR64, isa.XOR64I},
	"cmp": {isa.CMP64, isa.CMP64I}, "test": {isa.TEST64},
	"shl": {isa.SHL64I}, "shr": {isa.SHR64I}, "sar": {isa.SAR64I},
	"inc": {isa.INC64}, "dec": {isa.DEC64}, "neg": {isa.NEG64}, "not": {isa.NOT64},

	"addsd": {isa.ADDSD}, "subsd": {isa.SUBSD}, "mulsd": {isa.MULSD},
	"divsd": {isa.DIVSD}, "sqrtsd": {isa.SQRTSD}, "minsd": {isa.MINSD},
	"maxsd": {isa.MAXSD}, "ucomisd": {isa.UCOMISD}, "comisd": {isa.COMISD},
	"cmpeqsd": {isa.CMPEQSD}, "cmpltsd": {isa.CMPLTSD}, "cmplesd": {isa.CMPLESD},
	"cmpneqsd": {isa.CMPNEQSD},
	"addpd":    {isa.ADDPD}, "subpd": {isa.SUBPD}, "mulpd": {isa.MULPD},
	"divpd": {isa.DIVPD}, "sqrtpd": {isa.SQRTPD},
	"cvtsi2sd": {isa.CVTSI2SD}, "cvtsd2si": {isa.CVTSD2SI}, "cvttsd2si": {isa.CVTTSD2SI},

	"movsd":  {isa.MOVSDXX, isa.MOVSDXM, isa.MOVSDMX},
	"movapd": {isa.MOVAPDXX, isa.MOVAPDXM, isa.MOVAPDMX},
	"movupd": {isa.MOVUPDXM, isa.MOVUPDMX},
	"movq":   {isa.MOVQXG, isa.MOVQGX, isa.MOVQXM, isa.MOVQMX},
	"movhpd": {isa.MOVHPDXM, isa.MOVHPDMX},
	"movlpd": {isa.MOVLPDXM, isa.MOVLPDMX},
	"xorpd":  {isa.XORPD}, "andpd": {isa.ANDPD}, "orpd": {isa.ORPD}, "pxor": {isa.PXOR},
	"unpcklpd": {isa.UNPCKLPD}, "unpckhpd": {isa.UNPCKHPD},
}

// operand is the parsed form before shape resolution.
type operand struct {
	kind    byte // 'g' gpr, 'x' xmm, 'm' memory, 'i' imm, 'l' label/symbol
	reg     isa.Reg
	mem     isa.Operand
	imm     int64
	label   string
	dataSym string // [rip+sym] reference
	impSym  string // @import reference
}

func (a *assembler) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	cands, ok := mnemonicOps[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	var ops []operand
	rest = strings.TrimSpace(rest)
	if rest != "" {
		for _, part := range splitOperands(rest) {
			op, err := parseOperand(part)
			if err != nil {
				return err
			}
			ops = append(ops, op)
		}
	}
	return a.emit(mnemonic, cands, ops)
}

func (a *assembler) emit(mnemonic string, cands []isa.Op, ops []operand) error {
	// Control flow with label / import targets.
	if len(ops) == 1 && (ops[0].kind == 'l') {
		op := cands[0]
		if op.Form() == isa.FormRel {
			if ops[0].impSym != "" {
				if mnemonic != "call" {
					return fmt.Errorf("imports only via call")
				}
				a.b.CallImport(ops[0].impSym)
				return nil
			}
			a.b.Branch(op, ops[0].label)
			return nil
		}
	}

	// Pick the opcode variant whose operand shapes fit.
	for _, cand := range cands {
		if in, ok := a.shape(cand, ops); ok {
			if ds := dataRefOf(ops); ds != "" {
				// Re-route through the data-reference entry points so the
				// builder records the fixup.
				return a.emitDataRef(cand, in, ds, ops)
			}
			a.b.I(in)
			return nil
		}
	}
	return fmt.Errorf("no encoding of %q fits operands", mnemonic)
}

func dataRefOf(ops []operand) string {
	for _, o := range ops {
		if o.kind == 'm' && o.dataSym != "" {
			return o.dataSym
		}
	}
	return ""
}

func (a *assembler) emitDataRef(op isa.Op, in isa.Inst, sym string, ops []operand) error {
	switch op.Form() {
	case isa.FormRM:
		a.b.RMData(op, in.RegOp, sym)
	case isa.FormMR:
		a.b.MRData(op, sym, in.RegOp)
	case isa.FormM, isa.FormMI:
		if op.Form() == isa.FormMI {
			return fmt.Errorf("imm + data symbol unsupported in text form")
		}
		a.b.MData(op, sym)
	default:
		return fmt.Errorf("data symbol not valid here")
	}
	return nil
}

// shape tries to fit parsed operands to candidate op's encoding form.
func (a *assembler) shape(op isa.Op, ops []operand) (isa.Inst, bool) {
	cls1, cls2 := op.RegClasses()
	matchReg := func(o operand, cls isa.RegClass) (isa.Operand, bool) {
		switch {
		case o.kind == 'g' && cls == isa.ClassGPR:
			return isa.GPR(o.reg), true
		case o.kind == 'x' && cls == isa.ClassXMM:
			return isa.XMM(o.reg), true
		}
		return isa.Operand{}, false
	}
	matchRM := func(o operand, cls isa.RegClass) (isa.Operand, bool) {
		if o.kind == 'm' {
			if op.MemBytes() == 0 && !op.RequiresMem() {
				// This variant has no memory form (e.g. movsd xmm,xmm);
				// lea is the exception: memory-only but accessless.
				return isa.Operand{}, false
			}
			return o.mem, true
		}
		if op.RequiresMem() {
			return isa.Operand{}, false
		}
		return matchReg(o, cls)
	}

	switch op.Form() {
	case isa.FormNone:
		if len(ops) == 0 {
			return isa.MakeNullary(op), true
		}
	case isa.FormRM:
		if len(ops) != 2 {
			return isa.Inst{}, false
		}
		r, ok1 := matchReg(ops[0], cls1)
		m, ok2 := matchRM(ops[1], cls2)
		if ok1 && ok2 {
			return isa.MakeRM(op, r, m), true
		}
	case isa.FormMR:
		if len(ops) != 2 {
			return isa.Inst{}, false
		}
		m, ok1 := matchRM(ops[0], cls1)
		r, ok2 := matchReg(ops[1], cls2)
		if ok1 && ok2 && ops[0].kind == 'm' {
			return isa.MakeRM(op, r, m), true // FormMR layout shares fields
		}
	case isa.FormMI:
		if len(ops) != 2 || ops[1].kind != 'i' {
			return isa.Inst{}, false
		}
		m, ok := matchRM(ops[0], cls1)
		if ok {
			return isa.MakeMI(op, m, ops[1].imm), true
		}
	case isa.FormM:
		if len(ops) != 1 {
			return isa.Inst{}, false
		}
		m, ok := matchRM(ops[0], cls1)
		if ok {
			return isa.MakeM(op, m), true
		}
	}
	return isa.Inst{}, false
}

func splitFields(s string) []string { return strings.Fields(s) }

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(cur.String()))
				cur.Reset()
				continue
			}
		}
		cur.WriteRune(r)
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	// Strip width keywords.
	for _, kw := range []string{"byte ptr", "word ptr", "dword ptr", "qword ptr", "xmmword ptr"} {
		s = strings.TrimSpace(strings.TrimPrefix(s, kw))
	}
	if strings.HasPrefix(s, "@") {
		return operand{kind: 'l', impSym: s[1:]}, nil
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		return parseMem(s[1 : len(s)-1])
	}
	if r, ok := isa.GPRByName(strings.ToLower(s)); ok {
		return operand{kind: 'g', reg: r}, nil
	}
	if r, ok := isa.XMMByName(strings.ToLower(s)); ok {
		return operand{kind: 'x', reg: r}, nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return operand{kind: 'i', imm: v}, nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return operand{kind: 'i', imm: int64(v)}, nil
	}
	// Bare identifier: a label (branch target).
	return operand{kind: 'l', label: s}, nil
}

// parseMem parses "base + index*scale + disp" / "rip + sym".
func parseMem(s string) (operand, error) {
	out := operand{kind: 'm', mem: isa.Operand{Kind: isa.KindMem, Base: isa.NoReg, Index: isa.NoReg, Scale: 1}}
	// Normalize minus signs into "+-".
	s = strings.ReplaceAll(s, "-", "+-")
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		lower := strings.ToLower(term)
		switch {
		case lower == "rip":
			out.mem.RIPRel = true
		case strings.Contains(term, "*"):
			idx, scale, ok := strings.Cut(term, "*")
			if !ok {
				return out, fmt.Errorf("bad index term %q", term)
			}
			r, okr := isa.GPRByName(strings.ToLower(strings.TrimSpace(idx)))
			if !okr {
				return out, fmt.Errorf("bad index register %q", idx)
			}
			n, err := strconv.Atoi(strings.TrimSpace(scale))
			if err != nil {
				return out, err
			}
			out.mem.Index = r
			out.mem.Scale = uint8(n)
		default:
			if r, ok := isa.GPRByName(lower); ok {
				out.mem.Base = r
				continue
			}
			if v, err := strconv.ParseInt(term, 0, 64); err == nil {
				out.mem.Disp += int32(v)
				continue
			}
			// A symbol: only valid with rip.
			out.dataSym = term
		}
	}
	if out.dataSym != "" && !out.mem.RIPRel {
		return out, fmt.Errorf("data symbol requires rip-relative addressing")
	}
	return out, nil
}
