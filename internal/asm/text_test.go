package asm_test

import (
	"strings"
	"testing"

	"fpvm"
	"fpvm/internal/asm"
)

const divProgram = `
; quickstart in assembly text
.rodouble one 1.0
.rodouble three 3.0
.string fmt "x=%g\n"

.func main
    movsd xmm0, [rip+one]     ; x = 1.0
    mov rcx, 10
loop:
    divsd xmm0, [rip+three]   # x /= 3
    addsd xmm0, [rip+one]
    sub rcx, 1
    jne loop
    lea rdi, [rip+fmt]
    call @printf
    mov rax, 60
    mov rdi, 0
    syscall
.entry main
`

func TestAssembleAndRun(t *testing.T) {
	img, err := asm.Assemble("text", divProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpvm.RunNative(img)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Stdout, "x=1.49") {
		t.Errorf("output %q", res.Stdout)
	}
	// The same text program under FPVM must match bitwise.
	vres, err := fpvm.Run(img, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if vres.Stdout != res.Stdout {
		t.Errorf("fpvm %q != native %q", vres.Stdout, res.Stdout)
	}
}

func TestAssembleOperandShapes(t *testing.T) {
	src := `
.double buf 0.0 0.0
.func main
    mov rax, 0x800000
    mov rbx, [rax]
    mov [rax+8], rbx
    mov rcx, [rax+rbx*8+16]
    movsd xmm1, xmm2
    movapd xmm3, xmm4
    push rbp
    pop rbp
    inc rax
    shl rax, 3
    xorpd xmm0, xmm0
    ucomisd xmm0, xmm1
    hlt
.entry main
`
	if _, err := asm.Assemble("shapes", src); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus rax, rbx",     // unknown mnemonic
		"mov rax",            // missing operand
		".func",              // missing name
		".double x",          // missing values
		"movsd xmm0, [sym]",  // symbol without rip
		".string s noquotes", // unquoted
		"addsd rax, rbx",     // wrong register class
		".unknown directive", // unknown directive
	}
	for _, src := range bad {
		if _, err := asm.Assemble("bad", src); err == nil {
			t.Errorf("assembled %q without error", src)
		}
	}
}

func TestAssembleComments(t *testing.T) {
	src := "; full line comment\n# hash comment\n.func main\n nop ; trailing\n hlt\n.entry main\n"
	if _, err := asm.Assemble("c", src); err != nil {
		t.Fatal(err)
	}
}
