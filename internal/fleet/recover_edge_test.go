package fleet_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fpvm"
	"fpvm/internal/fleet"
	"fpvm/internal/workloads"
)

// These tests pin down Recover's behavior at the ugly edges of the
// filesystem: a snapshot directory that cannot be scanned, snapshot
// files that vanish between the scan and the open, and two recoveries
// racing over the same directory. In every case the contract is the
// same — reject into RecoveryRejects, run the affected jobs fresh, and
// never panic or fail the whole fleet.

func lorenzJobs(t *testing.T, n int) []fleet.Job {
	t.Helper()
	img, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		jobs[i] = fleet.Job{Name: "lorenz", Image: img, Config: fpvm.Config{Seq: true, Short: true}}
	}
	return jobs
}

// TestRecoverUnreadableSnapshotDir hands Recover a path that exists but
// cannot be read as a directory (a regular file — robust even when the
// test runs as root, where permission bits don't bite). The scan
// failure must become a reject, not an error, and every job must still
// complete fresh.
func TestRecoverUnreadableSnapshotDir(t *testing.T) {
	notADir := filepath.Join(t.TempDir(), "snapdir")
	if err := os.WriteFile(notADir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}

	jobs := lorenzJobs(t, 2)
	rep, err := fleet.Recover(notADir, jobs, fleet.Options{Workers: 2})
	if err != nil {
		t.Fatalf("unreadable dir must not abort recovery: %v", err)
	}
	if rep.Failures != 0 {
		t.Fatalf("jobs failed under unreadable dir:\n%s", rep.Summary())
	}
	if len(rep.RecoveryRejects) != 1 || !strings.Contains(rep.RecoveryRejects[0], "snapdir") {
		t.Fatalf("scan failure not recorded in rejects: %v", rep.RecoveryRejects)
	}
	if rep.Resumed != 0 {
		t.Fatalf("resumed %d jobs from an unreadable dir", rep.Resumed)
	}
	for _, jr := range rep.Results {
		if jr.Resumed {
			t.Fatalf("job %q claims to have resumed with no readable snapshots", jr.Name)
		}
	}
}

// TestRecoverDisappearingSnapshot simulates a snapshot vanishing between
// the directory scan and the open: a dangling symlink carries a valid
// snapshot name, so it survives the scan but fails to read. The job it
// names must run fresh; the reject must name the file.
func TestRecoverDisappearingSnapshot(t *testing.T) {
	dir := t.TempDir()
	ghost := filepath.Join(dir, "fleet-0000-lorenz.snap")
	if err := os.Symlink(filepath.Join(dir, "gone-by-now"), ghost); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}

	jobs := lorenzJobs(t, 2)
	rep, err := fleet.Recover(dir, jobs, fleet.Options{Workers: 2})
	if err != nil {
		t.Fatalf("disappearing snapshot must not abort recovery: %v", err)
	}
	if rep.Failures != 0 {
		t.Fatalf("jobs failed after snapshot vanished:\n%s", rep.Summary())
	}
	if len(rep.RecoveryRejects) != 1 {
		t.Fatalf("want 1 reject for the vanished snapshot, got %v", rep.RecoveryRejects)
	}
	if rep.Resumed != 0 {
		t.Fatalf("resumed %d jobs from a vanished snapshot", rep.Resumed)
	}
}

// TestRecoverRacingRecoveries runs two concurrent Recover calls over the
// same snapshot directory, seeded with a corrupt snapshot and mid-write
// debris. Both must finish all jobs, both must reject the corrupt file,
// and neither may panic — exercised under -race in CI.
func TestRecoverRacingRecoveries(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fleet-0000-lorenz.snap"),
		[]byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fleet-0001-lorenz.snap.tmp.123"),
		[]byte("mid-write debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	jobs := lorenzJobs(t, 3)
	want, err := fpvm.Run(jobs[0].Image, jobs[0].Config)
	if err != nil {
		t.Fatal(err)
	}

	jobSets := [][]fleet.Job{jobs, lorenzJobs(t, 3)}
	reps := make([]*fleet.Report, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = fleet.Recover(dir, jobSets[i], fleet.Options{Workers: 2})
		}(i)
	}
	wg.Wait()

	sawCorrupt := 0
	for i, rep := range reps {
		if errs[i] != nil {
			t.Fatalf("racing recovery %d errored: %v", i, errs[i])
		}
		if rep.Failures != 0 {
			t.Fatalf("recovery %d had failures:\n%s", i, rep.Summary())
		}
		if rep.Resumed != 0 {
			t.Fatalf("recovery %d resumed from a corrupt snapshot", i)
		}
		// The loser of the race may scan after the winner already cleaned
		// the corrupt file up with its completed job — zero rejects is
		// then correct. But any reject must name the corrupt snapshot,
		// and whoever scanned first must have rejected it.
		for _, rej := range rep.RecoveryRejects {
			if !strings.Contains(rej, "fleet-0000-lorenz.snap") {
				t.Fatalf("recovery %d unexpected reject %q", i, rej)
			}
			sawCorrupt++
		}
		for _, jr := range rep.Results {
			if jr.Result.Stdout != want.Stdout {
				t.Fatalf("recovery %d job %q output diverged from serial run", i, jr.Name)
			}
		}
	}
	if sawCorrupt == 0 {
		t.Fatal("neither racing recovery rejected the corrupt snapshot")
	}
}
