// Kill-resume harness: a child process runs a preemptive fleet that
// persists snapshots, the parent SIGKILLs it mid-run, then recovers the
// fleet in-process from the surviving snapshot files and asserts — with
// the oracle's own comparators — that every resumed job's stdout, exit
// code, virtual cycles, telemetry and final architectural state are
// bit-identical to an uninterrupted run.

package fleet_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpvm"
	"fpvm/internal/fleet"
	"fpvm/internal/oracle"
	"fpvm/internal/workloads"
)

const (
	crashHelperEnv = "FPVM_CRASH_FLEET_HELPER"
	crashDirEnv    = "FPVM_CRASH_FLEET_DIR"
	crashQuantum   = 250_000
)

// crashJobs builds the deterministic job mix shared by the helper child
// and the recovering parent: one job per alt system fast enough for the
// harness (mpfr's exactness is covered by TestResumeBitIdentical at the
// repo root). Private caches keep virtual-cycle accounting independent
// of fleet scheduling, so jobs compare against serial references.
func crashJobs() ([]fleet.Job, error) {
	img, err := workloads.Build(workloads.Pendulum, 1)
	if err != nil {
		return nil, err
	}
	kinds := []fpvm.AltKind{fpvm.AltBoxed, fpvm.AltPosit, fpvm.AltInterval, fpvm.AltRational}
	jobs := make([]fleet.Job, len(kinds))
	for i, kind := range kinds {
		jobs[i] = fleet.Job{
			Name:   "pendulum_" + string(kind),
			Image:  img,
			Config: fpvm.Config{Alt: kind, Seq: true, Short: true},
		}
	}
	return jobs, nil
}

func crashOpts(dir string) fleet.Options {
	return fleet.Options{
		Workers:        2,
		Share:          false,
		PreemptQuantum: crashQuantum,
		SnapshotDir:    dir,
	}
}

// TestCrashFleetHelper is the child half of the harness: it only runs
// when re-executed by TestKillResumeRecovery and is SIGKILLed before it
// can finish.
func TestCrashFleetHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("harness child; run via TestKillResumeRecovery")
	}
	jobs, err := crashJobs()
	if err != nil {
		t.Fatal(err)
	}
	fleet.Run(jobs, crashOpts(os.Getenv(crashDirEnv)))
}

func TestKillResumeRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	jobs, err := crashJobs()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted references, serially: with private caches the fleet
	// schedule cannot change any per-job observable.
	refs := make([]*fpvm.Result, len(jobs))
	for i := range jobs {
		ref, err := fpvm.Run(jobs[i].Image, jobs[i].Config)
		if err != nil {
			t.Fatalf("reference %s: %v", jobs[i].Name, err)
		}
		refs[i] = ref
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashFleetHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the first persisted snapshot, let a few more land, then
	// SIGKILL the child mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ents, _ := os.ReadDir(dir); len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("no snapshot appeared within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil { // os.Kill = SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill

	survivors, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshots surviving the kill: %d", len(survivors))
	if len(survivors) == 0 {
		t.Fatal("the kill left no snapshots; nothing to recover")
	}

	rep, err := fleet.Recover(dir, jobs, crashOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RecoveryRejects) != 0 {
		t.Errorf("recovery rejected snapshots:\n  %s", strings.Join(rep.RecoveryRejects, "\n  "))
	}
	if rep.Resumed == 0 {
		t.Errorf("recovery resumed no jobs despite %d surviving snapshots", len(survivors))
	}
	if rep.Failures != 0 {
		t.Fatalf("recovered fleet reports %d failures:\n%s", rep.Failures, rep.Summary())
	}
	for i, jr := range rep.Results {
		ref := refs[i]
		if jr.Err != nil || jr.Result == nil {
			t.Errorf("%s: did not complete: %v", jr.Name, jr.Err)
			continue
		}
		res := jr.Result
		if res.Stdout != ref.Stdout {
			t.Errorf("%s: stdout diverged after recovery", jr.Name)
		}
		if res.ExitCode != ref.ExitCode {
			t.Errorf("%s: exit code %d, want %d", jr.Name, res.ExitCode, ref.ExitCode)
		}
		if res.Cycles != ref.Cycles {
			t.Errorf("%s: virtual cycles %d, want %d", jr.Name, res.Cycles, ref.Cycles)
		}
		if res.Traps != ref.Traps || res.EmulatedInsts != ref.EmulatedInsts {
			t.Errorf("%s: telemetry diverged: traps %d/%d, emulated %d/%d",
				jr.Name, res.Traps, ref.Traps, res.EmulatedInsts, ref.EmulatedInsts)
		}
		if res.Final == nil || ref.Final == nil {
			t.Errorf("%s: missing final state capture", jr.Name)
		} else if d := oracle.DiffFinal(ref.Final, res.Final); d != "" {
			t.Errorf("%s: final architectural state diverged: %s", jr.Name, d)
		}
	}

	// Completed jobs must have retired their snapshot files.
	if left, _ := filepath.Glob(filepath.Join(dir, "*.snap")); len(left) != 0 {
		t.Errorf("%d snapshot files left after all jobs completed", len(left))
	}
}

// TestFleetPreemptionMatchesWholeJobs: the preemptive work-stealing
// schedule (with persistence on) must not change any per-job observable
// versus the run-to-completion schedule.
func TestFleetPreemptionMatchesWholeJobs(t *testing.T) {
	jobs, err := crashJobs()
	if err != nil {
		t.Fatal(err)
	}
	plain := fleet.Run(jobs, fleet.Options{Workers: 2})
	pre := fleet.Run(jobs, crashOpts(t.TempDir()))

	if pre.Preemptions == 0 {
		t.Fatalf("quantum %d produced no preemptions", crashQuantum)
	}
	t.Logf("preemptions %d, migrations %d", pre.Preemptions, pre.Migrations)
	if pre.Failures != 0 {
		t.Fatalf("preemptive fleet failed:\n%s", pre.Summary())
	}
	for i := range jobs {
		a, b := plain.Results[i].Result, pre.Results[i].Result
		if a == nil || b == nil {
			t.Fatalf("%s: missing result", jobs[i].Name)
		}
		if a.Stdout != b.Stdout || a.Cycles != b.Cycles || a.ExitCode != b.ExitCode {
			t.Errorf("%s: preemptive schedule changed observables (cycles %d vs %d)",
				jobs[i].Name, a.Cycles, b.Cycles)
		}
		if d := oracle.DiffFinal(a.Final, b.Final); d != "" {
			t.Errorf("%s: final state diverged under preemption: %s", jobs[i].Name, d)
		}
	}
}

// TestFleetPanicIsolation: a job whose VM stack panics (here: a nil
// image) must fail alone — the worker survives, every other job
// completes, and the panic is reported as that job's error.
func TestFleetPanicIsolation(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Pendulum)
	if err != nil {
		t.Fatal(err)
	}
	good := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true}
	jobs := []fleet.Job{
		{Name: "good-0", Image: img, Config: good},
		{Name: "bad", Image: nil, Config: good},
		{Name: "good-1", Image: img, Config: good},
		{Name: "good-2", Image: img, Config: good},
	}
	rep := fleet.Run(jobs, fleet.Options{Workers: 2})
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want exactly the panicking job\n%s", rep.Failures, rep.Summary())
	}
	bad := rep.Results[1]
	if bad.Err == nil || !strings.Contains(bad.Err.Error(), "panicked") {
		t.Errorf("panicking job error = %v, want a reported panic", bad.Err)
	}
	for _, i := range []int{0, 2, 3} {
		jr := rep.Results[i]
		if jr.Err != nil || jr.Result == nil || jr.Result.Stdout == "" {
			t.Errorf("%s: did not complete cleanly alongside the panicking job: %v", jr.Name, jr.Err)
		}
	}
}

// TestRecoverRejectsForeignSnapshots: corrupt or mismatched files in the
// snapshot directory are reported and skipped — the affected jobs run
// fresh, and nothing is partially restored.
func TestRecoverRejectsForeignSnapshots(t *testing.T) {
	jobs, err := crashJobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// A torn write (garbage), a snapshot for a job index that does not
	// exist, and an unparseable name.
	if err := os.WriteFile(filepath.Join(dir, "fleet-0000-pendulum_boxed.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fleet-0099-pendulum_boxed.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fleet-nope.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := fleet.Recover(dir, jobs, crashOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RecoveryRejects) != 3 {
		t.Errorf("RecoveryRejects = %d, want 3:\n  %s",
			len(rep.RecoveryRejects), strings.Join(rep.RecoveryRejects, "\n  "))
	}
	if rep.Resumed != 0 {
		t.Errorf("resumed %d jobs from rejected snapshots", rep.Resumed)
	}
	if rep.Failures != 0 {
		t.Fatalf("fleet failed after rejecting snapshots:\n%s", rep.Summary())
	}
}

// TestRecoverEmptyDir: recovering from an empty or missing directory is
// an ordinary fresh run.
func TestRecoverEmptyDir(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Pendulum)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []fleet.Job{{Name: "solo", Image: img, Config: fpvm.Config{Alt: fpvm.AltBoxed}}}

	rep, err := fleet.Recover(t.TempDir(), jobs, fleet.Options{Workers: 1})
	if err != nil || rep.Failures != 0 || rep.Resumed != 0 || len(rep.RecoveryRejects) != 0 {
		t.Errorf("empty dir: err=%v failures=%d resumed=%d rejects=%d",
			err, rep.Failures, rep.Resumed, len(rep.RecoveryRejects))
	}

	missing := filepath.Join(t.TempDir(), "never-created")
	rep, err = fleet.Recover(missing, jobs, fleet.Options{Workers: 1})
	if err != nil || rep.Failures != 0 {
		t.Errorf("missing dir: err=%v failures=%d", err, rep.Failures)
	}
}
