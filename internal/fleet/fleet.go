// Package fleet executes many independent guest programs concurrently — a
// worker pool of fully isolated VMs (each job gets its own address space,
// machine, kernel, heap and Runtime) that optionally share the expensive
// read-mostly state: the decode/trace cache. With sharing on, the first
// VM to decode an instruction or build a trace warms every other VM
// running the same image, which is what makes trap-and-emulate
// virtualization amortize at serving scale — request-sized guests pay the
// decode/trace-build warm-up once per fleet instead of once per VM.
//
// Everything else is per-VM by construction: fpvm.Run builds a fresh
// stack per call, and job Configs are copied by value. Shared caches are
// created here, one per distinct program image (pre-decoded state is only
// valid for the image it came from; fpvm.Run enforces this via
// SharedCache.Bind).
//
// With Options.PreemptQuantum set, jobs no longer own a worker for their
// whole lifetime: each scheduling turn runs one virtual-cycle slice, the
// preempted VM is serialized into a checkpoint wire image, and the task
// returns to a work-stealing runqueue ordered by virtual-clock backlog —
// the next free worker steals the most-behind job, so a long-running
// guest migrates freely between workers. With Options.SnapshotDir also
// set, every preemption persists the snapshot atomically on disk and
// Recover can resume a SIGKILLed fleet from the surviving files,
// bit-identical to an uninterrupted run.
package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpvm"
	"fpvm/internal/checkpoint"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
)

// Job is one guest program execution: an image plus the run configuration
// for its VM. The Config is copied before use; the runner only ever sets
// its Shared field (and only when Options.Share is on) and its
// PreemptQuantum (when Options.PreemptQuantum is on).
type Job struct {
	// Name labels the job in reports (e.g. the workload name).
	Name string

	// Image is the guest program. Image loading does not mutate the
	// image, so many jobs may reference the same *obj.Image.
	Image *obj.Image

	// Config configures the job's VM. Leave Shared nil — the runner
	// manages cache sharing fleet-wide via Options.Share.
	Config fpvm.Config

	// DeadlineCycles, when > 0, cancels the job at the first trap
	// boundary at or past that many virtual cycles: slices are capped at
	// the remaining budget, and a preemption landing on or beyond the
	// deadline finalizes the job with its partial result and
	// JobResult.DeadlineExceeded set — exactly the semantics a live
	// deadline-bounded run has, so recovery through Recover reproduces
	// the same cancellation a crashed service would have performed.
	// Requires a preemption quantum (Options.PreemptQuantum or the job
	// Config's own) to bound the slice length.
	DeadlineCycles uint64
}

// Options configures a fleet run.
type Options struct {
	// Workers is the worker-pool size (0 = 4). Each worker runs whole
	// jobs (or, with PreemptQuantum, job slices); at most Workers VMs
	// execute concurrently.
	Workers int

	// Share backs every VM with a fleet-wide decode/trace cache — one
	// per distinct image in the job list. Off, every VM decodes and
	// builds traces privately (the ablation baseline).
	Share bool

	// CacheCapacity bounds each shared cache (0 = the default private
	// cache capacity). Ignored when Share is off.
	CacheCapacity int

	// PreemptQuantum, when > 0, preempts every job after roughly that
	// many virtual cycles at the next event boundary and returns it to
	// the runqueue as a serialized snapshot, enabling migration between
	// workers and (with SnapshotDir) crash recovery. Requires every
	// job's alt system to have a value codec.
	PreemptQuantum uint64

	// SnapshotDir, when non-empty, persists each preempted job's
	// snapshot there (atomically, one file per job) and removes it when
	// the job completes. After a crash, Recover scans the directory and
	// resumes the surviving jobs.
	SnapshotDir string
}

// DefaultWorkers is the pool size when Options.Workers is 0.
const DefaultWorkers = 4

// JobResult is one job's outcome. A non-nil Err with a non-nil Result
// whose Detached flag is set is the fatal-rung outcome: FPVM detached
// but the guest still completed natively with correct output (the
// serial fpvm-run exit-11 case) — not a hard failure.
type JobResult struct {
	Name    string
	Result  *fpvm.Result // nil when Err is non-nil and the run never finished
	Err     error
	Elapsed time.Duration // summed across all slices of the job

	// Preemptions counts how many times the job was sliced off a worker;
	// Migrations counts resumptions on a different worker than the
	// previous slice. Resumed reports the job started from an on-disk
	// snapshot (Recover), not from its entry point.
	Preemptions int
	Migrations  int
	Resumed     bool

	// DeadlineExceeded reports the job was cancelled at a trap boundary
	// because it consumed its Job.DeadlineCycles budget; Result then
	// holds the partial (preempted-shaped) state at cancellation.
	DeadlineExceeded bool
}

// Report is the fleet-level roll-up.
type Report struct {
	Results []JobResult // one per job, in submission order

	// Breakdown is every worker's telemetry merged: fleet-aggregate
	// cycles per category and summed counters.
	Breakdown telemetry.Breakdown

	// Elapsed is the wall-clock time for the whole fleet.
	Elapsed time.Duration

	Workers int
	Shared  bool
	Jobs    int

	// Failures counts jobs that never produced a completed guest run.
	// Detached counts jobs where FPVM hit the fatal rung but the guest
	// still completed natively — degraded service, not failure.
	Failures int
	Detached int

	// Preemptions / Migrations / Resumed aggregate the per-job counts:
	// total scheduling slices cut short, total cross-worker moves, and
	// jobs restarted from on-disk snapshots.
	Preemptions int
	Migrations  int
	Resumed     int

	// PersistFailures counts snapshots that could not be written to
	// SnapshotDir. Execution continues from the in-memory snapshot —
	// correctness is unaffected, only crash durability is degraded.
	PersistFailures int

	// RecoveryRejects lists snapshot files Recover refused (torn,
	// corrupt, or bound to a different image/alt/config/job list), one
	// human-readable line each. The affected jobs ran fresh.
	RecoveryRejects []string

	// TotalCycles sums every VM's virtual cycle count — the fleet's
	// total work, independent of scheduling.
	TotalCycles uint64

	// SharedHits / SharedTraceHits count local cache misses served by
	// another VM's published decode / trace (0 with Share off).
	SharedHits      uint64
	SharedTraceHits uint64
}

// Throughput returns completed jobs per wall-clock second.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Jobs-r.Failures) / r.Elapsed.Seconds()
}

// VirtualMakespan replays the fleet's schedule on the virtual clock:
// jobs are assigned in submission order to the earliest-free worker
// (the greedy discipline the real pool follows when nothing preempts),
// each costing the virtual cycles its VM actually consumed. The result
// is the fleet's completion time in virtual cycles — deterministic and
// host-independent where wall clock is not, in keeping with the
// simulator's cost-model philosophy (every other figure in this repo is
// reported on the virtual clock).
func (r *Report) VirtualMakespan() uint64 {
	if r.Workers <= 0 || len(r.Results) == 0 {
		return 0
	}
	free := make([]uint64, r.Workers)
	for i := range r.Results {
		res := r.Results[i].Result
		if res == nil {
			continue
		}
		w := 0
		for k := 1; k < len(free); k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		free[w] += res.Cycles
	}
	var max uint64
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// VirtualThroughput returns completed jobs per billion virtual cycles
// under the VirtualMakespan schedule — the deterministic fleet
// throughput figure.
func (r *Report) VirtualThroughput() float64 {
	ms := r.VirtualMakespan()
	if ms == 0 {
		return 0
	}
	return float64(r.Jobs-r.Failures) / (float64(ms) / 1e9)
}

// task is one job's scheduler state. Ownership passes through the
// runqueue: exactly one worker holds a task at a time, so its fields
// need no locking.
type task struct {
	idx         int
	snapshot    []byte // nil: start (or restart) from the entry point
	cycles      uint64 // virtual cycles consumed so far — the backlog key
	lastWorker  int    // -1: never ran in this process
	preemptions int
	migrations  int
	resumed     bool // started from an on-disk snapshot
	elapsed     time.Duration
}

// sched is the work-stealing runqueue: free workers steal the runnable
// task whose virtual clock is furthest behind — least consumed virtual
// cycles, ties to the lowest submission index — so every job keeps
// progressing (a preempting worker picks a lagging peer over the job it
// just sliced) and jobs migrate to whichever worker frees up first.
type sched struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*task
	remaining int
}

func newSched(n int) *sched {
	s := &sched{remaining: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// next blocks until a task is runnable or every job has completed (nil).
func (s *sched) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 {
		if s.remaining == 0 {
			return nil
		}
		s.cond.Wait()
	}
	best := 0
	for i := 1; i < len(s.queue); i++ {
		t, b := s.queue[i], s.queue[best]
		if t.cycles < b.cycles || (t.cycles == b.cycles && t.idx < b.idx) {
			best = i
		}
	}
	t := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return t
}

func (s *sched) put(t *task) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *sched) done() {
	s.mu.Lock()
	s.remaining--
	finished := s.remaining == 0
	s.mu.Unlock()
	if finished {
		s.cond.Broadcast()
	}
}

// seed is a validated on-disk snapshot adopted by Recover: the wire
// bytes plus the virtual clock they carry (the task's scheduling key).
type seed struct {
	data   []byte
	cycles uint64
}

// Run executes every job on a pool of opts.Workers workers and returns
// the fleet report. Results are positional: Results[i] is jobs[i]'s
// outcome regardless of scheduling order.
func Run(jobs []Job, opts Options) *Report {
	return run(jobs, opts, nil)
}

// Recover resumes a fleet from dir: every parseable, checksum-clean
// snapshot whose bindings (program image hash, alt system, semantic
// configuration, job name) match the corresponding job is adopted, and
// that job continues from its last preemption point instead of its
// entry point. Torn, corrupt or mismatched files are rejected — listed
// in Report.RecoveryRejects, never partially restored — and their jobs
// run fresh. An empty or missing directory is not an error: every job
// simply runs fresh. The error return is reserved for an unreadable
// directory.
func Recover(dir string, jobs []Job, opts Options) (*Report, error) {
	opts.SnapshotDir = dir
	resume := make(map[int]seed)
	var rejects []string

	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		// An unreadable snapshot dir (permissions, not-a-directory, I/O
		// error) must not take recovery down with it: every job can still
		// run fresh. Record the reason and continue with no seeds.
		rejects = append(rejects, fmt.Sprintf("%s: %v", dir, err))
		entries = nil
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.Contains(name, ".snap.tmp") {
			// Debris from a crash mid-write; the rename never happened, so
			// nothing references it.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "fleet-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		reject := func(why string) {
			rejects = append(rejects, fmt.Sprintf("%s: %s", name, why))
		}
		idx, jobName, ok := parseSnapshotName(name)
		if !ok {
			reject("unparseable snapshot filename")
			continue
		}
		if idx < 0 || idx >= len(jobs) {
			reject(fmt.Sprintf("job index %d out of range (fleet has %d jobs)", idx, len(jobs)))
			continue
		}
		job := &jobs[idx]
		if jobName != sanitizeName(job.Name) {
			reject(fmt.Sprintf("job %d is now %q; snapshot is for %q", idx, job.Name, jobName))
			continue
		}
		if _, dup := resume[idx]; dup {
			reject("duplicate snapshot for job")
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			reject(err.Error())
			continue
		}
		img, err := checkpoint.Decode(data)
		if err != nil {
			reject(err.Error())
			continue
		}
		sys, err := fpvm.NewAltSystem(job.Config.Alt, job.Config.Precision)
		if err != nil {
			reject(err.Error())
			continue
		}
		if err := img.Validate(job.Image.Hash(), sys.Name(), fpvm.ConfigSignature(job.Config)); err != nil {
			reject(err.Error())
			continue
		}
		resume[idx] = seed{data: data, cycles: img.MachCycles}
	}

	rep := run(jobs, opts, resume)
	rep.RecoveryRejects = rejects
	return rep, nil
}

func run(jobs []Job, opts Options, resume map[int]seed) *Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	rep := &Report{
		Results: make([]JobResult, len(jobs)),
		Workers: workers,
		Shared:  opts.Share,
		Jobs:    len(jobs),
	}
	if len(jobs) == 0 {
		return rep
	}

	snapDir := opts.SnapshotDir
	if snapDir != "" {
		if err := os.MkdirAll(snapDir, 0o755); err != nil {
			snapDir = "" // degrade to in-memory scheduling; correctness unaffected
			rep.PersistFailures++
		}
	}

	// One shared cache per distinct image: pre-decoded entries and traces
	// are only coherent within an image, and fpvm.Run's Bind check would
	// reject a second image on the same store.
	var shared map[*obj.Image]*fpvm.SharedCache
	if opts.Share {
		shared = make(map[*obj.Image]*fpvm.SharedCache)
		for i := range jobs {
			img := jobs[i].Image
			if _, ok := shared[img]; !ok {
				shared[img] = fpvm.NewSharedCache(opts.CacheCapacity)
			}
		}
	}

	s := newSched(len(jobs))
	for i := range jobs {
		t := &task{idx: i, lastWorker: -1}
		if sd, ok := resume[i]; ok {
			t.snapshot = sd.data
			t.cycles = sd.cycles
			t.resumed = true
		}
		s.queue = append(s.queue, t)
	}

	var persistFailures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t := s.next()
				if t == nil {
					return
				}
				job := &jobs[t.idx]
				cfg := job.Config // copy: never mutate the caller's Config
				if shared != nil {
					cfg.Shared = shared[job.Image]
				}
				if opts.PreemptQuantum > 0 {
					cfg.PreemptQuantum = opts.PreemptQuantum
				}
				if job.DeadlineCycles > 0 && cfg.PreemptQuantum > 0 {
					// Cap the slice at the remaining deadline budget so the
					// cancellation lands on the same trap boundary a live
					// deadline-bounded run would stop at. A quantum of 0
					// would disable preemption entirely, so an (already
					// spent) budget still runs a minimal 1-cycle slice.
					if rem := job.DeadlineCycles - t.cycles; job.DeadlineCycles <= t.cycles {
						cfg.PreemptQuantum = 1
					} else if rem < cfg.PreemptQuantum {
						cfg.PreemptQuantum = rem
					}
				}
				if t.lastWorker >= 0 && t.lastWorker != w {
					t.migrations++
				}
				t.lastWorker = w

				t0 := time.Now()
				res, err := runSlice(job, cfg, t.snapshot)
				t.elapsed += time.Since(t0)

				deadlined := false
				if err == nil && res != nil && res.Preempted {
					t.preemptions++
					t.snapshot = res.Snapshot
					t.cycles = res.Cycles
					if job.DeadlineCycles > 0 && t.cycles >= job.DeadlineCycles {
						// Deadline blown: cancel at this trap boundary with
						// the partial result instead of requeueing.
						deadlined = true
					} else {
						if snapDir != "" {
							path := snapshotPath(snapDir, t.idx, job.Name)
							if werr := checkpoint.WriteFileAtomic(path, res.Snapshot); werr != nil {
								persistFailures.Add(1)
							}
						}
						s.put(t)
						continue
					}
				}

				rep.Results[t.idx] = JobResult{
					Name:             job.Name,
					Result:           res,
					Err:              err,
					Elapsed:          t.elapsed,
					Preemptions:      t.preemptions,
					Migrations:       t.migrations,
					Resumed:          t.resumed,
					DeadlineExceeded: deadlined,
				}
				if snapDir != "" {
					os.Remove(snapshotPath(snapDir, t.idx, job.Name))
				}
				s.done()
			}
		}(w)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.PersistFailures += int(persistFailures.Load())

	for i := range rep.Results {
		jr := &rep.Results[i]
		if jr.Err != nil && (jr.Result == nil || !jr.Result.Detached) {
			rep.Failures++
		}
		rep.Preemptions += jr.Preemptions
		rep.Migrations += jr.Migrations
		if jr.Resumed {
			rep.Resumed++
		}
		if jr.Result == nil {
			continue
		}
		if jr.Result.Detached {
			rep.Detached++
		}
		rep.Breakdown.Merge(jr.Result.Breakdown)
		rep.TotalCycles += jr.Result.Cycles
		rep.SharedHits += jr.Result.SharedHits
		rep.SharedTraceHits += jr.Result.SharedTraceHits
	}
	return rep
}

// runSlice executes one scheduling turn of a job — a fresh start or a
// snapshot resumption — with panic isolation: a worker that panics
// inside the VM stack reports the panic as that job's error instead of
// taking down the whole fleet.
func runSlice(job *Job, cfg fpvm.Config, snapshot []byte) (res *fpvm.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = fmt.Errorf("fleet: job %q panicked: %v", job.Name, p)
		}
	}()
	if snapshot != nil {
		return fpvm.Resume(job.Image, cfg, snapshot)
	}
	return fpvm.Run(job.Image, cfg)
}

// snapshotPath names job idx's snapshot file: fleet-<idx>-<name>.snap.
// The index pins the file to its submission slot; the sanitized name
// lets Recover detect a reordered or edited job list.
func snapshotPath(dir string, idx int, name string) string {
	return filepath.Join(dir, fmt.Sprintf("fleet-%04d-%s.snap", idx, sanitizeName(name)))
}

// sanitizeName maps a job name onto the filename-safe alphabet.
func sanitizeName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "job"
	}
	return sb.String()
}

// parseSnapshotName inverts snapshotPath's base name.
func parseSnapshotName(base string) (idx int, name string, ok bool) {
	rest, found := strings.CutPrefix(base, "fleet-")
	if !found {
		return 0, "", false
	}
	rest, found = strings.CutSuffix(rest, ".snap")
	if !found {
		return 0, "", false
	}
	numStr, name, found := strings.Cut(rest, "-")
	if !found || numStr == "" {
		return 0, "", false
	}
	idx, err := strconv.Atoi(numStr)
	if err != nil {
		return 0, "", false
	}
	return idx, name, true
}

// Summary renders the fleet report as a short human-readable block.
func (r *Report) Summary() string {
	var sb strings.Builder
	mode := "private caches"
	if r.Shared {
		mode = "shared cache"
	}
	fmt.Fprintf(&sb, "fleet: %d jobs on %d workers (%s)\n", r.Jobs, r.Workers, mode)
	fmt.Fprintf(&sb, "  wall %v  throughput %.1f jobs/s  total work %d cycles\n",
		r.Elapsed.Round(time.Microsecond), r.Throughput(), r.TotalCycles)
	fmt.Fprintf(&sb, "  virtual makespan %d cycles  virtual throughput %.2f jobs/Gcycle\n",
		r.VirtualMakespan(), r.VirtualThroughput())
	fmt.Fprintf(&sb, "  traps %d  emulated %d  trace hit rate %.3f",
		r.Breakdown.Traps, r.Breakdown.EmulatedInsts, r.Breakdown.TraceHitRate())
	if r.Shared {
		fmt.Fprintf(&sb, "  shared adoptions: %d decodes, %d traces",
			r.SharedHits, r.SharedTraceHits)
	}
	sb.WriteString("\n")
	if r.Preemptions > 0 || r.Resumed > 0 {
		fmt.Fprintf(&sb, "  preemptions %d  migrations %d  resumed from snapshots %d\n",
			r.Preemptions, r.Migrations, r.Resumed)
	}
	if r.PersistFailures > 0 {
		fmt.Fprintf(&sb, "  snapshot persist failures: %d\n", r.PersistFailures)
	}
	if len(r.RecoveryRejects) > 0 {
		fmt.Fprintf(&sb, "  rejected snapshots: %d\n", len(r.RecoveryRejects))
		for _, line := range r.RecoveryRejects {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}
	if r.Detached > 0 {
		fmt.Fprintf(&sb, "  detached (guest completed natively): %d\n", r.Detached)
	}
	if r.Failures > 0 {
		fmt.Fprintf(&sb, "  FAILURES: %d\n", r.Failures)
		for _, jr := range r.Results {
			if jr.Err != nil && (jr.Result == nil || !jr.Result.Detached) {
				fmt.Fprintf(&sb, "    %s: %v\n", jr.Name, jr.Err)
			}
		}
	}
	byName := make(map[string]int)
	for _, jr := range r.Results {
		byName[jr.Name]++
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "  mix:")
	for _, n := range names {
		fmt.Fprintf(&sb, " %s×%d", n, byName[n])
	}
	sb.WriteString("\n")
	return sb.String()
}
