// Package fleet executes many independent guest programs concurrently — a
// worker pool of fully isolated VMs (each job gets its own address space,
// machine, kernel, heap and Runtime) that optionally share the expensive
// read-mostly state: the decode/trace cache. With sharing on, the first
// VM to decode an instruction or build a trace warms every other VM
// running the same image, which is what makes trap-and-emulate
// virtualization amortize at serving scale — request-sized guests pay the
// decode/trace-build warm-up once per fleet instead of once per VM.
//
// Everything else is per-VM by construction: fpvm.Run builds a fresh
// stack per call, and job Configs are copied by value. Shared caches are
// created here, one per distinct program image (pre-decoded state is only
// valid for the image it came from; fpvm.Run enforces this via
// SharedCache.Bind).
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fpvm"
	"fpvm/internal/obj"
	"fpvm/internal/telemetry"
)

// Job is one guest program execution: an image plus the run configuration
// for its VM. The Config is copied before use; the runner only ever sets
// its Shared field (and only when Options.Share is on).
type Job struct {
	// Name labels the job in reports (e.g. the workload name).
	Name string

	// Image is the guest program. Image loading does not mutate the
	// image, so many jobs may reference the same *obj.Image.
	Image *obj.Image

	// Config configures the job's VM. Leave Shared nil — the runner
	// manages cache sharing fleet-wide via Options.Share.
	Config fpvm.Config
}

// Options configures a fleet run.
type Options struct {
	// Workers is the worker-pool size (0 = 4). Each worker runs whole
	// jobs; at most Workers VMs execute concurrently.
	Workers int

	// Share backs every VM with a fleet-wide decode/trace cache — one
	// per distinct image in the job list. Off, every VM decodes and
	// builds traces privately (the ablation baseline).
	Share bool

	// CacheCapacity bounds each shared cache (0 = the default private
	// cache capacity). Ignored when Share is off.
	CacheCapacity int
}

// DefaultWorkers is the pool size when Options.Workers is 0.
const DefaultWorkers = 4

// JobResult is one job's outcome. A non-nil Err with a non-nil Result
// whose Detached flag is set is the fatal-rung outcome: FPVM detached
// but the guest still completed natively with correct output (the
// serial fpvm-run exit-11 case) — not a hard failure.
type JobResult struct {
	Name    string
	Result  *fpvm.Result // nil when Err is non-nil and the run never finished
	Err     error
	Elapsed time.Duration
}

// Report is the fleet-level roll-up.
type Report struct {
	Results []JobResult // one per job, in submission order

	// Breakdown is every worker's telemetry merged: fleet-aggregate
	// cycles per category and summed counters.
	Breakdown telemetry.Breakdown

	// Elapsed is the wall-clock time for the whole fleet.
	Elapsed time.Duration

	Workers int
	Shared  bool
	Jobs    int

	// Failures counts jobs that never produced a completed guest run.
	// Detached counts jobs where FPVM hit the fatal rung but the guest
	// still completed natively — degraded service, not failure.
	Failures int
	Detached int

	// TotalCycles sums every VM's virtual cycle count — the fleet's
	// total work, independent of scheduling.
	TotalCycles uint64

	// SharedHits / SharedTraceHits count local cache misses served by
	// another VM's published decode / trace (0 with Share off).
	SharedHits      uint64
	SharedTraceHits uint64
}

// Throughput returns completed jobs per wall-clock second.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Jobs-r.Failures) / r.Elapsed.Seconds()
}

// VirtualMakespan replays the fleet's schedule on the virtual clock:
// jobs are assigned in submission order to the earliest-free worker
// (the same greedy discipline the real pool follows), each costing the
// virtual cycles its VM actually consumed. The result is the fleet's
// completion time in virtual cycles — deterministic and host-independent
// where wall clock is not, in keeping with the simulator's cost-model
// philosophy (every other figure in this repo is reported on the
// virtual clock).
func (r *Report) VirtualMakespan() uint64 {
	if r.Workers <= 0 || len(r.Results) == 0 {
		return 0
	}
	free := make([]uint64, r.Workers)
	for i := range r.Results {
		res := r.Results[i].Result
		if res == nil {
			continue
		}
		w := 0
		for k := 1; k < len(free); k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		free[w] += res.Cycles
	}
	var max uint64
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// VirtualThroughput returns completed jobs per billion virtual cycles
// under the VirtualMakespan schedule — the deterministic fleet
// throughput figure.
func (r *Report) VirtualThroughput() float64 {
	ms := r.VirtualMakespan()
	if ms == 0 {
		return 0
	}
	return float64(r.Jobs-r.Failures) / (float64(ms) / 1e9)
}

// Run executes every job on a pool of opts.Workers workers and returns
// the fleet report. Results are positional: Results[i] is jobs[i]'s
// outcome regardless of scheduling order.
func Run(jobs []Job, opts Options) *Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	rep := &Report{
		Results: make([]JobResult, len(jobs)),
		Workers: workers,
		Shared:  opts.Share,
		Jobs:    len(jobs),
	}
	if len(jobs) == 0 {
		return rep
	}

	// One shared cache per distinct image: pre-decoded entries and traces
	// are only coherent within an image, and fpvm.Run's Bind check would
	// reject a second image on the same store.
	var shared map[*obj.Image]*fpvm.SharedCache
	if opts.Share {
		shared = make(map[*obj.Image]*fpvm.SharedCache)
		for i := range jobs {
			img := jobs[i].Image
			if _, ok := shared[img]; !ok {
				shared[img] = fpvm.NewSharedCache(opts.CacheCapacity)
			}
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job := &jobs[i]
				cfg := job.Config // copy: never mutate the caller's Config
				if shared != nil {
					cfg.Shared = shared[job.Image]
				}
				t0 := time.Now()
				res, err := fpvm.Run(job.Image, cfg)
				rep.Results[i] = JobResult{
					Name:    job.Name,
					Result:  res,
					Err:     err,
					Elapsed: time.Since(t0),
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep.Elapsed = time.Since(start)

	for i := range rep.Results {
		jr := &rep.Results[i]
		if jr.Err != nil && (jr.Result == nil || !jr.Result.Detached) {
			rep.Failures++
		}
		if jr.Result == nil {
			continue
		}
		if jr.Result.Detached {
			rep.Detached++
		}
		rep.Breakdown.Merge(jr.Result.Breakdown)
		rep.TotalCycles += jr.Result.Cycles
		rep.SharedHits += jr.Result.SharedHits
		rep.SharedTraceHits += jr.Result.SharedTraceHits
	}
	return rep
}

// Summary renders the fleet report as a short human-readable block.
func (r *Report) Summary() string {
	var sb strings.Builder
	mode := "private caches"
	if r.Shared {
		mode = "shared cache"
	}
	fmt.Fprintf(&sb, "fleet: %d jobs on %d workers (%s)\n", r.Jobs, r.Workers, mode)
	fmt.Fprintf(&sb, "  wall %v  throughput %.1f jobs/s  total work %d cycles\n",
		r.Elapsed.Round(time.Microsecond), r.Throughput(), r.TotalCycles)
	fmt.Fprintf(&sb, "  virtual makespan %d cycles  virtual throughput %.2f jobs/Gcycle\n",
		r.VirtualMakespan(), r.VirtualThroughput())
	fmt.Fprintf(&sb, "  traps %d  emulated %d  trace hit rate %.3f",
		r.Breakdown.Traps, r.Breakdown.EmulatedInsts, r.Breakdown.TraceHitRate())
	if r.Shared {
		fmt.Fprintf(&sb, "  shared adoptions: %d decodes, %d traces",
			r.SharedHits, r.SharedTraceHits)
	}
	sb.WriteString("\n")
	if r.Detached > 0 {
		fmt.Fprintf(&sb, "  detached (guest completed natively): %d\n", r.Detached)
	}
	if r.Failures > 0 {
		fmt.Fprintf(&sb, "  FAILURES: %d\n", r.Failures)
		for _, jr := range r.Results {
			if jr.Err != nil && (jr.Result == nil || !jr.Result.Detached) {
				fmt.Fprintf(&sb, "    %s: %v\n", jr.Name, jr.Err)
			}
		}
	}
	byName := make(map[string]int)
	for _, jr := range r.Results {
		byName[jr.Name]++
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "  mix:")
	for _, n := range names {
		fmt.Fprintf(&sb, " %s×%d", n, byName[n])
	}
	sb.WriteString("\n")
	return sb.String()
}
