package fleet_test

import (
	"testing"

	"fpvm"
	"fpvm/internal/fleet"
	"fpvm/internal/workloads"
)

// A job's DeadlineCycles must cancel it at the first trap boundary at or
// past the budget — even when the preemption quantum is larger than the
// remaining budget. Pre-fix, slices were not capped at the remaining
// deadline, so a quantum wider than the budget let the job run to
// completion and recovery reported a full run labelled late instead of
// the partial cancellation a live deadline-bounded run produces.
func TestJobDeadlineCancelsAtBoundary(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Seq: true, Short: true}
	full, err := fpvm.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := full.Cycles / 2

	// Quantum wider than the whole job: only the remaining-budget cap can
	// make the deadline observable at all.
	rep := fleet.Run([]fleet.Job{
		{Name: "bounded", Image: img, Config: cfg, DeadlineCycles: deadline},
		{Name: "free", Image: img, Config: cfg},
	}, fleet.Options{Workers: 1, PreemptQuantum: full.Cycles * 2})

	if rep.Failures != 0 {
		t.Fatalf("deadline cancellation counted as failure:\n%s", rep.Summary())
	}
	jr := rep.Results[0]
	if jr.Err != nil {
		t.Fatalf("bounded job errored: %v", jr.Err)
	}
	if !jr.DeadlineExceeded {
		t.Fatalf("bounded job not cancelled: DeadlineExceeded=false, cycles=%d (full run is %d)",
			jr.Result.Cycles, full.Cycles)
	}
	if !jr.Result.Preempted {
		t.Fatal("deadline cancellation must carry the partial, preempted-shaped result")
	}
	if jr.Result.Cycles < deadline || jr.Result.Cycles >= full.Cycles {
		t.Fatalf("cancelled at %d cycles; want within [deadline %d, full %d)",
			jr.Result.Cycles, deadline, full.Cycles)
	}
	if jr.Result.Final != nil {
		t.Fatal("cancelled job carries a final architectural state; partial results must not")
	}

	free := rep.Results[1]
	if free.Err != nil || free.DeadlineExceeded || free.Result.Cycles != full.Cycles {
		t.Fatalf("deadline-free job in the same fleet diverged: err=%v deadlined=%v cycles=%d want %d",
			free.Err, free.DeadlineExceeded, free.Result.Cycles, full.Cycles)
	}
}

// An already-spent budget (resume at or past the deadline) must still
// run a minimal slice and cancel, never disable preemption by setting a
// zero quantum.
func TestJobDeadlineAlreadySpent(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Seq: true, Short: true}
	rep := fleet.Run([]fleet.Job{
		{Name: "spent", Image: img, Config: cfg, DeadlineCycles: 1},
	}, fleet.Options{Workers: 1, PreemptQuantum: 1_000_000_000})
	jr := rep.Results[0]
	if jr.Err != nil {
		t.Fatalf("spent-budget job errored: %v", jr.Err)
	}
	if !jr.DeadlineExceeded {
		t.Fatalf("1-cycle budget not cancelled: cycles=%d", jr.Result.Cycles)
	}
}
