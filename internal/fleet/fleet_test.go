package fleet_test

import (
	"testing"

	"fpvm"
	"fpvm/internal/faultinject"
	"fpvm/internal/fleet"
	"fpvm/internal/obj"
	"fpvm/internal/workloads"
)

// microImages compiles every request-sized workload once.
func microImages(t testing.TB) map[workloads.Name]*obj.Image {
	t.Helper()
	imgs := make(map[workloads.Name]*obj.Image)
	for _, name := range workloads.MicroAll() {
		img, err := workloads.BuildMicro(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		imgs[name] = img
	}
	return imgs
}

// microJobs builds a job list of `repeats` copies of every micro workload.
func microJobs(imgs map[workloads.Name]*obj.Image, repeats int, cfg fpvm.Config) []fleet.Job {
	var jobs []fleet.Job
	for r := 0; r < repeats; r++ {
		for _, name := range workloads.MicroAll() {
			jobs = append(jobs, fleet.Job{Name: string(name), Image: imgs[name], Config: cfg})
		}
	}
	return jobs
}

// TestFleetMatchesSerial checks that concurrent fleet execution — shared
// cache or private — produces byte-identical guest output to a serial
// fpvm.Run of the same image, for every job.
func TestFleetMatchesSerial(t *testing.T) {
	imgs := microImages(t)
	cfg := fpvm.Config{Seq: true, Short: true}

	want := make(map[string]string)
	for name, img := range imgs {
		res, err := fpvm.Run(img, cfg)
		if err != nil {
			t.Fatalf("serial %s: %v", name, err)
		}
		want[string(name)] = res.Stdout
	}

	for _, share := range []bool{false, true} {
		rep := fleet.Run(microJobs(imgs, 3, cfg), fleet.Options{Workers: 4, Share: share})
		if rep.Failures != 0 {
			t.Fatalf("share=%v: %d failures:\n%s", share, rep.Failures, rep.Summary())
		}
		for _, jr := range rep.Results {
			if jr.Result.Stdout != want[jr.Name] {
				t.Errorf("share=%v %s: stdout diverged from serial run\n got: %q\nwant: %q",
					share, jr.Name, jr.Result.Stdout, want[jr.Name])
			}
		}
	}
}

// TestFleetSharedAdoption checks the tentpole's point: with a shared
// cache, later VMs adopt decodes and traces published by earlier VMs, and
// the fleet's total virtual work drops below the private-cache fleet
// (fewer full decodes, more replays). Virtual cycles are deterministic,
// so this asserts the saving exactly where wall-clock could not.
func TestFleetSharedAdoption(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fpvm.Config{Seq: true, Short: true}
	jobs := make([]fleet.Job, 12)
	for i := range jobs {
		jobs[i] = fleet.Job{Name: "lorenz", Image: img, Config: cfg}
	}

	private := fleet.Run(jobs, fleet.Options{Workers: 4, Share: false})
	sharedR := fleet.Run(jobs, fleet.Options{Workers: 4, Share: true})
	if private.Failures != 0 || sharedR.Failures != 0 {
		t.Fatalf("failures: private %d shared %d", private.Failures, sharedR.Failures)
	}

	if private.SharedHits != 0 || private.SharedTraceHits != 0 {
		t.Errorf("private fleet reported shared adoptions: %d/%d",
			private.SharedHits, private.SharedTraceHits)
	}
	if sharedR.SharedTraceHits == 0 {
		t.Error("shared fleet adopted no traces")
	}
	if sharedR.TotalCycles >= private.TotalCycles {
		t.Errorf("shared fleet did not reduce total work: shared %d >= private %d cycles",
			sharedR.TotalCycles, private.TotalCycles)
	}
	// The deterministic headline figure: the shared fleet finishes the
	// pool schedule in fewer virtual cycles, so jobs/Gcycle goes up.
	if sharedR.VirtualThroughput() <= private.VirtualThroughput() {
		t.Errorf("shared fleet virtual throughput did not improve: %.3f <= %.3f jobs/Gcycle",
			sharedR.VirtualThroughput(), private.VirtualThroughput())
	}
	if ms := sharedR.VirtualMakespan(); ms == 0 || ms > sharedR.TotalCycles {
		t.Errorf("virtual makespan %d out of range (total %d)", ms, sharedR.TotalCycles)
	}
	// Adopted work must still be *correct* work: identical trap totals.
	if sharedR.Breakdown.Traps != private.Breakdown.Traps ||
		sharedR.Breakdown.EmulatedInsts != private.Breakdown.EmulatedInsts {
		t.Errorf("shared fleet emulation diverged: traps %d vs %d, insts %d vs %d",
			sharedR.Breakdown.Traps, private.Breakdown.Traps,
			sharedR.Breakdown.EmulatedInsts, private.Breakdown.EmulatedInsts)
	}

	// With the trace cache on, trace adoption subsumes decode adoption
	// (an adopted trace replays without ever walking decodeAt). Decode
	// adoption engages when traps walk per-instruction: NONE config.
	noneJobs := make([]fleet.Job, 8)
	for i := range noneJobs {
		noneJobs[i] = fleet.Job{Name: "lorenz", Image: img, Config: fpvm.Config{}}
	}
	nonePriv := fleet.Run(noneJobs, fleet.Options{Workers: 4, Share: false})
	noneShared := fleet.Run(noneJobs, fleet.Options{Workers: 4, Share: true})
	if nonePriv.Failures != 0 || noneShared.Failures != 0 {
		t.Fatalf("NONE failures: private %d shared %d", nonePriv.Failures, noneShared.Failures)
	}
	if noneShared.SharedHits == 0 {
		t.Error("NONE-config shared fleet adopted no decode entries")
	}
	if noneShared.TotalCycles >= nonePriv.TotalCycles {
		t.Errorf("NONE-config shared fleet did not reduce total work: %d >= %d cycles",
			noneShared.TotalCycles, nonePriv.TotalCycles)
	}
}

// TestFleetMixedImages checks that a shared fleet over several distinct
// images keeps one shared cache per image (fpvm.Run's Bind guard would
// fail the run if a cache ever crossed images).
func TestFleetMixedImages(t *testing.T) {
	imgs := microImages(t)
	rep := fleet.Run(microJobs(imgs, 2, fpvm.Config{Seq: true, Short: true}),
		fleet.Options{Workers: 4, Share: true})
	if rep.Failures != 0 {
		t.Fatalf("%d failures:\n%s", rep.Failures, rep.Summary())
	}
	if rep.SharedTraceHits == 0 {
		t.Error("mixed-image shared fleet adopted no traces")
	}
}

// TestFleetSharedBindRejectsSecondImage pins the safety property directly:
// a shared cache bound to one image refuses to serve a different one.
func TestFleetSharedBindRejectsSecondImage(t *testing.T) {
	a, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.BuildMicro(workloads.Pendulum)
	if err != nil {
		t.Fatal(err)
	}
	sc := fpvm.NewSharedCache(0)
	if _, err := fpvm.Run(a, fpvm.Config{Seq: true, Shared: sc}); err != nil {
		t.Fatalf("first image: %v", err)
	}
	if _, err := fpvm.Run(b, fpvm.Config{Seq: true, Shared: sc}); err == nil {
		t.Fatal("second image on the same shared cache did not error")
	}
}

// TestFleetEmpty checks the degenerate inputs.
func TestFleetEmpty(t *testing.T) {
	rep := fleet.Run(nil, fleet.Options{Workers: 4, Share: true})
	if rep.Jobs != 0 || rep.Failures != 0 || len(rep.Results) != 0 {
		t.Fatalf("empty fleet: %+v", rep)
	}
	if tp := rep.Throughput(); tp != 0 {
		t.Fatalf("empty fleet throughput %v", tp)
	}
}

// TestFleetSoak is the bounded race soak: a larger mixed-image job list on
// more workers than cores, with profiling on (exercising the lazy
// disassembly backfill across VMs). Run under -race via `make check` / CI.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	imgs := microImages(t)
	// JITThreshold 1 keeps tier-1 promotion (and its interaction with
	// shared-cache adoption: adopted traces arrive bare and re-promote
	// per VM) inside the race-detected soak.
	cfg := fpvm.Config{Seq: true, Short: true, Profile: true, JITThreshold: 1}
	rep := fleet.Run(microJobs(imgs, 8, cfg), fleet.Options{Workers: 8, Share: true})
	if rep.Failures != 0 {
		t.Fatalf("%d failures:\n%s", rep.Failures, rep.Summary())
	}
	if rep.SharedTraceHits == 0 {
		t.Error("soak adopted no traces")
	}
}

// TestFleetDetachedIsNotFailure pins the fatal-rung classification: a
// job whose FPVM detaches but whose guest completes natively (the
// serial exit-11 outcome) must not count as a fleet failure — its
// result is present, its output correct, and it is tallied under
// Report.Detached instead.
func TestFleetDetachedIsNotFailure(t *testing.T) {
	img, err := workloads.BuildMicro(workloads.Lorenz)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := fpvm.Run(img, fpvm.Config{Seq: true, Short: true})
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		inj, err := faultinject.ParseSpec("alt.op:every=200,limit=1,sev=fatal", uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = fleet.Job{
			Name:   string(workloads.Lorenz),
			Image:  img,
			Config: fpvm.Config{Seq: true, Short: true, Inject: inj},
		}
	}
	rep := fleet.Run(jobs, fleet.Options{Workers: 2, Share: true})
	if rep.Failures != 0 {
		t.Fatalf("detached jobs counted as failures:\n%s", rep.Summary())
	}
	if rep.Detached != n {
		t.Fatalf("Detached = %d, want %d:\n%s", rep.Detached, n, rep.Summary())
	}
	for i, jr := range rep.Results {
		if jr.Result == nil || !jr.Result.Detached {
			t.Fatalf("job %d: expected a completed detached result, got err=%v", i, jr.Err)
		}
		// Boxed IEEE detach resumes at the failing instruction without
		// re-executing the emulated prefix: output stays bit-identical.
		if jr.Result.Stdout != clean.Stdout {
			t.Errorf("job %d: detached guest output diverged from clean run", i)
		}
	}
}
