package service

// JobEvent is one status transition in a job's lifetime, as streamed by
// GET /v1/jobs/{id}/events. Seq is 1-based and dense per job; Terminal
// marks the last event the job will ever emit on this daemon instance
// (suspended is terminal here — the job's next event belongs to the
// instance that recovers it).
type JobEvent struct {
	Seq      int    `json:"seq"`
	Status   Status `json:"status"`
	Detail   string `json:"detail,omitempty"`
	Terminal bool   `json:"terminal"`
}

// phaseRank orders a job's lifecycle: pending < running < any settled
// disposition. Phase updates race (a submitter records pending while a
// worker may already be finishing), so both the outcome store and the
// event log accept only rank-monotone transitions.
func phaseRank(st Status) int {
	switch st {
	case StatusPending:
		return 0
	case StatusRunning:
		return 1
	}
	return 2
}

// terminalStatus reports whether st is a settled disposition (pending
// and running are the async API's in-flight phases).
func terminalStatus(st Status) bool { return phaseRank(st) == 2 }

// jobTrack accumulates one job's events. notify is closed and replaced
// on every append, so any number of streamers wait for "something new"
// without polling; a closed-and-gone track (eviction) also closes
// notify so waiters wake and observe the 404.
type jobTrack struct {
	events []JobEvent
	notify chan struct{}
}

// appendEvent records a status transition on id's event log, creating
// the track on first use. Rank-regressing transitions are dropped (see
// phaseRank) so a stale phase can never be streamed after the terminal
// event.
func (s *Service) appendEvent(id string, st Status, detail string) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	tr := s.tracks[id]
	if tr == nil {
		tr = &jobTrack{notify: make(chan struct{})}
		s.tracks[id] = tr
	}
	if n := len(tr.events); n > 0 && phaseRank(st) < phaseRank(tr.events[n-1].Status) {
		return
	}
	tr.events = append(tr.events, JobEvent{
		Seq:      len(tr.events) + 1,
		Status:   st,
		Detail:   detail,
		Terminal: terminalStatus(st),
	})
	close(tr.notify)
	tr.notify = make(chan struct{})
}

// eventsAfter returns id's events with Seq > since plus the channel that
// closes on the next append. ok is false for unknown (or evicted) jobs.
func (s *Service) eventsAfter(id string, since int) (evs []JobEvent, notify <-chan struct{}, ok bool) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	tr := s.tracks[id]
	if tr == nil {
		return nil, nil, false
	}
	if since < 0 {
		since = 0
	}
	if since < len(tr.events) {
		evs = append([]JobEvent(nil), tr.events[since:]...)
	}
	return evs, tr.notify, true
}

// dropTracks evicts event logs alongside their outcomes, waking any
// streamer blocked on them so it observes the job is gone.
func (s *Service) dropTracks(ids []string) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	for _, id := range ids {
		if tr := s.tracks[id]; tr != nil {
			close(tr.notify)
			delete(s.tracks, id)
		}
	}
}
