package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fpvm"
)

// Satellite (a): deadline semantics must not diverge between a live run
// and a crashed-then-recovered one. The twin protocol: the same
// deadline-bounded submission runs once uninterrupted and once suspended
// mid-flight (well before the deadline) and recovered by a fresh
// instance. Both must report the same status, a cycle count inside
// [deadline, full-run), and the same partial-result shape — no final
// digest, stdout a prefix of the full run's. Pre-fix, recovery ran the
// job to completion and labelled the full result late: full cycles, full
// stdout, and a digest a cancelled run can never have.
func TestDeadlineTwinAcrossRecovery(t *testing.T) {
	live := startService(t, Config{Workers: 1, PreemptQuantum: 2_000})
	e := registerLorenz(t, live)
	full := live.Submit(JobRequest{Tenant: "twin", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if full.Status != StatusCompleted {
		t.Fatalf("reference run: %s (%s)", full.Status, full.Detail)
	}
	deadline := full.Cycles / 2

	twinLive := live.Submit(JobRequest{
		Tenant: "twin", ImageID: e.ID, Alt: fpvm.AltBoxed, DeadlineCycles: deadline,
	})
	if twinLive.Status != StatusDeadline {
		t.Fatalf("live twin: %s (%s), want deadline-exceeded", twinLive.Status, twinLive.Detail)
	}

	// The crashed twin: held at dispatch, drained so it suspends at its
	// first trap boundary (~one quantum, far below the deadline), then
	// recovered by a fresh instance that must perform the cancellation.
	dir := t.TempDir()
	s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e2 := registerLorenz(t, s)
	block := make(chan struct{})
	s.testHookDispatch = func(*job) { <-block }
	o := s.SubmitAsync(JobRequest{
		Tenant: "twin", ImageID: e2.ID, Alt: fpvm.AltBoxed, DeadlineCycles: deadline,
	})
	if phaseRank(o.Status) == 2 {
		t.Fatalf("async twin settled before dispatch: %s (%s)", o.Status, o.Detail)
	}
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.inflight == 1 })
	drained := make(chan int, 1)
	go func() { drained <- s.Drain() }()
	waitFor(t, func() bool { return s.State() == StateDraining })
	close(block)
	if n := <-drained; n != 1 {
		t.Fatalf("drain suspended %d jobs, want 1", n)
	}
	if so, ok := s.Outcome(o.ID); !ok || so.Status != StatusSuspended {
		t.Fatalf("twin not suspended before recovery: %+v (ok=%v)", so, ok)
	}

	s2 := New(Config{Workers: 1, SnapshotDir: dir})
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}
	twinRec, ok := s2.Outcome(o.ID)
	if !ok {
		t.Fatalf("recovered twin %s has no outcome", o.ID)
	}

	if twinRec.Status != twinLive.Status {
		t.Fatalf("twin statuses diverge: recovered %s (%s), live %s",
			twinRec.Status, twinRec.Detail, twinLive.Status)
	}
	if !twinRec.Recovered {
		t.Fatal("recovered twin not flagged Recovered")
	}
	for name, twin := range map[string]*JobOutcome{"live": twinLive, "recovered": twinRec} {
		if twin.Cycles < deadline || twin.Cycles >= full.Cycles {
			t.Fatalf("%s twin cancelled at %d cycles; want within [deadline %d, full %d)",
				name, twin.Cycles, deadline, full.Cycles)
		}
		if twin.Digest != "" {
			t.Fatalf("%s twin carries a final-state digest %q; a cancelled run has none", name, twin.Digest)
		}
		if !strings.HasPrefix(full.Stdout, twin.Stdout) || twin.Stdout == full.Stdout {
			t.Fatalf("%s twin stdout is not a strict prefix of the full run's", name)
		}
	}
}

// Satellite (b), ordering half: a job must be journaled before it is
// claimable by any worker. The hook fires under s.mu at the instant of
// publication — the journal read there must already hold the job record,
// or a crash in that window would orphan the worker's snapshot and done
// record (done-before-job). Pre-fix, the journal append ran after the
// queue insert.
func TestJournalPrecedesPublication(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	e := registerLorenz(t, s)

	var hookErr error
	checked := 0
	s.testHookPreSignal = func(j *job) {
		checked++
		pending, _, err := readJournal(dir)
		if err != nil {
			hookErr = err
			return
		}
		for _, rec := range pending {
			if rec.ID == j.id {
				return
			}
		}
		hookErr = fmt.Errorf("job %s became claimable with no journal record", j.id)
	}

	if o := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed}); o.Status != StatusCompleted {
		t.Fatalf("submission: %s (%s)", o.Status, o.Detail)
	}
	if checked == 0 {
		t.Fatal("publication hook never fired; the ordering went unchecked")
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
}

// Satellite (b), sweep half: recovery must remove snapshot files it
// cannot tie to any journaled job — orphans from the pre-fix ordering
// window, fleet debris from rejected recoveries, and torn temp files.
// Pre-fix they accumulated in SnapshotDir forever.
func TestRecoverySweepsOrphanSnapshots(t *testing.T) {
	dir := t.TempDir()
	orphans := []string{"job-j9_00042_ghost.snap", "fleet-0007-ghost.snap", "torn.snap.tmp"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := New(Config{Workers: 1, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", name)
		}
	}
	// The journal itself must survive the sweep.
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("sweep took the journal with it: %v", err)
	}
}

// Satellite (c): quarantine landing between admission and dispatch must
// refuse the job at dispatch with the structured quarantine reason.
// Pre-fix, dispatch never re-checked (and a second registry Get could
// even resolve a different entry), so a job admitted moments before a
// panic ran a quarantined image anyway.
func TestQuarantineRecheckedAtDispatch(t *testing.T) {
	s := startService(t, Config{Workers: 1})
	e := registerLorenz(t, s)

	var once sync.Once
	s.testHookDispatch = func(*job) {
		once.Do(func() { s.Registry().Quarantine(e.ID, "raced in after admission") })
	}

	o := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusFailed || o.Reason != ReasonQuarantined {
		t.Fatalf("raced job: %s/%s (%s), want failed/quarantined", o.Status, o.Reason, o.Detail)
	}
	if !strings.Contains(o.Detail, "between admission and dispatch") {
		t.Fatalf("refusal does not name the dispatch re-check: %q", o.Detail)
	}
}

// Satellite (d): Drain's count. Two concurrent callers must report the
// same (correct) count — pre-fix the second returned 0 immediately — and
// the count must survive outcome-store eviction: with OutcomeRetention
// far below the suspension count, a scan of the bounded store would
// under-count (pre-fix it did exactly that).
func TestConcurrentDrainsAgreeUnderEviction(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir, OutcomeRetention: 2})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e := registerLorenz(t, s)

	block := make(chan struct{})
	s.testHookDispatch = func(*job) { <-block }

	const jobs = 4 // 1 held at dispatch + 3 queued, all suspended by the drain
	outs := make(chan *JobOutcome, jobs)
	for i := 0; i < jobs; i++ {
		go func() { outs <- s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed}) }()
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inflight == 1 && s.queued == jobs-1
	})

	counts := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() { counts <- s.Drain() }()
	}
	waitFor(t, func() bool { return s.State() == StateDraining })
	close(block)

	a, b := <-counts, <-counts
	for i := 0; i < jobs; i++ {
		if o := <-outs; o.Status != StatusSuspended {
			t.Fatalf("drained job ended %s (%s), want suspended", o.Status, o.Detail)
		}
	}
	if a != b {
		t.Fatalf("concurrent Drain calls disagree: %d vs %d", a, b)
	}
	if a != jobs {
		t.Fatalf("Drain reported %d suspensions, want %d (outcome store held at most 2)", a, jobs)
	}
	pending, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != jobs {
		t.Fatalf("journal holds %d pending jobs, want %d", len(pending), jobs)
	}
}

// Satellite (e): a refund landing after the tenant's bucket was evicted
// (cardinality pressure between take and the enqueue refusal) must
// recreate the bucket holding the returned token. Pre-fix the refund
// silently no-op'd — eviction forgot a debt, not just state.
func TestRefundSurvivesBucketEviction(t *testing.T) {
	clock := func() time.Time { return time.Unix(0, 0) }
	a := newAdmission(TenantConfig{}, map[string]TenantConfig{
		"a": {RatePerSec: 0.001, Burst: 1},
		"b": {RatePerSec: 0.001, Burst: 1},
	}, clock, 1)

	if ok, _ := a.take("a"); !ok {
		t.Fatal("tenant a's burst token missing")
	}
	// Cap 1: creating b's bucket evicts a's (empty, mid-refill → LRU).
	if ok, _ := a.take("b"); !ok {
		t.Fatal("tenant b's burst token missing")
	}
	a.mu.Lock()
	evicted := a.buckets["a"] == nil
	a.mu.Unlock()
	if !evicted {
		t.Fatal("test precondition broken: tenant a's bucket was not evicted")
	}

	a.refund("a")

	a.mu.Lock()
	b := a.buckets["a"]
	a.mu.Unlock()
	if b == nil {
		t.Fatal("refund after eviction was dropped: no bucket recreated for tenant a")
	}
	if b.tokens != 1 { // burst(1) − the taken token + the refund, capped at burst
		t.Fatalf("recreated bucket holds %v tokens, want the 1 refunded token", b.tokens)
	}
}
