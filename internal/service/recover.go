package service

import (
	"fmt"
	"os"
	"path/filepath"

	"fpvm"
	"fpvm/internal/fleet"
)

// recoverJournaled replays the journal's pending jobs through the
// fleet's snapshot recovery. A pending job whose preemption snapshot
// survived resumes from it — bit-identically, by the fleet's validation
// — and one without a snapshot runs fresh. Outcomes land in the outcome
// store with StatusRecovered (clients of the dead instance re-query by
// job ID), and done records close the journal entries so a second
// restart doesn't replay them again.
func (s *Service) recoverJournaled() (int, error) {
	if s.cfg.SnapshotDir == "" {
		return 0, nil
	}
	pending, boots, err := readJournal(s.cfg.SnapshotDir)
	if err != nil {
		return 0, fmt.Errorf("service: reading journal: %w", err)
	}
	// Claim the next boot generation and journal it. Generations
	// namespace job IDs per instance, so a fresh ID can never collide
	// with anything a dead instance journaled or snapshotted — counting
	// job records instead would undercount whenever the old instance had
	// refusals (shed submissions burn seq but are never journaled).
	s.mu.Lock()
	s.gen = boots + 1
	s.mu.Unlock()
	if s.jnl != nil {
		if aerr := s.jnl.append(journalRecord{Op: opBoot}); aerr != nil {
			s.met.bump(&s.met.journalFailures)
		}
	}
	if len(pending) == 0 {
		s.sweepStaleSnapshots()
		return 0, nil
	}

	// Build the fleet job list (one slot per pending record, journal
	// order) and move surviving snapshots onto the fleet's slot-indexed
	// names. A record whose image no longer builds is rejected into a
	// failed outcome rather than sinking the whole recovery.
	var jobs []fleet.Job
	var recs []journalRecord
	for _, rec := range pending {
		entry, rerr := s.reg.Register(rec.Workload)
		if rerr != nil || entry.ID != rec.ImageID {
			detail := "image no longer reproducible"
			if rerr != nil {
				detail = rerr.Error()
			} else {
				detail = fmt.Sprintf("rebuilt image hash %s != journaled %s", entry.ID, rec.ImageID)
			}
			s.record(&JobOutcome{ID: rec.ID, Tenant: rec.Tenant, Workload: rec.Workload,
				Status: StatusFailed, Detail: "recovery: " + detail, Recovered: true})
			s.journalDone(rec.ID, StatusFailed)
			continue
		}
		idx := len(jobs)
		src := filepath.Join(s.cfg.SnapshotDir, "job-"+rec.ID+".snap")
		dst := filepath.Join(s.cfg.SnapshotDir, fmt.Sprintf("fleet-%04d-%s.snap", idx, rec.ID))
		if _, serr := os.Stat(src); serr == nil {
			// Rename failure just forfeits the snapshot: the job still
			// runs fresh, which is always correct.
			os.Rename(src, dst)
		}
		jobs = append(jobs, fleet.Job{
			Name:  rec.ID,
			Image: entry.Image,
			Config: fpvm.Config{
				Alt:       fpvm.AltKind(rec.Alt),
				Precision: rec.Precision,
				Seq:       true,
				Short:     true,
			},
			// The journaled deadline rides into recovery so the fleet
			// cancels at the same virtual-cycle ceiling a live run would:
			// slices capped at the remaining budget, partial result at
			// the blown boundary — not a full run labelled late.
			DeadlineCycles: rec.Deadline,
		})
		recs = append(recs, rec)
	}
	if len(jobs) == 0 {
		s.sweepStaleSnapshots()
		return 0, nil
	}

	rep, err := fleet.Recover(s.cfg.SnapshotDir, jobs, fleet.Options{
		Workers:        s.cfg.workers(),
		Share:          false, // private caches: resumed cycle accounting stays schedule-independent
		PreemptQuantum: s.cfg.quantum(),
	})
	if err != nil {
		return 0, fmt.Errorf("service: fleet recovery: %w", err)
	}
	for range rep.RecoveryRejects {
		s.met.bump(&s.met.recoveryRejects)
	}

	recovered := 0
	for i, jr := range rep.Results {
		rec := recs[i]
		var o *JobOutcome
		switch {
		case jr.Err != nil && (jr.Result == nil || !jr.Result.Detached):
			o = &JobOutcome{ID: rec.ID, Tenant: rec.Tenant, Workload: rec.Workload,
				Status: StatusFailed, Detail: "recovery: " + jr.Err.Error()}
		default:
			res := jr.Result
			st := StatusRecovered
			detail := "completed after daemon restart"
			if jr.Resumed {
				detail = "resumed from snapshot after daemon restart"
			}
			if res.Detached {
				st = StatusDegraded
				detail = "recovery: fatal rung detached; guest completed natively"
			} else if jr.DeadlineExceeded {
				// The fleet cancelled at the trap boundary with a partial
				// (preempted-shaped) result — identical semantics to the
				// live path's deadline cancellation, including no digest.
				st = StatusDeadline
				detail = fmt.Sprintf("recovery: deadline %d cycles exceeded at %d", rec.Deadline, res.Cycles)
			}
			j := &job{id: rec.ID, req: JobRequest{Tenant: rec.Tenant}, entry: mustEntry(s.reg, rec.ImageID)}
			o = s.outcomeFrom(j, res, st, detail)
			o.Recovered = true
		}
		s.record(o)
		s.journalDone(rec.ID, o.Status)
		if o.Status == StatusRecovered || o.Status == StatusDegraded || o.Status == StatusDeadline {
			recovered++
		}
	}
	s.sweepStaleSnapshots()
	return recovered, nil
}

// sweepStaleSnapshots removes snapshot files recovery can no longer tie
// to any journaled job: job-*.snap whose record was already closed out
// (or, before the journal-before-publish ordering fix, never written),
// fleet-*.snap left behind by rejected recovery attempts, and torn
// .snap.tmp debris. Runs at the end of every recovery so SnapshotDir
// cannot accumulate unreferenced files across restarts. Pending jobs'
// snapshots were renamed onto fleet slot names and consumed (or
// rejected) by fleet.Recover before this point, so everything still
// matching these patterns is garbage.
func (s *Service) sweepStaleSnapshots() {
	for _, pat := range []string{"job-*.snap", "fleet-*.snap", "*.snap.tmp"} {
		matches, _ := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, pat))
		for _, p := range matches {
			removeQuiet(p)
		}
	}
}

func mustEntry(r *Registry, id string) *ImageEntry {
	e, _ := r.Get(id)
	return e
}
