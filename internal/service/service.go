package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fpvm"
	"fpvm/internal/checkpoint"
	"fpvm/internal/faultinject"
	"fpvm/internal/oracle"
)

// Status is a job's disposition. Every submission — admitted or not —
// resolves to exactly one of the terminal statuses; the service never
// leaves a client without a deliberate answer. Async submissions pass
// through the two in-flight phases (pending, running) first, visible to
// Outcome queries and the events stream.
type Status string

const (
	// StatusPending: accepted and queued, not yet dispatched (async
	// in-flight phase, never a terminal answer).
	StatusPending Status = "pending"
	// StatusRunning: dispatched to a worker and executing (async
	// in-flight phase, never a terminal answer).
	StatusRunning Status = "running"
	// StatusCompleted: the guest ran to exit fully virtualized.
	StatusCompleted Status = "completed"
	// StatusDegraded: the recovery ladder's fatal rung detached FPVM
	// mid-run; the guest still finished, natively. Degraded service,
	// not failure.
	StatusDegraded Status = "degraded"
	// StatusRecovered: the job was interrupted by a daemon crash and
	// completed after restart from its journal record (and snapshot,
	// when one survived).
	StatusRecovered Status = "recovered"
	// StatusDeadline: the job's virtual-cycle deadline expired; it was
	// cancelled at a trap boundary and the partial result returned.
	StatusDeadline Status = "deadline-exceeded"
	// StatusShed: admission refused the job (quota, queue, pressure
	// shedding, draining, or an injected admission fault).
	StatusShed Status = "shed"
	// StatusFailed: the job could not produce a result (unknown image,
	// quarantined image, worker panic, runtime error).
	StatusFailed Status = "failed"
	// StatusSuspended: the daemon drained while the job was queued or
	// in flight; its state is journaled (and snapshotted when it had
	// started) for recovery by the next daemon instance.
	StatusSuspended Status = "suspended"
)

// Reason is the structured cause of a refusal. Detail stays free-form
// prose for humans; Reason is the stable field clients and the HTTP
// status mapping switch on.
type Reason string

const (
	// ReasonQuota: the tenant's token bucket is empty (retryable, 429).
	ReasonQuota Reason = "quota"
	// ReasonQueue: the tenant's bounded queue is full (retryable, 503).
	ReasonQueue Reason = "queue-full"
	// ReasonPressure: the ladder is shedding low-priority tenants (503).
	ReasonPressure Reason = "pressure"
	// ReasonDraining: the daemon is shutting down (503).
	ReasonDraining Reason = "draining"
	// ReasonFault: an injected service fault resolved as a shed (503).
	ReasonFault Reason = "fault"
	// ReasonUnknownImage: the submission names no registered image (404).
	ReasonUnknownImage Reason = "unknown-image"
	// ReasonQuarantined: the image is quarantined after a panic (422).
	ReasonQuarantined Reason = "quarantined"
)

// State is the degradation ladder's position.
type State int32

const (
	// StateFull: all tenants admitted normally.
	StateFull State = iota
	// StateShedding: queue pressure crossed the high-water mark;
	// priority-0 tenants are shed so higher-priority work keeps its
	// latency.
	StateShedding
	// StateDraining: the daemon is shutting down; nothing is admitted,
	// in-flight jobs are suspended at their next trap boundary.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateFull:
		return "full"
	case StateShedding:
		return "shedding"
	case StateDraining:
		return "draining"
	}
	return "state?"
}

// Config configures the service.
type Config struct {
	// Workers sizes the execution pool (0 = 4).
	Workers int

	// PreemptQuantum is the dispatcher's slice length in virtual cycles
	// (0 = 250k). Deadlines, drain and crash durability all act at slice
	// boundaries, so the quantum bounds every reaction latency.
	PreemptQuantum uint64

	// DefaultDeadlineCycles applies to jobs that don't set their own
	// deadline (0 = none).
	DefaultDeadlineCycles uint64

	// SnapshotDir, when set, enables crash durability: preemption
	// snapshots and the submission journal land here, and startup
	// recovers unfinished jobs from it. "" disables persistence.
	SnapshotDir string

	// Inject, when set, arms the service-layer fault sites (svc.admit,
	// svc.enqueue, svc.dispatch, svc.persist, svc.respond). Per-job VM
	// faults ride on JobRequest.InjectSpec instead.
	Inject *faultinject.Injector

	// DefaultTenant is the contract for tenants not listed in Tenants.
	DefaultTenant TenantConfig
	// Tenants holds per-tenant admission contracts.
	Tenants map[string]TenantConfig

	// ShedHighWater / ShedLowWater are total queue-fill fractions that
	// move the ladder Full→Shedding and back (defaults 0.75 / 0.25).
	ShedHighWater float64
	ShedLowWater  float64

	// RetryAfterBase is the base Retry-After for shed responses without
	// a quota-derived wait (default 1s). All Retry-After values carry
	// ±50% deterministic jitter so shed clients don't return in lockstep.
	RetryAfterBase time.Duration

	// Seed seeds the Retry-After jitter sequence.
	Seed uint64

	// CacheCapacity sizes each image's shared decode/trace cache
	// (0 = runtime default).
	CacheCapacity int

	// OutcomeRetention bounds the in-memory outcome store (0 = 4096).
	// Once full, the oldest outcomes are evicted FIFO — a long-running
	// daemon must not retain every outcome it ever produced.
	OutcomeRetention int

	// MaxTrackedTenants bounds every map keyed by client-supplied tenant
	// names (0 = 1024): admission buckets are evicted past it and metric
	// series beyond it aggregate under tenant="_other", so cycling tenant
	// names cannot grow memory without bound.
	MaxTrackedTenants int

	// Clock is the admission clock (nil = time.Now). Injectable so
	// quota tests don't sleep.
	Clock func() time.Time

	// PoolSize is the warm VM pool's free-list target per registered
	// image (and alt/precision variant): that many pre-built VM shells
	// stay parked, refilled asynchronously after checkouts, so
	// steady-state jobs skip per-slice VM construction (0 = Workers).
	PoolSize int

	// NoPool disables warm VM pooling entirely — every slice constructs
	// its VM cold. The ablation baseline for the warm-vs-cold bench.
	NoPool bool
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 4
	}
	return c.Workers
}

func (c *Config) quantum() uint64 {
	if c.PreemptQuantum == 0 {
		return 250_000
	}
	return c.PreemptQuantum
}

func (c *Config) highWater() float64 {
	if c.ShedHighWater <= 0 {
		return 0.75
	}
	return c.ShedHighWater
}

func (c *Config) lowWater() float64 {
	if c.ShedLowWater <= 0 {
		return 0.25
	}
	return c.ShedLowWater
}

func (c *Config) retryAfterBase() time.Duration {
	if c.RetryAfterBase <= 0 {
		return time.Second
	}
	return c.RetryAfterBase
}

func (c *Config) outcomeRetention() int {
	if c.OutcomeRetention <= 0 {
		return 4096
	}
	return c.OutcomeRetention
}

func (c *Config) maxTenants() int {
	if c.MaxTrackedTenants <= 0 {
		return 1024
	}
	return c.MaxTrackedTenants
}

func (c *Config) poolSize() int {
	if c.PoolSize <= 0 {
		return c.workers()
	}
	return c.PoolSize
}

// JobRequest is one job submission.
type JobRequest struct {
	Tenant         string       `json:"tenant"`
	ImageID        string       `json:"image"`
	Alt            fpvm.AltKind `json:"alt"`
	Precision      uint         `json:"precision,omitempty"`
	DeadlineCycles uint64       `json:"deadline_cycles,omitempty"`

	// InjectSpec, when non-empty, arms VM-level fault injection for this
	// job only (faultinject.ParseSpec grammar). Chaos harness knob.
	InjectSpec string `json:"inject,omitempty"`
	InjectSeed uint64 `json:"inject_seed,omitempty"`
}

// JobOutcome is the service's answer for one submission.
type JobOutcome struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Workload string `json:"workload,omitempty"`
	Status   Status `json:"status"`
	Reason   Reason `json:"reason,omitempty"`
	Detail   string `json:"detail,omitempty"`

	Stdout   string `json:"stdout,omitempty"`
	ExitCode int    `json:"exit_code"`
	Cycles   uint64 `json:"cycles"`
	// Digest is the oracle's FNV-1a digest of the normalized final
	// architectural state ("" when the run produced none). Cycle- and
	// schedule-independent: the bit-identity probe for recovery checks.
	Digest string `json:"digest,omitempty"`

	Recovered bool `json:"recovered,omitempty"`
	Detached  bool `json:"detached,omitempty"`

	// RetryAfter is the jittered client backoff for shed outcomes.
	RetryAfter time.Duration `json:"-"`
}

// job is one admitted submission in flight. entry is the registry entry
// admission resolved — dispatch re-checks its quarantine state but never
// re-resolves the ID (the TOCTOU fix: one lookup, one entry).
type job struct {
	id       string
	req      JobRequest
	entry    *ImageEntry
	deadline uint64
	async    bool
	done     chan *JobOutcome
}

// Service is the multi-tenant FP-virtualization daemon core.
type Service struct {
	cfg  Config
	reg  *Registry
	adm  *admission
	met  *metrics
	jnl  *journal
	pool *vmPool // nil when Config.NoPool

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*job
	queued   int
	inflight int
	state    State
	draining bool
	// suspended counts jobs suspended by the current drain, maintained
	// directly at each suspension: the outcome store is bounded and
	// evictable, so scanning it would under-count on a busy daemon.
	suspended int
	// drainDone closes when the first Drain caller finishes; concurrent
	// callers wait on it and report the same count.
	drainDone chan struct{}
	// enqueues tracks submissions between their journal append and their
	// resolution (queued or refused+journalDone). Drain waits on it after
	// flipping draining and before closing the journal, so a refusal's
	// done record can never lose the race against the close and leave a
	// pending journal entry no one counted. Add happens under s.mu with
	// draining false; later arrivals refuse at the pre-check un-journaled.
	enqueues sync.WaitGroup
	// affinityHits counts dispatches where a worker picked a job whose
	// image matches its previous job (cache-affinity placement).
	affinityHits uint64
	// gen is the boot generation (count of journal boot records incl.
	// this one) and seq the within-boot submission counter; together
	// they make job IDs unique across restarts even though refused
	// submissions burn seq without leaving a journal record.
	gen      uint64
	seq      uint64
	outcomes map[string]*JobOutcome
	// outcomeOrder is the FIFO eviction order for the outcome store.
	outcomeOrder []string

	// evMu guards the per-job event logs (see events.go). Never taken
	// while holding s.mu's critical work — record acquires them strictly
	// in sequence, not nested.
	evMu   sync.Mutex
	tracks map[string]*jobTrack

	jitterMu  sync.Mutex
	jitterSeq uint64

	wg      sync.WaitGroup
	started bool

	// testHookDispatch, when set, runs in the worker goroutine right
	// before a job executes — the panic-containment tests' trapdoor.
	testHookDispatch func(*job)
	// testHookPreSignal, when set, runs under s.mu at the instant a job
	// has been placed on its queue, before workers are signalled — the
	// journal-ordering test's probe point.
	testHookPreSignal func(*job)
}

// New builds a Service. Call Start to recover journaled work and launch
// the worker pool.
func New(cfg Config) *Service {
	s := &Service{
		cfg:      cfg,
		reg:      NewRegistry(cfg.CacheCapacity),
		adm:      newAdmission(cfg.DefaultTenant, cfg.Tenants, cfg.Clock, cfg.maxTenants()),
		met:      newMetrics(cfg.maxTenants()),
		gen:      1,
		queues:   make(map[string][]*job),
		outcomes: make(map[string]*JobOutcome),
		tracks:   make(map[string]*jobTrack),
	}
	if !cfg.NoPool {
		s.pool = newVMPool(cfg.poolSize())
	}
	// Every quarantine — worker panic, dispatch re-check, operator call —
	// funnels through the registry, so this one hook guarantees no
	// quarantined image keeps warm shells.
	s.reg.OnQuarantine(func(id string) {
		if s.pool != nil {
			s.pool.invalidate(id)
		}
	})
	s.cond = sync.NewCond(&s.mu)
	return s
}

// PoolStats snapshots the warm VM pool's counters (zero when pooling is
// disabled).
func (s *Service) PoolStats() PoolStats {
	if s.pool == nil {
		return PoolStats{}
	}
	return s.pool.stats()
}

// WarmPools synchronously fills every registered image's warm free-list
// for the given alt/precision variant and reports how many shells were
// built. Startup and bench helper — demand warms pools lazily otherwise.
func (s *Service) WarmPools(alt fpvm.AltKind, precision uint) int {
	if s.pool == nil {
		return 0
	}
	built := 0
	for _, e := range s.reg.entries() {
		if q, _ := e.Quarantined(); q {
			continue
		}
		built += s.pool.prewarm(e, alt, precision)
	}
	return built
}

// Registry exposes the image registry (the HTTP layer registers through
// it).
func (s *Service) Registry() *Registry { return s.reg }

// Start recovers unfinished jobs from the snapshot directory's journal,
// then launches the worker pool. Recovery outcomes are queryable via
// Outcome; the returned count is how many jobs were recovered.
func (s *Service) Start() (recovered int, err error) {
	if s.cfg.SnapshotDir != "" {
		jnl, jerr := openJournal(s.cfg.SnapshotDir)
		if jerr != nil {
			return 0, jerr
		}
		s.jnl = jnl
	}
	recovered, err = s.recoverJournaled()
	if err != nil {
		return recovered, err
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	for w := 0; w < s.cfg.workers(); w++ {
		s.wg.Add(1)
		go func(w int) {
			defer s.wg.Done()
			s.worker(w)
		}(w)
	}
	return recovered, nil
}

// State returns the ladder position.
func (s *Service) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Ready reports whether the service is admitting work (readiness probe).
func (s *Service) Ready() bool { return s.State() != StateDraining }

// Outcome returns a finished (or shed/suspended) job's outcome.
func (s *Service) Outcome(id string) (*JobOutcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outcomes[id]
	return o, ok
}

// check consults the injector at a service site, nil-safe.
func (s *Service) check(site faultinject.Site) *faultinject.Fault {
	if s.cfg.Inject == nil {
		return nil
	}
	err := s.cfg.Inject.Check(site, 0)
	if err == nil {
		return nil
	}
	f, _ := err.(*faultinject.Fault)
	if f == nil {
		f = &faultinject.Fault{Site: site}
	}
	return f
}

// retryAfter jitters a backoff duration: uniform in [0.5·base, 1.5·base)
// from a seeded deterministic sequence, so a burst of shed clients is
// told to come back spread out, not in lockstep.
func (s *Service) retryAfter(base time.Duration) time.Duration {
	if base <= 0 {
		base = s.cfg.retryAfterBase()
	}
	s.jitterMu.Lock()
	s.jitterSeq++
	z := s.cfg.Seed + s.jitterSeq*0x9E3779B97F4A7C15
	s.jitterMu.Unlock()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	frac := 0.5 + float64(z>>11)/(1<<53)
	return time.Duration(float64(base) * frac)
}

// sanitizeID maps arbitrary tenant strings onto the snapshot-safe
// alphabet (must stay within fleet's sanitizeName fixed point, so job
// IDs round-trip through snapshot filenames unchanged).
func sanitizeID(sr string) string {
	var sb strings.Builder
	for _, r := range sr {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "anon"
	}
	return sb.String()
}

// Submit runs one job through the full pipeline — admission, queueing,
// dispatch, execution, response — and blocks until its outcome. Every
// path out is a deliberate Status; Submit never returns nil.
func (s *Service) Submit(req JobRequest) *JobOutcome {
	j, out := s.accept(req, false)
	if out != nil {
		return out
	}
	return <-j.done
}

// SubmitAsync runs the same admission/queueing pipeline as Submit but
// returns as soon as the job is journaled and queued: the returned
// outcome reports the pending phase (or a later one, if a worker was
// faster), and the caller follows progress through Outcome or the
// events stream. Refusals still resolve immediately with a terminal
// outcome. Drain suspends async jobs exactly like blocking ones, and
// recovery serves them under their original IDs.
func (s *Service) SubmitAsync(req JobRequest) *JobOutcome {
	s.met.bump(&s.met.asyncSubmissions)
	j, out := s.accept(req, true)
	if out != nil {
		return out
	}
	if o, ok := s.Outcome(j.id); ok {
		return o
	}
	// Unreachable in practice — accept records the pending phase before
	// returning — but SubmitAsync never returns nil.
	return &JobOutcome{ID: j.id, Tenant: req.Tenant, Workload: j.entry.Workload, Status: StatusPending}
}

// accept is the shared front half of Submit and SubmitAsync: mint an ID,
// admit, enqueue. (nil, outcome) is a refusal; (job, nil) an accepted
// job the worker pool now owns.
func (s *Service) accept(req JobRequest, async bool) (*job, *JobOutcome) {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%d_%05d_%s", s.gen, s.seq, sanitizeID(req.Tenant))
	s.mu.Unlock()

	entry, out := s.admit(id, req)
	if out != nil {
		s.record(out)
		return nil, out
	}

	j := &job{
		id:       id,
		req:      req,
		entry:    entry,
		deadline: req.DeadlineCycles,
		async:    async,
		done:     make(chan *JobOutcome, 1),
	}
	if j.deadline == 0 {
		j.deadline = s.cfg.DefaultDeadlineCycles
	}

	if out := s.enqueue(j); out != nil {
		s.record(out)
		return nil, out
	}
	return j, nil
}

// admit runs the admission pipeline; a nil outcome means admitted, and
// the returned entry is the one resolved lookup the job carries to
// dispatch (which re-checks quarantine on it, never re-resolving).
func (s *Service) admit(id string, req JobRequest) (*ImageEntry, *JobOutcome) {
	shed := func(reason Reason, detail string, base time.Duration) *JobOutcome {
		return &JobOutcome{
			ID: id, Tenant: req.Tenant, Status: StatusShed, Reason: reason,
			Detail: detail, RetryAfter: s.retryAfter(base),
		}
	}

	if s.State() == StateDraining {
		return nil, shed(ReasonDraining, "draining", 0)
	}

	// Injected admission fault: the admission subsystem is momentarily
	// broken; the deliberate answer is a shed with backoff, resolved as
	// a degradation (service quality, not correctness).
	if f := s.check(faultinject.SiteSvcAdmit); f != nil {
		s.cfg.Inject.Resolve(faultinject.SiteSvcAdmit, faultinject.Degraded)
		return nil, shed(ReasonFault, "admission fault injected", 0)
	}

	entry, ok := s.reg.Get(req.ImageID)
	if !ok {
		return nil, &JobOutcome{ID: id, Tenant: req.Tenant, Status: StatusFailed,
			Reason: ReasonUnknownImage, Detail: "unknown image " + req.ImageID}
	}
	if q, why := entry.Quarantined(); q {
		return nil, &JobOutcome{ID: id, Tenant: req.Tenant, Status: StatusFailed,
			Reason: ReasonQuarantined, Workload: entry.Workload,
			Detail: "image quarantined: " + why}
	}

	tc := s.adm.tenantConfig(req.Tenant)
	if s.State() == StateShedding && tc.Priority == 0 {
		return nil, shed(ReasonPressure, "shedding low-priority tenants under pressure", 0)
	}

	if ok, wait := s.adm.take(req.Tenant); !ok {
		return nil, shed(ReasonQuota, "tenant quota exhausted", wait)
	}
	return entry, nil
}

// enqueue places an admitted job on its tenant's bounded queue; nil
// means queued (the worker pool owns it now). Admission already charged
// the tenant a quota token; every refusal here refunds it — a job the
// service never accepted must not burn the tenant's budget.
func (s *Service) enqueue(j *job) *JobOutcome {
	refused := func(reason Reason, detail string) *JobOutcome {
		s.adm.refund(j.req.Tenant)
		return &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Status: StatusShed,
			Reason: reason, Detail: detail, RetryAfter: s.retryAfter(0)}
	}

	// Injected enqueue fault: transient; retry once, shed on a repeat.
	if f := s.check(faultinject.SiteSvcEnqueue); f != nil {
		s.cfg.Inject.Resolve(faultinject.SiteSvcEnqueue, faultinject.Retried)
		s.met.bump(&s.met.enqueueRetries)
		if f2 := s.check(faultinject.SiteSvcEnqueue); f2 != nil {
			s.cfg.Inject.Resolve(faultinject.SiteSvcEnqueue, faultinject.Degraded)
			return refused(ReasonFault, "enqueue fault persisted")
		}
	}

	tc := s.adm.tenantConfig(j.req.Tenant)

	// Cheap pre-check so obviously refusable submissions don't pay a
	// journal fsync; the authoritative check re-runs after journaling.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return refused(ReasonDraining, "draining")
	}
	if len(s.queues[j.req.Tenant]) >= tc.queueDepth() {
		s.mu.Unlock()
		return refused(ReasonQueue, "tenant queue full")
	}
	s.enqueues.Add(1)
	s.mu.Unlock()
	defer s.enqueues.Done()

	// Journal BEFORE the job becomes claimable. The instant a worker can
	// see the job it may persist a job-<id>.snap or journal its done
	// record, and recovery only understands snapshots and dones it can
	// tie to a job record — a done-before-job ordering (or an orphaned
	// snapshot) must be impossible, not just unlikely. A crash in the
	// window after this append merely replays the job: at-least-once for
	// accepted work, never an orphan. A journal write failure still
	// degrades durability, never availability.
	s.journalJob(j)

	// The job is journaled and about to be claimable: record its pending
	// phase now, before any worker can race a later phase in (record
	// keeps phases monotone, so a faster worker's update wins anyway).
	s.record(&JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
		Status: StatusPending, Detail: "queued"})

	s.mu.Lock()
	if s.draining || len(s.queues[j.req.Tenant]) >= tc.queueDepth() {
		draining := s.draining
		s.mu.Unlock()
		// Journaled but refused: close the record out so recovery never
		// replays a job its client was told was shed.
		s.journalDone(j.id, StatusShed)
		if draining {
			return refused(ReasonDraining, "draining")
		}
		return refused(ReasonQueue, "tenant queue full")
	}
	s.queues[j.req.Tenant] = append(s.queues[j.req.Tenant], j)
	s.queued++
	s.updatePressureLocked()
	if h := s.testHookPreSignal; h != nil {
		h(j)
	}
	s.cond.Signal()
	s.mu.Unlock()
	return nil
}

func (s *Service) journalJob(j *job) {
	if s.jnl == nil {
		return
	}
	err := s.jnl.append(journalRecord{
		Op: opJob, ID: j.id, Tenant: j.req.Tenant,
		Workload: j.entry.Workload, ImageID: j.entry.ID,
		Alt: string(j.req.Alt), Precision: j.req.Precision,
		Deadline: j.deadline,
	})
	if err != nil {
		s.met.bump(&s.met.journalFailures)
	}
}

func (s *Service) journalDone(id string, st Status) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.append(journalRecord{Op: opDone, ID: id, Status: st}); err != nil {
		s.met.bump(&s.met.journalFailures)
	}
}

// updatePressureLocked moves the ladder between Full and Shedding from
// total queue fill. Draining is sticky — only Drain enters it, nothing
// leaves it.
func (s *Service) updatePressureLocked() {
	if s.draining {
		return
	}
	// Capacity counts only tenants with work queued (next and Drain
	// delete emptied queues): a client minting fresh tenant names must
	// not dilute the fill fraction and hold off the shedding transition.
	capacity := 0
	for tenant, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		capacity += s.adm.tenantConfig(tenant).queueDepth()
	}
	if capacity == 0 {
		s.state = StateFull
		return
	}
	fill := float64(s.queued) / float64(capacity)
	switch {
	case fill >= s.cfg.highWater():
		s.state = StateShedding
	case fill <= s.cfg.lowWater():
		s.state = StateFull
	}
}

// next blocks until a job is available and claims it, or returns nil
// when the service is draining (workers exit; queued jobs are flushed
// as suspended by Drain). lastImage is the calling worker's previous
// job's image ID ("" on a fresh worker) — cache-affinity placement.
func (s *Service) next(lastImage string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		if s.queued > 0 {
			break
		}
		s.cond.Wait()
	}

	// Highest-priority tenant first; FIFO within a tenant; name order
	// breaks priority ties so scheduling is deterministic.
	tenants := make([]string, 0, len(s.queues))
	for t := range s.queues {
		if len(s.queues[t]) > 0 {
			tenants = append(tenants, t)
		}
	}
	sort.Slice(tenants, func(i, k int) bool {
		pi, pk := s.adm.tenantConfig(tenants[i]).Priority, s.adm.tenantConfig(tenants[k]).Priority
		if pi != pk {
			return pi > pk
		}
		return tenants[i] < tenants[k]
	})
	t := tenants[0]
	if lastImage != "" && len(tenants) > 1 {
		// Cache-affinity placement: among the tenants tied at the head
		// priority, prefer one whose next job runs the image this worker
		// just ran — its warm shells and shared cache are hottest here.
		// Priority order and per-tenant FIFO are preserved: only the tie
		// break among equal-priority queue heads changes.
		topPri := s.adm.tenantConfig(t).Priority
		for _, cand := range tenants {
			if s.adm.tenantConfig(cand).Priority != topPri {
				break
			}
			if head := s.queues[cand][0]; head.entry != nil && head.entry.ID == lastImage {
				t = cand
				break
			}
		}
	}
	j := s.queues[t][0]
	if lastImage != "" && j.entry != nil && j.entry.ID == lastImage {
		s.affinityHits++
	}
	s.queues[t] = s.queues[t][1:]
	if len(s.queues[t]) == 0 {
		// Evict the emptied queue: tenant-name cardinality stays bounded
		// and pressure capacity tracks active tenants only.
		delete(s.queues, t)
	}
	s.queued--
	s.inflight++
	s.updatePressureLocked()
	return j
}

func (s *Service) worker(w int) {
	lastImage := ""
	for {
		j := s.next(lastImage)
		if j == nil {
			return
		}
		if j.entry != nil {
			lastImage = j.entry.ID
		}
		// Injected dispatch fault: the pickup is transient-faulty;
		// resolve as a retry and dispatch again (successfully).
		if f := s.check(faultinject.SiteSvcDispatch); f != nil {
			s.cfg.Inject.Resolve(faultinject.SiteSvcDispatch, faultinject.Retried)
			s.met.bump(&s.met.dispatchRetries)
		}
		s.execute(j)
	}
}

// execute runs one job's slice loop to a terminal outcome. A panic —
// from the runtime or the service's own handling — is contained: the
// job fails, its image is quarantined, and the worker (and daemon)
// keep serving.
func (s *Service) execute(j *job) {
	defer func() {
		if p := recover(); p != nil {
			s.reg.Quarantine(j.entry.ID, fmt.Sprintf("worker panic: %v", p))
			s.met.bump(&s.met.panics)
			s.finish(j, &JobOutcome{
				ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
				Status: StatusFailed,
				Detail: fmt.Sprintf("worker panic (image quarantined): %v", p),
			})
		}
	}()
	if s.testHookDispatch != nil {
		s.testHookDispatch(j)
	}

	// Quarantine is re-checked at dispatch: admission's check and this
	// moment are separated by arbitrary queueing, and another job's
	// panic may have quarantined the image in between (the TOCTOU this
	// closes). The entry is the one admission resolved — no second
	// registry lookup to race against re-registration.
	if q, why := j.entry.Quarantined(); q {
		s.finish(j, &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
			Status: StatusFailed, Reason: ReasonQuarantined,
			Detail: "image quarantined between admission and dispatch: " + why})
		return
	}

	s.record(&JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
		Status: StatusRunning, Detail: "executing"})

	cfg := jobVMConfig(j.entry, j.req.Alt, j.req.Precision)
	if j.req.InjectSpec != "" {
		inj, err := faultinject.ParseSpec(j.req.InjectSpec, j.req.InjectSeed)
		if err != nil {
			s.finish(j, &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
				Status: StatusFailed, Detail: "bad inject spec: " + err.Error()})
			return
		}
		cfg.Inject = inj
	}
	// Per-job fault injection changes the VM config, so those jobs
	// bypass the warm pool: a pooled shell must be exactly jobVMConfig.
	usePool := s.pool != nil && cfg.Inject == nil

	var snap []byte
	var cycles uint64
	for {
		q := s.cfg.quantum()
		if j.deadline > 0 {
			rem := j.deadline - cycles
			if rem < q {
				q = rem
			}
		}

		var vm *fpvm.VM
		if usePool {
			vm = s.pool.checkout(j.entry, j.req.Alt, j.req.Precision)
		}
		if vm == nil {
			var perr error
			vm, perr = fpvm.Prepare(j.entry.Image, cfg)
			if perr != nil {
				s.finish(j, &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
					Status: StatusFailed, Detail: perr.Error()})
				return
			}
		}
		vm.SetPreemptQuantum(q)

		var res *fpvm.Result
		var err error
		if snap == nil {
			res, err = vm.Run()
		} else {
			res, err = vm.Resume(snap)
		}

		if err != nil && (res == nil || !res.Detached) {
			s.finish(j, &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
				Status: StatusFailed, Detail: err.Error()})
			return
		}

		if res.Preempted {
			snap = res.Snapshot
			cycles = res.Cycles
			s.persist(j, snap)

			if j.deadline > 0 && cycles >= j.deadline {
				// Deadline blown: cancelled at the trap boundary; the
				// partial result travels with the distinct status.
				s.finish(j, s.outcomeFrom(j, res, StatusDeadline,
					fmt.Sprintf("deadline %d cycles exceeded at %d", j.deadline, cycles)))
				return
			}
			if s.isDraining() {
				s.suspend(j, snap, res)
				return
			}
			continue
		}

		st := StatusCompleted
		detail := ""
		if res.Detached {
			st = StatusDegraded
			detail = "fatal rung detached; guest completed natively"
		}
		s.finish(j, s.outcomeFrom(j, res, st, detail))
		return
	}
}

func (s *Service) outcomeFrom(j *job, res *fpvm.Result, st Status, detail string) *JobOutcome {
	o := &JobOutcome{
		ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
		Status: st, Detail: detail,
		Stdout: res.Stdout, ExitCode: res.ExitCode, Cycles: res.Cycles,
		Detached: res.Detached,
	}
	if res.Final != nil {
		rec := oracle.Digest(res.Final)
		o.Digest = fmt.Sprintf("%016x-%016x", rec.RIP, rec.Sum)
	}
	if res.Breakdown != nil {
		s.met.merge(res.Breakdown)
	}
	return o
}

// persist writes a job's preemption snapshot for crash durability. An
// injected persist fault (or a real write failure) degrades durability
// only: the in-memory snapshot keeps the job running.
func (s *Service) persist(j *job, snap []byte) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	if f := s.check(faultinject.SiteSvcPersist); f != nil {
		s.cfg.Inject.Resolve(faultinject.SiteSvcPersist, faultinject.Degraded)
		s.met.bump(&s.met.persistDegraded)
		return
	}
	path := filepath.Join(s.cfg.SnapshotDir, "job-"+j.id+".snap")
	if err := checkpoint.WriteFileAtomic(path, snap); err != nil {
		s.met.bump(&s.met.persistFailures)
	}
}

// suspend parks an in-flight job during drain: snapshot persisted, no
// done record (the journal keeps it pending for the next instance), the
// waiting client told it's suspended. The suspension counter is bumped
// here, at the event — Drain's return value must not depend on the
// bounded outcome store still holding every suspended outcome.
func (s *Service) suspend(j *job, snap []byte, res *fpvm.Result) {
	s.persist(j, snap)
	o := s.outcomeFrom(j, res, StatusSuspended,
		"daemon draining; job suspended for recovery")
	s.mu.Lock()
	s.suspended++
	s.mu.Unlock()
	s.deliver(j, o, false)
}

// finish records a terminal outcome: journal done, snapshot cleanup,
// response delivery.
func (s *Service) finish(j *job, o *JobOutcome) {
	s.deliver(j, o, true)
}

func (s *Service) deliver(j *job, o *JobOutcome, terminal bool) {
	if terminal {
		s.journalDone(j.id, o.Status)
		if s.cfg.SnapshotDir != "" {
			removeQuiet(filepath.Join(s.cfg.SnapshotDir, "job-"+j.id+".snap"))
		}
	}

	// Injected respond fault: delivery is transient-faulty; retry the
	// send (it is idempotent — the outcome is also in the store).
	if f := s.check(faultinject.SiteSvcRespond); f != nil {
		s.cfg.Inject.Resolve(faultinject.SiteSvcRespond, faultinject.Retried)
		s.met.bump(&s.met.respondRetries)
	}

	s.record(o)
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
	j.done <- o
}

// record stores an outcome (terminal or in-flight phase) and appends
// the matching job event. Phase updates are rank-monotone: a stale
// pending/running racing in after a faster transition is dropped, so a
// settled job can never appear in-flight again. The store is bounded:
// past OutcomeRetention the oldest outcomes are evicted FIFO — and
// their event tracks with them — so a long-running daemon's memory
// doesn't grow with its request history. Only terminal statuses count
// toward the per-tenant job metrics (phases are gauges, not outcomes).
func (s *Service) record(o *JobOutcome) {
	if terminalStatus(o.Status) {
		s.met.job(o.Tenant, o.Status)
	}
	var evicted []string
	s.mu.Lock()
	old, seen := s.outcomes[o.ID]
	if seen && phaseRank(o.Status) < phaseRank(old.Status) {
		s.mu.Unlock()
		return
	}
	if !seen {
		s.outcomeOrder = append(s.outcomeOrder, o.ID)
	}
	s.outcomes[o.ID] = o
	for limit := s.cfg.outcomeRetention(); len(s.outcomes) > limit && len(s.outcomeOrder) > 0; {
		evicted = append(evicted, s.outcomeOrder[0])
		delete(s.outcomes, s.outcomeOrder[0])
		s.outcomeOrder = s.outcomeOrder[1:]
	}
	s.mu.Unlock()
	s.appendEvent(o.ID, o.Status, o.Detail)
	if len(evicted) > 0 {
		s.dropTracks(evicted)
	}
}

func (s *Service) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: admission stops, workers
// suspend in-flight jobs at their next trap boundary (snapshot + journal
// keep them recoverable), queued jobs are flushed as suspended, the warm
// pool is emptied and the journal closed. Returns the number of jobs
// suspended — counted directly at each suspension, never by scanning the
// bounded outcome store (FIFO eviction would under-count on a busy
// daemon). Concurrent callers wait for the first drain and report the
// same count.
func (s *Service) Drain() int {
	s.mu.Lock()
	if s.draining {
		done := s.drainDone
		s.mu.Unlock()
		if done != nil {
			<-done
		}
		s.mu.Lock()
		n := s.suspended
		s.mu.Unlock()
		return n
	}
	s.draining = true
	s.state = StateDraining
	s.drainDone = make(chan struct{})
	done := s.drainDone
	s.cond.Broadcast()
	s.mu.Unlock()

	// In-window submissions first: anything journaled before the drain
	// flip resolves — onto a queue (flushed below) or refused with its
	// done record written — before the journal can close underneath it.
	s.enqueues.Wait()
	s.wg.Wait() // workers finish or suspend their current job, then exit

	// Flush never-started queued jobs: journaled, no snapshot — the next
	// instance runs them fresh.
	s.mu.Lock()
	var parked []*job
	for t, q := range s.queues {
		parked = append(parked, q...)
		delete(s.queues, t)
	}
	s.queued = 0
	s.suspended += len(parked)
	s.mu.Unlock()

	for _, j := range parked {
		o := &JobOutcome{ID: j.id, Tenant: j.req.Tenant, Workload: j.entry.Workload,
			Status: StatusSuspended, Detail: "daemon draining; queued job journaled for recovery"}
		s.record(o)
		j.done <- o
	}

	if s.pool != nil {
		s.pool.close()
	}
	if s.jnl != nil {
		s.jnl.Close()
	}

	s.mu.Lock()
	n := s.suspended
	s.mu.Unlock()
	close(done)
	return n
}

// removeQuiet removes a file, ignoring errors (absence is fine).
func removeQuiet(path string) { os.Remove(path) }
