// Package service implements fpvmd's multi-tenant serving stack on top
// of the FPVM runtime: a content-addressed guest-image registry,
// per-tenant admission control with token buckets and bounded queues,
// deadline-bounded preemptive job execution, a degradation ladder
// (full service → shed low priority → drain), crash-restart recovery
// through the fleet's snapshot machinery, and Prometheus-text metrics.
//
// Everything job-visible runs on the virtual clock: deadlines are
// virtual-cycle budgets enforced at trap boundaries, so a job's outcome
// is a property of the job, not of host load.
package service

import (
	"encoding/hex"
	"fmt"
	"sync"

	"fpvm"
	"fpvm/internal/obj"
	"fpvm/internal/workloads"
)

// ImageEntry is one registered guest image. The ID is the hex of the
// image's content hash, so registering the same program twice — from any
// client — lands on the same entry, the same shared decode/trace cache,
// and the same quarantine state.
type ImageEntry struct {
	ID       string
	Workload string
	Image    *obj.Image
	Shared   *fpvm.SharedCache

	mu          sync.Mutex
	quarantined bool
	reason      string
}

// Quarantined reports whether the image is quarantined and why.
func (e *ImageEntry) Quarantined() (bool, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quarantined, e.reason
}

// quarantine marks the entry; reports whether this call made the
// transition (re-quarantining keeps the first reason and returns false).
func (e *ImageEntry) quarantine(reason string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quarantined {
		return false
	}
	e.quarantined = true
	e.reason = reason
	return true
}

// Registry is the content-addressed image store. Guests are referenced
// by workload name at registration (this repo's images are built, not
// uploaded) and by content hash afterwards.
type Registry struct {
	mu       sync.Mutex
	byID     map[string]*ImageEntry
	cacheCap int
	// onQuarantine callbacks fire once per image when it transitions
	// into quarantine (warm-pool invalidation hangs off this).
	onQuarantine []func(id string)
}

// NewRegistry returns an empty registry. cacheCap sizes each image's
// shared decode/trace cache (0 = runtime default).
func NewRegistry(cacheCap int) *Registry {
	return &Registry{byID: make(map[string]*ImageEntry), cacheCap: cacheCap}
}

// Register builds the named workload, patches it for FPVM, and registers
// the result under its content hash. Registering an already-known image
// is idempotent and returns the existing entry — including its shared
// cache and its quarantine state (a quarantined program does not become
// trustworthy by being re-registered).
func (r *Registry) Register(workload string) (*ImageEntry, error) {
	img, err := workloads.BuildMicro(workloads.Name(workload))
	if err != nil {
		return nil, fmt.Errorf("service: unknown workload %q: %w", workload, err)
	}
	patched, err := fpvm.PrepareForFPVM(img, true)
	if err != nil {
		return nil, fmt.Errorf("service: patching %q: %w", workload, err)
	}

	h := patched.Hash()
	id := hex.EncodeToString(h[:])

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		return e, nil
	}
	// One shared cache per image, bound first-bind-wins to this exact
	// image object: every VM the service runs against this entry warms
	// the same store, and a mismatched image can never attach.
	shared := fpvm.NewSharedCache(r.cacheCap)
	if err := shared.Bind(patched); err != nil {
		return nil, fmt.Errorf("service: binding shared cache: %w", err)
	}
	e := &ImageEntry{ID: id, Workload: workload, Image: patched, Shared: shared}
	r.byID[id] = e
	return e, nil
}

// Get looks an image up by content-hash ID.
func (r *Registry) Get(id string) (*ImageEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	return e, ok
}

// OnQuarantine registers fn to run whenever an image transitions into
// quarantine (at most once per image). The service wires warm-pool
// invalidation through this so no path that quarantines an image can
// leave its pre-built VM shells serveable.
func (r *Registry) OnQuarantine(fn func(id string)) {
	r.mu.Lock()
	r.onQuarantine = append(r.onQuarantine, fn)
	r.mu.Unlock()
}

// Quarantine marks an image untrusted (a job running it panicked the
// worker). Subsequent submissions against it are rejected with a
// distinct status until the daemon restarts.
func (r *Registry) Quarantine(id, reason string) {
	r.mu.Lock()
	e, ok := r.byID[id]
	fns := r.onQuarantine
	r.mu.Unlock()
	if ok && e.quarantine(reason) {
		for _, fn := range fns {
			fn(id)
		}
	}
}

// entries snapshots the registered images (pool pre-warm iteration).
func (r *Registry) entries() []*ImageEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	es := make([]*ImageEntry, 0, len(r.byID))
	for _, e := range r.byID {
		es = append(es, e)
	}
	return es
}
