package service

import (
	"sync"
	"time"
)

// TenantConfig is one tenant's admission contract.
type TenantConfig struct {
	// RatePerSec refills the tenant's token bucket (jobs/second).
	// 0 = unlimited (no quota).
	RatePerSec float64
	// Burst is the bucket capacity (0 = max(1, RatePerSec)).
	Burst float64
	// QueueDepth bounds the tenant's pending-job queue (0 = default 16).
	QueueDepth int
	// Priority orders tenants under pressure: when the service enters
	// the shedding state, priority-0 tenants are shed before any
	// higher-priority job is refused. Higher is more important.
	Priority int
}

const defaultQueueDepth = 16

func (tc TenantConfig) queueDepth() int {
	if tc.QueueDepth <= 0 {
		return defaultQueueDepth
	}
	return tc.QueueDepth
}

func (tc TenantConfig) burst() float64 {
	if tc.Burst > 0 {
		return tc.Burst
	}
	if tc.RatePerSec > 1 {
		return tc.RatePerSec
	}
	return 1
}

// admission owns the per-tenant token buckets. Queue occupancy lives
// with the scheduler; this type answers only "does this tenant have
// quota right now, and if not, when should it retry".
type admission struct {
	mu       sync.Mutex
	now      func() time.Time
	defaults TenantConfig
	tenants  map[string]TenantConfig
	buckets  map[string]*bucket
	// maxBuckets bounds the bucket map against client-minted tenant-name
	// cardinality; see evictLocked.
	maxBuckets int
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(defaults TenantConfig, tenants map[string]TenantConfig, now func() time.Time, maxBuckets int) *admission {
	if now == nil {
		now = time.Now
	}
	if maxBuckets <= 0 {
		maxBuckets = 1024
	}
	return &admission{
		now:        now,
		defaults:   defaults,
		tenants:    tenants,
		buckets:    make(map[string]*bucket),
		maxBuckets: maxBuckets,
	}
}

// tenantConfig resolves a tenant's contract (explicit or default).
func (a *admission) tenantConfig(tenant string) TenantConfig {
	if tc, ok := a.tenants[tenant]; ok {
		return tc
	}
	return a.defaults
}

// take attempts to draw one token from the tenant's bucket. On refusal
// it returns how long until the bucket next holds a full token — the
// base for the jittered Retry-After the caller sends.
func (a *admission) take(tenant string) (ok bool, retryAfter time.Duration) {
	tc := a.tenantConfig(tenant)
	if tc.RatePerSec <= 0 {
		return true, 0
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= a.maxBuckets {
			a.evictLocked(now)
		}
		b = &bucket{tokens: tc.burst(), last: now}
		a.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * tc.RatePerSec
		if cap := tc.burst(); b.tokens > cap {
			b.tokens = cap
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / tc.RatePerSec * float64(time.Second))
}

// refund returns one token to a tenant's bucket (capped at burst).
// Admission charges quota before the queue-capacity check runs; a job
// refused at enqueue hands its token back so work the service never
// accepted doesn't burn the tenant's budget.
func (a *admission) refund(tenant string) {
	tc := a.tenantConfig(tenant)
	if tc.RatePerSec <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	if b == nil {
		// The bucket was evicted between take and this refusal. Eviction
		// may only forget state, never a debt the service owes: recreate
		// the bucket holding the refunded token — a fresh bucket starts
		// at burst, take removed one, this refund returns it.
		now := a.now()
		if len(a.buckets) >= a.maxBuckets {
			a.evictLocked(now)
		}
		a.buckets[tenant] = &bucket{tokens: tc.burst(), last: now}
		return
	}
	if b.tokens++; b.tokens > tc.burst() {
		b.tokens = tc.burst()
	}
}

// evictLocked bounds the bucket map when client-minted tenant names pile
// up. Buckets that have refilled to burst go first — a full bucket is
// behaviorally identical to no bucket — and if every survivor is still
// mid-refill, the least-recently-touched ones are dropped until the map
// fits (forgetting at most that tenant's residual quota debt; bounded
// memory wins over perfect accounting under a cardinality attack).
func (a *admission) evictLocked(now time.Time) {
	for t, b := range a.buckets {
		tc := a.tenantConfig(t)
		if tc.RatePerSec <= 0 ||
			b.tokens+now.Sub(b.last).Seconds()*tc.RatePerSec >= tc.burst() {
			delete(a.buckets, t)
		}
	}
	for len(a.buckets) >= a.maxBuckets {
		oldest, first := "", true
		var oldestAt time.Time
		for t, b := range a.buckets {
			if first || b.last.Before(oldestAt) {
				oldest, oldestAt, first = t, b.last, false
			}
		}
		delete(a.buckets, oldest)
	}
}
