package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// HTTP mapping of job outcomes. Shed responses carry a jittered
// Retry-After; suspended responses are 202 (the work is accepted and
// journaled — re-query the job ID against the next daemon instance), as
// are the async in-flight phases (accepted, not yet settled).
func httpStatus(o *JobOutcome) int {
	switch o.Status {
	case StatusCompleted, StatusDegraded, StatusRecovered:
		return http.StatusOK
	case StatusSuspended, StatusPending, StatusRunning:
		return http.StatusAccepted
	case StatusDeadline:
		return http.StatusGatewayTimeout
	case StatusShed:
		// Only quota refusals are the tenant's own doing (429); every
		// other shed is service-side pressure (503). The switch is on the
		// structured Reason, never on Detail prose.
		if o.Reason == ReasonQuota {
			return http.StatusTooManyRequests
		}
		return http.StatusServiceUnavailable
	case StatusFailed:
		switch o.Reason {
		case ReasonUnknownImage:
			return http.StatusNotFound
		case ReasonQuarantined:
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/images           {"workload": "lorenz"}    → content-addressed image ID
//	POST /v1/jobs             JobRequest JSON           → JobOutcome JSON (blocks to completion)
//	POST /v1/jobs?async=1     JobRequest JSON           → 202 + pending JobOutcome (job ID) immediately
//	GET  /v1/jobs/{id}                                  → stored outcome (pending/running → 202)
//	GET  /v1/jobs/{id}/events                           → SSE status-transition stream
//	GET  /v1/jobs/{id}/events?poll=1&since=N            → long-poll fallback (JSON events after seq N)
//	GET  /healthz                                       → 200 while the process serves
//	GET  /readyz                                        → 200 admitting, 503 draining
//	GET  /metrics                                       → Prometheus text
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/images", s.handleRegister)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleOutcome)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "state": s.State().String()})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "state": s.State().String()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	return mux
}

type registerRequest struct {
	Workload string `json:"workload"`
}

type registerResponse struct {
	ID          string `json:"id"`
	Workload    string `json:"workload"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Workload == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "body must be {\"workload\": \"<name>\"}"})
		return
	}
	entry, err := s.reg.Register(req.Workload)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	q, _ := entry.Quarantined()
	writeJSON(w, http.StatusOK, registerResponse{ID: entry.ID, Workload: entry.Workload, Quarantined: q})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed job request: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	if req.Alt == "" {
		req.Alt = "boxed"
	}
	var o *JobOutcome
	if r.URL.Query().Get("async") == "1" {
		o = s.SubmitAsync(req)
	} else {
		o = s.Submit(req)
	}
	if o.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(o.RetryAfter.Seconds()))))
	}
	writeJSON(w, httpStatus(o), o)
}

func (s *Service) handleOutcome(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	o, ok := s.Outcome(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job " + id})
		return
	}
	writeJSON(w, httpStatus(o), o)
}

// handleEvents streams a job's status transitions. Default transport is
// Server-Sent Events; ?poll=1 (or a ResponseWriter that can't flush)
// selects the long-poll fallback. Both honor a `since` cursor (also the
// SSE Last-Event-ID header) so reconnecting clients resume without
// replaying or losing transitions.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.Atoi(v)
	}
	if _, _, ok := s.eventsAfter(id, since); !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job " + id})
		return
	}

	flusher, canFlush := w.(http.Flusher)
	if r.URL.Query().Get("poll") == "1" || !canFlush {
		s.longPollEvents(w, r, id, since)
		return
	}
	s.streamEvents(w, r, id, since, flusher)
}

// longPollEvents answers one GET with the events after `since`, waiting
// up to the poll window for the first new one. An empty list on timeout
// is a valid answer — the client re-polls with the same cursor.
func (s *Service) longPollEvents(w http.ResponseWriter, r *http.Request, id string, since int) {
	wait := 30 * time.Second
	if v := r.URL.Query().Get("wait_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms >= 0 {
			wait = time.Duration(ms) * time.Millisecond
			if wait > time.Minute {
				wait = time.Minute
			}
		}
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, notify, ok := s.eventsAfter(id, since)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job " + id})
			return
		}
		if len(evs) > 0 {
			writeJSON(w, http.StatusOK, map[string]any{"job": id, "events": evs})
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, map[string]any{"job": id, "events": []JobEvent{}})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// streamEvents is the SSE transport: each status transition is one
// `event: <status>` frame whose data is the JobEvent JSON; `id:` carries
// the sequence number for Last-Event-ID resumption. The stream ends at
// the job's terminal event (or client disconnect); idle waits emit
// comment heartbeats so intermediaries don't reap the connection.
func (s *Service) streamEvents(w http.ResponseWriter, r *http.Request, id string, since int, flusher http.Flusher) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		evs, notify, ok := s.eventsAfter(id, since)
		if !ok {
			// Evicted mid-stream: nothing more will ever arrive.
			return
		}
		for _, ev := range evs {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Status, data)
			since = ev.Seq
			if ev.Terminal {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-notify:
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Serve runs the HTTP API on addr until the listener fails or the
// server is shut down externally; cmd/fpvmd wires signals around it.
func (s *Service) Serve(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
