package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"
)

// HTTP mapping of job outcomes. Shed responses carry a jittered
// Retry-After; suspended responses are 202 (the work is accepted and
// journaled — re-query the job ID against the next daemon instance).
func httpStatus(o *JobOutcome) int {
	switch o.Status {
	case StatusCompleted, StatusDegraded, StatusRecovered:
		return http.StatusOK
	case StatusSuspended:
		return http.StatusAccepted
	case StatusDeadline:
		return http.StatusGatewayTimeout
	case StatusShed:
		// Only quota refusals are the tenant's own doing (429); every
		// other shed is service-side pressure (503). The switch is on the
		// structured Reason, never on Detail prose.
		if o.Reason == ReasonQuota {
			return http.StatusTooManyRequests
		}
		return http.StatusServiceUnavailable
	case StatusFailed:
		switch o.Reason {
		case ReasonUnknownImage:
			return http.StatusNotFound
		case ReasonQuarantined:
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/images   {"workload": "lorenz"}            → content-addressed image ID
//	POST /v1/jobs     JobRequest JSON                   → JobOutcome JSON (blocks to completion)
//	GET  /v1/jobs/{id}                                  → stored outcome (incl. recovered jobs)
//	GET  /healthz                                       → 200 while the process serves
//	GET  /readyz                                        → 200 admitting, 503 draining
//	GET  /metrics                                       → Prometheus text
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/images", s.handleRegister)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleOutcome)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "state": s.State().String()})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "state": s.State().String()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	return mux
}

type registerRequest struct {
	Workload string `json:"workload"`
}

type registerResponse struct {
	ID          string `json:"id"`
	Workload    string `json:"workload"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Workload == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "body must be {\"workload\": \"<name>\"}"})
		return
	}
	entry, err := s.reg.Register(req.Workload)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	q, _ := entry.Quarantined()
	writeJSON(w, http.StatusOK, registerResponse{ID: entry.ID, Workload: entry.Workload, Quarantined: q})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed job request: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	if req.Alt == "" {
		req.Alt = "boxed"
	}
	o := s.Submit(req)
	if o.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(o.RetryAfter.Seconds()))))
	}
	writeJSON(w, httpStatus(o), o)
}

func (s *Service) handleOutcome(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	o, ok := s.Outcome(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job " + id})
		return
	}
	writeJSON(w, httpStatus(o), o)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Serve runs the HTTP API on addr until the listener fails or the
// server is shut down externally; cmd/fpvmd wires signals around it.
func (s *Service) Serve(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
