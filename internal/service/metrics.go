package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"fpvm/internal/telemetry"
)

// metrics aggregates per-tenant job counters, service-layer fault
// handling counters, and the merged runtime telemetry of every job the
// service has executed.
type metrics struct {
	mu       sync.Mutex
	byTenant map[string]map[Status]uint64
	// maxTenants bounds byTenant's label cardinality: once that many
	// distinct tenants are tracked, new ones aggregate under "_other",
	// so client-minted tenant names can't grow the series set unbounded.
	maxTenants int

	enqueueRetries   uint64
	dispatchRetries  uint64
	respondRetries   uint64
	persistDegraded  uint64
	persistFailures  uint64
	journalFailures  uint64
	recoveryRejects  uint64
	panics           uint64
	asyncSubmissions uint64

	breakdown telemetry.Breakdown
}

func newMetrics(maxTenants int) *metrics {
	if maxTenants <= 0 {
		maxTenants = 1024
	}
	return &metrics{
		byTenant:   make(map[string]map[Status]uint64),
		maxTenants: maxTenants,
	}
}

func (m *metrics) job(tenant string, st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.byTenant[tenant]
	if t == nil {
		if len(m.byTenant) >= m.maxTenants {
			tenant = "_other"
			t = m.byTenant[tenant]
		}
		if t == nil {
			t = make(map[Status]uint64)
			m.byTenant[tenant] = t
		}
	}
	t[st]++
}

func (m *metrics) bump(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

func (m *metrics) merge(b *telemetry.Breakdown) {
	m.mu.Lock()
	m.breakdown.Merge(b)
	m.mu.Unlock()
}

// tenantCount reads one tenant/status cell (test and bench probe).
func (m *metrics) tenantCount(tenant string, st Status) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byTenant[tenant][st]
}

// WriteMetrics renders the full metric surface in Prometheus text
// format: per-tenant job outcomes, service internals, queue/ladder
// gauges, then the merged runtime Breakdown under the fpvmd prefix.
func (s *Service) WriteMetrics(w io.Writer) error {
	var sb strings.Builder

	s.met.mu.Lock()
	tenants := make([]string, 0, len(s.met.byTenant))
	for t := range s.met.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(&sb, "# HELP fpvmd_jobs_total job outcomes by tenant and status\n")
	fmt.Fprintf(&sb, "# TYPE fpvmd_jobs_total counter\n")
	for _, t := range tenants {
		stats := s.met.byTenant[t]
		sts := make([]string, 0, len(stats))
		for st := range stats {
			sts = append(sts, string(st))
		}
		sort.Strings(sts)
		for _, st := range sts {
			fmt.Fprintf(&sb, "fpvmd_jobs_total{status=%q,tenant=%q} %d\n", st, t, stats[Status(st)])
		}
	}
	internals := []struct {
		name, help string
		v          uint64
	}{
		{"enqueue_retries_total", "injected enqueue faults resolved by retry", s.met.enqueueRetries},
		{"dispatch_retries_total", "injected dispatch faults resolved by retry", s.met.dispatchRetries},
		{"respond_retries_total", "injected respond faults resolved by retry", s.met.respondRetries},
		{"persist_degraded_total", "snapshot persists degraded by injected faults", s.met.persistDegraded},
		{"persist_failures_total", "snapshot persists that failed on real I/O", s.met.persistFailures},
		{"journal_failures_total", "journal appends that failed (durability degraded)", s.met.journalFailures},
		{"recovery_rejects_total", "snapshot files rejected during recovery", s.met.recoveryRejects},
		{"worker_panics_total", "worker panics contained (image quarantined)", s.met.panics},
		{"async_submissions_total", "jobs submitted through the async API", s.met.asyncSubmissions},
	}
	for _, c := range internals {
		fmt.Fprintf(&sb, "# HELP fpvmd_%s %s\n# TYPE fpvmd_%s counter\nfpvmd_%s %d\n",
			c.name, c.help, c.name, c.name, c.v)
	}
	breakdown := s.met.breakdown
	s.met.mu.Unlock()

	s.mu.Lock()
	queued, inflight, state := s.queued, s.inflight, s.state
	affinity := s.affinityHits
	s.mu.Unlock()
	fmt.Fprintf(&sb, "# HELP fpvmd_queued_jobs jobs waiting in tenant queues\n# TYPE fpvmd_queued_jobs gauge\nfpvmd_queued_jobs %d\n", queued)
	fmt.Fprintf(&sb, "# HELP fpvmd_inflight_jobs jobs currently executing\n# TYPE fpvmd_inflight_jobs gauge\nfpvmd_inflight_jobs %d\n", inflight)
	fmt.Fprintf(&sb, "# HELP fpvmd_state degradation ladder position (0=full 1=shedding 2=draining)\n# TYPE fpvmd_state gauge\nfpvmd_state %d\n", int(state))
	fmt.Fprintf(&sb, "# HELP fpvmd_affinity_dispatch_total dispatches where the worker's previous job ran the same image\n# TYPE fpvmd_affinity_dispatch_total counter\nfpvmd_affinity_dispatch_total %d\n", affinity)

	if s.pool != nil {
		ps := s.pool.stats()
		poolCounters := []struct {
			name, help string
			v          uint64
		}{
			{"pool_hits_total", "VM slices served by a warm pooled shell", ps.Hits},
			{"pool_misses_total", "VM slices that constructed cold", ps.Misses},
			{"pool_refills_total", "warm shells built by the pool", ps.Refills},
			{"pool_invalidations_total", "warm shells dropped by quarantine invalidation", ps.Invalidations},
			{"pool_discards_total", "warm shells discarded as stale at checkout", ps.Discards},
			{"pool_build_failures_total", "warm shell constructions that failed", ps.BuildFailures},
		}
		for _, c := range poolCounters {
			fmt.Fprintf(&sb, "# HELP fpvmd_%s %s\n# TYPE fpvmd_%s counter\nfpvmd_%s %d\n",
				c.name, c.help, c.name, c.name, c.v)
		}
		fmt.Fprintf(&sb, "# HELP fpvmd_pool_shells warm VM shells currently parked\n# TYPE fpvmd_pool_shells gauge\nfpvmd_pool_shells %d\n", ps.Shells)
	}

	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	return telemetry.WritePrometheus(w, "fpvmd_vm", nil, &breakdown)
}
