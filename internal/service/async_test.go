package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpvm"
)

// A prewarmed pool must serve checkouts warm — and a pooled shell must
// not change the job's result: same stdout and final-state digest as a
// cold (pool-disabled) run.
func TestWarmPoolServesHitsBitIdentically(t *testing.T) {
	cold := startService(t, Config{Workers: 2, NoPool: true})
	ec := registerLorenz(t, cold)
	ref := cold.Submit(JobRequest{Tenant: "t", ImageID: ec.ID, Alt: fpvm.AltBoxed})
	if ref.Status != StatusCompleted {
		t.Fatalf("cold reference: %s (%s)", ref.Status, ref.Detail)
	}
	if cold.PoolStats() != (PoolStats{}) {
		t.Fatal("NoPool service reports pool activity")
	}

	s := startService(t, Config{Workers: 2, PoolSize: 4})
	e := registerLorenz(t, s)
	built := s.WarmPools(fpvm.AltBoxed, 0)
	if built == 0 {
		t.Fatal("WarmPools built nothing")
	}
	ps := s.PoolStats()
	if ps.Shells != built || ps.Refills != uint64(built) {
		t.Fatalf("prewarm accounting: built %d, stats %+v", built, ps)
	}

	o := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusCompleted {
		t.Fatalf("warm submission: %s (%s)", o.Status, o.Detail)
	}
	if o.Stdout != ref.Stdout || o.Digest != ref.Digest || o.ExitCode != ref.ExitCode {
		t.Fatal("pooled run diverged from the cold run")
	}
	if got := s.PoolStats(); got.Hits == 0 {
		t.Fatalf("prewarmed pool served no hits: %+v", got)
	}
}

// Quarantine must invalidate every warm shell of the image, through
// whichever path it arrives (operator call here; worker panics funnel
// through the same registry hook). A distrusted image's pre-built state
// is never served.
func TestQuarantineInvalidatesWarmPool(t *testing.T) {
	s := startService(t, Config{Workers: 1, PoolSize: 3})
	e := registerLorenz(t, s)
	built := s.WarmPools(fpvm.AltBoxed, 0)
	if built == 0 {
		t.Fatal("WarmPools built nothing")
	}

	s.Registry().Quarantine(e.ID, "operator distrust")

	ps := s.PoolStats()
	if ps.Invalidations != uint64(built) {
		t.Fatalf("quarantine invalidated %d shells, want %d", ps.Invalidations, built)
	}
	if ps.Shells != 0 {
		t.Fatalf("%d warm shells survive quarantine", ps.Shells)
	}
	if o := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed}); o.Reason != ReasonQuarantined {
		t.Fatalf("post-quarantine submission: %s/%s, want quarantined refusal", o.Status, o.Reason)
	}
	// And prewarming skips the quarantined image outright.
	if n := s.WarmPools(fpvm.AltBoxed, 0); n != 0 {
		t.Fatalf("WarmPools built %d shells for a quarantined image", n)
	}
}

// The async lifecycle in-process: SubmitAsync answers with the pending
// phase before the job runs, Outcome tracks the phases, and the event
// log records the full pending → running → terminal sequence with dense
// sequence numbers and exactly one terminal event.
func TestAsyncSubmitLifecycleAndEvents(t *testing.T) {
	s := startService(t, Config{Workers: 1})
	e := registerLorenz(t, s)

	block := make(chan struct{})
	s.testHookDispatch = func(*job) { <-block }

	o := s.SubmitAsync(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusPending {
		t.Fatalf("async submission answered %s (%s), want pending", o.Status, o.Detail)
	}
	if evs, _, ok := s.eventsAfter(o.ID, 0); !ok || len(evs) != 1 || evs[0].Status != StatusPending {
		t.Fatalf("pre-dispatch event log: %+v (ok=%v), want one pending event", evs, ok)
	}

	close(block)
	waitFor(t, func() bool {
		cur, ok := s.Outcome(o.ID)
		return ok && terminalStatus(cur.Status)
	})
	final, _ := s.Outcome(o.ID)
	if final.Status != StatusCompleted {
		t.Fatalf("async job ended %s (%s), want completed", final.Status, final.Detail)
	}

	evs, _, ok := s.eventsAfter(o.ID, 0)
	if !ok {
		t.Fatal("event track evicted for a live outcome")
	}
	want := []Status{StatusPending, StatusRunning, StatusCompleted}
	if len(evs) != len(want) {
		t.Fatalf("event log %+v, want statuses %v", evs, want)
	}
	for i, ev := range evs {
		if ev.Status != want[i] || ev.Seq != i+1 {
			t.Fatalf("event %d = %+v, want seq %d status %s", i, ev, i+1, want[i])
		}
		if ev.Terminal != (i == len(want)-1) {
			t.Fatalf("event %d terminal=%v", i, ev.Terminal)
		}
	}
	// The cursor works: nothing before or at `since` is replayed.
	if tail, _, _ := s.eventsAfter(o.ID, 2); len(tail) != 1 || tail[0].Status != StatusCompleted {
		t.Fatalf("eventsAfter(2) = %+v, want just the terminal event", tail)
	}
}

// The async HTTP surface end to end: ?async=1 answers 202 with a pending
// outcome, the SSE stream replays every transition and closes at the
// terminal event, and the long-poll fallback serves the same events as
// JSON with a working since-cursor.
func TestAsyncHTTPEventsSSEAndLongPoll(t *testing.T) {
	s := startService(t, Config{Workers: 1})
	e := registerLorenz(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	block := make(chan struct{})
	s.testHookDispatch = func(*job) { <-block }

	resp, err := http.Post(srv.URL+"/v1/jobs?async=1", "application/json",
		strings.NewReader(`{"tenant":"web","image":"`+e.ID+`","alt":"boxed"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub JobOutcome
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Status != StatusPending || sub.ID == "" {
		t.Fatalf("async submit: HTTP %d, outcome %+v; want 202 pending with an ID", resp.StatusCode, sub)
	}

	// SSE stream opened while the job is held pending; it must replay the
	// backlog, then follow the live transitions and close at the terminal
	// frame.
	sseBody := make(chan string, 1)
	go func() {
		r, gerr := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/events")
		if gerr != nil {
			sseBody <- "GET failed: " + gerr.Error()
			return
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		sseBody <- string(b)
	}()

	close(block)
	var stream string
	select {
	case stream = <-sseBody:
	case <-time.After(60 * time.Second):
		t.Fatal("SSE stream never closed after the terminal event")
	}
	for _, want := range []string{"id: 1", "event: pending", "event: running", "event: completed", `"terminal":true`} {
		if !strings.Contains(stream, want) {
			t.Fatalf("SSE stream missing %q:\n%s", want, stream)
		}
	}

	// Long-poll fallback: the settled job's events come back at once.
	type pollReply struct {
		Job    string     `json:"job"`
		Events []JobEvent `json:"events"`
	}
	poll := func(query string) pollReply {
		t.Helper()
		r, gerr := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/events?poll=1&" + query)
		if gerr != nil {
			t.Fatal(gerr)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("long-poll: HTTP %d", r.StatusCode)
		}
		var pr pollReply
		json.NewDecoder(r.Body).Decode(&pr)
		return pr
	}
	all := poll("since=0&wait_ms=5000")
	if len(all.Events) != 3 || all.Events[2].Status != StatusCompleted || !all.Events[2].Terminal {
		t.Fatalf("long-poll replay: %+v, want pending/running/completed", all.Events)
	}
	if tail := poll("since=2&wait_ms=5000"); len(tail.Events) != 1 || tail.Events[0].Seq != 3 {
		t.Fatalf("long-poll since-cursor: %+v, want only seq 3", tail.Events)
	}

	// The stored outcome is terminal and 200 now.
	r, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("settled async job answers HTTP %d, want 200", r.StatusCode)
	}
	// Unknown job's event stream is a 404, not a hang.
	r, err = http.Get(srv.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: HTTP %d, want 404", r.StatusCode)
	}
}

// Async jobs must ride the drain/recovery machinery exactly like
// blocking ones: suspended by Drain (journaled, snapshotted when
// started) and served by the next instance under their original IDs.
func TestAsyncJobsAcrossDrainRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e := registerLorenz(t, s)

	block := make(chan struct{})
	s.testHookDispatch = func(*job) { <-block }

	const jobs = 3
	var ids []string
	for i := 0; i < jobs; i++ {
		o := s.SubmitAsync(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
		if terminalStatus(o.Status) {
			t.Fatalf("async submission %d settled immediately: %s (%s)", i, o.Status, o.Detail)
		}
		ids = append(ids, o.ID)
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inflight == 1 && s.queued == jobs-1
	})
	drained := make(chan int, 1)
	go func() { drained <- s.Drain() }()
	waitFor(t, func() bool { return s.State() == StateDraining })
	close(block)
	if n := <-drained; n != jobs {
		t.Fatalf("drain suspended %d async jobs, want %d", n, jobs)
	}
	for _, id := range ids {
		if o, ok := s.Outcome(id); !ok || o.Status != StatusSuspended {
			t.Fatalf("async job %s after drain: %+v (ok=%v), want suspended", id, o, ok)
		}
	}

	s2 := New(Config{Workers: 2, SnapshotDir: dir})
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if recovered != jobs {
		t.Fatalf("recovered %d jobs, want %d", recovered, jobs)
	}
	for _, id := range ids {
		o, ok := s2.Outcome(id)
		if !ok {
			t.Fatalf("async job %s lost across restart", id)
		}
		if o.Status != StatusRecovered || !o.Recovered {
			t.Fatalf("async job %s recovered as %s (%s)", id, o.Status, o.Detail)
		}
		// The recovered outcome is streamable on the new instance too.
		if evs, _, ok := s2.eventsAfter(id, 0); !ok || len(evs) == 0 || !evs[len(evs)-1].Terminal {
			t.Fatalf("recovered job %s has no terminal event on the new instance: %+v", id, evs)
		}
	}
}
