package service

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fpvm"
	"fpvm/internal/faultinject"
	"fpvm/internal/oracle"
)

// The chaos soak drives the full service stack — admission, queues,
// dispatch, execution, persistence, response — with mixed tenants,
// injected service-layer faults, per-job VM faults and impossible
// deadlines, and holds it to the fault-containment contract: every
// submission ends in a deliberate status, nothing panics the daemon,
// fault ledgers reconcile, and undamaged jobs still produce
// bit-identical results.
func TestServiceChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}

	inj := faultinject.New(0xC0FFEE)
	inj.ArmAllService(faultinject.Rule{Every: 7})

	dir := t.TempDir()
	s := New(Config{
		Workers:        4,
		PreemptQuantum: 20_000,
		SnapshotDir:    dir,
		Inject:         inj,
		Seed:           0xC0FFEE,
		Tenants: map[string]TenantConfig{
			"alpha": {QueueDepth: 8, Priority: 1},
			"beta":  {QueueDepth: 4, Priority: 0},
		},
	})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}

	type variant struct {
		workload string
		alt      fpvm.AltKind
	}
	variants := []variant{
		{"lorenz_attractor", fpvm.AltBoxed},
		{"double_pendulum", fpvm.AltPosit},
		{"three_body_simulation", fpvm.AltInterval},
	}

	// Uninterrupted references, one per variant: stdout plus the
	// oracle's final-state digest. The digest is cycle- and
	// schedule-independent, so it holds across the service's shared
	// caches and preemption slicing.
	type ref struct {
		stdout string
		digest string
		exit   int
	}
	refs := make(map[variant]ref)
	images := make(map[variant]string)
	for _, v := range variants {
		e, err := s.Registry().Register(v.workload)
		if err != nil {
			t.Fatal(err)
		}
		images[v] = e.ID
		res, err := fpvm.Run(e.Image, fpvm.Config{Alt: v.alt, Seq: true, Short: true})
		if err != nil {
			t.Fatal(err)
		}
		rec := oracle.Digest(res.Final)
		refs[v] = ref{stdout: res.Stdout, digest: fmt.Sprintf("%016x-%016x", rec.RIP, rec.Sum), exit: res.ExitCode}
	}

	const jobs = 72
	outs := make([]*JobOutcome, jobs)
	kinds := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		v := variants[i%len(variants)]
		req := JobRequest{ImageID: images[v], Alt: v.alt}
		switch i % 4 {
		case 0:
			req.Tenant = "alpha"
			kinds[i] = "clean"
		case 1:
			// Same clean job through the async API: submit returns at the
			// pending phase and the outcome is polled to its terminal
			// status, racing the event/outcome machinery against the
			// blocking path under the same fault storm.
			req.Tenant = "alpha"
			kinds[i] = "async"
		case 2:
			// VM-level fault storm inside the guest's pipeline: the
			// runtime ladder absorbs it (retry/degrade), the service
			// reports completed or degraded.
			req.Tenant = "alpha"
			req.InjectSpec = "alt.op:every=40"
			req.InjectSeed = uint64(i)
			kinds[i] = "vmfault"
		case 3:
			// Impossible deadline: must cancel at a trap boundary.
			req.Tenant = "beta"
			req.DeadlineCycles = 4_000
			kinds[i] = "deadline"
		}
		wg.Add(1)
		go func(i int, req JobRequest) {
			defer wg.Done()
			if kinds[i] == "async" {
				o := s.SubmitAsync(req)
				deadline := time.Now().Add(2 * time.Minute)
				for !terminalStatus(o.Status) && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
					if cur, ok := s.Outcome(o.ID); ok {
						o = cur
					}
				}
				outs[i] = o
				return
			}
			outs[i] = s.Submit(req)
		}(i, req)
	}
	wg.Wait()

	counts := map[Status]int{}
	for i, o := range outs {
		if o == nil {
			t.Fatalf("job %d got no outcome", i)
		}
		counts[o.Status]++
		switch o.Status {
		case StatusCompleted, StatusDegraded, StatusDeadline, StatusShed:
			// every one of these is a deliberate disposition
		default:
			t.Fatalf("job %d (%s) ended %s (%s): not a deliberate soak status",
				i, kinds[i], o.Status, o.Detail)
		}
		v := variants[i%len(variants)]
		if (kinds[i] == "clean" || kinds[i] == "async") && o.Status == StatusCompleted {
			if o.Stdout != refs[v].stdout || o.Digest != refs[v].digest || o.ExitCode != refs[v].exit {
				t.Fatalf("job %d completed with diverged output/digest", i)
			}
		}
		if kinds[i] == "deadline" && o.Status == StatusDeadline && o.Cycles < 4_000 {
			t.Fatalf("job %d cancelled before its deadline: %d cycles", i, o.Cycles)
		}
	}
	if counts[StatusCompleted] == 0 {
		t.Fatal("soak completed nothing")
	}
	if counts[StatusDeadline] == 0 {
		t.Fatal("no deadline job was cancelled — the deadline path went unexercised")
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != jobs {
		t.Fatalf("outcome conservation broken: %d outcomes for %d jobs", total, jobs)
	}

	s.Drain()

	// The service-layer fault ledger must reconcile: every fired fault
	// was resolved exactly once, by a deliberate rung.
	if !inj.Reconciled() || !inj.Consistent() {
		t.Fatalf("service fault ledger does not reconcile:\n%s", inj.Report())
	}
	fired := uint64(0)
	for _, site := range faultinject.ServiceSites() {
		fired += inj.Stats(site).Fired
	}
	if fired == 0 {
		t.Fatal("no service-site fault fired — the soak injected nothing")
	}
}

// Kill-recovery harness, the service's version of the fleet's crash
// test: a child daemon journals and snapshots its in-flight jobs, the
// parent SIGKILLs it mid-run, recovers in-process from the same
// snapshot directory, and every interrupted job must complete with the
// recovered status and an output bit-identical (stdout + oracle
// final-state digest) to an uninterrupted reference.
const (
	svcCrashHelperEnv = "FPVM_SVC_CRASH_HELPER"
	svcCrashDirEnv    = "FPVM_SVC_CRASH_DIR"
)

type svcCrashVariant struct {
	workload string
	alt      fpvm.AltKind
}

func svcCrashVariants() []svcCrashVariant {
	return []svcCrashVariant{
		{"lorenz_attractor", fpvm.AltBoxed},
		{"double_pendulum", fpvm.AltPosit},
		{"three_body_simulation", fpvm.AltRational},
		{"fbench", fpvm.AltInterval},
	}
}

// TestServiceCrashHelper is the child half: submit one job per variant
// with a tiny quantum (many slices, many persisted snapshots), then
// hang until the parent kills the process.
func TestServiceCrashHelper(t *testing.T) {
	if os.Getenv(svcCrashHelperEnv) != "1" {
		t.Skip("harness child; run via TestServiceKillRecover")
	}
	s := New(Config{
		Workers:        2,
		PreemptQuantum: 500,
		SnapshotDir:    os.Getenv(svcCrashDirEnv),
	})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, v := range svcCrashVariants() {
		e, err := s.Registry().Register(v.workload)
		if err != nil {
			t.Fatal(err)
		}
		go s.Submit(JobRequest{Tenant: "crash", ImageID: e.ID, Alt: v.alt})
	}
	time.Sleep(5 * time.Minute) // SIGKILL arrives long before this
}

func TestServiceKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "TestServiceCrashHelper")
	cmd.Env = append(os.Environ(), svcCrashHelperEnv+"=1", svcCrashDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Kill once at least two jobs have persisted a preemption snapshot —
	// they are then provably mid-flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		snaps, _ := filepath.Glob(filepath.Join(dir, "job-*.snap"))
		if len(snaps) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never persisted two in-flight snapshots")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	pending, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		t.Fatal("child was killed with nothing pending in the journal")
	}

	// Recover in-process.
	s := New(Config{Workers: 2, SnapshotDir: dir})
	recovered, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	if recovered == 0 {
		t.Fatal("restart recovered nothing")
	}

	// References: uninterrupted private-cache runs of each variant.
	type ref struct {
		stdout string
		digest string
		exit   int
	}
	refs := make(map[string]ref) // by workload
	for _, v := range svcCrashVariants() {
		e, rerr := s.Registry().Register(v.workload)
		if rerr != nil {
			t.Fatal(rerr)
		}
		res, rerr := fpvm.Run(e.Image, fpvm.Config{Alt: v.alt, Seq: true, Short: true})
		if rerr != nil {
			t.Fatal(rerr)
		}
		rec := oracle.Digest(res.Final)
		refs[v.workload] = ref{stdout: res.Stdout, digest: fmt.Sprintf("%016x-%016x", rec.RIP, rec.Sum), exit: res.ExitCode}
	}

	resumedSomething := false
	for _, rec := range pending {
		o, ok := s.Outcome(rec.ID)
		if !ok {
			t.Fatalf("pending job %s has no recovered outcome", rec.ID)
		}
		if o.Status != StatusRecovered {
			t.Fatalf("pending job %s ended %s (%s), want recovered", rec.ID, o.Status, o.Detail)
		}
		want := refs[rec.Workload]
		if o.Stdout != want.stdout || o.Digest != want.digest || o.ExitCode != want.exit {
			t.Fatalf("recovered job %s (%s) is not bit-identical to the uninterrupted reference:\nstdout match %v, digest %s vs %s",
				rec.ID, rec.Workload, o.Stdout == want.stdout, o.Digest, want.digest)
		}
		if strings.Contains(o.Detail, "resumed from snapshot") {
			resumedSomething = true
		}
	}
	if !resumedSomething {
		t.Fatal("no recovered job resumed from a snapshot — the resume path went unexercised")
	}

	// The journal is closed out: a second restart recovers nothing.
	s2 := New(Config{Workers: 1, SnapshotDir: dir})
	again, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if again != 0 {
		t.Fatalf("second restart re-recovered %d jobs; journal not closed out", again)
	}
}
