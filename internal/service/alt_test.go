package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fpvm"
	"fpvm/internal/oracle"
)

// altJobSystems are the alternative arithmetic systems jobs may request
// beyond boxed/mpfr — promoted into the conformance matrix, so the
// service must run, pool, and recover them like any first-class system.
var altJobSystems = []fpvm.AltKind{
	fpvm.AltPosit, fpvm.AltPosit32, fpvm.AltInterval, fpvm.AltRational,
}

// digestOf renders a result's final-state digest exactly like
// outcomeFrom so tests can compare service outcomes against direct runs.
func digestOf(t *testing.T, res *fpvm.Result) string {
	t.Helper()
	if res.Final == nil {
		t.Fatal("reference run carries no final state")
	}
	rec := oracle.Digest(res.Final)
	return fmt.Sprintf("%016x-%016x", rec.RIP, rec.Sum)
}

// TestJobAltSystems: a job may request any promoted alt system via the
// `alt` request param, and the service's run is indistinguishable from a
// direct fpvm.Run under the same config — same stdout, same final-state
// digest. A bogus system fails cleanly, never crashes a worker.
func TestJobAltSystems(t *testing.T) {
	s := startService(t, Config{Workers: 2})
	e := registerLorenz(t, s)

	for _, a := range altJobSystems {
		a := a
		t.Run(string(a), func(t *testing.T) {
			ref, err := fpvm.Run(e.Image, jobVMConfig(e, a, 0))
			if err != nil {
				t.Fatal(err)
			}
			o := s.Submit(JobRequest{Tenant: "alt", ImageID: e.ID, Alt: a})
			if o.Status != StatusCompleted {
				t.Fatalf("status = %s (%s), want completed", o.Status, o.Detail)
			}
			if o.Stdout != ref.Stdout {
				t.Errorf("stdout diverged from direct %s run:\n got %q\nwant %q", a, o.Stdout, ref.Stdout)
			}
			if want := digestOf(t, ref); o.Digest != want {
				t.Errorf("digest = %s, want %s (direct %s run)", o.Digest, want, a)
			}
		})
	}

	o := s.Submit(JobRequest{Tenant: "alt", ImageID: e.ID, Alt: "no-such-system"})
	if o.Status != StatusFailed || !strings.Contains(o.Detail, "no-such-system") {
		t.Fatalf("bogus alt system: %s (%s), want clean failure naming it", o.Status, o.Detail)
	}
}

// TestPoolKeySeparatesAltSystems pins the warm pool's fungibility rule:
// shells are keyed by (image, alt, precision), so a checkout for one
// system must never be served a shell built for another — and distinct
// mpfr precisions are distinct keys too.
func TestPoolKeySeparatesAltSystems(t *testing.T) {
	r := NewRegistry(0)
	e, err := r.Register("lorenz_attractor")
	if err != nil {
		t.Fatal(err)
	}
	p := newVMPool(2)
	defer p.close()

	if n := p.prewarm(e, fpvm.AltBoxed, 0); n != 2 {
		t.Fatalf("prewarm built %d boxed shells, want 2", n)
	}
	// A posit checkout must miss — the parked boxed shells are not
	// fungible across systems.
	if vm := p.checkout(e, fpvm.AltPosit, 0); vm != nil {
		t.Fatal("posit checkout was served a shell while only boxed shells were parked")
	}
	// The boxed free-list is untouched by the posit miss.
	if vm := p.checkout(e, fpvm.AltBoxed, 0); vm == nil {
		t.Fatal("boxed checkout missed though boxed shells were parked")
	}
	// Same system, different precision: also a distinct key.
	if n := p.prewarm(e, fpvm.AltMPFR, 100); n == 0 {
		t.Fatal("prewarm built no mpfr@100 shells")
	}
	if vm := p.checkout(e, fpvm.AltMPFR, 200); vm != nil {
		t.Fatal("mpfr@200 checkout was served an mpfr@100 shell")
	}

	st := p.stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("pool counters hits=%d misses=%d, want 1/2", st.Hits, st.Misses)
	}
}

// TestWarmPoolServesAltJobsBitIdentically: an alt-system job served from
// a warm shell must be indistinguishable from one constructed cold.
func TestWarmPoolServesAltJobsBitIdentically(t *testing.T) {
	s := startService(t, Config{Workers: 1, PoolSize: 2})
	e := registerLorenz(t, s)

	req := JobRequest{Tenant: "p", ImageID: e.ID, Alt: fpvm.AltInterval}
	cold := s.Submit(req) // first interval job: pool miss, kicks a refill
	if cold.Status != StatusCompleted {
		t.Fatalf("cold run: %s (%s)", cold.Status, cold.Detail)
	}
	waitFor(t, func() bool { return s.PoolStats().Shells > 0 })

	warm := s.Submit(req)
	if warm.Status != StatusCompleted {
		t.Fatalf("warm run: %s (%s)", warm.Status, warm.Detail)
	}
	if st := s.PoolStats(); st.Hits == 0 {
		t.Fatalf("second interval job never hit the warm pool: %+v", st)
	}
	if warm.Stdout != cold.Stdout || warm.Digest != cold.Digest {
		t.Fatalf("warm shell diverged from cold construction:\n got %q/%s\nwant %q/%s",
			warm.Stdout, warm.Digest, cold.Stdout, cold.Digest)
	}
}

// TestDrainRestartAltBitIdentity: an alt-system job suspended mid-flight
// by a drain must recover on the next boot by resuming its snapshot —
// through the alt system's value codec — and finish with exactly the
// final-state digest and stdout of an uninterrupted run.
func TestDrainRestartAltBitIdentity(t *testing.T) {
	for _, a := range []fpvm.AltKind{fpvm.AltPosit, fpvm.AltInterval} {
		a := a
		t.Run(string(a), func(t *testing.T) {
			dir := t.TempDir()
			s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir})
			if _, err := s.Start(); err != nil {
				t.Fatal(err)
			}
			e := registerLorenz(t, s)

			ref, err := fpvm.Run(e.Image, jobVMConfig(e, a, 0))
			if err != nil {
				t.Fatal(err)
			}

			// Deterministic mid-flight suspension: the dispatch hook parks
			// the worker until the drain flag flips, so the job's first
			// preemption boundary lands inside the drain window and the
			// worker suspends it with a snapshot.
			started := make(chan struct{})
			var once sync.Once
			s.testHookDispatch = func(*job) {
				once.Do(func() { close(started) })
				waitFor(t, s.isDraining)
			}

			out := make(chan *JobOutcome, 1)
			go func() {
				out <- s.Submit(JobRequest{Tenant: "d", ImageID: e.ID, Alt: a})
			}()
			<-started
			if n := s.Drain(); n != 1 {
				t.Fatalf("drain suspended %d jobs, want 1", n)
			}
			o := <-out
			if o.Status != StatusSuspended {
				t.Fatalf("drained job ended %s (%s), want suspended", o.Status, o.Detail)
			}
			snap := filepath.Join(dir, "job-"+o.ID+".snap")
			if _, err := os.Stat(snap); err != nil {
				t.Fatalf("suspended %s job left no snapshot: %v", a, err)
			}

			s2 := New(Config{Workers: 1, SnapshotDir: dir})
			recovered, err := s2.Start()
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Drain()
			if recovered != 1 {
				t.Fatalf("recovered %d jobs, want 1", recovered)
			}
			got, ok := s2.Outcome(o.ID)
			if !ok {
				t.Fatalf("recovered job %s has no outcome", o.ID)
			}
			if got.Status != StatusRecovered {
				t.Fatalf("recovered job ended %s (%s)", got.Status, got.Detail)
			}
			if !strings.Contains(got.Detail, "resumed from snapshot") {
				t.Fatalf("recovery ran fresh instead of resuming the snapshot: %s", got.Detail)
			}
			if got.Stdout != ref.Stdout {
				t.Errorf("recovered stdout diverged:\n got %q\nwant %q", got.Stdout, ref.Stdout)
			}
			if want := digestOf(t, ref); got.Digest != want {
				t.Errorf("recovered digest %s != uninterrupted run's %s", got.Digest, want)
			}
		})
	}
}
