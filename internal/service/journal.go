package service

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
)

// The journal is an append-only jsonl file in the snapshot directory.
// One "job" record marks a submission irrevocably accepted; one "done"
// record marks its outcome delivered. A daemon that dies between the
// two leaves a pending record, and the next instance replays it —
// resuming from the job's preemption snapshot when one survived,
// running it fresh otherwise. Each instance also appends one "boot"
// record at startup; the count of boot records is the boot generation
// embedded in job IDs, so a restarted daemon can never mint an ID that
// collides with anything a previous instance journaled or snapshotted —
// including submissions that were refused and never journaled.
const (
	journalName = "journal.jsonl"
	opJob       = "job"
	opDone      = "done"
	opBoot      = "boot"
)

type journalRecord struct {
	Op        string `json:"op"`
	ID        string `json:"id"`
	Tenant    string `json:"tenant,omitempty"`
	Workload  string `json:"workload,omitempty"`
	ImageID   string `json:"image,omitempty"`
	Alt       string `json:"alt,omitempty"`
	Precision uint   `json:"precision,omitempty"`
	Deadline  uint64 `json:"deadline,omitempty"`
	Status    Status `json:"status,omitempty"`
}

type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append writes one record followed by newline and fsyncs: a record the
// caller acted on must survive the caller's death.
func (jl *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(data); err != nil {
		return err
	}
	return jl.f.Sync()
}

func (jl *journal) Close() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.f.Close()
}

// readJournal parses the journal and returns the pending job records in
// submission order, plus the number of boot records — the restarting
// instance takes boot generation boots+1, namespacing its job IDs away
// from every previous instance's. A torn trailing line — the crash
// interrupted the append — is skipped; its fsync never returned, so no
// caller acted on it.
func readJournal(dir string) (pending []journalRecord, boots uint64, err error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()

	var jobs []journalRecord
	done := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or corrupt line: nobody acted on it
		}
		switch rec.Op {
		case opJob:
			jobs = append(jobs, rec)
		case opDone:
			done[rec.ID] = true
		case opBoot:
			boots++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	for _, rec := range jobs {
		if !done[rec.ID] {
			pending = append(pending, rec)
		}
	}
	return pending, boots, nil
}
