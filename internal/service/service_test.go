package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpvm"
)

// startService builds and starts a Service for tests; the cleanup drains
// it so worker goroutines never leak across tests.
func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain() })
	return s
}

func registerLorenz(t *testing.T, s *Service) *ImageEntry {
	t.Helper()
	e, err := s.Registry().Register("lorenz_attractor")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegistryContentAddressed(t *testing.T) {
	r := NewRegistry(0)
	a, err := r.Register("lorenz_attractor")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register("lorenz_attractor")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("re-registering the same workload must return the same entry")
	}
	c, err := r.Register("double_pendulum")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("distinct programs collided on one content hash")
	}

	r.Quarantine(a.ID, "test says so")
	if q, why := a.Quarantined(); !q || why != "test says so" {
		t.Fatalf("quarantine not recorded: %v %q", q, why)
	}
	again, _ := r.Register("lorenz_attractor")
	if q, _ := again.Quarantined(); !q {
		t.Fatal("re-registration laundered the quarantine away")
	}
}

func TestSubmitCompletesWithDigest(t *testing.T) {
	s := startService(t, Config{Workers: 2})
	e := registerLorenz(t, s)

	ref, err := fpvm.Run(e.Image, fpvm.Config{Alt: fpvm.AltBoxed, Seq: true, Short: true})
	if err != nil {
		t.Fatal(err)
	}

	o := s.Submit(JobRequest{Tenant: "acme", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusCompleted {
		t.Fatalf("status = %s (%s), want completed", o.Status, o.Detail)
	}
	if o.Stdout != ref.Stdout {
		t.Fatal("service run output diverged from direct run")
	}
	if o.Digest == "" {
		t.Fatal("completed job carries no final-state digest")
	}
	if got, _ := s.Outcome(o.ID); got != o {
		t.Fatal("outcome store does not serve the job by ID")
	}
}

func TestQuotaShedsWith429Semantics(t *testing.T) {
	// A virtual clock: quota decisions never sleep in tests.
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	s := startService(t, Config{
		Workers: 1,
		Tenants: map[string]TenantConfig{
			"metered": {RatePerSec: 1, Burst: 2},
		},
		Clock: clock,
	})
	e := registerLorenz(t, s)

	req := JobRequest{Tenant: "metered", ImageID: e.ID, Alt: fpvm.AltBoxed}
	for i := 0; i < 2; i++ {
		if o := s.Submit(req); o.Status != StatusShed && o.Status != StatusCompleted {
			t.Fatalf("burst submission %d: %s (%s)", i, o.Status, o.Detail)
		}
	}
	o := s.Submit(req)
	if o.Status != StatusShed || o.Reason != ReasonQuota {
		t.Fatalf("over-quota submission: %s/%s (%s), want quota shed", o.Status, o.Reason, o.Detail)
	}
	if o.RetryAfter <= 0 {
		t.Fatal("quota shed carries no Retry-After")
	}
	if httpStatus(o) != http.StatusTooManyRequests {
		t.Fatalf("quota shed maps to HTTP %d, want 429", httpStatus(o))
	}

	// Advance the virtual clock: the bucket refills and the tenant is
	// admitted again.
	mu.Lock()
	now = now.Add(3 * time.Second)
	mu.Unlock()
	if o := s.Submit(req); o.Status != StatusCompleted {
		t.Fatalf("post-refill submission: %s (%s), want completed", o.Status, o.Detail)
	}
}

func TestRetryAfterIsJittered(t *testing.T) {
	s := New(Config{Seed: 42})
	seen := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		d := s.retryAfter(time.Second)
		if d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("retry-after %v outside the ±50%% jitter window", d)
		}
		seen[d] = true
	}
	if len(seen) < 8 {
		t.Fatalf("32 retry-afters collapsed onto %d values: not jittered", len(seen))
	}
}

func TestDeadlineExceededReturnsPartial(t *testing.T) {
	s := startService(t, Config{Workers: 1, PreemptQuantum: 5_000})
	e := registerLorenz(t, s)

	// Find the full cost, then set a deadline well under it.
	full := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if full.Status != StatusCompleted {
		t.Fatalf("reference run: %s (%s)", full.Status, full.Detail)
	}
	o := s.Submit(JobRequest{
		Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed,
		DeadlineCycles: full.Cycles / 2,
	})
	if o.Status != StatusDeadline {
		t.Fatalf("status = %s (%s), want deadline-exceeded", o.Status, o.Detail)
	}
	if o.Cycles < full.Cycles/2 || o.Cycles >= full.Cycles {
		t.Fatalf("cancelled at %d cycles; deadline %d, full run %d",
			o.Cycles, full.Cycles/2, full.Cycles)
	}
	if httpStatus(o) != http.StatusGatewayTimeout {
		t.Fatalf("deadline maps to HTTP %d, want 504", httpStatus(o))
	}
}

func TestWorkerPanicIsContainedAndQuarantines(t *testing.T) {
	s := startService(t, Config{Workers: 2})
	e := registerLorenz(t, s)

	s.testHookDispatch = func(j *job) {
		if j.req.Tenant == "evil" {
			panic("guest image ate the worker")
		}
	}

	o := s.Submit(JobRequest{Tenant: "evil", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusFailed || !strings.Contains(o.Detail, "panic") {
		t.Fatalf("panicked job: %s (%s), want contained failure", o.Status, o.Detail)
	}
	if q, _ := e.Quarantined(); !q {
		t.Fatal("panicking image was not quarantined")
	}

	// The daemon is still serving: a different image runs fine...
	p, err := s.Registry().Register("double_pendulum")
	if err != nil {
		t.Fatal(err)
	}
	if o := s.Submit(JobRequest{Tenant: "good", ImageID: p.ID, Alt: fpvm.AltBoxed}); o.Status != StatusCompleted {
		t.Fatalf("post-panic submission: %s (%s), want completed", o.Status, o.Detail)
	}
	// ...and the quarantined image is refused with a distinct answer.
	o = s.Submit(JobRequest{Tenant: "good", ImageID: e.ID, Alt: fpvm.AltBoxed})
	if o.Status != StatusFailed || httpStatus(o) != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submission: %s / HTTP %d, want failed / 422", o.Status, httpStatus(o))
	}
}

func TestSheddingLadderUnderPressure(t *testing.T) {
	// One worker, tiny queues: filling the cheap tenant's queue drives
	// total pressure over the high-water mark, which must shed the
	// priority-0 tenant while the priority-1 tenant is still admitted.
	s := startService(t, Config{
		Workers:        1,
		PreemptQuantum: 2_000,
		Tenants: map[string]TenantConfig{
			"best-effort": {QueueDepth: 4, Priority: 0},
			"premium":     {QueueDepth: 4, Priority: 1},
		},
		ShedHighWater: 0.5,
	})
	e := registerLorenz(t, s)

	// Saturate: async submissions from the best-effort tenant.
	var wg sync.WaitGroup
	results := make(chan *JobOutcome, 16)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- s.Submit(JobRequest{Tenant: "best-effort", ImageID: e.ID, Alt: fpvm.AltBoxed})
		}()
	}

	// Wait until the ladder reports pressure.
	deadline := time.Now().Add(5 * time.Second)
	for s.State() != StateShedding && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	shedObserved := s.State() == StateShedding
	var lowPriShed, premiumOK *JobOutcome
	if shedObserved {
		lowPriShed = s.Submit(JobRequest{Tenant: "best-effort", ImageID: e.ID, Alt: fpvm.AltBoxed})
		premiumOK = s.Submit(JobRequest{Tenant: "premium", ImageID: e.ID, Alt: fpvm.AltBoxed})
	}
	wg.Wait()
	close(results)

	if !shedObserved {
		t.Fatal("queue pressure never tripped the shedding state")
	}
	if lowPriShed.Status != StatusShed {
		t.Fatalf("low-priority tenant under shedding: %s (%s), want shed", lowPriShed.Status, lowPriShed.Detail)
	}
	if premiumOK.Status != StatusCompleted {
		t.Fatalf("premium tenant under shedding: %s (%s), want completed", premiumOK.Status, premiumOK.Detail)
	}
	for o := range results {
		if o.Status != StatusCompleted && o.Status != StatusShed {
			t.Fatalf("saturation job ended %s (%s); statuses must stay deliberate", o.Status, o.Detail)
		}
	}
}

func TestDrainSuspendsAndJournals(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e := registerLorenz(t, s)

	// A stack of slow submissions, then drain mid-flight.
	outs := make(chan *JobOutcome, 6)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs <- s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
		}()
	}
	time.Sleep(10 * time.Millisecond)
	suspended := s.Drain()
	wg.Wait()
	close(outs)

	completed := 0
	for o := range outs {
		switch o.Status {
		case StatusCompleted:
			completed++
		case StatusSuspended, StatusShed:
		default:
			t.Fatalf("drained job ended %s (%s)", o.Status, o.Detail)
		}
	}
	if !s.Ready() {
		// expected: draining is terminal
	} else {
		t.Fatal("service still ready after drain")
	}

	// Suspended jobs are journaled pending: a fresh instance must
	// recover exactly those.
	pending, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != suspended {
		t.Fatalf("journal holds %d pending jobs, Drain reported %d suspended", len(pending), suspended)
	}
	if suspended+completed == 0 {
		t.Fatal("test exercised nothing: no job completed or suspended")
	}

	s2 := New(Config{Workers: 2, SnapshotDir: dir})
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if recovered != suspended {
		t.Fatalf("recovered %d jobs, want %d", recovered, suspended)
	}
	for _, rec := range pending {
		o, ok := s2.Outcome(rec.ID)
		if !ok {
			t.Fatalf("recovered job %s has no stored outcome", rec.ID)
		}
		if o.Status != StatusRecovered {
			t.Fatalf("recovered job %s ended %s (%s)", rec.ID, o.Status, o.Detail)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := startService(t, Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	resp, m := post("/v1/images", `{"workload":"lorenz_attractor"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d (%v)", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatal("register returned no image ID")
	}

	resp, m = post("/v1/jobs", `{"tenant":"web","image":"`+id+`","alt":"boxed"}`)
	if resp.StatusCode != http.StatusOK || m["status"] != "completed" {
		t.Fatalf("submit: HTTP %d status %v", resp.StatusCode, m["status"])
	}
	jobID, _ := m["id"].(string)

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 16*1024)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp, sb.String()
	}

	if resp, _ := get("/v1/jobs/" + jobID); resp.StatusCode != http.StatusOK {
		t.Fatalf("job lookup: HTTP %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job lookup: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: HTTP %d", resp.StatusCode)
	}
	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		`fpvmd_jobs_total{status="completed",tenant="web"} 1`,
		"fpvmd_state 0",
		"fpvmd_vm_traps_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}

	// Unknown image → 404; unknown workload → 404; malformed → 400.
	if resp, _ := post("/v1/jobs", `{"tenant":"web","image":"beef"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown image submit: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("/v1/images", `{"workload":"no-such"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("/v1/jobs", `{bad json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: HTTP %d, want 400", resp.StatusCode)
	}
}

// Job IDs must stay unique across restarts even though refused
// submissions burn sequence numbers without leaving journal records:
// pre-fix, a restarted daemon derived its sequence from the journaled
// job count and re-minted pre-crash IDs, overwriting recovered outcomes.
func TestJobIDsUniqueAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, PreemptQuantum: 2_000, SnapshotDir: dir})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e := registerLorenz(t, s)

	bootOneIDs := make(map[string]bool)
	note := func(o *JobOutcome) { bootOneIDs[o.ID] = true }

	// A journaled, completed job, then a refusal (failed, never
	// journaled) so seq runs ahead of the journal's job-record count.
	note(s.Submit(JobRequest{Tenant: "a", ImageID: e.ID, Alt: fpvm.AltBoxed}))
	if o := s.Submit(JobRequest{Tenant: "a", ImageID: "nope"}); o.Status != StatusFailed {
		t.Fatalf("unknown-image submission: %s, want failed", o.Status)
	} else {
		note(o)
	}

	// Jobs caught by a drain: journaled pending for the next instance.
	outs := make(chan *JobOutcome, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs <- s.Submit(JobRequest{Tenant: "a", ImageID: e.ID, Alt: fpvm.AltBoxed})
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Drain()
	wg.Wait()
	close(outs)
	for o := range outs {
		note(o)
	}

	pending, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		t.Fatal("test exercised nothing: no job left pending for recovery")
	}

	s2 := New(Config{Workers: 1, SnapshotDir: dir})
	if _, err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()

	// New submissions from the same tenant must never reuse a boot-1 ID…
	for range bootOneIDs {
		o := s2.Submit(JobRequest{Tenant: "a", ImageID: e.ID, Alt: fpvm.AltBoxed})
		if bootOneIDs[o.ID] {
			t.Fatalf("restarted daemon re-minted pre-crash job ID %s", o.ID)
		}
		if !strings.HasPrefix(o.ID, "j2_") {
			t.Fatalf("boot-2 job ID %s does not carry boot generation 2", o.ID)
		}
	}
	// …so every recovered outcome stays queryable under its original ID.
	for _, rec := range pending {
		o, ok := s2.Outcome(rec.ID)
		if !ok {
			t.Fatalf("recovered job %s lost its outcome", rec.ID)
		}
		if !o.Recovered {
			t.Fatalf("outcome for %s was overwritten by a new submission: %s (%s)",
				rec.ID, o.Status, o.Detail)
		}
	}
}

// A third restart must not mis-mark pending work as done off a stale
// done record: with per-boot generations the scenario can't arise, but
// the generation must actually advance each boot.
func TestBootGenerationAdvancesEveryRestart(t *testing.T) {
	dir := t.TempDir()
	for boot := 1; boot <= 3; boot++ {
		s := New(Config{Workers: 1, SnapshotDir: dir})
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		e := registerLorenz(t, s)
		o := s.Submit(JobRequest{Tenant: "t", ImageID: e.ID, Alt: fpvm.AltBoxed})
		if want := fmt.Sprintf("j%d_", boot); !strings.HasPrefix(o.ID, want) {
			t.Fatalf("boot %d minted ID %s, want prefix %s", boot, o.ID, want)
		}
		s.Drain()
	}
}

func TestOutcomeStoreBounded(t *testing.T) {
	s := startService(t, Config{Workers: 1, OutcomeRetention: 4})
	var ids []string
	for i := 0; i < 7; i++ {
		ids = append(ids, s.Submit(JobRequest{Tenant: "t", ImageID: "nope"}).ID)
	}
	for _, id := range ids[:3] {
		if _, ok := s.Outcome(id); ok {
			t.Fatalf("outcome %s survived past the retention bound", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := s.Outcome(id); !ok {
			t.Fatalf("recent outcome %s evicted while older space existed", id)
		}
	}
}

// Pressure must track active tenants only: a client minting fresh
// tenant names (whose queues are empty) must not inflate capacity and
// hold off the Full→Shedding transition under real overload.
func TestPressureTracksActiveTenantsOnly(t *testing.T) {
	s := New(Config{}) // defaults: depth 16, high water 0.75
	for i := 0; i < 64; i++ {
		s.queues[fmt.Sprintf("ghost%02d", i)] = nil
	}
	s.queues["busy"] = make([]*job, 13)
	s.queued = 13
	s.updatePressureLocked()
	if s.state != StateShedding {
		t.Fatalf("one tenant at 13/16 fill with 64 idle tenant entries: state %v, want shedding", s.state)
	}

	// And in a live service, an emptied queue is evicted outright.
	live := startService(t, Config{Workers: 1})
	e := registerLorenz(t, live)
	if o := live.Submit(JobRequest{Tenant: "once", ImageID: e.ID, Alt: fpvm.AltBoxed}); o.Status != StatusCompleted {
		t.Fatalf("submission: %s (%s)", o.Status, o.Detail)
	}
	live.mu.Lock()
	n := len(live.queues)
	live.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d empty tenant queues retained after completion, want 0", n)
	}
}

func TestRefundReturnsQuotaToken(t *testing.T) {
	clock := func() time.Time { return time.Unix(0, 0) }
	a := newAdmission(TenantConfig{}, map[string]TenantConfig{
		"m": {RatePerSec: 0.001, Burst: 1},
	}, clock, 0)

	if ok, _ := a.take("m"); !ok {
		t.Fatal("burst token missing")
	}
	if ok, _ := a.take("m"); ok {
		t.Fatal("empty bucket admitted")
	}
	a.refund("m")
	if ok, _ := a.take("m"); !ok {
		t.Fatal("refunded token not honored")
	}
	// Refunds cap at burst: two refunds into a burst-1 bucket hold one.
	a.refund("m")
	a.refund("m")
	if ok, _ := a.take("m"); !ok {
		t.Fatal("first post-refund take refused")
	}
	if ok, _ := a.take("m"); ok {
		t.Fatal("refund accumulated past burst")
	}
}

// A job admitted on quota but refused at enqueue (queue full) must hand
// its token back — the tenant shouldn't burn budget on work the service
// never accepted.
func TestQueueFullShedRefundsQuota(t *testing.T) {
	clock := func() time.Time { return time.Unix(0, 0) }
	s := startService(t, Config{
		Workers: 1,
		Tenants: map[string]TenantConfig{
			// Priority 1: pressure shedding never applies, so the third
			// submission reaches the queue-capacity check itself.
			"m": {RatePerSec: 0.0001, Burst: 3, QueueDepth: 1, Priority: 1},
		},
		Clock: clock,
	})
	e := registerLorenz(t, s)

	block := make(chan struct{})
	var unblock sync.Once
	release := func() { unblock.Do(func() { close(block) }) }
	defer release()
	s.testHookDispatch = func(*job) { <-block }

	req := JobRequest{Tenant: "m", ImageID: e.ID, Alt: fpvm.AltBoxed}
	done := make(chan *JobOutcome, 2)
	go func() { done <- s.Submit(req) }() // token 1: dispatched, blocked
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.inflight == 1 })
	go func() { done <- s.Submit(req) }() // token 2: queued (depth 1)
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.queued == 1 })

	o := s.Submit(req) // token 3: queue full → shed + refund
	if o.Status != StatusShed || o.Reason != ReasonQueue {
		t.Fatalf("overflow submission: %s/%s (%s), want queue-full shed", o.Status, o.Reason, o.Detail)
	}
	if httpStatus(o) != http.StatusServiceUnavailable {
		t.Fatalf("queue-full shed maps to HTTP %d, want 503", httpStatus(o))
	}

	release()
	<-done
	<-done

	// Burst 3 at a near-zero refill on a frozen clock: only the refund
	// makes a third admission possible.
	if o := s.Submit(req); o.Status != StatusCompleted {
		t.Fatalf("post-refund submission: %s/%s (%s), want completed — refused job burned quota",
			o.Status, o.Reason, o.Detail)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Maps keyed by client-supplied tenant names must stay bounded when a
// client cycles fresh names.
func TestTenantCardinalityBounded(t *testing.T) {
	s := startService(t, Config{
		Workers:           2,
		MaxTrackedTenants: 4,
		DefaultTenant:     TenantConfig{RatePerSec: 1},
	})
	e := registerLorenz(t, s)

	for i := 0; i < 8; i++ {
		// Unknown-image refusals mint metric series without buckets…
		s.Submit(JobRequest{Tenant: fmt.Sprintf("mm%02d", i), ImageID: "nope"})
		// …and admitted jobs mint an admission bucket per tenant.
		s.Submit(JobRequest{Tenant: fmt.Sprintf("mb%02d", i), ImageID: e.ID, Alt: fpvm.AltBoxed})
	}

	s.met.mu.Lock()
	series := len(s.met.byTenant)
	s.met.mu.Unlock()
	if series > 5 { // cap + the "_other" overflow label
		t.Fatalf("metrics track %d tenant series with cap 4", series)
	}
	if s.met.tenantCount("_other", StatusFailed) == 0 {
		t.Fatal("overflow tenants not aggregated under _other")
	}

	s.adm.mu.Lock()
	buckets := len(s.adm.buckets)
	s.adm.mu.Unlock()
	if buckets > 4 {
		t.Fatalf("admission holds %d token buckets with cap 4", buckets)
	}
}

// The HTTP mapping keys off the structured Reason, so rewording Detail
// prose can never silently demote a 429 to a 503 (or vice versa).
func TestHTTPStatusSwitchesOnReason(t *testing.T) {
	cases := []struct {
		o    JobOutcome
		want int
	}{
		{JobOutcome{Status: StatusShed, Reason: ReasonQuota, Detail: "totally reworded copy"}, http.StatusTooManyRequests},
		{JobOutcome{Status: StatusShed, Reason: ReasonQueue}, http.StatusServiceUnavailable},
		{JobOutcome{Status: StatusShed, Reason: ReasonPressure}, http.StatusServiceUnavailable},
		{JobOutcome{Status: StatusShed, Reason: ReasonDraining}, http.StatusServiceUnavailable},
		{JobOutcome{Status: StatusShed, Reason: ReasonFault}, http.StatusServiceUnavailable},
		{JobOutcome{Status: StatusFailed, Reason: ReasonUnknownImage}, http.StatusNotFound},
		{JobOutcome{Status: StatusFailed, Reason: ReasonQuarantined}, http.StatusUnprocessableEntity},
		{JobOutcome{Status: StatusFailed}, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := httpStatus(&c.o); got != c.want {
			t.Fatalf("%s/%s maps to HTTP %d, want %d", c.o.Status, c.o.Reason, got, c.want)
		}
	}
}
