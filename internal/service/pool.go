package service

import (
	"sync"

	"fpvm"
)

// jobVMConfig is the one VM configuration the service executes jobs
// under. The warm pool and the cold path in execute must agree on it
// exactly: a pooled shell that differed semantically from a cold VM
// would make a job's outcome depend on pool luck.
func jobVMConfig(e *ImageEntry, alt fpvm.AltKind, precision uint) fpvm.Config {
	return fpvm.Config{
		Alt:       alt,
		Precision: precision,
		Seq:       true,
		Short:     true,
		Shared:    e.Shared,
	}
}

// poolKey identifies one warm free-list. Shells are only fungible within
// (image, alt system, precision); everything else about the service's VM
// config is fixed daemon-wide (see jobVMConfig).
type poolKey struct {
	image     string
	alt       fpvm.AltKind
	precision uint
}

// warmShell is one pre-built VM plus the registry entry it was built
// against. The entry pointer is the staleness probe: if the registry
// ever resolves the image ID to a different entry, this shell's
// shared-cache binding belongs to a dead entry and checkout discards it.
type warmShell struct {
	vm    *fpvm.VM
	entry *ImageEntry
}

// vmPool parks pre-constructed, pre-bound VM shells (address space,
// machine, kernel, heap, Runtime attached against the image's shared
// cache) on bounded per-image free-lists. Checkout pops a shell off the
// request path and kicks an asynchronous refill, so steady-state jobs
// pay only the step loop per slice; misses fall back to cold
// construction at the call site. Quarantine invalidates an image's
// shells outright — a distrusted image's pre-built state is never
// served.
type vmPool struct {
	target int // free-list size per key

	mu      sync.Mutex
	shells  map[poolKey][]*warmShell
	filling map[poolKey]bool
	closed  bool

	hits          uint64
	misses        uint64
	refills       uint64
	invalidations uint64
	discards      uint64
	buildFailures uint64

	wg sync.WaitGroup // in-flight refill goroutines
}

func newVMPool(target int) *vmPool {
	if target <= 0 {
		target = 4
	}
	return &vmPool{
		target:  target,
		shells:  make(map[poolKey][]*warmShell),
		filling: make(map[poolKey]bool),
	}
}

// checkout pops a warm shell for (entry, alt, precision), or nil on a
// miss (the caller constructs cold). Every checkout — hit or miss —
// triggers an asynchronous refill toward the free-list target.
func (p *vmPool) checkout(entry *ImageEntry, alt fpvm.AltKind, precision uint) *fpvm.VM {
	key := poolKey{image: entry.ID, alt: alt, precision: precision}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	var vm *fpvm.VM
	for vm == nil {
		list := p.shells[key]
		n := len(list)
		if n == 0 {
			break
		}
		sh := list[n-1]
		p.shells[key] = list[:n-1]
		if sh.entry != entry {
			// Built against a superseded registry entry: wrong shared
			// cache, possibly wrong image object. Drop and keep looking.
			p.discards++
			continue
		}
		vm = sh.vm
	}
	if vm != nil {
		p.hits++
	} else {
		p.misses++
	}
	if !p.filling[key] && len(p.shells[key]) < p.target {
		p.filling[key] = true
		p.wg.Add(1)
		go p.refill(key, entry)
	}
	p.mu.Unlock()
	return vm
}

// refill builds shells for key until its free-list reaches the target
// (or the pool closes / the image is quarantined / a build fails).
// Exactly one refill runs per key at a time; construction happens
// outside the lock so checkouts never wait on a build.
func (p *vmPool) refill(key poolKey, entry *ImageEntry) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		if p.closed || len(p.shells[key]) >= p.target {
			p.filling[key] = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		if q, _ := entry.Quarantined(); q {
			p.mu.Lock()
			p.filling[key] = false
			p.mu.Unlock()
			return
		}
		vm, err := fpvm.Prepare(entry.Image, jobVMConfig(entry, key.alt, key.precision))

		p.mu.Lock()
		if err != nil {
			p.buildFailures++
			p.filling[key] = false
			p.mu.Unlock()
			return
		}
		if p.closed {
			p.filling[key] = false
			p.mu.Unlock()
			return
		}
		if q, _ := entry.Quarantined(); q {
			// A quarantine that raced the build wins: never park a shell
			// for a distrusted image.
			p.filling[key] = false
			p.mu.Unlock()
			return
		}
		p.shells[key] = append(p.shells[key], &warmShell{vm: vm, entry: entry})
		p.refills++
		p.mu.Unlock()
	}
}

// prewarm synchronously fills key's free-list to the target and reports
// shells built (startup/bench helper; demand warms pools lazily
// otherwise).
func (p *vmPool) prewarm(entry *ImageEntry, alt fpvm.AltKind, precision uint) int {
	key := poolKey{image: entry.ID, alt: alt, precision: precision}
	built := 0
	for {
		p.mu.Lock()
		if p.closed || len(p.shells[key]) >= p.target {
			p.mu.Unlock()
			return built
		}
		p.mu.Unlock()

		vm, err := fpvm.Prepare(entry.Image, jobVMConfig(entry, alt, precision))
		if err != nil {
			p.mu.Lock()
			p.buildFailures++
			p.mu.Unlock()
			return built
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return built
		}
		p.shells[key] = append(p.shells[key], &warmShell{vm: vm, entry: entry})
		p.refills++
		p.mu.Unlock()
		built++
	}
}

// invalidate drops every shell built for imageID (all alt/precision
// variants). Called when the image is quarantined or superseded.
func (p *vmPool) invalidate(imageID string) {
	p.mu.Lock()
	for key, list := range p.shells {
		if key.image != imageID {
			continue
		}
		p.invalidations += uint64(len(list))
		delete(p.shells, key)
	}
	p.mu.Unlock()
}

// close drops all shells, stops refills, and waits for in-flight builds.
func (p *vmPool) close() {
	p.mu.Lock()
	p.closed = true
	p.shells = make(map[poolKey][]*warmShell)
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats is the warm pool's counter snapshot. Hits/Misses count
// checkouts served warm vs cold; Refills shells built; Invalidations
// shells dropped by quarantine; Discards shells dropped as stale at
// checkout; Shells the currently parked population.
type PoolStats struct {
	Hits          uint64
	Misses        uint64
	Refills       uint64
	Invalidations uint64
	Discards      uint64
	BuildFailures uint64
	Shells        int
}

func (p *vmPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Hits:          p.hits,
		Misses:        p.misses,
		Refills:       p.refills,
		Invalidations: p.invalidations,
		Discards:      p.discards,
		BuildFailures: p.buildFailures,
	}
	for _, list := range p.shells {
		st.Shells += len(list)
	}
	return st
}
