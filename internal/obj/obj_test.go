package obj

import (
	"testing"

	"fpvm/internal/mem"
)

func sampleImage() *Image {
	img := New("sample")
	img.AddSection(Section{Name: ".text", Addr: TextBase, Data: []byte{1, 2, 3, 4}, Perm: mem.PermRX})
	img.AddSection(Section{Name: ".data", Addr: DataBase, Data: make([]byte, 32), Perm: mem.PermRW})
	img.AddSymbol(Symbol{Name: "main", Addr: TextBase, Size: 4, Kind: SymFunc})
	img.AddSymbol(Symbol{Name: "counter", Addr: DataBase, Size: 8, Kind: SymData})
	img.Entry = TextBase
	return img
}

func TestSymbolLookup(t *testing.T) {
	img := sampleImage()
	s, ok := img.Lookup("main")
	if !ok || s.Addr != TextBase || s.Kind != SymFunc {
		t.Errorf("lookup main: %+v %v", s, ok)
	}
	if _, ok := img.Lookup("nope"); ok {
		t.Error("bogus symbol resolved")
	}
}

func TestSymbolFor(t *testing.T) {
	img := sampleImage()
	s, ok := img.SymbolFor(TextBase + 2)
	if !ok || s.Name != "main" {
		t.Errorf("SymbolFor mid-function: %+v %v", s, ok)
	}
	if _, ok := img.SymbolFor(TextBase + 100); ok {
		t.Error("SymbolFor out of extent resolved")
	}
}

func TestRebind(t *testing.T) {
	img := sampleImage()
	if !img.Rebind("main", 0x999) {
		t.Fatal("rebind failed")
	}
	s, _ := img.Lookup("main")
	if s.Addr != 0x999 {
		t.Error("rebind did not move symbol")
	}
	if img.Rebind("ghost", 1) {
		t.Error("rebind of unknown symbol succeeded")
	}
}

func TestLoadAndRelocs(t *testing.T) {
	img := sampleImage()
	img.Relocs = append(img.Relocs, Reloc{SlotAddr: DataBase + 8, Symbol: "printf"})
	as := mem.NewAddressSpace()
	err := img.Load(as, func(name string) (uint64, bool) {
		if name == "printf" {
			return 0x7000_0000_0040, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.ReadUint8(TextBase + 1)
	if err != nil || b != 2 {
		t.Errorf("text byte: %d %v", b, err)
	}
	slot, err := as.ReadUint64(DataBase + 8)
	if err != nil || slot != 0x7000_0000_0040 {
		t.Errorf("GOT slot: %#x %v", slot, err)
	}
	// Text pages end up non-writable.
	if err := as.WriteUint8(TextBase, 0xFF); err == nil {
		t.Error("text writable after load")
	}
}

func TestLoadLocalSymbolFallback(t *testing.T) {
	img := sampleImage()
	img.Relocs = append(img.Relocs, Reloc{SlotAddr: DataBase + 16, Symbol: "main"})
	as := mem.NewAddressSpace()
	if err := img.Load(as, nil); err != nil {
		t.Fatal(err)
	}
	slot, _ := as.ReadUint64(DataBase + 16)
	if slot != TextBase {
		t.Errorf("local reloc: %#x", slot)
	}
}

func TestLoadUnresolved(t *testing.T) {
	img := sampleImage()
	img.Relocs = append(img.Relocs, Reloc{SlotAddr: DataBase, Symbol: "missing"})
	as := mem.NewAddressSpace()
	if err := img.Load(as, nil); err == nil {
		t.Error("unresolved symbol loaded")
	}
}

func TestCloneIndependence(t *testing.T) {
	img := sampleImage()
	img.Relocs = append(img.Relocs, Reloc{SlotAddr: DataBase, Symbol: "x"})
	c := img.Clone()
	c.Section(".text").Data[0] = 0xAA
	c.Rebind("main", 0x1)
	c.Relocs[0].Symbol = "y"
	if img.Section(".text").Data[0] == 0xAA {
		t.Error("clone shares section data")
	}
	if s, _ := img.Lookup("main"); s.Addr == 0x1 {
		t.Error("clone shares symbols")
	}
	if img.Relocs[0].Symbol == "y" {
		t.Error("clone shares relocs")
	}
}

func TestSymbolsSorted(t *testing.T) {
	img := sampleImage()
	syms := img.Symbols()
	for i := 1; i < len(syms); i++ {
		if syms[i-1].Addr > syms[i].Addr {
			t.Error("symbols not sorted")
		}
	}
}

func TestSymKindString(t *testing.T) {
	if SymFunc.String() != "func" || SymData.String() != "data" || SymHost.String() != "host" {
		t.Error("kind strings")
	}
}
