// Package obj defines the executable image format for the simulated
// machine: sections, a symbol table, and a loader. It plays the role ELF
// plays for the real FPVM — in particular the symbol table is mutable so
// that "magic wrapping" (§5.3) can re-point symbols like printf at
// generated wrapper functions, the way the paper uses Lief.
package obj

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"fpvm/internal/mem"
)

// Conventional layout addresses for images produced by the assembler and
// compiler.
const (
	TextBase   = 0x0040_0000
	RODataBase = 0x0060_0000
	DataBase   = 0x0080_0000
	HeapBase   = 0x0100_0000 // guest malloc arena
	HeapSize   = 0x0004_0000 // 256 KiB resident
	StackTop   = 0x7FFF_F000
	StackSize  = 0x0002_0000 // 128 KiB resident

	// MagicPageAddr is the well-known address where FPVM maps its "magic
	// page" (§5.2): a cookie plus the address of the demotion handler.
	MagicPageAddr = 0x7FF0_0000

	// HostBase is the start of the reserved address range backing host
	// bridge functions (the simulation's analog of shared library code
	// that is not part of the analyzed image: libc, libm, FPVM runtime
	// entry points). Calls into this range are executed by Go callbacks.
	HostBase = 0x7000_0000_0000
)

// SymKind classifies symbols.
type SymKind uint8

const (
	SymFunc SymKind = iota
	SymData
	SymHost // host bridge function (libc/libm/FPVM runtime)
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymData:
		return "data"
	case SymHost:
		return "host"
	}
	return "sym?"
}

// Symbol is a named address.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymKind
}

// Section is a contiguous mapped byte range.
type Section struct {
	Name string
	Addr uint64
	Data []byte
	Perm mem.Perm
}

// Reloc is a GOT-style relocation: at load time the 8-byte slot at
// SlotAddr receives the resolved address of Symbol. Calls to imported
// functions (libc, libm, FPVM entry points) go through these slots, which
// is what makes LD_PRELOAD-style interposition and magic wrapping (§5.3)
// possible: whoever resolves the symbol first wins, and rewriting the
// symbol name re-points every call site at once.
type Reloc struct {
	SlotAddr uint64
	Symbol   string
}

// Image is a loadable program.
type Image struct {
	Name     string
	Entry    uint64
	Sections []Section
	Relocs   []Reloc
	syms     []Symbol
	byName   map[string]int
}

// New returns an empty image.
func New(name string) *Image {
	return &Image{Name: name, byName: make(map[string]int)}
}

// AddSection appends a section.
func (img *Image) AddSection(s Section) { img.Sections = append(img.Sections, s) }

// Section returns the named section, or nil.
func (img *Image) Section(name string) *Section {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return &img.Sections[i]
		}
	}
	return nil
}

// AddSymbol installs sym, replacing any prior symbol of the same name.
func (img *Image) AddSymbol(sym Symbol) {
	if img.byName == nil {
		img.byName = make(map[string]int)
	}
	if i, ok := img.byName[sym.Name]; ok {
		img.syms[i] = sym
		return
	}
	img.byName[sym.Name] = len(img.syms)
	img.syms = append(img.syms, sym)
}

// Lookup finds a symbol by name.
func (img *Image) Lookup(name string) (Symbol, bool) {
	if i, ok := img.byName[name]; ok {
		return img.syms[i], true
	}
	return Symbol{}, false
}

// Rebind points the symbol name at a new address, preserving kind/size.
// This is the primitive magic wrapping uses: after
// Rebind("printf", wrapperAddr), every call through the symbol table
// reaches the wrapper. It returns false if name is unknown.
func (img *Image) Rebind(name string, addr uint64) bool {
	i, ok := img.byName[name]
	if !ok {
		return false
	}
	img.syms[i].Addr = addr
	return true
}

// Symbols returns a copy of the symbol table sorted by address.
func (img *Image) Symbols() []Symbol {
	out := make([]Symbol, len(img.syms))
	copy(out, img.syms)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolFor returns the symbol containing addr, if any (nearest preceding
// symbol whose extent covers addr, or whose size is unknown/0).
func (img *Image) SymbolFor(addr uint64) (Symbol, bool) {
	var best Symbol
	found := false
	for _, s := range img.syms {
		if s.Addr <= addr && (!found || s.Addr > best.Addr) {
			if s.Size == 0 || addr < s.Addr+s.Size {
				best, found = s, true
			}
		}
	}
	return best, found
}

// Resolver maps an imported symbol name to an address. The process's
// dynamic-link namespace (image symbols, preloaded wrappers, host exports)
// implements this.
type Resolver func(name string) (uint64, bool)

// Load maps all sections of the image into as and applies GOT relocations
// using resolve (which may be nil if the image has no imports; local
// symbols resolve against the image itself first).
func (img *Image) Load(as *mem.AddressSpace, resolve Resolver) error {
	for _, s := range img.Sections {
		if len(s.Data) == 0 {
			continue
		}
		as.Map(img.Name+":"+s.Name, s.Addr, uint64(len(s.Data)), mem.PermRW)
		if err := as.Write(s.Addr, s.Data); err != nil {
			return fmt.Errorf("obj: loading %s %s: %w", img.Name, s.Name, err)
		}
		// Apply the real permissions after initialization.
		as.Map(img.Name+":"+s.Name, s.Addr, uint64(len(s.Data)), s.Perm)
	}
	for _, r := range img.Relocs {
		addr, ok := uint64(0), false
		if resolve != nil {
			addr, ok = resolve(r.Symbol)
		}
		if !ok {
			if sym, found := img.Lookup(r.Symbol); found {
				addr, ok = sym.Addr, true
			}
		}
		if !ok {
			return fmt.Errorf("obj: %s: unresolved symbol %q", img.Name, r.Symbol)
		}
		// GOT slots live in writable data pages; the earlier Map calls
		// covered them.
		if err := as.WriteUint64(r.SlotAddr, addr); err != nil {
			return fmt.Errorf("obj: %s: relocating %q: %w", img.Name, r.Symbol, err)
		}
	}
	return nil
}

// Hash returns a deterministic digest of the image: name, entry point,
// every section (name, address, permissions, bytes), the symbol table
// sorted by address, and all relocations. Snapshots embed it so a resume
// against a different (or differently patched) binary is rejected instead
// of silently executing the wrong code.
func (img *Image) Hash() [32]byte {
	h := sha256.New()
	var u8 [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(u8[:], v)
		h.Write(u8[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(img.Name)
	wu(img.Entry)
	wu(uint64(len(img.Sections)))
	for _, s := range img.Sections {
		ws(s.Name)
		wu(s.Addr)
		wu(uint64(s.Perm))
		wu(uint64(len(s.Data)))
		h.Write(s.Data)
	}
	syms := img.Symbols()
	wu(uint64(len(syms)))
	for _, s := range syms {
		ws(s.Name)
		wu(s.Addr)
		wu(s.Size)
		wu(uint64(s.Kind))
	}
	wu(uint64(len(img.Relocs)))
	for _, r := range img.Relocs {
		wu(r.SlotAddr)
		ws(r.Symbol)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Clone returns a deep copy of the image (the rewriter patches a copy so
// the original stays pristine, like e9patch producing a new binary).
func (img *Image) Clone() *Image {
	out := New(img.Name)
	out.Entry = img.Entry
	for _, s := range img.Sections {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		out.AddSection(Section{Name: s.Name, Addr: s.Addr, Data: d, Perm: s.Perm})
	}
	for _, sym := range img.syms {
		out.AddSymbol(sym)
	}
	out.Relocs = append(out.Relocs, img.Relocs...)
	return out
}
