// Package profiler implements the paper's PIN-based memory profiler
// (§5.1), the replacement for the exploding binary static analysis: it
// instruments every memory operation of a native run, marks 8-byte blocks
// that receive a "scalar double"-typed store (movsd and friends — x64 is
// "surprisingly well typed"), unmarks blocks overwritten by integer
// stores, and records the instructions that perform integer loads from
// float-marked blocks. Those instructions are the patch sites that need
// demotion before they may run under FPVM.
package profiler

import (
	"sort"

	"fpvm/internal/hostlib"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

// Stats summarizes a profiling run.
type Stats struct {
	FPStores     uint64 // float-typed stores observed
	IntStores    uint64 // integer stores (unmark events)
	IntLoads     uint64 // integer loads inspected
	MarkedBlocks int    // blocks marked at exit
	Sites        int    // distinct patch sites found
}

// tracer implements machine.Tracer over an 8-byte block shadow map.
type tracer struct {
	marked map[uint64]bool
	sites  map[uint64]bool
	stats  Stats
}

func blocksOf(addr uint64, size int) (uint64, uint64) {
	first := addr &^ 7
	last := (addr + uint64(size) - 1) &^ 7
	return first, last
}

func (t *tracer) OnStore(rip, addr uint64, size int, xmm, fpTyped bool) {
	first, last := blocksOf(addr, size)
	if fpTyped {
		t.stats.FPStores++
		for b := first; b <= last; b += 8 {
			t.marked[b] = true
		}
		return
	}
	// Integer-typed store: the block no longer holds a float.
	t.stats.IntStores++
	for b := first; b <= last; b += 8 {
		delete(t.marked, b)
	}
}

func (t *tracer) OnLoad(rip, addr uint64, size int, xmm bool) {
	if xmm {
		return
	}
	t.stats.IntLoads++
	first, last := blocksOf(addr, size)
	for b := first; b <= last; b += 8 {
		if t.marked[b] {
			t.sites[rip] = true
			return
		}
	}
}

// Result is the profiler output: the set of instructions (by address in
// the profiled image) that must be patched for memory-escape correctness.
type Result struct {
	Sites []uint64
	Stats Stats
}

// Profile executes img natively with instrumentation and returns the
// patch sites. The run uses the same workload/input the deployment will
// use ("developers patch their application by simply profiling it with
// the same workload", §5.1). maxSteps bounds the run (0 = 500M events).
func Profile(img *obj.Image, maxSteps uint64) (*Result, error) {
	as := mem.NewAddressSpace()
	m := machine.New(as)
	k := kernel.New()
	p := kernel.NewProcess(k, m, img.Name+"(profile)")
	lib := hostlib.Install(p)

	t := &tracer{marked: make(map[uint64]bool), sites: make(map[uint64]bool)}
	m.Tracer = t

	as.Map("stack", obj.StackTop-obj.StackSize, obj.StackSize, mem.PermRW)
	as.Map("heap", obj.HeapBase, obj.HeapSize, mem.PermRW)
	resolve := func(name string) (uint64, bool) {
		if sym, ok := img.Lookup(name); ok {
			return sym.Addr, true
		}
		a, ok := lib.Exports[name]
		return a, ok
	}
	if err := img.Load(as, resolve); err != nil {
		return nil, err
	}
	m.InvalidateICache()
	m.CPU.RIP = img.Entry
	m.CPU.GPR[4] = obj.StackTop - 64

	if maxSteps == 0 {
		maxSteps = 500_000_000
	}
	if err := p.Run(maxSteps); err != nil {
		return nil, err
	}

	sites := make([]uint64, 0, len(t.sites))
	for s := range t.sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	t.stats.MarkedBlocks = len(t.marked)
	t.stats.Sites = len(sites)
	return &Result{Sites: sites, Stats: t.stats}, nil
}
