package profiler_test

import (
	"testing"

	c "fpvm/internal/compile"
	"fpvm/internal/profiler"
)

func build(t *testing.T, p *c.Program) *profiler.Result {
	t.Helper()
	img, err := c.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := profiler.Profile(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFindsEscapeSite: an integer load of freshly stored float bytes is a
// patch site.
func TestFindsEscapeSite(t *testing.T) {
	p := c.NewProgram("esc")
	p.IntGlobals["bits"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "x", Src: c.Div2(c.Num(1), c.Num(3))},
		c.IAssign{Dst: "bits", Src: c.F2Bits{X: c.Var("x")}},
	}})
	res := build(t, p)
	if len(res.Sites) == 0 {
		t.Fatal("escape site not found")
	}
	if res.Stats.FPStores == 0 || res.Stats.IntLoads == 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

// TestNoFalsePositiveOnPureInt: integer-only code has no sites.
func TestNoFalsePositiveOnPureInt(t *testing.T) {
	p := c.NewProgram("int")
	p.IntGlobals["acc"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(50), Body: []c.Stmt{
			c.IAssign{Dst: "acc", Src: c.IAdd2(c.ILoad{Arr: "acc"}, c.IVar("i"))},
		}},
	}})
	res := build(t, p)
	if len(res.Sites) != 0 {
		t.Errorf("pure-int program has %d sites", len(res.Sites))
	}
}

// TestIntStoreUnmarks: overwriting a float block with an integer store
// clears the mark, so a later integer load is not flagged.
func TestIntStoreUnmarks(t *testing.T) {
	p := c.NewProgram("unmark")
	p.IntGlobals["slot"] = 0
	p.IntGlobals["out"] = 0
	p.Arrays["farr"] = 1
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		// Store a float into farr[0]'s block... then store an int over
		// the int global (separate block) and read the int global: not a
		// site. Reading farr as int IS a site — but we don't.
		c.AssignIdx{Arr: "farr", I: c.IConst(0), Src: c.Div2(c.Num(1), c.Num(3))},
		c.IAssign{Dst: "slot", Src: c.IConst(7)},
		c.IAssign{Dst: "out", Src: c.ILoad{Arr: "slot"}},
	}})
	res := build(t, p)
	if len(res.Sites) != 0 {
		t.Errorf("unexpected sites: %#x", res.Sites)
	}
}

// TestDynamicSensitivity: a site only reached under one input is found
// only when the profiled run takes that path (§5.1: the profiler
// "dynamically considers the flows in a specific run").
func TestDynamicSensitivity(t *testing.T) {
	mk := func(take int64) *c.Program {
		p := c.NewProgram("dyn")
		p.IntGlobals["flag"] = take
		p.IntGlobals["bits"] = 0
		p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
			c.Assign{Dst: "x", Src: c.Div2(c.Num(1), c.Num(3))},
			c.If{Cond: c.ICmp(c.EQ, c.ILoad{Arr: "flag"}, c.IConst(1)), Then: []c.Stmt{
				c.IAssign{Dst: "bits", Src: c.F2Bits{X: c.Var("x")}},
			}},
		}})
		return p
	}
	with := build(t, mk(1))
	without := build(t, mk(0))
	if len(with.Sites) == 0 {
		t.Error("taken path not profiled")
	}
	if len(without.Sites) != 0 {
		t.Error("untaken path produced sites")
	}
}
