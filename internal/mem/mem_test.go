package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddressSpace()
	as.Map("d", 0x1000, 100, PermRW)
	if err := as.WriteUint64(0x1000, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadUint64(0x1000)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("read %#x, %v", v, err)
	}
	if !as.Mapped(0x1000) || as.Mapped(0x100000) {
		t.Error("Mapped wrong")
	}
}

func TestPermissionFaults(t *testing.T) {
	as := NewAddressSpace()
	as.Map("ro", 0x1000, PageSize, PermRead)
	if err := as.WriteUint8(0x1000, 1); err == nil {
		t.Error("write to read-only page succeeded")
	} else {
		var f *Fault
		if !errors.As(err, &f) || f.Kind != FaultProtection {
			t.Errorf("wrong fault: %v", err)
		}
	}
	if _, err := as.ReadUint8(0x999000); err == nil {
		t.Error("read of unmapped page succeeded")
	} else {
		var f *Fault
		if !errors.As(err, &f) || f.Kind != FaultUnmapped {
			t.Errorf("wrong fault: %v", err)
		}
	}
	// Exec permission gates Fetch, not Read.
	as.Map("code", 0x2000, PageSize, PermRX)
	if _, err := as.Fetch(0x2000, make([]byte, 4)); err != nil {
		t.Errorf("fetch from r-x failed: %v", err)
	}
	if _, err := as.Fetch(0x1000, make([]byte, 4)); err == nil {
		t.Error("fetch from r-- succeeded")
	}
}

func TestStraddlingAccess(t *testing.T) {
	as := NewAddressSpace()
	as.Map("two", 0x1000, 2*PageSize, PermRW)
	addr := uint64(0x1000 + PageSize - 3)
	if err := as.WriteUint64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadUint64(addr)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("straddle read %#x %v", v, err)
	}
	// Straddling into an unmapped page fails.
	edge := uint64(0x1000 + 2*PageSize - 3)
	if err := as.WriteUint64(edge, 1); err == nil {
		t.Error("write past mapping succeeded")
	}
}

func TestRoundtripProperty(t *testing.T) {
	as := NewAddressSpace()
	as.Map("arena", 0x10000, 16*PageSize, PermRW)
	f := func(off uint32, v uint64) bool {
		addr := 0x10000 + uint64(off%uint64Count)*8
		if err := as.WriteUint64(addr, v); err != nil {
			return false
		}
		got, err := as.ReadUint64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

const uint64Count = 16 * PageSize / 8

func TestWritablePagesSorted(t *testing.T) {
	as := NewAddressSpace()
	as.Map("b", 0x5000, PageSize, PermRW)
	as.Map("a", 0x1000, PageSize, PermRW)
	as.Map("code", 0x3000, PageSize, PermRX)
	pages := as.WritablePages()
	if len(pages) != 2 || pages[0] != 0x1000 || pages[1] != 0x5000 {
		t.Errorf("writable pages: %#x", pages)
	}
}

func TestProtectAndUnmap(t *testing.T) {
	as := NewAddressSpace()
	as.Map("x", 0x1000, PageSize, PermRW)
	if err := as.Protect(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteUint8(0x1000, 1); err == nil {
		t.Error("write after Protect(r--) succeeded")
	}
	if err := as.Protect(0x900000, PageSize, PermRW); err == nil {
		t.Error("Protect of unmapped succeeded")
	}
	as.Unmap(0x1000, PageSize)
	if as.Mapped(0x1000) {
		t.Error("still mapped after Unmap")
	}
}

func TestRemapPreservesContents(t *testing.T) {
	as := NewAddressSpace()
	as.Map("x", 0x1000, PageSize, PermRW)
	_ = as.WriteUint32(0x1010, 0xABCD)
	as.Map("x", 0x1000, PageSize, PermRead) // permission change only
	v, err := as.ReadUint32(0x1010)
	if err != nil || v != 0xABCD {
		t.Errorf("contents lost on remap: %#x %v", v, err)
	}
}

func TestWidthsAndPageData(t *testing.T) {
	as := NewAddressSpace()
	as.Map("x", 0, PageSize, PermRW)
	_ = as.WriteUint16(10, 0xBEEF)
	v16, _ := as.ReadUint16(10)
	if v16 != 0xBEEF {
		t.Error("u16")
	}
	_ = as.WriteUint32(20, 0xDEADBEEF)
	v32, _ := as.ReadUint32(20)
	if v32 != 0xDEADBEEF {
		t.Error("u32")
	}
	data, ok := as.PageData(8)
	if !ok || len(data) != PageSize {
		t.Error("PageData")
	}
	if _, ok := as.PageData(0x999999); ok {
		t.Error("PageData of unmapped")
	}
	if as.PageCount() != 1 {
		t.Error("PageCount")
	}
}

func TestRegions(t *testing.T) {
	as := NewAddressSpace()
	as.Map("stack", 0x7000, PageSize, PermRW)
	rs := as.Regions()
	if len(rs) != 1 || rs[0].Name != "stack" || rs[0].Perm.String() != "rw-" {
		t.Errorf("regions: %+v", rs)
	}
}
