// Package mem implements the simulated paged virtual memory used by the
// machine, the kernel, and FPVM's conservative garbage collector (which
// scans all writable pages for NaN-boxed references, as in §2.5 of the
// paper).
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the size of a virtual page in bytes.
const PageSize = 4096

// PageMask extracts the offset within a page.
const PageMask = PageSize - 1

// Perm is a page permission bitmask.
type Perm uint8

const (
	PermRead  Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermExec  Perm = 1 << 2

	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// FaultKind classifies a memory fault.
type FaultKind uint8

const (
	FaultUnmapped FaultKind = iota
	FaultProtection
)

// Fault is returned for invalid accesses; the kernel turns it into the
// simulated process dying (there is no demand paging in this model).
type Fault struct {
	Addr uint64
	Kind FaultKind
	Want Perm
}

func (f *Fault) Error() string {
	k := "unmapped"
	if f.Kind == FaultProtection {
		k = "protection"
	}
	return fmt.Sprintf("mem: %s fault at %#x (want %s)", k, f.Addr, f.Want)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// AddressSpace is a sparse paged address space. The zero value is an empty
// address space ready to use. It is not safe for concurrent mutation.
type AddressSpace struct {
	pages map[uint64]*page // keyed by addr >> 12

	// regions records Map calls for introspection ([name, start, size]).
	regions []Region

	// dirty, when non-nil, accumulates the page numbers of pages written
	// (or remapped) since the last ResetDirty. The checkpoint subsystem
	// uses it for incremental snapshots; when nil (the default) writes
	// pay only a nil check.
	dirty map[uint64]struct{}
}

// Region describes a mapped region (for debugging and /proc-like listings).
type Region struct {
	Name  string
	Start uint64
	Size  uint64
	Perm  Perm
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*page)}
}

// Map creates pages covering [addr, addr+size) with the given permissions.
// addr and size are rounded out to page boundaries. Mapping over an
// existing page replaces its permissions but preserves its contents.
func (as *AddressSpace) Map(name string, addr, size uint64, perm Perm) {
	if as.pages == nil {
		as.pages = make(map[uint64]*page)
	}
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	for pn := first; pn < last; pn++ {
		if p, ok := as.pages[pn]; ok {
			p.perm = perm
		} else {
			as.pages[pn] = &page{perm: perm}
		}
		as.markDirty(pn)
	}
	as.regions = append(as.regions, Region{Name: name, Start: addr, Size: size, Perm: perm})
}

// Unmap removes pages covering [addr, addr+size).
func (as *AddressSpace) Unmap(addr, size uint64) {
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	for pn := first; pn < last; pn++ {
		delete(as.pages, pn)
		as.markDirty(pn)
	}
}

// Protect changes permissions on pages covering [addr, addr+size).
func (as *AddressSpace) Protect(addr, size uint64, perm Perm) error {
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	for pn := first; pn < last; pn++ {
		p, ok := as.pages[pn]
		if !ok {
			return &Fault{Addr: pn * PageSize, Kind: FaultUnmapped, Want: perm}
		}
		p.perm = perm
		as.markDirty(pn)
	}
	return nil
}

// Regions returns the recorded mapping history.
func (as *AddressSpace) Regions() []Region { return as.regions }

// Mapped reports whether addr is backed by a page.
func (as *AddressSpace) Mapped(addr uint64) bool {
	_, ok := as.pages[addr/PageSize]
	return ok
}

func (as *AddressSpace) lookup(addr uint64, want Perm) (*page, error) {
	p, ok := as.pages[addr/PageSize]
	if !ok {
		return nil, &Fault{Addr: addr, Kind: FaultUnmapped, Want: want}
	}
	if p.perm&want != want {
		return nil, &Fault{Addr: addr, Kind: FaultProtection, Want: want}
	}
	return p, nil
}

// Read copies len(buf) bytes from addr into buf, honoring PermRead.
func (as *AddressSpace) Read(addr uint64, buf []byte) error {
	return as.access(addr, buf, PermRead, false)
}

// Write copies buf to addr, honoring PermWrite.
func (as *AddressSpace) Write(addr uint64, buf []byte) error {
	return as.access(addr, buf, PermWrite, true)
}

// Fetch copies len(buf) bytes from addr honoring PermExec (instruction
// fetch). Short fetches at the end of a mapped region succeed and report
// the number of valid bytes.
func (as *AddressSpace) Fetch(addr uint64, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		p, err := as.lookup(addr+uint64(n), PermExec)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		off := (addr + uint64(n)) & PageMask
		c := copy(buf[n:], p.data[off:])
		n += c
	}
	return n, nil
}

func (as *AddressSpace) access(addr uint64, buf []byte, want Perm, write bool) error {
	n := 0
	for n < len(buf) {
		p, err := as.lookup(addr+uint64(n), want)
		if err != nil {
			return err
		}
		off := (addr + uint64(n)) & PageMask
		if write {
			as.markDirty((addr + uint64(n)) / PageSize)
			n += copy(p.data[off:], buf[n:])
		} else {
			n += copy(buf[n:], p.data[off:])
		}
	}
	return nil
}

func (as *AddressSpace) markDirty(pn uint64) {
	if as.dirty != nil {
		as.dirty[pn] = struct{}{}
	}
}

// EnableDirtyTracking starts recording which pages are written. It is
// idempotent; tracking stays on for the life of the address space.
func (as *AddressSpace) EnableDirtyTracking() {
	if as.dirty == nil {
		as.dirty = make(map[uint64]struct{})
	}
}

// DirtyTracking reports whether dirty-page tracking is enabled.
func (as *AddressSpace) DirtyTracking() bool { return as.dirty != nil }

// DirtyPages returns the sorted start addresses of pages written (or
// remapped) since the last ResetDirty. Pages that were unmapped since
// then are included as addresses that may no longer be mapped; callers
// taking snapshots must tolerate a stale entry.
func (as *AddressSpace) DirtyPages() []uint64 {
	if len(as.dirty) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(as.dirty))
	for pn := range as.dirty {
		out = append(out, pn*PageSize)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResetDirty clears the dirty-page set (tracking stays enabled).
func (as *AddressSpace) ResetDirty() {
	for pn := range as.dirty {
		delete(as.dirty, pn)
	}
}

// ReadUint64 reads a little-endian uint64 at addr.
func (as *AddressSpace) ReadUint64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteUint64 writes a little-endian uint64 at addr.
func (as *AddressSpace) WriteUint64(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(addr, b[:])
}

// ReadUint32 reads a little-endian uint32 at addr.
func (as *AddressSpace) ReadUint32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteUint32 writes a little-endian uint32 at addr.
func (as *AddressSpace) WriteUint32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Write(addr, b[:])
}

// ReadUint16 reads a little-endian uint16 at addr.
func (as *AddressSpace) ReadUint16(addr uint64) (uint16, error) {
	var b [2]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// WriteUint16 writes a little-endian uint16 at addr.
func (as *AddressSpace) WriteUint16(addr uint64, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return as.Write(addr, b[:])
}

// ReadUint8 reads a byte at addr.
func (as *AddressSpace) ReadUint8(addr uint64) (uint8, error) {
	var b [1]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteUint8 writes a byte at addr.
func (as *AddressSpace) WriteUint8(addr uint64, v uint8) error {
	return as.Write(addr, []byte{v})
}

// WritablePages returns the sorted start addresses of all writable pages.
// FPVM's conservative mark phase scans exactly these.
func (as *AddressSpace) WritablePages() []uint64 {
	var out []uint64
	for pn, p := range as.pages {
		if p.perm&PermWrite != 0 {
			out = append(out, pn*PageSize)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageData returns the raw backing bytes of the page containing addr
// (read-only use by the GC scanner and the profiler). ok is false if the
// page is unmapped.
func (as *AddressSpace) PageData(addr uint64) ([]byte, bool) {
	p, ok := as.pages[addr/PageSize]
	if !ok {
		return nil, false
	}
	return p.data[:], true
}

// OverwritePage replaces the contents of the page at addr (page-aligned)
// with data, bypassing permission checks — the snapshot-restore path uses
// it, and restores must not be subject to guest page protections. The
// page is mapped read-write if absent. data longer than a page is
// truncated; shorter data zero-fills the remainder.
func (as *AddressSpace) OverwritePage(addr uint64, data []byte) {
	if as.pages == nil {
		as.pages = make(map[uint64]*page)
	}
	pn := addr / PageSize
	p, ok := as.pages[pn]
	if !ok {
		p = &page{perm: PermRW}
		as.pages[pn] = p
	}
	n := copy(p.data[:], data)
	for i := n; i < PageSize; i++ {
		p.data[i] = 0
	}
	as.markDirty(pn)
}

// PageCount returns the number of mapped pages.
func (as *AddressSpace) PageCount() int { return len(as.pages) }

// Clone returns a deep copy of the address space (fork()).
func (as *AddressSpace) Clone() *AddressSpace {
	out := NewAddressSpace()
	for pn, p := range as.pages {
		cp := &page{perm: p.perm}
		cp.data = p.data
		out.pages[pn] = cp
	}
	out.regions = append(out.regions, as.regions...)
	if as.dirty != nil {
		out.dirty = make(map[uint64]struct{}, len(as.dirty))
		for pn := range as.dirty {
			out.dirty[pn] = struct{}{}
		}
	}
	return out
}
