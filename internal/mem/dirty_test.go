package mem

import "testing"

func TestDirtyTrackingDisabledByDefault(t *testing.T) {
	as := NewAddressSpace()
	as.Map("d", 0x1000, PageSize, PermRW)
	if as.DirtyTracking() {
		t.Fatal("dirty tracking on without EnableDirtyTracking")
	}
	if err := as.WriteUint64(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if got := as.DirtyPages(); got != nil {
		t.Errorf("DirtyPages without tracking: %v, want nil", got)
	}
}

func TestDirtyPagesTracksWrites(t *testing.T) {
	as := NewAddressSpace()
	as.Map("d", 0x1000, 3*PageSize, PermRW)
	as.EnableDirtyTracking()
	as.ResetDirty() // Map marked every page; start clean

	if err := as.WriteUint64(0x1000+2*PageSize, 7); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteUint64(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	got := as.DirtyPages()
	want := []uint64{0x1000, 0x1000 + 2*PageSize}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("DirtyPages = %#v, want %#v (sorted)", got, want)
	}

	as.ResetDirty()
	if got := as.DirtyPages(); got != nil {
		t.Errorf("DirtyPages after reset: %v, want nil", got)
	}
	// Reads never dirty.
	if _, err := as.ReadUint64(0x1000); err != nil {
		t.Fatal(err)
	}
	if got := as.DirtyPages(); got != nil {
		t.Errorf("read dirtied a page: %v", got)
	}
}

func TestDirtyStraddlingWriteMarksBothPages(t *testing.T) {
	as := NewAddressSpace()
	as.Map("d", 0x1000, 2*PageSize, PermRW)
	as.EnableDirtyTracking()
	as.ResetDirty()
	if err := as.WriteUint64(0x1000+PageSize-4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	got := as.DirtyPages()
	if len(got) != 2 {
		t.Fatalf("straddling write dirtied %v, want both pages", got)
	}
}

func TestDirtyMapUnmapProtect(t *testing.T) {
	as := NewAddressSpace()
	as.EnableDirtyTracking()

	as.Map("a", 0x1000, PageSize, PermRW)
	if got := as.DirtyPages(); len(got) != 1 || got[0] != 0x1000 {
		t.Errorf("Map dirtied %v, want [0x1000]", got)
	}
	as.ResetDirty()
	if err := as.Protect(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := as.DirtyPages(); len(got) != 1 {
		t.Errorf("Protect dirtied %v, want the page", got)
	}
	as.ResetDirty()
	as.Unmap(0x1000, PageSize)
	if got := as.DirtyPages(); len(got) != 1 {
		t.Errorf("Unmap dirtied %v, want the page", got)
	}
}

func TestCloneCopiesDirtySet(t *testing.T) {
	as := NewAddressSpace()
	as.Map("d", 0x1000, PageSize, PermRW)
	as.EnableDirtyTracking()
	as.ResetDirty()
	if err := as.WriteUint64(0x1000, 1); err != nil {
		t.Fatal(err)
	}

	c := as.Clone()
	if !c.DirtyTracking() {
		t.Fatal("clone lost dirty tracking")
	}
	if got := c.DirtyPages(); len(got) != 1 {
		t.Fatalf("clone dirty set %v, want the inherited page", got)
	}
	// Independent sets after the clone.
	c.ResetDirty()
	if got := as.DirtyPages(); len(got) != 1 {
		t.Error("clone's ResetDirty cleared the parent's set")
	}
}
