package analysis_test

import (
	"testing"

	"fpvm/internal/analysis"
	c "fpvm/internal/compile"
	"fpvm/internal/obj"
	"fpvm/internal/profiler"
)

func analyze(t *testing.T, p *c.Program) (*analysis.Result, *obj.Image) {
	t.Helper()
	img, err := c.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(img)
	if err != nil {
		t.Fatal(err)
	}
	return res, img
}

// TestFindsEscapeStatically: the conservative analysis must find the
// F2Bits slot reuse without running the program.
func TestFindsEscapeStatically(t *testing.T) {
	p := c.NewProgram("esc")
	p.IntGlobals["bits"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "x", Src: c.Div2(c.Num(1), c.Num(3))},
		c.IAssign{Dst: "bits", Src: c.F2Bits{X: c.Var("x")}},
	}})
	res, _ := analyze(t, p)
	if len(res.Sites) == 0 {
		t.Fatal("static analysis missed the escape")
	}
	if res.Stats.Instructions == 0 || res.Stats.FPStores == 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

// TestConservativeOnUntakenPaths: unlike the profiler, the analysis flags
// sites on paths the program never takes — the §5.1 over-approximation.
func TestConservativeOnUntakenPaths(t *testing.T) {
	p := c.NewProgram("dyn")
	p.IntGlobals["flag"] = 0 // branch never taken at runtime
	p.IntGlobals["bits"] = 0
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "x", Src: c.Div2(c.Num(1), c.Num(3))},
		c.If{Cond: c.ICmp(c.EQ, c.ILoad{Arr: "flag"}, c.IConst(1)), Then: []c.Stmt{
			c.IAssign{Dst: "bits", Src: c.F2Bits{X: c.Var("x")}},
		}},
	}})
	res, img := analyze(t, p)
	if len(res.Sites) == 0 {
		t.Fatal("analysis missed the never-taken escape")
	}
	prof, err := profiler.Profile(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Sites) != 0 {
		t.Fatal("profiler found the never-taken site (should not)")
	}
	if len(res.Sites) <= len(prof.Sites) {
		t.Error("analysis not a strict superset here")
	}
}

// TestFunctionRegionIsolation: stack slots in different functions must not
// alias: a float store in f must not taint integer loads in g.
func TestFunctionRegionIsolation(t *testing.T) {
	p := c.NewProgram("iso")
	p.IntGlobals["n"] = 0
	// f uses a stack float slot; g only does integer stack work at the
	// same offsets.
	p.AddFunc(&c.Func{Name: "f", Params: []string{"a"}, Body: []c.Stmt{
		c.Assign{Dst: "t", Src: c.Mul2(c.Var("a"), c.Num(2))},
		c.Return{X: c.Var("t")},
	}})
	p.AddFunc(&c.Func{Name: "g", Body: []c.Stmt{
		c.IAssign{Dst: "k", Src: c.IConst(3)},
		c.IAssign{Dst: "n", Src: c.IAdd2(c.ILoad{Arr: "n"}, c.IVar("k"))},
	}})
	p.AddFunc(&c.Func{Name: "main", Body: []c.Stmt{
		c.Assign{Dst: "r", Src: c.CallFn{Fn: "f", Args: []c.Expr{c.Num(1.5)}}},
		c.CallStmt{Fn: "g"},
	}})
	res, _ := analyze(t, p)
	// g's integer stack loads must not be flagged: check no site lies in
	// g's extent. (Sites from main/f are expected: param spills etc.)
	_, img := analyze(t, p)
	gsym, _ := img.Lookup("g")
	msym, _ := img.Lookup("main")
	for _, s := range res.Sites {
		if s >= gsym.Addr && s < msym.Addr {
			t.Errorf("site %#x inside g (stack aliasing across functions)", s)
		}
	}
}

// TestEmptyImage does not crash.
func TestEmptyImage(t *testing.T) {
	res, err := analysis.Analyze(obj.New("empty"))
	if err != nil || len(res.Sites) != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
}
