package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"

	"fpvm/internal/fpfuzz"
	"fpvm/internal/oracle"
)

// Exception-flow coverage (after FlowFPX): instead of assuming the fuzz
// corpus exercises every exception path, measure it. For every exception
// class × operand shape the generator can bias toward, the biased program
// runs under every alt system in the conformance matrix, and a cell
// counts as covered only if the run actually delivered a trap whose
// raised MXCSR flags include the class's exception bit (telemetry's
// per-cause trap counters). The report is a regenerable artifact
// (`make cover-flow`) with a checked-in baseline CI asserts against:
// coverage may grow, never silently shrink.

// FlowSystems lists the alt systems the coverage matrix spans — the same
// five systems as the conformance matrix, with both posit widths.
var FlowSystems = []string{"boxed", "mpfr", "posit", "posit32", "interval", "rational"}

// flowMaxSteps bounds each run; fuzz programs are straight-line, so any
// run this long is a bug, not a slow input.
const flowMaxSteps = 2_000_000

// FlowCell is one (exception class, operand shape, alt system) point.
type FlowCell struct {
	Class   string `json:"class"`
	Shape   string `json:"shape"`
	Alt     string `json:"alt"`
	Covered bool   `json:"covered"`
	// CauseTraps counts trap deliveries whose raised flags included the
	// class's exception bit; Traps is the run's total trap count.
	CauseTraps uint64 `json:"cause_traps"`
	Traps      uint64 `json:"traps"`
}

// Key identifies the cell in the baseline file.
func (c FlowCell) Key() string { return c.Class + "/" + c.Shape + "/" + c.Alt }

// FlowReport is the full coverage matrix.
type FlowReport struct {
	Cells   []FlowCell `json:"cells"`
	Covered int        `json:"covered"`
	Total   int        `json:"total"`
}

// FlowCoverage runs the biased generator's every class × shape program
// under every FlowSystems member and measures which cells delivered the
// class's exception. Cell order is deterministic: classes × shapes ×
// systems in declaration order.
func FlowCoverage(progress io.Writer) (*FlowReport, error) {
	rep := &FlowReport{}
	for _, class := range fpfuzz.Classes() {
		for _, shape := range fpfuzz.Shapes() {
			name := fmt.Sprintf("flow-%s-%s", class, shape)
			img, err := fpfuzz.Build(name, fpfuzz.GenBiased(class, shape))
			if err != nil {
				return nil, fmt.Errorf("flowcov: build %s: %w", name, err)
			}
			prog := oracle.Program{Name: name, Native: img}
			causeIdx := bits.TrailingZeros32(class.StickyBit())
			for _, sys := range FlowSystems {
				if progress != nil {
					fmt.Fprintf(progress, "flowcov %s under %s...\n", name, sys)
				}
				spec := oracle.Spec{Name: name + "/" + sys, Alt: sys, Seq: true}
				c := oracle.Run(prog, spec, oracle.Options{MaxSteps: flowMaxSteps}, 0, nil)
				if c.RunErr != nil {
					return nil, fmt.Errorf("flowcov: %s under %s: %w", name, sys, c.RunErr)
				}
				cell := FlowCell{
					Class: class.String(), Shape: shape.String(), Alt: sys,
					CauseTraps: c.Tel.TrapCauses[causeIdx],
					Traps:      c.Tel.Traps,
				}
				cell.Covered = cell.CauseTraps > 0
				if cell.Covered {
					rep.Covered++
				}
				rep.Total++
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	return rep, nil
}

// FlowTable renders the matrix: one row per class × shape, one column per
// alt system, each cell the count of cause-flagged traps (or "-" for an
// uncovered cell).
func FlowTable(out io.Writer, rep *FlowReport) {
	fmt.Fprintln(out, "Exception-flow coverage (class x shape x alt system, cause-flagged traps)")
	fmt.Fprintf(out, "%-22s", "class/shape")
	for _, sys := range FlowSystems {
		fmt.Fprintf(out, " %9s", sys)
	}
	fmt.Fprintln(out)
	byRow := make(map[string][]FlowCell)
	var rows []string
	for _, c := range rep.Cells {
		k := c.Class + "/" + c.Shape
		if len(byRow[k]) == 0 {
			rows = append(rows, k)
		}
		byRow[k] = append(byRow[k], c)
	}
	for _, k := range rows {
		fmt.Fprintf(out, "%-22s", k)
		for _, c := range byRow[k] {
			if c.Covered {
				fmt.Fprintf(out, " %9d", c.CauseTraps)
			} else {
				fmt.Fprintf(out, " %9s", "-")
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "covered %d/%d cells\n", rep.Covered, rep.Total)
}

// WriteFlowJSON writes the report as the CI artifact.
func WriteFlowJSON(path string, rep *FlowReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CoveredKeys returns the sorted-by-matrix-order keys of covered cells —
// the non-regression baseline's content.
func (rep *FlowReport) CoveredKeys() []string {
	var keys []string
	for _, c := range rep.Cells {
		if c.Covered {
			keys = append(keys, c.Key())
		}
	}
	return keys
}
