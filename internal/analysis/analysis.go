// Package analysis implements the conservative static analysis the
// original FPVM used to find memory-escape correctness sites (§2.6,
// §5.1) — the approach the paper replaced with profiling because "its
// runtime and memory demands tend to explode" (Enzo took days and
// terabytes of swap). This reproduction's version is a per-function
// value-set-flavoured dataflow over the decoded text:
//
//   - any stack slot that ever receives a float-typed store (movsd and
//     friends) is considered float-tainted for the whole function
//     (flow-insensitive, like a conservative VSA join);
//   - any global data address that ever receives a float-typed store is
//     float-tainted program-wide;
//   - every integer load from a tainted location — or from a location the
//     analysis cannot bound (computed addresses: indexed or pointer-based
//     accesses) — is a patch site.
//
// By construction the result is a superset of what the profiler finds on
// any given input, reproducing the paper's comparison: profiling yields
// strictly fewer sites and therefore far fewer correctness traps.
package analysis

import (
	"sort"

	"fpvm/internal/isa"
	"fpvm/internal/obj"
)

// Stats summarizes an analysis run.
type Stats struct {
	Instructions int
	FPStores     int
	IntLoads     int
	Sites        int
}

// Result is the analysis output.
type Result struct {
	Sites []uint64
	Stats Stats
}

// locKey identifies an abstract memory location: rsp-relative slots per
// function region, or absolute/rip-relative data addresses.
type locKey struct {
	stack bool
	fn    int   // function region index for stack slots
	off   int64 // rsp offset or absolute address
}

// Analyze decodes the image's text section and returns the conservative
// patch-site set.
func Analyze(img *obj.Image) (*Result, error) {
	text := img.Section(".text")
	if text == nil {
		return &Result{}, nil
	}

	insts, err := decodeAll(text)
	if err != nil {
		return nil, err
	}

	// Function regions: split at symbol boundaries so stack offsets from
	// different frames don't alias.
	bounds := funcBounds(img, text)

	var st Stats
	st.Instructions = len(insts)

	tainted := map[locKey]bool{}
	taintAll := map[int]bool{} // function regions with unbounded FP stores

	classifyLoc := func(fnIdx int, in *isa.Inst, m isa.Operand) (locKey, bool) {
		switch {
		case m.RIPRel:
			return locKey{off: int64(in.Addr) + int64(in.Len) + int64(m.Disp)}, true
		case m.Base == isa.NoReg && m.Index == isa.NoReg:
			return locKey{off: int64(m.Disp)}, true
		case m.Base == isa.RSP && m.Index == isa.NoReg:
			return locKey{stack: true, fn: fnIdx, off: int64(m.Disp)}, true
		}
		return locKey{}, false // computed address: unbounded
	}

	// Pass 1: collect float-typed stores.
	for i := range insts {
		in := &insts[i]
		if !isFPTypedStore(in.Op) {
			continue
		}
		m, ok := in.MemOperand()
		if !ok {
			continue
		}
		st.FPStores++
		fnIdx := regionOf(bounds, in.Addr)
		if loc, bounded := classifyLoc(fnIdx, in, m); bounded {
			tainted[loc] = true
		} else {
			taintAll[fnIdx] = true
		}
	}

	// Pass 2: flag integer loads that may observe tainted locations.
	sites := map[uint64]bool{}
	for i := range insts {
		in := &insts[i]
		if !isIntLoad(in.Op) {
			continue
		}
		m, ok := in.MemOperand()
		if !ok {
			continue
		}
		st.IntLoads++
		fnIdx := regionOf(bounds, in.Addr)
		loc, bounded := classifyLoc(fnIdx, in, m)
		switch {
		case !bounded:
			// Computed address: could alias any tainted store.
			sites[in.Addr] = true
		case tainted[loc]:
			sites[in.Addr] = true
		case loc.stack && taintAll[fnIdx]:
			sites[in.Addr] = true
		}
	}

	out := make([]uint64, 0, len(sites))
	for a := range sites {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	st.Sites = len(out)
	return &Result{Sites: out, Stats: st}, nil
}

func decodeAll(text *obj.Section) ([]isa.Inst, error) {
	var out []isa.Inst
	off := 0
	for off < len(text.Data) {
		in, err := isa.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		off += int(in.Len)
	}
	return out, nil
}

// funcBounds returns sorted function start addresses within the text.
func funcBounds(img *obj.Image, text *obj.Section) []uint64 {
	var starts []uint64
	for _, s := range img.Symbols() {
		if s.Kind == obj.SymFunc && s.Addr >= text.Addr && s.Addr < text.Addr+uint64(len(text.Data)) {
			starts = append(starts, s.Addr)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	if len(starts) == 0 || starts[0] != text.Addr {
		starts = append([]uint64{text.Addr}, starts...)
	}
	return starts
}

func regionOf(bounds []uint64, addr uint64) int {
	idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] > addr })
	return idx - 1
}

// isFPTypedStore reports stores the hardware tags as scalar/packed double
// (the taint sources).
func isFPTypedStore(op isa.Op) bool {
	switch op {
	case isa.MOVSDMX, isa.MOVAPDMX, isa.MOVUPDMX, isa.MOVHPDMX, isa.MOVLPDMX:
		return true
	}
	return false
}

// isIntLoad reports instructions that read memory into an integer context.
func isIntLoad(op isa.Op) bool {
	switch op {
	case isa.MOV64RM, isa.MOV32RM, isa.MOV16RM, isa.MOV8RM,
		isa.MOVZX8, isa.MOVZX16, isa.MOVSX8, isa.MOVSX16, isa.MOVSXD,
		isa.ADD64, isa.SUB64, isa.IMUL64, isa.AND64, isa.OR64, isa.XOR64,
		isa.CMP64, isa.TEST64, isa.PUSH, isa.XCHG64:
		return true
	}
	return false
}
