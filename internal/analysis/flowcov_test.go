package analysis_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpvm/internal/analysis"
)

const flowBaselinePath = "testdata/flowcov_baseline.json"

// TestFlowCoverageNonRegression measures exception-flow coverage and
// asserts it never shrinks below the checked-in baseline: every
// (class, shape, alt system) cell the baseline records as covered must
// still deliver its exception. New coverage is reported but not required.
// Regenerate the baseline with FLOWCOV_REGEN=1 after intentionally
// growing the matrix.
func TestFlowCoverageNonRegression(t *testing.T) {
	rep, err := analysis.FlowCoverage(nil)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool, len(rep.Cells))
	for _, k := range rep.CoveredKeys() {
		covered[k] = true
	}

	if os.Getenv("FLOWCOV_REGEN") != "" {
		if err := os.MkdirAll(filepath.Dir(flowBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep.CoveredKeys(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(flowBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s: %d/%d cells covered", flowBaselinePath, rep.Covered, rep.Total)
		return
	}

	data, err := os.ReadFile(flowBaselinePath)
	if err != nil {
		t.Fatalf("read baseline (FLOWCOV_REGEN=1 to create): %v", err)
	}
	var baseline []string
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline is empty; regenerate with FLOWCOV_REGEN=1")
	}
	lost := 0
	for _, k := range baseline {
		if !covered[k] {
			lost++
			t.Errorf("coverage regression: baseline cell %s no longer delivers its exception", k)
		}
	}
	if lost == 0 && rep.Covered > len(baseline) {
		t.Logf("coverage grew: %d cells covered vs %d in baseline (FLOWCOV_REGEN=1 to ratchet)", rep.Covered, len(baseline))
	}
}

// TestFlowCoverageShape pins the matrix dimensions: 6 classes x 4 shapes
// x 6 systems, in deterministic order — and the artifact renderers: the
// table carries one row per class × shape with the coverage tally, and
// the JSON artifact round-trips to the same report.
func TestFlowCoverageShape(t *testing.T) {
	rep, err := analysis.FlowCoverage(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * 4 * len(analysis.FlowSystems)
	if rep.Total != want || len(rep.Cells) != want {
		t.Fatalf("matrix has %d cells (Total %d), want %d", len(rep.Cells), rep.Total, want)
	}
	if rep.Cells[0].Key() != "invalid/scalar-reg/boxed" {
		t.Fatalf("first cell key %q, want invalid/scalar-reg/boxed", rep.Cells[0].Key())
	}

	var buf bytes.Buffer
	analysis.FlowTable(&buf, rep)
	table := buf.String()
	if got := strings.Count(table, "\n"); got != 6*4+3 {
		t.Errorf("table has %d lines, want %d (header x2 + 24 rows + tally)", got, 6*4+3)
	}
	if !strings.Contains(table, fmt.Sprintf("covered %d/%d cells", rep.Covered, rep.Total)) {
		t.Errorf("table is missing the coverage tally:\n%s", table)
	}
	for _, sys := range analysis.FlowSystems {
		if !strings.Contains(table, sys) {
			t.Errorf("table is missing the %s column", sys)
		}
	}

	path := filepath.Join(t.TempDir(), "flowcov.json")
	if err := analysis.WriteFlowJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round analysis.FlowReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Covered != rep.Covered || round.Total != rep.Total || len(round.Cells) != len(rep.Cells) {
		t.Fatalf("JSON artifact round-tripped to %d/%d over %d cells, want %d/%d over %d",
			round.Covered, round.Total, len(round.Cells), rep.Covered, rep.Total, len(rep.Cells))
	}
}
