// Package fpmath provides IEEE-754 double precision bit utilities used
// throughout the FPVM reproduction: NaN taxonomy, value classification,
// and exact floating point exception detection via error-free transforms.
//
// The simulated machine (internal/machine) must decide, for every FP
// instruction it executes natively, whether the operation would raise an
// IEEE exception (Invalid, Denormal operand, Divide-by-zero, Overflow,
// Underflow, Precision/inexact). Real hardware reports these in MXCSR;
// we recover them in software, exactly, using math.FMA-based residues.
package fpmath

import "math"

// Exception flag bits, matching the layout of the low six MXCSR status
// bits on x64 (IE, DE, ZE, OE, UE, PE).
const (
	ExInvalid   uint32 = 1 << 0 // IE: invalid operation (NaN produced/consumed, 0*inf, ...)
	ExDenormal  uint32 = 1 << 1 // DE: denormal operand consumed
	ExDivZero   uint32 = 1 << 2 // ZE: finite / 0
	ExOverflow  uint32 = 1 << 3 // OE: rounded result overflowed to infinity
	ExUnderflow uint32 = 1 << 4 // UE: tiny result (denormal or zero from nonzero)
	ExPrecision uint32 = 1 << 5 // PE: result was rounded (inexact)

	ExAll uint32 = ExInvalid | ExDenormal | ExDivZero | ExOverflow | ExUnderflow | ExPrecision
)

// ExceptionNames maps single exception bits to their conventional names.
func ExceptionNames(flags uint32) []string {
	var out []string
	for _, e := range []struct {
		bit  uint32
		name string
	}{
		{ExInvalid, "Invalid"},
		{ExDenormal, "Denormal"},
		{ExDivZero, "DivZero"},
		{ExOverflow, "Overflow"},
		{ExUnderflow, "Underflow"},
		{ExPrecision, "Precision"},
	} {
		if flags&e.bit != 0 {
			out = append(out, e.name)
		}
	}
	return out
}

// IEEE-754 binary64 layout constants.
const (
	SignMask = uint64(1) << 63
	ExpMask  = uint64(0x7FF) << 52
	FracMask = (uint64(1) << 52) - 1
	QuietBit = uint64(1) << 51 // set => quiet NaN on x64

	ExpBias = 1023
)

// Bits returns the raw binary64 representation of f.
func Bits(f float64) uint64 { return math.Float64bits(f) }

// FromBits returns the float64 whose binary64 representation is b.
func FromBits(b uint64) float64 { return math.Float64frombits(b) }

// IsNaNBits reports whether b encodes any NaN.
func IsNaNBits(b uint64) bool {
	return b&ExpMask == ExpMask && b&FracMask != 0
}

// IsQuietNaNBits reports whether b encodes a quiet NaN.
func IsQuietNaNBits(b uint64) bool {
	return IsNaNBits(b) && b&QuietBit != 0
}

// IsSignalingNaNBits reports whether b encodes a signaling NaN.
func IsSignalingNaNBits(b uint64) bool {
	return IsNaNBits(b) && b&QuietBit == 0
}

// IsInfBits reports whether b encodes +/- infinity.
func IsInfBits(b uint64) bool {
	return b&ExpMask == ExpMask && b&FracMask == 0
}

// IsDenormal reports whether f is a nonzero subnormal number.
func IsDenormal(f float64) bool {
	b := Bits(f)
	return b&ExpMask == 0 && b&FracMask != 0
}

// IsZero reports whether f is +0 or -0.
func IsZero(f float64) bool { return Bits(f)&^SignMask == 0 }

// CanonicalNaN is the canonical quiet NaN x64 hardware generates
// (sign bit set, quiet bit set, remaining mantissa zero): 0xFFF8_0000_0000_0000.
const CanonicalNaN = SignMask | ExpMask | QuietBit

// Class describes the coarse IEEE class of a value.
type Class uint8

const (
	ClassZero Class = iota
	ClassDenormal
	ClassNormal
	ClassInf
	ClassQuietNaN
	ClassSignalingNaN
)

func (c Class) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassDenormal:
		return "denormal"
	case ClassNormal:
		return "normal"
	case ClassInf:
		return "inf"
	case ClassQuietNaN:
		return "qnan"
	case ClassSignalingNaN:
		return "snan"
	}
	return "invalid"
}

// Classify returns the IEEE class of bit pattern b.
func Classify(b uint64) Class {
	switch {
	case b&ExpMask == ExpMask && b&FracMask == 0:
		return ClassInf
	case b&ExpMask == ExpMask && b&QuietBit != 0:
		return ClassQuietNaN
	case b&ExpMask == ExpMask:
		return ClassSignalingNaN
	case b&^SignMask == 0:
		return ClassZero
	case b&ExpMask == 0:
		return ClassDenormal
	default:
		return ClassNormal
	}
}

// Op identifies a scalar double-precision arithmetic operation whose IEEE
// exception behaviour we can reproduce exactly.
type Op uint8

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpSqrt
	OpMin
	OpMax
)

func (op Op) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpSqrt:
		return "sqrt"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return "op?"
}

// Result carries the IEEE result of an operation together with the
// exception flags the operation raises under round-to-nearest-even.
type Result struct {
	Value float64
	Flags uint32
}

// Eval computes op(a, b) (b ignored for OpSqrt) in IEEE binary64 with
// round-to-nearest-even and returns the result plus the full set of
// exception flags the operation raises. The flags are exact: inexactness
// is decided with error-free transforms (2Sum, FMA residues), not
// heuristics.
//
// Semantics follow x64 SSE2 scalar instructions (addsd etc.):
//   - any SNaN input, or qNaN-producing combination of non-NaN inputs,
//     raises Invalid;
//   - a denormal input raises Denormal;
//   - finite/0 in div raises DivZero;
//   - overflow to infinity raises Overflow (+Precision);
//   - tiny and inexact results raise Underflow (+Precision);
//   - any rounding raises Precision.
func Eval(op Op, a, b float64) Result {
	var r Result

	ab, bb := Bits(a), Bits(b)
	unary := op == OpSqrt

	// Denormal operand detection precedes everything else on x64 when the
	// operand is actually consumed arithmetically.
	if IsDenormal(a) || (!unary && IsDenormal(b)) {
		r.Flags |= ExDenormal
	}

	// Signaling NaN inputs always raise Invalid.
	if IsSignalingNaNBits(ab) || (!unary && IsSignalingNaNBits(bb)) {
		r.Flags |= ExInvalid
		r.Value = quietedNaN(ab, bb, unary)
		return r
	}
	// Quiet NaN inputs propagate without Invalid (x64 semantics), except
	// min/max which return the second operand.
	if IsNaNBits(ab) || (!unary && IsNaNBits(bb)) {
		switch op {
		case OpMin, OpMax:
			// minsd/maxsd return src2 if either operand is NaN.
			r.Value = b
		default:
			r.Value = propagateNaN(ab, bb, unary)
		}
		return r
	}

	switch op {
	case OpAdd:
		r = evalAdd(a, b)
	case OpSub:
		r = evalAdd(a, -b)
	case OpMul:
		r = evalMul(a, b)
	case OpDiv:
		r = evalDiv(a, b)
	case OpSqrt:
		r = evalSqrt(a)
	case OpMin:
		r = evalMinMax(a, b, true)
	case OpMax:
		r = evalMinMax(a, b, false)
	}
	if IsDenormal(a) || (!unary && IsDenormal(b)) {
		r.Flags |= ExDenormal
	}
	return r
}

func quietedNaN(ab, bb uint64, unary bool) float64 {
	if IsNaNBits(ab) {
		return FromBits(ab | QuietBit)
	}
	if !unary && IsNaNBits(bb) {
		return FromBits(bb | QuietBit)
	}
	return FromBits(CanonicalNaN)
}

func propagateNaN(ab, bb uint64, unary bool) float64 {
	// x64 SSE: if src1 is NaN return quieted src1, else quieted src2.
	if IsNaNBits(ab) {
		return FromBits(ab | QuietBit)
	}
	if !unary {
		return FromBits(bb | QuietBit)
	}
	return FromBits(CanonicalNaN)
}

func evalAdd(a, b float64) Result {
	var r Result
	ia, ib := math.IsInf(a, 0), math.IsInf(b, 0)
	if ia && ib && math.Signbit(a) != math.Signbit(b) {
		// inf + (-inf): Invalid, canonical NaN.
		return Result{FromBits(CanonicalNaN), ExInvalid}
	}
	s := a + b
	r.Value = s
	if ia || ib {
		return r
	}
	if math.IsInf(s, 0) {
		r.Flags |= ExOverflow | ExPrecision
		return r
	}
	// 2Sum error-free transform: err == 0 iff a+b was exact.
	bv := s - a
	err := (a - (s - bv)) + (b - bv)
	if err != 0 {
		r.Flags |= ExPrecision
	}
	// Underflow: result is tiny (denormal range) and inexact.
	if IsDenormal(s) && err != 0 {
		r.Flags |= ExUnderflow
	}
	return r
}

func evalMul(a, b float64) Result {
	var r Result
	ia, ib := math.IsInf(a, 0), math.IsInf(b, 0)
	if (ia && IsZero(b)) || (ib && IsZero(a)) {
		return Result{FromBits(CanonicalNaN), ExInvalid}
	}
	p := a * b
	r.Value = p
	if ia || ib {
		return r
	}
	if math.IsInf(p, 0) {
		r.Flags |= ExOverflow | ExPrecision
		return r
	}
	if IsZero(p) {
		// A nonzero product that rounded all the way to zero (operand
		// zeros were handled above): always inexact + underflow.
		r.Flags |= ExPrecision | ExUnderflow
		return r
	}
	// FMA residue: err == 0 iff a*b was exact. The residue itself can
	// underflow when p is below ~2^-968 (the residue magnitude can be as
	// small as 2^(e-106)), so handle the whole tiny range by exact
	// power-of-two rescaling into the comfortably normal range.
	if math.Abs(p) < 0x1p-900 {
		// |p| < 2^-1022 implies |a| < 2^52 (since |b| >= 2^-1074), so
		// a*2^186 cannot overflow and the scaling is exact.
		sa := scaleUp186(a)
		sp := sa * b // normal-range product of the same real value * 2^186
		if math.FMA(sa, b, -sp) != 0 || scaleUp186(p) != sp {
			r.Flags |= ExPrecision | ExUnderflow
		}
		return r
	}
	if math.FMA(a, b, -p) != 0 {
		r.Flags |= ExPrecision
	}
	return r
}

// scaleUp186 multiplies by 2^186 exactly (in three exact power-of-two
// steps); callers guarantee no overflow.
func scaleUp186(x float64) float64 {
	return x * (1 << 62) * (1 << 62) * (1 << 62)
}

func evalDiv(a, b float64) Result {
	var r Result
	ia, ib := math.IsInf(a, 0), math.IsInf(b, 0)
	switch {
	case ia && ib:
		return Result{FromBits(CanonicalNaN), ExInvalid}
	case IsZero(a) && IsZero(b):
		return Result{FromBits(CanonicalNaN), ExInvalid}
	case IsZero(b) && !ia:
		return Result{a / b, ExDivZero}
	}
	q := a / b
	r.Value = q
	if ia || ib {
		return r
	}
	if math.IsInf(q, 0) {
		r.Flags |= ExOverflow | ExPrecision
		return r
	}
	if IsZero(q) {
		// Nonzero dividend, quotient rounded to zero: inexact underflow.
		r.Flags |= ExPrecision | ExUnderflow
		return r
	}
	if math.Abs(q) < 0x1p-900 || math.Abs(a) < 0x1p-900 {
		// The residue q·b − a has the dividend's magnitude scale, so a
		// tiny dividend (not just a tiny quotient) underflows it.
		// Tiny quotient: rescale the dividend by 2^186 (exact: |a| < 2^100
		// here since |q| < 2^-1022 and |b| <= 2^1024) and test in the
		// normal range.
		sa := scaleUp186(a)
		sq := sa / b
		if math.FMA(sq, b, -sa) != 0 || scaleUp186(q) != sq {
			r.Flags |= ExPrecision | ExUnderflow
		}
		return r
	}
	if math.FMA(q, b, -a) != 0 {
		r.Flags |= ExPrecision
	}
	return r
}

func evalSqrt(a float64) Result {
	var r Result
	if math.Signbit(a) && !IsZero(a) {
		return Result{FromBits(CanonicalNaN), ExInvalid}
	}
	s := math.Sqrt(a)
	r.Value = s
	if math.IsInf(s, 0) || IsZero(s) {
		return r
	}
	// Exactness via the FMA residue s·s − a. Near the bottom of the
	// normal range the residue itself would underflow and round to zero,
	// so rescale exactly by even powers of two first.
	sa, aa := s, a
	if a < 0x1p-900 {
		sa = s * 0x1p537           // exact: s < 2^-450
		aa = a * 0x1p537 * 0x1p537 // exact: a >= 2^-1074
	}
	if math.FMA(sa, sa, -aa) != 0 {
		r.Flags |= ExPrecision
	}
	return r
}

func evalMinMax(a, b float64, isMin bool) Result {
	// x64 minsd/maxsd: if a == b (incl. +0/-0) return src2; no exceptions
	// for non-NaN inputs.
	var v float64
	if isMin {
		if a < b {
			v = a
		} else {
			v = b
		}
	} else {
		if a > b {
			v = a
		} else {
			v = b
		}
	}
	return Result{Value: v}
}

// Compare performs an ordered comparison like ucomisd and reports the
// resulting predicate bits plus whether Invalid is raised (SNaN input).
type CompareResult struct {
	Less      bool
	Equal     bool
	Greater   bool
	Unordered bool
	Flags     uint32
}

// Compare compares a and b with ucomisd semantics: unordered if either is
// NaN; Invalid raised only for signaling NaNs (ucomisd) — comisd would
// raise for quiet NaNs too, selected by signalQuiet.
func Compare(a, b float64, signalQuiet bool) CompareResult {
	var c CompareResult
	ab, bb := Bits(a), Bits(b)
	if IsNaNBits(ab) || IsNaNBits(bb) {
		c.Unordered = true
		if IsSignalingNaNBits(ab) || IsSignalingNaNBits(bb) || signalQuiet {
			c.Flags |= ExInvalid
		}
		return c
	}
	switch {
	case a < b:
		c.Less = true
	case a > b:
		c.Greater = true
	default:
		c.Equal = true
	}
	return c
}

// NextAfter64 returns the next representable float64 after x towards y,
// used by interval arithmetic for outward rounding.
func NextAfter64(x, y float64) float64 { return math.Nextafter(x, y) }
