package fpmath

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// oracleEval computes op(a,b) and the Precision flag using math/big as an
// external oracle (big.Float arithmetic at high precision, compared with
// the rounded float64 result).
func oracleInexact(op Op, a, b, got float64) bool {
	if math.IsNaN(got) || math.IsInf(got, 0) {
		return false // oracle only used for finite results
	}
	const prec = 2400 // spans the full binary64 exponent + mantissa range
	ba := new(big.Float).SetPrec(prec).SetFloat64(a)
	bb := new(big.Float).SetPrec(prec).SetFloat64(b)
	exact := new(big.Float).SetPrec(prec)
	switch op {
	case OpAdd:
		exact.Add(ba, bb)
	case OpSub:
		exact.Sub(ba, bb)
	case OpMul:
		exact.Mul(ba, bb)
	case OpDiv:
		exact.Quo(ba, bb)
	case OpSqrt:
		exact.Sqrt(ba)
	default:
		return false
	}
	bg := new(big.Float).SetPrec(prec).SetFloat64(got)
	return exact.Cmp(bg) != 0
}

func finiteRand(u uint64) float64 {
	f := math.Float64frombits(u)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 1.5
	}
	return f
}

// TestEvalMatchesHardware checks the computed value equals Go's own IEEE
// arithmetic and the Precision flag matches the big.Float oracle, for all
// binary ops over random operands.
func TestEvalMatchesHardware(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv}
	f := func(ua, ub uint64, opSel uint8) bool {
		a, b := finiteRand(ua), finiteRand(ub)
		op := ops[int(opSel)%len(ops)]
		r := Eval(op, a, b)
		var want float64
		switch op {
		case OpAdd:
			want = a + b
		case OpSub:
			want = a - b
		case OpMul:
			want = a * b
		case OpDiv:
			want = a / b
		}
		if Bits(r.Value) != Bits(want) {
			t.Logf("op=%v a=%x b=%x got=%x want=%x", op, Bits(a), Bits(b), Bits(r.Value), Bits(want))
			return false
		}
		if math.IsInf(want, 0) || math.IsNaN(want) || IsDenormal(want) ||
			(want == 0 && !(a == 0 || b == 0)) || IsDenormal(a) || IsDenormal(b) {
			return true // flag oracle below only covers the normal range
		}
		gotInexact := r.Flags&ExPrecision != 0
		wantInexact := oracleInexact(op, a, b, want)
		if gotInexact != wantInexact {
			t.Logf("op=%v a=%x b=%x inexact=%v want=%v", op, Bits(a), Bits(b), gotInexact, wantInexact)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSqrtFlags checks sqrt results and inexactness.
func TestSqrtFlags(t *testing.T) {
	f := func(ua uint64) bool {
		a := math.Abs(finiteRand(ua))
		r := Eval(OpSqrt, a, 0)
		want := math.Sqrt(a)
		if Bits(r.Value) != Bits(want) {
			return false
		}
		if math.IsInf(want, 0) || IsDenormal(want) || IsDenormal(a) || a == 0 {
			return true
		}
		return (r.Flags&ExPrecision != 0) == oracleInexact(OpSqrt, a, 0, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEvalSpecialCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name      string
		op        Op
		a, b      float64
		wantNaN   bool
		wantFlags uint32
	}{
		{"inf-inf", OpSub, inf, inf, true, ExInvalid},
		{"inf+(-inf)", OpAdd, inf, -inf, true, ExInvalid},
		{"0*inf", OpMul, 0, inf, true, ExInvalid},
		{"inf*0", OpMul, inf, 0, true, ExInvalid},
		{"0/0", OpDiv, 0, 0, true, ExInvalid},
		{"inf/inf", OpDiv, inf, inf, true, ExInvalid},
		{"1/0", OpDiv, 1, 0, false, ExDivZero},
		{"-1/0", OpDiv, -1, 0, false, ExDivZero},
		{"sqrt(-1)", OpSqrt, -1, 0, true, ExInvalid},
		{"exact add", OpAdd, 1, 2, false, 0},
		{"exact mul", OpMul, 3, 4, false, 0},
		{"exact div", OpDiv, 8, 2, false, 0},
		{"exact sqrt", OpSqrt, 9, 0, false, 0},
		{"inexact div", OpDiv, 1, 3, false, ExPrecision},
		{"overflow", OpMul, 1e308, 1e308, false, ExOverflow | ExPrecision},
		{"underflow", OpMul, 1e-308, 1e-308, false, ExUnderflow | ExPrecision | ExDenormal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Eval(tc.op, tc.a, tc.b)
			if math.IsNaN(r.Value) != tc.wantNaN {
				t.Errorf("NaN=%v want %v (val=%v)", math.IsNaN(r.Value), tc.wantNaN, r.Value)
			}
			if r.Flags != tc.wantFlags {
				t.Errorf("flags=%v want %v", ExceptionNames(r.Flags), ExceptionNames(tc.wantFlags))
			}
		})
	}
}

func TestDenormalOperandFlag(t *testing.T) {
	d := math.Float64frombits(1) // smallest subnormal
	r := Eval(OpAdd, d, 1.0)
	if r.Flags&ExDenormal == 0 {
		t.Error("denormal operand did not raise DE")
	}
	r = Eval(OpMul, 1.5, 2.0)
	if r.Flags&ExDenormal != 0 {
		t.Error("normal operands raised DE")
	}
}

func TestSNaNHandling(t *testing.T) {
	snan := FromBits(ExpMask | 1) // signaling NaN
	qnan := math.NaN()
	r := Eval(OpAdd, snan, 1)
	if r.Flags&ExInvalid == 0 {
		t.Error("SNaN input did not raise Invalid")
	}
	if !IsQuietNaNBits(Bits(r.Value)) {
		t.Error("SNaN result not quieted")
	}
	r = Eval(OpAdd, qnan, 1)
	if r.Flags&ExInvalid != 0 {
		t.Error("QNaN input raised Invalid on add")
	}
	if !math.IsNaN(r.Value) {
		t.Error("QNaN did not propagate")
	}
}

func TestMinMaxSemantics(t *testing.T) {
	// x64 minsd/maxsd return src2 when either operand is NaN or equal.
	nan := math.NaN()
	if r := Eval(OpMin, nan, 5); r.Value != 5 {
		t.Errorf("min(NaN,5) = %v, want 5", r.Value)
	}
	if r := Eval(OpMax, 5, nan); !math.IsNaN(r.Value) {
		t.Errorf("max(5,NaN) = %v, want NaN", r.Value)
	}
	if r := Eval(OpMin, 2, 3); r.Value != 2 {
		t.Errorf("min(2,3) = %v", r.Value)
	}
	if r := Eval(OpMax, 2, 3); r.Value != 3 {
		t.Errorf("max(2,3) = %v", r.Value)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		bits uint64
		want Class
	}{
		{0, ClassZero},
		{SignMask, ClassZero},
		{Bits(1.5), ClassNormal},
		{1, ClassDenormal},
		{ExpMask, ClassInf},
		{ExpMask | SignMask, ClassInf},
		{ExpMask | QuietBit, ClassQuietNaN},
		{ExpMask | 1, ClassSignalingNaN},
		{CanonicalNaN, ClassQuietNaN},
	}
	for _, tc := range cases {
		if got := Classify(tc.bits); got != tc.want {
			t.Errorf("Classify(%#x) = %v, want %v", tc.bits, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	c := Compare(1, 2, false)
	if !c.Less || c.Equal || c.Greater || c.Unordered {
		t.Errorf("1 vs 2: %+v", c)
	}
	c = Compare(2, 2, false)
	if !c.Equal {
		t.Errorf("2 vs 2: %+v", c)
	}
	c = Compare(math.NaN(), 2, false)
	if !c.Unordered || c.Flags&ExInvalid != 0 {
		t.Errorf("qnan ucomisd: %+v", c)
	}
	c = Compare(math.NaN(), 2, true)
	if c.Flags&ExInvalid == 0 {
		t.Error("qnan comisd should raise Invalid")
	}
	snan := FromBits(ExpMask | 7)
	c = Compare(snan, 2, false)
	if c.Flags&ExInvalid == 0 {
		t.Error("snan ucomisd should raise Invalid")
	}
}

func TestTinyMulDivFlags(t *testing.T) {
	// Exact tiny product: 2^-537 * 2^-537 = 2^-1074 (smallest subnormal,
	// exact): Precision must NOT be raised.
	a := math.Ldexp(1, -537)
	r := Eval(OpMul, a, a)
	if r.Value != math.Ldexp(1, -1074) {
		t.Fatalf("2^-537^2 = %g", r.Value)
	}
	if r.Flags&ExPrecision != 0 {
		t.Errorf("exact subnormal product flagged inexact: %v", ExceptionNames(r.Flags))
	}
	// Inexact tiny product.
	r = Eval(OpMul, math.Ldexp(1.5, -537), math.Ldexp(1.000000001, -537))
	if r.Flags&(ExPrecision|ExUnderflow) != ExPrecision|ExUnderflow {
		t.Errorf("inexact tiny product flags: %v", ExceptionNames(r.Flags))
	}
	// Exact tiny quotient: 2^-1074 = 2^-1000 / 2^74.
	r = Eval(OpDiv, math.Ldexp(1, -1000), math.Ldexp(1, 74))
	if r.Flags&ExPrecision != 0 {
		t.Errorf("exact tiny quotient flagged inexact: %v", ExceptionNames(r.Flags))
	}
}

func TestExceptionNames(t *testing.T) {
	names := ExceptionNames(ExInvalid | ExPrecision)
	if len(names) != 2 || names[0] != "Invalid" || names[1] != "Precision" {
		t.Errorf("names = %v", names)
	}
	if ExceptionNames(0) != nil {
		t.Error("no flags should give no names")
	}
}
