package kernel_test

import (
	"testing"

	"fpvm/internal/isa"
	"fpvm/internal/kernel"
)

// buildThreadProgram: main spawns a worker that adds its tid-scaled value
// into a shared cell, then both threads exit. Layout:
//
//	main:   mov rdi, worker; mov rsi, childStack; mov rax, 56; syscall
//	        (rax = tid) ; spin until [cell] != 0 ; exit(0)
//	worker: mov [cell], 7 ; exit(0)
func buildThreadProgram(t *testing.T, k *kernel.Kernel) *kernel.Process {
	t.Helper()
	const cell = 0x800000
	const childStack = 0x60A000

	// Assemble with explicit layout: compute worker address after main.
	mk := func(workerAddr uint64) []isa.Inst {
		return []isa.Inst{
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), int64(workerAddr)),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RSI), childStack),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysClone),
			isa.MakeNullary(isa.SYSCALL),
			// spin: mov rbx, [cell]; cmp rbx, 0; je spin
			isa.MakeRM(isa.MOV64RM, isa.GPR(isa.RBX), isa.MemAbs(cell)),
			isa.MakeMI(isa.CMP64I, isa.GPR(isa.RBX), 0),
			isa.MakeRel(isa.JE, 0), // patched to jump back to the spin load
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysExit),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), 0),
			isa.MakeNullary(isa.SYSCALL),
			// worker:
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RCX), 7),
			isa.MakeRM(isa.MOV64MR, isa.GPR(isa.RCX), isa.MemAbs(cell)),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysExit),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), 0),
			isa.MakeNullary(isa.SYSCALL),
		}
	}

	// Two-pass: lengths are stable, compute offsets with a dummy address.
	insts := mk(0)
	offs := make([]int, len(insts)+1)
	for i := range insts {
		l, err := isa.EncodedLen(&insts[i])
		if err != nil {
			t.Fatal(err)
		}
		offs[i+1] = offs[i] + l
	}
	workerAddr := uint64(codeBase + offs[10])
	insts = mk(workerAddr)
	// Patch the spin branch: JE at index 6 targets the load at index 4.
	insts[6].Imm = int64(offs[4]) - int64(offs[7])

	p := buildProcess(t, k, insts...)
	return p
}

func TestCloneAndJoin(t *testing.T) {
	k := kernel.New()
	p := buildThreadProgram(t, k)
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 0 {
		t.Errorf("exit %d", p.ExitCode)
	}
	v, err := p.M.Mem.ReadUint64(0x800000)
	if err != nil || v != 7 {
		t.Errorf("cell = %d, %v", v, err)
	}
	if k.Stats.ThreadsCreated != 1 {
		t.Errorf("threads created: %d", k.Stats.ThreadsCreated)
	}
	if k.Stats.ContextSwitches == 0 {
		t.Error("no context switches")
	}
}

func TestOnThreadStartHook(t *testing.T) {
	k := kernel.New()
	p := buildThreadProgram(t, k)
	var tids []int
	p.OnThreadStart = func(tid int) { tids = append(tids, tid) }
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(tids) != 1 || tids[0] != 2 {
		t.Errorf("thread start hooks: %v", tids)
	}
}

func TestCloneBadStack(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k,
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), codeBase),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RSI), 0), // bad stack
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysClone),
		isa.MakeNullary(isa.SYSCALL),
	)
	if err := p.Run(0); err == nil {
		t.Error("clone with null stack succeeded")
	}
}

func TestExitGroupTerminatesAllThreads(t *testing.T) {
	k := kernel.New()
	// main clones a spinning worker, then exit_group(5)s: the process
	// must end even though the worker never exits.
	const childStack = 0x60A000
	spin := isa.MakeRel(isa.JMP, 0)
	spinLen, _ := isa.EncodedLen(&spin)
	spin.Imm = -int64(spinLen)

	mk := func(workerAddr uint64) []isa.Inst {
		return []isa.Inst{
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), int64(workerAddr)),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RSI), childStack),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysClone),
			isa.MakeNullary(isa.SYSCALL),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysExitGroup),
			isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), 5),
			isa.MakeNullary(isa.SYSCALL),
			spin, // worker: jmp self
		}
	}
	insts := mk(0)
	off := 0
	for i := 0; i < 7; i++ {
		l, _ := isa.EncodedLen(&insts[i])
		off += l
	}
	insts = mk(uint64(codeBase + off))
	p := buildProcess(t, k, insts...)
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 5 {
		t.Errorf("exit_group code %d", p.ExitCode)
	}
}

func TestAllCPUs(t *testing.T) {
	k := kernel.New()
	p := buildThreadProgram(t, k)
	// Before any clone: one CPU (the machine's).
	if got := p.AllCPUs(); len(got) != 1 || got[0] != &p.M.CPU {
		t.Errorf("single-thread AllCPUs: %d", len(got))
	}
	if p.CurrentThread() != 1 {
		t.Error("current thread before clone")
	}
	// Step until the clone happens, then expect two register sets.
	for i := 0; i < 10_000 && k.Stats.ThreadsCreated == 0; i++ {
		if !p.Step() {
			t.Fatal("process exited before clone")
		}
	}
	if got := p.AllCPUs(); len(got) != 2 {
		t.Errorf("post-clone AllCPUs: %d", len(got))
	}
	if len(p.Threads()) != 2 {
		t.Error("thread table")
	}
}

// TestThreadSnapshotRoundTrip: the checkpoint subsystem's view of the
// scheduler. A snapshot taken mid-run with two live threads is
// self-contained (by-value CPU copies, current thread's live registers
// folded in) and restoring it reinstates the table, the rotation, and
// the current thread's registers into the machine.
func TestThreadSnapshotRoundTrip(t *testing.T) {
	k := kernel.New()
	p := buildThreadProgram(t, k)

	// Never-threaded: empty snapshot, and restoring it is the identity.
	if st := p.SnapshotThreads(); len(st.Threads) != 0 {
		t.Fatalf("fresh process snapshot has %d threads", len(st.Threads))
	}
	p.RestoreThreads(kernel.ThreadState{})

	for i := 0; i < 10_000 && k.Stats.ThreadsCreated == 0; i++ {
		if !p.Step() {
			t.Fatal("process exited before clone")
		}
	}
	st := p.SnapshotThreads()
	if len(st.Threads) != 2 {
		t.Fatalf("post-clone snapshot has %d threads, want 2", len(st.Threads))
	}
	wantRIP := st.Threads[st.Current].CPU.RIP
	if wantRIP != p.M.CPU.RIP {
		t.Errorf("snapshot did not fold live registers: %#x vs %#x", wantRIP, p.M.CPU.RIP)
	}

	// Diverge, then rewind. The snapshot must be unaffected by the
	// machine's progress (by-value copies).
	for i := 0; i < 50; i++ {
		if !p.Step() {
			break
		}
	}
	p.RestoreThreads(st)
	if p.M.CPU.RIP != wantRIP {
		t.Errorf("restore left RIP %#x, want %#x", p.M.CPU.RIP, wantRIP)
	}
	if got := p.SnapshotThreads(); len(got.Threads) != 2 || got.Current != st.Current {
		t.Errorf("restore reinstated %d threads current %d, want 2/%d",
			len(got.Threads), got.Current, st.Current)
	}
	// Restored table must not alias the snapshot: mutating the live CPU
	// leaves the snapshot's copy intact for a later rollback.
	p.M.CPU.RIP = 0xDEAD
	if st.Threads[st.Current].CPU.RIP != wantRIP {
		t.Error("snapshot aliased the live CPU")
	}
	p.RestoreThreads(st)
	if p.M.CPU.RIP != wantRIP {
		t.Error("snapshot not reusable for a second restore")
	}
}
