package kernel_test

import (
	"strings"
	"testing"

	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/kernel"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
	"fpvm/internal/obj"
)

const codeBase = 0x400000

// buildProcess assembles insts (plus trailing hlt) into a fresh process.
func buildProcess(t *testing.T, k *kernel.Kernel, insts ...isa.Inst) *kernel.Process {
	t.Helper()
	as := mem.NewAddressSpace()
	var code []byte
	addr := uint64(codeBase)
	for i := range insts {
		insts[i].Addr = addr
		enc, err := isa.Encode(&insts[i])
		if err != nil {
			t.Fatal(err)
		}
		code = append(code, enc...)
		addr += uint64(len(enc))
	}
	hlt := isa.MakeNullary(isa.HLT)
	enc, _ := isa.Encode(&hlt)
	code = append(code, enc...)
	as.Map("code", codeBase, uint64(len(code)), mem.PermRX)
	as.Map("code-init", codeBase, uint64(len(code)), mem.PermRWX)
	if err := as.Write(codeBase, code); err != nil {
		t.Fatal(err)
	}
	as.Map("code", codeBase, uint64(len(code)), mem.PermRX)
	as.Map("stack", 0x600000, 0x10000, mem.PermRW)
	as.Map("data", 0x800000, 4096, mem.PermRW)

	m := machine.New(as)
	m.CPU.RIP = codeBase
	m.CPU.GPR[isa.RSP] = 0x60F000
	return kernel.NewProcess(k, m, "test")
}

func divsdTrap() isa.Inst {
	return isa.MakeRM(isa.DIVSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1))
}

func TestSignalDelivery(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, divsdTrap())
	p.M.CPU.MXCSR = machine.MXCSRTrapAll
	p.M.CPU.XMM[0][0] = fpmath.Bits(1)
	p.M.CPU.XMM[1][0] = fpmath.Bits(3)

	handled := 0
	p.Sigaction(kernel.SIGFPE, func(uc *kernel.Ucontext) {
		handled++
		if uc.Sig != kernel.SIGFPE || uc.FPFlags&fpmath.ExPrecision == 0 {
			t.Errorf("uc: sig=%d flags=%#x", uc.Sig, uc.FPFlags)
		}
		// Emulate: write the quotient, skip the instruction.
		uc.CPU.XMM[0][0] = fpmath.Bits(1.0 / 3.0)
		in, err := p.M.FetchDecode(uc.CPU.RIP)
		if err != nil {
			t.Fatal(err)
		}
		uc.CPU.RIP += uint64(in.Len)
	})
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times", handled)
	}
	if got := fpmath.FromBits(p.M.CPU.XMM[0][0]); got != 1.0/3.0 {
		t.Errorf("result %v", got)
	}
	if k.Stats.SignalsFPE != 1 || k.Stats.FPTraps != 1 {
		t.Errorf("stats: %+v", k.Stats)
	}
	wantCycles := k.Costs.SignalDeliver + k.Costs.Sigreturn
	if k.Stats.SignalCycles != wantCycles {
		t.Errorf("signal cycles %d want %d", k.Stats.SignalCycles, wantCycles)
	}
}

func TestShortCircuitDelivery(t *testing.T) {
	k := kernel.New()
	k.LoadModule()
	p := buildProcess(t, k, divsdTrap())
	p.M.CPU.MXCSR = machine.MXCSRTrapAll
	p.M.CPU.XMM[0][0] = fpmath.Bits(1)
	p.M.CPU.XMM[1][0] = fpmath.Bits(3)

	if err := p.RegisterFPVM(func(uc *kernel.Ucontext) {
		uc.CPU.XMM[0][0] = fpmath.Bits(1.0 / 3.0)
		in, _ := p.M.FetchDecode(uc.CPU.RIP)
		uc.CPU.RIP += uint64(in.Len)
	}); err != nil {
		t.Fatal(err)
	}
	if !p.FPVMRegistered() {
		t.Fatal("not registered")
	}
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Stats.ShortCircuits != 1 || k.Stats.SignalsFPE != 0 {
		t.Errorf("stats: %+v", k.Stats)
	}
	if k.Stats.ShortCycles >= k.Costs.SignalDeliver {
		t.Errorf("short path cost %d not below signal delivery %d",
			k.Stats.ShortCycles, k.Costs.SignalDeliver)
	}
}

func TestRegisterWithoutModuleFails(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k)
	if err := p.RegisterFPVM(func(*kernel.Ucontext) {}); err == nil {
		t.Error("registration without module succeeded")
	}
	p.UnregisterFPVM()
	if p.FPVMRegistered() {
		t.Error("still registered")
	}
}

func TestUnhandledSignalKillsProcess(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, divsdTrap())
	p.M.CPU.MXCSR = machine.MXCSRTrapAll
	p.M.CPU.XMM[0][0] = fpmath.Bits(1)
	p.M.CPU.XMM[1][0] = fpmath.Bits(3)
	err := p.Run(0)
	if err == nil || !strings.Contains(err.Error(), "SIGFPE") {
		t.Errorf("err = %v", err)
	}
}

func TestSyscallWriteExit(t *testing.T) {
	k := kernel.New()
	// write(1, buf, 5); exit(3)
	p := buildProcess(t, k,
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysWrite),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), 1),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RSI), 0x800000),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDX), 5),
		isa.MakeNullary(isa.SYSCALL),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), kernel.SysExit),
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RDI), 3),
		isa.MakeNullary(isa.SYSCALL),
	)
	if err := p.M.Mem.Write(0x800000, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Stdout.String() != "hello" {
		t.Errorf("stdout %q", p.Stdout.String())
	}
	if p.ExitCode != 3 {
		t.Errorf("exit %d", p.ExitCode)
	}
	if k.Stats.Syscalls != 2 {
		t.Errorf("syscalls %d", k.Stats.Syscalls)
	}
}

func TestBreakpointHook(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, isa.MakeNullary(isa.INT3))
	hooked := false
	p.BreakpointHook = func(uc *kernel.Ucontext) bool {
		hooked = true
		return true
	}
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Error("hook not invoked")
	}
	if k.Stats.Breakpoints != 1 {
		t.Errorf("breakpoints %d", k.Stats.Breakpoints)
	}
}

func TestSIGTRAPDelivery(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, isa.MakeNullary(isa.INT3))
	got := 0
	p.Sigaction(kernel.SIGTRAP, func(uc *kernel.Ucontext) { got++ })
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 1 || k.Stats.SignalsTRAP != 1 {
		t.Errorf("trap deliveries %d / %d", got, k.Stats.SignalsTRAP)
	}
}

func TestHostCall(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, isa.MakeM(isa.CALLR, isa.GPR(isa.RAX)))
	called := false
	addr := p.BindHostAuto(func(pp *kernel.Process) error {
		called = true
		pp.M.CPU.GPR[isa.RBX] = 42
		return nil
	})
	if addr < obj.HostBase {
		t.Fatalf("host addr %#x below host base", addr)
	}
	p.M.CPU.GPR[isa.RAX] = addr
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if !called || p.M.CPU.GPR[isa.RBX] != 42 {
		t.Error("host function did not run")
	}
	if k.Stats.HostCalls != 1 {
		t.Errorf("host calls %d", k.Stats.HostCalls)
	}
}

func TestUnboundHostCallDies(t *testing.T) {
	k := kernel.New()
	p := buildProcess(t, k, isa.MakeM(isa.CALLR, isa.GPR(isa.RAX)))
	p.M.CPU.GPR[isa.RAX] = obj.HostBase + 0x1234
	if err := p.Run(0); err == nil {
		t.Error("call to unbound host address succeeded")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	k := kernel.New()
	// Infinite loop: jmp self (-jmpLen displacement).
	jmp := isa.MakeRel(isa.JMP, 0)
	l, _ := isa.EncodedLen(&jmp)
	jmp.Imm = -int64(l)
	p := buildProcess(t, k, jmp)
	if err := p.Run(1000); err == nil {
		t.Error("runaway loop not bounded")
	}
}
