// Package kernel simulates the OS layer between the machine and FPVM: it
// dispatches hardware events (#XF floating point traps, #BP breakpoints,
// syscalls) and delivers them to user space either through general-purpose
// POSIX-style signals (SIGFPE/SIGTRAP + sigreturn) or — when the FPVM
// kernel module is loaded and the process has registered through
// /dev/fpvm — through the short-circuit landing-pad path of §3.
//
// All costs are virtual cycles charged to the machine's clock, using the
// paper's measured constants by default.
package kernel

import (
	"bytes"
	"fmt"

	"fpvm/internal/faultinject"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/obj"
)

// Signal numbers (Linux x64 values).
const (
	SIGTRAP = 5
	SIGFPE  = 8
	SIGSEGV = 11
)

// Costs models the cycle cost of each delegation mechanism. Defaults come
// from the paper's testbed (§2.3, §3, Figure 2/3).
type Costs struct {
	HWDispatch    uint64 // hardware -> kernel exception dispatch (~380)
	SignalDeliver uint64 // kernel -> user POSIX signal delivery (~3800)
	Sigreturn     uint64 // sigreturn syscall on handler exit (~1800)
	ShortDeliver  uint64 // short-circuit delivery incl. iretq (~250)
	ShortReturn   uint64 // unwind back to the faulting context (~100)
	LandingPad    uint64 // FPVM entry/exit stub ucontext save/restore (~60)
	SyscallBase   uint64 // syscall entry/exit (~200)

	// Future-work hardware (paper §8: RISC-V extensions): user-level FP
	// trap delivery that never enters the kernel, and hardware box-escape
	// assists. Deliver + return round trip.
	HWUserDeliver uint64 // direct hardware vector to the user handler (~100)
	HWUserReturn  uint64 // hardware return to the faulting context (~50)
}

// DefaultCosts returns the paper's testbed constants.
func DefaultCosts() Costs {
	return Costs{
		HWDispatch:    380,
		SignalDeliver: 3800,
		Sigreturn:     1800,
		ShortDeliver:  250,
		ShortReturn:   100,
		LandingPad:    60,
		SyscallBase:   200,
		HWUserDeliver: 100,
		HWUserReturn:  50,
	}
}

// Ucontext is the state snapshot a handler receives, mirroring the role of
// the POSIX ucontext_t (and the "fake" ucontext the landing pad builds).
// Handlers mutate it; the kernel (or exit stub) restores it to the CPU.
type Ucontext struct {
	CPU     machine.CPU
	Sig     int
	FPFlags uint32 // for SIGFPE: the raised MXCSR exception bits
}

// SignalHandler is a registered user-space signal handler.
type SignalHandler func(uc *Ucontext)

// Syscall numbers understood by the simulated kernel.
const (
	SysWrite = 1  // write(fd=rdi, buf=rsi, len=rdx) -> rax
	SysExit  = 60 // exit(code=rdi)
	SysBrk   = 12 // unused placeholder
)

// Stats counts delegation events for telemetry.
type Stats struct {
	FPTraps        uint64 // #XF events
	Breakpoints    uint64 // #BP events
	SignalsFPE     uint64 // delivered via POSIX path
	SignalsTRAP    uint64
	ShortCircuits  uint64 // delivered via kernel module path
	Syscalls       uint64
	HostCalls      uint64
	SignalCycles   uint64 // cycles spent in delegation+return, POSIX path
	ShortCycles    uint64 // cycles spent in delegation+return, module path
	DispatchCycles uint64 // hardware dispatch cycles (hw)

	ThreadsCreated  uint64 // clone() calls
	ContextSwitches uint64 // scheduler rotations

	HWUserDeliveries uint64 // future-work user-level FP trap deliveries
	BoxEscapes       uint64 // future-work hardware box-escape events

	// DeliveryRetries counts trap deliveries re-driven after an injected
	// kernel.deliver fault (a lost or corrupted delivery re-dispatched by
	// the hardware/kernel retry path).
	DeliveryRetries uint64
}

// Kernel is the per-boot kernel state.
type Kernel struct {
	Costs Costs

	// ModuleLoaded reports whether the FPVM kernel module (providing
	// /dev/fpvm and the #XF short-circuit path) is available.
	ModuleLoaded bool

	Stats Stats
}

// New returns a kernel with default costs and no module loaded.
func New() *Kernel {
	return &Kernel{Costs: DefaultCosts()}
}

// LoadModule makes /dev/fpvm available (insmod fpvm.ko).
func (k *Kernel) LoadModule() { k.ModuleLoaded = true }

// HostFunc implements a function in the host bridge range (libc/libm stubs
// and FPVM runtime entry points). It runs with the CPU at the callee: the
// return address is on the stack, arguments follow the System V-ish ABI
// (ints: rdi, rsi, rdx, rcx, r8, r9; floats: xmm0-7; return rax / xmm0).
type HostFunc func(p *Process) error

// Process couples a machine with kernel services: signal handlers, the
// /dev/fpvm registration, host functions, and standard output.
type Process struct {
	M *machine.Machine
	K *Kernel

	Name string

	handlers map[int]SignalHandler

	// FPVM short-circuit registration (ioctl on /dev/fpvm).
	fpvmRegistered bool
	fpvmEntry      func(uc *Ucontext)

	// Future-work hardware paths (§8): user-level trap vector and the
	// box-escape handler.
	hwUserEntry   func(uc *Ucontext)
	boxEscapeHook func(uc *Ucontext, addr uint64) error

	hostFuncs map[uint64]HostFunc

	Stdout bytes.Buffer

	Exited   bool
	ExitCode int
	Err      error

	// BreakpointHook, when set, is consulted on #BP before signal
	// delivery (used by tests and tooling).
	BreakpointHook func(uc *Ucontext) bool

	// OnThreadStart is invoked after a clone() creates a thread — the
	// interception point FPVM uses to account per-thread contexts
	// (paper §2.1).
	OnThreadStart func(tid int)

	// Inject, when set, is consulted at the kernel.deliver fault site on
	// every FP trap delivery. An injected fault models a lost delivery:
	// the kernel re-drives the dispatch (bounded), charging the dispatch
	// cost again and counting Stats.DeliveryRetries.
	Inject *faultinject.Injector

	// thread table (nil until the first clone; single-threaded processes
	// never pay for it).
	threads []*Thread
	current int
	quantum int
}

// NewProcess wraps m under kernel k.
func NewProcess(k *Kernel, m *machine.Machine, name string) *Process {
	return &Process{
		M:         m,
		K:         k,
		Name:      name,
		handlers:  make(map[int]SignalHandler),
		hostFuncs: make(map[uint64]HostFunc),
	}
}

// Sigaction registers a user-space handler for sig.
func (p *Process) Sigaction(sig int, h SignalHandler) { p.handlers[sig] = h }

// RegisterFPVM performs the /dev/fpvm open + ioctl registration of the
// process's landing-pad entry point. It fails if the module is not loaded,
// in which case the caller must fall back to signals (§3.1: unregistered
// processes keep normal delivery).
func (p *Process) RegisterFPVM(entry func(uc *Ucontext)) error {
	if !p.K.ModuleLoaded {
		return fmt.Errorf("kernel: /dev/fpvm not present (module not loaded)")
	}
	p.fpvmRegistered = true
	p.fpvmEntry = entry
	return nil
}

// UnregisterFPVM revokes the registration (device close / process exit).
func (p *Process) UnregisterFPVM() {
	p.fpvmRegistered = false
	p.fpvmEntry = nil
}

// FPVMRegistered reports whether the short-circuit path is active.
func (p *Process) FPVMRegistered() bool { return p.fpvmRegistered }

// EnableHWUserTraps installs the future-work hardware user-level FP trap
// vector: #XF is delivered straight to entry without entering the kernel
// (the paper's proposed RISC-V "very fast floating point trap support").
func (p *Process) EnableHWUserTraps(entry func(uc *Ucontext)) {
	p.hwUserEntry = entry
}

// SetBoxEscapeHook installs the handler for hardware box-escape events
// (requires machine.BoxEscapeCheck); the handler demotes the word at addr
// and the faulting load re-executes.
func (p *Process) SetBoxEscapeHook(h func(uc *Ucontext, addr uint64) error) {
	p.boxEscapeHook = h
}

// BindHost installs a host bridge function at addr (must be in the host
// range).
func (p *Process) BindHost(addr uint64, fn HostFunc) {
	p.hostFuncs[addr] = fn
}

// BindHostAuto installs fn at the next free host bridge address and
// returns it.
func (p *Process) BindHostAuto(fn HostFunc) uint64 {
	addr := obj.HostBase + uint64(len(p.hostFuncs)+1)*16
	for p.hostFuncs[addr] != nil {
		addr += 16
	}
	p.hostFuncs[addr] = fn
	return addr
}

// snapshot builds a Ucontext from current CPU state.
func (p *Process) snapshot(sig int, flags uint32) *Ucontext {
	return &Ucontext{CPU: p.M.CPU, Sig: sig, FPFlags: flags}
}

// restore applies a (possibly mutated) Ucontext back to the CPU.
func (p *Process) restore(uc *Ucontext) { p.M.CPU = uc.CPU }

// maxRedeliveries bounds re-driven deliveries per trap so an injector
// armed with every=1 cannot livelock the kernel.
const maxRedeliveries = 16

// injectDeliveryFaults models lost trap deliveries: each injected
// kernel.deliver fault costs one extra hardware dispatch and is resolved
// by the retry. Delivery always eventually proceeds.
func (p *Process) injectDeliveryFaults() {
	for i := 0; i < maxRedeliveries; i++ {
		if p.Inject.Check(faultinject.SiteKernelDeliver, p.M.CPU.RIP) == nil {
			return
		}
		p.K.Stats.DeliveryRetries++
		p.M.Charge(p.K.Costs.HWDispatch)
		p.Inject.Resolve(faultinject.SiteKernelDeliver, faultinject.Retried)
	}
}

// deliverFPTrap routes a #XF event to user space.
func (p *Process) deliverFPTrap(ev machine.Event) error {
	k := p.K
	k.Stats.FPTraps++
	p.injectDeliveryFaults()

	if p.hwUserEntry != nil {
		// Future-work hardware: the CPU vectors directly to user space;
		// the kernel is never involved.
		k.Stats.HWUserDeliveries++
		p.M.Charge(k.Costs.HWUserDeliver)
		uc := p.snapshot(SIGFPE, ev.FPFlags)
		p.hwUserEntry(uc)
		p.restore(uc)
		p.M.Charge(k.Costs.HWUserReturn)
		return nil
	}

	k.Stats.DispatchCycles += k.Costs.HWDispatch
	p.M.Charge(k.Costs.HWDispatch)

	if p.fpvmRegistered && k.ModuleLoaded {
		// Short-circuit path: minimal frame edit + iretq to the landing
		// pad, which builds a fake ucontext, runs the FPVM handler, and
		// unwinds directly back (no sigreturn).
		k.Stats.ShortCircuits++
		cost := k.Costs.ShortDeliver + k.Costs.LandingPad
		p.M.Charge(cost)
		uc := p.snapshot(SIGFPE, ev.FPFlags)
		p.fpvmEntry(uc)
		p.restore(uc)
		ret := k.Costs.LandingPad + k.Costs.ShortReturn
		p.M.Charge(ret)
		k.Stats.ShortCycles += cost + ret
		return nil
	}

	h, ok := p.handlers[SIGFPE]
	if !ok {
		return fmt.Errorf("kernel: unhandled SIGFPE at %#x (flags %#x)", p.M.CPU.RIP, ev.FPFlags)
	}
	k.Stats.SignalsFPE++
	p.M.Charge(k.Costs.SignalDeliver)
	uc := p.snapshot(SIGFPE, ev.FPFlags)
	h(uc)
	p.restore(uc)
	p.M.Charge(k.Costs.Sigreturn)
	k.Stats.SignalCycles += k.Costs.SignalDeliver + k.Costs.Sigreturn
	return nil
}

// deliverBreakpoint routes a #BP (int3) event.
func (p *Process) deliverBreakpoint() error {
	k := p.K
	k.Stats.Breakpoints++
	k.Stats.DispatchCycles += k.Costs.HWDispatch
	p.M.Charge(k.Costs.HWDispatch)

	if p.BreakpointHook != nil {
		uc := p.snapshot(SIGTRAP, 0)
		if p.BreakpointHook(uc) {
			p.restore(uc)
			return nil
		}
	}

	h, ok := p.handlers[SIGTRAP]
	if !ok {
		return fmt.Errorf("kernel: unhandled SIGTRAP at %#x", p.M.CPU.RIP)
	}
	k.Stats.SignalsTRAP++
	p.M.Charge(k.Costs.SignalDeliver)
	uc := p.snapshot(SIGTRAP, 0)
	h(uc)
	p.restore(uc)
	p.M.Charge(k.Costs.Sigreturn)
	k.Stats.SignalCycles += k.Costs.SignalDeliver + k.Costs.Sigreturn
	return nil
}

// syscall implements the tiny syscall surface.
func (p *Process) syscall() error {
	k := p.K
	k.Stats.Syscalls++
	p.M.Charge(k.Costs.SyscallBase)
	cpu := &p.M.CPU
	switch cpu.GPR[isa.RAX] {
	case SysWrite:
		buf := make([]byte, cpu.GPR[isa.RDX])
		if err := p.M.Mem.Read(cpu.GPR[isa.RSI], buf); err != nil {
			return err
		}
		p.Stdout.Write(buf)
		cpu.GPR[isa.RAX] = uint64(len(buf))
	case SysExit:
		// exit() ends the calling thread; the process ends with its last
		// thread (single-threaded processes exit immediately).
		p.exitThread(int(cpu.GPR[isa.RDI]))
	case SysExitGroup:
		p.Exited = true
		p.ExitCode = int(cpu.GPR[isa.RDI])
	case SysClone:
		p.M.Charge(800) // thread creation overhead
		return p.clone()
	default:
		return fmt.Errorf("kernel: unknown syscall %d", cpu.GPR[isa.RAX])
	}
	return nil
}

// hostCall executes a host bridge function and returns to the caller.
func (p *Process) hostCall(addr uint64) error {
	fn, ok := p.hostFuncs[addr]
	if !ok {
		return fmt.Errorf("kernel: call to unbound host address %#x", addr)
	}
	p.K.Stats.HostCalls++
	if err := fn(p); err != nil {
		return err
	}
	// Host functions "ret": pop the return address.
	sp := p.M.CPU.GPR[isa.RSP] // rsp
	retAddr, err := p.M.Mem.ReadUint64(sp)
	if err != nil {
		return err
	}
	p.M.CPU.GPR[isa.RSP] = sp + 8
	p.M.CPU.RIP = retAddr
	return nil
}

// Step advances the process by one machine event boundary. It returns
// false when the process has exited (or died with p.Err set).
func (p *Process) Step() bool {
	if p.Exited {
		return false
	}
	ev := p.M.Step()
	switch ev.Kind {
	case machine.EvNone:
		p.maybeReschedule()
		return true
	case machine.EvFPTrap:
		if err := p.deliverFPTrap(ev); err != nil {
			p.die(err)
			return false
		}
	case machine.EvBreakpoint:
		if err := p.deliverBreakpoint(); err != nil {
			p.die(err)
			return false
		}
	case machine.EvSyscall:
		if err := p.syscall(); err != nil {
			p.die(err)
			return false
		}
	case machine.EvHostCall:
		if err := p.hostCall(ev.HostAddr); err != nil {
			p.die(err)
			return false
		}
	case machine.EvHalt:
		p.Exited = true
	case machine.EvBoxEscape:
		if p.boxEscapeHook == nil {
			p.die(fmt.Errorf("box escape at %#x without a handler", ev.EscapeAddr))
			return false
		}
		p.K.Stats.BoxEscapes++
		p.M.Charge(p.K.Costs.HWUserDeliver + p.K.Costs.HWUserReturn)
		uc := p.snapshot(SIGTRAP, 0)
		if err := p.boxEscapeHook(uc, ev.EscapeAddr); err != nil {
			p.die(err)
			return false
		}
		p.restore(uc)
		p.M.WaiveNextEscape(ev.EscapeAddr)
	case machine.EvFault:
		p.die(ev.Err)
		return false
	}
	p.maybeReschedule()
	return !p.Exited
}

func (p *Process) die(err error) {
	p.Exited = true
	p.ExitCode = 139
	p.Err = fmt.Errorf("process %s died: %w (rip=%#x)", p.Name, err, p.M.CPU.RIP)
}

// Run steps the process until exit or maxSteps event boundaries (0 =
// unlimited). It returns the process error, if any.
func (p *Process) Run(maxSteps uint64) error {
	n := uint64(0)
	for p.Step() {
		n++
		if maxSteps != 0 && n >= maxSteps {
			return fmt.Errorf("kernel: process %s exceeded %d steps", p.Name, maxSteps)
		}
	}
	return p.Err
}
