package kernel

// Thread support (paper §2.1: "The startup of new threads using pthread
// or clone() is also intercepted so that FPVM can create an execution
// context for each thread. Virtualization operates on a per-thread
// basis.") Threads share the address space, host bindings and signal
// dispositions; each has its own register file (including MXCSR, so a
// child inherits FPVM's trap-all configuration from its parent, and every
// thread traps independently).
//
// Scheduling is cooperative round-robin with a fixed quantum of event
// boundaries — deterministic, like everything else in the simulator.

import (
	"fmt"

	"fpvm/internal/isa"
	"fpvm/internal/machine"
)

// SysClone spawns a thread: rdi = entry address, rsi = stack top.
// Returns the new tid in rax (parent); the child starts at entry with
// rax = 0 and rsp = stack top.
const SysClone = 56

// SysExitGroup terminates the whole process regardless of live threads.
const SysExitGroup = 231

// threadQuantum is the number of event boundaries a thread runs before
// the scheduler rotates.
const threadQuantum = 64

// Thread is one execution context.
type Thread struct {
	ID     int
	CPU    machine.CPU
	Exited bool
}

// initThreading lazily sets up the thread table with the bootstrap thread
// (tid 1) holding the machine's current CPU state.
func (p *Process) initThreading() {
	if p.threads != nil {
		return
	}
	p.threads = []*Thread{{ID: 1}}
	p.current = 0
}

// Threads returns all threads (including exited ones). The current
// thread's register state lives in p.M.CPU, not its Thread entry.
func (p *Process) Threads() []*Thread { return p.threads }

// CurrentThread returns the running thread's ID (1 if threading was never
// engaged).
func (p *Process) CurrentThread() int {
	if p.threads == nil {
		return 1
	}
	return p.threads[p.current].ID
}

// AllCPUs snapshots every live thread's register state, with the current
// thread's taken from the machine. FPVM's conservative collector uses
// this as its register root set — boxed values parked in a descheduled
// thread's registers must stay alive.
func (p *Process) AllCPUs() []*machine.CPU {
	if p.threads == nil {
		return []*machine.CPU{&p.M.CPU}
	}
	out := make([]*machine.CPU, 0, len(p.threads))
	for i, t := range p.threads {
		if t.Exited {
			continue
		}
		if i == p.current {
			out = append(out, &p.M.CPU)
		} else {
			out = append(out, &t.CPU)
		}
	}
	return out
}

// clone implements SysClone.
func (p *Process) clone() error {
	p.initThreading()
	entry := p.M.CPU.GPR[isa.RDI]
	stack := p.M.CPU.GPR[isa.RSI]
	if stack == 0 || !p.M.Mem.Mapped(stack-8) {
		return fmt.Errorf("kernel: clone with bad stack %#x", stack)
	}

	tid := 1 + len(p.threads)
	child := &Thread{ID: tid}
	// The child inherits the parent's full register state (including
	// MXCSR — this is how FPVM's trap-all configuration propagates), with
	// its own entry point, stack, and rax=0.
	child.CPU = p.M.CPU
	child.CPU.RIP = entry
	child.CPU.GPR[isa.RSP] = stack
	child.CPU.GPR[isa.RAX] = 0
	p.threads = append(p.threads, child)

	p.M.CPU.GPR[isa.RAX] = uint64(tid)
	p.K.Stats.ThreadsCreated++
	if p.OnThreadStart != nil {
		p.OnThreadStart(tid)
	}
	return nil
}

// exitThread marks the current thread done; the process exits when the
// last thread does. Returns true if the whole process exited.
func (p *Process) exitThread(code int) bool {
	if p.threads == nil {
		p.Exited = true
		p.ExitCode = code
		return true
	}
	p.threads[p.current].Exited = true
	for _, t := range p.threads {
		if !t.Exited {
			p.scheduleNext(true)
			return false
		}
	}
	p.Exited = true
	p.ExitCode = code
	return true
}

// scheduleNext rotates to the next runnable thread (round-robin). When
// force is true the current thread is not runnable anymore.
func (p *Process) scheduleNext(force bool) {
	if p.threads == nil || len(p.threads) == 1 {
		return
	}
	// Park the current thread's registers.
	if !p.threads[p.current].Exited {
		p.threads[p.current].CPU = p.M.CPU
	}
	n := len(p.threads)
	for off := 1; off <= n; off++ {
		cand := (p.current + off) % n
		if !p.threads[cand].Exited {
			p.current = cand
			p.M.CPU = p.threads[cand].CPU
			p.K.Stats.ContextSwitches++
			return
		}
	}
	// No runnable thread (caller handles process exit).
	_ = force
}

// Fork clones the process (paper §2.1: "FPVM's constructors are
// subsequently invoked on every fork(), allowing the virtualized program
// to spawn further virtualized subprocesses"): copied address space and
// register state, inherited signal dispositions and host bindings, shared
// kernel. The /dev/fpvm registration is per-process and deliberately NOT
// inherited — FPVM's constructor re-registers in the child (see the FPVM
// runtime's ForkChild). The caller adjusts the two processes' fork()
// return values.
func (p *Process) Fork(name string) *Process {
	cm := machine.New(p.M.Mem.Clone())
	cm.CPU = p.M.CPU
	cm.BoxEscapeCheck = p.M.BoxEscapeCheck
	child := NewProcess(p.K, cm, name)
	for sig, h := range p.handlers {
		child.handlers[sig] = h
	}
	for a, f := range p.hostFuncs {
		child.hostFuncs[a] = f
	}
	child.BreakpointHook = p.BreakpointHook
	child.OnThreadStart = p.OnThreadStart
	child.hwUserEntry = p.hwUserEntry
	child.boxEscapeHook = p.boxEscapeHook
	child.Inject = p.Inject
	return child
}

// ThreadState is a point-in-time copy of the kernel's scheduling state
// for one process: the thread table (with the current thread's registers
// parked in its entry), the scheduler position and the quantum counter.
// The checkpoint subsystem saves and restores it so a rollback rewinds
// descheduled threads and the round-robin rotation along with memory.
type ThreadState struct {
	Threads []Thread // by value: CPUs are copied, not aliased
	Current int
	Quantum int
}

// SnapshotThreads captures the process's thread state. The current
// thread's live registers (p.M.CPU) are folded into its table entry so
// the snapshot is self-contained; a process that never engaged threading
// yields an empty table.
func (p *Process) SnapshotThreads() ThreadState {
	st := ThreadState{Current: p.current, Quantum: p.quantum}
	for i, t := range p.threads {
		tc := *t
		if i == p.current {
			tc.CPU = p.M.CPU
		}
		st.Threads = append(st.Threads, tc)
	}
	return st
}

// RestoreThreads reinstates a snapshot taken by SnapshotThreads,
// including the current thread's registers into p.M.CPU. Restoring an
// empty snapshot resets the process to the never-threaded state (the
// caller restores p.M.CPU itself in that case).
func (p *Process) RestoreThreads(st ThreadState) {
	if len(st.Threads) == 0 {
		p.threads = nil
		p.current = 0
		p.quantum = 0
		return
	}
	p.threads = make([]*Thread, len(st.Threads))
	for i := range st.Threads {
		tc := st.Threads[i]
		p.threads[i] = &tc
	}
	p.current = st.Current
	p.quantum = st.Quantum
	p.M.CPU = st.Threads[st.Current].CPU
}

// maybeReschedule is called once per event boundary.
func (p *Process) maybeReschedule() {
	if p.threads == nil || len(p.threads) == 1 {
		return
	}
	p.quantum++
	if p.quantum >= threadQuantum {
		p.quantum = 0
		p.scheduleNext(false)
	}
}
