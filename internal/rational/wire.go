// Binary serialization of Rational values for the checkpoint wire
// format: flags (NaN, infinity sign), then numerator and denominator as
// sign-prefixed big-endian magnitude bytes.

package rational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// ErrBadEncoding is returned by DecodeBinary for malformed input.
var ErrBadEncoding = errors.New("rational: malformed encoding")

// AppendBinary appends the binary encoding of q to b and returns the
// extended slice. Layout: nan u8, inf i8, then (for finite non-NaN
// values) numerator and denominator each as sign u8 + length u32 +
// magnitude bytes (big-endian, as produced by big.Int.Bytes).
func (q *Rational) AppendBinary(b []byte) []byte {
	b = append(b, boolByte(q.nan), byte(int8(q.inf)))
	if q.nan || q.inf != 0 || q.r == nil {
		return b
	}
	b = appendInt(b, q.r.Num())
	return appendInt(b, q.r.Denom())
}

// DecodeBinary reconstructs a Rational from an encoding produced by
// AppendBinary. The whole of b must be consumed.
func DecodeBinary(b []byte) (*Rational, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: short header", ErrBadEncoding)
	}
	q := &Rational{nan: b[0] != 0, inf: int(int8(b[1]))}
	rest := b[2:]
	if q.nan || q.inf != 0 {
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes on special value", ErrBadEncoding)
		}
		if q.nan {
			q.inf = 0
		}
		return q, nil
	}
	num, rest, err := decodeInt(rest)
	if err != nil {
		return nil, err
	}
	den, rest, err := decodeInt(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(rest))
	}
	if den.Sign() <= 0 {
		return nil, fmt.Errorf("%w: non-positive denominator", ErrBadEncoding)
	}
	q.r = new(big.Rat).SetFrac(num, den)
	return q, nil
}

func appendInt(b []byte, v *big.Int) []byte {
	sign := byte(0)
	if v.Sign() < 0 {
		sign = 1
	}
	mag := v.Bytes()
	b = append(b, sign)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(mag)))
	return append(b, mag...)
}

func decodeInt(b []byte) (*big.Int, []byte, error) {
	if len(b) < 5 {
		return nil, nil, fmt.Errorf("%w: short integer header", ErrBadEncoding)
	}
	neg := b[0] != 0
	n := binary.LittleEndian.Uint32(b[1:])
	rest := b[5:]
	if uint64(len(rest)) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: truncated integer (%d of %d bytes)", ErrBadEncoding, len(rest), n)
	}
	v := new(big.Int).SetBytes(rest[:n])
	if neg {
		v.Neg(v)
	}
	return v, rest[n:], nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
