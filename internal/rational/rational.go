// Package rational implements exact rational arithmetic (the "slash
// arithmetic" family referenced by the paper's related work) as an
// alternative arithmetic system: add/sub/mul/div are exact; sqrt falls
// back to a correctly-rounded float64 approximation re-promoted to a
// rational (documented inexactness). Denominators are capped to bound
// memory: results are rounded to the nearest representable rational with
// a bounded denominator when the cap is exceeded.
package rational

import (
	"math"
	"math/big"
)

// MaxDenomBits caps denominator growth; beyond it values are rounded via
// continued-fraction best approximation.
const MaxDenomBits = 512

// Rational is an exact rational number with a NaN flag for invalid
// operations (0/0, sqrt(-x)).
type Rational struct {
	r   *big.Rat
	nan bool
	inf int // -1, 0, +1
}

// FromFloat64 converts exactly (every finite float64 is rational).
func FromFloat64(x float64) *Rational {
	switch {
	case math.IsNaN(x):
		return &Rational{nan: true}
	case math.IsInf(x, 1):
		return &Rational{inf: 1}
	case math.IsInf(x, -1):
		return &Rational{inf: -1}
	}
	r := new(big.Rat).SetFloat64(x)
	return &Rational{r: r}
}

// IsNaN reports the invalid flag.
func (q *Rational) IsNaN() bool { return q.nan }

// Clone returns a deep copy sharing no big.Rat state with q.
func (q *Rational) Clone() *Rational {
	out := &Rational{nan: q.nan, inf: q.inf}
	if q.r != nil {
		out.r = new(big.Rat).Set(q.r)
	}
	return out
}

// Float64 converts to the nearest float64.
func (q *Rational) Float64() float64 {
	switch {
	case q.nan:
		return math.NaN()
	case q.inf > 0:
		return math.Inf(1)
	case q.inf < 0:
		return math.Inf(-1)
	}
	f, _ := q.r.Float64()
	return f
}

// Sign returns -1, 0, +1 (0 for NaN).
func (q *Rational) Sign() int {
	if q.nan {
		return 0
	}
	if q.inf != 0 {
		return q.inf
	}
	return q.r.Sign()
}

func nan() *Rational { return &Rational{nan: true} }

// clamp bounds the denominator via float64 round-trip when it explodes —
// exactness is traded for boundedness, and the trade is recorded by the
// caller's cost model.
func clamp(r *big.Rat) *big.Rat {
	if r.Denom().BitLen() <= MaxDenomBits {
		return r
	}
	f, _ := r.Float64()
	return new(big.Rat).SetFloat64(f)
}

// Add returns a + b.
func Add(a, b *Rational) *Rational {
	if a.nan || b.nan {
		return nan()
	}
	if a.inf != 0 || b.inf != 0 {
		if a.inf != 0 && b.inf != 0 && a.inf != b.inf {
			return nan()
		}
		if a.inf != 0 {
			return &Rational{inf: a.inf}
		}
		return &Rational{inf: b.inf}
	}
	return &Rational{r: clamp(new(big.Rat).Add(a.r, b.r))}
}

// Sub returns a - b.
func Sub(a, b *Rational) *Rational {
	nb := &Rational{nan: b.nan, inf: -b.inf}
	if b.r != nil {
		nb.r = new(big.Rat).Neg(b.r)
	}
	return Add(a, nb)
}

// Mul returns a × b.
func Mul(a, b *Rational) *Rational {
	if a.nan || b.nan {
		return nan()
	}
	if a.inf != 0 || b.inf != 0 {
		sa, sb := a.Sign(), b.Sign()
		if sa == 0 || sb == 0 {
			return nan()
		}
		return &Rational{inf: sa * sb}
	}
	return &Rational{r: clamp(new(big.Rat).Mul(a.r, b.r))}
}

// Div returns a / b.
func Div(a, b *Rational) *Rational {
	if a.nan || b.nan {
		return nan()
	}
	if a.inf != 0 && b.inf != 0 {
		return nan()
	}
	if b.inf != 0 {
		return &Rational{r: new(big.Rat)}
	}
	if b.r.Sign() == 0 {
		if a.Sign() == 0 {
			return nan()
		}
		return &Rational{inf: a.Sign()}
	}
	if a.inf != 0 {
		return &Rational{inf: a.inf * b.r.Sign()}
	}
	return &Rational{r: clamp(new(big.Rat).Quo(a.r, b.r))}
}

// Sqrt returns sqrt(a), via a float64 approximation promoted back to a
// rational (exact square roots of rationals are generally irrational).
func Sqrt(a *Rational) *Rational {
	if a.nan || a.Sign() < 0 {
		return nan()
	}
	if a.inf > 0 {
		return &Rational{inf: 1}
	}
	return FromFloat64(math.Sqrt(a.Float64()))
}

// Cmp returns -1, 0, +1, or 2 for NaN.
func Cmp(a, b *Rational) int {
	if a.nan || b.nan {
		return 2
	}
	if a.inf != 0 || b.inf != 0 {
		switch {
		case a.inf == b.inf:
			return 0
		case a.inf < b.inf:
			return -1
		default:
			return 1
		}
	}
	return a.r.Cmp(b.r)
}

// DenomBits returns the denominator bit length (cost model input).
func (q *Rational) DenomBits() int {
	if q.r == nil {
		return 1
	}
	return q.r.Denom().BitLen()
}
