package rational

import (
	"math"
	"math/rand"
	"testing"
)

func TestExactRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		f := math.Float64frombits(r.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		q := FromFloat64(f)
		if got := q.Float64(); got != f {
			t.Fatalf("roundtrip %g -> %g", f, got)
		}
	}
}

// TestExactness: (a+b)-b == a and (a*b)/b == a hold exactly in rational
// arithmetic (when no clamping occurs).
func TestExactness(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := FromFloat64((r.Float64() - 0.5) * 1e8)
		b := FromFloat64((r.Float64() - 0.5) * 1e8)
		if b.Sign() == 0 {
			continue
		}
		if got := Sub(Add(a, b), b); Cmp(got, a) != 0 {
			t.Fatalf("(a+b)-b != a")
		}
		if got := Div(Mul(a, b), b); Cmp(got, a) != 0 {
			t.Fatalf("(a*b)/b != a")
		}
	}
}

func TestThirdIsExact(t *testing.T) {
	third := Div(FromFloat64(1), FromFloat64(3))
	sum := Add(Add(third, third), third)
	if Cmp(sum, FromFloat64(1)) != 0 {
		t.Error("1/3 + 1/3 + 1/3 != 1 (should be exact in rationals)")
	}
}

func TestSpecials(t *testing.T) {
	one := FromFloat64(1)
	zero := FromFloat64(0)
	if !Div(zero, zero).IsNaN() {
		t.Error("0/0 not NaN")
	}
	if Div(one, zero).Sign() != 1 {
		t.Error("1/0 not +inf")
	}
	if Div(FromFloat64(-1), zero).Sign() != -1 {
		t.Error("-1/0 not -inf")
	}
	if !Sqrt(FromFloat64(-4)).IsNaN() {
		t.Error("sqrt(-4) not NaN")
	}
	inf := FromFloat64(math.Inf(1))
	if !Sub(inf, inf).IsNaN() {
		t.Error("inf - inf not NaN")
	}
	if !Mul(inf, zero).IsNaN() {
		t.Error("inf*0 not NaN")
	}
	if v := Add(inf, one); !math.IsInf(v.Float64(), 1) {
		t.Error("inf + 1")
	}
	nan := FromFloat64(math.NaN())
	if !Add(nan, one).IsNaN() || Cmp(nan, one) != 2 {
		t.Error("NaN propagation")
	}
}

func TestSqrtApproximation(t *testing.T) {
	got := Sqrt(FromFloat64(2)).Float64()
	if math.Abs(got-math.Sqrt2) > 1e-15 {
		t.Errorf("sqrt(2) = %g", got)
	}
}

func TestCmpOrdering(t *testing.T) {
	a, b := FromFloat64(1.5), FromFloat64(2.5)
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Error("ordering")
	}
	inf := FromFloat64(math.Inf(1))
	if Cmp(a, inf) != -1 || Cmp(inf, a) != 1 {
		t.Error("inf ordering")
	}
}

func TestDenomClamping(t *testing.T) {
	// Repeated incommensurate additions grow the denominator; the clamp
	// must keep it bounded.
	x := FromFloat64(0)
	inc := Div(FromFloat64(1), FromFloat64(3))
	step := Div(FromFloat64(1), FromFloat64(7))
	for i := 0; i < 2000; i++ {
		x = Add(x, inc)
		x = Mul(x, step)
	}
	if x.IsNaN() {
		t.Fatal("NaN from clamping")
	}
	if x.DenomBits() > MaxDenomBits+64 {
		t.Errorf("denominator grew to %d bits", x.DenomBits())
	}
}
