// Package faultinject provides FPVM's deterministic fault injector: a
// seedable source of synthetic failures at named sites throughout the
// trap pipeline (decode, alternative arithmetic, box allocation, kernel
// delivery, correctness traps, GC scans, checkpoint save/restore). The
// runtime's recovery ladder consumes the injected faults and resolves
// each one by exactly one of retry, rollback to a checkpoint,
// degradation to native IEEE, or fatal detach; the injector keeps the
// per-site ledger so tests can assert the books balance
// (Fired == Retried + RolledBack + Degraded + Fatal).
//
// Determinism matters: soak tests and differential runs must replay the
// same fault schedule from the same seed, so the injector uses its own
// splitmix64 stream and never consults wall-clock state. A nil *Injector
// is valid everywhere and injects nothing — production paths pay one nil
// check per site.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Site names a fault injection point in the trap pipeline.
type Site string

// The named sites wired into the runtime. Each corresponds to one hook
// point: a fault fired there is observed by the surrounding layer and fed
// to the recovery ladder.
const (
	// SiteAltOp fires inside alternative-arithmetic operations
	// (internal/fpvm emulation of arith/compare instructions).
	SiteAltOp Site = "alt.op"
	// SiteHeapAlloc fires when the runtime boxes a result (box
	// allocation on the FPVM heap).
	SiteHeapAlloc Site = "heap.alloc"
	// SiteDecode fires in the decode path (decode cache + full decode).
	SiteDecode Site = "decode"
	// SiteKernelDeliver fires in the kernel's trap delivery, before the
	// FPVM entry point runs (internal/kernel).
	SiteKernelDeliver Site = "kernel.deliver"
	// SiteCorrTrap fires in the correctness trap handlers (int3 and
	// magic-call demotion paths).
	SiteCorrTrap Site = "corr.trap"
	// SiteGCScan fires during garbage collection scans.
	SiteGCScan Site = "gc.scan"
	// SiteCkptSave fires while the rollback supervisor captures a
	// checkpoint snapshot (internal/checkpoint Save).
	SiteCkptSave Site = "ckpt.save"
	// SiteCkptRestore fires while the rollback supervisor restores a
	// snapshot — recovery of the recovery.
	SiteCkptRestore Site = "ckpt.restore"
)

// Service-layer sites (internal/service, cmd/fpvmd). These sit above the
// trap pipeline: a fault fired at one is observed by the serving stack
// and must resolve to a deliberate response (shed, retried dispatch,
// degraded persistence) rather than a crash — the same
// one-fault-one-resolution ledger discipline the runtime ladder follows.
const (
	// SiteSvcAdmit fires while a request is admission-checked (quota,
	// quarantine, service state).
	SiteSvcAdmit Site = "svc.admit"
	// SiteSvcEnqueue fires while an admitted job is placed on its
	// tenant's bounded queue.
	SiteSvcEnqueue Site = "svc.enqueue"
	// SiteSvcDispatch fires when a worker picks a job up for execution.
	SiteSvcDispatch Site = "svc.dispatch"
	// SiteSvcPersist fires while a job's preemption snapshot (or journal
	// record) is persisted to the snapshot directory.
	SiteSvcPersist Site = "svc.persist"
	// SiteSvcRespond fires while a finished job's outcome is delivered
	// back to the waiting client.
	SiteSvcRespond Site = "svc.respond"
)

// Sites lists every named trap-pipeline site in stable order. Service
// sites are deliberately excluded so existing "all" specs and runtime
// soaks keep their meaning; see ServiceSites.
func Sites() []Site {
	return []Site{SiteAltOp, SiteHeapAlloc, SiteDecode, SiteKernelDeliver, SiteCorrTrap, SiteGCScan, SiteCkptSave, SiteCkptRestore}
}

// ServiceSites lists the service-layer sites in stable order.
func ServiceSites() []Site {
	return []Site{SiteSvcAdmit, SiteSvcEnqueue, SiteSvcDispatch, SiteSvcPersist, SiteSvcRespond}
}

// ArmAllService arms the same rule at every service-layer site.
func (in *Injector) ArmAllService(r Rule) {
	if in == nil {
		return
	}
	for _, s := range ServiceSites() {
		in.Arm(s, r)
	}
}

// Fault is the error value returned when a site check fires.
type Fault struct {
	Site  Site
	RIP   uint64 // guest RIP at the check (0 when not applicable)
	Seq   uint64 // global injection sequence number (1-based)
	Fatal bool   // fatal severity: retry cannot clear it (see Rule.Fatal)
}

// Error implements the error interface.
func (f *Fault) Error() string {
	sev := ""
	if f.Fatal {
		sev = " [fatal]"
	}
	return fmt.Sprintf("faultinject: injected fault #%d at site %s (rip %#x)%s", f.Seq, f.Site, f.RIP, sev)
}

// Rule arms one trigger at a site. Zero-valued fields are inactive; a
// rule fires when every active condition holds.
type Rule struct {
	// Prob fires with this probability per check (0 < Prob <= 1).
	Prob float64
	// Every fires on every Nth check of the site (count-triggered).
	Every uint64
	// RIP restricts firing to checks at this guest RIP (0 = any RIP).
	RIP uint64
	// Limit caps total fires of this rule (0 = unlimited).
	Limit uint64
	// Fatal marks faults from this rule as fatal severity: the recovery
	// ladder's retry rung cannot clear them, modeling a deterministic
	// failure (a wedged emulator, corrupted state) rather than a
	// transient glitch. Fatal faults go straight to the fatal rung,
	// where the rollback supervisor gets its chance.
	Fatal bool
}

func (r Rule) String() string {
	var parts []string
	if r.Prob > 0 {
		parts = append(parts, fmt.Sprintf("prob=%g", r.Prob))
	}
	if r.Every > 0 {
		parts = append(parts, fmt.Sprintf("every=%d", r.Every))
	}
	if r.RIP != 0 {
		parts = append(parts, fmt.Sprintf("rip=%#x", r.RIP))
	}
	if r.Limit != 0 {
		parts = append(parts, fmt.Sprintf("limit=%d", r.Limit))
	}
	if r.Fatal {
		parts = append(parts, "sev=fatal")
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// Resolution records how the recovery ladder disposed of a fired fault.
type Resolution int

const (
	// Retried: the operation was retried and succeeded.
	Retried Resolution = iota
	// Degraded: the operation was demoted to native IEEE (or safely
	// skipped) and the program continued.
	Degraded
	// Fatal: the runtime detached; the guest continues un-virtualized.
	Fatal
	// RolledBack: the fault hit the fatal rung but the rollback
	// supervisor restored a checkpoint and re-executed, so the run
	// continues fully virtualized.
	RolledBack
)

func (r Resolution) String() string {
	switch r {
	case Retried:
		return "retried"
	case Degraded:
		return "degraded"
	case Fatal:
		return "fatal"
	case RolledBack:
		return "rolledback"
	}
	return "resolution?"
}

// SiteStats is the per-site ledger.
type SiteStats struct {
	Checks     uint64 // times the site was consulted
	Fired      uint64 // faults injected
	Retried    uint64 // resolved by retry
	Degraded   uint64 // resolved by degradation
	Fatal      uint64 // resolved by fatal detach
	RolledBack uint64 // resolved by checkpoint rollback
}

// Resolved sums the resolutions recorded for the site.
func (s SiteStats) Resolved() uint64 { return s.Retried + s.Degraded + s.Fatal + s.RolledBack }

// Consistent checks the ledger's internal invariants: a site cannot fire
// more often than it was checked, and cannot have more resolutions than
// fires. Reconciled (Resolved == Fired) is the end-of-run invariant;
// Consistent must hold at every instant, including mid-trap while a
// fired fault is still being handled — a double Resolve breaks it
// immediately, which is how the accounting audit catches the
// retried-then-refired bug class.
func (s SiteStats) Consistent() bool {
	return s.Fired <= s.Checks && s.Resolved() <= s.Fired
}

type armedRule struct {
	Rule
	fired uint64
}

// Injector is a deterministic, seedable fault source. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops).
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	seq   uint64
	rules map[Site][]*armedRule
	stats map[Site]*SiteStats
}

// New returns an injector seeded with seed (the same seed replays the
// same fault schedule given the same check sequence).
func New(seed uint64) *Injector {
	return &Injector{
		rng:   seed ^ 0x9E3779B97F4A7C15, // avoid the all-zero state
		rules: make(map[Site][]*armedRule),
		stats: make(map[Site]*SiteStats),
	}
}

// Arm adds a rule at site. Multiple rules may be armed per site; a check
// fires if any rule fires.
func (in *Injector) Arm(site Site, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = append(in.rules[site], &armedRule{Rule: r})
	in.siteStats(site)
}

// ArmAll arms the same rule at every named site.
func (in *Injector) ArmAll(r Rule) {
	if in == nil {
		return
	}
	for _, s := range Sites() {
		in.Arm(s, r)
	}
}

func (in *Injector) siteStats(site Site) *SiteStats {
	st := in.stats[site]
	if st == nil {
		st = &SiteStats{}
		in.stats[site] = st
	}
	return st
}

// splitmix64 advances the deterministic stream.
func (in *Injector) next() uint64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Check consults the site's rules and returns a *Fault if one fires, nil
// otherwise. Nil-safe: a nil injector never fires.
func (in *Injector) Check(site Site, rip uint64) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.siteStats(site)
	st.Checks++
	for _, r := range in.rules[site] {
		if r.Limit != 0 && r.fired >= r.Limit {
			continue
		}
		if r.RIP != 0 && r.RIP != rip {
			continue
		}
		fire := false
		if r.Every > 0 && st.Checks%r.Every == 0 {
			fire = true
		}
		if !fire && r.Prob > 0 {
			// 53-bit uniform in [0,1).
			u := float64(in.next()>>11) / (1 << 53)
			fire = u < r.Prob
		}
		if !fire {
			continue
		}
		r.fired++
		st.Fired++
		in.seq++
		return &Fault{Site: site, RIP: rip, Seq: in.seq, Fatal: r.Fatal}
	}
	return nil
}

// Resolve records how the ladder disposed of a fired fault at site.
// Callers must call it exactly once per fault returned by Check.
func (in *Injector) Resolve(site Site, how Resolution) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.siteStats(site)
	switch how {
	case Retried:
		st.Retried++
	case Degraded:
		st.Degraded++
	case Fatal:
		st.Fatal++
	case RolledBack:
		st.RolledBack++
	}
}

// Stats returns a copy of the site's ledger.
func (in *Injector) Stats(site Site) SiteStats {
	if in == nil {
		return SiteStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[site]; st != nil {
		return *st
	}
	return SiteStats{}
}

// Totals sums the ledger across all sites.
func (in *Injector) Totals() SiteStats {
	var t SiteStats
	if in == nil {
		return t
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, st := range in.stats {
		t.Checks += st.Checks
		t.Fired += st.Fired
		t.Retried += st.Retried
		t.Degraded += st.Degraded
		t.Fatal += st.Fatal
		t.RolledBack += st.RolledBack
	}
	return t
}

// Reconciled reports whether every fired fault has exactly one recorded
// resolution at every site (the soak-test bookkeeping invariant).
func (in *Injector) Reconciled() bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, st := range in.stats {
		if st.Fired != st.Resolved() {
			return false
		}
	}
	return true
}

// Consistent reports whether every site's ledger passes its internal
// invariants (see SiteStats.Consistent). Unlike Reconciled it must hold
// at any instant, so tests can assert it mid-run.
func (in *Injector) Consistent() bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, st := range in.stats {
		if !st.Consistent() {
			return false
		}
	}
	return true
}

// Report renders the per-site ledger as one line per active site, in
// stable site order.
func (in *Injector) Report() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var sites []string
	for s := range in.stats {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var sb strings.Builder
	for _, s := range sites {
		st := in.stats[Site(s)]
		fmt.Fprintf(&sb, "%-15s checks=%-8d fired=%-6d retried=%-6d rolledback=%-6d degraded=%-6d fatal=%d\n",
			s, st.Checks, st.Fired, st.Retried, st.RolledBack, st.Degraded, st.Fatal)
	}
	return sb.String()
}

// ParseSpec parses a command-line injection spec into rules on a fresh
// injector. The grammar is semicolon-separated site clauses:
//
//	site:key=value[,key=value...][;site:...]
//
// e.g. "alt.op:every=100;heap.alloc:prob=0.001,limit=5". Keys are prob,
// every, rip, limit, and sev (sev=fatal makes the rule's faults fatal
// severity — unclearable by retry; sev=transient is the default). "all"
// as the site arms every trap-pipeline site; "svc" arms every
// service-layer site (svc.admit, svc.enqueue, svc.dispatch, svc.persist,
// svc.respond), which may also be named individually.
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	in := New(seed)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, args, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q missing ':'", clause)
		}
		site = strings.TrimSpace(site)
		if site != "all" && site != "svc" && !knownSite(Site(site)) {
			return nil, fmt.Errorf("faultinject: unknown site %q (known: %v + %v)", site, Sites(), ServiceSites())
		}
		var rule Rule
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad key=value %q in %q", kv, clause)
			}
			switch k {
			case "prob":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("faultinject: bad prob %q", v)
				}
				rule.Prob = p
			case "every":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("faultinject: bad every %q", v)
				}
				rule.Every = n
			case "rip":
				n, err := strconv.ParseUint(v, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad rip %q", v)
				}
				rule.RIP = n
			case "limit":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad limit %q", v)
				}
				rule.Limit = n
			case "sev":
				switch v {
				case "fatal":
					rule.Fatal = true
				case "transient":
					rule.Fatal = false
				default:
					return nil, fmt.Errorf("faultinject: bad sev %q (want fatal or transient)", v)
				}
			default:
				return nil, fmt.Errorf("faultinject: unknown key %q in %q", k, clause)
			}
		}
		if rule.Prob == 0 && rule.Every == 0 {
			return nil, fmt.Errorf("faultinject: clause %q has no trigger (need prob= or every=)", clause)
		}
		switch site {
		case "all":
			in.ArmAll(rule)
		case "svc":
			in.ArmAllService(rule)
		default:
			in.Arm(Site(site), rule)
		}
	}
	return in, nil
}

func knownSite(s Site) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	for _, k := range ServiceSites() {
		if s == k {
			return true
		}
	}
	return false
}
