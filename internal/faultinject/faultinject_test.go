package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check(SiteAltOp, 0x100); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	in.Arm(SiteAltOp, Rule{Every: 1})
	in.Resolve(SiteAltOp, Retried)
	if !in.Reconciled() {
		t.Error("nil injector not reconciled")
	}
	if got := in.Stats(SiteAltOp); got != (SiteStats{}) {
		t.Errorf("nil stats = %+v", got)
	}
}

func TestCountTrigger(t *testing.T) {
	in := New(1)
	in.Arm(SiteDecode, Rule{Every: 3})
	fired := 0
	for i := 0; i < 12; i++ {
		if err := in.Check(SiteDecode, 0); err != nil {
			fired++
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("not a *Fault: %v", err)
			}
			if f.Site != SiteDecode {
				t.Errorf("site %q", f.Site)
			}
			in.Resolve(SiteDecode, Retried)
		}
	}
	if fired != 4 {
		t.Errorf("every=3 over 12 checks fired %d times, want 4", fired)
	}
	if !in.Reconciled() {
		t.Error("not reconciled")
	}
}

func TestProbDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		in := New(seed)
		in.Arm(SiteAltOp, Rule{Prob: 0.25})
		var hits []int
		for i := 0; i < 400; i++ {
			if in.Check(SiteAltOp, 0) != nil {
				in.Resolve(SiteAltOp, Degraded)
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("prob=0.25 never fired in 400 checks")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// ~0.25 of 400 = 100; allow a wide deterministic band.
	if len(a) < 60 || len(a) > 140 {
		t.Errorf("prob=0.25 fired %d/400 times", len(a))
	}
}

func TestRIPAndLimitTriggers(t *testing.T) {
	in := New(7)
	in.Arm(SiteCorrTrap, Rule{Every: 1, RIP: 0x4000, Limit: 2})
	fires := 0
	for i := 0; i < 10; i++ {
		rip := uint64(0x4000)
		if i%2 == 1 {
			rip = 0x5000
		}
		if in.Check(SiteCorrTrap, rip) != nil {
			fires++
			in.Resolve(SiteCorrTrap, Degraded)
		}
	}
	if fires != 2 {
		t.Errorf("rip+limit rule fired %d times, want 2", fires)
	}
}

func TestReconciledDetectsMissingResolution(t *testing.T) {
	in := New(3)
	in.Arm(SiteGCScan, Rule{Every: 1})
	if in.Check(SiteGCScan, 0) == nil {
		t.Fatal("every=1 did not fire")
	}
	if in.Reconciled() {
		t.Error("reconciled with an unresolved fault")
	}
	in.Resolve(SiteGCScan, Fatal)
	if !in.Reconciled() {
		t.Error("not reconciled after resolution")
	}
	st := in.Stats(SiteGCScan)
	if st.Fired != 1 || st.Fatal != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("alt.op:every=2;heap.alloc:prob=0.5,limit=3", 9)
	if err != nil {
		t.Fatal(err)
	}
	if in.Check(SiteAltOp, 0) != nil {
		t.Error("alt.op fired on first check with every=2")
	}
	if in.Check(SiteAltOp, 0) == nil {
		t.Error("alt.op did not fire on second check")
	} else {
		in.Resolve(SiteAltOp, Retried)
	}

	for _, bad := range []string{
		"nope:every=1",   // unknown site
		"alt.op",         // missing colon
		"alt.op:every=0", // bad every
		"alt.op:prob=2",  // bad prob
		"alt.op:rip=zz",  // bad rip
		"alt.op:limit=1", // no trigger
		"alt.op:frob=1",  // unknown key
		"alt.op:every",   // bad kv
	} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}

	all, err := ParseSpec("all:every=10", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Sites() {
		for i := 0; i < 10; i++ {
			if e := all.Check(s, 0); e != nil {
				all.Resolve(s, Retried)
			}
		}
		if all.Stats(s).Fired != 1 {
			t.Errorf("site %s fired %d in 10 checks with every=10", s, all.Stats(s).Fired)
		}
	}
}

func TestConcurrentChecks(t *testing.T) {
	in := New(11)
	in.ArmAll(Rule{Every: 5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for _, s := range Sites() {
					if in.Check(s, uint64(i)) != nil {
						in.Resolve(s, Retried)
					}
				}
			}
		}()
	}
	wg.Wait()
	if !in.Reconciled() {
		t.Error("concurrent ledger not reconciled")
	}
	tot := in.Totals()
	if tot.Checks != 8*500*uint64(len(Sites())) {
		t.Errorf("checks = %d", tot.Checks)
	}
	if tot.Fired == 0 || tot.Fired != tot.Retried {
		t.Errorf("totals %+v", tot)
	}
}
