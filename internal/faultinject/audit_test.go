package faultinject

import (
	"strings"
	"sync"
	"testing"
)

// The accounting audit: the ledger invariants must hold at every
// instant, not just at end of run, so double-resolution and lost
// resolutions are caught where they happen.

func TestFatalRuleMarksFault(t *testing.T) {
	in := New(1)
	in.Arm(SiteAltOp, Rule{Every: 1, Fatal: true})
	err := in.Check(SiteAltOp, 0x100)
	if err == nil {
		t.Fatal("every=1 rule did not fire")
	}
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("Check returned %T, want *Fault", err)
	}
	if !f.Fatal {
		t.Error("fault from a Fatal rule is not marked fatal")
	}
	if !strings.Contains(f.Error(), "[fatal]") {
		t.Errorf("fatal fault message %q lacks [fatal]", f.Error())
	}
	in.Resolve(SiteAltOp, RolledBack)
	if !in.Reconciled() || !in.Consistent() {
		t.Error("single fire + RolledBack resolve must reconcile")
	}
}

func TestParseSpecSeverity(t *testing.T) {
	in, err := ParseSpec("alt.op:every=5,sev=fatal", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The severity must reach the armed rule: the 5th check fires a
	// fatal fault.
	var fired *Fault
	for i := 0; i < 5; i++ {
		if err := in.Check(SiteAltOp, 0); err != nil {
			fired = err.(*Fault)
		}
	}
	if fired == nil {
		t.Fatal("every=5 rule never fired")
	}
	if !fired.Fatal {
		t.Error("sev=fatal did not set Rule.Fatal on the armed rule")
	}
	in.Resolve(SiteAltOp, RolledBack)
	if got := (Rule{Every: 5, Fatal: true}).String(); !strings.Contains(got, "sev=fatal") {
		t.Errorf("fatal Rule String %q lacks sev=fatal", got)
	}
	if _, err := ParseSpec("alt.op:sev=transient,every=3", 1); err != nil {
		t.Errorf("sev=transient rejected: %v", err)
	}
	if _, err := ParseSpec("alt.op:sev=bogus", 1); err == nil {
		t.Error("sev=bogus accepted")
	}
}

func TestDoubleResolveBreaksConsistency(t *testing.T) {
	in := New(1)
	in.Arm(SiteDecode, Rule{Every: 1, Limit: 1})
	if in.Check(SiteDecode, 0) == nil {
		t.Fatal("rule did not fire")
	}
	in.Resolve(SiteDecode, Retried)
	if !in.Consistent() {
		t.Fatal("single resolve must be consistent")
	}
	// The bug class the audit exists for: resolving the same fault twice
	// (e.g. once on the retry path and again in a recover handler) must
	// trip Consistent immediately, even though end-of-run Reconciled
	// alone could be fooled by a matching lost resolution elsewhere.
	in.Resolve(SiteDecode, Degraded)
	if in.Consistent() {
		t.Error("double Resolve not caught: Resolved > Fired must break Consistent")
	}
	if in.Reconciled() {
		t.Error("over-resolved ledger must not reconcile")
	}
}

func TestRolledBackFlowsThroughLedger(t *testing.T) {
	in := New(7)
	in.Arm(SiteCkptSave, Rule{Every: 1, Limit: 2})
	for i := 0; i < 2; i++ {
		if in.Check(SiteCkptSave, 0) == nil {
			t.Fatal("rule did not fire")
		}
	}
	in.Resolve(SiteCkptSave, RolledBack)
	in.Resolve(SiteCkptSave, RolledBack)

	st := in.Stats(SiteCkptSave)
	if st.RolledBack != 2 || st.Resolved() != 2 {
		t.Errorf("site ledger rolledback=%d resolved=%d, want 2/2", st.RolledBack, st.Resolved())
	}
	if tot := in.Totals(); tot.RolledBack != 2 {
		t.Errorf("totals rolledback=%d, want 2", tot.RolledBack)
	}
	if !in.Reconciled() || !in.Consistent() {
		t.Error("fully rolled-back ledger must reconcile and be consistent")
	}
	if rep := in.Report(); !strings.Contains(rep, "rolledback=2") {
		t.Errorf("Report lacks rolledback=2:\n%s", rep)
	}
}

// TestConcurrentResolveStaysConsistent hammers one shared injector from
// many goroutines the way forked guests share one: every fired fault is
// resolved exactly once, concurrently with further checks, and the
// ledger must be consistent at every sample and reconciled at the end.
func TestConcurrentResolveStaysConsistent(t *testing.T) {
	in := New(3)
	in.ArmAll(Rule{Every: 2})

	var wg sync.WaitGroup
	sites := Sites()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				site := sites[(g+i)%len(sites)]
				if in.Check(site, uint64(i)) != nil {
					in.Resolve(site, Resolution(i%4))
				}
				if i%50 == 0 && !in.Consistent() {
					t.Errorf("ledger inconsistent mid-run (goroutine %d, iter %d)", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if !in.Consistent() {
		t.Error("ledger inconsistent after concurrent run")
	}
	if !in.Reconciled() {
		t.Errorf("ledger not reconciled: %+v", in.Totals())
	}
	tot := in.Totals()
	if tot.Fired == 0 {
		t.Error("soak fired no faults; Every=2 across all sites should fire")
	}
}
