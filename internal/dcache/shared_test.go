package dcache

import (
	"sync"
	"testing"

	"fpvm/internal/isa"
)

// ------------------------------------------------ fork/clone accounting

// TestCloneStatsStartFromZero pins the fork-stats bugfix: a child's
// counters must not include events the parent logged pre-fork (each event
// happened once, in the parent — a child reporting them double-counts).
func TestCloneStatsStartFromZero(t *testing.T) {
	c := NewCache(2)
	c.Insert(0x100, &Entry{})
	c.Insert(0x104, &Entry{})
	c.Insert(0x108, &Entry{}) // evicts
	c.Lookup(0x108)           // hit
	c.Lookup(0xdead)          // miss
	c.InsertTrace(mkTrace(0x100, 2))
	c.LookupTrace(0x100)  // trace hit
	c.LookupTrace(0x9999) // trace miss
	c.InvalidateTraces(0x100)
	if (c.Stats == Stats{}) {
		t.Fatal("parent accumulated no stats; test is vacuous")
	}

	child := c.Clone()
	if (child.Stats != Stats{}) {
		t.Errorf("fork child inherited parent stats: %+v", child.Stats)
	}

	// And the child counts its own events from there, independently.
	parentStats := c.Stats
	child.Lookup(0x108)
	if child.Stats.Hits != 1 {
		t.Errorf("child hit not counted: %+v", child.Stats)
	}
	if c.Stats != parentStats {
		t.Error("child activity mutated parent stats")
	}
}

// TestCloneTraceEntriesUnaliased pins the fork slice-header bugfix: the
// child's Trace structs must own their Entries/Insts arrays. A child
// replaying a trace mid-flight must be immune to anything the parent does
// to its own copy after the fork.
func TestCloneTraceEntriesUnaliased(t *testing.T) {
	c := NewCache(0)
	tr := mkTrace(0x100, 4)
	tr.Insts = []string{"a", "b", "c", "d"}
	c.InsertTrace(tr)

	child := c.Clone()
	// The child's in-flight replay holds this pointer.
	ct, ok := child.LookupTrace(0x100)
	if !ok {
		t.Fatal("child lost the trace")
	}
	inFlight := ct.Entries

	// Parent-side churn after fork: replace the trace at the same start
	// (re-walked after an invalidation) and clobber its old arrays.
	pt, _ := c.LookupTrace(0x100)
	pt.Entries[0] = &Entry{Inst: isa.MakeNullary(isa.NOP)} // corrupt parent copy
	pt.Insts[0] = "corrupted"
	c.InvalidateTraces(0x104)
	c.InsertTrace(mkTrace(0x100, 1))

	for i, e := range inFlight {
		if e == nil || e.Inst.Addr != 0x100+uint64(i)*4 {
			t.Fatalf("child entry %d corrupted by parent-side churn", i)
		}
	}
	if ct.Insts[0] != "a" {
		t.Errorf("child disassembly aliased to parent: %q", ct.Insts[0])
	}
	if got, _ := child.LookupTrace(0x100); got.Len() != 4 {
		t.Errorf("parent replacement leaked into child table: len %d", got.Len())
	}
}

// ------------------------------------------------ shared cache: adoption

func TestSharedEntryAdoption(t *testing.T) {
	s := NewShared(0)
	a := NewCacheShared(0, s)
	b := NewCacheShared(0, s)

	e := &Entry{Inst: isa.MakeNullary(isa.NOP), Supported: true}
	a.Insert(0x100, e)
	if s.EntryLen() != 1 {
		t.Fatalf("publication missing: shared has %d entries", s.EntryLen())
	}

	got, ok := b.Lookup(0x100)
	if !ok || got != e {
		t.Fatal("B did not adopt A's published decode")
	}
	if b.Stats.SharedHits != 1 || b.Stats.Hits != 0 || b.Stats.Misses != 0 {
		t.Errorf("adoption miscounted: %+v", b.Stats)
	}
	// Adopted into B's local table: the next lookup is a plain local hit.
	if _, ok := b.Lookup(0x100); !ok || b.Stats.Hits != 1 || b.Stats.SharedHits != 1 {
		t.Errorf("adopted entry not local: %+v", b.Stats)
	}
}

func TestSharedTraceAdoptionIsSnapshot(t *testing.T) {
	s := NewShared(0)
	a := NewCacheShared(0, s)
	b := NewCacheShared(0, s)
	c := NewCacheShared(0, s)

	tr := mkTrace(0x100, 4)
	tr.Hits = 5                       // builder's replay history must not leak to adopters
	tr.Compiled = &struct{ n int }{1} // builder's tier-1 body is per-VM process state
	a.InsertTrace(tr)
	if s.TraceLen() != 1 {
		t.Fatalf("trace publication missing")
	}

	bt, ok := b.LookupTrace(0x100)
	if !ok {
		t.Fatal("B did not adopt A's trace")
	}
	if b.Stats.SharedTraceHits != 1 || b.Stats.TraceMisses != 0 {
		t.Errorf("trace adoption miscounted: %+v", b.Stats)
	}
	if bt == tr {
		t.Fatal("adoption returned the builder's trace, not a snapshot")
	}
	if bt.Hits != 0 || bt.Divergences != 0 {
		t.Errorf("adopted trace inherited counters: hits=%d div=%d", bt.Hits, bt.Divergences)
	}
	if bt.Compiled != nil {
		t.Error("adopted trace inherited the builder's compiled body")
	}

	// B's replay mutates only B's copy.
	bt.Hits += 100
	bt.Entries[0] = nil
	ct, _ := c.LookupTrace(0x100)
	if ct.Hits != 0 {
		t.Error("B's replay counters visible to C")
	}
	if ct.Entries[0] == nil {
		t.Error("B's entry mutation visible to C (shared backing array)")
	}
	if tr.Hits != 5 {
		t.Error("adopter mutated the builder's trace")
	}
}

// TestSharedInvalidationPropagates: a VM distrusting an address must keep
// every *future* adopter away from it, while copies already adopted live
// out their own per-VM lifecycle.
func TestSharedInvalidationPropagates(t *testing.T) {
	s := NewShared(0)
	a := NewCacheShared(0, s)
	b := NewCacheShared(0, s)

	a.Insert(0x100, &Entry{})
	a.InsertTrace(mkTrace(0x100, 4))
	if _, ok := b.LookupTrace(0x100); !ok {
		t.Fatal("setup: B could not adopt")
	}

	a.Invalidate(0x104) // mid-trace rip: kills trace + (elsewhere) decode
	if s.TraceLen() != 0 {
		t.Error("shared master trace survived propagated invalidation")
	}
	a.Invalidate(0x100)
	if s.EntryLen() != 0 {
		t.Error("shared decode survived propagated invalidation")
	}

	// B's already-adopted copy is B's problem (its own ladder invalidates
	// it on its own faults) — but a fresh VM must miss.
	fresh := NewCacheShared(0, s)
	if _, ok := fresh.Lookup(0x100); ok {
		t.Error("fresh VM adopted an invalidated decode")
	}
	if _, ok := fresh.LookupTrace(0x100); ok {
		t.Error("fresh VM adopted an invalidated trace")
	}
	if _, ok := b.LookupTrace(0x100); !ok {
		t.Error("propagation clobbered B's private adopted copy")
	}
}

func TestSharedCapacityBounded(t *testing.T) {
	s := NewShared(64) // per-shard cap 64/16 = 4 → ≤64 entries total
	c := NewCacheShared(64, s)
	for i := uint64(0); i < 1024; i++ {
		c.Insert(i*4, &Entry{})
		c.InsertTrace(mkTrace(0x10000+i*0x100, 2))
	}
	if n := s.EntryLen(); n > 64 {
		t.Errorf("shared entry table unbounded: %d", n)
	}
	if n := s.TraceLen(); n > 16 { // NewCache(64) derives traceCap 16
		t.Errorf("shared trace table unbounded: %d", n)
	}
	st := s.Stats()
	if st.EntryEvictions == 0 || st.TraceEvictions == 0 {
		t.Errorf("no evictions counted: %+v", st)
	}
}

func TestSharedBindFirstWins(t *testing.T) {
	s := NewShared(0)
	img1, img2 := &struct{ n int }{1}, &struct{ n int }{2}
	if err := s.Bind(img1); err != nil {
		t.Fatalf("first bind: %v", err)
	}
	if err := s.Bind(img1); err != nil {
		t.Fatalf("re-bind same image: %v", err)
	}
	if err := s.Bind(img2); err == nil {
		t.Fatal("bind to a second image succeeded")
	}
}

// TestSharedConcurrentTorture hammers one shared cache from many
// goroutines mixing publication, adoption, replay-style mutation of
// adopted copies, and invalidation, while a concurrent auditor runs the
// Consistent() invariant sweep mid-storm (it takes the same locks, so
// every instant it observes must be sound). Run under -race via make
// check. After the storm the full audit must pass again, and a
// final concurrent invalidation wave over every published address must
// drain the trace table without leaving dangling index entries.
func TestSharedConcurrentTorture(t *testing.T) {
	s := NewShared(256)
	const goroutines = 8
	const rounds = 400

	stop := make(chan struct{})
	auditErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				auditErr <- nil
				return
			default:
				if err := s.Consistent(); err != nil {
					auditErr <- err
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewCacheShared(256, s)
			for i := 0; i < rounds; i++ {
				rip := uint64(0x1000 + (i%32)*4)
				start := uint64(0x1000 + (i%8)*0x40)
				switch i % 5 {
				case 0:
					c.Insert(rip, &Entry{Inst: isa.MakeNullary(isa.NOP)})
				case 1:
					c.Lookup(rip)
				case 2:
					tr := mkTrace(start, 4)
					tr.Compiled = &struct{ g int }{g} // publish must strip it
					c.InsertTrace(tr)
				case 3:
					if tr, ok := c.LookupTrace(start); ok {
						tr.Hits++ // replay mutation on the private copy
						tr.Divergences++
						tr.Compiled = &struct{ g int }{g} // tier-1 promotion, per-VM
					}
				case 4:
					if g%2 == 0 {
						c.InvalidateTraces(start + 4)
					} else {
						c.Invalidate(rip)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-auditErr; err != nil {
		t.Fatalf("concurrent audit: %v", err)
	}
	if err := s.Consistent(); err != nil {
		t.Fatalf("post-storm audit: %v", err)
	}

	// Compiled bodies are per-VM: no matter how many storm goroutines
	// promoted their private copies (case 3) or tried to publish a body
	// (case 2), a fresh adopter must receive every surviving trace bare.
	adopter := NewCacheShared(256, s)
	for i := 0; i < 8; i++ {
		start := uint64(0x1000 + i*0x40)
		if tr, ok := adopter.LookupTrace(start); ok && tr.Compiled != nil {
			t.Errorf("adopted trace %#x carries another VM's compiled body", start)
		}
	}

	// Invalidation wave: kill every possible trace member address from
	// all goroutines at once. The table must drain completely — a trace
	// surviving this sweep is one the reverse index lost track of (the
	// overlapping-trace coherence bug class).
	var kill sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		kill.Add(1)
		go func(g int) {
			defer kill.Done()
			for i := g; i < 8*0x40+4*4; i += goroutines {
				s.InvalidateTraces(0x1000 + uint64(i))
			}
		}(g)
	}
	kill.Wait()
	if err := s.Consistent(); err != nil {
		t.Fatalf("post-wave audit: %v", err)
	}
	if n := s.TraceLen(); n != 0 {
		t.Fatalf("%d traces survived an invalidation wave over every member address", n)
	}
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	if n := len(s.ripIndex); n != 0 {
		t.Fatalf("empty trace table but %d ripIndex lists remain", n)
	}
}

// ------------------------------------------------ lazy disassembly

func TestEnsureDisassemblyBackfills(t *testing.T) {
	tr := mkTrace(0x100, 3)
	tr.Reason = TermUnsupported
	if tr.Insts != nil {
		t.Fatal("mkTrace grew disassembly; test is vacuous")
	}
	fetched := 0
	tr.EnsureDisassembly(func(rip uint64) (string, bool) {
		fetched++
		if rip != tr.EndRIP {
			t.Errorf("terminator fetched at %#x, want EndRIP %#x", rip, tr.EndRIP)
		}
		return "jmp somewhere", true
	})
	if len(tr.Insts) != 4 { // 3 entries + terminator
		t.Fatalf("insts: %v", tr.Insts)
	}
	if tr.Term != "jmp somewhere" || tr.Insts[3] != "jmp somewhere" {
		t.Errorf("terminator not recorded: term=%q insts=%v", tr.Term, tr.Insts)
	}
	if fetched != 1 {
		t.Errorf("terminator fetched %d times", fetched)
	}

	// Idempotent: a second call must not re-disassemble.
	tr.EnsureDisassembly(func(uint64) (string, bool) {
		t.Error("re-disassembled an already-filled trace")
		return "", false
	})
}

func TestEnsureDisassemblyTermLimit(t *testing.T) {
	tr := mkTrace(0x100, 2)
	tr.Reason = TermLimit // EndRIP is past-last-inst, not a terminator
	tr.EnsureDisassembly(func(uint64) (string, bool) {
		t.Error("fetched a terminator for a length-limited sequence")
		return "", false
	})
	if len(tr.Insts) != 2 || tr.Term != "" {
		t.Errorf("insts=%v term=%q", tr.Insts, tr.Term)
	}
}

func TestEnsureDisassemblyFetchFails(t *testing.T) {
	tr := mkTrace(0x100, 2)
	tr.EnsureDisassembly(func(uint64) (string, bool) { return "", false })
	if len(tr.Insts) != 2 || tr.Term != "" {
		t.Errorf("failed terminator fetch must still fill entries: insts=%v term=%q", tr.Insts, tr.Term)
	}
	// Nil fetcher and empty trace are both safe no-ops.
	empty := &Trace{Start: 1}
	empty.EnsureDisassembly(nil)
	if empty.Insts != nil {
		t.Error("empty trace grew disassembly")
	}
}

// TestRecordBackfillsInsts pins the profiling-off-builder → profiling-on-
// observer path: the first observation carries no disassembly (nil), a
// later one does, and the stat keeps it.
func TestRecordBackfillsInsts(t *testing.T) {
	p := NewSeqProfile()
	p.Record(0x100, 4, TermUnsupported, nil, "")
	if st, _ := p.Trace(1); st.Insts != nil {
		t.Fatal("first observation should have no disassembly")
	}
	insts := []string{"addsd", "mulsd", "jmp"}
	p.Record(0x100, 4, TermUnsupported, insts, "jmp")
	st, _ := p.Trace(1)
	if len(st.Insts) != 3 || st.Terminator != "jmp" {
		t.Errorf("backfill failed: insts=%v term=%q", st.Insts, st.Terminator)
	}
	if st.Count != 2 {
		t.Errorf("count %d", st.Count)
	}
	// Established disassembly is never replaced.
	p.Record(0x100, 4, TermUnsupported, []string{"other"}, "other")
	if st, _ := p.Trace(1); len(st.Insts) != 3 {
		t.Error("later observation replaced established disassembly")
	}
}

// TestSharedStatsCounters sanity-checks the aggregate counters.
func TestSharedStatsCounters(t *testing.T) {
	s := NewShared(0)
	a := NewCacheShared(0, s)
	b := NewCacheShared(0, s)
	a.Insert(0x100, &Entry{})
	a.InsertTrace(mkTrace(0x100, 2))
	b.Lookup(0x100)
	b.Lookup(0x200) // shared miss
	b.LookupTrace(0x100)
	b.LookupTrace(0x300) // shared miss
	st := s.Stats()
	want := SharedStats{
		EntryHits: 1, EntryMisses: 1, EntryPublications: 1,
		TraceHits: 1, TraceMisses: 1, TracePublications: 1,
	}
	if st != want {
		t.Errorf("stats:\n got %+v\nwant %+v", st, want)
	}
}

// TestSharedPublishReplace: re-publishing a start address replaces the
// master (re-walked after invalidation) without corrupting the index.
func TestSharedPublishReplace(t *testing.T) {
	s := NewShared(0)
	c := NewCacheShared(0, s)
	c.InsertTrace(mkTrace(0x100, 4))
	c.InsertTrace(mkTrace(0x100, 2)) // replace with shorter
	if s.TraceLen() != 1 {
		t.Fatalf("trace table: %d", s.TraceLen())
	}
	fresh := NewCacheShared(0, s)
	tr, ok := fresh.LookupTrace(0x100)
	if !ok || tr.Len() != 2 {
		t.Fatalf("replacement not served: %v", tr)
	}
	// The old trace's tail rips must be unindexed: invalidating one must
	// not report kills.
	if n := s.InvalidateTraces(0x100 + 3*4); n != 0 {
		t.Errorf("stale index entry killed %d traces", n)
	}
	if s.TraceLen() != 1 {
		t.Error("stale index entry killed the replacement")
	}
}
