package dcache

import (
	"math"
	"math/rand"
	"testing"

	"fpvm/internal/isa"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.Lookup(0x100); ok {
		t.Error("hit on empty cache")
	}
	e := &Entry{Inst: isa.MakeNullary(isa.NOP), Supported: true}
	c.Insert(0x100, e)
	got, ok := c.Lookup(0x100)
	if !ok || got != e {
		t.Error("miss after insert")
	}
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	if c.Len() != 1 {
		t.Error("len")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, &Entry{})
	}
	if c.Len() > 4 {
		t.Errorf("len %d over capacity", c.Len())
	}
	if c.Stats.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// FIFO: the newest entries survive.
	if _, ok := c.Lookup(7); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheReinsert(t *testing.T) {
	c := NewCache(4)
	c.Insert(1, &Entry{Supported: false})
	c.Insert(1, &Entry{Supported: true})
	e, ok := c.Lookup(1)
	if !ok || !e.Supported {
		t.Error("reinsert did not replace")
	}
	if c.Len() != 1 {
		t.Error("duplicate entries")
	}
}

// buildProfile records synthetic sequences: three traces with distinct
// popularity and length.
func buildProfile() *SeqProfile {
	p := NewSeqProfile()
	// trace A: len 32, executed 100 times (dominant)
	for i := 0; i < 100; i++ {
		p.Record(0x100, 32, TermUnsupported, []string{"addsd ...", "mulsd ..."}, "add rcx, 1")
	}
	// trace B: len 4, executed 50 times
	for i := 0; i < 50; i++ {
		p.Record(0x200, 4, TermNoBoxedSource, nil, "")
	}
	// trace C: len 200, executed once (long but unpopular)
	p.Record(0x300, 200, TermLimit, nil, "")
	return p
}

func TestProfileTotals(t *testing.T) {
	p := buildProfile()
	if p.Traps != 151 {
		t.Errorf("traps %d", p.Traps)
	}
	wantEmul := uint64(100*32 + 50*4 + 200)
	if p.EmulatedTotal != wantEmul {
		t.Errorf("emulated %d want %d", p.EmulatedTotal, wantEmul)
	}
	if got := p.AvgSeqLen(); math.Abs(got-float64(wantEmul)/151) > 1e-9 {
		t.Errorf("avg %f", got)
	}
	if p.NumTraces() != 3 {
		t.Error("traces")
	}
	if !p.Known(0x100) || p.Known(0x999) {
		t.Error("Known")
	}
}

func TestByPopularityOrder(t *testing.T) {
	p := buildProfile()
	traces := p.ByPopularity()
	// A contributes 3200, B 200, C 200 -> A first; B vs C tie broken by RIP.
	if traces[0].StartRIP != 0x100 {
		t.Errorf("rank 1 = %#x", traces[0].StartRIP)
	}
	if traces[1].StartRIP != 0x200 || traces[2].StartRIP != 0x300 {
		t.Errorf("tie break: %#x %#x", traces[1].StartRIP, traces[2].StartRIP)
	}
}

func TestRankPopularityCDFMonotone(t *testing.T) {
	p := buildProfile()
	cdf := p.RankPopularityCDF()
	last := 0.0
	for i, v := range cdf {
		if v < last {
			t.Fatalf("CDF not monotone at %d: %f < %f", i, v, last)
		}
		last = v
	}
	if math.Abs(last-100) > 1e-9 {
		t.Errorf("CDF ends at %f", last)
	}
}

func TestLengthCDF(t *testing.T) {
	p := buildProfile()
	lengths, pct := p.LengthCDF()
	if len(lengths) != 3 {
		t.Fatalf("lengths: %v", lengths)
	}
	if lengths[0] != 4 || lengths[2] != 200 {
		t.Errorf("lengths: %v", lengths)
	}
	if pct[len(pct)-1] != 100 {
		t.Errorf("pct: %v", pct)
	}
}

// TestWeightedRankConverges checks the Figure 10 property: the weighted
// rank series converges to the overall average sequence length.
func TestWeightedRankConverges(t *testing.T) {
	p := buildProfile()
	w := p.WeightedRank()
	if math.Abs(w[len(w)-1]-p.AvgSeqLen()) > 1e-9 {
		t.Errorf("weighted rank tail %f != avg %f", w[len(w)-1], p.AvgSeqLen())
	}
}

// TestWeightedRankRandom fuzzes the convergence property.
func TestWeightedRankRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := NewSeqProfile()
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			count := 1 + r.Intn(100)
			length := 1 + r.Intn(64)
			for j := 0; j < count; j++ {
				p.Record(uint64(0x1000+i*16), length, TermUnsupported, nil, "")
			}
		}
		w := p.WeightedRank()
		if math.Abs(w[len(w)-1]-p.AvgSeqLen()) > 1e-9 {
			t.Fatalf("trial %d: tail %f != avg %f", trial, w[len(w)-1], p.AvgSeqLen())
		}
		cdf := p.RankPopularityCDF()
		if math.Abs(cdf[len(cdf)-1]-100) > 1e-9 {
			t.Fatalf("trial %d: cdf tail %f", trial, cdf[len(cdf)-1])
		}
	}
}

func TestTraceByRank(t *testing.T) {
	p := buildProfile()
	tr, err := p.Trace(1)
	if err != nil || tr.StartRIP != 0x100 {
		t.Errorf("rank1: %v %v", tr, err)
	}
	if len(tr.Insts) != 2 || tr.Terminator != "add rcx, 1" {
		t.Errorf("capture: %+v", tr)
	}
	if _, err := p.Trace(0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := p.Trace(4); err == nil {
		t.Error("rank beyond range accepted")
	}
}

func TestCacheSizeEstimate(t *testing.T) {
	p := buildProfile()
	entries := p.CacheSizeEstimate(90)
	if entries <= 0 {
		t.Errorf("estimate %d", entries)
	}
}

func TestTermReasonString(t *testing.T) {
	if TermUnsupported.String() == "" || TermNoBoxedSource.String() == "" || TermLimit.String() == "" {
		t.Error("empty reason strings")
	}
}

// TestOrderCapBounded asserts the FIFO backing array does not grow without
// bound under sustained churn (the old order = order[1:] reslice pinned the
// array and appended forever).
func TestOrderCapBounded(t *testing.T) {
	const capacity = 64
	c := NewCache(capacity)
	for i := uint64(0); i < 10*capacity; i++ {
		c.Insert(i, &Entry{})
	}
	if c.Len() > capacity {
		t.Fatalf("len %d over capacity", c.Len())
	}
	// Compaction keeps the backing array proportional to the live
	// population, not the total insert count.
	if got := c.OrderCap(); got > 4*capacity {
		t.Errorf("order backing cap %d grew unbounded (capacity %d)", got, capacity)
	}
}

// mkTrace builds a synthetic trace of n entries at consecutive addresses.
func mkTrace(start uint64, n int) *Trace {
	t := &Trace{Start: start, Reason: TermUnsupported}
	for i := 0; i < n; i++ {
		in := isa.MakeNullary(isa.NOP)
		in.Addr = start + uint64(i)*4
		t.Entries = append(t.Entries, &Entry{Inst: in, Supported: true})
	}
	t.EndRIP = start + uint64(n)*4
	return t
}

func TestTraceInsertLookup(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.LookupTrace(0x100); ok {
		t.Error("hit on empty trace table")
	}
	tr := mkTrace(0x100, 4)
	c.InsertTrace(tr)
	got, ok := c.LookupTrace(0x100)
	if !ok || got != tr {
		t.Error("miss after InsertTrace")
	}
	if c.TraceLen() != 1 {
		t.Error("TraceLen")
	}
	if c.Stats.TraceMisses != 1 || c.Stats.TraceHits != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	if got.Len() != 4 {
		t.Errorf("trace len %d", got.Len())
	}
	// Empty traces are not cacheable.
	c.InsertTrace(&Trace{Start: 0x500})
	if c.TraceLen() != 1 {
		t.Error("empty trace cached")
	}
}

func TestTraceInvalidateByContainedRIP(t *testing.T) {
	c := NewCache(0)
	// Two traces overlapping at 0x108; one disjoint.
	a := mkTrace(0x100, 4) // 0x100..0x10c
	b := mkTrace(0x108, 4) // 0x108..0x114
	d := mkTrace(0x900, 2)
	c.InsertTrace(a)
	c.InsertTrace(b)
	c.InsertTrace(d)
	// 0x108 is inside a (entry 2) and is b's start.
	if n := c.InvalidateTraces(0x108); n != 2 {
		t.Fatalf("invalidated %d traces, want 2", n)
	}
	if _, ok := c.LookupTrace(0x100); ok {
		t.Error("trace a survived invalidation of contained RIP")
	}
	if _, ok := c.LookupTrace(0x108); ok {
		t.Error("trace b survived")
	}
	if _, ok := c.LookupTrace(0x900); !ok {
		t.Error("disjoint trace dropped")
	}
	if c.Stats.TraceInvalidations != 2 {
		t.Errorf("stats: %+v", c.Stats)
	}
	// Idempotent: nothing left containing 0x108.
	if n := c.InvalidateTraces(0x108); n != 0 {
		t.Errorf("second invalidation dropped %d", n)
	}
}

// TestInvalidateTracesAllOverlapping is the review repro: with three or
// more traces covering one rip, iterating the live ripIndex list while
// unindexTrace compacted it in place read shifted elements and let some
// traces survive invalidation.
func TestInvalidateTracesAllOverlapping(t *testing.T) {
	c := NewCache(0)
	c.InsertTrace(mkTrace(0x100, 4)) // covers 0x100..0x10c
	c.InsertTrace(mkTrace(0x104, 4)) // covers 0x104..0x110
	c.InsertTrace(mkTrace(0x108, 4)) // covers 0x108..0x114
	// 0x108 is inside all three.
	if n := c.InvalidateTraces(0x108); n != 3 {
		t.Fatalf("invalidated %d traces, want 3", n)
	}
	if c.TraceLen() != 0 {
		t.Errorf("%d traces survived invalidation of a shared RIP", c.TraceLen())
	}
	for _, start := range []uint64{0x100, 0x104, 0x108} {
		if _, ok := c.LookupTrace(start); ok {
			t.Errorf("trace %#x survived", start)
		}
	}
}

// TestTraceOrderBoundedUnderInvalidate asserts invalidate→rebuild churn
// below capacity neither grows the trace FIFO without bound nor leaves
// stale duplicate starts (which would make a freshly re-inserted trace
// the next eviction victim at capacity).
func TestTraceOrderBoundedUnderInvalidate(t *testing.T) {
	c := NewCache(64) // traceCap = 16
	for i := 0; i < 1000; i++ {
		c.InsertTrace(mkTrace(0x100, 4))
		if n := c.InvalidateTraces(0x104); n != 1 {
			t.Fatalf("cycle %d: invalidated %d traces, want 1", i, n)
		}
	}
	if got := c.TraceOrderCap(); got > 16 {
		t.Errorf("trace order backing cap %d grew under invalidate/reinsert churn", got)
	}
	if c.TraceLen() != 0 {
		t.Errorf("TraceLen %d after final invalidation", c.TraceLen())
	}
}

// TestOrderBoundedUnderInvalidate is the L1 analogue: Invalidate deletes
// the entry but leaves its queue slot, so re-inserting must not push a
// duplicate.
func TestOrderBoundedUnderInvalidate(t *testing.T) {
	c := NewCache(64)
	for i := 0; i < 1000; i++ {
		c.Insert(0x100, &Entry{})
		c.Invalidate(0x100)
	}
	if got := c.OrderCap(); got > 16 {
		t.Errorf("order backing cap %d grew under invalidate/reinsert churn", got)
	}
}

func TestInvalidateKillsDecodeAndTraces(t *testing.T) {
	c := NewCache(0)
	tr := mkTrace(0x100, 4)
	c.Insert(0x104, &Entry{})
	c.InsertTrace(tr)
	c.Invalidate(0x104) // mid-trace address
	if _, ok := c.Lookup(0x104); ok {
		t.Error("decode entry survived Invalidate")
	}
	if _, ok := c.LookupTrace(0x100); ok {
		t.Error("containing trace survived Invalidate")
	}
}

func TestTraceReplaceReindexes(t *testing.T) {
	c := NewCache(0)
	c.InsertTrace(mkTrace(0x100, 8)) // covers 0x100..0x11c
	c.InsertTrace(mkTrace(0x100, 2)) // re-walked shorter: covers 0x100..0x104
	if c.TraceLen() != 1 {
		t.Fatalf("TraceLen %d", c.TraceLen())
	}
	// 0x110 was only in the old, replaced trace.
	if n := c.InvalidateTraces(0x110); n != 0 {
		t.Errorf("stale index entry survived replace: dropped %d", n)
	}
	if n := c.InvalidateTraces(0x104); n != 1 {
		t.Errorf("new trace not indexed: dropped %d", n)
	}
}

func TestTraceEviction(t *testing.T) {
	c := NewCache(64) // traceCap = 16
	for i := 0; i < 40; i++ {
		c.InsertTrace(mkTrace(uint64(0x1000+i*0x100), 2))
	}
	if c.TraceLen() > 16 {
		t.Errorf("trace table size %d over capacity", c.TraceLen())
	}
	if c.Stats.TraceEvictions == 0 {
		t.Error("no trace evictions recorded")
	}
	// Newest survives; evicted traces left no index residue.
	if _, ok := c.LookupTrace(uint64(0x1000 + 39*0x100)); !ok {
		t.Error("newest trace evicted")
	}
	if n := c.InvalidateTraces(0x1000); n != 0 {
		t.Errorf("evicted trace still indexed: dropped %d", n)
	}
}

func TestCloneCopiesTraces(t *testing.T) {
	c := NewCache(0)
	tr := mkTrace(0x100, 4)
	tr.Hits = 7
	c.InsertTrace(tr)
	c.Insert(0x100, tr.Entries[0])
	child := c.Clone()
	if child.TraceLen() != 1 || child.Len() != 1 {
		t.Fatalf("clone sizes: traces=%d entries=%d", child.TraceLen(), child.Len())
	}
	// Counters are independent copies.
	ct, _ := child.LookupTrace(0x100)
	ct.Hits++
	if tr.Hits != 7 {
		t.Error("child hit count aliased into parent trace")
	}
	// Index is deep-copied: invalidating in the child leaves the parent.
	child.InvalidateTraces(0x104)
	if _, ok := c.LookupTrace(0x100); !ok {
		t.Error("child invalidation leaked into parent")
	}
	if child.TraceLen() != 0 {
		t.Error("child invalidation ineffective")
	}
}
