package dcache

import (
	"math"
	"math/rand"
	"testing"

	"fpvm/internal/isa"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.Lookup(0x100); ok {
		t.Error("hit on empty cache")
	}
	e := &Entry{Inst: isa.MakeNullary(isa.NOP), Supported: true}
	c.Insert(0x100, e)
	got, ok := c.Lookup(0x100)
	if !ok || got != e {
		t.Error("miss after insert")
	}
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	if c.Len() != 1 {
		t.Error("len")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, &Entry{})
	}
	if c.Len() > 4 {
		t.Errorf("len %d over capacity", c.Len())
	}
	if c.Stats.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// FIFO: the newest entries survive.
	if _, ok := c.Lookup(7); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheReinsert(t *testing.T) {
	c := NewCache(4)
	c.Insert(1, &Entry{Supported: false})
	c.Insert(1, &Entry{Supported: true})
	e, ok := c.Lookup(1)
	if !ok || !e.Supported {
		t.Error("reinsert did not replace")
	}
	if c.Len() != 1 {
		t.Error("duplicate entries")
	}
}

// buildProfile records synthetic sequences: three traces with distinct
// popularity and length.
func buildProfile() *SeqProfile {
	p := NewSeqProfile()
	// trace A: len 32, executed 100 times (dominant)
	for i := 0; i < 100; i++ {
		p.Record(0x100, 32, TermUnsupported, []string{"addsd ...", "mulsd ..."}, "add rcx, 1")
	}
	// trace B: len 4, executed 50 times
	for i := 0; i < 50; i++ {
		p.Record(0x200, 4, TermNoBoxedSource, nil, "")
	}
	// trace C: len 200, executed once (long but unpopular)
	p.Record(0x300, 200, TermLimit, nil, "")
	return p
}

func TestProfileTotals(t *testing.T) {
	p := buildProfile()
	if p.Traps != 151 {
		t.Errorf("traps %d", p.Traps)
	}
	wantEmul := uint64(100*32 + 50*4 + 200)
	if p.EmulatedTotal != wantEmul {
		t.Errorf("emulated %d want %d", p.EmulatedTotal, wantEmul)
	}
	if got := p.AvgSeqLen(); math.Abs(got-float64(wantEmul)/151) > 1e-9 {
		t.Errorf("avg %f", got)
	}
	if p.NumTraces() != 3 {
		t.Error("traces")
	}
	if !p.Known(0x100) || p.Known(0x999) {
		t.Error("Known")
	}
}

func TestByPopularityOrder(t *testing.T) {
	p := buildProfile()
	traces := p.ByPopularity()
	// A contributes 3200, B 200, C 200 -> A first; B vs C tie broken by RIP.
	if traces[0].StartRIP != 0x100 {
		t.Errorf("rank 1 = %#x", traces[0].StartRIP)
	}
	if traces[1].StartRIP != 0x200 || traces[2].StartRIP != 0x300 {
		t.Errorf("tie break: %#x %#x", traces[1].StartRIP, traces[2].StartRIP)
	}
}

func TestRankPopularityCDFMonotone(t *testing.T) {
	p := buildProfile()
	cdf := p.RankPopularityCDF()
	last := 0.0
	for i, v := range cdf {
		if v < last {
			t.Fatalf("CDF not monotone at %d: %f < %f", i, v, last)
		}
		last = v
	}
	if math.Abs(last-100) > 1e-9 {
		t.Errorf("CDF ends at %f", last)
	}
}

func TestLengthCDF(t *testing.T) {
	p := buildProfile()
	lengths, pct := p.LengthCDF()
	if len(lengths) != 3 {
		t.Fatalf("lengths: %v", lengths)
	}
	if lengths[0] != 4 || lengths[2] != 200 {
		t.Errorf("lengths: %v", lengths)
	}
	if pct[len(pct)-1] != 100 {
		t.Errorf("pct: %v", pct)
	}
}

// TestWeightedRankConverges checks the Figure 10 property: the weighted
// rank series converges to the overall average sequence length.
func TestWeightedRankConverges(t *testing.T) {
	p := buildProfile()
	w := p.WeightedRank()
	if math.Abs(w[len(w)-1]-p.AvgSeqLen()) > 1e-9 {
		t.Errorf("weighted rank tail %f != avg %f", w[len(w)-1], p.AvgSeqLen())
	}
}

// TestWeightedRankRandom fuzzes the convergence property.
func TestWeightedRankRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := NewSeqProfile()
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			count := 1 + r.Intn(100)
			length := 1 + r.Intn(64)
			for j := 0; j < count; j++ {
				p.Record(uint64(0x1000+i*16), length, TermUnsupported, nil, "")
			}
		}
		w := p.WeightedRank()
		if math.Abs(w[len(w)-1]-p.AvgSeqLen()) > 1e-9 {
			t.Fatalf("trial %d: tail %f != avg %f", trial, w[len(w)-1], p.AvgSeqLen())
		}
		cdf := p.RankPopularityCDF()
		if math.Abs(cdf[len(cdf)-1]-100) > 1e-9 {
			t.Fatalf("trial %d: cdf tail %f", trial, cdf[len(cdf)-1])
		}
	}
}

func TestTraceByRank(t *testing.T) {
	p := buildProfile()
	tr, err := p.Trace(1)
	if err != nil || tr.StartRIP != 0x100 {
		t.Errorf("rank1: %v %v", tr, err)
	}
	if len(tr.Insts) != 2 || tr.Terminator != "add rcx, 1" {
		t.Errorf("capture: %+v", tr)
	}
	if _, err := p.Trace(0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := p.Trace(4); err == nil {
		t.Error("rank beyond range accepted")
	}
}

func TestCacheSizeEstimate(t *testing.T) {
	p := buildProfile()
	entries := p.CacheSizeEstimate(90)
	if entries <= 0 {
		t.Errorf("estimate %d", entries)
	}
}

func TestTermReasonString(t *testing.T) {
	if TermUnsupported.String() == "" || TermNoBoxedSource.String() == "" || TermLimit.String() == "" {
		t.Error("empty reason strings")
	}
}
