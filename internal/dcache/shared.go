package dcache

// SharedCache is the fleet-wide, concurrency-safe backing store for
// per-VM caches: L1 decode entries behind sharded RWMutexes (a decode is
// immutable once published, so adopters share the pointer) and an L2
// trace table published copy-on-write (a VM adopting a trace gets its own
// snapshot with fresh counters; the published master is never mutated).
// One VM's decode or trace build warms every VM attached to the same
// store, which is how the fleet amortizes warm-up across request-sized
// guests.
//
// Validity: entries and traces are pre-decoded from a specific program
// image, so a shared cache is only coherent across VMs running the SAME
// image. Bind enforces that — the first binder fixes the identity, and a
// later Bind with a different key fails instead of silently replaying
// another program's instruction stream.
//
// The per-VM caches keep all hot-path traffic private: the shared store
// is touched only on local misses (read lock), publications and
// invalidations (write lock). Under steady state the shard locks are
// effectively uncontended.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// sharedShards is the L1 shard count. Shard selection is rip-modulo;
// instruction addresses are dense enough that traffic spreads evenly.
const sharedShards = 16

type entryShard struct {
	mu sync.RWMutex
	m  map[uint64]*Entry
}

// SharedStats is a point-in-time snapshot of shared-cache activity,
// aggregated across every attached VM.
type SharedStats struct {
	EntryHits         uint64 // lookups served (adoptions by some VM)
	EntryMisses       uint64
	EntryPublications uint64
	EntryEvictions    uint64

	TraceHits         uint64
	TraceMisses       uint64
	TracePublications uint64
	TraceEvictions    uint64
	Invalidations     uint64 // traces killed by propagated invalidation
}

// SharedCache is safe for concurrent use by any number of goroutines.
type SharedCache struct {
	shards   [sharedShards]entryShard
	entryCap int // per-shard

	tmu      sync.RWMutex
	traces   map[uint64]*Trace // immutable published snapshots
	ripIndex map[uint64][]uint64
	traceCap int

	bindMu sync.Mutex
	bound  any

	entryHits, entryMisses, entryPubs, entryEvict atomic.Uint64
	traceHits, traceMisses, tracePubs, traceEvict atomic.Uint64
	invalidations                                 atomic.Uint64
}

// NewShared returns a shared cache bounded like NewCache(capacity): the
// same decode-entry capacity (split across shards) and the same derived
// trace-table capacity.
func NewShared(capacity int) *SharedCache {
	sizer := NewCache(capacity)
	s := &SharedCache{
		entryCap: sizer.cap / sharedShards,
		traceCap: sizer.traceCap,
		traces:   make(map[uint64]*Trace),
		ripIndex: make(map[uint64][]uint64),
	}
	if s.entryCap < 1 {
		s.entryCap = 1
	}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]*Entry)
	}
	return s
}

// Bind associates the shared cache with an identity key — the program
// image its decodes come from. The first Bind fixes the identity; a later
// Bind with a different key returns an error, because pre-decoded entries
// and traces are only valid for the image they were built from.
func (s *SharedCache) Bind(key any) error {
	s.bindMu.Lock()
	defer s.bindMu.Unlock()
	if s.bound == nil {
		s.bound = key
		return nil
	}
	if s.bound != key {
		return fmt.Errorf("dcache: shared cache is bound to a different image (one shared cache per distinct image)")
	}
	return nil
}

func (s *SharedCache) shard(rip uint64) *entryShard {
	return &s.shards[rip%sharedShards]
}

// LookupEntry returns the published decode for rip, if present.
func (s *SharedCache) LookupEntry(rip uint64) (*Entry, bool) {
	sh := s.shard(rip)
	sh.mu.RLock()
	e, ok := sh.m[rip]
	sh.mu.RUnlock()
	if ok {
		s.entryHits.Add(1)
	} else {
		s.entryMisses.Add(1)
	}
	return e, ok
}

// PublishEntry stores an immutable decode for every VM to adopt. At
// capacity an arbitrary resident entry is evicted (map iteration order:
// effectively random replacement — steady-state fleets fit well under
// capacity, so the policy only matters as an OOM guard).
func (s *SharedCache) PublishEntry(rip uint64, e *Entry) {
	sh := s.shard(rip)
	sh.mu.Lock()
	if _, exists := sh.m[rip]; !exists && len(sh.m) >= s.entryCap {
		for victim := range sh.m {
			delete(sh.m, victim)
			s.entryEvict.Add(1)
			break
		}
	}
	sh.m[rip] = e
	sh.mu.Unlock()
	s.entryPubs.Add(1)
}

// InvalidateEntry drops the published decode at rip (propagated from a
// VM whose recovery ladder distrusts the address).
func (s *SharedCache) InvalidateEntry(rip uint64) {
	sh := s.shard(rip)
	sh.mu.Lock()
	delete(sh.m, rip)
	sh.mu.Unlock()
}

// LookupTrace returns the published master trace starting at start.
// Masters are immutable: callers must snapshot before replaying (the
// per-VM Cache.LookupTrace adoption path does).
func (s *SharedCache) LookupTrace(start uint64) (*Trace, bool) {
	s.tmu.RLock()
	t, ok := s.traces[start]
	s.tmu.RUnlock()
	if ok {
		s.traceHits.Add(1)
	} else {
		s.traceMisses.Add(1)
	}
	return t, ok
}

// PublishTrace stores a frozen copy of t (fresh slice headers, zeroed
// counters) as the master for its start address, replacing any previous
// master. At capacity an arbitrary resident trace is evicted.
func (s *SharedCache) PublishTrace(t *Trace) {
	if len(t.Entries) == 0 {
		return
	}
	master := t.snapshot()
	s.tmu.Lock()
	if old, exists := s.traces[master.Start]; exists {
		s.unindex(old)
	} else if len(s.traces) >= s.traceCap {
		for victim, old := range s.traces {
			s.unindex(old)
			delete(s.traces, victim)
			s.traceEvict.Add(1)
			break
		}
	}
	s.traces[master.Start] = master
	for _, e := range master.Entries {
		s.ripIndex[e.Inst.Addr] = append(s.ripIndex[e.Inst.Addr], master.Start)
	}
	s.tmu.Unlock()
	s.tracePubs.Add(1)
}

// InvalidateTraces kills every published trace containing rip and returns
// how many were dropped.
func (s *SharedCache) InvalidateTraces(rip uint64) int {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	list, ok := s.ripIndex[rip]
	if !ok {
		return 0
	}
	// Snapshot the start list: unindex compacts ripIndex[rip] in place.
	starts := append([]uint64(nil), list...)
	n := 0
	for _, start := range starts {
		if t, live := s.traces[start]; live {
			s.unindex(t)
			delete(s.traces, start)
			s.invalidations.Add(1)
			n++
		}
	}
	return n
}

// unindex removes t's entries from the reverse index. Caller holds tmu.
func (s *SharedCache) unindex(t *Trace) {
	for _, e := range t.Entries {
		addr := e.Inst.Addr
		list := s.ripIndex[addr]
		kept := list[:0]
		for _, st := range list {
			if st != t.Start {
				kept = append(kept, st)
			}
		}
		if len(kept) == 0 {
			delete(s.ripIndex, addr)
		} else {
			s.ripIndex[addr] = kept
		}
	}
}

// EntryLen returns the number of published decode entries.
func (s *SharedCache) EntryLen() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// TraceLen returns the number of published traces.
func (s *SharedCache) TraceLen() int {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	return len(s.traces)
}

// Consistent audits the shared store's cross-structure invariants and
// returns the first violation found (nil when sound). It is the
// post-torture audit for concurrent publish/adopt/invalidate schedules:
//
//  1. every ripIndex entry points at a live trace that actually contains
//     the indexed address (no dangling starts, no stale membership);
//  2. every live trace is fully indexed — each of its instruction
//     addresses lists the trace's start (otherwise InvalidateTraces on
//     that address would miss the trace, the PR-2 coherence bug class);
//  3. traces are structurally sound (non-empty, keyed by their first
//     instruction's address);
//  4. both levels respect their capacity bounds;
//  5. resident counts never exceed lifetime publications.
//
// Consistent takes the same locks as the mutating paths, so it observes
// an instant of the store and may run concurrently with traffic.
func (s *SharedCache) Consistent() error {
	entries := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.m)
		sh.mu.RUnlock()
		if n > s.entryCap {
			return fmt.Errorf("dcache: shared shard %d holds %d entries, cap %d", i, n, s.entryCap)
		}
		entries += n
	}
	if pubs := s.entryPubs.Load(); uint64(entries) > pubs {
		return fmt.Errorf("dcache: %d resident entries but only %d ever published", entries, pubs)
	}

	s.tmu.RLock()
	defer s.tmu.RUnlock()
	if len(s.traces) > s.traceCap {
		return fmt.Errorf("dcache: %d shared traces exceed cap %d", len(s.traces), s.traceCap)
	}
	if pubs := s.tracePubs.Load(); uint64(len(s.traces)) > pubs {
		return fmt.Errorf("dcache: %d resident traces but only %d ever published", len(s.traces), pubs)
	}
	for start, t := range s.traces {
		if len(t.Entries) == 0 {
			return fmt.Errorf("dcache: shared trace at %#x is empty", start)
		}
		if t.Start != start || t.Entries[0].Inst.Addr != start {
			return fmt.Errorf("dcache: shared trace keyed %#x has Start %#x, first inst %#x",
				start, t.Start, t.Entries[0].Inst.Addr)
		}
		for _, e := range t.Entries {
			indexed := false
			for _, st := range s.ripIndex[e.Inst.Addr] {
				if st == start {
					indexed = true
					break
				}
			}
			if !indexed {
				return fmt.Errorf("dcache: shared trace %#x not indexed under its member %#x (invalidation would miss it)",
					start, e.Inst.Addr)
			}
		}
	}
	for addr, starts := range s.ripIndex {
		if len(starts) == 0 {
			return fmt.Errorf("dcache: empty ripIndex list left at %#x", addr)
		}
		for _, start := range starts {
			t, live := s.traces[start]
			if !live {
				return fmt.Errorf("dcache: ripIndex %#x names dead trace %#x", addr, start)
			}
			member := false
			for _, e := range t.Entries {
				if e.Inst.Addr == addr {
					member = true
					break
				}
			}
			if !member {
				return fmt.Errorf("dcache: ripIndex %#x names trace %#x which does not contain it", addr, start)
			}
		}
	}
	return nil
}

// Stats snapshots the aggregate counters.
func (s *SharedCache) Stats() SharedStats {
	return SharedStats{
		EntryHits:         s.entryHits.Load(),
		EntryMisses:       s.entryMisses.Load(),
		EntryPublications: s.entryPubs.Load(),
		EntryEvictions:    s.entryEvict.Load(),
		TraceHits:         s.traceHits.Load(),
		TraceMisses:       s.traceMisses.Load(),
		TracePublications: s.tracePubs.Load(),
		TraceEvictions:    s.traceEvict.Load(),
		Invalidations:     s.invalidations.Load(),
	}
}
