// Package dcache implements FPVM's decode cache, which sequence emulation
// turns into a software trace cache (§4.2), plus the sequence statistics
// instrumentation behind the paper's workload characterization (§6.3,
// Figures 7-10).
package dcache

import (
	"fmt"
	"sort"

	"fpvm/internal/isa"
)

// Entry is a cached decode result. Supported records whether FPVM can
// decode, bind and emulate the instruction — the sequence terminator is
// cached too, "even if case (1) holds" (§4.2). Class is an opaque tag the
// runtime stores alongside the decode (its emulation class), so neither
// the per-instruction walk nor trace replay re-classifies the opcode.
type Entry struct {
	Inst      isa.Inst
	Supported bool
	Class     uint8
}

// Stats counts cache activity. Counters are per-VM: a fork child starts
// from zero (see Clone) so its figures never include events the parent
// logged pre-fork.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64

	// L2 trace table activity.
	TraceHits          uint64
	TraceMisses        uint64
	TraceEvictions     uint64
	TraceInvalidations uint64

	// Shared-cache adoption (fleet execution, see SharedCache). A
	// SharedHit is a local L1 miss served by adopting another VM's
	// published decode entry; a SharedTraceHit a local L2 miss served by
	// adopting a published trace. Neither is double-counted as a local
	// hit or miss.
	SharedHits      uint64
	SharedTraceHits uint64
}

// fifo is a FIFO queue over a ring-style slice: Pop advances a head index
// instead of reslicing (order = order[1:] would pin the backing array for
// the life of the cache), and Push compacts the dead prefix once it
// dominates, so the backing array stays bounded by the live population.
// Membership is tracked so Push never enqueues a key twice: without it,
// invalidate→reinsert cycles (which delete the cached value but leave its
// queue slot) would re-push the key each round, growing the queue without
// bound below capacity and making the stale duplicate the next eviction
// victim at capacity.
type fifo struct {
	buf  []uint64
	head int
	in   map[uint64]struct{}
}

func (f *fifo) Len() int { return len(f.buf) - f.head }

// Push enqueues v unless it is already queued. A re-pushed key keeps its
// original position — approximate FIFO, but the queue length stays
// bounded by the number of distinct keys.
func (f *fifo) Push(v uint64) {
	if f.in == nil {
		f.in = make(map[uint64]struct{})
	}
	if _, queued := f.in[v]; queued {
		return
	}
	if f.head > 32 && f.head > len(f.buf)/2 {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, v)
	f.in[v] = struct{}{}
}

func (f *fifo) Pop() (uint64, bool) {
	if f.head >= len(f.buf) {
		return 0, false
	}
	v := f.buf[f.head]
	f.head++
	delete(f.in, v)
	return v, true
}

func (f *fifo) Clone() fifo {
	out := fifo{buf: append([]uint64(nil), f.buf[f.head:]...)}
	if len(out.buf) > 0 {
		out.in = make(map[uint64]struct{}, len(out.buf))
		for _, v := range out.buf {
			out.in[v] = struct{}{}
		}
	}
	return out
}

// Cap exposes the backing array capacity (tests assert boundedness).
func (f *fifo) Cap() int { return cap(f.buf) }

// Cache is FPVM's two-level software trace cache (§4.2): an L1 decode
// cache keyed by instruction address, plus an L2 trace table keyed by
// sequence start address whose entries hold entire pre-decoded, pre-bound
// instruction sequences for straight-through replay. Both levels are
// capacity-bounded with FIFO eviction.
type Cache struct {
	entries map[uint64]*Entry
	order   fifo
	cap     int

	traces     map[uint64]*Trace
	traceOrder fifo
	traceCap   int
	// ripIndex maps every instruction address covered by a cached trace to
	// the start addresses of the traces containing it, so Invalidate(rip)
	// can kill all traces through a corrupted or degraded instruction.
	ripIndex map[uint64][]uint64

	// shared, when non-nil, backs this per-VM cache with a fleet-wide
	// concurrency-safe store: local misses consult it (adopting published
	// entries/traces into the private tables), local decodes and trace
	// builds publish to it, and local invalidations propagate so no VM
	// adopts a distrusted decode. The per-VM hot path stays lock-free —
	// only local misses and publications touch the shared store.
	shared *SharedCache

	Stats Stats
}

// DefaultCapacity matches the paper's default of 64K instruction entries.
const DefaultCapacity = 65536

// DefaultTraceCapacity bounds the L2 trace table. The §6.3 sizing data
// shows a few hundred traces cover >90% of emulated instructions on every
// paper workload; 4K start addresses is an order of magnitude of headroom.
const DefaultTraceCapacity = 4096

// NewCacheShared returns a cache bounded to capacity entries (0 =
// default) backed by the given shared cache (nil = private, identical to
// NewCache). Sharing is read-mostly: the private tables absorb all
// hot-path traffic; the shared store is consulted only on local misses
// and updated on decode/trace publication and invalidation.
func NewCacheShared(capacity int, shared *SharedCache) *Cache {
	c := NewCache(capacity)
	c.shared = shared
	return c
}

// Shared returns the attached shared cache (nil when the cache is
// private).
func (c *Cache) Shared() *SharedCache { return c.shared }

// NewCache returns a cache bounded to capacity entries (0 = default).
// The trace table capacity scales with the decode capacity, floored at 16.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	tcap := DefaultTraceCapacity
	if capacity < DefaultCapacity {
		tcap = capacity / 4
		if tcap < 16 {
			tcap = 16
		}
	}
	return &Cache{
		entries:  make(map[uint64]*Entry),
		cap:      capacity,
		traces:   make(map[uint64]*Trace),
		traceCap: tcap,
		ripIndex: make(map[uint64][]uint64),
	}
}

// Lookup returns the cached entry for rip, if present. On a local miss
// with a shared cache attached, a published entry is adopted into the
// local table (entries are immutable, so the pointer is shared).
func (c *Cache) Lookup(rip uint64) (*Entry, bool) {
	if e, ok := c.entries[rip]; ok {
		c.Stats.Hits++
		return e, true
	}
	if c.shared != nil {
		if e, ok := c.shared.LookupEntry(rip); ok {
			c.Stats.SharedHits++
			c.insertLocal(rip, e)
			return e, true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Insert caches an entry for rip, evicting FIFO-oldest entries over
// capacity, and publishes the decode to the shared cache when one is
// attached (the entry is immutable from here on).
func (c *Cache) Insert(rip uint64, e *Entry) {
	c.insertLocal(rip, e)
	if c.shared != nil {
		c.shared.PublishEntry(rip, e)
	}
}

// insertLocal is Insert without shared-cache publication (adoption uses
// it: re-publishing an entry that came from the shared store is wasted
// work).
func (c *Cache) insertLocal(rip uint64, e *Entry) {
	if _, exists := c.entries[rip]; !exists {
		for len(c.entries) >= c.cap && c.order.Len() > 0 {
			victim, _ := c.order.Pop()
			if _, ok := c.entries[victim]; ok {
				delete(c.entries, victim)
				c.Stats.Evictions++
			}
		}
		c.order.Push(rip)
	}
	c.entries[rip] = e
}

// Invalidate drops the entry for rip, if present, counting an eviction,
// and kills every trace containing rip. The FPVM runtime uses it when the
// recovery ladder distrusts a decode (e.g. an injected decode fault): the
// next lookup misses, the instruction is re-decoded from guest memory,
// and no stale pre-bound sequence can replay through the suspect address.
func (c *Cache) Invalidate(rip uint64) {
	if _, ok := c.entries[rip]; ok {
		delete(c.entries, rip)
		c.Stats.Evictions++
	}
	if c.shared != nil {
		c.shared.InvalidateEntry(rip)
	}
	c.InvalidateTraces(rip)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// OrderCap exposes the FIFO backing capacity (boundedness tests).
func (c *Cache) OrderCap() int { return c.order.Cap() }

// TraceOrderCap exposes the trace FIFO backing capacity (boundedness
// tests: invalidate→reinsert churn must not grow the queue).
func (c *Cache) TraceOrderCap() int { return c.traceOrder.Cap() }

// Clone duplicates the cache (fork(): the decode cache is FPVM state in
// process memory, so the child gets a copy). Traces are duplicated with
// their own Entries/Insts slices — the child's in-flight replays and
// counters must survive parent-side invalidation, eviction, or in-place
// rebuild — while the immutable entry decodes themselves are shared. The
// child's Stats start from zero: a fork child reporting the parent's
// pre-fork hit/miss/eviction events would double-count them (each event
// happened once, in the parent). An attached shared cache carries over —
// the forked process runs the same image, so its published decodes stay
// valid for the child.
func (c *Cache) Clone() *Cache {
	out := &Cache{
		entries:    make(map[uint64]*Entry, len(c.entries)),
		order:      c.order.Clone(),
		cap:        c.cap,
		traces:     make(map[uint64]*Trace, len(c.traces)),
		traceOrder: c.traceOrder.Clone(),
		traceCap:   c.traceCap,
		ripIndex:   make(map[uint64][]uint64, len(c.ripIndex)),
		shared:     c.shared,
	}
	for k, v := range c.entries {
		out.entries[k] = v // entries are immutable decodes
	}
	for k, v := range c.traces {
		out.traces[k] = v.snapshotKeepCounters()
	}
	for k, v := range c.ripIndex {
		out.ripIndex[k] = append([]uint64(nil), v...)
	}
	return out
}

// --------------------------------------------------------------- L2 traces

// Trace is an L2 trace-cache entry: the complete pre-decoded instruction
// sequence starting at Start, with its recorded terminator. On a trap at
// Start the runtime replays the entries straight through — no per-
// instruction cache lookups, no re-decode, no re-disassembly — falling
// back to the per-instruction walk only when execution diverges from the
// recorded shape (a mid-trace instruction's operands stop being boxed,
// §4.2 condition (2)).
type Trace struct {
	Start   uint64
	Entries []*Entry
	// EndRIP is where the guest resumes after a full replay (the address
	// of the recorded terminator, or past the last instruction for
	// length-limited sequences).
	EndRIP uint64
	Reason TermReason

	// Insts/Term hold the disassembly including the terminator, captured
	// once at trace build so profiling never re-disassembles. Nil when the
	// building run was not profiling — consumers must either tolerate the
	// nil (explicit "not captured" output) or backfill lazily via
	// EnsureDisassembly.
	Insts []string
	Term  string

	// Hits counts full or partial replays; Divergences counts replays that
	// exited early because an instruction's boxedness diverged from the
	// recorded shape. Hits doubles as the tier-1 promotion counter: the
	// runtime compiles the trace once Hits crosses its JIT threshold.
	Hits        uint64
	Divergences uint64

	// Compiled holds the owning VM's tier-1 compiled body, opaque to this
	// package (the compiler lives in the runtime). Compiled bodies are
	// strictly per-VM process state: snapshot/snapshotKeepCounters clear
	// the slot, so shared-cache masters, adopted copies and fork clones
	// never carry one, and the checkpoint wire format never sees it.
	// Dropping the trace (invalidation, eviction, replacement) drops the
	// body with it.
	Compiled any
}

// Len returns the number of emulated instructions in the trace (the
// terminator is not an entry).
func (t *Trace) Len() int { return len(t.Entries) }

// snapshot returns an independent copy of t with fresh Entries/Insts
// slice headers (the immutable *Entry decodes and disassembly strings are
// shared) and zeroed replay counters. Shared-cache publication and
// adoption both go through it: the published master is never mutated, and
// every adopter replays (and counts) against its own copy.
func (t *Trace) snapshot() *Trace {
	nt := t.snapshotKeepCounters()
	nt.Hits, nt.Divergences = 0, 0
	return nt
}

// snapshotKeepCounters is snapshot preserving the replay counters (fork:
// the child inherits the parent's per-trace history like the rest of the
// process image, and diverges from there).
func (t *Trace) snapshotKeepCounters() *Trace {
	nt := *t
	nt.Entries = append([]*Entry(nil), t.Entries...)
	if t.Insts != nil {
		nt.Insts = append([]string(nil), t.Insts...)
	}
	// Tier-1 compiled bodies are per-VM: the receiving cache re-promotes
	// from its own replay counts.
	nt.Compiled = nil
	return &nt
}

// EnsureDisassembly backfills Insts/Term for a trace built while no run
// was profiling (capture is skipped off-profile; an adopted shared trace
// may come from a non-profiling VM). The emulated instructions
// re-disassemble from the cached decodes; the terminator — not an Entry —
// is fetched through fetchTerm (nil, or returning ok=false, leaves Term
// empty: length-limited sequences have no terminator instruction, and an
// unmapped EndRIP must not fail the caller).
func (t *Trace) EnsureDisassembly(fetchTerm func(rip uint64) (string, bool)) {
	if t.Insts != nil || len(t.Entries) == 0 {
		return
	}
	insts := make([]string, 0, len(t.Entries)+1)
	for _, e := range t.Entries {
		insts = append(insts, e.Inst.String())
	}
	if t.Reason != TermLimit && fetchTerm != nil {
		if s, ok := fetchTerm(t.EndRIP); ok {
			t.Term = s
			insts = append(insts, s)
		}
	}
	t.Insts = insts
}

// LookupTrace returns the cached trace starting at start, if present. On
// a local miss with a shared cache attached, a published trace is adopted:
// the VM gets its own copy (fresh counters, private Entries slice) so
// replay never mutates state another VM can see, and future traps at this
// start hit locally.
func (c *Cache) LookupTrace(start uint64) (*Trace, bool) {
	if t, ok := c.traces[start]; ok {
		c.Stats.TraceHits++
		return t, true
	}
	if c.shared != nil {
		if master, ok := c.shared.LookupTrace(start); ok {
			t := master.snapshot()
			c.Stats.SharedTraceHits++
			c.insertTraceLocal(t)
			return t, true
		}
	}
	c.Stats.TraceMisses++
	return nil, false
}

// InsertTrace caches t, evicting FIFO-oldest traces over capacity, and
// publishes a frozen copy to the shared cache when one is attached — one
// VM's trace build warms every VM. An existing trace at the same start
// address is replaced (the sequence was re-walked, e.g. after an
// invalidation).
func (c *Cache) InsertTrace(t *Trace) {
	if len(t.Entries) == 0 {
		return
	}
	c.insertTraceLocal(t)
	if c.shared != nil {
		c.shared.PublishTrace(t)
	}
}

// insertTraceLocal is InsertTrace without shared-cache publication.
func (c *Cache) insertTraceLocal(t *Trace) {
	if old, exists := c.traces[t.Start]; exists {
		c.unindexTrace(old)
	} else {
		for len(c.traces) >= c.traceCap && c.traceOrder.Len() > 0 {
			victim, _ := c.traceOrder.Pop()
			if old, ok := c.traces[victim]; ok {
				c.unindexTrace(old)
				delete(c.traces, victim)
				c.Stats.TraceEvictions++
			}
		}
		c.traceOrder.Push(t.Start)
	}
	c.traces[t.Start] = t
	for _, e := range t.Entries {
		c.ripIndex[e.Inst.Addr] = append(c.ripIndex[e.Inst.Addr], t.Start)
	}
}

// InvalidateTraces kills every trace containing rip (not only traces
// starting there) and returns how many were dropped. The recovery ladder
// calls it whenever an instruction decodes faultily or degrades: a
// pre-bound sequence must never replay through a distrusted instruction.
// With a shared cache attached, the invalidation propagates so no other
// VM adopts a sequence through the distrusted address (copies other VMs
// already adopted live out their own per-VM lifecycle).
func (c *Cache) InvalidateTraces(rip uint64) int {
	if c.shared != nil {
		c.shared.InvalidateTraces(rip)
	}
	if _, ok := c.ripIndex[rip]; !ok {
		return 0
	}
	// Snapshot the start list: unindexTrace compacts c.ripIndex[rip] in
	// place (kept := list[:0]), so ranging over the live slice would read
	// shifted elements and let overlapping traces survive.
	starts := append([]uint64(nil), c.ripIndex[rip]...)
	n := 0
	for _, start := range starts {
		if t, live := c.traces[start]; live {
			c.unindexTrace(t)
			delete(c.traces, start)
			c.Stats.TraceInvalidations++
			n++
		}
	}
	return n
}

// unindexTrace removes t's entries from the reverse index.
func (c *Cache) unindexTrace(t *Trace) {
	for _, e := range t.Entries {
		addr := e.Inst.Addr
		list := c.ripIndex[addr]
		kept := list[:0]
		for _, s := range list {
			if s != t.Start {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(c.ripIndex, addr)
		} else {
			c.ripIndex[addr] = kept
		}
	}
}

// TraceLen returns the number of cached traces.
func (c *Cache) TraceLen() int { return len(c.traces) }

// Traces returns a snapshot of the cached traces (iteration order is
// unspecified). Diagnostics and tests only — the trace table itself is
// reached through LookupTrace on the trap path.
func (c *Cache) Traces() []*Trace {
	out := make([]*Trace, 0, len(c.traces))
	for _, t := range c.traces {
		out = append(out, t)
	}
	return out
}

// EntryRIPs returns the live L1 keys oldest-first (FIFO insertion
// order). The snapshot wire format records them so a resumed run can
// rebuild the decode cache in the same eviction order the suspended run
// had — cache shape is part of deterministic cycle accounting.
func (c *Cache) EntryRIPs() []uint64 {
	out := make([]uint64, 0, len(c.entries))
	for _, rip := range c.order.buf[c.order.head:] {
		if _, ok := c.entries[rip]; ok {
			out = append(out, rip)
		}
	}
	return out
}

// TracesInOrder returns the live L2 traces oldest-first (FIFO insertion
// order), for the snapshot wire format.
func (c *Cache) TracesInOrder() []*Trace {
	out := make([]*Trace, 0, len(c.traces))
	for _, start := range c.traceOrder.buf[c.traceOrder.head:] {
		if t, ok := c.traces[start]; ok {
			out = append(out, t)
		}
	}
	return out
}

// TermReason explains why a sequence ended.
type TermReason uint8

const (
	// TermUnsupported: hit an instruction FPVM cannot decode/bind/emulate
	// (condition (1) of §4.2; includes all control flow).
	TermUnsupported TermReason = iota
	// TermNoBoxedSource: the instruction is emulatable but no source
	// operand is NaN-boxed (condition (2)).
	TermNoBoxedSource
	// TermLimit: hit the per-trap emulation limit (safety valve).
	TermLimit
)

func (t TermReason) String() string {
	switch t {
	case TermUnsupported:
		return "unsupported-instruction"
	case TermNoBoxedSource:
		return "no-nan-boxed-source"
	case TermLimit:
		return "sequence-limit"
	}
	return "term?"
}

// TraceStat aggregates executions of the sequence starting at StartRIP.
type TraceStat struct {
	StartRIP   uint64
	Len        int      // instructions emulated per execution (last observed)
	Count      uint64   // times the sequence was executed
	TotalInsts uint64   // emulated instructions summed over executions
	Insts      []string // disassembly including the terminator
	Terminator string   // disassembly of the terminating instruction
	Reason     TermReason
}

// EmulatedInsts returns the total emulated instructions attributed to this
// trace. (Summed per execution: a trace's length can vary between runs,
// e.g. when a mid-sequence instruction's operands stop being boxed.)
func (t *TraceStat) EmulatedInsts() uint64 { return t.TotalInsts }

// SeqProfile collects per-sequence statistics when profiling is enabled.
type SeqProfile struct {
	traces map[uint64]*TraceStat

	// Totals across all traps, maintained even for unprofiled runs.
	Traps         uint64
	EmulatedTotal uint64
}

// NewSeqProfile returns an empty profile.
func NewSeqProfile() *SeqProfile {
	return &SeqProfile{traces: make(map[uint64]*TraceStat)}
}

// Known reports whether a sequence starting at start has been observed
// (used to capture disassembly only once).
func (p *SeqProfile) Known(start uint64) bool {
	_, ok := p.traces[start]
	return ok
}

// Record logs one executed sequence. insts/terminator are captured only on
// first observation (they are stable for a given start address) — except
// that a first observation with no disassembly (the sequence came from a
// non-profiling trace build) is backfilled by the first later observation
// that has one.
func (p *SeqProfile) Record(start uint64, length int, reason TermReason, insts []string, term string) {
	p.Traps++
	p.EmulatedTotal += uint64(length)
	t, ok := p.traces[start]
	if !ok {
		t = &TraceStat{StartRIP: start, Insts: insts, Terminator: term}
		p.traces[start] = t
	} else if t.Insts == nil && insts != nil {
		t.Insts, t.Terminator = insts, term
	}
	t.Count++
	t.TotalInsts += uint64(length)
	t.Len = length
	t.Reason = reason
}

// AvgSeqLen is the average number of instructions emulated per trap — the
// amortization factor of §4 (≈32 for Lorenz, ≈3 for Enzo).
func (p *SeqProfile) AvgSeqLen() float64 {
	if p.Traps == 0 {
		return 0
	}
	return float64(p.EmulatedTotal) / float64(p.Traps)
}

// NumTraces returns the number of distinct sequences observed.
func (p *SeqProfile) NumTraces() int { return len(p.traces) }

// ByPopularity returns traces sorted by emulated-instruction contribution
// (descending), the ordering behind Figures 7, 8 and 10.
func (p *SeqProfile) ByPopularity() []*TraceStat {
	out := make([]*TraceStat, 0, len(p.traces))
	for _, t := range p.traces {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i].EmulatedInsts(), out[j].EmulatedInsts()
		if ei != ej {
			return ei > ej
		}
		return out[i].StartRIP < out[j].StartRIP
	})
	return out
}

// RankPopularityCDF returns, for each rank k (1-based), the cumulative
// percentage of emulated instructions covered by the top-k sequences
// (Figure 8).
func (p *SeqProfile) RankPopularityCDF() []float64 {
	traces := p.ByPopularity()
	out := make([]float64, len(traces))
	var cum uint64
	for i, t := range traces {
		cum += t.EmulatedInsts()
		if p.EmulatedTotal > 0 {
			out[i] = 100 * float64(cum) / float64(p.EmulatedTotal)
		}
	}
	return out
}

// LengthCDF returns (lengths, percentages): the percentage of distinct
// sequences with length <= L (Figure 9).
func (p *SeqProfile) LengthCDF() (lengths []int, pct []float64) {
	var ls []int
	for _, t := range p.traces {
		ls = append(ls, t.Len)
	}
	sort.Ints(ls)
	n := len(ls)
	for i, l := range ls {
		if i+1 < n && ls[i+1] == l {
			continue
		}
		lengths = append(lengths, l)
		pct = append(pct, 100*float64(i+1)/float64(n))
	}
	return lengths, pct
}

// WeightedRank returns, for each rank k, the average sequence length if
// only the top-k most popular sequences were cached (Figure 10). The curve
// converges to AvgSeqLen.
func (p *SeqProfile) WeightedRank() []float64 {
	traces := p.ByPopularity()
	out := make([]float64, len(traces))
	var insts, traps uint64
	for i, t := range traces {
		insts += t.EmulatedInsts()
		traps += t.Count
		if traps > 0 {
			out[i] = float64(insts) / float64(traps)
		}
	}
	return out
}

// Trace returns the rank-k (1-based) most popular trace, for Figure 7
// style dumps.
func (p *SeqProfile) Trace(rank int) (*TraceStat, error) {
	traces := p.ByPopularity()
	if rank < 1 || rank > len(traces) {
		return nil, fmt.Errorf("dcache: rank %d out of range (have %d traces)", rank, len(traces))
	}
	return traces[rank-1], nil
}

// CacheSizeEstimate returns the §6.3 estimate: convergence rank times
// average length at that rank, in entries. Convergence is taken at the
// rank covering pctCover percent of emulated instructions.
func (p *SeqProfile) CacheSizeEstimate(pctCover float64) int {
	cdf := p.RankPopularityCDF()
	w := p.WeightedRank()
	for i, c := range cdf {
		if c >= pctCover {
			return int(float64(i+1) * w[i])
		}
	}
	if n := len(cdf); n > 0 {
		return int(float64(n) * w[n-1])
	}
	return 0
}
