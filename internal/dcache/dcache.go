// Package dcache implements FPVM's decode cache, which sequence emulation
// turns into a software trace cache (§4.2), plus the sequence statistics
// instrumentation behind the paper's workload characterization (§6.3,
// Figures 7-10).
package dcache

import (
	"fmt"
	"sort"

	"fpvm/internal/isa"
)

// Entry is a cached decode result. Supported records whether FPVM can
// decode, bind and emulate the instruction — the sequence terminator is
// cached too, "even if case (1) holds" (§4.2).
type Entry struct {
	Inst      isa.Inst
	Supported bool
}

// Stats counts cache activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is a capacity-bounded decode cache keyed by instruction address.
type Cache struct {
	entries map[uint64]*Entry
	order   []uint64 // FIFO eviction order
	cap     int
	Stats   Stats
}

// DefaultCapacity matches the paper's default of 64K instruction entries.
const DefaultCapacity = 65536

// NewCache returns a cache bounded to capacity entries (0 = default).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{entries: make(map[uint64]*Entry), cap: capacity}
}

// Lookup returns the cached entry for rip, if present.
func (c *Cache) Lookup(rip uint64) (*Entry, bool) {
	e, ok := c.entries[rip]
	if ok {
		c.Stats.Hits++
	} else {
		c.Stats.Misses++
	}
	return e, ok
}

// Insert caches an entry for rip, evicting FIFO-oldest entries over
// capacity.
func (c *Cache) Insert(rip uint64, e *Entry) {
	if _, exists := c.entries[rip]; !exists {
		for len(c.entries) >= c.cap && len(c.order) > 0 {
			victim := c.order[0]
			c.order = c.order[1:]
			if _, ok := c.entries[victim]; ok {
				delete(c.entries, victim)
				c.Stats.Evictions++
			}
		}
		c.order = append(c.order, rip)
	}
	c.entries[rip] = e
}

// Invalidate drops the entry for rip, if present, counting an eviction.
// The FPVM runtime uses it when the recovery ladder suspects a corrupted
// decode (e.g. an injected decode fault): the next lookup misses and the
// instruction is re-decoded from guest memory.
func (c *Cache) Invalidate(rip uint64) {
	if _, ok := c.entries[rip]; ok {
		delete(c.entries, rip)
		c.Stats.Evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Clone duplicates the cache (fork(): the decode cache is FPVM state in
// process memory, so the child gets a copy).
func (c *Cache) Clone() *Cache {
	out := &Cache{
		entries: make(map[uint64]*Entry, len(c.entries)),
		order:   append([]uint64(nil), c.order...),
		cap:     c.cap,
		Stats:   c.Stats,
	}
	for k, v := range c.entries {
		out.entries[k] = v // entries are immutable decodes
	}
	return out
}

// TermReason explains why a sequence ended.
type TermReason uint8

const (
	// TermUnsupported: hit an instruction FPVM cannot decode/bind/emulate
	// (condition (1) of §4.2; includes all control flow).
	TermUnsupported TermReason = iota
	// TermNoBoxedSource: the instruction is emulatable but no source
	// operand is NaN-boxed (condition (2)).
	TermNoBoxedSource
	// TermLimit: hit the per-trap emulation limit (safety valve).
	TermLimit
)

func (t TermReason) String() string {
	switch t {
	case TermUnsupported:
		return "unsupported-instruction"
	case TermNoBoxedSource:
		return "no-nan-boxed-source"
	case TermLimit:
		return "sequence-limit"
	}
	return "term?"
}

// TraceStat aggregates executions of the sequence starting at StartRIP.
type TraceStat struct {
	StartRIP   uint64
	Len        int      // instructions emulated per execution (last observed)
	Count      uint64   // times the sequence was executed
	TotalInsts uint64   // emulated instructions summed over executions
	Insts      []string // disassembly including the terminator
	Terminator string   // disassembly of the terminating instruction
	Reason     TermReason
}

// EmulatedInsts returns the total emulated instructions attributed to this
// trace. (Summed per execution: a trace's length can vary between runs,
// e.g. when a mid-sequence instruction's operands stop being boxed.)
func (t *TraceStat) EmulatedInsts() uint64 { return t.TotalInsts }

// SeqProfile collects per-sequence statistics when profiling is enabled.
type SeqProfile struct {
	traces map[uint64]*TraceStat

	// Totals across all traps, maintained even for unprofiled runs.
	Traps         uint64
	EmulatedTotal uint64
}

// NewSeqProfile returns an empty profile.
func NewSeqProfile() *SeqProfile {
	return &SeqProfile{traces: make(map[uint64]*TraceStat)}
}

// Known reports whether a sequence starting at start has been observed
// (used to capture disassembly only once).
func (p *SeqProfile) Known(start uint64) bool {
	_, ok := p.traces[start]
	return ok
}

// Record logs one executed sequence. insts/terminator are captured only on
// first observation (they are stable for a given start address).
func (p *SeqProfile) Record(start uint64, length int, reason TermReason, insts []string, term string) {
	p.Traps++
	p.EmulatedTotal += uint64(length)
	t, ok := p.traces[start]
	if !ok {
		t = &TraceStat{StartRIP: start, Insts: insts, Terminator: term}
		p.traces[start] = t
	}
	t.Count++
	t.TotalInsts += uint64(length)
	t.Len = length
	t.Reason = reason
}

// AvgSeqLen is the average number of instructions emulated per trap — the
// amortization factor of §4 (≈32 for Lorenz, ≈3 for Enzo).
func (p *SeqProfile) AvgSeqLen() float64 {
	if p.Traps == 0 {
		return 0
	}
	return float64(p.EmulatedTotal) / float64(p.Traps)
}

// NumTraces returns the number of distinct sequences observed.
func (p *SeqProfile) NumTraces() int { return len(p.traces) }

// ByPopularity returns traces sorted by emulated-instruction contribution
// (descending), the ordering behind Figures 7, 8 and 10.
func (p *SeqProfile) ByPopularity() []*TraceStat {
	out := make([]*TraceStat, 0, len(p.traces))
	for _, t := range p.traces {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i].EmulatedInsts(), out[j].EmulatedInsts()
		if ei != ej {
			return ei > ej
		}
		return out[i].StartRIP < out[j].StartRIP
	})
	return out
}

// RankPopularityCDF returns, for each rank k (1-based), the cumulative
// percentage of emulated instructions covered by the top-k sequences
// (Figure 8).
func (p *SeqProfile) RankPopularityCDF() []float64 {
	traces := p.ByPopularity()
	out := make([]float64, len(traces))
	var cum uint64
	for i, t := range traces {
		cum += t.EmulatedInsts()
		if p.EmulatedTotal > 0 {
			out[i] = 100 * float64(cum) / float64(p.EmulatedTotal)
		}
	}
	return out
}

// LengthCDF returns (lengths, percentages): the percentage of distinct
// sequences with length <= L (Figure 9).
func (p *SeqProfile) LengthCDF() (lengths []int, pct []float64) {
	var ls []int
	for _, t := range p.traces {
		ls = append(ls, t.Len)
	}
	sort.Ints(ls)
	n := len(ls)
	for i, l := range ls {
		if i+1 < n && ls[i+1] == l {
			continue
		}
		lengths = append(lengths, l)
		pct = append(pct, 100*float64(i+1)/float64(n))
	}
	return lengths, pct
}

// WeightedRank returns, for each rank k, the average sequence length if
// only the top-k most popular sequences were cached (Figure 10). The curve
// converges to AvgSeqLen.
func (p *SeqProfile) WeightedRank() []float64 {
	traces := p.ByPopularity()
	out := make([]float64, len(traces))
	var insts, traps uint64
	for i, t := range traces {
		insts += t.EmulatedInsts()
		traps += t.Count
		if traps > 0 {
			out[i] = float64(insts) / float64(traps)
		}
	}
	return out
}

// Trace returns the rank-k (1-based) most popular trace, for Figure 7
// style dumps.
func (p *SeqProfile) Trace(rank int) (*TraceStat, error) {
	traces := p.ByPopularity()
	if rank < 1 || rank > len(traces) {
		return nil, fmt.Errorf("dcache: rank %d out of range (have %d traces)", rank, len(traces))
	}
	return traces[rank-1], nil
}

// CacheSizeEstimate returns the §6.3 estimate: convergence rank times
// average length at that rank, in entries. Convergence is taken at the
// rank covering pctCover percent of emulated instructions.
func (p *SeqProfile) CacheSizeEstimate(pctCover float64) int {
	cdf := p.RankPopularityCDF()
	w := p.WeightedRank()
	for i, c := range cdf {
		if c >= pctCover {
			return int(float64(i+1) * w[i])
		}
	}
	if n := len(cdf); n > 0 {
		return int(float64(n) * w[n-1])
	}
	return 0
}
