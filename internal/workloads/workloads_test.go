package workloads_test

import (
	"strings"
	"testing"

	"fpvm"
	"fpvm/internal/telemetry"
	"fpvm/internal/workloads"
)

// TestNativeRuns builds every workload at small scale and checks it runs
// to completion natively with plausible output.
func TestNativeRuns(t *testing.T) {
	for _, name := range workloads.All() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			img, err := workloads.Build(name, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := fpvm.RunNative(img)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit %d, stdout %q", res.ExitCode, res.Stdout)
			}
			if res.FPInstructions == 0 {
				t.Fatal("no FP instructions retired")
			}
			if strings.Contains(res.Stdout, "nan") || strings.Contains(res.Stdout, "NaN") {
				t.Fatalf("NaN leaked into native output: %q", res.Stdout)
			}
		})
	}
}

// TestFPVMBitEqual verifies the paper's validation claim: with the Boxed
// IEEE system, FPVM produces bit-for-bit identical output to native
// execution, across all four acceleration configs, once the image carries
// correctness instrumentation.
func TestFPVMBitEqual(t *testing.T) {
	for _, name := range workloads.All() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			img, err := workloads.Build(name, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			native, err := fpvm.RunNative(img)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			patched, err := fpvm.PrepareForFPVM(img, true)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			for _, cfg := range []fpvm.Config{
				{Alt: fpvm.AltBoxed},
				{Alt: fpvm.AltBoxed, Seq: true},
				{Alt: fpvm.AltBoxed, Short: true},
				{Alt: fpvm.AltBoxed, Seq: true, Short: true},
			} {
				res, err := fpvm.Run(patched, cfg)
				if err != nil {
					t.Fatalf("%s: %v", cfg.ConfigName(), err)
				}
				if res.Stdout != native.Stdout {
					t.Errorf("%s: output mismatch\n fpvm:   %q\n native: %q",
						cfg.ConfigName(), res.Stdout, native.Stdout)
				}
				if res.Traps == 0 {
					t.Errorf("%s: no FP traps", cfg.ConfigName())
				}
			}
		})
	}
}

// TestProfilerSubsetOfAnalysis reproduces the §5.1 relationship: the
// profiler's dynamic site set is contained in the static analysis's
// conservative set.
func TestProfilerSubsetOfAnalysis(t *testing.T) {
	for _, name := range workloads.All() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			img, err := workloads.Build(name, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			prof, _, err := fpvm.ProfileSites(img)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			static, _, err := fpvm.AnalyzeSites(img)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			staticSet := map[uint64]bool{}
			for _, s := range static {
				staticSet[s] = true
			}
			for _, s := range prof {
				if !staticSet[s] {
					t.Errorf("profiler site %#x not found by static analysis", s)
				}
			}
			if len(static) < len(prof) {
				t.Errorf("static (%d) found fewer sites than profiler (%d)", len(static), len(prof))
			}
		})
	}
}

// TestMagicEqualsInt3 verifies both correctness-trap mechanisms yield the
// same program output, with the magic path dramatically cheaper per event.
func TestMagicEqualsInt3(t *testing.T) {
	img, err := workloads.Build(workloads.ThreeBody, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sites, _, err := fpvm.ProfileSites(img)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if len(sites) == 0 {
		t.Fatal("three-body should have memory-escape sites (F2Bits)")
	}
	int3Img, err := fpvm.PatchImage(img, sites, fpvm.PatchInt3)
	if err != nil {
		t.Fatalf("patch int3: %v", err)
	}
	magicImg, err := fpvm.PatchImage(img, sites, fpvm.PatchMagic)
	if err != nil {
		t.Fatalf("patch magic: %v", err)
	}
	cfg := fpvm.Config{Alt: fpvm.AltBoxed, Seq: true}
	a, err := fpvm.Run(int3Img, cfg)
	if err != nil {
		t.Fatalf("int3 run: %v", err)
	}
	b, err := fpvm.Run(magicImg, cfg)
	if err != nil {
		t.Fatalf("magic run: %v", err)
	}
	if a.Stdout != b.Stdout {
		t.Errorf("outputs differ:\n int3:  %q\n magic: %q", a.Stdout, b.Stdout)
	}
	if a.Breakdown.CorrEvents == 0 || b.Breakdown.CorrEvents == 0 {
		t.Errorf("expected correctness events (int3 %d, magic %d)",
			a.Breakdown.CorrEvents, b.Breakdown.CorrEvents)
	}
	int3PerEvent := float64(a.Breakdown.Cycles[telemetry.Corr]) / float64(a.Breakdown.CorrEvents)
	magicPerEvent := float64(b.Breakdown.Cycles[telemetry.Corr]) / float64(b.Breakdown.CorrEvents)
	if magicPerEvent*5 > int3PerEvent {
		t.Errorf("magic traps not much cheaper: %.0f vs %.0f cycles/event",
			magicPerEvent, int3PerEvent)
	}
}
