package workloads

import c "fpvm/internal/compile"

// lorenzProgram integrates the Lorenz system (σ=10, ρ=28, β=8/3) with
// forward Euler. The loop body is straight-line floating point — loads,
// multiplies, adds, stores, no calls — which is what gives Lorenz its
// long emulatable sequences (the paper reports ~32 instructions per trap
// and notes its small state generates little garbage).
func lorenzProgram(steps int64) *c.Program {
	p := c.NewProgram("lorenz_attractor")
	p.Globals["x"] = 1.0
	p.Globals["y"] = 1.0
	p.Globals["z"] = 20.0

	const (
		sigma = 10.0
		rho   = 28.0
		beta  = 8.0 / 3.0
		dt    = 0.005
	)

	body := []c.Stmt{
		// dx = sigma*(y-x); dy = x*(rho-z)-y; dz = x*y - beta*z
		c.Assign{Dst: "dx", Src: c.Mul2(c.Num(sigma), c.Sub2(c.Var("y"), c.Var("x")))},
		c.Assign{Dst: "dy", Src: c.Sub2(c.Mul2(c.Var("x"), c.Sub2(c.Num(rho), c.Var("z"))), c.Var("y"))},
		c.Assign{Dst: "dz", Src: c.Sub2(c.Mul2(c.Var("x"), c.Var("y")), c.Mul2(c.Num(beta), c.Var("z")))},
		c.Assign{Dst: "x", Src: c.Add2(c.Var("x"), c.Mul2(c.Num(dt), c.Var("dx")))},
		c.Assign{Dst: "y", Src: c.Add2(c.Var("y"), c.Mul2(c.Num(dt), c.Var("dy")))},
		c.Assign{Dst: "z", Src: c.Add2(c.Var("z"), c.Mul2(c.Num(dt), c.Var("dz")))},
	}

	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(steps), Body: body},
		c.Printf{Format: "lorenz: %g %g %g\n", FArgs: []c.Expr{c.Var("x"), c.Var("y"), c.Var("z")}},
	}}
	p.AddFunc(main)
	return p
}
