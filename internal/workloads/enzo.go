package workloads

import c "fpvm/internal/compile"

// enzoProgram is the synthetic stand-in for the Enzo astrophysics code
// (307k lines of C/Fortran — see DESIGN.md substitutions). What matters
// for the paper's experiments is Enzo's *profile shape*: many distinct
// floating point kernels, each contributing short emulatable sequences
// (~3 instructions per trap), lots of intermediate values (the most GC
// pressure of any workload), and a large writable footprint for the
// conservative collector to scan.
//
// The program is a 1-D compressible hydro stepper (Sod shock tube) with
// separate kernels for equation of state, characteristic speeds, upwind
// fluxes, conserved-variable update, artificial viscosity, smoothing,
// gradient estimation and a refinement-criterion scan — eight-plus
// distinct hot loops touching five state arrays.
func enzoProgram(steps int64) *c.Program {
	p := c.NewProgram("enzo")

	const n = 96
	const gamma = 1.4
	p.Arrays["rho"] = n  // density
	p.Arrays["mom"] = n  // momentum
	p.Arrays["ene"] = n  // total energy
	p.Arrays["prs"] = n  // pressure
	p.Arrays["vel"] = n  // velocity
	p.Arrays["cs"] = n   // sound speed
	p.Arrays["frho"] = n // fluxes
	p.Arrays["fmom"] = n
	p.Arrays["fene"] = n
	p.Arrays["grad"] = n
	p.IntGlobals["refine"] = 0

	const dtdx = 0.1

	v := c.V
	iv := c.IV
	at := c.At
	idx := func(arr string, i c.IExpr, e c.Expr) c.Stmt { return c.AssignIdx{Arr: arr, I: i, Src: e} }

	// init: Sod shock tube.
	initF := &c.Func{Name: "init_grid", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			c.If{Cond: c.ICmp(c.LT, iv("i"), c.IConst(n/2)),
				Then: []c.Stmt{
					idx("rho", iv("i"), c.Num(1.0)),
					idx("ene", iv("i"), c.Num(2.5)),
				},
				Else: []c.Stmt{
					idx("rho", iv("i"), c.Num(0.125)),
					idx("ene", iv("i"), c.Num(0.25)),
				}},
			idx("mom", iv("i"), c.Num(0)),
		}},
	}}

	// eos: vel = mom/rho; prs = (γ-1)(ene - mom²/(2 rho)).
	eos := &c.Func{Name: "eos", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			idx("vel", iv("i"), c.Div2(at("mom", iv("i")), at("rho", iv("i")))),
			idx("prs", iv("i"), c.Mul2(c.Num(gamma-1),
				c.Sub2(at("ene", iv("i")),
					c.Div2(c.Mul2(at("mom", iv("i")), at("mom", iv("i"))),
						c.Mul2(c.Num(2), at("rho", iv("i"))))))),
		}},
	}}

	// sound: cs = sqrt(γ p / ρ), clamped positive.
	sound := &c.Func{Name: "sound_speed", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			idx("cs", iv("i"), c.Sqrt(c.Div2(
				c.Mul2(c.Num(gamma), c.Max2(at("prs", iv("i")), c.Num(1e-10))),
				at("rho", iv("i"))))),
		}},
	}}

	// flux: Rusanov flux at interface i (between i and i+1).
	flux := &c.Func{Name: "compute_flux", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n - 1), Body: []c.Stmt{
			c.IAssign{Dst: "j", Src: c.IAdd2(iv("i"), c.IConst(1))},
			// a = max(|v_i|+cs_i, |v_j|+cs_j)
			c.Assign{Dst: "a", Src: c.Max2(
				c.Add2(c.Abs(at("vel", iv("i"))), at("cs", iv("i"))),
				c.Add2(c.Abs(at("vel", iv("j"))), at("cs", iv("j"))))},
			// physical fluxes left/right
			c.Assign{Dst: "frl", Src: at("mom", iv("i"))},
			c.Assign{Dst: "frr", Src: at("mom", iv("j"))},
			c.Assign{Dst: "fml", Src: c.Add2(
				c.Mul2(at("mom", iv("i")), at("vel", iv("i"))), at("prs", iv("i")))},
			c.Assign{Dst: "fmr", Src: c.Add2(
				c.Mul2(at("mom", iv("j")), at("vel", iv("j"))), at("prs", iv("j")))},
			c.Assign{Dst: "fel", Src: c.Mul2(at("vel", iv("i")),
				c.Add2(at("ene", iv("i")), at("prs", iv("i"))))},
			c.Assign{Dst: "fer", Src: c.Mul2(at("vel", iv("j")),
				c.Add2(at("ene", iv("j")), at("prs", iv("j"))))},
			// Rusanov: 0.5(fl+fr) - 0.5 a (uR - uL)
			idx("frho", iv("i"), c.Sub2(
				c.Mul2(c.Num(0.5), c.Add2(v("frl"), v("frr"))),
				c.Mul2(c.Mul2(c.Num(0.5), v("a")),
					c.Sub2(at("rho", iv("j")), at("rho", iv("i")))))),
			idx("fmom", iv("i"), c.Sub2(
				c.Mul2(c.Num(0.5), c.Add2(v("fml"), v("fmr"))),
				c.Mul2(c.Mul2(c.Num(0.5), v("a")),
					c.Sub2(at("mom", iv("j")), at("mom", iv("i")))))),
			idx("fene", iv("i"), c.Sub2(
				c.Mul2(c.Num(0.5), c.Add2(v("fel"), v("fer"))),
				c.Mul2(c.Mul2(c.Num(0.5), v("a")),
					c.Sub2(at("ene", iv("j")), at("ene", iv("i")))))),
		}},
	}}

	// update: u_i -= dt/dx (F_i - F_{i-1}) for interior cells.
	update := &c.Func{Name: "advance", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			c.IAssign{Dst: "k", Src: c.ISub2(iv("i"), c.IConst(1))},
			idx("rho", iv("i"), c.Sub2(at("rho", iv("i")), c.Mul2(c.Num(dtdx),
				c.Sub2(at("frho", iv("i")), at("frho", iv("k")))))),
			idx("mom", iv("i"), c.Sub2(at("mom", iv("i")), c.Mul2(c.Num(dtdx),
				c.Sub2(at("fmom", iv("i")), at("fmom", iv("k")))))),
			idx("ene", iv("i"), c.Sub2(at("ene", iv("i")), c.Mul2(c.Num(dtdx),
				c.Sub2(at("fene", iv("i")), at("fene", iv("k")))))),
		}},
	}}

	// viscosity: mom smoothing where velocity gradients steepen.
	visc := &c.Func{Name: "viscosity", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			c.Assign{Dst: "dv", Src: c.Sub2(at("vel", c.IAdd2(iv("i"), c.IConst(1))),
				at("vel", c.ISub2(iv("i"), c.IConst(1))))},
			c.If{Cond: c.FCmp(c.LT, v("dv"), c.Num(0)), Then: []c.Stmt{
				idx("mom", iv("i"), c.Add2(at("mom", iv("i")),
					c.Mul2(c.Num(0.01), c.Mul2(v("dv"), at("rho", iv("i")))))),
			}},
		}},
	}}

	// gradient: grad_i = |rho_{i+1} - rho_{i-1}| / 2.
	grad := &c.Func{Name: "gradient", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			idx("grad", iv("i"), c.Mul2(c.Num(0.5), c.Abs(c.Sub2(
				at("rho", c.IAdd2(iv("i"), c.IConst(1))),
				at("rho", c.ISub2(iv("i"), c.IConst(1))))))),
		}},
	}}

	// refine_scan: count cells exceeding the refinement criterion — the
	// comparison result feeds an integer counter, and the sign-bit test
	// reinterprets the gradient's bits (memory-escape correctness site).
	refine := &c.Func{Name: "refine_scan", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			c.If{Cond: c.FCmp(c.GT, at("grad", iv("i")), c.Num(0.02)), Then: []c.Stmt{
				c.IAssign{Dst: "refine", Src: c.IAdd2(c.ILoad{Arr: "refine"}, c.IConst(1))},
			}},
		}},
		// Bit-level probe of a float through memory.
		c.IAssign{Dst: "refine", Src: c.IAdd2(
			c.ILoad{Arr: "refine"},
			c.IBin{Op: c.IShr, L: c.F2Bits{X: at("grad", c.IConst(n/2))}, R: c.IConst(63)})},
	}}

	// energy_floor: clamp internal energy (max against a floor computed
	// from density) — a distinct min/max-flavoured loop.
	efloor := &c.Func{Name: "energy_floor", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			idx("ene", iv("i"), c.Max2(at("ene", iv("i")),
				c.Mul2(c.Num(1e-6), at("rho", iv("i"))))),
		}},
	}}

	// smooth: three-point density smoothing into grad (reusing it as
	// scratch), then copy back — two more hot loops.
	smooth := &c.Func{Name: "smooth", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			idx("grad", iv("i"), c.Add2(
				c.Mul2(c.Num(0.5), at("rho", iv("i"))),
				c.Mul2(c.Num(0.25), c.Add2(
					at("rho", c.IAdd2(iv("i"), c.IConst(1))),
					at("rho", c.ISub2(iv("i"), c.IConst(1))))))),
		}},
		c.For{Var: "i", Start: c.IConst(1), Limit: c.IConst(n - 1), Body: []c.Stmt{
			idx("rho", iv("i"), at("grad", iv("i"))),
		}},
	}}

	// cfl_scan: running max of |v|+cs (the timestep criterion) — a
	// reduction loop with compares.
	cfl := &c.Func{Name: "cfl_scan", Body: []c.Stmt{
		c.Assign{Dst: "amax", Src: c.Num(0)},
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			c.Assign{Dst: "amax", Src: c.Max2(v("amax"),
				c.Add2(c.Abs(at("vel", iv("i"))), at("cs", iv("i"))))},
		}},
		c.Assign{Dst: "dtg", Src: c.Div2(c.Num(0.4), c.Max2(v("amax"), c.Num(1e-10)))},
	}}

	// boundary: copy edge cells (moves only).
	boundary := &c.Func{Name: "boundary", Body: []c.Stmt{
		idx("rho", c.IConst(0), at("rho", c.IConst(1))),
		idx("mom", c.IConst(0), c.Neg(at("mom", c.IConst(1)))),
		idx("ene", c.IConst(0), at("ene", c.IConst(1))),
		idx("rho", c.IConst(n-1), at("rho", c.IConst(n-2))),
		idx("mom", c.IConst(n-1), c.Neg(at("mom", c.IConst(n-2)))),
		idx("ene", c.IConst(n-1), at("ene", c.IConst(n-2))),
	}}

	for _, f := range []*c.Func{initF, eos, sound, flux, update, visc, grad, refine, boundary, efloor, smooth, cfl} {
		p.AddFunc(f)
	}

	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.CallStmt{Fn: "init_grid"},
		c.For{Var: "step", Start: c.IConst(0), Limit: c.IConst(steps), Body: []c.Stmt{
			c.CallStmt{Fn: "eos"},
			c.CallStmt{Fn: "sound_speed"},
			c.CallStmt{Fn: "compute_flux"},
			c.CallStmt{Fn: "advance"},
			c.CallStmt{Fn: "viscosity"},
			c.CallStmt{Fn: "boundary"},
			c.CallStmt{Fn: "energy_floor"},
			c.CallStmt{Fn: "gradient"},
			c.CallStmt{Fn: "refine_scan"},
			c.CallStmt{Fn: "cfl_scan"},
			c.If{Cond: c.ICmp(c.EQ, c.IBin{Op: c.IAnd, L: iv("step"), R: c.IConst(3)}, c.IConst(3)),
				Then: []c.Stmt{c.CallStmt{Fn: "smooth"}}},
		}},
		c.Printf{Format: "enzo: rho_mid=%g prs_mid=%g refine=%d\n",
			FArgs: []c.Expr{at("rho", c.IConst(n/2)), at("prs", c.IConst(n/2))},
			IArgs: []c.IExpr{c.ILoad{Arr: "refine"}}},
	}}
	p.AddFunc(main)
	return p
}
