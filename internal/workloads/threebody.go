package workloads

import c "fpvm/internal/compile"

// threeBodyProgram simulates a planar three-body gravity problem
// (figure-eight-ish initial conditions) with leapfrog-flavoured Euler
// steps. Matching the paper's observation that 3-body "writes more
// floating point data to the filesystem using fprintf", it prints all
// positions every few steps (foreign-function correctness traffic) and
// tallies sign bits by reinterpreting coordinates as integers through
// memory (memory-escape correctness traffic).
func threeBodyProgram(steps int64) *c.Program {
	p := c.NewProgram("three_body_simulation")
	// Positions / velocities / masses for bodies 0..2.
	init := map[string]float64{
		"x0": 0.97000436, "y0": -0.24308753, "vx0": 0.466203685, "vy0": 0.43236573,
		"x1": -0.97000436, "y1": 0.24308753, "vx1": 0.466203685, "vy1": 0.43236573,
		"x2": 0, "y2": 0, "vx2": -0.93240737, "vy2": -0.86473146,
	}
	for k, v := range init {
		p.Globals[k] = v
	}
	p.IntGlobals["negcount"] = 0

	const dt = 0.002

	v := c.V
	pairAccel := func(i, j string) []c.Stmt {
		// dx = xj - xi ; r2 = dx^2 + dy^2 ; inv = 1/(r2*sqrt(r2))
		dx := "dx" + i + j
		dy := "dy" + i + j
		inv := "inv" + i + j
		return []c.Stmt{
			c.Assign{Dst: dx, Src: c.Sub2(v("x"+j), v("x"+i))},
			c.Assign{Dst: dy, Src: c.Sub2(v("y"+j), v("y"+i))},
			// inv_r3 is a helper function, as in the original C — the
			// call breaks the basic block, keeping sequences moderate.
			c.Assign{Dst: inv, Src: c.CallFn{Fn: "inv_r3", Args: []c.Expr{v(dx), v(dy)}}},
			// Equal unit masses: a_i += d*inv ; a_j -= d*inv.
			c.Assign{Dst: "ax" + i, Src: c.Add2(v("ax"+i), c.Mul2(v(dx), v(inv)))},
			c.Assign{Dst: "ay" + i, Src: c.Add2(v("ay"+i), c.Mul2(v(dy), v(inv)))},
			c.Assign{Dst: "ax" + j, Src: c.Sub2(v("ax"+j), c.Mul2(v(dx), v(inv)))},
			c.Assign{Dst: "ay" + j, Src: c.Sub2(v("ay"+j), c.Mul2(v(dy), v(inv)))},
		}
	}

	// inv_r3(dx, dy) = 1 / (r² · √r²).
	p.AddFunc(&c.Func{
		Name:   "inv_r3",
		Params: []string{"pdx", "pdy"},
		Body: []c.Stmt{
			c.Assign{Dst: "r2", Src: c.Add2(
				c.Mul2(v("pdx"), v("pdx")), c.Mul2(v("pdy"), v("pdy")))},
			c.Return{X: c.Div2(c.Num(1), c.Mul2(v("r2"), c.Sqrt(v("r2"))))},
		},
	})

	var body []c.Stmt
	for _, b := range []string{"0", "1", "2"} {
		body = append(body,
			c.Assign{Dst: "ax" + b, Src: c.Num(0)},
			c.Assign{Dst: "ay" + b, Src: c.Num(0)})
	}
	body = append(body, pairAccel("0", "1")...)
	body = append(body, pairAccel("0", "2")...)
	body = append(body, pairAccel("1", "2")...)
	for _, b := range []string{"0", "1", "2"} {
		body = append(body,
			c.Assign{Dst: "vx" + b, Src: c.Add2(v("vx"+b), c.Mul2(c.Num(dt), v("ax"+b)))},
			c.Assign{Dst: "vy" + b, Src: c.Add2(v("vy"+b), c.Mul2(c.Num(dt), v("ay"+b)))},
			c.Assign{Dst: "x" + b, Src: c.Add2(v("x"+b), c.Mul2(c.Num(dt), v("vx"+b)))},
			c.Assign{Dst: "y" + b, Src: c.Add2(v("y"+b), c.Mul2(c.Num(dt), v("vy"+b)))})
	}

	// Every 8th step: fprintf-style output of all positions, plus a
	// sign-bit tally through an integer reinterpretation.
	body = append(body,
		c.If{
			Cond: c.ICmp(c.EQ, c.IBin{Op: c.IAnd, L: c.IVar("i"), R: c.IConst(7)}, c.IConst(7)),
			Then: []c.Stmt{
				c.Printf{Format: "%g %g %g %g %g %g\n",
					FArgs: []c.Expr{v("x0"), v("y0"), v("x1"), v("y1"), v("x2"), v("y2")}},
				c.IAssign{Dst: "negcount", Src: c.IAdd2(
					c.ILoad{Arr: "negcount"},
					c.IBin{Op: c.IShr, L: c.F2Bits{X: v("x0")}, R: c.IConst(63)})},
			},
		})

	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(steps), Body: body},
		c.Printf{Format: "threebody: %g %g negs=%d\n",
			FArgs: []c.Expr{v("x0"), v("y0")},
			IArgs: []c.IExpr{c.ILoad{Arr: "negcount"}}},
	}}
	p.AddFunc(main)
	return p
}
