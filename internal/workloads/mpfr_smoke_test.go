package workloads_test

import (
	"testing"

	"fpvm"
	"fpvm/internal/workloads"
)

func TestMPFRAllWorkloads(t *testing.T) {
	for _, name := range workloads.All() {
		img, err := workloads.Build(name, 1)
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		patched, err := fpvm.PrepareForFPVM(img, true)
		if err != nil {
			t.Fatalf("%s prepare: %v", name, err)
		}
		res, err := fpvm.Run(patched, fpvm.Config{Alt: fpvm.AltMPFR, Seq: true, Short: true})
		if err != nil {
			t.Fatalf("%s mpfr: %v", name, err)
		}
		t.Logf("%s: %q traps=%d emul=%d", name, res.Stdout, res.Traps, res.EmulatedInsts)
	}
}
