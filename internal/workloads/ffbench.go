package workloads

import c "fpvm/internal/compile"

// ffbenchProgram is an adaptation of John Walker's FFBench: repeated
// in-place complex FFT / inverse-FFT passes over a synthetic signal,
// checked against the original data. The butterfly inner loops mix array
// index arithmetic (integer, sequence-terminating) with medium runs of
// FP multiplies/adds, and the twiddle factors update through a pure-FP
// rotation recurrence, giving ffbench its mid-length sequences.
func ffbenchProgram(passes int64) *c.Program {
	p := c.NewProgram("ffbench")

	const n = 256 // FFT size (power of two)
	p.Arrays["re"] = n
	p.Arrays["im"] = n
	p.Arrays["orig"] = n
	p.IntGlobals["n"] = n

	v := c.V
	iv := c.IV
	at := c.At

	// fill: synthetic signal re[i] = sin(0.7*i)+0.3*cos(2.1*i), im = 0.
	fill := &c.Func{Name: "fill", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
			c.Assign{Dst: "t", Src: c.I2F{X: iv("i")}},
			c.AssignIdx{Arr: "re", I: iv("i"), Src: c.Add2(
				c.Sin(c.Mul2(c.Num(0.7), v("t"))),
				c.Mul2(c.Num(0.3), c.Cos(c.Mul2(c.Num(2.1), v("t")))))},
			c.AssignIdx{Arr: "im", I: iv("i"), Src: c.Num(0)},
			c.AssignIdx{Arr: "orig", I: iv("i"), Src: at("re", iv("i"))},
		}},
	}}
	p.AddFunc(fill)

	// fft(dir): iterative radix-2 Cooley-Tukey with bit-reversal
	// permutation. dir = +1 forward, -1 inverse (scaling applied by the
	// caller).
	fft := &c.Func{
		Name:   "fft",
		Params: []string{"dir"},
		Body: []c.Stmt{
			// Bit-reversal permutation (j tracks the reversed index).
			c.IAssign{Dst: "j", Src: c.IConst(0)},
			c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n - 1), Body: []c.Stmt{
				c.If{Cond: c.ICmp(c.LT, iv("i"), iv("j")), Then: []c.Stmt{
					c.Assign{Dst: "tr", Src: at("re", iv("i"))},
					c.AssignIdx{Arr: "re", I: iv("i"), Src: at("re", iv("j"))},
					c.AssignIdx{Arr: "re", I: iv("j"), Src: v("tr")},
					c.Assign{Dst: "ti", Src: at("im", iv("i"))},
					c.AssignIdx{Arr: "im", I: iv("i"), Src: at("im", iv("j"))},
					c.AssignIdx{Arr: "im", I: iv("j"), Src: v("ti")},
				}},
				// k = n/2; while 1 <= k <= j { j -= k; k >>= 1 }; j += k
				c.IAssign{Dst: "k", Src: c.IConst(n / 2)},
				c.While{Cond: c.Cond{Op: c.LE, IL: iv("k"), IR: iv("j")}, Body: []c.Stmt{
					c.IAssign{Dst: "j", Src: c.ISub2(iv("j"), iv("k"))},
					c.IAssign{Dst: "k", Src: c.IBin{Op: c.IShr, L: iv("k"), R: c.IConst(1)}},
				}},
				c.IAssign{Dst: "j", Src: c.IAdd2(iv("j"), iv("k"))},
			}},

			// Danielson-Lanczos stages.
			c.IAssign{Dst: "len", Src: c.IConst(2)},
			c.While{Cond: c.Cond{Op: c.LE, IL: iv("len"), IR: c.ILoad{Arr: "n"}}, Body: []c.Stmt{
				// ang = dir * -2π/len ; (cr, ci) = (cos ang, sin ang)
				c.Assign{Dst: "ang", Src: c.Div2(
					c.Mul2(v("dir"), c.Num(-6.283185307179586)),
					c.I2F{X: iv("len")})},
				c.Assign{Dst: "cr", Src: c.Cos(v("ang"))},
				c.Assign{Dst: "ci", Src: c.Sin(v("ang"))},
				c.For{Var: "i0", Start: c.IConst(0), Limit: c.ILoad{Arr: "n"}, Body: []c.Stmt{
					// Only process block starts: i0 % len == 0, via mask
					// (len is a power of two).
					c.If{Cond: c.ICmp(c.EQ,
						c.IBin{Op: c.IAnd, L: iv("i0"), R: c.ISub2(iv("len"), c.IConst(1))},
						c.IConst(0)), Then: []c.Stmt{
						// (wr, wi) = (1, 0)
						c.Assign{Dst: "wr", Src: c.Num(1)},
						c.Assign{Dst: "wi", Src: c.Num(0)},
						c.IAssign{Dst: "half", Src: c.IBin{Op: c.IShr, L: iv("len"), R: c.IConst(1)}},
						c.For{Var: "q", Start: c.IConst(0), Limit: iv("half"), Body: []c.Stmt{
							c.IAssign{Dst: "a", Src: c.IAdd2(iv("i0"), iv("q"))},
							c.IAssign{Dst: "b", Src: c.IAdd2(iv("a"), iv("half"))},
							// butterfly: t = w * x[b]; x[b] = x[a] - t; x[a] += t
							c.Assign{Dst: "xr", Src: at("re", iv("b"))},
							c.Assign{Dst: "xi", Src: at("im", iv("b"))},
							c.Assign{Dst: "txr", Src: c.Sub2(c.Mul2(v("wr"), v("xr")), c.Mul2(v("wi"), v("xi")))},
							c.Assign{Dst: "txi", Src: c.Add2(c.Mul2(v("wr"), v("xi")), c.Mul2(v("wi"), v("xr")))},
							c.AssignIdx{Arr: "re", I: iv("b"), Src: c.Sub2(at("re", iv("a")), v("txr"))},
							c.AssignIdx{Arr: "im", I: iv("b"), Src: c.Sub2(at("im", iv("a")), v("txi"))},
							c.AssignIdx{Arr: "re", I: iv("a"), Src: c.Add2(at("re", iv("a")), v("txr"))},
							c.AssignIdx{Arr: "im", I: iv("a"), Src: c.Add2(at("im", iv("a")), v("txi"))},
							// w *= (cr, ci): pure FP rotation update
							c.Assign{Dst: "twr", Src: c.Sub2(c.Mul2(v("wr"), v("cr")), c.Mul2(v("wi"), v("ci")))},
							c.Assign{Dst: "wi", Src: c.Add2(c.Mul2(v("wr"), v("ci")), c.Mul2(v("wi"), v("cr")))},
							c.Assign{Dst: "wr", Src: v("twr")},
						}},
					}},
				}},
				c.IAssign{Dst: "len", Src: c.IBin{Op: c.IShl, L: iv("len"), R: c.IConst(1)}},
			}},
		},
	}
	p.AddFunc(fft)

	// main: fill, then passes × (fft, inverse fft, rescale, residual).
	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.CallStmt{Fn: "fill"},
		c.Assign{Dst: "maxerr", Src: c.Num(0)},
		c.For{Var: "pass", Start: c.IConst(0), Limit: c.IConst(passes), Body: []c.Stmt{
			c.CallStmt{Fn: "fft", Args: []c.Expr{c.Num(1)}},
			c.CallStmt{Fn: "fft", Args: []c.Expr{c.Num(-1)}},
			// rescale by 1/n and accumulate the max abs error vs orig.
			c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(n), Body: []c.Stmt{
				c.AssignIdx{Arr: "re", I: iv("i"), Src: c.Div2(at("re", iv("i")), c.Num(n))},
				c.AssignIdx{Arr: "im", I: iv("i"), Src: c.Div2(at("im", iv("i")), c.Num(n))},
				c.Assign{Dst: "maxerr", Src: c.Max2(v("maxerr"),
					c.Abs(c.Sub2(at("re", iv("i")), at("orig", iv("i")))))},
			}},
		}},
		c.Printf{Format: "ffbench: maxerr=%g\n", FArgs: []c.Expr{v("maxerr")}},
	}}
	p.AddFunc(main)
	return p
}
