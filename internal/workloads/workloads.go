// Package workloads provides the paper's evaluation programs, written in
// the internal/compile kernel language and compiled to guest images:
//
//	fbench     — John Walker's optical ray-tracing benchmark (trig-heavy,
//	             short sequences: the paper measures ~4 insts/trap)
//	ffbench    — Walker's FFT benchmark (butterfly loops, medium runs)
//	lorenz     — a Lorenz-system simulator (long straight-line FP runs,
//	             ~32 insts/trap in the paper; little garbage)
//	threebody  — a three-body gravity simulation (heavy fprintf output →
//	             foreign-function + memory-escape correctness traffic)
//	pendulum   — a double pendulum integrator (sin/cos host calls)
//	enzo       — a synthetic stand-in for the Enzo astrophysics code: a
//	             1-D hydro stepper with many distinct kernels, producing
//	             Enzo's profile shape (hundreds of short sequences, the
//	             most garbage); the real 307k-line Enzo is out of scope,
//	             see DESIGN.md substitutions
package workloads

import (
	"fmt"

	"fpvm/internal/compile"
	"fpvm/internal/obj"
)

// Name identifies a workload.
type Name string

// The six evaluation workloads.
const (
	Fbench    Name = "fbench"
	FFbench   Name = "ffbench"
	Lorenz    Name = "lorenz_attractor"
	ThreeBody Name = "three_body_simulation"
	Pendulum  Name = "double_pendulum"
	Enzo      Name = "enzo"
)

// All lists the workloads in the paper's figure order.
func All() []Name {
	return []Name{Pendulum, Enzo, Fbench, FFbench, Lorenz, ThreeBody}
}

// Program builds the kernel-language program for a workload. scale
// multiplies iteration counts: 1 is the benchmark default; tests use
// smaller fractions via BuildScaled.
func Program(name Name, scale int) (*compile.Program, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case Lorenz:
		return lorenzProgram(scale), nil
	case Pendulum:
		return pendulumProgram(scale), nil
	case ThreeBody:
		return threeBodyProgram(scale), nil
	case Fbench:
		return fbenchProgram(scale), nil
	case FFbench:
		return ffbenchProgram(scale), nil
	case Enzo:
		return enzoProgram(scale), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Build compiles a workload at the given scale.
func Build(name Name, scale int) (*obj.Image, error) {
	p, err := Program(name, scale)
	if err != nil {
		return nil, err
	}
	return compile.Compile(p)
}
