// Package workloads provides the paper's evaluation programs, written in
// the internal/compile kernel language and compiled to guest images:
//
//	fbench     — John Walker's optical ray-tracing benchmark (trig-heavy,
//	             short sequences: the paper measures ~4 insts/trap)
//	ffbench    — Walker's FFT benchmark (butterfly loops, medium runs)
//	lorenz     — a Lorenz-system simulator (long straight-line FP runs,
//	             ~32 insts/trap in the paper; little garbage)
//	threebody  — a three-body gravity simulation (heavy fprintf output →
//	             foreign-function + memory-escape correctness traffic)
//	pendulum   — a double pendulum integrator (sin/cos host calls)
//	enzo       — a synthetic stand-in for the Enzo astrophysics code: a
//	             1-D hydro stepper with many distinct kernels, producing
//	             Enzo's profile shape (hundreds of short sequences, the
//	             most garbage); the real 307k-line Enzo is out of scope,
//	             see DESIGN.md substitutions
package workloads

import (
	"fmt"

	"fpvm/internal/compile"
	"fpvm/internal/obj"
)

// Name identifies a workload.
type Name string

// The six evaluation workloads.
const (
	Fbench    Name = "fbench"
	FFbench   Name = "ffbench"
	Lorenz    Name = "lorenz_attractor"
	ThreeBody Name = "three_body_simulation"
	Pendulum  Name = "double_pendulum"
	Enzo      Name = "enzo"
)

// All lists the workloads in the paper's figure order.
func All() []Name {
	return []Name{Pendulum, Enzo, Fbench, FFbench, Lorenz, ThreeBody}
}

// baseUnits is the benchmark-default iteration count per workload (the
// scale-1 step/iteration/pass count each generator receives).
var baseUnits = map[Name]int64{
	Lorenz:    4000,
	Pendulum:  1500,
	ThreeBody: 400,
	Fbench:    60,
	FFbench:   2,
	Enzo:      12,
}

// microUnits is the request-sized variant of each workload: a few dozen
// microseconds of guest work, the granularity of one serving-stack
// request. At this size trap-pipeline warm-up (decode + trace build) is a
// visible fraction of the run, which is exactly the regime where fleet
// cache sharing pays. FFbench is excluded — a single FFT pass already
// dwarfs the others.
var microUnits = map[Name]int64{
	Lorenz:    100,
	Pendulum:  50,
	ThreeBody: 12,
	Fbench:    2,
	Enzo:      1,
}

// MicroAll lists the workloads that have request-sized variants, in
// figure order.
func MicroAll() []Name {
	out := make([]Name, 0, len(microUnits))
	for _, n := range All() {
		if _, ok := microUnits[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// program builds a workload's kernel-language program at an explicit
// iteration count (steps for the integrators, iterations for fbench,
// passes for ffbench).
func program(name Name, units int64) (*compile.Program, error) {
	if units < 1 {
		units = 1
	}
	switch name {
	case Lorenz:
		return lorenzProgram(units), nil
	case Pendulum:
		return pendulumProgram(units), nil
	case ThreeBody:
		return threeBodyProgram(units), nil
	case Fbench:
		return fbenchProgram(units), nil
	case FFbench:
		return ffbenchProgram(units), nil
	case Enzo:
		return enzoProgram(units), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Program builds the kernel-language program for a workload. scale
// multiplies iteration counts: 1 is the benchmark default; tests use
// smaller fractions via BuildScaled.
func Program(name Name, scale int) (*compile.Program, error) {
	if scale < 1 {
		scale = 1
	}
	base, ok := baseUnits[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return program(name, base*int64(scale))
}

// MicroProgram builds the request-sized variant of a workload (for fleet
// throughput experiments). Workloads without a micro variant error.
func MicroProgram(name Name) (*compile.Program, error) {
	units, ok := microUnits[name]
	if !ok {
		return nil, fmt.Errorf("workloads: no micro variant of %q", name)
	}
	return program(name, units)
}

// Build compiles a workload at the given scale.
func Build(name Name, scale int) (*obj.Image, error) {
	p, err := Program(name, scale)
	if err != nil {
		return nil, err
	}
	return compile.Compile(p)
}

// BuildMicro compiles the request-sized variant of a workload.
func BuildMicro(name Name) (*obj.Image, error) {
	p, err := MicroProgram(name)
	if err != nil {
		return nil, err
	}
	return compile.Compile(p)
}
