package workloads

import c "fpvm/internal/compile"

// fbenchProgram is an adaptation of John Walker's FBench: it traces
// marginal and paraxial rays through a four-surface telescope objective
// using Snell's law at spherical surfaces and accumulates aberration
// figures. The trigonometric library calls (sin/asin/atan) interleave
// with short arithmetic bursts, which is why fbench has the paper's
// shortest sequences (~4 instructions per trap).
func fbenchProgram(iters int64) *c.Program {
	p := c.NewProgram("fbench")

	// The classic fbench design: 4 surfaces (radius, index, dispersion,
	// edge thickness).
	p.Arrays["radius"] = 4
	p.Arrays["index"] = 4
	p.Arrays["dist"] = 4
	p.Globals["aberr_lspher"] = 0
	p.Globals["aberr_osc"] = 0

	v := c.V
	iv := c.IV
	at := c.At

	// setup fills the design tables.
	setupVals := []struct {
		arr  string
		vals [4]float64
	}{
		{"radius", [4]float64{27.05, -16.68, -16.68, -78.1}},
		{"index", [4]float64{1.5137, 1.0, 1.6164, 1.0}},
		{"dist", [4]float64{0.52, 0.138, 0.38, 0.0}},
	}
	var setup []c.Stmt
	for _, s := range setupVals {
		for i, val := range s.vals {
			setup = append(setup, c.AssignIdx{Arr: s.arr, I: c.IConst(int64(i)), Src: c.Num(val)})
		}
	}

	// traceLine(height) -> axis crossing distance: refract through the 4
	// surfaces. Follows the transit_surface structure of fbench: compute
	// the incidence angle from the slope and surface curvature, apply
	// Snell's law via asin(sin(i)·n1/n2), update height and slope.
	trace := &c.Func{
		Name:   "trace_line",
		Params: []string{"height"},
		Body: []c.Stmt{
			c.Assign{Dst: "y", Src: v("height")},
			c.Assign{Dst: "slope", Src: c.Num(0)},
			c.Assign{Dst: "nin", Src: c.Num(1.0)},
			c.For{Var: "s", Start: c.IConst(0), Limit: c.IConst(4), Body: []c.Stmt{
				// iang = slope_angle + y/radius (paraxial-ish geometry)
				c.Assign{Dst: "iang", Src: c.Add2(c.Atan(v("slope")),
					c.Div2(v("y"), at("radius", iv("s"))))},
				// Snell: sin(r) = sin(i) * n_in / n_out
				c.Assign{Dst: "nout", Src: at("index", iv("s"))},
				c.Assign{Dst: "rang", Src: c.Asin(c.Div2(
					c.Mul2(c.Sin(v("iang")), v("nin")), v("nout")))},
				// new slope angle = iang - rang + old slope angle
				c.Assign{Dst: "slope", Src: c.Tan(c.Sub2(
					c.Add2(c.Atan(v("slope")), c.Sub2(v("rang"), v("iang"))),
					c.Div2(v("y"), c.Mul2(at("radius", iv("s")), c.Num(4)))))},
				// advance to the next surface
				c.Assign{Dst: "y", Src: c.Add2(v("y"),
					c.Mul2(at("dist", iv("s")), v("slope")))},
				c.Assign{Dst: "nin", Src: v("nout")},
			}},
			// axis crossing: y / -slope
			c.Return{X: c.Div2(v("y"), c.Neg(v("slope")))},
		},
	}
	p.AddFunc(trace)

	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.Block{Body: setup},
		c.For{Var: "it", Start: c.IConst(0), Limit: c.IConst(iters), Body: []c.Stmt{
			// Marginal ray at full aperture, paraxial ray near axis.
			c.Assign{Dst: "marg", Src: c.CallFn{Fn: "trace_line", Args: []c.Expr{c.Num(2.0)}}},
			c.Assign{Dst: "parax", Src: c.CallFn{Fn: "trace_line", Args: []c.Expr{c.Num(0.1)}}},
			// Longitudinal spherical aberration and offense against the
			// sine condition.
			c.Assign{Dst: "aberr_lspher", Src: c.Sub2(v("parax"), v("marg"))},
			c.Assign{Dst: "aberr_osc", Src: c.Sub2(c.Num(1), c.Div2(
				c.Mul2(v("parax"), c.Num(0.05)),
				c.Mul2(c.Sin(c.Num(0.05)), v("marg"))))},
		}},
		c.Printf{Format: "fbench: lspher=%g osc=%g\n",
			FArgs: []c.Expr{v("aberr_lspher"), v("aberr_osc")}},
	}}
	p.AddFunc(main)
	return p
}
