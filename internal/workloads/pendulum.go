package workloads

import c "fpvm/internal/compile"

// pendulumProgram integrates a double pendulum (unit masses and lengths,
// g = 9.81) with the standard equations of motion and forward Euler. The
// sin/cos library calls punctuate the otherwise-straight-line FP code, so
// its sequences are shorter than Lorenz's but longer than fbench's —
// matching the paper's middle-of-the-pack "Double Pend." bar.
func pendulumProgram(steps int64) *c.Program {
	p := c.NewProgram("double_pendulum")
	p.Globals["th1"] = 2.0
	p.Globals["th2"] = 1.5
	p.Globals["w1"] = 0.0
	p.Globals["w2"] = 0.0

	const (
		g  = 9.81
		dt = 0.001
	)

	th1 := c.Var("th1")
	th2 := c.Var("th2")
	w1 := c.Var("w1")
	w2 := c.Var("w2")

	// delta = th1 - th2, evaluated once per step.
	delta := c.Var("delta")
	sdel := c.Var("sdel")
	cdel := c.Var("cdel")
	den := c.Var("den")

	body := []c.Stmt{
		c.Assign{Dst: "delta", Src: c.Sub2(th1, th2)},
		c.Assign{Dst: "sdel", Src: c.Sin(delta)},
		c.Assign{Dst: "cdel", Src: c.Cos(delta)},
		// den = 2 - cdel*cdel
		c.Assign{Dst: "den", Src: c.Sub2(c.Num(2), c.Mul2(cdel, cdel))},
		// a1 = (-g*(2*sin th1) - g*sin(th1-2*th2)
		//       - 2*sdel*(w2^2 + w1^2*cdel)) / (2*den)  [unit m, l]
		c.Assign{Dst: "a1", Src: c.Div2(
			c.Sub2(
				c.Sub2(
					c.Mul2(c.Num(-g), c.Mul2(c.Num(2), c.Sin(th1))),
					c.Mul2(c.Num(g), c.Sin(c.Sub2(th1, c.Mul2(c.Num(2), th2))))),
				c.Mul2(c.Mul2(c.Num(2), sdel),
					c.Add2(c.Mul2(w2, w2), c.Mul2(c.Mul2(w1, w1), cdel)))),
			c.Mul2(c.Num(2), den))},
		// a2 = (2*sdel*(w1^2 + g*cos th1 + w2^2*cdel)) / (2*den)
		c.Assign{Dst: "a2", Src: c.Div2(
			c.Mul2(c.Mul2(c.Num(2), sdel),
				c.Add2(
					c.Add2(c.Mul2(w1, w1), c.Mul2(c.Num(g), c.Cos(th1))),
					c.Mul2(c.Mul2(w2, w2), cdel))),
			c.Mul2(c.Num(2), den))},
		c.Assign{Dst: "w1", Src: c.Add2(w1, c.Mul2(c.Num(dt), c.Var("a1")))},
		c.Assign{Dst: "w2", Src: c.Add2(w2, c.Mul2(c.Num(dt), c.Var("a2")))},
		c.Assign{Dst: "th1", Src: c.Add2(th1, c.Mul2(c.Num(dt), w1))},
		c.Assign{Dst: "th2", Src: c.Add2(th2, c.Mul2(c.Num(dt), w2))},
	}

	main := &c.Func{Name: "main", Body: []c.Stmt{
		c.For{Var: "i", Start: c.IConst(0), Limit: c.IConst(steps), Body: body},
		c.Printf{Format: "pendulum: %g %g %g %g\n",
			FArgs: []c.Expr{th1, th2, w1, w2}},
	}}
	p.AddFunc(main)
	return p
}
