package machine_test

import (
	"strings"
	"testing"

	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
)

func TestAllScalarFPOps(t *testing.T) {
	type tc struct {
		op   isa.Op
		a, b float64
		want float64
	}
	cases := []tc{
		{isa.ADDSD, 1.5, 2.5, 4},
		{isa.SUBSD, 5, 1.5, 3.5},
		{isa.MULSD, 3, 4, 12},
		{isa.DIVSD, 9, 2, 4.5},
		{isa.MINSD, -2, 7, -2},
		{isa.MAXSD, -2, 7, 7},
	}
	for _, c := range cases {
		m := newMachine(t, isa.MakeRM(c.op, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
		m.CPU.XMM[0][0] = fpmath.Bits(c.a)
		m.CPU.XMM[1][0] = fpmath.Bits(c.b)
		run(t, m)
		if got := fpmath.FromBits(m.CPU.XMM[0][0]); got != c.want {
			t.Errorf("%s(%v,%v) = %v want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	// sqrtsd takes its operand from r/m.
	m := newMachine(t, isa.MakeRM(isa.SQRTSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	m.CPU.XMM[1][0] = fpmath.Bits(16)
	run(t, m)
	if got := fpmath.FromBits(m.CPU.XMM[0][0]); got != 4 {
		t.Errorf("sqrtsd = %v", got)
	}
}

func TestAllPackedFPOps(t *testing.T) {
	cases := []struct {
		op             isa.Op
		a0, a1, b0, b1 float64
		w0, w1         float64
	}{
		{isa.SUBPD, 5, 10, 1, 2, 4, 8},
		{isa.MULPD, 3, 4, 2, 2, 6, 8},
		{isa.DIVPD, 8, 9, 2, 3, 4, 3},
		{isa.MINPD, 1, 9, 2, 8, 1, 8},
		{isa.MAXPD, 1, 9, 2, 8, 2, 9},
	}
	for _, c := range cases {
		m := newMachine(t, isa.MakeRM(c.op, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
		m.CPU.XMM[0] = [2]uint64{fpmath.Bits(c.a0), fpmath.Bits(c.a1)}
		m.CPU.XMM[1] = [2]uint64{fpmath.Bits(c.b0), fpmath.Bits(c.b1)}
		run(t, m)
		g0 := fpmath.FromBits(m.CPU.XMM[0][0])
		g1 := fpmath.FromBits(m.CPU.XMM[0][1])
		if g0 != c.w0 || g1 != c.w1 {
			t.Errorf("%s: {%v,%v} want {%v,%v}", c.op, g0, g1, c.w0, c.w1)
		}
	}
	// sqrtpd.
	m := newMachine(t, isa.MakeRM(isa.SQRTPD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	m.CPU.XMM[1] = [2]uint64{fpmath.Bits(4), fpmath.Bits(25)}
	run(t, m)
	if fpmath.FromBits(m.CPU.XMM[0][0]) != 2 || fpmath.FromBits(m.CPU.XMM[0][1]) != 5 {
		t.Error("sqrtpd")
	}
}

func TestPackedCmpMasks(t *testing.T) {
	for _, c := range []struct {
		op     isa.Op
		w0, w1 uint64
	}{
		{isa.CMPEQPD, ^uint64(0), 0},
		{isa.CMPLTPD, 0, ^uint64(0)},
		{isa.CMPLEPD, ^uint64(0), ^uint64(0)},
		{isa.CMPNEQPD, 0, ^uint64(0)},
	} {
		m := newMachine(t, isa.MakeRM(c.op, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
		m.CPU.XMM[0] = [2]uint64{fpmath.Bits(1), fpmath.Bits(2)} // {1,2}
		m.CPU.XMM[1] = [2]uint64{fpmath.Bits(1), fpmath.Bits(9)} // {1,9}
		run(t, m)
		if m.CPU.XMM[0] != [2]uint64{c.w0, c.w1} {
			t.Errorf("%s: %x", c.op, m.CPU.XMM[0])
		}
	}
}

func TestRemainingScalarCmps(t *testing.T) {
	for _, c := range []struct {
		op   isa.Op
		a, b float64
		want bool
	}{
		{isa.CMPEQSD, 2, 2, true},
		{isa.CMPLESD, 2, 2, true},
		{isa.CMPUNORDSD, 2, 2, false},
		{isa.CMPNEQSD, 2, 3, true},
		{isa.CMPNLTSD, 3, 2, true},
		{isa.CMPNLESD, 3, 2, true},
		{isa.CMPORDSD, 2, 3, true},
	} {
		m := newMachine(t, isa.MakeRM(c.op, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
		m.CPU.XMM[0][0] = fpmath.Bits(c.a)
		m.CPU.XMM[1][0] = fpmath.Bits(c.b)
		run(t, m)
		got := m.CPU.XMM[0][0] == ^uint64(0)
		if got != c.want {
			t.Errorf("%s(%v,%v) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestMoreDataMoves(t *testing.T) {
	m := newMachine(t,
		// 32/16-bit paths and sign extension through memory.
		isa.MakeRM(isa.MOV32MR, isa.GPR(isa.RAX), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.MOV32RM, isa.GPR(isa.RBX), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.MOV16MR, isa.GPR(isa.RAX), isa.Mem(isa.RDI, 8)),
		isa.MakeRM(isa.MOV16RM, isa.GPR(isa.RCX), isa.Mem(isa.RDI, 8)),
		isa.MakeRM(isa.MOVSX16, isa.GPR(isa.RDX), isa.Mem(isa.RDI, 8)),
		isa.MakeRM(isa.MOVZX16, isa.GPR(isa.RSI), isa.Mem(isa.RDI, 8)),
		isa.MakeRM(isa.MOVSXD, isa.GPR(isa.R8), isa.Mem(isa.RDI, 0)),
		isa.MakeMI(isa.MOV32RI, isa.GPR(isa.R9), -1),
		isa.MakeRM(isa.XCHG64, isa.GPR(isa.RAX), isa.GPR(isa.RBX)),
	)
	m.CPU.GPR[isa.RDI] = dataBase
	m.CPU.GPR[isa.RAX] = 0xFFFF_FFFF_8000_0001 // low32 = 0x80000001
	run(t, m)
	if m.CPU.GPR[isa.RCX] != 0x0001 {
		t.Errorf("mov16 load: %#x", m.CPU.GPR[isa.RCX])
	}
	if int64(m.CPU.GPR[isa.RDX]) != 1 {
		t.Errorf("movsx16: %#x", m.CPU.GPR[isa.RDX])
	}
	if m.CPU.GPR[isa.RSI] != 1 {
		t.Errorf("movzx16: %#x", m.CPU.GPR[isa.RSI])
	}
	if m.CPU.GPR[isa.R8] != 0xFFFF_FFFF_8000_0001 {
		t.Errorf("movsxd: %#x", m.CPU.GPR[isa.R8])
	}
	if uint32(m.CPU.GPR[isa.R9]) != 0xFFFFFFFF || m.CPU.GPR[isa.R9]>>32 != 0 {
		t.Errorf("mov32 imm zero-extend: %#x", m.CPU.GPR[isa.R9])
	}
	// xchg swapped rax (original full value) and rbx (zero-extended load).
	if m.CPU.GPR[isa.RAX] != 0x80000001 || m.CPU.GPR[isa.RBX] != 0xFFFF_FFFF_8000_0001 {
		t.Errorf("xchg: rax=%#x rbx=%#x", m.CPU.GPR[isa.RAX], m.CPU.GPR[isa.RBX])
	}
}

func TestALUImmediatesAndUnary(t *testing.T) {
	m := newMachine(t,
		isa.MakeMI(isa.ADD64I, isa.GPR(isa.RAX), 100),
		isa.MakeMI(isa.AND64I, isa.GPR(isa.RAX), 0xFF),
		isa.MakeMI(isa.OR64I, isa.GPR(isa.RAX), 0x100),
		isa.MakeMI(isa.XOR64I, isa.GPR(isa.RAX), 0x1),
		isa.MakeRMI(isa.IMUL64I, isa.GPR(isa.RBX), isa.GPR(isa.RAX), 3),
		isa.MakeM(isa.INC64, isa.GPR(isa.RCX)),
		isa.MakeM(isa.DEC64, isa.GPR(isa.RDX)),
		isa.MakeM(isa.NEG64, isa.GPR(isa.RSI)),
		isa.MakeM(isa.NOT64, isa.GPR(isa.R8)),
	)
	m.CPU.GPR[isa.RAX] = 10
	m.CPU.GPR[isa.RCX] = 7
	m.CPU.GPR[isa.RDX] = 7
	m.CPU.GPR[isa.RSI] = 5
	m.CPU.GPR[isa.R8] = 0
	run(t, m)
	want := uint64(((10+100)&0xFF | 0x100) ^ 1)
	if m.CPU.GPR[isa.RAX] != want {
		t.Errorf("imm chain: %#x want %#x", m.CPU.GPR[isa.RAX], want)
	}
	if m.CPU.GPR[isa.RBX] != want*3 {
		t.Errorf("imul imm: %d", m.CPU.GPR[isa.RBX])
	}
	if m.CPU.GPR[isa.RCX] != 8 || m.CPU.GPR[isa.RDX] != 6 {
		t.Error("inc/dec")
	}
	if int64(m.CPU.GPR[isa.RSI]) != -5 || m.CPU.GPR[isa.R8] != ^uint64(0) {
		t.Error("neg/not")
	}
}

func TestShiftByCL(t *testing.T) {
	m := newMachine(t,
		isa.MakeM(isa.SHL64CL, isa.GPR(isa.RAX)),
		isa.MakeM(isa.SHR64CL, isa.GPR(isa.RBX)),
		isa.MakeM(isa.SAR64CL, isa.GPR(isa.RDX)),
	)
	m.CPU.GPR[isa.RCX] = 4
	m.CPU.GPR[isa.RAX] = 1
	m.CPU.GPR[isa.RBX] = 256
	m.CPU.GPR[isa.RDX] = ^uint64(255) // -256
	run(t, m)
	if m.CPU.GPR[isa.RAX] != 16 || m.CPU.GPR[isa.RBX] != 16 || int64(m.CPU.GPR[isa.RDX]) != -16 {
		t.Errorf("cl shifts: %d %d %d", m.CPU.GPR[isa.RAX], m.CPU.GPR[isa.RBX], int64(m.CPU.GPR[isa.RDX]))
	}
}

func TestJmpIndirectAndLea(t *testing.T) {
	// lea rax, [rdi + 2*rsi + 8]; jmp rax-over-a-mov (register-indirect).
	movImm := isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RCX), 1)
	movLen, _ := isa.EncodedLen(&movImm)
	lea := isa.MakeRM(isa.LEA, isa.GPR(isa.RAX), isa.MemIdx(isa.RDI, isa.RSI, 2, 8))
	leaLen, _ := isa.EncodedLen(&lea)
	jmpr := isa.MakeM(isa.JMPR, isa.GPR(isa.RBX))
	jmprLen, _ := isa.EncodedLen(&jmpr)

	m := newMachine(t, lea, jmpr, movImm)
	m.CPU.GPR[isa.RDI] = 100
	m.CPU.GPR[isa.RSI] = 4
	m.CPU.GPR[isa.RBX] = codeBase + uint64(leaLen+jmprLen+movLen) // skip the mov
	run(t, m)
	if m.CPU.GPR[isa.RAX] != 100+2*4+8 {
		t.Errorf("lea: %d", m.CPU.GPR[isa.RAX])
	}
	if m.CPU.GPR[isa.RCX] != 0 {
		t.Error("jmpr did not skip the mov")
	}
}

func TestMovapdStoreAndLogicals(t *testing.T) {
	m := newMachine(t,
		isa.MakeRM(isa.MOVUPDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.MOVDQAXM, isa.XMM(isa.XMM1), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.MOVDQUMX, isa.XMM(isa.XMM1), isa.Mem(isa.RDI, 16)),
		isa.MakeRM(isa.MOVDQAXX, isa.XMM(isa.XMM2), isa.XMM(isa.XMM1)),
		isa.MakeRM(isa.ANDPD, isa.XMM(isa.XMM3), isa.XMM(isa.XMM0)),
		isa.MakeRM(isa.ORPD, isa.XMM(isa.XMM4), isa.XMM(isa.XMM0)),
		isa.MakeRM(isa.ANDNPD, isa.XMM(isa.XMM5), isa.XMM(isa.XMM0)),
		isa.MakeRM(isa.PXOR, isa.XMM(isa.XMM6), isa.XMM(isa.XMM6)),
		isa.MakeRM(isa.MOVHPDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 32)),
		isa.MakeRM(isa.MOVLPDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 40)),
		isa.MakeRM(isa.MOVLPDXM, isa.XMM(isa.XMM7), isa.Mem(isa.RDI, 32)),
		isa.MakeRM(isa.MOVQMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 48)),
		isa.MakeRM(isa.MOVDXG, isa.XMM(isa.XMM9), isa.GPR(isa.RAX)),
		isa.MakeRM(isa.MOVDGX, isa.GPR(isa.RBX), isa.XMM(isa.XMM9)),
		isa.MakeRM(isa.MOVQXG, isa.XMM(isa.XMM10), isa.GPR(isa.RAX)),
		isa.MakeRM(isa.MOVQGX, isa.GPR(isa.RCX), isa.XMM(isa.XMM10)),
	)
	m.CPU.GPR[isa.RDI] = dataBase
	m.CPU.GPR[isa.RAX] = 0x1234_5678_9ABC_DEF0
	m.CPU.XMM[0] = [2]uint64{0xF0F0, 0x0F0F}
	m.CPU.XMM[3] = [2]uint64{0xFFFF, 0xFFFF}
	m.CPU.XMM[4] = [2]uint64{0x0001, 0x1000}
	m.CPU.XMM[5] = [2]uint64{0x00FF, 0xFF00}
	m.CPU.XMM[6] = [2]uint64{0xAAAA, 0xBBBB}
	run(t, m)
	if m.CPU.XMM[1] != m.CPU.XMM[0] || m.CPU.XMM[2] != m.CPU.XMM[1] {
		t.Error("movdqa round trip")
	}
	if m.CPU.XMM[3] != [2]uint64{0xF0F0, 0x0F0F} {
		t.Errorf("andpd: %x", m.CPU.XMM[3])
	}
	if m.CPU.XMM[4] != [2]uint64{0xF0F1, 0x1F0F} {
		t.Errorf("orpd: %x", m.CPU.XMM[4])
	}
	if m.CPU.XMM[5] != [2]uint64{0xF000, 0x000F} {
		t.Errorf("andnpd: %x", m.CPU.XMM[5])
	}
	if m.CPU.XMM[6] != [2]uint64{0, 0} {
		t.Error("pxor self")
	}
	hi, _ := m.Mem.ReadUint64(dataBase + 32)
	lo, _ := m.Mem.ReadUint64(dataBase + 40)
	if hi != 0x0F0F || lo != 0xF0F0 {
		t.Errorf("movhpd/movlpd stores: %x %x", hi, lo)
	}
	if m.CPU.XMM[7][0] != 0x0F0F {
		t.Error("movlpd load")
	}
	q, _ := m.Mem.ReadUint64(dataBase + 48)
	if q != 0xF0F0 {
		t.Error("movq store")
	}
	if m.CPU.GPR[isa.RBX] != 0x9ABC_DEF0 {
		t.Errorf("movd roundtrip: %#x", m.CPU.GPR[isa.RBX])
	}
	if m.CPU.GPR[isa.RCX] != 0x1234_5678_9ABC_DEF0 {
		t.Errorf("movq roundtrip: %#x", m.CPU.GPR[isa.RCX])
	}
}

func TestMachineHelpers(t *testing.T) {
	m := newMachine(t, isa.MakeNullary(isa.NOP))
	m.CPU.SetXMMLo(isa.XMM3, 0x42)
	if m.CPU.XMMLo(isa.XMM3) != 0x42 {
		t.Error("XMMLo")
	}
	if !strings.Contains(m.DumpState(), "rip=") {
		t.Error("DumpState")
	}
	if ev := m.Run(1); ev.Kind != machine.EvNone && ev.Kind != machine.EvHalt {
		t.Errorf("Run: %v", ev.Kind)
	}
	m.Reset()
	if m.Cycles != 0 || m.CPU.MXCSR != machine.MXCSRDefault {
		t.Error("Reset")
	}
	m.InvalidateICache() // must not panic
	in := isa.MakeRM(isa.MOV64RM, isa.GPR(isa.RAX), isa.Mem(isa.RBX, 8))
	m.CPU.GPR[isa.RBX] = 100
	if m.EffectiveAddr(&in, in.RMOp) != 108 {
		t.Error("EffectiveAddr")
	}
	for _, k := range []machine.EventKind{machine.EvNone, machine.EvFPTrap,
		machine.EvBreakpoint, machine.EvSyscall, machine.EvHalt,
		machine.EvHostCall, machine.EvFault} {
		if k.String() == "event?" {
			t.Errorf("missing event name for %d", k)
		}
	}
}

func TestROUNDSDModes(t *testing.T) {
	for _, c := range []struct {
		imm  int64
		want float64
	}{
		{0 | 8, 2}, // nearest-even of 2.5, PE suppressed
		{1 | 8, 2}, // floor
		{2 | 8, 3}, // ceil
		{3 | 8, 2}, // trunc
	} {
		m := newMachine(t, isa.MakeRMI(isa.ROUNDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1), c.imm))
		m.CPU.XMM[1][0] = fpmath.Bits(2.5)
		run(t, m)
		if got := fpmath.FromBits(m.CPU.XMM[0][0]); got != c.want {
			t.Errorf("roundsd imm=%d: %v want %v", c.imm, got, c.want)
		}
	}
}
