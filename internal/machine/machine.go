// Package machine implements the simulated CPU: a fetch/decode/execute
// interpreter over the isa package with x64-faithful RFLAGS, MXCSR
// (exception status + mask bits), precise SSE floating point exception
// semantics (#XF raised before the destination is written), int3
// breakpoints (#BP), syscalls, and virtual cycle accounting.
//
// The machine itself is kernel-agnostic: Step returns an Event and the
// simulated kernel (internal/kernel) decides how to dispatch it, exactly
// as hardware raises exceptions for the OS to route.
package machine

import (
	"errors"
	"fmt"

	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/mem"
	"fpvm/internal/nanbox"
	"fpvm/internal/obj"
)

// RFLAGS bits (x64 layout).
const (
	FlagCF uint64 = 1 << 0
	FlagPF uint64 = 1 << 2
	FlagZF uint64 = 1 << 6
	FlagSF uint64 = 1 << 7
	FlagOF uint64 = 1 << 11
)

// MXCSR layout (x64): status bits 0-5 (IE DE ZE OE UE PE), DAZ bit 6,
// mask bits 7-12 (IM DM ZM OM UM PM), rounding control 13-14, FTZ 15.
const (
	MXCSRStatusMask uint32 = 0x3F
	MXCSRMaskShift         = 7

	// MXCSRDefault masks all exceptions (hardware reset value 0x1F80).
	MXCSRDefault uint32 = 0x1F80

	// MXCSRTrapAll unmasks every exception, the configuration FPVM
	// installs so that Invalid/Denorm/DivZero/Overflow/Underflow/Precision
	// all trap (§2.3).
	MXCSRTrapAll uint32 = 0x0000
)

// CPU is the architectural register state. XMM registers hold two 64-bit
// lanes; lane 0 is the scalar double lane.
type CPU struct {
	GPR    [isa.NumGPR]uint64
	XMM    [isa.NumXMM][2]uint64
	RIP    uint64
	RFLAGS uint64
	MXCSR  uint32
}

// XMMLo returns the low lane of xmm register r as a float64 bit pattern.
func (c *CPU) XMMLo(r isa.Reg) uint64 { return c.XMM[r][0] }

// SetXMMLo sets the low lane of xmm register r.
func (c *CPU) SetXMMLo(r isa.Reg, v uint64) { c.XMM[r][0] = v }

// EventKind discriminates what stopped sequential execution.
type EventKind uint8

const (
	EvNone       EventKind = iota
	EvFPTrap               // #XF: unmasked SSE FP exception
	EvBreakpoint           // #BP: int3
	EvSyscall              // syscall instruction
	EvHalt                 // hlt
	EvHostCall             // control transferred into the host bridge range
	EvFault                // memory/decode fault (process dies)
	EvBoxEscape            // hardware NaN-box escape detection (future-work ISA)
)

func (k EventKind) String() string {
	switch k {
	case EvNone:
		return "none"
	case EvFPTrap:
		return "#XF"
	case EvBreakpoint:
		return "#BP"
	case EvSyscall:
		return "syscall"
	case EvHalt:
		return "hlt"
	case EvHostCall:
		return "hostcall"
	case EvFault:
		return "fault"
	case EvBoxEscape:
		return "box-escape"
	}
	return "event?"
}

// Event reports why Step stopped.
type Event struct {
	Kind EventKind

	// EvFPTrap: the raised (unmasked) exception flags and the faulting
	// instruction (RIP still points at it, per x64 fault semantics).
	FPFlags uint32
	Inst    isa.Inst

	// EvHostCall: the target host address (RIP already at the callee; the
	// return address is on the stack).
	HostAddr uint64

	// EvFault: underlying error.
	Err error

	// EvBoxEscape: the 8-byte-aligned address holding the NaN-boxed word
	// an integer load was about to observe.
	EscapeAddr uint64
}

// Tracer observes memory traffic; the PIN-like profiler (§5.1) installs
// one. XMMClass reports whether the access moved XMM (floating point)
// data; FPTyped reports a "scalar double"-typed store (movsd and friends),
// which is what the profiler uses to mark blocks as containing floats.
type Tracer interface {
	OnStore(rip, addr uint64, size int, xmm, fpTyped bool)
	OnLoad(rip, addr uint64, size int, xmm bool)
}

// Machine couples a CPU with an address space.
type Machine struct {
	CPU    CPU
	Mem    *mem.AddressSpace
	Cycles uint64 // virtual cycle counter

	// Instructions counts retired instructions (including those that
	// raised events after side effects, e.g. syscall).
	Instructions uint64

	// FPInstructions counts retired FP-arithmetic instructions (the
	// denominators for the paper's per-instruction amortizations).
	FPInstructions uint64

	Tracer Tracer

	// BoxEscapeCheck models the future-work hardware extension the paper
	// proposes for RISC-V ("hardware support to replace correctness
	// traps"): every integer load checks whether the 8-byte-aligned word
	// it reads matches the NaN-box pattern and faults precisely (before
	// the destination is written) when it does, so no binary patching is
	// needed for memory-escape correctness.
	BoxEscapeCheck bool

	// escWaiveAddr/escWaiveValid implement the hardware's one-shot resume:
	// after the escape handler runs, the faulting load must complete even
	// if the word still matches the pattern (an application NaN that
	// collided with it). WaiveNextEscape arms it.
	escWaiveAddr  uint64
	escWaiveValid bool

	// icache caches decoded instructions by address. This is a host-side
	// optimization only (real hardware decodes in the pipeline); it
	// carries no virtual-cycle cost and must be invalidated when code
	// changes (InvalidateICache) — the binary rewriter always produces
	// fresh images, so self-modifying code is not supported.
	icache map[uint64]isa.Inst

	// scratch decode buffer
	fetchBuf [isa.MaxInstLen]byte
}

// New returns a machine over as with default (all-masked) MXCSR.
func New(as *mem.AddressSpace) *Machine {
	m := &Machine{Mem: as}
	m.CPU.MXCSR = MXCSRDefault
	return m
}

// Reset clears register state (keeping memory) and re-masks MXCSR.
func (m *Machine) Reset() {
	m.CPU = CPU{MXCSR: MXCSRDefault}
	m.Cycles = 0
	m.Instructions = 0
	m.FPInstructions = 0
}

// Charge adds n virtual cycles (used by the kernel and FPVM runtime to
// account for their own work on this CPU's clock).
func (m *Machine) Charge(n uint64) { m.Cycles += n }

// FetchDecode decodes the instruction at addr without executing it.
func (m *Machine) FetchDecode(addr uint64) (isa.Inst, error) {
	n, err := m.Mem.Fetch(addr, m.fetchBuf[:])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Decode(m.fetchBuf[:n], addr)
}

// InvalidateICache drops all host-side cached decodes (call after
// loading or patching code).
func (m *Machine) InvalidateICache() { m.icache = nil }

// WaiveNextEscape lets the next integer load of the 8-byte block at addr
// proceed without the box-escape check (the hardware resume-after-handler
// semantics; needed when the pattern was an application NaN collision).
func (m *Machine) WaiveNextEscape(addr uint64) {
	m.escWaiveAddr = addr &^ 7
	m.escWaiveValid = true
}

// Step executes one instruction. On EvNone the instruction retired; any
// other kind describes the trap/exit. Faulting FP instructions do not
// retire (RIP unchanged, destination unwritten), matching x64.
func (m *Machine) Step() Event {
	if in, ok := m.icache[m.CPU.RIP]; ok {
		return m.execute(&in)
	}
	in, err := m.FetchDecode(m.CPU.RIP)
	if err != nil {
		return Event{Kind: EvFault, Err: err}
	}
	if m.icache == nil {
		m.icache = make(map[uint64]isa.Inst)
	}
	m.icache[m.CPU.RIP] = in
	return m.execute(&in)
}

// Run steps until an event other than EvNone occurs or the cycle budget
// maxInstr (0 = unlimited) instructions retire.
func (m *Machine) Run(maxInstr uint64) Event {
	n := uint64(0)
	for {
		ev := m.Step()
		if ev.Kind != EvNone {
			return ev
		}
		n++
		if maxInstr != 0 && n >= maxInstr {
			return Event{Kind: EvNone}
		}
	}
}

// effectiveAddr computes the address of a memory operand for instruction
// in (RIP-relative references resolve against the next instruction).
func (m *Machine) effectiveAddr(in *isa.Inst, o isa.Operand) uint64 {
	if o.RIPRel {
		return in.Addr + uint64(in.Len) + uint64(int64(o.Disp))
	}
	var a uint64
	if o.Base != isa.NoReg {
		a = m.CPU.GPR[o.Base]
	}
	if o.Index != isa.NoReg {
		a += m.CPU.GPR[o.Index] * uint64(o.Scale)
	}
	return a + uint64(int64(o.Disp))
}

// EffectiveAddr exposes effective address computation for the FPVM
// runtime's operand binding step.
func (m *Machine) EffectiveAddr(in *isa.Inst, o isa.Operand) uint64 {
	return m.effectiveAddr(in, o)
}

// escapeFault is the internal error carrying a hardware box-escape hit;
// the fault dispatcher turns it into EvBoxEscape.
type escapeFault struct{ addr uint64 }

func (e *escapeFault) Error() string {
	return fmt.Sprintf("nan-box escape at %#x", e.addr)
}

// readRM reads the r/m operand with the instruction's memory width,
// zero-extended to 64 bits, reporting loads to the tracer.
func (m *Machine) readRM(in *isa.Inst, o isa.Operand, xmm bool) (uint64, error) {
	if o.Kind == isa.KindMem {
		addr := m.effectiveAddr(in, o)
		size := in.Op.MemBytes()
		if m.BoxEscapeCheck && !xmm {
			block := addr &^ 7
			if m.escWaiveValid && m.escWaiveAddr == block {
				m.escWaiveValid = false
			} else if w, err := m.Mem.ReadUint64(block); err == nil && nanbox.IsBoxPattern(w) {
				return 0, &escapeFault{addr: block}
			}
		}
		v, err := m.readMem(addr, size)
		if err != nil {
			return 0, err
		}
		if m.Tracer != nil {
			m.Tracer.OnLoad(in.Addr, addr, size, xmm)
		}
		return v, nil
	}
	if o.Kind == isa.KindXMM {
		return m.CPU.XMM[o.Reg][0], nil
	}
	return m.CPU.GPR[o.Reg], nil
}

func (m *Machine) readMem(addr uint64, size int) (uint64, error) {
	switch size {
	case 1:
		v, err := m.Mem.ReadUint8(addr)
		return uint64(v), err
	case 2:
		v, err := m.Mem.ReadUint16(addr)
		return uint64(v), err
	case 4:
		v, err := m.Mem.ReadUint32(addr)
		return uint64(v), err
	default:
		return m.Mem.ReadUint64(addr)
	}
}

func (m *Machine) writeMem(addr uint64, size int, v uint64) error {
	switch size {
	case 1:
		return m.Mem.WriteUint8(addr, uint8(v))
	case 2:
		return m.Mem.WriteUint16(addr, uint16(v))
	case 4:
		return m.Mem.WriteUint32(addr, uint32(v))
	default:
		return m.Mem.WriteUint64(addr, v)
	}
}

// push pushes a 64-bit value on the stack.
func (m *Machine) push(v uint64) error {
	m.CPU.GPR[isa.RSP] -= 8
	return m.Mem.WriteUint64(m.CPU.GPR[isa.RSP], v)
}

// pop pops a 64-bit value from the stack.
func (m *Machine) pop() (uint64, error) {
	v, err := m.Mem.ReadUint64(m.CPU.GPR[isa.RSP])
	if err != nil {
		return 0, err
	}
	m.CPU.GPR[isa.RSP] += 8
	return v, nil
}

// setIntFlags updates ZF/SF/PF from a 64-bit result.
func (m *Machine) setIntFlags(res uint64) {
	f := m.CPU.RFLAGS &^ (FlagZF | FlagSF | FlagPF)
	if res == 0 {
		f |= FlagZF
	}
	if res>>63 != 0 {
		f |= FlagSF
	}
	if parityEven(uint8(res)) {
		f |= FlagPF
	}
	m.CPU.RFLAGS = f
}

func parityEven(b uint8) bool {
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b&1 == 0
}

// setAddFlags sets CF/OF for a+b=res.
func (m *Machine) setAddFlags(a, b, res uint64) {
	m.setIntFlags(res)
	f := m.CPU.RFLAGS &^ (FlagCF | FlagOF)
	if res < a {
		f |= FlagCF
	}
	if (a^res)&(b^res)>>63 != 0 {
		f |= FlagOF
	}
	m.CPU.RFLAGS = f
}

// setSubFlags sets CF/OF for a-b=res.
func (m *Machine) setSubFlags(a, b, res uint64) {
	m.setIntFlags(res)
	f := m.CPU.RFLAGS &^ (FlagCF | FlagOF)
	if a < b {
		f |= FlagCF
	}
	if (a^b)&(a^res)>>63 != 0 {
		f |= FlagOF
	}
	m.CPU.RFLAGS = f
}

// setLogicFlags sets flags after and/or/xor/test (CF=OF=0).
func (m *Machine) setLogicFlags(res uint64) {
	m.setIntFlags(res)
	m.CPU.RFLAGS &^= FlagCF | FlagOF
}

// condition evaluates a Jcc predicate against RFLAGS.
func (m *Machine) condition(op isa.Op) bool {
	f := m.CPU.RFLAGS
	zf := f&FlagZF != 0
	sf := f&FlagSF != 0
	of := f&FlagOF != 0
	cf := f&FlagCF != 0
	pf := f&FlagPF != 0
	switch op {
	case isa.JE:
		return zf
	case isa.JNE:
		return !zf
	case isa.JL:
		return sf != of
	case isa.JLE:
		return zf || sf != of
	case isa.JG:
		return !zf && sf == of
	case isa.JGE:
		return sf == of
	case isa.JB:
		return cf
	case isa.JBE:
		return cf || zf
	case isa.JA:
		return !cf && !zf
	case isa.JAE:
		return !cf
	case isa.JS:
		return sf
	case isa.JNS:
		return !sf
	case isa.JP:
		return pf
	case isa.JNP:
		return !pf
	}
	return false
}

// unmasked returns the exception bits of flags that are unmasked in MXCSR.
func (m *Machine) unmasked(flags uint32) uint32 {
	masks := m.CPU.MXCSR >> MXCSRMaskShift & MXCSRStatusMask
	return flags &^ masks & fpmath.ExAll
}

// IsHostAddr reports whether addr falls in the host bridge range.
func IsHostAddr(addr uint64) bool { return addr >= obj.HostBase }

func (m *Machine) fault(err error) Event {
	var ef *escapeFault
	if errors.As(err, &ef) {
		// Precise, like #XF: RIP unchanged, destination unwritten; the
		// handler demotes the word and the load re-executes.
		return Event{Kind: EvBoxEscape, EscapeAddr: ef.addr}
	}
	return Event{Kind: EvFault, Err: err}
}

// DumpState renders a compact register dump for diagnostics.
func (m *Machine) DumpState() string {
	s := fmt.Sprintf("rip=%#x cycles=%d\n", m.CPU.RIP, m.Cycles)
	for r := isa.Reg(0); r < isa.NumGPR; r++ {
		s += fmt.Sprintf("%-4s=%#016x ", isa.GPRName(r), m.CPU.GPR[r])
		if r%4 == 3 {
			s += "\n"
		}
	}
	for r := isa.Reg(0); r < isa.NumXMM; r++ {
		s += fmt.Sprintf("%-6s=%#016x:%#016x ", isa.XMMName(r), m.CPU.XMM[r][1], m.CPU.XMM[r][0])
		if r%2 == 1 {
			s += "\n"
		}
	}
	s += fmt.Sprintf("rflags=%#x mxcsr=%#x\n", m.CPU.RFLAGS, m.CPU.MXCSR)
	return s
}
