package machine

import (
	"math"
	"math/bits"

	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
)

// exactInt64 reports whether v converts to float64 without rounding
// (at most 53 significant bits).
func exactInt64(v int64) bool {
	if v == 0 {
		return true
	}
	u := uint64(v)
	if v < 0 {
		u = uint64(-v) // MinInt64 wraps to 2^63, a power of two: exact
	}
	sig := 64 - bits.LeadingZeros64(u) - bits.TrailingZeros64(u)
	return sig <= 53
}

// execute runs one decoded instruction. Faulting FP instructions leave RIP
// and the destination untouched (x64 fault semantics); int3 and syscall
// advance RIP before reporting (trap semantics).
func (m *Machine) execute(in *isa.Inst) Event {
	op := in.Op
	next := in.Addr + uint64(in.Len)

	// FP arithmetic goes through the exception-precise path.
	if op.IsFPArith() || op.IsCvt() {
		return m.executeFP(in, next)
	}

	switch op {
	case isa.NOP:

	case isa.HLT:
		m.retire(in, next)
		return Event{Kind: EvHalt}

	case isa.INT3:
		m.retire(in, next)
		return Event{Kind: EvBreakpoint, Inst: *in}

	case isa.SYSCALL:
		m.retire(in, next)
		return Event{Kind: EvSyscall, Inst: *in}

	case isa.RET:
		target, err := m.pop()
		if err != nil {
			return m.fault(err)
		}
		m.retire(in, target)
		if IsHostAddr(target) {
			return Event{Kind: EvHostCall, HostAddr: target}
		}
		return Event{Kind: EvNone}

	case isa.CALL, isa.CALLR:
		var target uint64
		if op == isa.CALL {
			target = in.BranchTarget()
		} else {
			v, err := m.readRM(in, in.RMOp, false)
			if err != nil {
				return m.fault(err)
			}
			target = v
		}
		if err := m.push(next); err != nil {
			return m.fault(err)
		}
		m.retire(in, target)
		if IsHostAddr(target) {
			return Event{Kind: EvHostCall, HostAddr: target}
		}
		return Event{Kind: EvNone}

	case isa.JMP:
		m.retire(in, in.BranchTarget())
		return Event{Kind: EvNone}

	case isa.JMPR:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		m.retire(in, v)
		if IsHostAddr(v) {
			return Event{Kind: EvHostCall, HostAddr: v}
		}
		return Event{Kind: EvNone}

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS, isa.JP, isa.JNP:
		if m.condition(op) {
			m.retire(in, in.BranchTarget())
		} else {
			m.retire(in, next)
		}
		return Event{Kind: EvNone}

	default:
		if ev := m.executeData(in, next); ev.Kind != EvNone {
			return ev
		}
		return Event{Kind: EvNone}
	}

	m.retire(in, next)
	return Event{Kind: EvNone}
}

// retire commits an instruction: advances RIP, charges latency, counts.
func (m *Machine) retire(in *isa.Inst, nextRIP uint64) {
	m.CPU.RIP = nextRIP
	m.Cycles += in.Op.Latency()
	m.Instructions++
}

// executeData handles moves and integer ALU.
func (m *Machine) executeData(in *isa.Inst, next uint64) Event {
	op := in.Op
	cpu := &m.CPU

	writeRM := func(o isa.Operand, v uint64, size int, xmm, fpTyped bool) error {
		if o.Kind == isa.KindMem {
			addr := m.effectiveAddr(in, o)
			if err := m.writeMem(addr, size, v); err != nil {
				return err
			}
			if m.Tracer != nil {
				m.Tracer.OnStore(in.Addr, addr, size, xmm, fpTyped)
			}
			return nil
		}
		if o.Kind == isa.KindXMM {
			cpu.XMM[o.Reg][0] = v
			return nil
		}
		cpu.GPR[o.Reg] = v
		return nil
	}

	switch op {
	// ----- GPR moves -----
	case isa.MOV64RR, isa.MOV64RM:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = v
	case isa.MOV64MR:
		if err := writeRM(in.RMOp, cpu.GPR[in.RegOp.Reg], 8, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOV64RI:
		if err := writeRM(in.RMOp, uint64(in.Imm), 8, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOV32RR, isa.MOV32RM:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint32(v))
	case isa.MOV32MR:
		if err := writeRM(in.RMOp, uint64(uint32(cpu.GPR[in.RegOp.Reg])), 4, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOV32RI:
		if err := writeRM(in.RMOp, uint64(uint32(in.Imm)), 4, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOV16RM, isa.MOVZX16:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint16(v))
	case isa.MOV16MR:
		if err := writeRM(in.RMOp, uint64(uint16(cpu.GPR[in.RegOp.Reg])), 2, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOV8RM, isa.MOVZX8:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(uint8(v))
	case isa.MOV8MR:
		if err := writeRM(in.RMOp, uint64(uint8(cpu.GPR[in.RegOp.Reg])), 1, false, false); err != nil {
			return m.fault(err)
		}
	case isa.MOVSX8:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int8(v)))
	case isa.MOVSX16:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int16(v)))
	case isa.MOVSXD:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		cpu.GPR[in.RegOp.Reg] = uint64(int64(int32(v)))
	case isa.LEA:
		cpu.GPR[in.RegOp.Reg] = m.effectiveAddr(in, in.RMOp)
	case isa.PUSH:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		if err := m.push(v); err != nil {
			return m.fault(err)
		}
	case isa.POP:
		v, err := m.pop()
		if err != nil {
			return m.fault(err)
		}
		if err := writeRM(in.RMOp, v, 8, false, false); err != nil {
			return m.fault(err)
		}
	case isa.XCHG64:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		old := cpu.GPR[in.RegOp.Reg]
		cpu.GPR[in.RegOp.Reg] = v
		if err := writeRM(in.RMOp, old, 8, false, false); err != nil {
			return m.fault(err)
		}

	// ----- Integer ALU, reg ← reg OP r/m -----
	case isa.ADD64, isa.SUB64, isa.IMUL64, isa.AND64, isa.OR64, isa.XOR64, isa.CMP64, isa.TEST64:
		b, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		a := cpu.GPR[in.RegOp.Reg]
		switch op {
		case isa.ADD64:
			res := a + b
			m.setAddFlags(a, b, res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.SUB64:
			res := a - b
			m.setSubFlags(a, b, res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.IMUL64:
			res := uint64(int64(a) * int64(b))
			m.setIntFlags(res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.AND64:
			res := a & b
			m.setLogicFlags(res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.OR64:
			res := a | b
			m.setLogicFlags(res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.XOR64:
			res := a ^ b
			m.setLogicFlags(res)
			cpu.GPR[in.RegOp.Reg] = res
		case isa.CMP64:
			m.setSubFlags(a, b, a-b)
		case isa.TEST64:
			m.setLogicFlags(a & b)
		}

	// ----- Integer ALU, r/m ← r/m OP imm -----
	case isa.ADD64I, isa.SUB64I, isa.CMP64I, isa.AND64I, isa.OR64I, isa.XOR64I:
		a, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		b := uint64(in.Imm)
		var res uint64
		write := true
		switch op {
		case isa.ADD64I:
			res = a + b
			m.setAddFlags(a, b, res)
		case isa.SUB64I:
			res = a - b
			m.setSubFlags(a, b, res)
		case isa.CMP64I:
			m.setSubFlags(a, b, a-b)
			write = false
		case isa.AND64I:
			res = a & b
			m.setLogicFlags(res)
		case isa.OR64I:
			res = a | b
			m.setLogicFlags(res)
		case isa.XOR64I:
			res = a ^ b
			m.setLogicFlags(res)
		}
		if write {
			if err := writeRM(in.RMOp, res, 8, false, false); err != nil {
				return m.fault(err)
			}
		}
	case isa.IMUL64I:
		b, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		res := uint64(int64(b) * in.Imm)
		m.setIntFlags(res)
		cpu.GPR[in.RegOp.Reg] = res

	// ----- Shifts -----
	case isa.SHL64I, isa.SHR64I, isa.SAR64I, isa.SHL64CL, isa.SHR64CL, isa.SAR64CL:
		a, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		var amt uint64
		switch op {
		case isa.SHL64CL, isa.SHR64CL, isa.SAR64CL:
			amt = cpu.GPR[isa.RCX] & 63
		default:
			amt = uint64(in.Imm) & 63
		}
		var res uint64
		switch op {
		case isa.SHL64I, isa.SHL64CL:
			res = a << amt
		case isa.SHR64I, isa.SHR64CL:
			res = a >> amt
		case isa.SAR64I, isa.SAR64CL:
			res = uint64(int64(a) >> amt)
		}
		m.setIntFlags(res)
		if err := writeRM(in.RMOp, res, 8, false, false); err != nil {
			return m.fault(err)
		}

	// ----- Integer unary -----
	case isa.INC64, isa.DEC64, isa.NEG64, isa.NOT64:
		a, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		var res uint64
		switch op {
		case isa.INC64:
			res = a + 1
			cf := m.CPU.RFLAGS & FlagCF // inc preserves CF
			m.setAddFlags(a, 1, res)
			m.CPU.RFLAGS = m.CPU.RFLAGS&^FlagCF | cf
		case isa.DEC64:
			res = a - 1
			cf := m.CPU.RFLAGS & FlagCF
			m.setSubFlags(a, 1, res)
			m.CPU.RFLAGS = m.CPU.RFLAGS&^FlagCF | cf
		case isa.NEG64:
			res = -a
			m.setSubFlags(0, a, res)
		case isa.NOT64:
			res = ^a
		}
		if err := writeRM(in.RMOp, res, 8, false, false); err != nil {
			return m.fault(err)
		}

	default:
		return m.executeXMMMove(in, writeRM)
	}

	m.retire(in, next)
	return Event{Kind: EvNone}
}

// readXMM128 reads the full 128-bit r/m operand.
func (m *Machine) readXMM128(in *isa.Inst, o isa.Operand) ([2]uint64, error) {
	if o.Kind == isa.KindMem {
		addr := m.effectiveAddr(in, o)
		lo, err := m.Mem.ReadUint64(addr)
		if err != nil {
			return [2]uint64{}, err
		}
		hi, err := m.Mem.ReadUint64(addr + 8)
		if err != nil {
			return [2]uint64{}, err
		}
		if m.Tracer != nil {
			m.Tracer.OnLoad(in.Addr, addr, 16, true)
		}
		return [2]uint64{lo, hi}, nil
	}
	return m.CPU.XMM[o.Reg], nil
}

// writeXMM128 writes the full 128-bit r/m operand.
func (m *Machine) writeXMM128(in *isa.Inst, o isa.Operand, v [2]uint64, fpTyped bool) error {
	if o.Kind == isa.KindMem {
		addr := m.effectiveAddr(in, o)
		if err := m.Mem.WriteUint64(addr, v[0]); err != nil {
			return err
		}
		if err := m.Mem.WriteUint64(addr+8, v[1]); err != nil {
			return err
		}
		if m.Tracer != nil {
			m.Tracer.OnStore(in.Addr, addr, 16, true, fpTyped)
		}
		return nil
	}
	m.CPU.XMM[o.Reg] = v
	return nil
}

// executeXMMMove handles all XMM move/shuffle/logical forms.
func (m *Machine) executeXMMMove(in *isa.Inst, writeRM func(isa.Operand, uint64, int, bool, bool) error) Event {
	op := in.Op
	cpu := &m.CPU
	next := in.Addr + uint64(in.Len)

	switch op {
	case isa.MOVSDXX:
		// movsd xmm, xmm merges the low lane only.
		cpu.XMM[in.RegOp.Reg][0] = cpu.XMM[in.RMOp.Reg][0]
	case isa.MOVSDXM, isa.MOVQXM:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg] = [2]uint64{v, 0}
	case isa.MOVSDMX:
		if err := writeRM(in.RMOp, cpu.XMM[in.RegOp.Reg][0], 8, true, true); err != nil {
			return m.fault(err)
		}
	case isa.MOVQMX:
		// movq store is integer-typed: the profiler must not mark it.
		if err := writeRM(in.RMOp, cpu.XMM[in.RegOp.Reg][0], 8, true, false); err != nil {
			return m.fault(err)
		}
	case isa.MOVAPDXX, isa.MOVDQAXX:
		cpu.XMM[in.RegOp.Reg] = cpu.XMM[in.RMOp.Reg]
	case isa.MOVAPDXM, isa.MOVUPDXM:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg] = v
	case isa.MOVDQAXM, isa.MOVDQUXM:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg] = v
	case isa.MOVAPDMX, isa.MOVUPDMX:
		if err := m.writeXMM128(in, in.RMOp, cpu.XMM[in.RegOp.Reg], true); err != nil {
			return m.fault(err)
		}
	case isa.MOVDQAMX, isa.MOVDQUMX:
		if err := m.writeXMM128(in, in.RMOp, cpu.XMM[in.RegOp.Reg], false); err != nil {
			return m.fault(err)
		}
	case isa.MOVQXG:
		cpu.XMM[in.RegOp.Reg] = [2]uint64{cpu.GPR[in.RMOp.Reg], 0}
	case isa.MOVQGX:
		cpu.GPR[in.RegOp.Reg] = cpu.XMM[in.RMOp.Reg][0]
	case isa.MOVDXG:
		cpu.XMM[in.RegOp.Reg] = [2]uint64{uint64(uint32(cpu.GPR[in.RMOp.Reg])), 0}
	case isa.MOVDGX:
		cpu.GPR[in.RegOp.Reg] = uint64(uint32(cpu.XMM[in.RMOp.Reg][0]))
	case isa.MOVHPDXM:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg][1] = v
	case isa.MOVHPDMX:
		if err := writeRM(in.RMOp, cpu.XMM[in.RegOp.Reg][1], 8, true, true); err != nil {
			return m.fault(err)
		}
	case isa.MOVLPDXM:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg][0] = v
	case isa.MOVLPDMX:
		if err := writeRM(in.RMOp, cpu.XMM[in.RegOp.Reg][0], 8, true, true); err != nil {
			return m.fault(err)
		}
	case isa.MOVDDUP:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		cpu.XMM[in.RegOp.Reg] = [2]uint64{v, v}
	case isa.UNPCKLPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{d[0], v[0]}
	case isa.UNPCKHPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{d[1], v[1]}
	case isa.SHUFPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		var lo, hi uint64
		if in.Imm&1 == 0 {
			lo = d[0]
		} else {
			lo = d[1]
		}
		if in.Imm&2 == 0 {
			hi = v[0]
		} else {
			hi = v[1]
		}
		*d = [2]uint64{lo, hi}
	case isa.PXOR, isa.XORPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{d[0] ^ v[0], d[1] ^ v[1]}
	case isa.ANDPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{d[0] & v[0], d[1] & v[1]}
	case isa.ORPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{d[0] | v[0], d[1] | v[1]}
	case isa.ANDNPD:
		v, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		d := &cpu.XMM[in.RegOp.Reg]
		*d = [2]uint64{^d[0] & v[0], ^d[1] & v[1]}
	default:
		return m.fault(&isa.DecodeError{Addr: in.Addr, Msg: "unimplemented opcode " + op.String()})
	}

	m.retire(in, next)
	return Event{Kind: EvNone}
}

// executeFP handles SSE arithmetic/compare/convert with precise exception
// semantics: compute, collect IEEE flags, and if any unmasked exception is
// raised, set the MXCSR status bits and fault without writing the
// destination or advancing RIP.
func (m *Machine) executeFP(in *isa.Inst, next uint64) Event {
	op := in.Op
	cpu := &m.CPU

	commit := func(flags uint32, write func() error) Event {
		if raised := m.unmasked(flags); raised != 0 {
			cpu.MXCSR |= flags & MXCSRStatusMask
			return Event{Kind: EvFPTrap, FPFlags: raised, Inst: *in}
		}
		cpu.MXCSR |= flags & MXCSRStatusMask
		if write != nil {
			if err := write(); err != nil {
				return m.fault(err)
			}
		}
		m.retire(in, next)
		m.FPInstructions++
		return Event{Kind: EvNone}
	}

	switch {
	case op == isa.CVTSI2SD:
		v, err := m.readRM(in, in.RMOp, false)
		if err != nil {
			return m.fault(err)
		}
		iv := int64(v)
		f := float64(iv)
		var flags uint32
		if !exactInt64(iv) {
			flags |= fpmath.ExPrecision
		}
		return commit(flags, func() error {
			cpu.XMM[in.RegOp.Reg][0] = fpmath.Bits(f)
			return nil
		})

	case op == isa.CVTSD2SI || op == isa.CVTTSD2SI:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		f := fpmath.FromBits(v)
		var flags uint32
		var res int64
		switch {
		case fpmath.IsNaNBits(v) || f >= 0x1p63 || f < -0x1p63:
			flags |= fpmath.ExInvalid
			res = math.MinInt64
		default:
			var r float64
			if op == isa.CVTTSD2SI {
				r = math.Trunc(f)
			} else {
				r = math.RoundToEven(f)
			}
			res = int64(r)
			if r != f {
				flags |= fpmath.ExPrecision
			}
		}
		return commit(flags, func() error {
			cpu.GPR[in.RegOp.Reg] = uint64(res)
			return nil
		})

	case op == isa.ROUNDSD:
		v, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		f := fpmath.FromBits(v)
		var flags uint32
		var r float64
		if fpmath.IsNaNBits(v) {
			if fpmath.IsSignalingNaNBits(v) {
				flags |= fpmath.ExInvalid
			}
			r = fpmath.FromBits(v | fpmath.QuietBit)
		} else {
			switch in.Imm & 3 {
			case 0:
				r = math.RoundToEven(f)
			case 1:
				r = math.Floor(f)
			case 2:
				r = math.Ceil(f)
			default:
				r = math.Trunc(f)
			}
			if r != f && in.Imm&8 == 0 {
				flags |= fpmath.ExPrecision
			}
		}
		return commit(flags, func() error {
			cpu.XMM[in.RegOp.Reg][0] = fpmath.Bits(r)
			return nil
		})

	case op == isa.UCOMISD || op == isa.COMISD:
		bv, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		a := fpmath.FromBits(cpu.XMM[in.RegOp.Reg][0])
		b := fpmath.FromBits(bv)
		cr := fpmath.Compare(a, b, op == isa.COMISD)
		return commit(cr.Flags, func() error {
			f := cpu.RFLAGS &^ (FlagZF | FlagPF | FlagCF | FlagOF | FlagSF)
			switch {
			case cr.Unordered:
				f |= FlagZF | FlagPF | FlagCF
			case cr.Less:
				f |= FlagCF
			case cr.Equal:
				f |= FlagZF
			}
			cpu.RFLAGS = f
			return nil
		})

	case op.IsCmpPredicate() && op.IsFPScalar():
		bv, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		av := cpu.XMM[in.RegOp.Reg][0]
		mask, flags := cmpPredicate(op, av, bv)
		return commit(flags, func() error {
			cpu.XMM[in.RegOp.Reg][0] = mask
			return nil
		})

	case op.IsCmpPredicate() && op.IsFPPacked():
		bv, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		av := cpu.XMM[in.RegOp.Reg]
		m0, f0 := cmpPredicate(packedToScalarCmp(op), av[0], bv[0])
		m1, f1 := cmpPredicate(packedToScalarCmp(op), av[1], bv[1])
		return commit(f0|f1, func() error {
			cpu.XMM[in.RegOp.Reg] = [2]uint64{m0, m1}
			return nil
		})

	case op.IsFPScalar():
		// addsd/subsd/mulsd/divsd/sqrtsd/minsd/maxsd
		bv, err := m.readRM(in, in.RMOp, true)
		if err != nil {
			return m.fault(err)
		}
		var a, b float64
		if op == isa.SQRTSD {
			a = fpmath.FromBits(bv)
		} else {
			a = fpmath.FromBits(cpu.XMM[in.RegOp.Reg][0])
			b = fpmath.FromBits(bv)
		}
		res := fpmath.Eval(scalarFPOp(op), a, b)
		return commit(res.Flags, func() error {
			cpu.XMM[in.RegOp.Reg][0] = fpmath.Bits(res.Value)
			return nil
		})

	case op.IsFPPacked():
		bv, err := m.readXMM128(in, in.RMOp)
		if err != nil {
			return m.fault(err)
		}
		av := cpu.XMM[in.RegOp.Reg]
		fop := packedFPOp(op)
		var r0, r1 fpmath.Result
		if op == isa.SQRTPD {
			r0 = fpmath.Eval(fop, fpmath.FromBits(bv[0]), 0)
			r1 = fpmath.Eval(fop, fpmath.FromBits(bv[1]), 0)
		} else {
			r0 = fpmath.Eval(fop, fpmath.FromBits(av[0]), fpmath.FromBits(bv[0]))
			r1 = fpmath.Eval(fop, fpmath.FromBits(av[1]), fpmath.FromBits(bv[1]))
		}
		return commit(r0.Flags|r1.Flags, func() error {
			cpu.XMM[in.RegOp.Reg] = [2]uint64{fpmath.Bits(r0.Value), fpmath.Bits(r1.Value)}
			return nil
		})
	}
	return m.fault(&isa.DecodeError{Addr: in.Addr, Msg: "unimplemented FP opcode " + op.String()})
}

func scalarFPOp(op isa.Op) fpmath.Op {
	switch op {
	case isa.ADDSD:
		return fpmath.OpAdd
	case isa.SUBSD:
		return fpmath.OpSub
	case isa.MULSD:
		return fpmath.OpMul
	case isa.DIVSD:
		return fpmath.OpDiv
	case isa.SQRTSD:
		return fpmath.OpSqrt
	case isa.MINSD:
		return fpmath.OpMin
	case isa.MAXSD:
		return fpmath.OpMax
	}
	return fpmath.OpAdd
}

func packedFPOp(op isa.Op) fpmath.Op {
	switch op {
	case isa.ADDPD:
		return fpmath.OpAdd
	case isa.SUBPD:
		return fpmath.OpSub
	case isa.MULPD:
		return fpmath.OpMul
	case isa.DIVPD:
		return fpmath.OpDiv
	case isa.SQRTPD:
		return fpmath.OpSqrt
	case isa.MINPD:
		return fpmath.OpMin
	case isa.MAXPD:
		return fpmath.OpMax
	}
	return fpmath.OpAdd
}

func packedToScalarCmp(op isa.Op) isa.Op {
	switch op {
	case isa.CMPEQPD:
		return isa.CMPEQSD
	case isa.CMPLTPD:
		return isa.CMPLTSD
	case isa.CMPLEPD:
		return isa.CMPLESD
	case isa.CMPNEQPD:
		return isa.CMPNEQSD
	}
	return op
}

// cmpPredicate evaluates a cmpxxsd predicate over raw lane bits, returning
// the all-ones/all-zeros mask and the IEEE flags. The "signaling"
// predicates (lt, le, nlt, nle) raise Invalid on any NaN; eq/neq/ord/unord
// raise Invalid only on signaling NaNs.
func cmpPredicate(op isa.Op, av, bv uint64) (mask uint64, flags uint32) {
	a, b := fpmath.FromBits(av), fpmath.FromBits(bv)
	anan, bnan := fpmath.IsNaNBits(av), fpmath.IsNaNBits(bv)
	unordered := anan || bnan

	signaling := false
	switch op {
	case isa.CMPLTSD, isa.CMPLESD, isa.CMPNLTSD, isa.CMPNLESD:
		signaling = true
	}
	if fpmath.IsSignalingNaNBits(av) || fpmath.IsSignalingNaNBits(bv) || (unordered && signaling) {
		flags |= fpmath.ExInvalid
	}

	var t bool
	switch op {
	case isa.CMPEQSD:
		t = !unordered && a == b
	case isa.CMPLTSD:
		t = !unordered && a < b
	case isa.CMPLESD:
		t = !unordered && a <= b
	case isa.CMPUNORDSD:
		t = unordered
	case isa.CMPNEQSD:
		t = unordered || a != b
	case isa.CMPNLTSD:
		t = unordered || !(a < b)
	case isa.CMPNLESD:
		t = unordered || !(a <= b)
	case isa.CMPORDSD:
		t = !unordered
	}
	if t {
		mask = ^uint64(0)
	}
	return mask, flags
}
