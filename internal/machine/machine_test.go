package machine_test

import (
	"math"
	"math/rand"
	"testing"

	"fpvm/internal/fpmath"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/mem"
)

// fixture assembles raw instructions at codeBase and returns a machine
// ready to step through them (stack mapped, scratch data page at dataBase).
const (
	codeBase = 0x400000
	dataBase = 0x800000
	stackTop = 0x700000
)

func newMachine(t *testing.T, insts ...isa.Inst) *machine.Machine {
	t.Helper()
	as := mem.NewAddressSpace()
	var code []byte
	addr := uint64(codeBase)
	for i := range insts {
		insts[i].Addr = addr
		enc, err := isa.Encode(&insts[i])
		if err != nil {
			t.Fatalf("encode %s: %v", insts[i].Op, err)
		}
		code = append(code, enc...)
		addr += uint64(len(enc))
	}
	// Terminate with hlt.
	hlt := isa.MakeNullary(isa.HLT)
	enc, _ := isa.Encode(&hlt)
	code = append(code, enc...)

	as.Map("code", codeBase, uint64(len(code)), mem.PermRWX)
	if err := as.Write(codeBase, code); err != nil {
		t.Fatal(err)
	}
	as.Map("data", dataBase, 4096, mem.PermRW)
	as.Map("stack", stackTop-0x10000, 0x10000, mem.PermRW)

	m := machine.New(as)
	m.CPU.RIP = codeBase
	m.CPU.GPR[isa.RSP] = stackTop - 64
	return m
}

// run steps until halt or fault, failing the test on fault.
func run(t *testing.T, m *machine.Machine) {
	t.Helper()
	for {
		ev := m.Step()
		switch ev.Kind {
		case machine.EvNone:
		case machine.EvHalt:
			return
		default:
			t.Fatalf("unexpected event %v (err=%v) at rip=%#x", ev.Kind, ev.Err, m.CPU.RIP)
		}
	}
}

func TestIntALUAgainstGo(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	type alucase struct {
		op isa.Op
		f  func(a, b uint64) uint64
	}
	cases := []alucase{
		{isa.ADD64, func(a, b uint64) uint64 { return a + b }},
		{isa.SUB64, func(a, b uint64) uint64 { return a - b }},
		{isa.IMUL64, func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) }},
		{isa.AND64, func(a, b uint64) uint64 { return a & b }},
		{isa.OR64, func(a, b uint64) uint64 { return a | b }},
		{isa.XOR64, func(a, b uint64) uint64 { return a ^ b }},
	}
	for _, tc := range cases {
		for i := 0; i < 50; i++ {
			a, b := r.Uint64(), r.Uint64()
			m := newMachine(t, isa.MakeRM(tc.op, isa.GPR(isa.RAX), isa.GPR(isa.RBX)))
			m.CPU.GPR[isa.RAX] = a
			m.CPU.GPR[isa.RBX] = b
			run(t, m)
			if got, want := m.CPU.GPR[isa.RAX], tc.f(a, b); got != want {
				t.Fatalf("%s(%#x, %#x) = %#x, want %#x", tc.op, a, b, got, want)
			}
		}
	}
}

func TestSubCmpFlagsAndJcc(t *testing.T) {
	// cmp rax, rbx then conditional jumps, verified against Go comparisons.
	r := rand.New(rand.NewSource(6))
	jccs := []struct {
		op   isa.Op
		pred func(a, b int64) bool
	}{
		{isa.JE, func(a, b int64) bool { return a == b }},
		{isa.JNE, func(a, b int64) bool { return a != b }},
		{isa.JL, func(a, b int64) bool { return a < b }},
		{isa.JLE, func(a, b int64) bool { return a <= b }},
		{isa.JG, func(a, b int64) bool { return a > b }},
		{isa.JGE, func(a, b int64) bool { return a >= b }},
	}
	ujccs := []struct {
		op   isa.Op
		pred func(a, b uint64) bool
	}{
		{isa.JB, func(a, b uint64) bool { return a < b }},
		{isa.JBE, func(a, b uint64) bool { return a <= b }},
		{isa.JA, func(a, b uint64) bool { return a > b }},
		{isa.JAE, func(a, b uint64) bool { return a >= b }},
	}
	for i := 0; i < 60; i++ {
		a, b := r.Uint64(), r.Uint64()
		if i%4 == 0 {
			b = a // exercise equality
		}
		for _, j := range jccs {
			if gotTaken := runJcc(t, j.op, a, b); gotTaken != j.pred(int64(a), int64(b)) {
				t.Fatalf("%s after cmp(%#x,%#x): taken=%v", j.op, a, b, gotTaken)
			}
		}
		for _, j := range ujccs {
			if gotTaken := runJcc(t, j.op, a, b); gotTaken != j.pred(a, b) {
				t.Fatalf("%s after cmp(%#x,%#x): taken=%v", j.op, a, b, gotTaken)
			}
		}
	}
}

// runJcc builds: cmp rax, rbx; jcc +skip; mov rcx, 1; hlt — rcx==0 means
// the branch was taken (it skips the mov).
func runJcc(t *testing.T, jcc isa.Op, a, b uint64) bool {
	t.Helper()
	movImm := isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RCX), 1)
	movLen, err := isa.EncodedLen(&movImm)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t,
		isa.MakeRM(isa.CMP64, isa.GPR(isa.RAX), isa.GPR(isa.RBX)),
		isa.MakeRel(jcc, int64(movLen)),
		movImm,
	)
	m.CPU.GPR[isa.RAX] = a
	m.CPU.GPR[isa.RBX] = b
	run(t, m)
	return m.CPU.GPR[isa.RCX] == 0
}

func TestFPTrapPrecision(t *testing.T) {
	// divsd xmm0, xmm1 with inexact quotient: unmasked -> trap, dest
	// unchanged, RIP at the faulting instruction; masked -> result written
	// and PE status set.
	build := func() *machine.Machine {
		return newMachine(t, isa.MakeRM(isa.DIVSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	}

	m := build()
	m.CPU.MXCSR = machine.MXCSRTrapAll
	m.CPU.XMM[0][0] = fpmath.Bits(1)
	m.CPU.XMM[1][0] = fpmath.Bits(3)
	ev := m.Step()
	if ev.Kind != machine.EvFPTrap {
		t.Fatalf("event %v, want #XF", ev.Kind)
	}
	if ev.FPFlags&fpmath.ExPrecision == 0 {
		t.Errorf("flags %v, want Precision", fpmath.ExceptionNames(ev.FPFlags))
	}
	if m.CPU.RIP != codeBase {
		t.Errorf("RIP advanced to %#x on fault", m.CPU.RIP)
	}
	if m.CPU.XMM[0][0] != fpmath.Bits(1) {
		t.Error("destination written despite fault")
	}
	if m.CPU.MXCSR&fpmath.ExPrecision == 0 {
		t.Error("MXCSR status not set on fault")
	}

	m = build()
	m.CPU.MXCSR = machine.MXCSRDefault
	m.CPU.XMM[0][0] = fpmath.Bits(1)
	m.CPU.XMM[1][0] = fpmath.Bits(3)
	run(t, m)
	if got := fpmath.FromBits(m.CPU.XMM[0][0]); got != 1.0/3.0 {
		t.Errorf("masked divsd = %v", got)
	}
	if m.CPU.MXCSR&fpmath.ExPrecision == 0 {
		t.Error("masked run did not set PE status")
	}
}

func TestExactFPDoesNotTrap(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.ADDSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	m.CPU.MXCSR = machine.MXCSRTrapAll
	m.CPU.XMM[0][0] = fpmath.Bits(1)
	m.CPU.XMM[1][0] = fpmath.Bits(2)
	run(t, m)
	if got := fpmath.FromBits(m.CPU.XMM[0][0]); got != 3 {
		t.Errorf("1+2 = %v", got)
	}
	if m.FPInstructions != 1 {
		t.Errorf("FPInstructions = %d", m.FPInstructions)
	}
}

func TestSNaNConsumptionTraps(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.MULSD, isa.XMM(isa.XMM2), isa.XMM(isa.XMM3)))
	m.CPU.MXCSR = machine.MXCSRTrapAll
	m.CPU.XMM[2][0] = fpmath.ExpMask | 0x42 // SNaN (a NaN-box shape)
	m.CPU.XMM[3][0] = fpmath.Bits(2)
	ev := m.Step()
	if ev.Kind != machine.EvFPTrap || ev.FPFlags&fpmath.ExInvalid == 0 {
		t.Fatalf("event %v flags %v, want #XF Invalid", ev.Kind, fpmath.ExceptionNames(ev.FPFlags))
	}
}

func TestCallRetStack(t *testing.T) {
	// call f; hlt; f: mov rax, 7; ret
	callInst := isa.MakeRel(isa.CALL, 0)
	callLen, _ := isa.EncodedLen(&callInst)
	hlt := isa.MakeNullary(isa.HLT)
	hltLen, _ := isa.EncodedLen(&hlt)
	callInst.Imm = int64(hltLen) // skip over hlt to reach f

	m := newMachine(t,
		callInst,
		hlt,
		isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RAX), 7),
		isa.MakeNullary(isa.RET),
	)
	sp0 := m.CPU.GPR[isa.RSP]
	run(t, m)
	if m.CPU.GPR[isa.RAX] != 7 {
		t.Errorf("rax = %d", m.CPU.GPR[isa.RAX])
	}
	if m.CPU.GPR[isa.RSP] != sp0 {
		t.Errorf("stack imbalance: %#x vs %#x", m.CPU.GPR[isa.RSP], sp0)
	}
	if m.CPU.RIP != codeBase+uint64(callLen)+uint64(hltLen) {
		t.Errorf("halted at %#x", m.CPU.RIP)
	}
}

func TestPushPop(t *testing.T) {
	m := newMachine(t,
		isa.MakeM(isa.PUSH, isa.GPR(isa.RAX)),
		isa.MakeM(isa.POP, isa.GPR(isa.RBX)),
	)
	m.CPU.GPR[isa.RAX] = 0xDEADBEEF
	run(t, m)
	if m.CPU.GPR[isa.RBX] != 0xDEADBEEF {
		t.Errorf("rbx = %#x", m.CPU.GPR[isa.RBX])
	}
}

func TestMemoryLoadsStores(t *testing.T) {
	m := newMachine(t,
		isa.MakeRM(isa.MOV64MR, isa.GPR(isa.RAX), isa.Mem(isa.RDI, 16)),
		isa.MakeRM(isa.MOV64RM, isa.GPR(isa.RBX), isa.Mem(isa.RDI, 16)),
		isa.MakeRM(isa.MOV8MR, isa.GPR(isa.RCX), isa.Mem(isa.RDI, 32)),
		isa.MakeRM(isa.MOVZX8, isa.GPR(isa.RDX), isa.Mem(isa.RDI, 32)),
		isa.MakeRM(isa.MOVSX8, isa.GPR(isa.RSI), isa.Mem(isa.RDI, 32)),
	)
	m.CPU.GPR[isa.RDI] = dataBase
	m.CPU.GPR[isa.RAX] = 0x1122334455667788
	m.CPU.GPR[isa.RCX] = 0xFF
	run(t, m)
	if m.CPU.GPR[isa.RBX] != 0x1122334455667788 {
		t.Errorf("load64 = %#x", m.CPU.GPR[isa.RBX])
	}
	if m.CPU.GPR[isa.RDX] != 0xFF {
		t.Errorf("movzx8 = %#x", m.CPU.GPR[isa.RDX])
	}
	if m.CPU.GPR[isa.RSI] != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("movsx8 = %#x", m.CPU.GPR[isa.RSI])
	}
}

func TestXMMMoveSemantics(t *testing.T) {
	m := newMachine(t,
		// store both lanes, reload via different forms
		isa.MakeRM(isa.MOVAPDMX, isa.XMM(isa.XMM0), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.MOVSDXM, isa.XMM(isa.XMM1), isa.Mem(isa.RDI, 0)),  // lane0, zero hi
		isa.MakeRM(isa.MOVHPDXM, isa.XMM(isa.XMM2), isa.Mem(isa.RDI, 8)), // hi lane only
		isa.MakeRM(isa.MOVDDUP, isa.XMM(isa.XMM3), isa.Mem(isa.RDI, 0)),
		isa.MakeRM(isa.UNPCKLPD, isa.XMM(isa.XMM4), isa.XMM(isa.XMM0)),
		isa.MakeRM(isa.UNPCKHPD, isa.XMM(isa.XMM5), isa.XMM(isa.XMM0)),
		isa.MakeRMI(isa.SHUFPD, isa.XMM(isa.XMM6), isa.XMM(isa.XMM0), 1),
	)
	m.CPU.GPR[isa.RDI] = dataBase
	m.CPU.XMM[0] = [2]uint64{0x1111, 0x2222}
	m.CPU.XMM[2] = [2]uint64{0xAAAA, 0xBBBB}
	m.CPU.XMM[4] = [2]uint64{0x4444, 0x5555}
	m.CPU.XMM[5] = [2]uint64{0x6666, 0x7777}
	m.CPU.XMM[6] = [2]uint64{0x8888, 0x9999}
	run(t, m)
	if m.CPU.XMM[1] != [2]uint64{0x1111, 0} {
		t.Errorf("movsd load: %x", m.CPU.XMM[1])
	}
	if m.CPU.XMM[2] != [2]uint64{0xAAAA, 0x2222} {
		t.Errorf("movhpd: %x", m.CPU.XMM[2])
	}
	if m.CPU.XMM[3] != [2]uint64{0x1111, 0x1111} {
		t.Errorf("movddup: %x", m.CPU.XMM[3])
	}
	if m.CPU.XMM[4] != [2]uint64{0x4444, 0x1111} {
		t.Errorf("unpcklpd: %x", m.CPU.XMM[4])
	}
	if m.CPU.XMM[5] != [2]uint64{0x7777, 0x2222} {
		t.Errorf("unpckhpd: %x", m.CPU.XMM[5])
	}
	// shufpd imm=1: lo = dst.hi, hi = src.lo
	if m.CPU.XMM[6] != [2]uint64{0x9999, 0x1111} {
		t.Errorf("shufpd: %x", m.CPU.XMM[6])
	}
}

func TestUcomisdFlags(t *testing.T) {
	cases := []struct {
		a, b    float64
		jccTrue isa.Op
	}{
		{1, 2, isa.JB},
		{2, 1, isa.JA},
		{2, 2, isa.JE},
	}
	for _, tc := range cases {
		movImm := isa.MakeMI(isa.MOV64RI, isa.GPR(isa.RCX), 1)
		movLen, _ := isa.EncodedLen(&movImm)
		m := newMachine(t,
			isa.MakeRM(isa.UCOMISD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)),
			isa.MakeRel(tc.jccTrue, int64(movLen)),
			movImm,
		)
		m.CPU.XMM[0][0] = fpmath.Bits(tc.a)
		m.CPU.XMM[1][0] = fpmath.Bits(tc.b)
		run(t, m)
		if m.CPU.GPR[isa.RCX] != 0 {
			t.Errorf("ucomisd(%v,%v): %v not taken", tc.a, tc.b, tc.jccTrue)
		}
	}
}

func TestCmpPredicateMask(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.CMPLTSD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	m.CPU.XMM[0][0] = fpmath.Bits(1)
	m.CPU.XMM[1][0] = fpmath.Bits(2)
	run(t, m)
	if m.CPU.XMM[0][0] != ^uint64(0) {
		t.Errorf("cmpltsd(1,2) mask = %#x", m.CPU.XMM[0][0])
	}
}

func TestPackedArithmetic(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.ADDPD, isa.XMM(isa.XMM0), isa.XMM(isa.XMM1)))
	m.CPU.XMM[0] = [2]uint64{fpmath.Bits(1), fpmath.Bits(10)}
	m.CPU.XMM[1] = [2]uint64{fpmath.Bits(2), fpmath.Bits(20)}
	run(t, m)
	if fpmath.FromBits(m.CPU.XMM[0][0]) != 3 || fpmath.FromBits(m.CPU.XMM[0][1]) != 30 {
		t.Errorf("addpd: %v %v", fpmath.FromBits(m.CPU.XMM[0][0]), fpmath.FromBits(m.CPU.XMM[0][1]))
	}
}

func TestCvtInstructions(t *testing.T) {
	m := newMachine(t,
		isa.MakeRM(isa.CVTSI2SD, isa.XMM(isa.XMM0), isa.GPR(isa.RAX)),
		isa.MakeRM(isa.CVTTSD2SI, isa.GPR(isa.RBX), isa.XMM(isa.XMM1)),
		isa.MakeRM(isa.CVTSD2SI, isa.GPR(isa.RCX), isa.XMM(isa.XMM2)),
	)
	m.CPU.GPR[isa.RAX] = uint64(42)
	m.CPU.XMM[1][0] = fpmath.Bits(-7.9) // trunc -> -7
	m.CPU.XMM[2][0] = fpmath.Bits(2.5)  // round-even -> 2
	run(t, m)
	if fpmath.FromBits(m.CPU.XMM[0][0]) != 42 {
		t.Errorf("cvtsi2sd: %v", fpmath.FromBits(m.CPU.XMM[0][0]))
	}
	if int64(m.CPU.GPR[isa.RBX]) != -7 {
		t.Errorf("cvttsd2si: %d", int64(m.CPU.GPR[isa.RBX]))
	}
	if int64(m.CPU.GPR[isa.RCX]) != 2 {
		t.Errorf("cvtsd2si: %d", int64(m.CPU.GPR[isa.RCX]))
	}
}

func TestInt3AndSyscallEvents(t *testing.T) {
	m := newMachine(t, isa.MakeNullary(isa.INT3), isa.MakeNullary(isa.SYSCALL))
	ev := m.Step()
	if ev.Kind != machine.EvBreakpoint {
		t.Fatalf("event %v", ev.Kind)
	}
	if m.CPU.RIP != codeBase+1 {
		t.Errorf("int3 RIP = %#x, want past the int3", m.CPU.RIP)
	}
	ev = m.Step()
	if ev.Kind != machine.EvSyscall {
		t.Fatalf("event %v", ev.Kind)
	}
}

func TestHostCallEvent(t *testing.T) {
	m := newMachine(t, isa.MakeM(isa.CALLR, isa.GPR(isa.RAX)))
	m.CPU.GPR[isa.RAX] = 0x7000_0000_0010
	ev := m.Step()
	if ev.Kind != machine.EvHostCall || ev.HostAddr != 0x7000_0000_0010 {
		t.Fatalf("event %v addr %#x", ev.Kind, ev.HostAddr)
	}
	// Return address must be on the stack.
	ret, err := m.Mem.ReadUint64(m.CPU.GPR[isa.RSP])
	if err != nil || ret == 0 {
		t.Errorf("no return address pushed: %#x %v", ret, err)
	}
}

func TestFaults(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.MOV64RM, isa.GPR(isa.RAX), isa.Mem(isa.RBX, 0)))
	m.CPU.GPR[isa.RBX] = 0xDEAD0000 // unmapped
	ev := m.Step()
	if ev.Kind != machine.EvFault {
		t.Fatalf("event %v, want fault", ev.Kind)
	}
}

func TestXorpdZeroIdiom(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.XORPD, isa.XMM(isa.XMM7), isa.XMM(isa.XMM7)))
	m.CPU.XMM[7] = [2]uint64{fpmath.Bits(math.Pi), 0x123}
	run(t, m)
	if m.CPU.XMM[7] != [2]uint64{0, 0} {
		t.Errorf("xorpd self: %x", m.CPU.XMM[7])
	}
}

func TestShifts(t *testing.T) {
	m := newMachine(t,
		isa.MakeMI(isa.SHL64I, isa.GPR(isa.RAX), 4),
		isa.MakeMI(isa.SHR64I, isa.GPR(isa.RBX), 8),
		isa.MakeMI(isa.SAR64I, isa.GPR(isa.RDX), 8),
	)
	m.CPU.GPR[isa.RAX] = 3
	m.CPU.GPR[isa.RBX] = 0xFF00
	m.CPU.GPR[isa.RDX] = ^uint64(4095) // -4096
	run(t, m)
	if m.CPU.GPR[isa.RAX] != 48 || m.CPU.GPR[isa.RBX] != 0xFF || int64(m.CPU.GPR[isa.RDX]) != -16 {
		t.Errorf("shifts: %d %#x %d", m.CPU.GPR[isa.RAX], m.CPU.GPR[isa.RBX], int64(m.CPU.GPR[isa.RDX]))
	}
}

func TestCycleAccounting(t *testing.T) {
	m := newMachine(t, isa.MakeRM(isa.ADD64, isa.GPR(isa.RAX), isa.GPR(isa.RBX)))
	run(t, m)
	if m.Cycles == 0 || m.Instructions != 2 { // add + hlt
		t.Errorf("cycles=%d instructions=%d", m.Cycles, m.Instructions)
	}
	c := m.Cycles
	m.Charge(100)
	if m.Cycles != c+100 {
		t.Error("Charge did not add")
	}
}
